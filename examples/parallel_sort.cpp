// Parallel out-of-core sorting — sorting a list 1.5x the machine's
// aggregate DRAM (paper §IV-B-3).
//
// Without NVMalloc, the job needs an external two-pass sort through the
// parallel file system; with it, every process extends its memory with an
// ssdmalloc'd region and the whole list sorts in a single pass.
//
// Run:  ./parallel_sort
#include <cstdio>

#include "workloads/psort.hpp"

using namespace nvm;
using namespace nvm::workloads;

namespace {

void Run(const char* label, PsortOptions::Mode mode, size_t nodes, size_t z,
         bool remote, double dram_fraction) {
  TestbedOptions to = PsortTestbedOptions(z, remote);
  Testbed tb(to);
  PsortOptions o;
  o.list_bytes = SortScaledBytes(200_GiB);
  o.mode = mode;
  o.nodes = nodes;
  o.dram_fraction = dram_fraction;
  auto r = RunPsort(tb, o);
  std::printf("%-16s %6.2f s   %d pass(es)   %llu elements   %s\n", label,
              r.seconds, r.passes,
              static_cast<unsigned long long>(r.elements),
              r.verified ? "[globally sorted, checksum OK]"
                         : "[VERIFICATION FAILED]");
}

}  // namespace

int main() {
  std::printf(
      "Sorting a %s list on a cluster with %s of aggregate DRAM\n\n",
      FormatBytes(SortScaledBytes(200_GiB)).c_str(),
      FormatBytes(16 * SortScaledBytes(8_GiB)).c_str());

  // The data cannot fit: the DRAM-only run must sort in two passes with
  // the PFS holding interim results, then merge.
  Run("DRAM(8:16:0)", PsortOptions::Mode::kDramTwoPass, 16, 1, false, 1.0);
  // NVMalloc extends memory: half the list in DRAM, half on local SSDs.
  Run("L-SSD(8:16:16)", PsortOptions::Mode::kHybridNvm, 16, 16, false, 0.5);
  // Even 8 nodes with remote SSDs (a quarter in DRAM) beat two passes.
  Run("R-SSD(8:8:8)", PsortOptions::Mode::kHybridNvm, 8, 8, true, 0.25);

  std::printf(
      "\nNVMalloc turns an out-of-memory sort into a single in-memory-"
      "style pass\n(paper Table VI: 10x faster than the two-pass DRAM "
      "run).\n");
  return 0;
}

// Out-of-core matrix multiplication — the paper's flagship use case.
//
// Multiplies matrices whose combined footprint exceeds every node's DRAM
// budget by placing the replicated B matrix on the aggregate SSD store
// through a shared mmap-style NVMalloc region, with A and C block-
// distributed in DRAM.  Prints the paper-style five-stage breakdown and
// compares against the DRAM-only configuration that must leave 75% of
// the cores idle.
//
// Run:  ./out_of_core_matmul
#include <cstdio>

#include "workloads/matmul.hpp"

using namespace nvm;
using namespace nvm::workloads;

namespace {

void Report(const char* label, const MatmulResult& r) {
  if (!r.feasible) {
    std::printf("%-18s infeasible: B replicas exceed the DRAM budget\n",
                label);
    return;
  }
  std::printf(
      "%-18s A:%5.2fs  inB:%5.2fs  bcast:%5.2fs  compute:%5.2fs  "
      "C:%5.2fs  total:%6.2fs  %s\n",
      label, r.input_split_a_s, r.input_b_s, r.broadcast_b_s, r.compute_s,
      r.collect_output_c_s, r.total_s,
      r.verified ? "[verified: C == B for A = I]" : "[VERIFICATION FAILED]");
}

}  // namespace

int main() {
  std::printf("Out-of-core MM on a 16-node simulated cluster\n");
  std::printf("matrices: %s each; node DRAM budget: %s\n\n",
              FormatBytes(MmScaledBytes(2_GiB)).c_str(),
              FormatBytes(MmScaledBytes(8_GiB)).c_str());

  // DRAM-only: each process needs a full B replica, so only 2 of the 8
  // cores per node can be used.
  {
    Testbed tb(MatmulTestbedOptions(/*benefactors=*/1, /*remote=*/false));
    MatmulOptions o;
    o.b_on_nvm = false;
    o.procs_per_node = 2;
    Report("DRAM(2:16:0)", RunMatmul(tb, o));
  }
  // The same job with 8 processes per node would not fit:
  {
    Testbed tb(MatmulTestbedOptions(1, false));
    MatmulOptions o;
    o.b_on_nvm = false;
    o.procs_per_node = 8;
    Report("DRAM(8:16:0)", RunMatmul(tb, o));
  }
  // NVMalloc: B lives on the aggregate SSD store (one shared mapping per
  // node), freeing the DRAM for 8 processes per node.
  {
    Testbed tb(MatmulTestbedOptions(16, false));
    MatmulOptions o;  // defaults: B on NVM, shared mapping, row-major
    Report("L-SSD(8:16:16)", RunMatmul(tb, o));
  }
  // It even works when the benefactor SSDs live on other nodes entirely.
  {
    Testbed tb(MatmulTestbedOptions(8, true));
    MatmulOptions o;
    o.nodes = 8;
    Report("R-SSD(8:8:8)", RunMatmul(tb, o));
  }

  std::printf(
      "\nThe NVMalloc runs use every core and beat the DRAM-only run "
      "outright\n(paper Fig. 3: 53.75%% faster), while the 8-proc DRAM "
      "run cannot start at all.\n");
  return 0;
}

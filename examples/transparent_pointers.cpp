// Transparent out-of-core computation — the paper's headline usage model
// on plain C++ pointers.
//
// A histogram/normalisation pass over a dataset larger than the allowed
// resident memory, written exactly as if the data were an ordinary heap
// array: `data[i]` loads and stores page through SIGSEGV faults into the
// aggregate SSD store, with a residency cap standing in for the node's
// scarce DRAM.
//
// Run:  ./transparent_pointers
#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "nvmalloc/transparent.hpp"
#include "workloads/testbed.hpp"

using namespace nvm;

int main() {
  workloads::TestbedOptions opts;
  opts.compute_nodes = 4;
  opts.benefactors = 4;
  workloads::Testbed testbed(opts);
  NvmallocRuntime& nvm = testbed.runtime(0);

  constexpr size_t kElems = 2u << 20;  // 16 MiB of doubles
  TransparentMap::Options mopts;
  mopts.max_resident_pages = 512;  // only 2 MiB may be memory-resident

  auto map = TransparentMap::Create(nvm, kElems * sizeof(double), mopts);
  if (!map.ok()) {
    std::fprintf(stderr, "%s\n", map.status().ToString().c_str());
    return 1;
  }
  double* data = (*map)->as<double>();  // an ordinary pointer!

  std::printf("dataset: %s; resident cap: %s\n",
              FormatBytes(kElems * sizeof(double)).c_str(),
              FormatBytes(mopts.max_resident_pages * 4_KiB).c_str());

  // Fill with pseudo-random samples — plain stores.
  Xoshiro256 rng(2024);
  for (size_t i = 0; i < kElems; ++i) {
    data[i] = rng.NextDouble() * 100.0;
  }

  // Pass 1: min/max — plain loads.
  double lo = data[0];
  double hi = data[0];
  for (size_t i = 1; i < kElems; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }

  // Pass 2: normalise in place — read-modify-write on every element.
  const double scale = 1.0 / (hi - lo);
  for (size_t i = 0; i < kElems; ++i) {
    data[i] = (data[i] - lo) * scale;
  }

  // Pass 3: histogram of the normalised values.
  size_t buckets[10] = {0};
  for (size_t i = 0; i < kElems; ++i) {
    const auto b = std::min<size_t>(9, static_cast<size_t>(data[i] * 10));
    ++buckets[b];
  }

  std::printf("normalised histogram (should be ~uniform):\n");
  for (int b = 0; b < 10; ++b) {
    std::printf("  [%0.1f,%0.1f) %7zu %s\n", b / 10.0, (b + 1) / 10.0,
                buckets[b],
                std::string(buckets[b] / 8000, '#').c_str());
  }
  std::printf(
      "page faults: %llu, evictions: %llu (the dataset cycled through "
      "the %s cap ~%llu times)\n",
      static_cast<unsigned long long>((*map)->faults()),
      static_cast<unsigned long long>((*map)->evictions()),
      FormatBytes(mopts.max_resident_pages * 4_KiB).c_str(),
      static_cast<unsigned long long>((*map)->faults() /
                                      (kElems * 8 / 4_KiB)));
  std::printf("modelled time: %s\n",
              FormatDuration(sim::CurrentClock().now()).c_str());

  // Sanity: a uniform distribution puts ~10% in each bucket.
  for (int b = 0; b < 10; ++b) {
    const double frac = static_cast<double>(buckets[b]) / kElems;
    if (frac < 0.08 || frac > 0.12) {
      std::fprintf(stderr, "bucket %d off: %.3f\n", b, frac);
      return 1;
    }
  }
  std::printf("verified: all buckets within 8-12%%\n");
  return 0;
}

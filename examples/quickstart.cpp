// Quickstart — the NVMalloc API in five minutes.
//
// Builds a small simulated cluster with an aggregate SSD store, then walks
// the paper's core services:
//   ssdmalloc()     — allocate a memory region backed by the store,
//   byte access     — read/write it like memory (typed arrays + genuine
//                     pointer access via TransparentMap),
//   ssdcheckpoint() — snapshot DRAM + NVM state into one restart file,
//   ssdrestart()    — come back from it,
//   ssdfree()       — release the region.
//
// Run:  ./quickstart
#include <cstdio>
#include <numeric>

#include "nvmalloc/runtime.hpp"
#include "nvmalloc/transparent.hpp"
#include "workloads/testbed.hpp"

using namespace nvm;

int main() {
  // A 4-node cluster; every node contributes its SSD to the store.
  workloads::TestbedOptions opts;
  opts.compute_nodes = 4;
  opts.benefactors = 4;
  workloads::Testbed testbed(opts);

  // The per-node NVMalloc runtime (the library instance the paper links
  // into every application process).
  NvmallocRuntime& nvm = testbed.runtime(/*node=*/0);

  // --- ssdmalloc: a 1 MiB variable on the aggregate SSD store ---
  auto region = nvm.SsdMalloc(1_MiB);
  if (!region.ok()) {
    std::fprintf(stderr, "ssdmalloc failed: %s\n",
                 region.status().ToString().c_str());
    return 1;
  }
  std::printf("ssdmalloc'd %s backed by file id %llu on the store\n",
              FormatBytes((*region)->size_bytes()).c_str(),
              static_cast<unsigned long long>((*region)->file_id()));

  // --- typed access through NvmArray ---
  NvmArray<double> vec(*region);
  for (size_t i = 0; i < 1000; ++i) {
    (void)vec.Set(i, static_cast<double>(i) * 1.5);
  }
  double sum = 0;
  for (size_t i = 0; i < 1000; ++i) sum += *vec.Get(i);
  std::printf("sum of 1000 elements through the paged region: %.1f\n", sum);

  // --- genuine pointer transparency (mmap + fault handler) ---
  auto map = TransparentMap::Create(nvm, 64 * 4_KiB);
  if (map.ok()) {
    double* p = (*map)->as<double>();  // a plain pointer!
    for (int i = 0; i < 4096; ++i) p[i] = i * 0.25;
    std::printf("transparent map: p[4095] = %.2f after %llu page faults\n",
                p[4095], static_cast<unsigned long long>((*map)->faults()));
  }

  // --- checkpoint DRAM + NVM state together ---
  std::vector<uint8_t> dram_state(64_KiB, 0x5A);
  CheckpointSpec spec;
  spec.dram.push_back({dram_state.data(), dram_state.size()});
  spec.nvm.push_back(*region);
  auto info = nvm.SsdCheckpoint(spec, "/ckpt/quickstart");
  if (info.ok()) {
    std::printf(
        "checkpoint: %s of DRAM copied, %s of NVM linked zero-copy, "
        "%.2f ms (modelled)\n",
        FormatBytes(info->dram_bytes_copied).c_str(),
        FormatBytes(info->nvm_bytes_linked).c_str(),
        static_cast<double>(info->duration_ns) / 1e6);
  }

  // --- restart into fresh storage ---
  std::vector<uint8_t> recovered(64_KiB, 0);
  auto fresh = nvm.SsdMalloc(1_MiB);
  RestoreSpec restore;
  restore.dram.push_back({recovered.data(), recovered.size()});
  restore.nvm.push_back(*fresh);
  Status s = nvm.SsdRestart("/ckpt/quickstart", restore);
  NvmArray<double> rec(*fresh);
  std::printf("restart: %s; recovered element 500 = %.1f (expect 750.0)\n",
              s.ToString().c_str(), *rec.Get(500));

  // --- ssdfree ---
  (void)nvm.SsdFree(*region);
  (void)nvm.SsdFree(*fresh);
  std::printf("freed; modelled time elapsed: %s\n",
              FormatDuration(sim::CurrentClock().now()).c_str());
  return 0;
}

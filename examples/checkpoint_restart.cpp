// Checkpoint / restart with copy-on-write chunk sharing (paper §III-E).
//
// An iterative "simulation" checkpoints its DRAM state and its NVM-
// resident field every few timesteps.  ssdcheckpoint() links the NVM
// variable's chunks into the restart file instead of copying them;
// subsequent writes copy-on-write only the touched chunks, so every
// checkpoint after the first is automatically incremental — and older
// checkpoints remain valid restart points.
//
// Run:  ./checkpoint_restart
#include <cstdio>

#include "common/rng.hpp"
#include "nvmalloc/runtime.hpp"
#include "workloads/testbed.hpp"

using namespace nvm;

int main() {
  workloads::TestbedOptions opts;
  opts.compute_nodes = 4;
  opts.benefactors = 4;
  workloads::Testbed testbed(opts);
  NvmallocRuntime& nvm = testbed.runtime(0);
  auto& cluster = testbed.cluster();

  // Application state: 2 MiB of DRAM scalars + an 8 MiB NVM field.
  std::vector<double> dram_state(2_MiB / sizeof(double), 1.0);
  auto field = nvm.SsdMalloc(8_MiB);
  NVM_CHECK(field.ok());
  NvmArray<double> f(*field);
  for (size_t i = 0; i < f.size(); i += 512) {
    (void)f.Set(i, static_cast<double>(i));
  }

  CheckpointSpec spec;
  spec.dram.push_back({dram_state.data(), dram_state.size() * 8});
  spec.nvm.push_back(*field);

  Xoshiro256 rng(1);
  for (int t = 0; t < 4; ++t) {
    // "Compute": advance the DRAM state, touch ~10% of the field.
    for (auto& v : dram_state) v += 0.5;
    const size_t touches = f.size() / 10 / 512;
    for (size_t k = 0; k < touches; ++k) {
      const size_t i = (rng.NextBelow(f.size() / 512)) * 512;
      (void)f.Set(i, static_cast<double>(t) * 1000 + static_cast<double>(i));
    }

    const uint64_t ssd_before = cluster.TotalSsdBytesWritten();
    auto info = nvm.SsdCheckpoint(spec, "/ckpt/t" + std::to_string(t));
    NVM_CHECK(info.ok());
    std::printf(
        "t%-2d checkpoint: DRAM copied %-9s NVM linked %-9s SSD writes "
        "%-9s modelled %.2f ms\n",
        t, FormatBytes(info->dram_bytes_copied).c_str(),
        FormatBytes(info->nvm_bytes_linked).c_str(),
        FormatBytes(cluster.TotalSsdBytesWritten() - ssd_before).c_str(),
        static_cast<double>(info->duration_ns) / 1e6);
  }

  // Crash!  Restart from t2 (not even the latest) on a different node —
  // the restart file is just a file on the aggregate store.
  std::printf("\nsimulating a failure; restarting from /ckpt/t2 on node 3\n");
  NvmallocRuntime& other = testbed.runtime(3);
  std::vector<double> rec_dram(dram_state.size(), 0);
  auto rec_field = other.SsdMalloc(8_MiB);
  NVM_CHECK(rec_field.ok());
  RestoreSpec restore;
  restore.dram.push_back({rec_dram.data(), rec_dram.size() * 8});
  restore.nvm.push_back(*rec_field);
  Status s = other.SsdRestart("/ckpt/t2", restore);
  std::printf("restart: %s; recovered DRAM[0] = %.1f (state after t2: %.1f)\n",
              s.ToString().c_str(), rec_dram[0], 1.0 + 3 * 0.5);

  (void)nvm.SsdFree(*field);
  (void)other.SsdFree(*rec_field);
  return 0;
}

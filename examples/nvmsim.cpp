// nvmsim — config-driven experiment runner.
//
// Runs any of the paper's workloads on a testbed described by key=value
// arguments (or a config file via config=<path>), printing the result and
// an nvmstat-style store report.  This is the tool for exploring the
// design space beyond the canned benchmarks.
//
// Usage examples:
//   ./nvmsim workload=stream arrays=BC remote=1
//   ./nvmsim workload=mm x=8 y=8 z=4 remote=1 column_major=1 tile=32
//   ./nvmsim workload=sort mode=hybrid nodes=8 dram_fraction=0.25
//   ./nvmsim workload=randwrite writes=65536 page_writeback=0
//   ./nvmsim config=experiment.cfg
//
// Common keys: nodes, benefactors, remote, chunk=64K, cache=2M, pool=4M,
// replication, readahead, readahead_max, cache_shards, batch_fetch,
// batch_rpc, batch_write_rpc, page_writeback, report (print store status),
// maintenance (background failure detection/repair/scrub), plus its knobs
// heartbeat_period_ms, heartbeat_misses, repair_bw_fraction, scrub_period_ms,
// and the integrity knobs verify_reads, scrub_verify, scrub_verify_bytes,
// checksum_bw_gbps (per-chunk CRC32C: verifying reads + checksum scrub),
// meta_shards (manager metadata-plane shard count), the crash-
// consistency knobs wal, checkpoint_period_ms, wal_segment, wal_device,
// wal_device_wear_leveling (durable manager metadata: WAL + checkpoints),
// and the placement-engine knobs placement_avoid_suspected (steer
// striping/COW/repair around suspected and correlated-loss benefactors)
// and placement_wear_weight (bias placement away from worn devices), and
// the redundancy knobs redundancy=replicate|erasure, ec_k, ec_m,
// ec_encode_bw_gbps (RS(k,m) striping with degraded reads + fragment
// repair instead of whole-chunk replication), and the QoS knobs qos
// (multi-tenant admission scheduling), qos_burst_ms, qos_window_ms and
// tenant=<id>:<weight>:<share>:<priority>[,...] (per-tenant policy;
// maintenance is tenant 1 and inherits repair_bw_fraction by default).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "store/report.hpp"
#include "workloads/ckpt.hpp"
#include "workloads/matmul.hpp"
#include "workloads/psort.hpp"
#include "workloads/randwrite.hpp"
#include "workloads/stream.hpp"

using namespace nvm;
using namespace nvm::workloads;

namespace {

TestbedOptions BuildTestbed(const Config& cfg) {
  TestbedOptions to;
  to.compute_nodes = static_cast<size_t>(cfg.GetInt("nodes", 16));
  to.benefactors = static_cast<size_t>(
      cfg.GetInt("benefactors", static_cast<int64_t>(to.compute_nodes)));
  to.remote_benefactors = cfg.GetBool("remote", false);
  to.dram_per_node = cfg.GetBytes("node_dram", to.dram_per_node);
  to.store.chunk_bytes = cfg.GetBytes("chunk", to.store.chunk_bytes);
  to.store.replication =
      static_cast<int>(cfg.GetInt("replication", to.store.replication));
  to.fuse.cache_bytes = cfg.GetBytes("cache", to.fuse.cache_bytes);
  to.fuse.readahead = cfg.GetBool("readahead", to.fuse.readahead);
  to.fuse.dirty_page_writeback =
      cfg.GetBool("page_writeback", to.fuse.dirty_page_writeback);
  to.fuse.cache_shards = static_cast<size_t>(
      cfg.GetInt("cache_shards", static_cast<int64_t>(to.fuse.cache_shards)));
  to.fuse.readahead_max_chunks = static_cast<uint32_t>(
      cfg.GetInt("readahead_max", to.fuse.readahead_max_chunks));
  to.fuse.batch_fetch = cfg.GetBool("batch_fetch", to.fuse.batch_fetch);
  to.store.batch_rpc = cfg.GetBool("batch_rpc", to.store.batch_rpc);
  to.store.batch_write_rpc =
      cfg.GetBool("batch_write_rpc", to.store.batch_write_rpc);
  to.store.maintenance = cfg.GetBool("maintenance", to.store.maintenance);
  to.store.heartbeat_period_ms =
      cfg.GetInt("heartbeat_period_ms", to.store.heartbeat_period_ms);
  to.store.heartbeat_misses = static_cast<int>(
      cfg.GetInt("heartbeat_misses", to.store.heartbeat_misses));
  to.store.repair_bw_fraction =
      cfg.GetDouble("repair_bw_fraction", to.store.repair_bw_fraction);
  to.store.scrub_period_ms =
      cfg.GetInt("scrub_period_ms", to.store.scrub_period_ms);
  to.store.verify_reads = cfg.GetBool("verify_reads", to.store.verify_reads);
  to.store.scrub_verify = cfg.GetBool("scrub_verify", to.store.scrub_verify);
  to.store.scrub_verify_bytes =
      cfg.GetBytes("scrub_verify_bytes", to.store.scrub_verify_bytes);
  to.store.checksum_bw_gbps =
      cfg.GetDouble("checksum_bw_gbps", to.store.checksum_bw_gbps);
  to.store.meta_shards = static_cast<size_t>(
      cfg.GetInt("meta_shards", static_cast<int64_t>(to.store.meta_shards)));
  to.store.wal = cfg.GetBool("wal", to.store.wal);
  to.store.checkpoint_period_ms =
      cfg.GetInt("checkpoint_period_ms", to.store.checkpoint_period_ms);
  to.store.wal_segment_bytes =
      cfg.GetBytes("wal_segment", to.store.wal_segment_bytes);
  to.store.wal_device = cfg.GetString("wal_device", to.store.wal_device);
  to.store.wal_device_wear_leveling = cfg.GetBool(
      "wal_device_wear_leveling", to.store.wal_device_wear_leveling);
  to.store.placement_avoid_suspected = cfg.GetBool(
      "placement_avoid_suspected", to.store.placement_avoid_suspected);
  to.store.placement_wear_weight = cfg.GetDouble(
      "placement_wear_weight", to.store.placement_wear_weight);
  const std::string redundancy = cfg.GetString(
      "redundancy",
      to.store.redundancy == store::RedundancyMode::kErasure ? "erasure"
                                                             : "replicate");
  to.store.redundancy = redundancy == "erasure"
                            ? store::RedundancyMode::kErasure
                            : store::RedundancyMode::kReplicate;
  to.store.ec_k = static_cast<uint32_t>(cfg.GetInt("ec_k", to.store.ec_k));
  to.store.ec_m = static_cast<uint32_t>(cfg.GetInt("ec_m", to.store.ec_m));
  to.store.ec_encode_bw_gbps =
      cfg.GetDouble("ec_encode_bw_gbps", to.store.ec_encode_bw_gbps);
  to.store.qos = cfg.GetBool("qos", to.store.qos);
  to.store.qos_burst_ms = cfg.GetInt("qos_burst_ms", to.store.qos_burst_ms);
  to.store.qos_window_ms =
      cfg.GetInt("qos_window_ms", to.store.qos_window_ms);
  // tenant=<id>:<weight>:<share>:<priority>, comma-separated.  Trailing
  // fields may be omitted (defaults: weight 1, share 0, priority 1).
  if (cfg.Has("tenant")) {
    const std::string spec = cfg.GetString("tenant");
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t end = spec.find(',', pos);
      if (end == std::string::npos) end = spec.size();
      const std::string one = spec.substr(pos, end - pos);
      pos = end + 1;
      if (one.empty()) continue;
      store::QosTenant t;
      char* cur = nullptr;
      t.id = static_cast<store::TenantId>(
          std::strtoul(one.c_str(), &cur, 10));
      if (cur != nullptr && *cur == ':') t.weight = std::strtod(cur + 1, &cur);
      if (cur != nullptr && *cur == ':') {
        t.bw_share = std::strtod(cur + 1, &cur);
      }
      if (cur != nullptr && *cur == ':') {
        t.priority = static_cast<int>(std::strtol(cur + 1, &cur, 10));
      }
      to.store.qos_tenants.push_back(t);
    }
  }
  to.page_pool_bytes = cfg.GetBytes("pool", to.page_pool_bytes);
  return to;
}

// Snapshot every compute node's mount cache for the status report.
std::vector<store::MountCacheStats> CollectMountStats(Testbed& tb,
                                                      size_t compute_nodes) {
  std::vector<store::MountCacheStats> mounts;
  mounts.reserve(compute_nodes);
  for (size_t n = 0; n < compute_nodes; ++n) {
    auto& cache = tb.runtime(static_cast<int>(n)).mount().cache();
    const fuselite::CacheTraffic& t = cache.traffic();
    store::MountCacheStats m;
    m.node = static_cast<int>(n);
    m.resident_chunks = cache.resident_chunks();
    m.hit_chunks = t.hit_chunks.load();
    m.fetched_chunks = t.fetched_chunks.load();
    m.prefetched_chunks = t.prefetched_chunks.load();
    m.evictions = t.evictions.load();
    m.dropped_dirty = t.dropped_dirty.load();
    m.flush_batches = t.flush_batches.load();
    m.degraded_writes =
        tb.runtime(static_cast<int>(n)).mount().client().degraded_writes();
    mounts.push_back(m);
  }
  return mounts;
}

int RunStreamCmd(const Config& cfg, Testbed& tb) {
  StreamOptions o;
  o.array_bytes = cfg.GetBytes("array", ScaledBytes(2_GiB));
  o.iterations = static_cast<int>(cfg.GetInt("iterations", 10));
  o.threads = static_cast<size_t>(cfg.GetInt("threads", 8));
  const std::string arrays = cfg.GetString("arrays", "C");
  o.a_on_nvm = arrays.find('A') != std::string::npos;
  o.b_on_nvm = arrays.find('B') != std::string::npos;
  o.c_on_nvm = arrays.find('C') != std::string::npos;
  auto r = RunStream(tb, o);
  std::printf("STREAM (arrays %s on NVM, %zu threads):\n", arrays.c_str(),
              o.threads);
  for (int k = 0; k < 4; ++k) {
    std::printf("  %-6s %10.1f MB/s  (%s)\n", kStreamKernelNames[k],
                r.mbps[k], FormatDuration(r.duration_ns[k]).c_str());
  }
  std::printf("  verified: %s\n", r.verified ? "yes" : "NO");
  return r.verified ? 0 : 1;
}

int RunMmCmd(const Config& cfg, Testbed& tb) {
  MatmulOptions o;
  o.matrix_bytes = cfg.GetBytes("matrix", o.matrix_bytes);
  o.procs_per_node = static_cast<size_t>(cfg.GetInt("x", 8));
  o.nodes = static_cast<size_t>(cfg.GetInt("y", 16));
  o.b_on_nvm = cfg.GetInt("z", 16) > 0;
  o.shared_mmap = cfg.GetBool("shared", true);
  o.column_major = cfg.GetBool("column_major", false);
  o.tile = static_cast<size_t>(cfg.GetInt("tile", 64));
  auto r = RunMatmul(tb, o);
  if (!r.feasible) {
    std::printf("MM: infeasible (B replicas exceed the DRAM budget)\n");
    return 1;
  }
  std::printf(
      "MM %s %s tile=%zu:\n  A %.2fs | inB %.2fs | bcast %.2fs | compute "
      "%.2fs | C %.2fs | total %.2fs\n  B traffic: app %s, FUSE %s, SSD "
      "%s\n  verified: %s\n",
      o.column_major ? "column-major" : "row-major",
      o.shared_mmap ? "shared" : "individual", o.tile, r.input_split_a_s,
      r.input_b_s, r.broadcast_b_s, r.compute_s, r.collect_output_c_s,
      r.total_s, FormatBytes(r.app_b_bytes).c_str(),
      FormatBytes(r.fuse_b_bytes).c_str(),
      FormatBytes(r.ssd_b_bytes).c_str(), r.verified ? "yes" : "NO");
  return r.verified ? 0 : 1;
}

int RunSortCmd(const Config& cfg, Testbed& tb) {
  PsortOptions o;
  o.list_bytes = cfg.GetBytes("list", SortScaledBytes(200_GiB));
  o.procs_per_node = static_cast<size_t>(cfg.GetInt("x", 8));
  o.nodes = static_cast<size_t>(cfg.GetInt("y", 16));
  o.mode = cfg.GetString("mode", "hybrid") == "hybrid"
               ? PsortOptions::Mode::kHybridNvm
               : PsortOptions::Mode::kDramTwoPass;
  o.dram_fraction = cfg.GetDouble("dram_fraction", 0.5);
  auto r = RunPsort(tb, o);
  std::printf(
      "SORT %s: %.2f s, %d pass(es), %llu elements, verified: %s\n",
      o.mode == PsortOptions::Mode::kHybridNvm ? "hybrid" : "two-pass",
      r.seconds, r.passes, static_cast<unsigned long long>(r.elements),
      r.verified ? "yes" : "NO");
  return r.verified ? 0 : 1;
}

int RunRandWriteCmd(const Config& cfg, Testbed& tb) {
  RandWriteOptions o;
  o.region_bytes = cfg.GetBytes("region", ScaledBytes(2_GiB));
  o.num_writes = static_cast<uint64_t>(cfg.GetInt("writes", 131072));
  auto r = RunRandWrite(tb, o);
  std::printf(
      "RANDWRITE %llu writes into %s: to FUSE %s, to SSD %s, %.3f s, "
      "verified: %s\n",
      static_cast<unsigned long long>(o.num_writes),
      FormatBytes(o.region_bytes).c_str(),
      FormatBytes(r.bytes_to_fuse).c_str(),
      FormatBytes(r.bytes_to_ssd).c_str(), r.seconds,
      r.verified ? "yes" : "NO");
  return r.verified ? 0 : 1;
}

int RunCkptCmd(const Config& cfg, Testbed& tb) {
  CkptOptions o;
  o.dram_bytes = cfg.GetBytes("dram", o.dram_bytes);
  o.nvm_bytes = cfg.GetBytes("nvm", o.nvm_bytes);
  o.dirty_fraction = cfg.GetDouble("dirty", 0.1);
  o.timesteps = static_cast<int>(cfg.GetInt("steps", 3));
  o.link_nvm = cfg.GetBool("link", true);
  auto r = RunCheckpointStudy(tb, o);
  std::printf("CHECKPOINT (%s):\n", o.link_nvm ? "linked" : "full-copy");
  for (size_t s = 0; s < r.steps.size(); ++s) {
    std::printf("  t%zu: %.3f s, SSD writes %s\n", s, r.steps[s].seconds,
                FormatBytes(r.steps[s].ssd_bytes_written).c_str());
  }
  std::printf("  restart verified: %s; old checkpoint intact: %s\n",
              r.restart_verified ? "yes" : "NO",
              r.old_checkpoint_intact ? "yes" : "NO");
  return (r.restart_verified && r.old_checkpoint_intact) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto parsed = Config::FromArgs(args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  Config cfg = *parsed;
  if (cfg.Has("config")) {
    auto from_file = Config::FromFile(cfg.GetString("config"));
    if (!from_file.ok()) {
      std::fprintf(stderr, "%s\n", from_file.status().ToString().c_str());
      return 2;
    }
    // Command-line keys override file keys.
    Config merged = *from_file;
    for (const auto& [k, v] : cfg.values()) merged.Set(k, v);
    cfg = merged;
  }

  const std::string workload = cfg.GetString("workload", "stream");
  // For MM, the paper's z doubles as the benefactor count.
  if (workload == "mm" && cfg.Has("z") && !cfg.Has("benefactors")) {
    cfg.Set("benefactors", cfg.GetString("z"));
  }
  Testbed tb(BuildTestbed(cfg));

  int rc = 2;
  if (workload == "stream") {
    rc = RunStreamCmd(cfg, tb);
  } else if (workload == "mm") {
    rc = RunMmCmd(cfg, tb);
  } else if (workload == "sort") {
    rc = RunSortCmd(cfg, tb);
  } else if (workload == "randwrite") {
    rc = RunRandWriteCmd(cfg, tb);
  } else if (workload == "checkpoint") {
    rc = RunCkptCmd(cfg, tb);
  } else {
    std::fprintf(stderr,
                 "unknown workload '%s' (stream|mm|sort|randwrite|"
                 "checkpoint)\n",
                 workload.c_str());
    return 2;
  }

  if (cfg.GetBool("report", true)) {
    const auto mounts =
        CollectMountStats(tb, static_cast<size_t>(cfg.GetInt("nodes", 16)));
    std::printf("\nstore status:\n%s",
                store::StatusReport(tb.store(), mounts).c_str());
  }
  return rc;
}

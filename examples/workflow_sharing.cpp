// Workflow data sharing through persistent NVM variables — the lifetime
// extension the paper sketches in §III-C: "one can imagine associating a
// lifetime with these memory-mapped variables, residing on the NVM store,
// so that they are persistent beyond the application run.  Such a scheme
// can aid data sharing between a workflow of jobs or a simulation and its
// in-situ analysis."
//
// A "simulation job" produces a field into a persistent variable and
// exits; an "analysis job" — on different nodes — re-attaches the variable
// by name and consumes it, never touching the parallel file system.
//
// Run:  ./workflow_sharing
#include <cmath>
#include <cstdio>

#include "nvmalloc/runtime.hpp"
#include "workloads/testbed.hpp"

using namespace nvm;

namespace {

constexpr uint64_t kFieldBytes = 4_MiB;
constexpr const char* kFieldName = "turbulence_field_step_9000";

void SimulationJob(workloads::Testbed& testbed) {
  std::printf("[simulation] running on nodes 0-3\n");
  NvmallocRuntime& nvm = testbed.runtime(0);
  auto field = nvm.SsdMalloc(
      kFieldBytes, {.persistent = true, .persist_name = kFieldName});
  NVM_CHECK(field.ok(), "%s", field.status().ToString().c_str());

  NvmArray<double> f(*field);
  for (size_t i = 0; i < f.size(); i += 64) {
    auto span = f.PinWrite(i, std::min<size_t>(64, f.size() - i));
    NVM_CHECK(span.ok());
    for (size_t j = 0; j < span->size(); ++j) {
      (*span)[j] = std::sin(static_cast<double>(i + j) * 1e-3);
    }
  }
  // ssdfree of a persistent variable syncs it to the store and detaches;
  // the data stays, owned by the store.
  NVM_CHECK(nvm.SsdFree(*field).ok());
  std::printf("[simulation] wrote %s into persistent variable '%s', "
              "exited\n",
              FormatBytes(kFieldBytes).c_str(), kFieldName);
}

void AnalysisJob(workloads::Testbed& testbed) {
  std::printf("[analysis]   starting later, on different nodes (4-7)\n");
  NvmallocRuntime& nvm = testbed.runtime(4);
  auto field = nvm.OpenPersistent(kFieldName);
  NVM_CHECK(field.ok(), "%s", field.status().ToString().c_str());

  NvmArray<double> f(*field);
  double energy = 0;
  size_t bad = 0;
  for (size_t i = 0; i < f.size(); i += 64) {
    auto span = f.PinRead(i, std::min<size_t>(64, f.size() - i));
    NVM_CHECK(span.ok());
    for (size_t j = 0; j < span->size(); ++j) {
      const double v = (*span)[j];
      energy += v * v;
      if (v != std::sin(static_cast<double>(i + j) * 1e-3)) ++bad;
    }
  }
  std::printf("[analysis]   field energy = %.2f over %zu samples "
              "(%zu mismatches)\n",
              energy, f.size(), bad);
  NVM_CHECK(bad == 0, "in-situ data corrupted between jobs!");

  NVM_CHECK(nvm.SsdFree(*field).ok());
  // The workflow is done: retire the variable for good.
  NVM_CHECK(nvm.DropPersistent(kFieldName).ok());
  std::printf("[analysis]   done; persistent variable retired\n");
}

}  // namespace

int main() {
  workloads::TestbedOptions opts;
  opts.compute_nodes = 8;
  opts.benefactors = 8;
  workloads::Testbed testbed(opts);

  SimulationJob(testbed);
  AnalysisJob(testbed);

  std::printf("\nThe hand-off used only the aggregate SSD store — no PFS "
              "round trip.\n");
  return 0;
}

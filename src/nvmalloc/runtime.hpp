// NvmallocRuntime — the per-node NVMalloc library instance.
//
// This is the paper's public API surface:
//   ssdmalloc()     -> SsdMalloc():   allocate a memory region backed by a
//                                     file on the aggregate NVM store,
//                                     optionally shared by the node's
//                                     processes (the shared-mmap flag),
//   ssdfree()       -> SsdFree():     unmap and delete the backing file,
//   ssdcheckpoint() -> SsdCheckpoint(): dump DRAM state + link NVM
//                                     variables into one restart file with
//                                     copy-on-write chunk sharing,
//                     SsdRestart():   rebuild state from a restart file.
//
// One runtime per compute node, shared by all of the node's processes —
// it owns the node's fuselite mount (the FUSE client of the paper) and the
// PagePool bounding mapped-in pages.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "fuselite/mount.hpp"
#include "nvmalloc/region.hpp"

namespace nvm {

struct NvmallocConfig {
  fuselite::FuseliteConfig fuse;
  // DRAM the modelled OS grants to mapped-in NVM pages on this node.
  uint64_t page_pool_bytes = 8_MiB;
  // Cost of one page fault (trap + FUSE request dispatch).
  int64_t page_fault_ns = 4'000;
};

struct SsdMallocOptions {
  // Map a per-node shared backing file instead of a private one: all
  // processes of the node calling SsdMalloc with the same shared_name get
  // the same region (paper Fig. 4's "-S" configurations).
  bool shared = false;
  std::string shared_name;
  // Give the variable a lifetime beyond the allocating job (paper §III-C:
  // "one can imagine associating a lifetime with these memory-mapped
  // variables... such a scheme can aid data sharing between a workflow of
  // jobs or a simulation and its in-situ analysis").  A persistent
  // variable's backing file survives SsdFree (after a sync) and can be
  // re-attached — from any node — with OpenPersistent(name).
  bool persistent = false;
  std::string persist_name;
  // Access-pattern hint for the node's chunk cache (paper §III-B's
  // write-once-read-many placement idea).
  fuselite::AccessAdvice advice = fuselite::AccessAdvice::kNormal;
};

// What to save: raw DRAM segments are copied into the checkpoint; NVM
// regions are linked zero-copy (unless link_nvm is disabled, the ablation
// baseline that copies everything).
struct CheckpointSpec {
  struct DramSegment {
    const void* data;
    uint64_t bytes;
  };
  std::vector<DramSegment> dram;
  std::vector<NvmRegion*> nvm;
  bool link_nvm = true;
};

struct CheckpointInfo {
  uint64_t dram_bytes_copied = 0;
  uint64_t nvm_bytes_linked = 0;   // shared via refcount, not moved
  uint64_t nvm_bytes_copied = 0;   // only when link_nvm == false
  int64_t duration_ns = 0;         // virtual time spent checkpointing
};

struct RestoreSpec {
  struct DramSegment {
    void* data;
    uint64_t bytes;
  };
  std::vector<DramSegment> dram;
  std::vector<NvmRegion*> nvm;
};

class NvmallocRuntime {
 public:
  NvmallocRuntime(store::AggregateStore& store, int node_id,
                  NvmallocConfig config = {});

  int node_id() const { return node_id_; }
  fuselite::MountPoint& mount() { return mount_; }
  PagePool& pool() { return pool_; }
  const NvmallocConfig& config() const { return config_; }

  // Allocate `bytes` from the aggregate NVM store.  The returned region is
  // owned by the runtime; release it with SsdFree.
  StatusOr<NvmRegion*> SsdMalloc(uint64_t bytes, SsdMallocOptions opts = {});

  // Re-attach a persistent variable created (possibly by another job or on
  // another node) with SsdMalloc({.persistent=true, .persist_name=name}).
  StatusOr<NvmRegion*> OpenPersistent(const std::string& name);

  // Delete a persistent variable's backing file for good (its data is
  // otherwise retained by the store indefinitely).
  Status DropPersistent(const std::string& name);

  // Unmap and (for the last sharer) delete the backing file.  Unless the
  // region was checkpointed, its contents are gone — the paper's
  // no-persistence-without-checkpoint contract.
  Status SsdFree(NvmRegion* region);

  // Write a restart file named `name` on the aggregate store containing
  // the DRAM segments plus the (linked) NVM variables of `spec`.
  StatusOr<CheckpointInfo> SsdCheckpoint(const CheckpointSpec& spec,
                                         const std::string& name);

  // Repopulate DRAM segments and NVM regions from a restart file.  Segment
  // and region sizes must match the checkpointed layout.
  Status SsdRestart(const std::string& name, const RestoreSpec& spec);

  // Drain a checkpoint file from the aggregate store to external storage
  // (paper §III-E / prior work: "checkpointing to such an intermediate
  // device and draining to PFS in the background is an extremely viable
  // alternative").  `sink(offset, bytes)` writes to the external target;
  // the drain runs on a background virtual clock, so the caller's time is
  // untouched.  Returns the bytes drained and the background completion
  // time.
  struct DrainResult {
    uint64_t bytes = 0;
    int64_t background_ns = 0;
  };
  using DrainSink = std::function<Status(
      sim::VirtualClock& clock, uint64_t offset, std::span<const uint8_t>)>;
  StatusOr<DrainResult> DrainCheckpoint(const std::string& name,
                                        const DrainSink& sink);

  // Delete a drained (or abandoned) checkpoint from the aggregate store,
  // releasing its NVM space for the next timestep.
  Status ReleaseCheckpoint(const std::string& name);

  size_t live_regions() const;

 private:
  struct SharedEntry {
    NvmRegion* region = nullptr;
    int refcount = 0;
  };

  std::string FreshFileName();

  store::AggregateStore& store_;
  const int node_id_;
  NvmallocConfig config_;
  fuselite::MountPoint mount_;
  PagePool pool_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<NvmRegion>> regions_;
  std::unordered_map<std::string, SharedEntry> shared_;
  uint64_t next_var_id_ = 0;
};

}  // namespace nvm

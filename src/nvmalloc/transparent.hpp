// TransparentMap — genuine pointer-transparent access to an NVM-backed
// allocation, realised with mmap + a user-level page-fault handler.
//
// The paper's ssdmalloc() returns an address from mmap()ing a FUSE file;
// plain loads and stores then fault 4 KB pages through the kernel.  A
// kernel FUSE mount is unavailable in this environment, so we reproduce
// the mechanism one level up, the way user-level DSM systems do:
//
//   * the region is an anonymous PROT_NONE mapping,
//   * SIGSEGV on first touch loads the page from the fuselite chunk cache
//     and reprotects it PROT_READ,
//   * SIGSEGV on first store marks the page dirty and grants PROT_WRITE,
//   * a FIFO residency cap evicts pages: dirty ones are written back
//     through fuselite (and thence to the aggregate store), then the page
//     reverts to PROT_NONE.
//
// The result is real byte-addressability on real pointers: `nvmvar[i] = x`
// works on a plain double*.  Virtual time is charged on the same paths as
// NvmRegion, so semantics match the deterministic engine.
//
// Caveat (documented design trade-off): the fault handler takes locks and
// allocates, which POSIX does not sanction inside a signal handler.  This
// is the standard practice in user-level paging systems (TreadMarks et
// al.) and is safe here because faults only arise from application data
// access, never from inside the allocator or cache (whose buffers live
// outside any mapped region).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nvmalloc/runtime.hpp"

namespace nvm {

class TransparentMap {
 public:
  struct Options {
    // Residency cap for this mapping (modelled OS page-cache share).
    size_t max_resident_pages = 2048;
    SsdMallocOptions alloc;
  };

  // Allocate `bytes` on the aggregate store and expose them as a mapped
  // address range.
  static StatusOr<std::unique_ptr<TransparentMap>> Create(
      NvmallocRuntime& runtime, uint64_t bytes, Options options);
  static StatusOr<std::unique_ptr<TransparentMap>> Create(
      NvmallocRuntime& runtime, uint64_t bytes) {
    return Create(runtime, bytes, Options{});
  }

  ~TransparentMap();

  TransparentMap(const TransparentMap&) = delete;
  TransparentMap& operator=(const TransparentMap&) = delete;

  void* data() { return base_; }
  const void* data() const { return base_; }
  uint64_t size_bytes() const { return size_; }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(base_);
  }

  // Flush dirty pages through fuselite to the store.
  Status Sync();

  uint64_t faults() const { return faults_; }
  uint64_t evictions() const { return evictions_; }
  size_t resident_pages() const;

  // Internal: invoked by the process-wide SIGSEGV dispatcher.
  bool HandleFault(void* addr, bool is_write);

 private:
  TransparentMap(NvmallocRuntime& runtime, NvmRegion* region, void* base,
                 uint64_t size, size_t max_resident);

  enum class PageState : uint8_t { kAbsent, kClean, kDirty };

  // mutex_ held.
  Status LoadPageLocked(size_t page, bool for_write);
  Status EvictOneLocked();
  Status WriteBackLocked(size_t page);

  NvmallocRuntime& runtime_;
  NvmRegion* region_;  // backing file owner (its pager is bypassed; we
                       // page directly against the fuselite cache)
  uint8_t* base_ = nullptr;
  uint8_t* scratch_ = nullptr;  // landing slot for atomically stolen pages
  const uint64_t size_;
  const uint64_t map_bytes_;  // page-rounded
  const size_t max_resident_;

  mutable std::mutex mutex_;
  std::vector<PageState> states_;
  std::vector<uint32_t> fifo_;  // resident pages in fault order
  size_t fifo_head_ = 0;
  uint64_t faults_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace nvm

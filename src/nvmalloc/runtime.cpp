#include "nvmalloc/runtime.hpp"

#include <cstring>

#include "common/log.hpp"
#include "sim/clock.hpp"

namespace nvm {
namespace {

constexpr uint64_t kCheckpointMagic = 0x31544B434D564EULL;  // "NVMCKT1"

struct CheckpointHeader {
  uint64_t magic = kCheckpointMagic;
  uint64_t n_dram = 0;
  uint64_t n_nvm = 0;
  uint64_t linked = 0;
  // Followed by n_dram + n_nvm little-endian u64 segment sizes.
};

}  // namespace

NvmallocRuntime::NvmallocRuntime(store::AggregateStore& store, int node_id,
                                 NvmallocConfig config)
    : store_(store),
      node_id_(node_id),
      config_(config),
      mount_(store, node_id, config.fuse),
      pool_(config.page_pool_bytes / NvmRegion::kPageBytes) {}

std::string NvmallocRuntime::FreshFileName() {
  // Internal names, invisible to the application (paper §III-C: "the
  // client need not be aware of the file name").
  return "/nvmalloc/node" + std::to_string(node_id_) + "/var" +
         std::to_string(next_var_id_++);
}

namespace {
std::string PersistentFileName(const std::string& name) {
  // Node-independent namespace: any job on any node can re-attach.
  return "/nvmalloc/persistent/" + name;
}
}  // namespace

StatusOr<NvmRegion*> NvmallocRuntime::SsdMalloc(uint64_t bytes,
                                                SsdMallocOptions opts) {
  if (bytes == 0) return InvalidArgument("ssdmalloc of zero bytes");
  if (opts.persistent && opts.persist_name.empty()) {
    return InvalidArgument("persistent ssdmalloc needs a persist_name");
  }
  std::lock_guard<std::mutex> lock(mutex_);

  if (opts.shared) {
    NVM_CHECK(!opts.shared_name.empty(),
              "shared ssdmalloc needs a shared_name");
    auto it = shared_.find(opts.shared_name);
    if (it != shared_.end()) {
      if (it->second.region->size_bytes() != bytes) {
        return InvalidArgument("shared region '" + opts.shared_name +
                               "' exists with different size");
      }
      ++it->second.refcount;
      return it->second.region;
    }
  }

  std::string name;
  if (opts.persistent) {
    name = PersistentFileName(opts.persist_name);
  } else if (opts.shared) {
    name = "/nvmalloc/node" + std::to_string(node_id_) + "/shared/" +
           opts.shared_name;
  } else {
    name = FreshFileName();
  }
  NVM_ASSIGN_OR_RETURN(fuselite::FileHandle file,
                       mount_.Create(name, bytes));
  auto region = std::make_unique<NvmRegion>(
      mount_, pool_, file, bytes, opts.shared, config_.page_fault_ns);
  region->set_persistent(opts.persistent);
  mount_.cache().SetAdvice(file.id(), opts.advice);
  NvmRegion* raw = region.get();
  regions_.push_back(std::move(region));
  if (opts.shared) {
    shared_[opts.shared_name] = SharedEntry{raw, 1};
  }
  return raw;
}

StatusOr<NvmRegion*> NvmallocRuntime::OpenPersistent(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  NVM_ASSIGN_OR_RETURN(fuselite::FileHandle file,
                       mount_.Open(PersistentFileName(name)));
  NVM_ASSIGN_OR_RETURN(store::FileInfo info, file.Stat());
  auto region = std::make_unique<NvmRegion>(
      mount_, pool_, file, info.size, /*shared=*/false,
      config_.page_fault_ns);
  region->set_persistent(true);
  NvmRegion* raw = region.get();
  regions_.push_back(std::move(region));
  return raw;
}

Status NvmallocRuntime::DropPersistent(const std::string& name) {
  return mount_.Unlink(PersistentFileName(name));
}

Status NvmallocRuntime::SsdFree(NvmRegion* region) {
  if (region == nullptr) return InvalidArgument("ssdfree(nullptr)");
  std::lock_guard<std::mutex> lock(mutex_);

  if (region->persistent()) {
    // Lifetime extends past the job: sync instead of unlink.
    NVM_RETURN_IF_ERROR(region->Sync());
    region->Invalidate();
    for (auto it = regions_.begin(); it != regions_.end(); ++it) {
      if (it->get() == region) {
        regions_.erase(it);
        return OkStatus();
      }
    }
    return InvalidArgument("ssdfree of a region this runtime does not own");
  }

  if (region->shared()) {
    for (auto it = shared_.begin(); it != shared_.end(); ++it) {
      if (it->second.region == region) {
        if (--it->second.refcount > 0) return OkStatus();
        shared_.erase(it);
        break;
      }
    }
  }

  auto& clock = sim::CurrentClock();
  // munmap drops the mapping without persisting; the backing file goes
  // with it (checkpointed chunks survive through their own refcounts).
  region->Invalidate();
  NVM_RETURN_IF_ERROR(mount_.cache().Drop(clock, region->file_id()));
  NVM_RETURN_IF_ERROR(
      mount_.client().Unlink(clock, region->file_id()));
  for (auto it = regions_.begin(); it != regions_.end(); ++it) {
    if (it->get() == region) {
      regions_.erase(it);
      return OkStatus();
    }
  }
  return InvalidArgument("ssdfree of a region this runtime does not own");
}

StatusOr<CheckpointInfo> NvmallocRuntime::SsdCheckpoint(
    const CheckpointSpec& spec, const std::string& name) {
  auto& clock = sim::CurrentClock();
  const int64_t t0 = clock.now();
  const uint64_t chunk = mount_.client().config().chunk_bytes;
  CheckpointInfo info;

  NVM_ASSIGN_OR_RETURN(fuselite::FileHandle file, mount_.Create(name));

  // Header chunk: magic, counts, then all segment sizes.
  std::vector<uint8_t> header(chunk, 0);
  CheckpointHeader h;
  h.n_dram = spec.dram.size();
  h.n_nvm = spec.nvm.size();
  h.linked = spec.link_nvm ? 1 : 0;
  std::memcpy(header.data(), &h, sizeof(h));
  uint64_t* sizes = reinterpret_cast<uint64_t*>(header.data() + sizeof(h));
  NVM_CHECK(sizeof(h) + (spec.dram.size() + spec.nvm.size()) * 8 <= chunk,
            "too many checkpoint segments for one header chunk");
  size_t si = 0;
  for (const auto& seg : spec.dram) sizes[si++] = seg.bytes;
  for (const auto* region : spec.nvm) sizes[si++] = region->size_bytes();
  NVM_RETURN_IF_ERROR(file.Write(0, header));

  // DRAM segments, each starting on a chunk boundary so that linked NVM
  // chunks can follow without copying.
  uint64_t offset = chunk;
  for (const auto& seg : spec.dram) {
    NVM_RETURN_IF_ERROR(file.Write(
        offset, {static_cast<const uint8_t*>(seg.data), seg.bytes}));
    info.dram_bytes_copied += seg.bytes;
    offset = RoundUp(offset + seg.bytes, chunk);
  }
  // Make the DRAM part durable and the file chunk-aligned before linking.
  NVM_RETURN_IF_ERROR(file.Sync());
  NVM_RETURN_IF_ERROR(file.Fallocate(offset));

  for (NvmRegion* region : spec.nvm) {
    // The store must hold the variable's current bytes before we share
    // its chunks.
    NVM_RETURN_IF_ERROR(region->Sync());
    if (spec.link_nvm) {
      NVM_ASSIGN_OR_RETURN(uint64_t link_off,
                           mount_.client().LinkFileChunks(
                               clock, file.id(), region->file_id()));
      NVM_CHECK(link_off == offset,
                "checkpoint layout drift: linked at %llu, expected %llu",
                static_cast<unsigned long long>(link_off),
                static_cast<unsigned long long>(offset));
      info.nvm_bytes_linked += region->size_bytes();
    } else {
      // Ablation baseline: copy the variable's bytes like DRAM state.
      std::vector<uint8_t> buf(chunk);
      for (uint64_t pos = 0; pos < region->size_bytes(); pos += chunk) {
        const uint64_t n = std::min(chunk, region->size_bytes() - pos);
        NVM_RETURN_IF_ERROR(mount_.cache().Read(
            clock, region->file_id(), pos, {buf.data(), n}));
        NVM_RETURN_IF_ERROR(file.Write(offset + pos, {buf.data(), n}));
      }
      info.nvm_bytes_copied += region->size_bytes();
    }
    offset = RoundUp(offset + region->size_bytes(), chunk);
    if (!spec.link_nvm) {
      NVM_RETURN_IF_ERROR(file.Fallocate(offset));
    }
  }

  NVM_RETURN_IF_ERROR(file.Sync());
  info.duration_ns = clock.now() - t0;
  return info;
}

Status NvmallocRuntime::SsdRestart(const std::string& name,
                                   const RestoreSpec& spec) {
  auto& clock = sim::CurrentClock();
  const uint64_t chunk = mount_.client().config().chunk_bytes;
  NVM_ASSIGN_OR_RETURN(fuselite::FileHandle file, mount_.Open(name));

  std::vector<uint8_t> header(chunk);
  NVM_RETURN_IF_ERROR(file.Read(0, header));
  CheckpointHeader h;
  std::memcpy(&h, header.data(), sizeof(h));
  if (h.magic != kCheckpointMagic) {
    return IoError("'" + name + "' is not an NVMalloc checkpoint");
  }
  if (h.n_dram != spec.dram.size() || h.n_nvm != spec.nvm.size()) {
    return InvalidArgument("restore spec shape does not match checkpoint");
  }
  const uint64_t* sizes =
      reinterpret_cast<const uint64_t*>(header.data() + sizeof(h));
  size_t si = 0;
  for (const auto& seg : spec.dram) {
    if (sizes[si++] != seg.bytes) {
      return InvalidArgument("DRAM segment size mismatch on restore");
    }
  }
  for (const auto* region : spec.nvm) {
    if (sizes[si++] != region->size_bytes()) {
      return InvalidArgument("NVM region size mismatch on restore");
    }
  }

  uint64_t offset = chunk;
  for (const auto& seg : spec.dram) {
    NVM_RETURN_IF_ERROR(
        file.Read(offset, {static_cast<uint8_t*>(seg.data), seg.bytes}));
    offset = RoundUp(offset + seg.bytes, chunk);
  }
  std::vector<uint8_t> buf(chunk);
  for (NvmRegion* region : spec.nvm) {
    for (uint64_t pos = 0; pos < region->size_bytes(); pos += chunk) {
      const uint64_t n = std::min(chunk, region->size_bytes() - pos);
      NVM_RETURN_IF_ERROR(file.Read(offset + pos, {buf.data(), n}));
      NVM_RETURN_IF_ERROR(region->Write(pos, {buf.data(), n}));
    }
    offset = RoundUp(offset + region->size_bytes(), chunk);
  }
  (void)clock;
  return OkStatus();
}

StatusOr<NvmallocRuntime::DrainResult> NvmallocRuntime::DrainCheckpoint(
    const std::string& name, const DrainSink& sink) {
  // The drain is the background drainer process's work: it reads the
  // checkpoint from the store and pushes it to the sink on its own clock,
  // starting "now" but never charging the application.
  sim::VirtualClock background(sim::CurrentClock().now());
  NVM_ASSIGN_OR_RETURN(store::FileId id,
                       mount_.client().Open(background, name));
  NVM_ASSIGN_OR_RETURN(store::FileInfo info,
                       mount_.client().Stat(background, id));
  const uint64_t chunk = mount_.client().config().chunk_bytes;

  DrainResult result;
  std::vector<uint8_t> buf(chunk);
  for (uint64_t pos = 0; pos < info.size; pos += chunk) {
    const uint64_t n = std::min(chunk, info.size - pos);
    NVM_RETURN_IF_ERROR(
        mount_.client().ReadChunk(background, id,
                                  static_cast<uint32_t>(pos / chunk), buf));
    NVM_RETURN_IF_ERROR(sink(background, pos, {buf.data(), n}));
    result.bytes += n;
  }
  result.background_ns = background.now();
  return result;
}

Status NvmallocRuntime::ReleaseCheckpoint(const std::string& name) {
  return mount_.Unlink(name);
}

size_t NvmallocRuntime::live_regions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return regions_.size();
}

}  // namespace nvm

#include "nvmalloc/transparent.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <ucontext.h>

#include <cstring>
#include <map>

#include "common/log.hpp"
#include "sim/clock.hpp"

namespace nvm {
namespace {

constexpr uint64_t kPage = NvmRegion::kPageBytes;

// Process-wide registry of mapped ranges and the SIGSEGV dispatcher.
class FaultRegistry {
 public:
  static FaultRegistry& Instance() {
    static FaultRegistry registry;
    return registry;
  }

  void Register(uintptr_t start, uintptr_t end, TransparentMap* map) {
    std::lock_guard<std::mutex> lock(mutex_);
    ranges_[start] = Range{end, map};
    EnsureHandlerInstalled();
  }

  void Unregister(uintptr_t start) {
    std::lock_guard<std::mutex> lock(mutex_);
    ranges_.erase(start);
  }

  TransparentMap* Find(uintptr_t addr) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ranges_.upper_bound(addr);
    if (it == ranges_.begin()) return nullptr;
    --it;
    return (addr < it->second.end) ? it->second.map : nullptr;
  }

 private:
  struct Range {
    uintptr_t end;
    TransparentMap* map;
  };

  static void Handler(int signo, siginfo_t* info, void* ucontext) {
    const auto addr = reinterpret_cast<uintptr_t>(info->si_addr);
    TransparentMap* map = Instance().Find(addr);
    bool handled = false;
    if (map != nullptr) {
#if defined(__x86_64__)
      // Bit 1 of the page-fault error code distinguishes writes.
      auto* uc = static_cast<ucontext_t*>(ucontext);
      const bool is_write =
          (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#else
      // Portable fallback: treat every fault as a write (conservatively
      // grants RW and marks dirty; correctness preserved, write-back
      // volume may be overstated on non-x86 hosts).
      (void)ucontext;
      const bool is_write = true;
#endif
      handled = map->HandleFault(info->si_addr, is_write);
    }
    if (!handled) {
      // A genuine crash: fall back to the default action.
      signal(signo, SIG_DFL);
      raise(signo);
    }
  }

  void EnsureHandlerInstalled() {
    if (installed_) return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &Handler;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    NVM_CHECK(sigaction(SIGSEGV, &sa, nullptr) == 0);
    installed_ = true;
  }

  std::mutex mutex_;
  std::map<uintptr_t, Range> ranges_;
  bool installed_ = false;
};

}  // namespace

StatusOr<std::unique_ptr<TransparentMap>> TransparentMap::Create(
    NvmallocRuntime& runtime, uint64_t bytes, Options options) {
  NVM_ASSIGN_OR_RETURN(NvmRegion * region,
                       runtime.SsdMalloc(bytes, options.alloc));
  const uint64_t map_bytes = RoundUp(bytes, kPage);
  void* base = mmap(nullptr, map_bytes, PROT_NONE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    (void)runtime.SsdFree(region);
    return Internal("mmap failed for transparent mapping");
  }
  auto map = std::unique_ptr<TransparentMap>(new TransparentMap(
      runtime, region, base, bytes, options.max_resident_pages));
  FaultRegistry::Instance().Register(
      reinterpret_cast<uintptr_t>(base),
      reinterpret_cast<uintptr_t>(base) + map_bytes, map.get());
  return map;
}

TransparentMap::TransparentMap(NvmallocRuntime& runtime, NvmRegion* region,
                               void* base, uint64_t size,
                               size_t max_resident)
    : runtime_(runtime),
      region_(region),
      base_(static_cast<uint8_t*>(base)),
      size_(size),
      map_bytes_(RoundUp(size, kPage)),
      max_resident_(std::max<size_t>(1, max_resident)),
      states_(map_bytes_ / kPage, PageState::kAbsent) {
  scratch_ = static_cast<uint8_t*>(mmap(
      nullptr, kPage, PROT_NONE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
  NVM_CHECK(scratch_ != MAP_FAILED);
}

TransparentMap::~TransparentMap() {
  (void)Sync();
  FaultRegistry::Instance().Unregister(reinterpret_cast<uintptr_t>(base_));
  munmap(base_, map_bytes_);
  munmap(scratch_, kPage);
  (void)runtime_.SsdFree(region_);
}

Status TransparentMap::WriteBackLocked(size_t page) {
  if (states_[page] != PageState::kDirty) return OkStatus();
  const uint64_t offset = page * kPage;
  const uint64_t len = std::min(kPage, size_ - offset);

  // Atomically steal the page out of the mapping before writing it back:
  // the slot becomes PROT_NONE in one step, so a concurrent store either
  // lands before the steal (and is included in the write-back) or faults
  // and blocks on our mutex — never lost.  This mirrors what a kernel's
  // TLB-shootdown-then-writeback does.
  void* stolen = mremap(base_ + offset, kPage, kPage,
                        MREMAP_MAYMOVE | MREMAP_FIXED, scratch_);
  NVM_CHECK(stolen == scratch_, "mremap steal failed");
  // The slot is now unmapped; remap it PROT_NONE so later faults route
  // back here instead of crashing.
  NVM_CHECK(mmap(base_ + offset, kPage, PROT_NONE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1,
                 0) == base_ + offset);
  states_[page] = PageState::kAbsent;

  Status s = runtime_.mount().cache().Write(
      sim::CurrentClock(), region_->file_id(), offset,
      {static_cast<uint8_t*>(stolen), len});
  // Reset the scratch slot for the next steal.
  NVM_CHECK(mmap(scratch_, kPage, PROT_NONE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0) == scratch_);
  return s;
}

Status TransparentMap::EvictOneLocked() {
  while (fifo_head_ < fifo_.size()) {
    const uint32_t victim = fifo_[fifo_head_++];
    if (states_[victim] == PageState::kAbsent) continue;  // stale
    if (states_[victim] == PageState::kDirty) {
      NVM_RETURN_IF_ERROR(WriteBackLocked(victim));  // also unmaps
    } else {
      NVM_CHECK(mprotect(base_ + victim * kPage, kPage, PROT_NONE) == 0);
      states_[victim] = PageState::kAbsent;
    }
    ++evictions_;
    // Compact the FIFO backlog occasionally.
    if (fifo_head_ > 4096 && fifo_head_ * 2 > fifo_.size()) {
      fifo_.erase(fifo_.begin(),
                  fifo_.begin() + static_cast<ptrdiff_t>(fifo_head_));
      fifo_head_ = 0;
    }
    return OkStatus();
  }
  // Nothing evictable: every remaining entry was stale (its page already
  // written back by Sync()).  Draining them corrected the residency
  // bookkeeping, so the pending load may simply proceed.
  return OkStatus();
}

Status TransparentMap::LoadPageLocked(size_t page, bool for_write) {
  const size_t resident = fifo_.size() - fifo_head_;
  if (resident >= max_resident_) {
    NVM_RETURN_IF_ERROR(EvictOneLocked());
  }
  const uint64_t offset = page * kPage;
  const uint64_t len = std::min(kPage, size_ - offset);

  // Prepare the page's contents in a donor mapping, set the final
  // protection there, then splice it into place atomically with mremap.
  // Until the splice, every access to the slot faults and blocks on our
  // mutex, so no store can slip in while the contents are in flight.
  void* donor = mmap(nullptr, kPage, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  NVM_CHECK(donor != MAP_FAILED);
  auto& clock = sim::CurrentClock();
  clock.Advance(runtime_.config().page_fault_ns);
  Status s = runtime_.mount().cache().Read(
      clock, region_->file_id(), offset,
      {static_cast<uint8_t*>(donor), len});
  if (!s.ok()) {
    munmap(donor, kPage);
    return s;
  }
  if (!for_write) {
    NVM_CHECK(mprotect(donor, kPage, PROT_READ) == 0);
  }
  NVM_CHECK(mremap(donor, kPage, kPage, MREMAP_MAYMOVE | MREMAP_FIXED,
                   base_ + offset) == base_ + offset);
  states_[page] = for_write ? PageState::kDirty : PageState::kClean;
  fifo_.push_back(static_cast<uint32_t>(page));
  ++faults_;
  return OkStatus();
}

bool TransparentMap::HandleFault(void* addr, bool is_write) {
  const auto offset =
      static_cast<uint64_t>(static_cast<uint8_t*>(addr) - base_);
  if (offset >= map_bytes_) return false;
  const size_t page = offset / kPage;

  std::lock_guard<std::mutex> lock(mutex_);
  switch (states_[page]) {
    case PageState::kAbsent:
      return LoadPageLocked(page, is_write).ok();
    case PageState::kClean:
      if (!is_write) {
        // Raced with another thread that already loaded it.
        return true;
      }
      // Write upgrade: grant RW and start tracking the page as dirty.
      NVM_CHECK(mprotect(base_ + page * kPage, kPage,
                         PROT_READ | PROT_WRITE) == 0);
      states_[page] = PageState::kDirty;
      sim::CurrentClock().Advance(runtime_.config().page_fault_ns);
      return true;
    case PageState::kDirty:
      // Raced with a concurrent upgrade; retry the access.
      return true;
  }
  return false;
}

Status TransparentMap::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Write-back steals each dirty page (leaving it absent); the next access
  // refaults it — msync-like cost semantics.
  for (size_t p = 0; p < states_.size(); ++p) {
    NVM_RETURN_IF_ERROR(WriteBackLocked(p));
  }
  return runtime_.mount().cache().Flush(sim::CurrentClock(),
                                        region_->file_id());
}

size_t TransparentMap::resident_pages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (PageState s : states_) {
    if (s != PageState::kAbsent) ++n;
  }
  return n;
}

}  // namespace nvm

// NvmRegion — an ssdmalloc'd memory region backed by a file on the
// aggregate NVM store, accessed through mmap-style page residency.
//
// The paper maps a FUSE-backed file with mmap(); byte accesses fault 4 KB
// pages in and out of DRAM, and the FUSE chunk cache underneath talks to
// the store in 256 KB chunks.  NvmRegion models that double buffering
// explicitly so it works under virtual time:
//
//   application --(page faults)--> resident pages (PagePool budget)
//        --(page read/write-back)--> fuselite ChunkCache (64 MB LRU)
//        --(chunk fetch / dirty-page flush)--> aggregate store
//
// The region owns a contiguous backing buffer covering the whole mapping;
// "resident" pages are those the modelled OS currently holds, bounded by
// the node-wide PagePool.  Pin() is the hot-path accessor: it faults the
// covered pages in (charging per-page fault cost plus any cache/store
// traffic) and returns an RAII guard over a raw pointer, so kernels run at
// native speed between faults — exactly the behaviour mmap gives the
// paper's kernels.  While a guard is alive its pages cannot be evicted
// (they behave like pages between two fault-visible instants: a real OS
// would re-dirty them on the next store; our coarser granularity instead
// pins them for the guard's scope).
//
// A separate, genuinely transparent SIGSEGV-based path (TransparentMap in
// transparent.hpp) provides real pointer semantics for applications; this
// class is the deterministic engine the benchmarks use.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "fuselite/mount.hpp"

namespace nvm {

class NvmRegion;

// Node-wide budget of resident (mapped-in) pages shared by every region on
// the node — the modelled OS page cache available to mmap'd NVM variables.
// Replacement is FIFO (second-chance bookkeeping would cost a lock per
// element access; the paper's workloads are streaming or tile-reuse, where
// FIFO and LRU behave alike).  Pinned pages are skipped; if every resident
// page is pinned the pool briefly overcommits, like mlock'd pages.
class PagePool {
 public:
  explicit PagePool(uint64_t capacity_pages)
      : capacity_pages_(capacity_pages) {}

  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t resident_pages() const;
  uint64_t faults() const { return faults_.value(); }
  uint64_t evictions() const { return evictions_.value(); }

 private:
  friend class NvmRegion;
  struct Entry {
    NvmRegion* region;
    uint32_t page;
  };

  // All pager state on a node shares this one mutex: regions and pool
  // interleave arbitrarily during eviction, and a single lock makes that
  // trivially deadlock-free.
  std::mutex mutex_;
  std::deque<Entry> fifo_;
  uint64_t capacity_pages_ = 0;
  uint64_t resident_ = 0;
  Counter faults_;
  Counter evictions_;
};

struct RegionStats {
  uint64_t page_faults = 0;
  uint64_t pages_evicted = 0;
  uint64_t bytes_faulted_in = 0;
  uint64_t bytes_written_back = 0;
};

// Move-only guard over a pinned byte range of a region.  The pointer is
// valid and its pages immune to eviction until destruction.
class [[nodiscard]] PinnedSpan {
 public:
  PinnedSpan() = default;
  PinnedSpan(PinnedSpan&& other) noexcept { *this = std::move(other); }
  PinnedSpan& operator=(PinnedSpan&& other) noexcept;
  ~PinnedSpan() { Release(); }

  PinnedSpan(const PinnedSpan&) = delete;
  PinnedSpan& operator=(const PinnedSpan&) = delete;

  uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  bool valid() const { return region_ != nullptr; }
  void Release();

 private:
  friend class NvmRegion;
  PinnedSpan(NvmRegion* region, uint8_t* data, uint64_t size,
             uint32_t first_page, uint32_t last_page)
      : region_(region),
        data_(data),
        size_(size),
        first_page_(first_page),
        last_page_(last_page) {}

  NvmRegion* region_ = nullptr;
  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  uint32_t first_page_ = 0;
  uint32_t last_page_ = 0;
};

// Typed pinned view (array kernels hold these for a block/tile scope).
template <typename T>
class [[nodiscard]] PinnedArray {
 public:
  PinnedArray() = default;
  explicit PinnedArray(PinnedSpan span) : span_(std::move(span)) {}

  T* data() const { return reinterpret_cast<T*>(span_.data()); }
  size_t size() const { return static_cast<size_t>(span_.size() / sizeof(T)); }
  T& operator[](size_t i) const { return data()[i]; }
  bool valid() const { return span_.valid(); }
  void Release() { span_.Release(); }

 private:
  PinnedSpan span_;
};

class NvmRegion {
 public:
  static constexpr uint64_t kPageBytes = 4_KiB;

  // Created via NvmallocRuntime::SsdMalloc; the region assumes the file
  // already exists with `size` bytes fallocated.
  NvmRegion(fuselite::MountPoint& mount, PagePool& pool,
            fuselite::FileHandle file, uint64_t size, bool shared,
            int64_t page_fault_ns);
  ~NvmRegion();

  NvmRegion(const NvmRegion&) = delete;
  NvmRegion& operator=(const NvmRegion&) = delete;

  uint64_t size_bytes() const { return size_; }
  store::FileId file_id() const { return file_.id(); }
  bool shared() const { return shared_; }
  // Persistent variables outlive ssdfree (paper §III-C's lifetime idea).
  bool persistent() const { return persistent_; }
  void set_persistent(bool p) { persistent_ = p; }
  fuselite::FileHandle& file() { return file_; }

  // Fault in and pin all pages covering [offset, offset+len).  With
  // `for_write`, the pages are marked dirty.  Returns a guard whose
  // data() points at the (contiguous) bytes.
  StatusOr<PinnedSpan> Pin(uint64_t offset, uint64_t len, bool for_write);

  // Convenience bulk accessors built on Pin().
  Status Read(uint64_t offset, std::span<uint8_t> out);
  Status Write(uint64_t offset, std::span<const uint8_t> in);

  // Write every dirty resident page down to the fuselite cache and flush
  // the cache to the store — after this the store holds current data
  // (required before checkpoint linking).
  Status Sync();

  // Drop residency without writing back (used when the backing file is
  // deleted by ssdfree).
  void Invalidate();

  RegionStats stats() const;

 private:
  friend class PagePool;
  friend class PinnedSpan;

  // Pool-mutex-held helpers.
  Status FaultPageLocked(sim::VirtualClock& clock, uint32_t page);
  // Returns true if a page was evicted (false: everything pinned).
  StatusOr<bool> EvictOnePageLocked(sim::VirtualClock& clock);
  Status WriteBackPageLocked(sim::VirtualClock& clock, uint32_t page);
  void Unpin(uint32_t first_page, uint32_t last_page);

  fuselite::MountPoint& mount_;
  PagePool& pool_;
  fuselite::FileHandle file_;
  const uint64_t size_;
  const bool shared_;
  bool persistent_ = false;
  const int64_t page_fault_ns_;
  const uint64_t num_pages_;

  std::vector<uint8_t> buffer_;  // full-region backing window
  Bitmap resident_;
  Bitmap dirty_;
  std::vector<uint16_t> pin_counts_;
  RegionStats stats_;
};

// Typed view over a region, with page-block iteration helpers that keep
// per-element overhead off the hot path.
template <typename T>
class NvmArray {
 public:
  NvmArray() = default;
  explicit NvmArray(NvmRegion* region) : region_(region) {}

  size_t size() const {
    return static_cast<size_t>(region_->size_bytes() / sizeof(T));
  }
  NvmRegion* region() const { return region_; }

  // Pin `count` elements starting at `index` for reading.
  StatusOr<PinnedArray<const T>> PinRead(size_t index, size_t count) {
    auto p = region_->Pin(index * sizeof(T), count * sizeof(T), false);
    if (!p.ok()) return p.status();
    return PinnedArray<const T>(std::move(*p));
  }

  // Pin `count` elements starting at `index` for writing.
  StatusOr<PinnedArray<T>> PinWrite(size_t index, size_t count) {
    auto p = region_->Pin(index * sizeof(T), count * sizeof(T), true);
    if (!p.ok()) return p.status();
    return PinnedArray<T>(std::move(*p));
  }

  // Single-element accessors (tests and low-rate paths).
  StatusOr<T> Get(size_t index) {
    NVM_ASSIGN_OR_RETURN(PinnedArray<const T> p, PinRead(index, 1));
    return p[0];
  }
  Status Set(size_t index, T value) {
    NVM_ASSIGN_OR_RETURN(PinnedArray<T> p, PinWrite(index, 1));
    p[0] = value;
    return OkStatus();
  }

 private:
  NvmRegion* region_ = nullptr;
};

}  // namespace nvm

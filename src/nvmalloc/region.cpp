#include "nvmalloc/region.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "sim/clock.hpp"

namespace nvm {

uint64_t PagePool::resident_pages() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mutex_));
  return resident_;
}

PinnedSpan& PinnedSpan::operator=(PinnedSpan&& other) noexcept {
  Release();
  region_ = other.region_;
  data_ = other.data_;
  size_ = other.size_;
  first_page_ = other.first_page_;
  last_page_ = other.last_page_;
  other.region_ = nullptr;
  return *this;
}

void PinnedSpan::Release() {
  if (region_ != nullptr) {
    region_->Unpin(first_page_, last_page_);
    region_ = nullptr;
  }
}

NvmRegion::NvmRegion(fuselite::MountPoint& mount, PagePool& pool,
                     fuselite::FileHandle file, uint64_t size, bool shared,
                     int64_t page_fault_ns)
    : mount_(mount),
      pool_(pool),
      file_(file),
      size_(size),
      shared_(shared),
      page_fault_ns_(page_fault_ns),
      num_pages_(CeilDiv(size, kPageBytes)),
      buffer_(RoundUp(size, kPageBytes), 0),
      resident_(num_pages_),
      dirty_(num_pages_),
      pin_counts_(num_pages_, 0) {}

NvmRegion::~NvmRegion() {
  // Residency entries referencing this region must not dangle in the pool.
  Invalidate();
}

void NvmRegion::Unpin(uint32_t first_page, uint32_t last_page) {
  std::lock_guard<std::mutex> lock(pool_.mutex_);
  for (uint32_t p = first_page; p <= last_page; ++p) {
    NVM_CHECK(pin_counts_[p] > 0);
    --pin_counts_[p];
  }
}

Status NvmRegion::WriteBackPageLocked(sim::VirtualClock& clock,
                                      uint32_t page) {
  if (!dirty_.Test(page)) return OkStatus();
  const uint64_t offset = static_cast<uint64_t>(page) * kPageBytes;
  const uint64_t len = std::min(kPageBytes, size_ - offset);
  NVM_RETURN_IF_ERROR(mount_.cache().Write(
      clock, file_.id(), offset, {buffer_.data() + offset, len}));
  dirty_.Clear(page);
  stats_.bytes_written_back += len;
  return OkStatus();
}

StatusOr<bool> NvmRegion::EvictOnePageLocked(sim::VirtualClock& clock) {
  // Scan the FIFO for the oldest evictable (unpinned, still resident)
  // page.  Pinned entries rotate to the back; if everything resident is
  // pinned the pool overcommits for the moment, like mlock'd memory.
  size_t scanned = 0;
  const size_t limit = pool_.fifo_.size();
  while (scanned++ < limit && !pool_.fifo_.empty()) {
    const PagePool::Entry victim = pool_.fifo_.front();
    pool_.fifo_.pop_front();
    NvmRegion* r = victim.region;
    if (!r->resident_.Test(victim.page)) {
      continue;  // stale entry (page already invalidated)
    }
    if (r->pin_counts_[victim.page] > 0) {
      pool_.fifo_.push_back(victim);
      continue;
    }
    NVM_RETURN_IF_ERROR(r->WriteBackPageLocked(clock, victim.page));
    r->resident_.Clear(victim.page);
    ++r->stats_.pages_evicted;
    pool_.evictions_.Add(1);
    NVM_CHECK(pool_.resident_ > 0);
    --pool_.resident_;
    return true;
  }
  return false;  // all pinned: transient overcommit
}

Status NvmRegion::FaultPageLocked(sim::VirtualClock& clock, uint32_t page) {
  while (pool_.resident_ >= pool_.capacity_pages_) {
    NVM_ASSIGN_OR_RETURN(bool evicted, EvictOnePageLocked(clock));
    if (!evicted) break;  // everything pinned: overcommit for now
  }
  const uint64_t offset = static_cast<uint64_t>(page) * kPageBytes;
  const uint64_t len = std::min(kPageBytes, size_ - offset);
  clock.Advance(page_fault_ns_);
  NVM_RETURN_IF_ERROR(mount_.cache().Read(clock, file_.id(), offset,
                                          {buffer_.data() + offset, len}));
  resident_.Set(page);
  pool_.fifo_.push_back({this, page});
  ++pool_.resident_;
  ++stats_.page_faults;
  stats_.bytes_faulted_in += len;
  pool_.faults_.Add(1);
  return OkStatus();
}

StatusOr<PinnedSpan> NvmRegion::Pin(uint64_t offset, uint64_t len,
                                    bool for_write) {
  if (offset + len > size_) {
    return OutOfRange("Pin(" + std::to_string(offset) + "," +
                      std::to_string(len) + ") beyond region of " +
                      FormatBytes(size_));
  }
  const auto first = static_cast<uint32_t>(offset / kPageBytes);
  const auto last = len == 0
                        ? first
                        : static_cast<uint32_t>((offset + len - 1) /
                                                kPageBytes);
  auto& clock = sim::CurrentClock();

  std::lock_guard<std::mutex> lock(pool_.mutex_);
  // Pin each page as soon as it is faulted: a page faulted early in this
  // call must not be evicted while later pages of the same span are still
  // being brought in (its contents would be frozen prematurely).
  for (uint32_t p = first; p <= last; ++p) {
    if (len > 0 && !resident_.Test(p)) {
      Status s = FaultPageLocked(clock, p);
      if (!s.ok()) {
        for (uint32_t q = first; q < p; ++q) --pin_counts_[q];
        return s;
      }
    }
    if (len > 0 && for_write) dirty_.Set(p);
    ++pin_counts_[p];
  }
  return PinnedSpan(this, buffer_.data() + offset, len, first, last);
}

namespace {
// Bulk transfers pin at most this much at a time, bounding how far the
// page pool can transiently overcommit for large Read/Write calls.
constexpr uint64_t kBulkWindowBytes = 64 * NvmRegion::kPageBytes;
}  // namespace

Status NvmRegion::Read(uint64_t offset, std::span<uint8_t> out) {
  uint64_t done = 0;
  while (done < out.size()) {
    const uint64_t n = std::min<uint64_t>(kBulkWindowBytes,
                                          out.size() - done);
    NVM_ASSIGN_OR_RETURN(PinnedSpan span, Pin(offset + done, n, false));
    std::memcpy(out.data() + done, span.data(), n);
    done += n;
  }
  return OkStatus();
}

Status NvmRegion::Write(uint64_t offset, std::span<const uint8_t> in) {
  uint64_t done = 0;
  while (done < in.size()) {
    const uint64_t n = std::min<uint64_t>(kBulkWindowBytes,
                                          in.size() - done);
    NVM_ASSIGN_OR_RETURN(PinnedSpan span, Pin(offset + done, n, true));
    std::memcpy(span.data(), in.data() + done, n);
    done += n;
  }
  return OkStatus();
}

Status NvmRegion::Sync() {
  auto& clock = sim::CurrentClock();
  {
    std::lock_guard<std::mutex> lock(pool_.mutex_);
    for (size_t p = dirty_.FindNextSet(0); p < num_pages_;
         p = dirty_.FindNextSet(p + 1)) {
      NVM_RETURN_IF_ERROR(
          WriteBackPageLocked(clock, static_cast<uint32_t>(p)));
    }
  }
  return mount_.cache().Flush(clock, file_.id());
}

void NvmRegion::Invalidate() {
  std::lock_guard<std::mutex> lock(pool_.mutex_);
  uint64_t released = 0;
  for (size_t p = resident_.FindNextSet(0); p < num_pages_;
       p = resident_.FindNextSet(p + 1)) {
    resident_.Clear(p);
    ++released;
  }
  dirty_.ClearAll();
  // Purge this region's FIFO entries so eviction never dereferences us
  // after destruction.
  auto& fifo = pool_.fifo_;
  fifo.erase(std::remove_if(fifo.begin(), fifo.end(),
                            [this](const PagePool::Entry& e) {
                              return e.region == this;
                            }),
             fifo.end());
  NVM_CHECK(pool_.resident_ >= released);
  pool_.resident_ -= released;
}

RegionStats NvmRegion::stats() const {
  std::lock_guard<std::mutex> lock(pool_.mutex_);
  return stats_;
}

}  // namespace nvm

// Client-side chunk cache — the layer that bridges the granularity gap
// between byte-addressable accesses and the 256 KB-chunked aggregate store
// (paper §III-D).
//
//  * 64 MB LRU of whole chunks (configurable),
//  * 4 KB page-granularity dirty tracking inside each chunk,
//  * eviction flushes only the dirty pages (Table VII's write optimisation),
//  * sequential-read detection triggers read-ahead of the next chunk; the
//    prefetch runs on a detached virtual clock so its cost overlaps the
//    application instead of stalling it (that overlap is why the paper's
//    Table III shows NVMalloc *faster* than raw SSD access for streams).
#pragma once

#include <cstdint>
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "store/client.hpp"

namespace nvm::fuselite {

// Per-file access-pattern advice (paper §III-B: applications "could
// potentially use the memory partition for operations that exploit the
// inherent device strengths, e.g., by allocating write-once-read-many
// variables onto the NVM").
enum class AccessAdvice : uint8_t {
  kNormal,             // default policy
  kWriteOnceReadMany,  // deeper read-ahead: the data will be streamed often
  kStreamOnce,         // evict-behind: data is consumed exactly once
};

struct FuseliteConfig {
  uint64_t cache_bytes = 64_MiB;       // paper's FUSE cache size
  bool readahead = true;               // sequential prefetch
  bool dirty_page_writeback = true;    // false = flush whole chunks (ablation)
  int64_t per_op_software_ns = 2'000;  // request handling cost per cache op
  // The FUSE daemon is a per-node user-space service with a small worker
  // pool: chunk fetches issued by the node's processes serialise through
  // its lanes (the paper's numbers clearly show this bottleneck).  Set
  // serialize_daemon=false for an idealised fully-parallel client
  // (ablation); daemon_threads matches FUSE's default multithreading.
  bool serialize_daemon = true;
  int daemon_threads = 8;  // one per core, as FUSE spawns them
  // Dirty chunks evicted under pressure are written back on a background
  // (detached) clock, like the kernel's writeback threads: the evicting
  // process does not stall for the store write, though the devices and
  // NICs are still occupied.  Explicit Flush()/Sync() remain synchronous.
  bool async_writeback = true;
};

// Traffic counters matching the columns of the paper's Tables IV and VII.
struct CacheTraffic {
  uint64_t app_bytes_read = 0;      // bytes the application requested
  uint64_t app_bytes_written = 0;
  uint64_t fetched_chunks = 0;      // misses served from the store
  uint64_t prefetched_chunks = 0;   // read-ahead fetches
  uint64_t hit_chunks = 0;          // accesses served from cache
  uint64_t flushed_pages = 0;       // dirty pages written back
  uint64_t flushed_chunks = 0;      // chunk flush operations
  uint64_t evictions = 0;

  uint64_t store_bytes_fetched(uint64_t chunk_bytes) const {
    return (fetched_chunks + prefetched_chunks) * chunk_bytes;
  }
  uint64_t store_bytes_flushed(uint64_t page_bytes, uint64_t chunk_bytes,
                               bool dirty_page_writeback) const {
    return dirty_page_writeback ? flushed_pages * page_bytes
                                : flushed_chunks * chunk_bytes;
  }
};

class ChunkCache {
 public:
  ChunkCache(store::StoreClient& client, FuseliteConfig config);

  const FuseliteConfig& config() const { return config_; }
  uint64_t chunk_bytes() const { return client_.config().chunk_bytes; }
  uint64_t page_bytes() const { return client_.config().page_bytes; }
  uint64_t capacity_chunks() const { return capacity_chunks_; }

  // Copy [offset, offset+out.size()) of the file into `out`.
  Status Read(sim::VirtualClock& clock, store::FileId file, uint64_t offset,
              std::span<uint8_t> out);

  // Copy `in` into the file at `offset`, write-back (dirty in cache).
  Status Write(sim::VirtualClock& clock, store::FileId file, uint64_t offset,
               std::span<const uint8_t> in);

  // Write back every dirty page of `file` (all files if kInvalidFileId).
  Status Flush(sim::VirtualClock& clock,
               store::FileId file = store::kInvalidFileId);

  // Flush then drop all chunks of `file` (on ssdfree / close).
  Status Drop(sim::VirtualClock& clock, store::FileId file);

  const CacheTraffic& traffic() const { return traffic_; }
  void ResetTraffic() { traffic_ = CacheTraffic{}; }

  // Set the access-pattern policy for a file (ssdmalloc advice flag).
  void SetAdvice(store::FileId file, AccessAdvice advice);
  AccessAdvice advice(store::FileId file) const;
  size_t resident_chunks() const;
  sim::Resource& daemon(size_t lane = 0) { return *daemons_.at(lane); }

 private:
  struct SlotKey {
    store::FileId file;
    uint32_t index;
    bool operator==(const SlotKey&) const = default;
  };
  struct SlotKeyHash {
    size_t operator()(const SlotKey& k) const {
      return std::hash<uint64_t>()(k.file * 0x9e3779b97f4a7c15ULL ^ k.index);
    }
  };
  struct Slot {
    std::vector<uint8_t> data;
    Bitmap dirty;  // pages modified locally, pending write-back
    Bitmap valid;  // pages whose contents are known (fetched or written)
    int64_t ready_at = 0;  // virtual time the chunk finished arriving
    std::list<SlotKey>::iterator lru_it;
  };

  // Find or create (without fetching) the slot for (file, chunk).
  StatusOr<Slot*> GetSlotLocked(sim::VirtualClock& clock, store::FileId file,
                                uint32_t index);
  // Fetch the chunk from the store if any page in [first, last] is not
  // yet valid, filling only the invalid pages (dirty local pages are
  // never clobbered).  Pages about to be fully overwritten need no fetch —
  // that is how a page cache avoids read-modify-write on full-page writes.
  Status EnsureValidLocked(sim::VirtualClock& clock, const SlotKey& key,
                           Slot& slot, size_t first_page, size_t last_page);
  Status FlushSlotLocked(sim::VirtualClock& clock, const SlotKey& key,
                         Slot& slot, bool background);
  // Re-schedule the store operation that ran on `clock` since `t0` onto
  // the per-node daemon pipeline (single service point).
  void SerializeOnDaemon(sim::VirtualClock& clock, int64_t t0);
  Status EvictIfNeededLocked(sim::VirtualClock& clock);
  void TouchLocked(const SlotKey& key, Slot& slot);
  void MaybePrefetchLocked(sim::VirtualClock& clock, store::FileId file,
                           uint32_t next_index);

  store::StoreClient& client_;
  FuseliteConfig config_;
  uint64_t capacity_chunks_;
  std::vector<std::unique_ptr<sim::Resource>> daemons_;
  std::atomic<uint32_t> daemon_rr_{0};

  mutable std::mutex mutex_;
  std::unordered_map<SlotKey, Slot, SlotKeyHash> slots_;
  std::list<SlotKey> lru_;  // front = most recent
  // Sequential-read detector: like the kernel's, it tracks several
  // concurrent streams per file (multiple processes of one node stream
  // disjoint slices of the same mapped file).
  static constexpr size_t kMaxStreams = 16;
  struct StreamState {
    uint64_t next_offset = 0;
    uint64_t last_use = 0;
  };
  std::unordered_map<store::FileId, std::vector<StreamState>> streams_;
  uint64_t stream_tick_ = 0;
  std::unordered_map<store::FileId, AccessAdvice> advice_;
  CacheTraffic traffic_;
};

}  // namespace nvm::fuselite

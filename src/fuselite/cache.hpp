// Client-side chunk cache — the layer that bridges the granularity gap
// between byte-addressable accesses and the 256 KB-chunked aggregate store
// (paper §III-D).
//
//  * 64 MB LRU of whole chunks (configurable), split into power-of-two
//    lock shards so the node's worker threads do not serialise behind one
//    mutex (each shard has its own map, LRU list and lock; capacity is
//    enforced globally by evicting from the shard holding the oldest
//    entry, so single-threaded behaviour is still exact LRU),
//  * 4 KB page-granularity dirty tracking inside each chunk,
//  * eviction flushes only the dirty pages (Table VII's write optimisation),
//  * contiguous runs of missing chunks are fetched with one batched
//    manager lookup and parallel per-benefactor transfers (batch_fetch),
//  * sequential-read detection triggers adaptive read-ahead: the window
//    ramps 1 -> 2 -> 4 ... up to readahead_max_chunks (deeper for
//    kWriteOnceReadMany) and each window is issued as one batched fetch
//    on a detached virtual clock so its cost overlaps the application
//    (that overlap is why the paper's Table III shows NVMalloc *faster*
//    than raw SSD access for streams).
#pragma once

#include <cstdint>
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitmap.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"
#include "store/client.hpp"

namespace nvm::fuselite {

// Per-file access-pattern advice (paper §III-B: applications "could
// potentially use the memory partition for operations that exploit the
// inherent device strengths, e.g., by allocating write-once-read-many
// variables onto the NVM").
enum class AccessAdvice : uint8_t {
  kNormal,             // default policy
  kWriteOnceReadMany,  // deeper read-ahead: the data will be streamed often
  kStreamOnce,         // evict-behind: data is consumed exactly once
};

struct FuseliteConfig {
  uint64_t cache_bytes = 64_MiB;       // paper's FUSE cache size
  bool readahead = true;               // sequential prefetch
  bool dirty_page_writeback = true;    // false = flush whole chunks (ablation)
  int64_t per_op_software_ns = 2'000;  // request handling cost per cache op
  // The FUSE daemon is a per-node user-space service with a small worker
  // pool: chunk fetches issued by the node's processes serialise through
  // its lanes (the paper's numbers clearly show this bottleneck).  Set
  // serialize_daemon=false for an idealised fully-parallel client
  // (ablation); daemon_threads matches FUSE's default multithreading.
  bool serialize_daemon = true;
  int daemon_threads = 8;  // one per core, as FUSE spawns them
  // Dirty chunks evicted under pressure are written back on a background
  // (detached) clock, like the kernel's writeback threads: the evicting
  // process does not stall for the store write, though the devices and
  // NICs are still occupied.  Explicit Flush()/Sync() remain synchronous.
  bool async_writeback = true;
  // Number of lock shards (rounded up to a power of two; 1 = the old
  // single-mutex cache).  Capacity accounting stays global.
  size_t cache_shards = 16;
  // Coalesce a contiguous run of missing chunks into one batched manager
  // lookup + parallel benefactor transfers instead of one round-trip per
  // chunk.
  bool batch_fetch = true;
  // Adaptive read-ahead window cap, in chunks (kernel-style ramp
  // 1 -> 2 -> 4 ... up to this; kWriteOnceReadMany files get twice the
  // cap).  The fixed next-chunk prefetch of old is cache_shards=anything,
  // readahead_max_chunks=1.
  uint32_t readahead_max_chunks = 8;
};

// Traffic counters matching the columns of the paper's Tables IV and VII.
// Fields are atomics so concurrent readers and the background write-back
// path never race with `traffic()` observers; copies snapshot the values.
struct CacheTraffic {
  std::atomic<uint64_t> app_bytes_read{0};  // bytes the application requested
  std::atomic<uint64_t> app_bytes_written{0};
  std::atomic<uint64_t> fetched_chunks{0};     // misses served from the store
  std::atomic<uint64_t> prefetched_chunks{0};  // read-ahead fetches
  std::atomic<uint64_t> hit_chunks{0};         // accesses served from cache
  std::atomic<uint64_t> flushed_pages{0};      // dirty pages written back
  std::atomic<uint64_t> flushed_chunks{0};     // chunk flush operations
  std::atomic<uint64_t> evictions{0};
  // Batched-fetch observability: batches issued and chunks they carried.
  std::atomic<uint64_t> batch_fetches{0};
  std::atomic<uint64_t> batched_chunks{0};
  // Batched write-back observability: flush windows that coalesced ≥2
  // dirty chunks, and the chunks they carried.
  std::atomic<uint64_t> flush_batches{0};
  std::atomic<uint64_t> flush_batched_chunks{0};
  // Dirty chunks discarded by Drop() after the best-effort write-back
  // failed (unreplicated benefactor loss).  The data loss was already
  // surfaced through Sync(); this makes the discard itself observable.
  std::atomic<uint64_t> dropped_dirty{0};

  CacheTraffic() = default;
  CacheTraffic(const CacheTraffic& o) { *this = o; }
  CacheTraffic& operator=(const CacheTraffic& o) {
    if (this != &o) {
      app_bytes_read = o.app_bytes_read.load();
      app_bytes_written = o.app_bytes_written.load();
      fetched_chunks = o.fetched_chunks.load();
      prefetched_chunks = o.prefetched_chunks.load();
      hit_chunks = o.hit_chunks.load();
      flushed_pages = o.flushed_pages.load();
      flushed_chunks = o.flushed_chunks.load();
      evictions = o.evictions.load();
      batch_fetches = o.batch_fetches.load();
      batched_chunks = o.batched_chunks.load();
      flush_batches = o.flush_batches.load();
      flush_batched_chunks = o.flush_batched_chunks.load();
      dropped_dirty = o.dropped_dirty.load();
    }
    return *this;
  }

  uint64_t store_bytes_fetched(uint64_t chunk_bytes) const {
    return (fetched_chunks.load() + prefetched_chunks.load()) * chunk_bytes;
  }
  uint64_t store_bytes_flushed(uint64_t page_bytes, uint64_t chunk_bytes,
                               bool dirty_page_writeback) const {
    return dirty_page_writeback ? flushed_pages.load() * page_bytes
                                : flushed_chunks.load() * chunk_bytes;
  }
};

class ChunkCache {
 public:
  ChunkCache(store::StoreClient& client, FuseliteConfig config);

  const FuseliteConfig& config() const { return config_; }
  uint64_t chunk_bytes() const { return client_.config().chunk_bytes; }
  uint64_t page_bytes() const { return client_.config().page_bytes; }
  uint64_t capacity_chunks() const { return capacity_chunks_; }
  size_t num_shards() const { return shards_.size(); }

  // Copy [offset, offset+out.size()) of the file into `out`.
  Status Read(sim::VirtualClock& clock, store::FileId file, uint64_t offset,
              std::span<uint8_t> out);

  // Copy `in` into the file at `offset`, write-back (dirty in cache).
  Status Write(sim::VirtualClock& clock, store::FileId file, uint64_t offset,
               std::span<const uint8_t> in);

  // Write back every dirty page of `file` (all files if kInvalidFileId).
  // Walks the shards in index order.
  Status Flush(sim::VirtualClock& clock,
               store::FileId file = store::kInvalidFileId);

  // Flush then drop all chunks of `file` (on ssdfree / close).
  Status Drop(sim::VirtualClock& clock, store::FileId file);

  const CacheTraffic& traffic() const { return traffic_; }
  void ResetTraffic() { traffic_ = CacheTraffic{}; }

  // Set the access-pattern policy for a file (ssdmalloc advice flag).
  void SetAdvice(store::FileId file, AccessAdvice advice);
  AccessAdvice advice(store::FileId file) const;
  size_t resident_chunks() const {
    return resident_.load(std::memory_order_relaxed);
  }
  // Resident chunks per shard, in shard order (distribution diagnostics).
  std::vector<size_t> ShardOccupancy() const;
  // Current read-ahead window (chunks) of the file's most recently used
  // sequential stream; 0 if the file has no tracked stream.
  uint32_t readahead_window(store::FileId file) const;
  sim::Resource& daemon(size_t lane = 0) { return *daemons_.at(lane); }

 private:
  struct SlotKey {
    store::FileId file;
    uint32_t index;
    bool operator==(const SlotKey&) const = default;
  };
  struct SlotKeyHash {
    size_t operator()(const SlotKey& k) const {
      return static_cast<size_t>(HashPair64(k.file, k.index));
    }
  };
  // LRU entries carry the touch tick so a shard's oldest entry (its list
  // tail) is known without a map lookup.
  using LruList = std::list<std::pair<SlotKey, uint64_t>>;
  struct Slot {
    std::vector<uint8_t> data;
    Bitmap dirty;  // pages modified locally, pending write-back
    Bitmap valid;  // pages whose contents are known (fetched or written)
    int64_t ready_at = 0;  // virtual time the chunk finished arriving
    // First touch of a slot the foreground batch path just fetched is the
    // miss that paid for it, not a cache hit.
    bool fresh_fetch = false;
    // Prefetched but not yet touched: counts against the global read-ahead
    // budget so concurrent streams cannot thrash the cache with
    // speculative chunks they evict before consuming.
    bool ra_pending = false;
    LruList::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<SlotKey, Slot, SlotKeyHash> slots;
    LruList lru;  // front = most recent
    // Tick of lru.back(); ~0 when empty.  Read without the lock by the
    // global eviction policy to find the shard holding the oldest entry.
    std::atomic<uint64_t> oldest_tick{~0ULL};
  };

  Shard& shard_for(const SlotKey& key) const {
    return const_cast<Shard&>(
        *shards_[HashPair64(key.file, key.index) & shard_mask_]);
  }

  // Find or create (without fetching) the slot for `key` in shard `sh`.
  // `lk` must hold sh.mutex; it may be released and reacquired to make
  // room, so previously returned Slot pointers are invalidated.
  StatusOr<Slot*> GetOrCreateSlot(std::unique_lock<std::mutex>& lk, Shard& sh,
                                  sim::VirtualClock& clock,
                                  const SlotKey& key);
  // Fetch the chunk from the store if any page in [first, last] is not
  // yet valid, filling only the invalid pages (dirty local pages are
  // never clobbered).  Pages about to be fully overwritten need no fetch —
  // that is how a page cache avoids read-modify-write on full-page writes.
  // Runs with the slot's shard lock held; other shards stay available.
  Status EnsureValidLocked(sim::VirtualClock& clock, const SlotKey& key,
                           Slot& slot, size_t first_page, size_t last_page);
  // Write back the dirty slots among `indices` of one file as ONE batched
  // store write (StoreClient::WriteChunks): one metadata round-trip and
  // one streamed run per benefactor for the whole window.  Locks every
  // involved shard in ascending shard-index order (all other paths hold
  // at most one shard lock, so this cannot deadlock), re-finds the slots
  // (clean/evicted ones are skipped), and clears dirty bits — and counts
  // flushed traffic — only for chunks the store acknowledged.  Returns
  // the first per-chunk failure; those chunks stay dirty.
  Status FlushFileWindow(sim::VirtualClock& clock, store::FileId file,
                         std::span<const uint32_t> indices, bool background);
  // Re-schedule the store operation that ran on `clock` since `t0` onto
  // the per-node daemon pipeline (single service point).
  void SerializeOnDaemon(sim::VirtualClock& clock, int64_t t0);
  // Queue a `duration_ns`-long store operation that started at `t0` on a
  // daemon lane; returns its completion time.
  int64_t ScheduleOnDaemon(int64_t t0, int64_t duration_ns);
  // Reserve `count` residency slots in the global capacity, evicting the
  // globally-oldest entries (shard-aware LRU) until the reservation fits.
  // Must be called with NO shard lock held; the caller owns the
  // reservation and must fetch_sub what it does not insert.
  Status ReserveResidency(sim::VirtualClock& clock, size_t count);
  void TouchLocked(Shard& sh, const SlotKey& key, Slot& slot);
  // Batched fetch of up to `count` wholly-absent chunks starting at
  // `first`: one manager lookup round-trip, parallel transfers on
  // detached clocks, slots inserted ready_at their completion times.
  // `prefetch` selects the traffic counter and makes EOF misses silent.
  // Must be called with no shard lock held.
  Status FetchRun(sim::VirtualClock& clock, store::FileId file,
                  uint32_t first, uint32_t count, bool prefetch);
  // Length of the run of wholly-absent chunks starting at `first`,
  // scanning at most `max` chunks (shard peeks, no fetch).
  uint32_t AbsentRunLength(store::FileId file, uint32_t first, uint32_t max);

  // Sequential-stream bookkeeping result: the read-ahead batch to issue.
  struct PrefetchPlan {
    uint32_t start = 0;
    uint32_t count = 0;  // 0 = nothing to prefetch
    bool evict_behind = false;
  };
  // Update the file's stream detector with a read of [pos, pos+n) in
  // chunk `index`; returns the read-ahead plan (under stream_mutex_).
  PrefetchPlan UpdateStreams(store::FileId file, uint64_t pos, uint64_t n,
                             uint32_t index);
  uint32_t ReadaheadCap(AccessAdvice advice) const;

  store::StoreClient& client_;
  FuseliteConfig config_;
  uint64_t capacity_chunks_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<sim::Resource>> daemons_;
  std::atomic<uint32_t> daemon_rr_{0};
  std::atomic<size_t> resident_{0};
  std::atomic<uint64_t> lru_tick_{0};
  // Prefetched chunks not yet consumed.  Read-ahead batches are clamped so
  // this stays under half the capacity — the kernel's "scale read-ahead to
  // memory pressure" rule, which is what keeps N concurrent streams from
  // evicting each other's windows before use.
  std::atomic<size_t> ra_pending_{0};

  // Sequential-read detector: like the kernel's, it tracks several
  // concurrent streams per file (multiple processes of one node stream
  // disjoint slices of the same mapped file).  It lives under its own
  // small lock so the read/write fast paths never serialise across
  // shards.
  static constexpr size_t kMaxStreams = 16;
  struct StreamState {
    uint64_t next_offset = 0;
    uint64_t last_use = 0;
    uint32_t window = 1;     // next read-ahead batch size (chunks)
    uint32_t ra_head = 0;    // first chunk not yet prefetched
    uint32_t ra_marker = 0;  // reaching this chunk triggers the next batch
  };
  mutable std::mutex stream_mutex_;
  std::unordered_map<store::FileId, std::vector<StreamState>> streams_;
  uint64_t stream_tick_ = 0;
  std::unordered_map<store::FileId, AccessAdvice> advice_;

  CacheTraffic traffic_;
};

}  // namespace nvm::fuselite

// MountPoint — the per-compute-node file-system veneer over the aggregate
// store (the paper's /mnt/aggregatenvm FUSE mount).
//
// One MountPoint per node, shared by all processes of the node; it owns the
// node's ChunkCache, so processes mapping the same file share cached chunks
// (the paper's shared-mmap optimisation falls out of this naturally).
// Writes extend files implicitly (POSIX semantics) by growing the manager's
// chunk map through posix_fallocate-style reservations.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fuselite/cache.hpp"
#include "store/store.hpp"

namespace nvm::fuselite {

class MountPoint;

// Lightweight handle; copyable, valid as long as the mount lives.
class FileHandle {
 public:
  FileHandle() = default;

  store::FileId id() const { return id_; }
  bool valid() const { return id_ != store::kInvalidFileId; }

  Status Read(uint64_t offset, std::span<uint8_t> out);
  Status Write(uint64_t offset, std::span<const uint8_t> in);
  Status Fallocate(uint64_t size);
  StatusOr<store::FileInfo> Stat();
  // Write back all dirty cached pages of this file.
  Status Sync();

 private:
  friend class MountPoint;
  FileHandle(MountPoint* mount, store::FileId id) : mount_(mount), id_(id) {}
  MountPoint* mount_ = nullptr;
  store::FileId id_ = store::kInvalidFileId;
};

class MountPoint {
 public:
  MountPoint(store::AggregateStore& store, int node_id,
             FuseliteConfig config = {});

  int node_id() const { return node_id_; }
  ChunkCache& cache() { return cache_; }
  store::StoreClient& client() { return client_; }

  // O_CREAT|O_EXCL + optional posix_fallocate in one step.
  StatusOr<FileHandle> Create(const std::string& name, uint64_t size = 0);
  StatusOr<FileHandle> Open(const std::string& name);
  // Create if missing, open otherwise.
  StatusOr<FileHandle> OpenOrCreate(const std::string& name);
  Status Unlink(const std::string& name);

 private:
  friend class FileHandle;

  // Grow the file if [offset, offset+len) extends past the known size.
  Status EnsureExtent(sim::VirtualClock& clock, store::FileId id,
                      uint64_t end);

  store::StoreClient& client_;
  ChunkCache cache_;
  const int node_id_;

  std::mutex mutex_;
  // Cached logical sizes, to avoid a manager round-trip per write.
  std::unordered_map<store::FileId, uint64_t> known_size_;
};

}  // namespace nvm::fuselite

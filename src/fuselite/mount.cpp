#include "fuselite/mount.hpp"

#include "common/log.hpp"
#include "sim/clock.hpp"

namespace nvm::fuselite {

Status FileHandle::Read(uint64_t offset, std::span<uint8_t> out) {
  NVM_CHECK(valid());
  return mount_->cache_.Read(sim::CurrentClock(), id_, offset, out);
}

Status FileHandle::Write(uint64_t offset, std::span<const uint8_t> in) {
  NVM_CHECK(valid());
  auto& clock = sim::CurrentClock();
  NVM_RETURN_IF_ERROR(
      mount_->EnsureExtent(clock, id_, offset + in.size()));
  return mount_->cache_.Write(clock, id_, offset, in);
}

Status FileHandle::Fallocate(uint64_t size) {
  NVM_CHECK(valid());
  return mount_->EnsureExtent(sim::CurrentClock(), id_, size);
}

StatusOr<store::FileInfo> FileHandle::Stat() {
  NVM_CHECK(valid());
  return mount_->client_.Stat(sim::CurrentClock(), id_);
}

Status FileHandle::Sync() {
  NVM_CHECK(valid());
  return mount_->cache_.Flush(sim::CurrentClock(), id_);
}

MountPoint::MountPoint(store::AggregateStore& store, int node_id,
                       FuseliteConfig config)
    : client_(store.ClientForNode(node_id)),
      cache_(client_, config),
      node_id_(node_id) {}

Status MountPoint::EnsureExtent(sim::VirtualClock& clock, store::FileId id,
                                uint64_t end) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = known_size_.find(id);
    if (it != known_size_.end() && it->second >= end) return OkStatus();
  }
  NVM_RETURN_IF_ERROR(client_.Fallocate(clock, id, end));
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t& size = known_size_[id];
  size = std::max(size, end);
  return OkStatus();
}

StatusOr<FileHandle> MountPoint::Create(const std::string& name,
                                        uint64_t size) {
  auto& clock = sim::CurrentClock();
  NVM_ASSIGN_OR_RETURN(store::FileId id, client_.Create(clock, name));
  if (size > 0) {
    NVM_RETURN_IF_ERROR(client_.Fallocate(clock, id, size));
    std::lock_guard<std::mutex> lock(mutex_);
    known_size_[id] = size;
  }
  return FileHandle(this, id);
}

StatusOr<FileHandle> MountPoint::Open(const std::string& name) {
  auto& clock = sim::CurrentClock();
  NVM_ASSIGN_OR_RETURN(store::FileId id, client_.Open(clock, name));
  return FileHandle(this, id);
}

StatusOr<FileHandle> MountPoint::OpenOrCreate(const std::string& name) {
  auto opened = Open(name);
  if (opened.ok()) return opened;
  if (opened.status().code() != ErrorCode::kNotFound) return opened;
  auto created = Create(name);
  if (created.ok()) return created;
  if (created.status().code() == ErrorCode::kAlreadyExists) {
    // Lost a create race with a sibling process: open what it made.
    return Open(name);
  }
  return created;
}

Status MountPoint::Unlink(const std::string& name) {
  auto& clock = sim::CurrentClock();
  NVM_ASSIGN_OR_RETURN(store::FileId id, client_.Open(clock, name));
  // Drop cached state first so no dirty data outlives the file.
  NVM_RETURN_IF_ERROR(cache_.Drop(clock, id));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    known_size_.erase(id);
  }
  return client_.Unlink(clock, id);
}

}  // namespace nvm::fuselite

#include "fuselite/cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace nvm::fuselite {

ChunkCache::ChunkCache(store::StoreClient& client, FuseliteConfig config)
    : client_(client), config_(config) {
  capacity_chunks_ =
      std::max<uint64_t>(1, config_.cache_bytes / chunk_bytes());
  const int lanes = std::max(1, config_.daemon_threads);
  for (int i = 0; i < lanes; ++i) {
    daemons_.push_back(std::make_unique<sim::Resource>(
        "fuse-daemon" + std::to_string(i)));
  }
}

void ChunkCache::SetAdvice(store::FileId file, AccessAdvice advice) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (advice == AccessAdvice::kNormal) {
    advice_.erase(file);
  } else {
    advice_[file] = advice;
  }
}

AccessAdvice ChunkCache::advice(store::FileId file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = advice_.find(file);
  return it == advice_.end() ? AccessAdvice::kNormal : it->second;
}

size_t ChunkCache::resident_chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

void ChunkCache::TouchLocked(const SlotKey& key, Slot& slot) {
  lru_.erase(slot.lru_it);
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
}

void ChunkCache::SerializeOnDaemon(sim::VirtualClock& clock, int64_t t0) {
  if (!config_.serialize_daemon) return;
  const int64_t duration = clock.now() - t0;
  if (duration <= 0) return;
  // The operation's device/network reservations stay where they were made;
  // the *caller* additionally queues on one of the daemon's worker lanes
  // for the operation's duration, which is what throttles concurrent
  // processes of one node.
  auto& lane = *daemons_[daemon_rr_.fetch_add(1, std::memory_order_relaxed) %
                         daemons_.size()];
  const int64_t start = lane.Schedule(t0, duration);
  clock.AdvanceTo(start + duration);
}

Status ChunkCache::FlushSlotLocked(sim::VirtualClock& clock,
                                   const SlotKey& key, Slot& slot,
                                   bool background) {
  if (slot.dirty.None()) return OkStatus();
  // Background (eviction-driven) write-back runs on a detached clock —
  // the modelled kernel-writeback thread — so the evicting process keeps
  // going while the devices absorb the write.
  sim::VirtualClock detached(clock.now());
  sim::VirtualClock& wclock =
      (background && config_.async_writeback) ? detached : clock;
  const int64_t t0 = wclock.now();
  ++traffic_.flushed_chunks;
  if (config_.dirty_page_writeback) {
    traffic_.flushed_pages += slot.dirty.PopCount();
    NVM_RETURN_IF_ERROR(client_.WriteChunkPages(wclock, key.file, key.index,
                                                slot.dirty, slot.data));
  } else {
    // Ablation / Table VII "w/o optimisation": ship the whole chunk.
    Bitmap all(slot.dirty.size());
    all.SetAll();
    traffic_.flushed_pages += all.PopCount();
    NVM_RETURN_IF_ERROR(client_.WriteChunkPages(wclock, key.file, key.index,
                                                all, slot.data));
  }
  slot.dirty.ClearAll();
  if (&wclock == &clock) SerializeOnDaemon(wclock, t0);
  return OkStatus();
}

Status ChunkCache::EvictIfNeededLocked(sim::VirtualClock& clock) {
  while (slots_.size() >= capacity_chunks_) {
    NVM_CHECK(!lru_.empty());
    const SlotKey victim = lru_.back();
    auto it = slots_.find(victim);
    NVM_CHECK(it != slots_.end());
    NVM_RETURN_IF_ERROR(
        FlushSlotLocked(clock, victim, it->second, /*background=*/true));
    lru_.pop_back();
    slots_.erase(it);
    ++traffic_.evictions;
  }
  return OkStatus();
}

StatusOr<ChunkCache::Slot*> ChunkCache::GetSlotLocked(
    sim::VirtualClock& clock, store::FileId file, uint32_t index) {
  const SlotKey key{file, index};
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    // If this chunk is still in flight from a prefetch, the reader waits
    // for the remainder of the transfer.
    clock.AdvanceTo(it->second.ready_at);
    ++traffic_.hit_chunks;
    TouchLocked(key, it->second);
    return &it->second;
  }

  NVM_RETURN_IF_ERROR(EvictIfNeededLocked(clock));

  Slot slot;
  slot.data.assign(chunk_bytes(), 0);
  slot.dirty = Bitmap(chunk_bytes() / page_bytes());
  slot.valid = Bitmap(chunk_bytes() / page_bytes());
  slot.ready_at = clock.now();
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
  auto [ins, ok] = slots_.emplace(key, std::move(slot));
  NVM_CHECK(ok);
  return &ins->second;
}

Status ChunkCache::EnsureValidLocked(sim::VirtualClock& clock,
                                     const SlotKey& key, Slot& slot,
                                     size_t first_page, size_t last_page) {
  bool all_valid = true;
  for (size_t p = first_page; p <= last_page; ++p) {
    if (!slot.valid.Test(p)) {
      all_valid = false;
      break;
    }
  }
  if (all_valid) return OkStatus();

  // Fetch the whole chunk (the store's transfer unit) and fill only the
  // pages we do not already have locally.
  std::vector<uint8_t> fetched(chunk_bytes());
  const int64_t t0 = clock.now();
  NVM_RETURN_IF_ERROR(client_.ReadChunk(clock, key.file, key.index, fetched));
  SerializeOnDaemon(clock, t0);
  ++traffic_.fetched_chunks;
  for (size_t p = 0; p < slot.valid.size(); ++p) {
    if (!slot.valid.Test(p)) {
      std::memcpy(slot.data.data() + p * page_bytes(),
                  fetched.data() + p * page_bytes(), page_bytes());
      slot.valid.Set(p);
    }
  }
  slot.ready_at = std::max(slot.ready_at, clock.now());
  return OkStatus();
}

void ChunkCache::MaybePrefetchLocked(sim::VirtualClock& clock,
                                     store::FileId file,
                                     uint32_t next_index) {
  if (!config_.readahead) return;
  const SlotKey key{file, next_index};
  if (slots_.contains(key)) return;

  // The prefetch occupies devices and network starting now but runs on a
  // detached clock: the application keeps computing while the chunk is in
  // flight, and only pays the residual wait if it arrives at the chunk
  // before the transfer completes (ready_at handling in GetSlotLocked).
  sim::VirtualClock detached(clock.now());
  if (slots_.size() >= capacity_chunks_) {
    // Make room like kernel read-ahead does; the evicted slot's dirty
    // pages flush on the background writeback clock, so this is cheap.
    if (!EvictIfNeededLocked(detached).ok()) return;
  }
  Slot slot;
  slot.data.resize(chunk_bytes());
  slot.dirty = Bitmap(chunk_bytes() / page_bytes());
  slot.valid = Bitmap(chunk_bytes() / page_bytes());
  const int64_t t0 = detached.now();
  Status s = client_.ReadChunk(detached, file, next_index, slot.data);
  if (!s.ok()) return;  // beyond EOF or store unavailable: no-op
  SerializeOnDaemon(detached, t0);
  ++traffic_.prefetched_chunks;
  slot.valid.SetAll();
  slot.ready_at = detached.now();
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
  slots_.emplace(key, std::move(slot));
}

Status ChunkCache::Read(sim::VirtualClock& clock, store::FileId file,
                        uint64_t offset, std::span<uint8_t> out) {
  clock.Advance(config_.per_op_software_ns);
  std::lock_guard<std::mutex> lock(mutex_);
  traffic_.app_bytes_read += out.size();

  uint64_t done = 0;
  while (done < out.size()) {
    const uint64_t pos = offset + done;
    const auto index = static_cast<uint32_t>(pos / chunk_bytes());
    const uint64_t within = pos % chunk_bytes();
    const uint64_t n =
        std::min<uint64_t>(chunk_bytes() - within, out.size() - done);

    NVM_ASSIGN_OR_RETURN(Slot * slot, GetSlotLocked(clock, file, index));
    const SlotKey key{file, index};
    NVM_RETURN_IF_ERROR(EnsureValidLocked(clock, key, *slot,
                                          within / page_bytes(),
                                          (within + n - 1) / page_bytes()));
    std::memcpy(out.data() + done, slot->data.data() + within, n);

    // Sequential-stream detection (multi-stream, like kernel readahead):
    // a read continuing where one of the file's tracked streams ended
    // arms read-ahead for the following chunk.
    auto& streams = streams_[file];
    ++stream_tick_;
    bool matched = false;
    auto adv = AccessAdvice::kNormal;
    {
      auto ait = advice_.find(file);
      if (ait != advice_.end()) adv = ait->second;
    }
    for (auto& s : streams) {
      if (s.next_offset == pos) {
        s.next_offset = pos + n;
        s.last_use = stream_tick_;
        matched = true;
        MaybePrefetchLocked(clock, file, index + 1);
        if (adv == AccessAdvice::kWriteOnceReadMany) {
          // The variable will be streamed repeatedly: run the read-ahead
          // window one chunk deeper.
          MaybePrefetchLocked(clock, file, index + 2);
        }
        if (adv == AccessAdvice::kStreamOnce && index > 0 &&
            (pos + n) % chunk_bytes() == 0) {
          // The previous chunk has been fully consumed and will not be
          // touched again: drop it immediately (evict-behind), freeing
          // the slot without disturbing LRU order for other files.
          const SlotKey prev{file, index - 1};
          auto pit = slots_.find(prev);
          if (pit != slots_.end() && pit->second.dirty.None()) {
            lru_.erase(pit->second.lru_it);
            slots_.erase(pit);
            ++traffic_.evictions;
          }
        }
        break;
      }
    }
    if (!matched) {
      if (streams.size() < kMaxStreams) {
        streams.push_back({pos + n, stream_tick_});
      } else {
        auto* lru = &streams[0];
        for (auto& s : streams) {
          if (s.last_use < lru->last_use) lru = &s;
        }
        *lru = {pos + n, stream_tick_};
      }
    }
    done += n;
  }
  return OkStatus();
}

Status ChunkCache::Write(sim::VirtualClock& clock, store::FileId file,
                         uint64_t offset, std::span<const uint8_t> in) {
  clock.Advance(config_.per_op_software_ns);
  std::lock_guard<std::mutex> lock(mutex_);
  traffic_.app_bytes_written += in.size();

  uint64_t done = 0;
  while (done < in.size()) {
    const uint64_t pos = offset + done;
    const auto index = static_cast<uint32_t>(pos / chunk_bytes());
    const uint64_t within = pos % chunk_bytes();
    const uint64_t n =
        std::min<uint64_t>(chunk_bytes() - within, in.size() - done);
    NVM_ASSIGN_OR_RETURN(Slot * slot, GetSlotLocked(clock, file, index));
    const SlotKey key{file, index};
    const size_t first_page = within / page_bytes();
    const size_t last_page = (within + n - 1) / page_bytes();
    if (!config_.dirty_page_writeback) {
      // Chunk-granular baseline (Table VII "w/o optimisation"): the dirty
      // unit is the whole chunk, so the whole chunk must be materialised
      // before any modification.
      NVM_RETURN_IF_ERROR(EnsureValidLocked(clock, key, *slot, 0,
                                            slot->valid.size() - 1));
    } else {
      // Partially covered head/tail pages need their old contents first
      // (read-modify-write); fully covered pages are written blind.
      if (within % page_bytes() != 0 && !slot->valid.Test(first_page)) {
        NVM_RETURN_IF_ERROR(
            EnsureValidLocked(clock, key, *slot, first_page, first_page));
      }
      if ((within + n) % page_bytes() != 0 && !slot->valid.Test(last_page)) {
        NVM_RETURN_IF_ERROR(
            EnsureValidLocked(clock, key, *slot, last_page, last_page));
      }
    }
    std::memcpy(slot->data.data() + within, in.data() + done, n);
    for (size_t p = first_page; p <= last_page; ++p) {
      slot->dirty.Set(p);
      slot->valid.Set(p);
    }

    done += n;
  }
  return OkStatus();
}

Status ChunkCache::Flush(sim::VirtualClock& clock, store::FileId file) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, slot] : slots_) {
    if (file != store::kInvalidFileId && key.file != file) continue;
    NVM_RETURN_IF_ERROR(
        FlushSlotLocked(clock, key, slot, /*background=*/false));
  }
  return OkStatus();
}

Status ChunkCache::Drop(sim::VirtualClock& clock, store::FileId file) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first.file == file) {
      NVM_RETURN_IF_ERROR(
          FlushSlotLocked(clock, it->first, it->second, false));
      lru_.erase(it->second.lru_it);
      it = slots_.erase(it);
    } else {
      ++it;
    }
  }
  streams_.erase(file);
  return OkStatus();
}

}  // namespace nvm::fuselite

#include "fuselite/cache.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/log.hpp"

namespace nvm::fuselite {

namespace {
// Upper bound on one batched fetch, independent of cache size: keeps a
// single huge read from monopolising the daemon lanes and the NICs.
constexpr uint32_t kMaxBatchChunks = 32;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

ChunkCache::ChunkCache(store::StoreClient& client, FuseliteConfig config)
    : client_(client), config_(config) {
  capacity_chunks_ =
      std::max<uint64_t>(1, config_.cache_bytes / chunk_bytes());
  const size_t shards = RoundUpPow2(std::max<size_t>(1, config_.cache_shards));
  shard_mask_ = shards - 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  const int lanes = std::max(1, config_.daemon_threads);
  for (int i = 0; i < lanes; ++i) {
    daemons_.push_back(std::make_unique<sim::Resource>(
        "fuse-daemon" + std::to_string(i)));
  }
}

void ChunkCache::SetAdvice(store::FileId file, AccessAdvice advice) {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  if (advice == AccessAdvice::kNormal) {
    advice_.erase(file);
  } else {
    advice_[file] = advice;
  }
}

AccessAdvice ChunkCache::advice(store::FileId file) const {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  auto it = advice_.find(file);
  return it == advice_.end() ? AccessAdvice::kNormal : it->second;
}

std::vector<size_t> ChunkCache::ShardOccupancy() const {
  std::vector<size_t> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mutex);
    out.push_back(sh->slots.size());
  }
  return out;
}

uint32_t ChunkCache::readahead_window(store::FileId file) const {
  std::lock_guard<std::mutex> lock(stream_mutex_);
  auto it = streams_.find(file);
  if (it == streams_.end() || it->second.empty()) return 0;
  const StreamState* best = &it->second[0];
  for (const auto& s : it->second) {
    if (s.last_use > best->last_use) best = &s;
  }
  return best->window;
}

void ChunkCache::TouchLocked(Shard& sh, const SlotKey& key, Slot& slot) {
  const uint64_t tick = lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  sh.lru.erase(slot.lru_it);
  sh.lru.push_front({key, tick});
  slot.lru_it = sh.lru.begin();
  sh.oldest_tick.store(sh.lru.back().second, std::memory_order_relaxed);
}

int64_t ChunkCache::ScheduleOnDaemon(int64_t t0, int64_t duration_ns) {
  if (duration_ns <= 0) return t0;
  if (!config_.serialize_daemon) return t0 + duration_ns;
  auto& lane = *daemons_[daemon_rr_.fetch_add(1, std::memory_order_relaxed) %
                         daemons_.size()];
  return lane.Schedule(t0, duration_ns) + duration_ns;
}

void ChunkCache::SerializeOnDaemon(sim::VirtualClock& clock, int64_t t0) {
  if (!config_.serialize_daemon) return;
  // The operation's device/network reservations stay where they were made;
  // the *caller* additionally queues on one of the daemon's worker lanes
  // for the operation's duration, which is what throttles concurrent
  // processes of one node.
  clock.AdvanceTo(ScheduleOnDaemon(t0, clock.now() - t0));
}

Status ChunkCache::FlushFileWindow(sim::VirtualClock& clock,
                                   store::FileId file,
                                   std::span<const uint32_t> indices,
                                   bool background) {
  if (indices.empty()) return OkStatus();
  // Lock every involved shard in ascending shard-index order.  Every other
  // code path holds at most one shard lock at a time, so this total order
  // cannot cycle.
  std::vector<size_t> shard_idx;
  shard_idx.reserve(indices.size());
  for (uint32_t index : indices) {
    shard_idx.push_back(HashPair64(file, index) & shard_mask_);
  }
  std::sort(shard_idx.begin(), shard_idx.end());
  shard_idx.erase(std::unique(shard_idx.begin(), shard_idx.end()),
                  shard_idx.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shard_idx.size());
  for (size_t si : shard_idx) locks.emplace_back(shards_[si]->mutex);

  // Re-find the slots (the caller peeked without holding all the locks):
  // clean and evicted ones are skipped.  `whole` is reserved up front so
  // the all-set bitmaps the ablation path points into never relocate.
  struct Entry {
    Slot* slot;
    size_t pages;  // pages submitted for this chunk
  };
  std::vector<Entry> entries;
  std::vector<store::StoreClient::ChunkWrite> writes;
  std::vector<Bitmap> whole;
  entries.reserve(indices.size());
  writes.reserve(indices.size());
  whole.reserve(indices.size());
  for (uint32_t index : indices) {
    const SlotKey key{file, index};
    Shard& sh = shard_for(key);
    auto it = sh.slots.find(key);
    if (it == sh.slots.end() || it->second.dirty.None()) continue;
    store::StoreClient::ChunkWrite w;
    w.index = index;
    if (config_.dirty_page_writeback) {
      w.dirty = &it->second.dirty;
    } else {
      // Ablation / Table VII "w/o optimisation": ship the whole chunk.
      whole.emplace_back(it->second.dirty.size());
      whole.back().SetAll();
      w.dirty = &whole.back();
    }
    w.image = it->second.data;
    writes.push_back(w);
    entries.push_back({&it->second, w.dirty->PopCount()});
  }
  if (writes.empty()) return OkStatus();

  // Background (eviction-driven) write-back runs on a detached clock —
  // the modelled kernel-writeback thread — so the evicting process keeps
  // going while the devices absorb the write.
  sim::VirtualClock detached(clock.now());
  sim::VirtualClock& wclock =
      (background && config_.async_writeback) ? detached : clock;
  const int64_t t0 = wclock.now();
  // A failed batched prepare leaves every slot dirty and no traffic
  // counted — failed flushes must not inflate store_bytes_flushed().
  NVM_RETURN_IF_ERROR(client_.WriteChunks(wclock, file, writes));

  Status first = OkStatus();
  uint64_t flushed = 0;
  for (size_t i = 0; i < writes.size(); ++i) {
    if (!writes[i].status.ok()) {
      // The store never acknowledged this chunk: the pages stay dirty
      // (the cache copy is still the only one) and nothing is counted.
      if (first.ok()) first = writes[i].status;
      continue;
    }
    ++traffic_.flushed_chunks;
    traffic_.flushed_pages += entries[i].pages;
    entries[i].slot->dirty.ClearAll();
    ++flushed;
  }
  if (flushed >= 2) {
    ++traffic_.flush_batches;
    traffic_.flush_batched_chunks += flushed;
  }
  if (&wclock == &clock) SerializeOnDaemon(wclock, t0);
  return first;
}

Status ChunkCache::ReserveResidency(sim::VirtualClock& clock, size_t count) {
  resident_.fetch_add(count, std::memory_order_relaxed);
  while (resident_.load(std::memory_order_relaxed) > capacity_chunks_) {
    // Evict from the shard whose LRU tail is globally oldest.  Under
    // concurrency the relaxed scan is a heuristic; single-threaded it
    // reproduces the old global LRU exactly.
    Shard* victim = nullptr;
    uint64_t best = ~0ULL;
    for (const auto& sh : shards_) {
      const uint64_t t = sh->oldest_tick.load(std::memory_order_relaxed);
      if (t < best) {
        best = t;
        victim = sh.get();
      }
    }
    if (victim == nullptr) break;  // nothing resident to evict
    store::FileId flush_file = store::kInvalidFileId;
    std::vector<uint32_t> flush_indices;
    {
      std::lock_guard<std::mutex> lock(victim->mutex);
      if (victim->lru.empty()) continue;  // raced with another evictor
      const SlotKey key = victim->lru.back().first;
      auto it = victim->slots.find(key);
      NVM_CHECK(it != victim->slots.end());
      if (it->second.dirty.None()) {
        // Clean victim: evict immediately.
        if (it->second.ra_pending) {
          ra_pending_.fetch_sub(1, std::memory_order_relaxed);
        }
        victim->lru.pop_back();
        victim->slots.erase(it);
        victim->oldest_tick.store(
            victim->lru.empty() ? ~0ULL : victim->lru.back().second,
            std::memory_order_relaxed);
        resident_.fetch_sub(1, std::memory_order_relaxed);
        ++traffic_.evictions;
        continue;
      }
      // Dirty victim: coalesce it with the other dirty chunks of the same
      // file living in this shard into one write-back window, so eviction
      // pressure drains in batched runs instead of chunk-sized writes.
      flush_file = key.file;
      flush_indices.push_back(key.index);
      for (const auto& [skey, slot] : victim->slots) {
        if (flush_indices.size() >= kMaxBatchChunks) break;
        if (skey.file != flush_file || skey.index == key.index) continue;
        if (slot.dirty.None()) continue;
        flush_indices.push_back(skey.index);
      }
    }
    // Write back outside the victim's lock (the window locks its shards
    // itself); the victim is clean on the next sweep and evicts then.  A
    // total write-back failure (no replicas reached) still wedges the
    // reservation — the dirty data has nowhere else to live — but a
    // degraded write that reached one replica is a success and no longer
    // blocks eviction.
    NVM_RETURN_IF_ERROR(FlushFileWindow(clock, flush_file, flush_indices,
                                        /*background=*/true));
  }
  return OkStatus();
}

StatusOr<ChunkCache::Slot*> ChunkCache::GetOrCreateSlot(
    std::unique_lock<std::mutex>& lk, Shard& sh, sim::VirtualClock& clock,
    const SlotKey& key) {
  auto it = sh.slots.find(key);
  if (it != sh.slots.end()) {
    // If this chunk is still in flight from a prefetch or a batched
    // fetch, the reader waits for the remainder of the transfer.
    clock.AdvanceTo(it->second.ready_at);
    if (it->second.fresh_fetch) {
      it->second.fresh_fetch = false;  // the miss that paid for the fetch
    } else {
      ++traffic_.hit_chunks;
    }
    if (it->second.ra_pending) {
      it->second.ra_pending = false;
      ra_pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    TouchLocked(sh, key, it->second);
    return &it->second;
  }

  // Make room before inserting.  Eviction may target any shard (including
  // this one), so the shard lock must be dropped around it.
  lk.unlock();
  Status evicted = ReserveResidency(clock, 1);
  lk.lock();
  if (!evicted.ok()) {
    resident_.fetch_sub(1, std::memory_order_relaxed);
    return evicted;
  }
  it = sh.slots.find(key);
  if (it != sh.slots.end()) {
    // Another thread materialised the slot while the lock was dropped.
    resident_.fetch_sub(1, std::memory_order_relaxed);
    clock.AdvanceTo(it->second.ready_at);
    TouchLocked(sh, key, it->second);
    return &it->second;
  }

  Slot slot;
  slot.data.assign(chunk_bytes(), 0);
  slot.dirty = Bitmap(chunk_bytes() / page_bytes());
  slot.valid = Bitmap(chunk_bytes() / page_bytes());
  slot.ready_at = clock.now();
  const uint64_t tick = lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  sh.lru.push_front({key, tick});
  auto [ins, ok] = sh.slots.emplace(key, std::move(slot));
  NVM_CHECK(ok);
  ins->second.lru_it = sh.lru.begin();
  sh.oldest_tick.store(sh.lru.back().second, std::memory_order_relaxed);
  return &ins->second;
}

Status ChunkCache::EnsureValidLocked(sim::VirtualClock& clock,
                                     const SlotKey& key, Slot& slot,
                                     size_t first_page, size_t last_page) {
  bool all_valid = true;
  for (size_t p = first_page; p <= last_page; ++p) {
    if (!slot.valid.Test(p)) {
      all_valid = false;
      break;
    }
  }
  if (all_valid) return OkStatus();

  // Fetch the whole chunk (the store's transfer unit) and fill only the
  // pages we do not already have locally.
  std::vector<uint8_t> fetched(chunk_bytes());
  const int64_t t0 = clock.now();
  NVM_RETURN_IF_ERROR(client_.ReadChunk(clock, key.file, key.index, fetched));
  SerializeOnDaemon(clock, t0);
  ++traffic_.fetched_chunks;
  for (size_t p = 0; p < slot.valid.size(); ++p) {
    if (!slot.valid.Test(p)) {
      std::memcpy(slot.data.data() + p * page_bytes(),
                  fetched.data() + p * page_bytes(), page_bytes());
      slot.valid.Set(p);
    }
  }
  slot.ready_at = std::max(slot.ready_at, clock.now());
  return OkStatus();
}

uint32_t ChunkCache::AbsentRunLength(store::FileId file, uint32_t first,
                                     uint32_t max) {
  uint32_t run = 0;
  while (run < max) {
    const SlotKey key{file, first + run};
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lock(sh.mutex);
    if (sh.slots.contains(key)) break;
    ++run;
  }
  return run;
}

Status ChunkCache::FetchRun(sim::VirtualClock& clock, store::FileId file,
                            uint32_t first, uint32_t count, bool prefetch) {
  count = static_cast<uint32_t>(std::min<uint64_t>(
      count, std::min<uint64_t>(capacity_chunks_, kMaxBatchChunks)));
  std::vector<uint32_t> absent;
  for (uint32_t i = 0; i < count; ++i) {
    const SlotKey key{file, first + i};
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lock(sh.mutex);
    if (!sh.slots.contains(key)) absent.push_back(first + i);
  }
  if (absent.empty()) return OkStatus();

  // Read-ahead runs entirely on a detached clock: the application keeps
  // computing while the chunks are in flight and only pays the residual
  // wait on arrival (ready_at handling in GetOrCreateSlot).  A foreground
  // batch charges the single metadata lookup to the caller and detaches
  // only the data transfers, which the reader then drains chunk by chunk.
  sim::VirtualClock detached(clock.now());
  sim::VirtualClock& bclock = prefetch ? detached : clock;

  // Reserve residency up front so the batch's own inserts cannot evict
  // its not-yet-consumed members mid-flight.
  Status reserved = ReserveResidency(bclock, absent.size());
  if (!reserved.ok()) {
    resident_.fetch_sub(absent.size(), std::memory_order_relaxed);
    return prefetch ? OkStatus() : reserved;
  }

  std::vector<Slot> slots(absent.size());
  std::vector<store::StoreClient::ChunkFetch> fetches(absent.size());
  for (size_t i = 0; i < absent.size(); ++i) {
    slots[i].data.assign(chunk_bytes(), 0);
    slots[i].dirty = Bitmap(chunk_bytes() / page_bytes());
    slots[i].valid = Bitmap(chunk_bytes() / page_bytes());
    fetches[i].index = absent[i];
    fetches[i].out = slots[i].data;
  }

  Status looked_up = client_.ReadChunks(bclock, file, fetches);
  if (!looked_up.ok()) {
    // Beyond EOF or store unavailable: leave the chunks absent.  A
    // foreground read recovers through the single-chunk path, which
    // reports the error with the usual context.
    resident_.fetch_sub(absent.size(), std::memory_order_relaxed);
    return OkStatus();
  }

  const int64_t t_base = bclock.now();
  uint64_t landed = 0;
  int64_t prev_done = t_base;
  // Consume completions in arrival order: the batched store path streams
  // chunks per benefactor, so array order and arrival order diverge.
  // Ordering by ready_at keeps the marginal daemon charge equal to each
  // chunk's true inter-arrival gap.
  std::vector<size_t> arrival(absent.size());
  for (size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
  std::stable_sort(arrival.begin(), arrival.end(), [&](size_t a, size_t b) {
    return fetches[a].ready_at < fetches[b].ready_at;
  });
  for (size_t i : arrival) {
    if (!fetches[i].status.ok()) {
      resident_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    Slot& slot = slots[i];
    slot.valid.SetAll();
    // Charge a daemon lane only the chunk's marginal completion time
    // within the batch: the shared NICs already model the transfer
    // queueing, and billing each chunk for the whole time since batch
    // start would occupy the lanes quadratically in the batch size.
    const int64_t marginal = std::max<int64_t>(
        0, fetches[i].ready_at - prev_done);
    slot.ready_at =
        ScheduleOnDaemon(fetches[i].ready_at - marginal, marginal);
    prev_done = std::max(prev_done, fetches[i].ready_at);
    slot.fresh_fetch = !prefetch;
    slot.ra_pending = prefetch;
    const SlotKey key{file, absent[i]};
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lock(sh.mutex);
    if (sh.slots.contains(key)) {
      resident_.fetch_sub(1, std::memory_order_relaxed);
      continue;  // raced with another fetcher; keep the existing copy
    }
    const uint64_t tick =
        lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    sh.lru.push_front({key, tick});
    auto [ins, ok] = sh.slots.emplace(key, std::move(slot));
    NVM_CHECK(ok);
    ins->second.lru_it = sh.lru.begin();
    sh.oldest_tick.store(sh.lru.back().second, std::memory_order_relaxed);
    if (prefetch) {
      ++traffic_.prefetched_chunks;
      ra_pending_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++traffic_.fetched_chunks;
    }
    ++landed;
  }
  if (landed > 0) {
    ++traffic_.batch_fetches;
    traffic_.batched_chunks += landed;
  }
  return OkStatus();
}

ChunkCache::PrefetchPlan ChunkCache::UpdateStreams(store::FileId file,
                                                   uint64_t pos, uint64_t n,
                                                   uint32_t index) {
  PrefetchPlan plan;
  std::lock_guard<std::mutex> lock(stream_mutex_);
  auto adv = AccessAdvice::kNormal;
  if (auto ait = advice_.find(file); ait != advice_.end()) adv = ait->second;
  auto& streams = streams_[file];
  ++stream_tick_;
  // A read continuing where one of the file's tracked streams ended
  // advances that stream and may trigger the next read-ahead batch.
  for (auto& s : streams) {
    if (s.next_offset != pos) continue;
    s.next_offset = pos + n;
    s.last_use = stream_tick_;
    if (adv == AccessAdvice::kStreamOnce && index > 0 &&
        (pos + n) % chunk_bytes() == 0) {
      // The previous chunk has been fully consumed and will not be
      // touched again: drop it immediately (evict-behind).
      plan.evict_behind = true;
    }
    if (!config_.readahead) return plan;
    // Kernel-style ramp: each batch doubles the window up to the advice
    // cap, and reaching the start of the previously issued batch (the
    // marker) triggers the next one.  The ahead-limit keeps the pipeline
    // from running more than `cap` chunks past the consumer.
    const uint32_t cap = ReadaheadCap(adv);
    if (s.ra_head == 0 || index >= s.ra_marker) {
      // Scale the batch to the global read-ahead budget: speculative
      // chunks nobody has consumed yet may fill at most half the cache,
      // or concurrent streams evict each other's windows before use.
      // Every live stream always gets at least one chunk ahead (the old
      // fixed prefetch) — a stream starved to zero would fall back to
      // full-cost foreground misses, which is worse than over-budget.
      const size_t pending = ra_pending_.load(std::memory_order_relaxed);
      const size_t budget_total = std::max<size_t>(1, capacity_chunks_ / 2);
      const auto budget = static_cast<uint32_t>(
          pending < budget_total ? budget_total - pending : 0);
      const uint32_t allowed = std::max(1u, std::min(s.window, budget));
      const uint32_t start = std::max(s.ra_head, index + 1);
      const uint32_t end = std::min(start + allowed, index + 1 + cap);
      if (end > start) {
        plan.start = start;
        plan.count = end - start;
        s.ra_marker = start;
        s.ra_head = end;
        s.window = std::min(s.window * 2, cap);
      }
    }
    return plan;
  }
  // New stream: remember it (replacing the least recently used slot when
  // the table is full) with a fresh 1-chunk read-ahead window.
  if (streams.size() < kMaxStreams) {
    streams.push_back({pos + n, stream_tick_, 1, 0, 0});
  } else {
    auto* lru = &streams[0];
    for (auto& s : streams) {
      if (s.last_use < lru->last_use) lru = &s;
    }
    *lru = {pos + n, stream_tick_, 1, 0, 0};
  }
  return plan;
}

uint32_t ChunkCache::ReadaheadCap(AccessAdvice advice) const {
  const uint32_t base = std::max<uint32_t>(1, config_.readahead_max_chunks);
  switch (advice) {
    case AccessAdvice::kWriteOnceReadMany:
      // The variable will be streamed repeatedly: run the pipeline twice
      // as deep.
      return base * 2;
    case AccessAdvice::kStreamOnce:
      // Evict-behind keeps the footprint tiny; a deep window would just
      // re-grow it, so stay one chunk ahead like the old fixed prefetch.
      return 1;
    default:
      return base;
  }
}

Status ChunkCache::Read(sim::VirtualClock& clock, store::FileId file,
                        uint64_t offset, std::span<uint8_t> out) {
  clock.Advance(config_.per_op_software_ns);
  traffic_.app_bytes_read += out.size();

  uint64_t done = 0;
  while (done < out.size()) {
    const uint64_t pos = offset + done;
    const auto index = static_cast<uint32_t>(pos / chunk_bytes());
    const uint64_t within = pos % chunk_bytes();
    const uint64_t n =
        std::min<uint64_t>(chunk_bytes() - within, out.size() - done);
    const SlotKey key{file, index};

    if (config_.batch_fetch) {
      // A cold read spanning several wholly-absent chunks fetches the
      // run with one metadata round-trip and overlapped transfers
      // instead of a lookup per chunk.
      const uint64_t span_chunks =
          (pos + (out.size() - done) + chunk_bytes() - 1) / chunk_bytes() -
          index;
      if (span_chunks >= 2) {
        const uint32_t max_run = static_cast<uint32_t>(std::min<uint64_t>(
            span_chunks,
            std::min<uint64_t>(capacity_chunks_, kMaxBatchChunks)));
        const uint32_t run = AbsentRunLength(file, index, max_run);
        if (run >= 2) {
          NVM_RETURN_IF_ERROR(
              FetchRun(clock, file, index, run, /*prefetch=*/false));
        }
      }
    }

    Shard& sh = shard_for(key);
    std::unique_lock<std::mutex> lk(sh.mutex);
    NVM_ASSIGN_OR_RETURN(Slot * slot, GetOrCreateSlot(lk, sh, clock, key));
    NVM_RETURN_IF_ERROR(EnsureValidLocked(clock, key, *slot,
                                          within / page_bytes(),
                                          (within + n - 1) / page_bytes()));
    std::memcpy(out.data() + done, slot->data.data() + within, n);
    lk.unlock();

    const PrefetchPlan plan = UpdateStreams(file, pos, n, index);
    if (plan.count > 0) {
      NVM_RETURN_IF_ERROR(
          FetchRun(clock, file, plan.start, plan.count, /*prefetch=*/true));
    }
    if (plan.evict_behind) {
      const SlotKey prev{file, index - 1};
      Shard& psh = shard_for(prev);
      std::lock_guard<std::mutex> plock(psh.mutex);
      auto pit = psh.slots.find(prev);
      if (pit != psh.slots.end() && pit->second.dirty.None()) {
        if (pit->second.ra_pending) {
          ra_pending_.fetch_sub(1, std::memory_order_relaxed);
        }
        psh.lru.erase(pit->second.lru_it);
        psh.slots.erase(pit);
        psh.oldest_tick.store(
            psh.lru.empty() ? ~0ULL : psh.lru.back().second,
            std::memory_order_relaxed);
        resident_.fetch_sub(1, std::memory_order_relaxed);
        ++traffic_.evictions;
      }
    }
    done += n;
  }
  return OkStatus();
}

Status ChunkCache::Write(sim::VirtualClock& clock, store::FileId file,
                         uint64_t offset, std::span<const uint8_t> in) {
  clock.Advance(config_.per_op_software_ns);
  traffic_.app_bytes_written += in.size();

  uint64_t done = 0;
  while (done < in.size()) {
    const uint64_t pos = offset + done;
    const auto index = static_cast<uint32_t>(pos / chunk_bytes());
    const uint64_t within = pos % chunk_bytes();
    const uint64_t n =
        std::min<uint64_t>(chunk_bytes() - within, in.size() - done);
    const SlotKey key{file, index};
    Shard& sh = shard_for(key);
    std::unique_lock<std::mutex> lk(sh.mutex);
    NVM_ASSIGN_OR_RETURN(Slot * slot, GetOrCreateSlot(lk, sh, clock, key));
    const size_t first_page = within / page_bytes();
    const size_t last_page = (within + n - 1) / page_bytes();
    if (!config_.dirty_page_writeback) {
      // Chunk-granular baseline (Table VII "w/o optimisation"): the dirty
      // unit is the whole chunk, so the whole chunk must be materialised
      // before any modification.
      NVM_RETURN_IF_ERROR(EnsureValidLocked(clock, key, *slot, 0,
                                            slot->valid.size() - 1));
    } else {
      // Partially covered head/tail pages need their old contents first
      // (read-modify-write); fully covered pages are written blind.
      if (within % page_bytes() != 0 && !slot->valid.Test(first_page)) {
        NVM_RETURN_IF_ERROR(
            EnsureValidLocked(clock, key, *slot, first_page, first_page));
      }
      if ((within + n) % page_bytes() != 0 && !slot->valid.Test(last_page)) {
        NVM_RETURN_IF_ERROR(
            EnsureValidLocked(clock, key, *slot, last_page, last_page));
      }
    }
    std::memcpy(slot->data.data() + within, in.data() + done, n);
    for (size_t p = first_page; p <= last_page; ++p) {
      slot->dirty.Set(p);
      slot->valid.Set(p);
    }

    done += n;
  }
  return OkStatus();
}

Status ChunkCache::Flush(sim::VirtualClock& clock, store::FileId file) {
  // Snapshot the dirty set with short per-shard peeks, then write each
  // file's chunks back in batched windows.  std::map keeps the file order
  // (and with the sort below, the window contents) deterministic.
  std::map<store::FileId, std::vector<uint32_t>> dirty;
  for (const auto& shp : shards_) {
    std::lock_guard<std::mutex> lock(shp->mutex);
    for (auto& [key, slot] : shp->slots) {
      if (file != store::kInvalidFileId && key.file != file) continue;
      if (slot.dirty.None()) continue;
      dirty[key.file].push_back(key.index);
    }
  }
  Status first = OkStatus();
  for (auto& [fid, indices] : dirty) {
    std::sort(indices.begin(), indices.end());
    for (size_t i = 0; i < indices.size(); i += kMaxBatchChunks) {
      const size_t n = std::min<size_t>(kMaxBatchChunks, indices.size() - i);
      Status s = FlushFileWindow(
          clock, fid, std::span<const uint32_t>(indices).subspan(i, n),
          /*background=*/false);
      if (first.ok() && !s.ok()) first = s;
    }
  }
  return first;
}

Status ChunkCache::Drop(sim::VirtualClock& clock, store::FileId file) {
  // Best-effort write-back of the file's dirty chunks, in batched windows.
  std::vector<uint32_t> indices;
  for (const auto& shp : shards_) {
    std::lock_guard<std::mutex> lock(shp->mutex);
    for (auto& [key, slot] : shp->slots) {
      if (key.file != file || slot.dirty.None()) continue;
      indices.push_back(key.index);
    }
  }
  std::sort(indices.begin(), indices.end());
  for (size_t i = 0; i < indices.size(); i += kMaxBatchChunks) {
    const size_t n = std::min<size_t>(kMaxBatchChunks, indices.size() - i);
    const Status flushed = FlushFileWindow(
        clock, file, std::span<const uint32_t>(indices).subspan(i, n),
        /*background=*/false);
    if (!flushed.ok()) {
      NVM_WLOG("write-back failed while dropping file %llu: %s",
               static_cast<unsigned long long>(file),
               flushed.message().c_str());
    }
  }

  for (const auto& shp : shards_) {
    std::lock_guard<std::mutex> lock(shp->mutex);
    for (auto it = shp->slots.begin(); it != shp->slots.end();) {
      if (it->first.file != file) {
        ++it;
        continue;
      }
      if (it->second.dirty.Any()) {
        // Drop destroys the slot either way (ssdfree / invalidate), and
        // Sync() is the durability barrier that already surfaced this
        // error.  Losing dirty data here is the documented consequence of
        // an unreplicated benefactor failure; wedging the drop would just
        // leak the slot.
        ++traffic_.dropped_dirty;
        NVM_WLOG("dropping dirty chunk %u of file %llu after failed "
                 "write-back",
                 it->first.index,
                 static_cast<unsigned long long>(it->first.file));
      }
      if (it->second.ra_pending) {
        ra_pending_.fetch_sub(1, std::memory_order_relaxed);
      }
      shp->lru.erase(it->second.lru_it);
      it = shp->slots.erase(it);
      resident_.fetch_sub(1, std::memory_order_relaxed);
    }
    shp->oldest_tick.store(
        shp->lru.empty() ? ~0ULL : shp->lru.back().second,
        std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(stream_mutex_);
  streams_.erase(file);
  return OkStatus();
}

}  // namespace nvm::fuselite

#include "store/placement.hpp"

#include <algorithm>
#include <cmath>

namespace nvm::store {

namespace {

// Granularity of the wear bias: a candidate's band is
// floor(wear * weight * kWearBands), so at weight 1.0 the [0,1] wear
// spectrum splits into 16 bands — coarse enough that small wear
// differences never override capacity order, fine enough that a
// half-worn device loses to a fresh one at modest weights.
constexpr double kWearBands = 16.0;

int64_t WearBand(double wear, double weight) {
  if (weight <= 0.0) return 0;
  const double band = std::floor(wear * weight * kWearBands);
  return band <= 0.0 ? 0 : static_cast<int64_t>(band);
}

bool Eligible(const PlacementCandidate& c, const PlacementRequest& req) {
  if (!c.alive || c.excluded) return false;
  if (req.exclude_suspected && c.suspected) return false;
  if (req.exclude_nodes != nullptr && c.node >= 0 &&
      std::find(req.exclude_nodes->begin(), req.exclude_nodes->end(),
                c.node) != req.exclude_nodes->end()) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<int> RankPlacement(const std::vector<PlacementCandidate>& cands,
                               const PlacementRequest& req) {
  const size_t n = cands.size();
  // Eligible candidate positions in the requested base order.
  std::vector<size_t> order;
  order.reserve(n);
  if (req.order == PlacementRequest::Order::kRotation) {
    for (size_t k = 0; k < n; ++k) {
      const size_t i = (req.start + k) % std::max<size_t>(n, 1);
      if (Eligible(cands[i], req)) order.push_back(i);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (Eligible(cands[i], req)) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return cands[a].bytes_free != cands[b].bytes_free
                 ? cands[a].bytes_free > cands[b].bytes_free
                 : cands[a].bid < cands[b].bid;
    });
  }
  // Reliability/endurance ranking on top of the base order.  The sort is
  // stable, so with every knob off (all keys equal) the base order comes
  // back unchanged — the knob-off engine is byte-identical to the
  // historic capacity-only placement.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const int sa = req.avoid_suspected && cands[a].suspected ? 1 : 0;
    const int sb = req.avoid_suspected && cands[b].suspected ? 1 : 0;
    if (sa != sb) return sa < sb;
    return WearBand(cands[a].wear, req.wear_weight) <
           WearBand(cands[b].wear, req.wear_weight);
  });
  std::vector<int> ids;
  ids.reserve(order.size());
  for (size_t i : order) ids.push_back(cands[i].bid);
  return ids;
}

size_t ChooseStripeStart(const std::vector<PlacementCandidate>& cands,
                         StripePolicy policy, size_t cursor, int client_node,
                         uint64_t chunk_bytes) {
  const size_t n = cands.size();
  auto eligible = [&](const PlacementCandidate& c) {
    return c.alive && !c.excluded && c.bytes_free >= chunk_bytes;
  };
  switch (policy) {
    case StripePolicy::kRoundRobin:
      return cursor;
    case StripePolicy::kLocalityAware:
      // Prefer a benefactor co-located with the allocating client; fall
      // back to the round-robin cursor when none is eligible.
      for (size_t i = 0; i < n; ++i) {
        if (eligible(cands[i]) && cands[i].node == client_node) return i;
      }
      return cursor;
    case StripePolicy::kCapacityBalanced: {
      // Emptiest ELIGIBLE benefactor — the minimum-free filter applies
      // here exactly as it does to the locality policy, so an argmax that
      // cannot hold even one chunk no longer wins the start slot.
      size_t best = cursor;
      uint64_t best_free = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!eligible(cands[i])) continue;
        if (cands[i].bytes_free > best_free) {
          best_free = cands[i].bytes_free;
          best = i;
        }
      }
      return best;
    }
  }
  return cursor;
}

}  // namespace nvm::store

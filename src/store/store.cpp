#include "store/store.hpp"

#include "common/log.hpp"

namespace nvm::store {

AggregateStore::AggregateStore(net::Cluster& cluster,
                               AggregateStoreConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  NVM_CHECK(!config_.benefactor_nodes.empty(),
            "aggregate store needs at least one benefactor node");
  if (config_.store.wal) {
    wal_ = std::make_unique<WalStore>(config_.store);
  }
  qos_ = std::make_unique<QosScheduler>(
      config_.store, cluster_.network().profile().nic_bw_mbps);
  manager_ = std::make_unique<Manager>(cluster_, config_.manager_node,
                                       config_.store, wal_.get());
  for (int node : config_.benefactor_nodes) {
    auto b = std::make_unique<Benefactor>(
        static_cast<int>(benefactors_.size()), cluster_.node(node),
        config_.contribution_bytes, config_.store);
    b->AttachQos(qos_.get());
    manager_->RegisterBenefactor(b.get());
    benefactors_.push_back(std::move(b));
  }
  clients_.resize(cluster_.num_nodes());
  if (config_.store.maintenance) {
    maintenance_ = std::make_unique<MaintenanceService>(*manager_);
  }
}

StoreClient& AggregateStore::ClientForNode(int node) {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  auto& slot = clients_.at(static_cast<size_t>(node));
  if (!slot) {
    slot = std::make_unique<StoreClient>(cluster_, *manager_, node,
                                         qos_.get());
  }
  return *slot;
}

void AggregateStore::KillManager() {
  // Order matters: the maintenance worker must join (and detach) before
  // its manager dies, and every client stub holds a Manager& that would
  // dangle, so they go too.  What survives is exactly what a real crash
  // leaves behind: benefactor processes on other nodes, and the bytes the
  // WAL device managed to absorb before the crash point.
  maintenance_.reset();
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    for (auto& slot : clients_) slot.reset();
  }
  manager_.reset();
}

RecoveryReport AggregateStore::RestartManager(sim::VirtualClock& clock) {
  NVM_CHECK(manager_ == nullptr, "RestartManager without KillManager");
  if (wal_ != nullptr) wal_->Reopen();
  manager_ = std::make_unique<Manager>(cluster_, config_.manager_node,
                                       config_.store, wal_.get());
  // Re-register the surviving benefactors in creation order, so ids match
  // every id recorded in the durable metadata.
  for (auto& b : benefactors_) manager_->RegisterBenefactor(b.get());
  RecoveryReport report = manager_->Recover(clock);
  if (config_.store.maintenance) {
    maintenance_ = std::make_unique<MaintenanceService>(*manager_);
  }
  return report;
}

}  // namespace nvm::store

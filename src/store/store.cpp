#include "store/store.hpp"

#include "common/log.hpp"

namespace nvm::store {

AggregateStore::AggregateStore(net::Cluster& cluster,
                               AggregateStoreConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  NVM_CHECK(!config_.benefactor_nodes.empty(),
            "aggregate store needs at least one benefactor node");
  manager_ = std::make_unique<Manager>(cluster_, config_.manager_node,
                                       config_.store);
  for (int node : config_.benefactor_nodes) {
    auto b = std::make_unique<Benefactor>(
        static_cast<int>(benefactors_.size()), cluster_.node(node),
        config_.contribution_bytes, config_.store);
    manager_->RegisterBenefactor(b.get());
    benefactors_.push_back(std::move(b));
  }
  clients_.resize(cluster_.num_nodes());
  if (config_.store.maintenance) {
    maintenance_ = std::make_unique<MaintenanceService>(*manager_);
  }
}

StoreClient& AggregateStore::ClientForNode(int node) {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  auto& slot = clients_.at(static_cast<size_t>(node));
  if (!slot) {
    slot = std::make_unique<StoreClient>(cluster_, *manager_, node);
  }
  return *slot;
}

}  // namespace nvm::store

#include "store/wal.hpp"

#include <algorithm>
#include <utility>

#include "common/checksum.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"

namespace nvm::store {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 payload_len + u32 payload crc

std::string EncodePayload(const WalRecord& rec) {
  std::string out;
  wire::PutU64(out, rec.seq);
  wire::PutU8(out, static_cast<uint8_t>(rec.type));
  switch (rec.type) {
    case WalRecordType::kCreateFile:
      wire::PutU64(out, rec.file_id);
      wire::PutString(out, rec.name);
      break;
    case WalRecordType::kExtend:
      wire::PutU64(out, rec.file_id);
      wire::PutU64(out, rec.size);
      wire::PutU32(out, static_cast<uint32_t>(rec.placements.size()));
      for (const WalPlacement& p : rec.placements) {
        wire::PutU32(out, p.slot);
        wire::PutKey(out, p.key);
        wire::PutReplicas(out, p.replicas);
      }
      break;
    case WalRecordType::kCowSwap:
      wire::PutU64(out, rec.file_id);
      wire::PutU32(out, rec.slot);
      wire::PutKey(out, rec.old_key);
      wire::PutKey(out, rec.key);
      wire::PutReplicas(out, rec.replicas);
      break;
    case WalRecordType::kComplete:
      wire::PutU32(out, static_cast<uint32_t>(rec.completions.size()));
      for (const WalCompletion& c : rec.completions) {
        wire::PutKey(out, c.key);
        wire::PutU8(out, c.has_crc ? 1 : 0);
        wire::PutU32(out, c.crc);
        wire::PutU32(out, static_cast<uint32_t>(c.frag_crcs.size()));
        for (uint32_t fc : c.frag_crcs) wire::PutU32(out, fc);
      }
      break;
    case WalRecordType::kReplicas:
      wire::PutKey(out, rec.key);
      wire::PutReplicas(out, rec.replicas);
      break;
    case WalRecordType::kUnlink:
      wire::PutU64(out, rec.file_id);
      break;
    case WalRecordType::kLink:
      wire::PutU64(out, rec.file_id);
      wire::PutU64(out, rec.src_file);
      break;
    case WalRecordType::kRedundancy:
      wire::PutU64(out, rec.file_id);
      wire::PutU8(out, rec.mode);
      break;
  }
  return out;
}

bool DecodePayload(const char* data, size_t n, WalRecord* rec) {
  wire::Reader r(data, n);
  rec->seq = r.U64();
  const uint8_t type = r.U8();
  if (type < static_cast<uint8_t>(WalRecordType::kCreateFile) ||
      type > static_cast<uint8_t>(WalRecordType::kRedundancy)) {
    return false;
  }
  rec->type = static_cast<WalRecordType>(type);
  switch (rec->type) {
    case WalRecordType::kCreateFile:
      rec->file_id = r.U64();
      rec->name = r.Str();
      break;
    case WalRecordType::kExtend: {
      rec->file_id = r.U64();
      rec->size = r.U64();
      const uint32_t count = r.U32();
      if (!r.ok || count > r.n) return false;
      rec->placements.resize(count);
      for (WalPlacement& p : rec->placements) {
        p.slot = r.U32();
        p.key = r.Key();
        p.replicas = r.Replicas();
      }
      break;
    }
    case WalRecordType::kCowSwap:
      rec->file_id = r.U64();
      rec->slot = r.U32();
      rec->old_key = r.Key();
      rec->key = r.Key();
      rec->replicas = r.Replicas();
      break;
    case WalRecordType::kComplete: {
      const uint32_t count = r.U32();
      if (!r.ok || count > r.n) return false;
      rec->completions.resize(count);
      for (WalCompletion& c : rec->completions) {
        c.key = r.Key();
        c.has_crc = r.U8() != 0;
        c.crc = r.U32();
        const uint32_t nfrag = r.U32();
        if (!r.ok || nfrag > r.n) return false;
        c.frag_crcs.resize(nfrag);
        for (uint32_t& fc : c.frag_crcs) fc = r.U32();
      }
      break;
    }
    case WalRecordType::kReplicas:
      rec->key = r.Key();
      rec->replicas = r.Replicas();
      break;
    case WalRecordType::kUnlink:
      rec->file_id = r.U64();
      break;
    case WalRecordType::kLink:
      rec->file_id = r.U64();
      rec->src_file = r.U64();
      break;
    case WalRecordType::kRedundancy:
      rec->file_id = r.U64();
      rec->mode = r.U8();
      break;
  }
  return r.ok;
}

std::string FrameRecord(const std::string& payload) {
  std::string framed;
  framed.reserve(kFrameHeaderBytes + payload.size());
  wire::PutU32(framed, static_cast<uint32_t>(payload.size()));
  wire::PutU32(framed, Crc32c(payload.data(), payload.size()));
  framed.append(payload);
  return framed;
}

}  // namespace

const sim::DeviceProfile& WalStore::ProfileFor(const std::string& name) {
  if (name == "fusionio") return sim::FusionIoDriveDuo();
  if (name == "ocz") return sim::OczRevoDrive();
  if (name == "dram") return sim::Ddr3_1600();
  return sim::IntelX25E();  // "x25e" and the default for unknown names
}

WalStore::WalStore(const StoreConfig& config)
    : config_(config),
      device_(std::make_unique<sim::SsdDevice>(
          "manager-wal", ProfileFor(config.wal_device),
          config.wal_device_wear_leveling)) {
  NVM_CHECK(config_.wal_segment_bytes >= 4_KiB,
            "wal_segment_bytes must hold at least one flash page of records");
}

void WalStore::Append(sim::VirtualClock& clock, WalRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) {
    dropped_.Add(1);
    return;
  }
  rec.seq = next_seq_++;
  const std::string framed = FrameRecord(EncodePayload(rec));
  appends_.Add(1);

  bool tear_this_append = false;
  if (crash_countdown_ > 0 && --crash_countdown_ == 0) tear_this_append = true;

  if (tear_this_append) {
    // The crash lands mid-record: only a prefix of the frame reaches the
    // device, which a reader sees as a torn tail (truncated length or
    // failing CRC).  Everything after this instant is frozen.
    const size_t torn = std::max<size_t>(1, framed.size() / 2);
    AppendBytesLocked(framed.substr(0, torn), rec.seq);
    device_->ChargeWrite(clock, append_offset_, torn);
    append_offset_ += torn;
    FreezeLocked();
    return;
  }

  AppendBytesLocked(framed, rec.seq);
  device_->ChargeWrite(clock, append_offset_, framed.size());
  append_offset_ += framed.size();
}

void WalStore::AppendBytesLocked(const std::string& framed, uint64_t seq) {
  if (segments_.empty() ||
      segments_.back().bytes.size() >= config_.wal_segment_bytes) {
    Segment seg;
    seg.first_seq = seq;
    segments_.push_back(std::move(seg));
  }
  Segment& seg = segments_.back();
  if (seg.bytes.empty()) seg.first_seq = seq;
  seg.last_seq = seq;
  seg.bytes.append(framed);
}

uint64_t WalStore::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

void WalStore::WriteCheckpoint(sim::VirtualClock& clock, std::string blob,
                               uint64_t covered_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) return;

  CheckpointSlot& slot = slots_[next_slot_];
  slot.present = true;
  slot.covered_seq = covered_seq;
  slot.crc = Crc32c(blob.data(), blob.size());
  slot.len = blob.size();

  if (crash_point_ == CrashPoint::kMidCheckpoint) {
    // Tear the blob halfway: the slot header says `len` bytes but only a
    // prefix landed, so recovery rejects this slot and falls back to the
    // other one (or to a full-log replay).
    const size_t torn = blob.size() / 2;
    slot.bytes = blob.substr(0, torn);
    device_->ChargeWrite(clock, append_offset_, std::max<size_t>(1, torn));
    append_offset_ += torn;
    FreezeLocked();
    return;
  }

  device_->ChargeWrite(clock, append_offset_, std::max<size_t>(1, blob.size()));
  append_offset_ += blob.size();
  slot.bytes = std::move(blob);
  next_slot_ ^= 1;
  checkpoints_.Add(1);

  // Checkpoint-supersedes-log: drop every segment fully covered by the
  // checkpoint.  The open segment is dropped too when covered — the next
  // append simply opens a fresh one.
  segments_.erase(
      std::remove_if(segments_.begin(), segments_.end(),
                     [covered_seq](const Segment& s) {
                       return !s.bytes.empty() && s.last_seq <= covered_seq;
                     }),
      segments_.end());
}

bool WalStore::SlotValid(const CheckpointSlot& s) const {
  return s.present && s.bytes.size() == s.len &&
         Crc32c(s.bytes.data(), s.bytes.size()) == s.crc;
}

WalStore::Replay WalStore::ReadForRecovery(sim::VirtualClock& clock) {
  std::lock_guard<std::mutex> lock(mu_);
  Replay out;

  // Read both checkpoint slots (we must inspect both to pick the newest
  // valid one) and take the best.
  uint64_t read_offset = 0;
  int best = -1;
  for (int i = 0; i < 2; ++i) {
    if (!slots_[i].present) continue;
    device_->ChargeRead(clock, read_offset,
                        std::max<size_t>(1, slots_[i].bytes.size()));
    read_offset += slots_[i].bytes.size();
    if (!SlotValid(slots_[i])) continue;
    if (best < 0 || slots_[i].covered_seq > slots_[best].covered_seq) best = i;
  }
  if (best >= 0) {
    out.used_checkpoint = true;
    out.covered_seq = slots_[best].covered_seq;
    out.checkpoint = slots_[best].bytes;
  }

  // Scan the log: stop at the first truncated or CRC-failing record.  A
  // bad record in the middle of the log means everything after it is
  // untrustworthy too — ordering is what replay relies on — so the scan is
  // conservative and cuts the whole tail.
  for (const Segment& seg : segments_) {
    device_->ChargeRead(clock, read_offset,
                        std::max<size_t>(1, seg.bytes.size()));
    read_offset += seg.bytes.size();
    size_t pos = 0;
    while (pos < seg.bytes.size()) {
      if (seg.bytes.size() - pos < kFrameHeaderBytes) {
        out.torn_tail = true;
        return out;
      }
      wire::Reader hdr(seg.bytes.data() + pos, kFrameHeaderBytes);
      const uint32_t len = hdr.U32();
      const uint32_t crc = hdr.U32();
      if (seg.bytes.size() - pos - kFrameHeaderBytes < len) {
        out.torn_tail = true;
        return out;
      }
      const char* payload = seg.bytes.data() + pos + kFrameHeaderBytes;
      if (Crc32c(payload, len) != crc) {
        out.torn_tail = true;
        return out;
      }
      WalRecord rec;
      if (!DecodePayload(payload, len, &rec)) {
        out.torn_tail = true;
        return out;
      }
      if (rec.seq > out.covered_seq) out.records.push_back(std::move(rec));
      pos += kFrameHeaderBytes + len;
    }
  }
  return out;
}

void WalStore::Reopen() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_.store(false, std::memory_order_release);
  crash_countdown_ = 0;
  crash_point_ = CrashPoint::kNone;

  // Re-derive the durable prefix exactly as ReadForRecovery does, then
  // physically truncate the torn tail so new appends continue after the
  // last durable record.
  uint64_t max_seq = 0;
  for (int i = 0; i < 2; ++i) {
    if (SlotValid(slots_[i])) {
      max_seq = std::max(max_seq, slots_[i].covered_seq);
    } else if (slots_[i].present) {
      // Torn checkpoint slot: discard it and make it the next overwrite
      // target so the surviving checkpoint is never clobbered first.
      slots_[i] = CheckpointSlot{};
      next_slot_ = i;
    }
  }

  bool cut = false;
  for (size_t si = 0; si < segments_.size() && !cut; ++si) {
    Segment& seg = segments_[si];
    size_t pos = 0;
    uint64_t seg_last = 0;
    bool any = false;
    while (pos < seg.bytes.size()) {
      if (seg.bytes.size() - pos < kFrameHeaderBytes) break;
      wire::Reader hdr(seg.bytes.data() + pos, kFrameHeaderBytes);
      const uint32_t len = hdr.U32();
      const uint32_t crc = hdr.U32();
      if (seg.bytes.size() - pos - kFrameHeaderBytes < len) break;
      const char* payload = seg.bytes.data() + pos + kFrameHeaderBytes;
      if (Crc32c(payload, len) != crc) break;
      WalRecord rec;
      if (!DecodePayload(payload, len, &rec)) break;
      seg_last = rec.seq;
      any = true;
      pos += kFrameHeaderBytes + len;
    }
    if (pos < seg.bytes.size()) {
      // Torn inside this segment: keep the valid prefix, drop the rest of
      // the log.
      seg.bytes.resize(pos);
      if (any) seg.last_seq = seg_last;
      segments_.resize(seg.bytes.empty() ? si : si + 1);
      cut = true;
    } else if (any) {
      seg.last_seq = seg_last;
    }
    if (any) max_seq = std::max(max_seq, seg_last);
  }
  next_seq_ = max_seq + 1;
  last_reopen_truncated_ = cut;
}

bool WalStore::last_reopen_truncated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_reopen_truncated_;
}

void WalStore::CrashAfterAppends(uint64_t n, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n == 0) {
    crash_countdown_ = 0;
    return;
  }
  if (seed != 0) {
    SplitMix64 sm(seed);
    crash_countdown_ = 1 + sm.Next() % n;
  } else {
    crash_countdown_ = n;
  }
}

void WalStore::CrashAtPoint(CrashPoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_point_ = point;
}

void WalStore::TriggerPoint(CrashPoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  // kMidCheckpoint fires inside WriteCheckpoint so the slot tears; the
  // other named points freeze right here.
  if (crash_point_ == point && point != CrashPoint::kMidCheckpoint) {
    FreezeLocked();
  }
}

void WalStore::FreezeLocked() {
  crash_point_ = CrashPoint::kNone;
  crash_countdown_ = 0;
  crashed_.store(true, std::memory_order_release);
}

size_t WalStore::num_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

uint64_t WalStore::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Segment& seg : segments_) total += seg.bytes.size();
  return total;
}

void WalStore::TruncateTailBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (n > 0 && !segments_.empty()) {
    Segment& seg = segments_.back();
    const uint64_t cut = std::min<uint64_t>(n, seg.bytes.size());
    seg.bytes.resize(seg.bytes.size() - cut);
    n -= cut;
    if (seg.bytes.empty()) segments_.pop_back();
  }
}

void WalStore::CorruptLogByte(uint64_t back, uint8_t xor_mask) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (back < it->bytes.size()) {
      it->bytes[it->bytes.size() - 1 - back] =
          static_cast<char>(it->bytes[it->bytes.size() - 1 - back] ^ xor_mask);
      return;
    }
    back -= it->bytes.size();
  }
}

}  // namespace nvm::store

// Multi-tenant QoS: per-resource admission scheduling in virtual time.
//
// The store's only admission discipline used to be the single-purpose
// `repair_bw_fraction` duty cycle — maintenance idled between batches,
// leaving device-timeline gaps foreground traffic backfilled.  The
// QosScheduler generalises that mechanism to N tenants and every timed
// resource: each benefactor SSD and each node NIC is a *lane*, and every
// chunk-sized charge asks the scheduler for an admission time before it
// may book device time.
//
// Per lane and tenant the scheduler keeps a token bucket refilled at the
// tenant's guaranteed `bw_share` of the lane (tokens are nanoseconds of
// device time).  Admission:
//   - uncontended (no other tenant touched the lane within the contention
//     window): admit at `now`, spend no tokens.  This is what makes the
//     scheduler work-conserving — a lone tenant is never slowed, and the
//     single-tenant schedule is *identical* to qos=off.
//   - contended: the request may start once the bucket covers its service
//     time; an empty bucket earns at the tenant's *effective* rate —
//     guaranteed share plus, for the highest active priority tier, a
//     weight-proportional cut of the lane's unguaranteed bandwidth.
// Delayed admission only sets a start floor; the underlying sim::Resource
// still gap-backfills, so bandwidth a delayed tenant leaves idle is
// consumed by whoever is waiting (exactly like the old repair throttle).
//
// With `qos = false` Admit() returns `now` unconditionally and takes no
// lock — byte- and virtual-time-identical to the QoS-less store.  The
// per-tenant latency histograms are recorded either way (recording never
// touches a virtual clock).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "store/types.hpp"

namespace nvm::store {

// Lock-free log-bucketed latency histogram: 8 sub-buckets per power of
// two (~9% resolution), atomic counters, percentile readout returns the
// recorded maximum of the selected bucket's range.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr int kBuckets = 64 << kSubBits;

  void Record(int64_t ns);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  // Upper edge of the bucket holding the p-th percentile sample (p in
  // [0,1]); 0 when empty.
  int64_t Percentile(double p) const;
  void Reset();

 private:
  static int BucketIndex(uint64_t v);
  static int64_t BucketUpperEdge(int index);

  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
};

// Snapshot of one tenant's scheduler + latency state.
struct QosTenantStats {
  TenantId id = kTenantForeground;
  uint64_t admitted = 0;       // admission requests seen
  uint64_t delayed = 0;        // admissions that waited on tokens
  int64_t delay_ns = 0;        // total admission delay
  uint64_t bytes = 0;          // wire bytes admitted
  uint64_t reads = 0;          // recorded read latencies
  uint64_t writes = 0;         // recorded write latencies
  int64_t read_p50_ns = 0, read_p99_ns = 0, read_p999_ns = 0;
  int64_t write_p50_ns = 0, write_p99_ns = 0, write_p999_ns = 0;
};

struct QosStats {
  std::vector<QosTenantStats> tenants;  // sorted by tenant id
};

class QosScheduler {
 public:
  enum class Lane : uint8_t { kSsd, kNic };

  // `nic_bw_mbps` sizes NIC-lane service estimates (the store does not
  // know wire times; the network does the real charging later).
  QosScheduler(const StoreConfig& config, double nic_bw_mbps);

  bool enabled() const { return enabled_; }

  // Earliest virtual time a `service_ns` request of `tenant` may begin on
  // lane (kind, id), given it arrives at `now`.  Always >= now; == now
  // when qos is off or the lane is uncontended.
  int64_t Admit(Lane kind, int id, TenantId tenant, int64_t service_ns,
                int64_t now);

  // Combined admission for one chunk transfer: `ssd_service_ns` on
  // benefactor `benefactor_lane`'s SSD plus `wire_bytes` on node
  // `node_lane`'s NIC.  Returns the max of the two lane floors.
  int64_t AdmitChunk(int benefactor_lane, int node_lane, TenantId tenant,
                     int64_t ssd_service_ns, uint64_t wire_bytes,
                     int64_t now);

  // Latency recording (on regardless of `qos`; virtual-time free).
  void RecordRead(TenantId tenant, int64_t ns);
  void RecordWrite(TenantId tenant, int64_t ns);

  QosStats Snapshot() const;

 private:
  struct Policy {
    double weight = 1.0;
    double share = 0.0;
    int priority = 1;
  };
  struct LaneTenant {
    double tokens_ns = 0;        // banked device time
    int64_t refill_at_ns = 0;    // bucket valid as of this instant
    int64_t active_until_ns = 0; // busy horizon on this lane
  };
  struct LaneState {
    std::mutex mu;
    // Latest admitted completion on this lane: every request admitted so
    // far is done by this instant.  A request arriving after the frontier
    // finds the lane idle and is admitted for free (work conservation).
    int64_t frontier_ns = 0;
    std::unordered_map<TenantId, LaneTenant> tenants;
  };
  struct TenantAccount {
    Policy policy;
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> delayed{0};
    std::atomic<int64_t> delay_ns{0};
    std::atomic<uint64_t> bytes{0};
    LatencyHistogram read_lat;
    LatencyHistogram write_lat;
  };

  Policy PolicyFor(TenantId tenant) const;
  TenantAccount& Account(TenantId tenant);
  LaneState& LaneFor(Lane kind, int id);

  const bool enabled_;
  const double min_rate_;      // starvation floor on the effective rate
  const int64_t burst_ns_;
  const int64_t window_ns_;
  const double nic_bw_mbps_;
  std::vector<QosTenant> policies_;

  mutable std::mutex lanes_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<LaneState>> lanes_;
  mutable std::mutex accounts_mu_;
  std::unordered_map<TenantId, std::unique_ptr<TenantAccount>> accounts_;
};

}  // namespace nvm::store

// Human-readable status report for an aggregate store — the "nvmstat"
// view an operator would use: per-benefactor space, liveness, traffic and
// flash wear, plus manager-level totals.
#pragma once

#include <span>
#include <string>

#include "store/store.hpp"

namespace nvm::store {

// Per-mount cache counters for the report.  The fuselite layer sits above
// the store, so callers that own mounts snapshot these and pass them down
// (see examples/nvmsim.cpp); the store layer never links against fuselite.
struct MountCacheStats {
  int node = -1;
  uint64_t resident_chunks = 0;
  uint64_t hit_chunks = 0;
  uint64_t fetched_chunks = 0;
  uint64_t prefetched_chunks = 0;
  uint64_t evictions = 0;
  // Dirty chunks discarded on Drop() after a failed best-effort
  // write-back — data lost to unreplicated benefactor failure.
  uint64_t dropped_dirty = 0;
  // Write-back windows that coalesced ≥2 dirty chunks into batched store
  // writes (the write-side run RPC).
  uint64_t flush_batches = 0;
  // Writes that reached only a subset of their replicas (the failed
  // benefactors were reported dead; repair restores replication).
  uint64_t degraded_writes = 0;
};

// Multi-line report of the store's current state; any supplied mount cache
// snapshots are appended as a per-node cache section.
std::string StatusReport(AggregateStore& store,
                         std::span<const MountCacheStats> mounts = {});

}  // namespace nvm::store

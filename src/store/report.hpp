// Human-readable status report for an aggregate store — the "nvmstat"
// view an operator would use: per-benefactor space, liveness, traffic and
// flash wear, plus manager-level totals.
#pragma once

#include <string>

#include "store/store.hpp"

namespace nvm::store {

// Multi-line report of the store's current state.
std::string StatusReport(AggregateStore& store);

}  // namespace nvm::store

// Manager process of the aggregate NVM store.
//
// The manager owns all metadata: the benefactor registry (with liveness),
// per-file chunk maps, striping, space accounting, chunk refcounts (for
// checkpoint linking), and copy-on-write version management.  Data never
// flows through the manager — clients look up locations here and then talk
// to benefactors directly, exactly as in the paper.
//
// Every operation charges a modelled metadata service time to the caller's
// virtual clock via a sim::Resource, so manager contention shows up in
// benchmark results.  Network cost for reaching the manager is charged by
// StoreClient, not here.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "net/cluster.hpp"
#include "store/benefactor.hpp"
#include "store/types.hpp"

namespace nvm::store {

class MaintenanceService;

// Location info for reading one chunk.
struct ReadLocation {
  ChunkKey key;
  std::vector<int> benefactors;  // replicas, primary first
};

// One benefactor's slice of a batched read: the indices (into the caller's
// location array) of the chunks whose primary replica lives on
// `benefactor` — the unit of one Benefactor::ReadChunkRun RPC.
struct BenefactorRun {
  int benefactor = -1;
  std::vector<size_t> items;  // indices into the grouped span, input order
};

// Group read locations by primary (first-listed) benefactor, preserving
// input order within each run; runs are ordered by first appearance, so
// the result is deterministic for a given input.  Locations with no
// benefactor (unresolved/EOF) are skipped — callers handle those through
// the per-chunk path.
std::vector<BenefactorRun> GroupByPrimaryBenefactor(
    std::span<const ReadLocation> locs);

// Location info for writing one chunk.  If `needs_clone` is set the chunk
// is shared with a checkpoint: the client must ask the (first) benefactor
// to CloneChunk(clone_from -> key) before writing.
struct WriteLocation {
  ChunkKey key;
  std::vector<int> benefactors;
  bool needs_clone = false;
  ChunkKey clone_from;
};

// Group write locations by benefactor for the write-side run RPC.  Unlike
// the read-side grouping, a chunk appears in the run of EVERY benefactor
// that holds a replica (writes must reach all replicas, reads only one).
// Runs are ordered by first appearance and preserve input order within
// each run, so the result is deterministic for a given input.
std::vector<BenefactorRun> GroupByBenefactor(
    std::span<const WriteLocation> locs);

class Manager {
 public:
  Manager(net::Cluster& cluster, int manager_node, StoreConfig config);

  const StoreConfig& config() const { return config_; }
  int node_id() const { return manager_node_; }

  // --- benefactor registry ---

  // Takes shared ownership is not needed: benefactors outlive the manager
  // in AggregateStore (see store.hpp); raw pointers keep wiring simple.
  int RegisterBenefactor(Benefactor* benefactor);
  Benefactor* benefactor(int id);
  size_t num_benefactors() const;
  std::vector<int> AliveBenefactors() const;
  // Client-observed failure report.
  void MarkDead(int id);
  // Heartbeat sweep: polls every registered benefactor.  The pings fork a
  // clock per benefactor and join at the max, so the round-trips overlap
  // in flight (the manager CPU still serialises the sends through the
  // service resource) instead of queueing N full RTTs end-to-end.  Returns
  // the number found alive; `alive_out`, when given, receives one flag per
  // benefactor id.
  size_t CheckLiveness(sim::VirtualClock& clock,
                       std::vector<char>* alive_out = nullptr);

  // --- incremental repair engine ---
  //
  // A repair is split into three steps so chunk data never moves while the
  // manager mutex is held:
  //   PlanRepairs        (mutex)  snapshot survivors, reclaim dead
  //                               replicas, reserve targets
  //   ExecuteRepairPlan  (none)   copy the chunk survivor -> targets
  //   CommitRepair       (mutex)  re-validate, publish the new replica
  //                               list — or undo if the chunk changed
  // RepairReplication below and the background MaintenanceService are both
  // thin drivers over these steps.

  struct RepairPlan {
    ChunkKey key;
    std::vector<int> survivors;  // alive holders, primary first
    std::vector<int> targets;    // reserved destinations
    uint64_t epoch = 0;          // repair epoch of `key` at plan time
    bool incomplete = false;     // alive capacity too low to fully heal
    // Authoritative checksum snapshot: the copy must come from a survivor
    // whose bytes verify against it — never from an unverified replica
    // while a verified one may exist.
    bool has_crc = false;
    uint32_t crc = 0;
  };
  struct RepairOutcome {
    RepairPlan plan;
    std::vector<int> written;  // targets now holding the data
    std::vector<int> failed;   // targets that died mid-copy
    // Survivors whose bytes failed checksum verification during the copy:
    // CommitRepair quarantines them (strips the replica, requeues).
    std::vector<int> corrupt_sources;
  };

  // Every distinct chunk key whose replica list names a dead benefactor or
  // is shorter than the replication factor (lost chunks excluded).
  std::vector<ChunkKey> CollectUnderReplicated() const;
  // Every distinct chunk key with a replica on benefactor `id`.
  std::vector<ChunkKey> ChunksWithReplicasOn(int id) const;
  // Build repair plans for `keys` under the mutex: strip dead replicas
  // from the metadata immediately (readers stop trying them), reclaim
  // their space, and reserve targets on the least-loaded alive benefactors
  // (capacity-aware placement).  A chunk with no surviving replica is
  // counted in *lost, its list emptied, and no plan emitted; stale keys
  // (freed or already healthy) are skipped.
  std::vector<RepairPlan> PlanRepairs(std::span<const ChunkKey> keys,
                                      uint64_t* lost = nullptr);
  // Copy the chunk from a surviving replica to every planned target,
  // charging `clock`; target copies fork clocks and join at the max.
  // Called WITHOUT the mutex — this is the slow part.
  RepairOutcome ExecuteRepairPlan(sim::VirtualClock& clock,
                                  const RepairPlan& plan);
  // Publish the outcome under the mutex.  If the chunk was rewritten or
  // freed while the copy ran (its repair epoch moved, its replica list
  // changed, or a prepared write is still in flight — the copy may miss
  // bytes that land on a survivor only), the copied bytes are stale:
  // every target is undone and *requeue set so the caller can retry.
  // *requeue is also set when fewer targets were published than planned
  // (no readable survivor, or a target died mid-copy) so the chunk does
  // not silently leave the repair queue while degraded.  Returns replicas
  // recreated.
  uint64_t CommitRepair(const RepairOutcome& outcome,
                        bool* requeue = nullptr);

  // Repair replication after failures: for every chunk that lost replicas
  // to dead benefactors, re-copy the data from a surviving replica onto
  // healthy benefactors until the configured replication factor is met
  // again.  Synchronous, unthrottled driver over the engine above.
  // Returns the number of replicas recreated; chunks with no surviving
  // replica are counted in *lost (and in lost_chunks()).
  StatusOr<uint64_t> RepairReplication(sim::VirtualClock& clock,
                                       uint64_t* lost = nullptr);

  // One scrub pass reconciling metadata against benefactor state, fully
  // under the mutex (metadata only — no data transfers): deletes stored
  // chunks no file references any more (orphans of failed repairs or
  // unlinks against dead benefactors), fixes reservation-accounting drift,
  // and reports under-replicated chunks for re-queueing.  In-flight
  // repair targets (planned, not yet committed) are exempt from both the
  // orphan sweep and the drift accounting — a concurrent repair's copy
  // legitimately stores data the replica lists do not name yet.
  struct ScrubResult {
    uint64_t orphans_deleted = 0;
    uint64_t reservation_fixes = 0;  // chunk-slots corrected
    std::vector<ChunkKey> under_replicated;
  };
  ScrubResult ScrubOnce(sim::VirtualClock& clock);

  // --- checksum verification scrub ---
  //
  // Incremental sweep verifying stored chunk contents against the
  // manager's authoritative checksums, at most `max_bytes` of chunk data
  // per call; a cursor over the sorted keyspace makes successive calls
  // cover the whole store.  Three phases so no chunk data moves while the
  // mutex is held: snapshot a candidate batch (mutex), VerifyChunk each
  // replica benefactor-locally (no mutex — only the verdict crosses the
  // network), then quarantine confirmed mismatches (mutex, re-validating
  // that no write or repair raced the verification).
  struct VerifyResult {
    uint64_t chunks_checked = 0;   // distinct keys visited
    uint64_t bytes_checked = 0;    // chunk bytes read + checksummed
    uint64_t corrupt_found = 0;    // replicas quarantined
    uint64_t skipped = 0;          // mismatches dropped: raced a write/repair
    bool wrapped = false;          // cursor passed the end of the keyspace
    // Quarantined keys that still have a verified survivor — hand these to
    // the repair queue for re-replication.
    std::vector<ChunkKey> quarantined;
  };
  VerifyResult VerifyScrub(sim::VirtualClock& clock, uint64_t max_bytes);

  // A reader saw a checksum mismatch on (key, bid): quarantine that
  // replica (strip it from the list, drop its data and space) and, when a
  // survivor remains, queue a repair.  Never called with the mutex held.
  void ReportCorrupt(const ChunkKey& key, int bid, int64_t now_ns);

  // Corrupt replicas detected (read path + scrub, cumulative) and corrupt
  // chunks healed back to full replication by the repair engine.
  uint64_t corrupt_detected() const { return corrupt_detected_.value(); }
  uint64_t corrupt_repaired() const { return corrupt_repaired_.value(); }
  // Test hook: the authoritative checksum recorded for `key`, if any.
  bool LookupChecksum(const ChunkKey& key, uint32_t* crc) const;

  // Chunks that lost every replica to failures (cumulative).
  uint64_t lost_chunks() const { return lost_chunks_.value(); }

  // --- background maintenance hooks ---
  // AggregateStore attaches its MaintenanceService here; the manager
  // forwards client-side signals to it.  Detached (nullptr), both signal
  // hooks are no-ops and the store behaves exactly as before.
  void AttachMaintenance(MaintenanceService* service);
  // A client saw a replica write fail (degraded write): hand the chunk to
  // the background repair queue.  Never called with the mutex held.
  void ReportDegraded(const ChunkKey& key, int64_t now_ns);
  // Cheap pacing hook invoked on client metadata round-trips: lets the
  // maintenance worker's schedule catch up to foreground virtual time.
  void MaintenanceTick(int64_t now_ns);

  // Decommission a benefactor for maintenance/upgrade (the paper's
  // "aggregation ... allows for ... easy system hardware upgrades or
  // re-configuration"): migrate every chunk it holds to the surviving
  // benefactors, rewrite the placement metadata, then retire it.
  // Returns the number of chunks migrated.
  StatusOr<uint64_t> Decommission(sim::VirtualClock& clock, int id);

  // --- namespace ---

  StatusOr<FileId> CreateFile(sim::VirtualClock& clock,
                              const std::string& name);
  StatusOr<FileId> LookupFile(sim::VirtualClock& clock,
                              const std::string& name);
  StatusOr<FileInfo> Stat(sim::VirtualClock& clock, FileId id);
  Status Unlink(sim::VirtualClock& clock, FileId id);

  // Extend the file to at least `size` bytes, allocating chunk placements
  // per the configured stripe policy over alive benefactors
  // (posix_fallocate semantics: reservation only, no data transfer).
  // `client_node` is the allocating client's node, used by the
  // locality-aware policy (-1: unknown).
  Status Fallocate(sim::VirtualClock& clock, FileId id, uint64_t size,
                   int client_node = -1);

  // --- data-plane lookups ---

  StatusOr<ReadLocation> GetReadLocation(sim::VirtualClock& clock, FileId id,
                                         uint32_t chunk_index);
  // Batched variant: locations of `count` consecutive chunks starting at
  // `first`, clamped at EOF.  Charges ONE metadata service op for the
  // whole batch — the control-plane saving behind the client's coalesced
  // miss and read-ahead paths.
  StatusOr<std::vector<ReadLocation>> GetReadLocations(
      sim::VirtualClock& clock, FileId id, uint32_t first, uint32_t count);
  // Resolve the target for writing a chunk, performing the copy-on-write
  // decision: a chunk shared with a checkpoint gets a fresh version.
  // Every successful prepare MUST be paired with one CompleteWrite of the
  // returned key once the replica transfers finish (success or failure) —
  // the open prepare fences the repair engine off the chunk.
  StatusOr<WriteLocation> PrepareWrite(sim::VirtualClock& clock, FileId id,
                                       uint32_t chunk_index);
  // Batched variant: resolve a whole flush window (any set of chunk
  // indices of one file) in ONE metadata service op, including the
  // copy-on-write version bumps — the control-plane saving behind the
  // client's batched write-back path.  Result order matches `indices`.
  // On error no write is left open; on success every returned location
  // must be completed (CompleteWrite / CompleteWrites).
  StatusOr<std::vector<WriteLocation>> PrepareWriteBatch(
      sim::VirtualClock& clock, FileId id, std::span<const uint32_t> indices);
  // The write prepared for `key` has finished moving data (or given up):
  // drops the in-flight-writer fence and moves the repair epoch, so a
  // repair copy taken while the write was in flight can never commit.
  // `crc` (when non-null) becomes the chunk's authoritative checksum —
  // callers pass it only when at least one replica holds the data.
  void CompleteWrite(const ChunkKey& key, const uint32_t* crc = nullptr);
  // Batch variant: one lock pass completes a whole prepared window.
  // `crcs` (parallel to locs; may be empty) carries the flush-time
  // checksums, recorded per chunk only where `ok` (parallel; may be empty
  // = all ok) says a replica holds the data.
  void CompleteWrites(std::span<const WriteLocation> locs,
                      std::span<const uint32_t> crcs = {},
                      std::span<const char> ok = {});

  // --- checkpoint support ---

  // Append all of `src`'s chunk refs to `dst` (incrementing refcounts) —
  // the zero-copy linking of an NVM variable into a checkpoint file.
  // Returns the chunk-aligned logical offset in `dst` where `src`'s data
  // now begins.
  StatusOr<uint64_t> LinkFileChunks(sim::VirtualClock& clock, FileId dst,
                                    FileId src);

  // Refcount of a chunk (test/diagnostic hook).
  uint32_t ChunkRefcount(const ChunkKey& key) const;

  sim::Resource& service() { return service_; }
  uint64_t num_files() const;

 private:
  struct FileMeta {
    std::string name;
    uint64_t size = 0;
    std::vector<ChunkRef> chunks;
    // Next benefactor (index into benefactors_) for striping continuation.
    size_t stripe_cursor = 0;
  };

  void ChargeOp(sim::VirtualClock& clock) {
    service_.Acquire(clock, config_.manager_op_ns);
  }
  // Drop one reference; frees the chunk on its benefactors at zero.
  void UnrefChunkLocked(const ChunkRef& ref);
  // COW-resolve one chunk of `meta` (mutex held).  Rolls back partial
  // space reservations if a replica runs out of space mid-COW.
  StatusOr<WriteLocation> PrepareWriteLocked(FileMeta& meta,
                                             uint32_t chunk_index);
  // First-choice benefactor index for the next chunk of `meta`, per the
  // stripe policy (mutex held).
  size_t PlacementStartLocked(const FileMeta& meta, int client_node) const;
  // Rewrite every file ref of `key` to `replicas` (mutex held) — shared
  // chunks (checkpoint links) carry the list once per referencing file.
  void SetReplicasLocked(const ChunkKey& key,
                         const std::vector<int>& replicas);
  // Replica list of `key` as recorded in the first referencing file, or
  // nullptr when no file references it (mutex held).
  const std::vector<int>* CurrentReplicasLocked(const ChunkKey& key) const;
  // Drop a reserved (and possibly partially written) repair target of an
  // abandoned plan (mutex held).  If a racing repair already committed
  // `bid` into the chunk's replica list, only this plan's duplicate
  // reservation is released — the data now belongs to the published list.
  void UndoRepairTargetLocked(const ChunkKey& key, int bid);
  // Mutex-held core of CompleteWrite.
  void CompleteWriteLocked(const ChunkKey& key, const uint32_t* crc = nullptr);
  // True when (key, bid) is a reserved target of a repair plan whose
  // commit has not run yet (mutex held).
  bool IsRepairTargetLocked(const ChunkKey& key, int bid) const;
  // Strip the corrupt replica (key, bid): drop its data and space, publish
  // the shortened list, bump the repair epoch.  Returns false when bid is
  // no longer in the chunk's list (already quarantined or replaced) —
  // nothing new to learn.  Mutex held.
  bool QuarantineReplicaLocked(const ChunkKey& key, int bid);

  net::Cluster& cluster_;
  const int manager_node_;
  const StoreConfig config_;
  sim::Resource service_;

  mutable std::mutex mutex_;
  std::vector<Benefactor*> benefactors_;
  std::unordered_map<std::string, FileId> names_;
  std::unordered_map<FileId, FileMeta> files_;
  std::unordered_map<ChunkKey, uint32_t, ChunkKeyHash> refcounts_;
  // Bumped on every write prepare AND every write completion of a chunk;
  // CommitRepair compares it against the plan-time value to detect that a
  // copy made outside the mutex went stale.  The completion-side bump is
  // what catches a write prepared before the plan whose data lands after
  // the repair's read.  Entries die with the chunk's last reference.
  std::unordered_map<ChunkKey, uint64_t, ChunkKeyHash> repair_epochs_;
  // Chunks with a prepared-but-uncompleted write.  While an entry exists
  // CommitRepair refuses to publish (requeues): the in-flight write could
  // still land bytes on a survivor that the copied targets would miss.
  std::unordered_map<ChunkKey, uint32_t, ChunkKeyHash> inflight_writers_;
  // Reserved targets of repair plans between PlanRepairs and CommitRepair
  // (duplicates possible when racing drivers plan the same key).  The
  // scrubber must not reap these as orphans: their chunk data exists on
  // the benefactor before the replica list names it.
  std::unordered_map<ChunkKey, std::vector<int>, ChunkKeyHash>
      repair_targets_;
  // Authoritative per-chunk checksums, recorded at write completion (only
  // when integrity is on).  Entries die with the chunk's last reference.
  std::unordered_map<ChunkKey, uint32_t, ChunkKeyHash> checksums_;
  // Chunks with a quarantined (corrupt) replica still awaiting full
  // re-replication; drained into corrupt_repaired_ by CommitRepair.
  std::unordered_set<ChunkKey, ChunkKeyHash> corrupt_pending_;
  // Resume point of the incremental verification sweep (nullopt: restart
  // from the lowest key).
  std::optional<ChunkKey> verify_cursor_;
  FileId next_file_id_ = 1;
  size_t stripe_cursor_ = 0;
  Counter lost_chunks_;
  Counter corrupt_detected_;
  Counter corrupt_repaired_;
  // Guards the maintenance hook pointer: signal forwarding holds it
  // shared, attach/detach exclusive — so ~MaintenanceService's detach
  // waits out any client thread already inside a hook call.
  mutable std::shared_mutex hook_mu_;
  MaintenanceService* maintenance_ = nullptr;
};

}  // namespace nvm::store

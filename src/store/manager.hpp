// Manager process of the aggregate NVM store.
//
// The manager owns all metadata: the benefactor registry (with liveness),
// per-file chunk maps, striping, space accounting, chunk refcounts (for
// checkpoint linking), and copy-on-write version management.  Data never
// flows through the manager — clients look up locations here and then talk
// to benefactors directly, exactly as in the paper.
//
// Concurrency model (the metadata plane is sharded; see DESIGN.md
// "metadata sharding & lock-free resolves"):
//
//   * The chunk namespace is partitioned into config.meta_shards
//     independent shards by splitmix64 hash of ChunkKey.  Each MetaShard
//     owns its slice of the chunk table (location lists, refcounts, repair
//     epochs, checksums), the in-flight-writer fences, the reserved repair
//     targets and the verify-scrub cursor, all behind its own mutex.
//   * Every chunk has ONE authoritative home — a ChunkHandle shared by all
//     referencing file slots — and its replica list is an atomically-
//     swapped immutable snapshot: stores happen only under the owning
//     shard's mutex (publish-on-commit), loads are lock-free.  The read-
//     resolve fast path (GetReadLocation/GetReadLocations) therefore takes
//     NO shard lock.
//   * Cross-shard lock sets (CompleteWrites over a flush window, the COW
//     old/new pair of a prepare, the scrubber's stop-the-world pass) are
//     always acquired in ascending shard-index order — the same deadlock-
//     free discipline as ChunkCache::FlushFileWindow.
//   * Lock hierarchy (acquire strictly left to right; ns_mu_ is never held
//     across a file or shard acquisition):
//       file mu  ->  shard mu (ascending)  ->  reg_mu_ / benefactor
//     ns_mu_ guards only the name map and file table and is released
//     before any other lock is taken (CreateFile additionally takes
//     reg_mu_ shared inside it, which nothing else nests the other way).
//
// Every operation charges a modelled metadata service time to the caller's
// virtual clock via a per-shard sim::Resource lane (file-addressed ops use
// the file's lane, key-addressed ops the key's shard lane), so manager
// contention shows up in benchmark results — and stops being a single
// serial timeline once meta_shards > 1.  With meta_shards == 1 every op
// lands on lane 0 and the manager behaves exactly like the pre-shard,
// single-mutex implementation.  Network cost for reaching the manager is
// charged by StoreClient, not here.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "net/cluster.hpp"
#include "sim/resource.hpp"
#include "store/benefactor.hpp"
#include "store/placement.hpp"
#include "store/recovery.hpp"
#include "store/types.hpp"
#include "store/wal.hpp"

namespace nvm::store {

class MaintenanceService;

// Location info for reading one chunk.  For a replicated chunk
// `benefactors` lists replicas primary-first; for an erasure-coded chunk
// (`ec` set) it is the POSITIONAL fragment map — length k+m, entry i holds
// fragment i's benefactor id, -1 for a missing fragment.
struct ReadLocation {
  ChunkKey key;
  std::vector<int> benefactors;  // replicas, primary first (EC: positional)
  bool ec = false;
};

// One benefactor's slice of a batched read: the indices (into the caller's
// location array) of the chunks whose primary replica lives on
// `benefactor` — the unit of one Benefactor::ReadChunkRun RPC.
struct BenefactorRun {
  int benefactor = -1;
  std::vector<size_t> items;  // indices into the grouped span, input order
};

// Location info for writing one chunk.  If `needs_clone` is set the chunk
// is shared with a checkpoint: the client must ask the (first) benefactor
// to CloneChunk(clone_from -> key) before writing.
struct WriteLocation {
  ChunkKey key;
  std::vector<int> benefactors;  // EC: positional fragment map, -1 missing
  bool needs_clone = false;
  bool ec = false;
  ChunkKey clone_from;
};

class Manager {
 public:
  // `wal` (optional, owned by the AggregateStore so it survives a manager
  // crash): when non-null every durable metadata mutation appends a
  // record there BEFORE publishing in memory, and Checkpoint()/Recover()
  // become functional.  Null keeps the manager byte- and virtual-time-
  // identical to the WAL-less implementation.
  Manager(net::Cluster& cluster, int manager_node, StoreConfig config,
          WalStore* wal = nullptr);

  const StoreConfig& config() const { return config_; }
  int node_id() const { return manager_node_; }
  size_t meta_shards() const { return meta_shards_; }
  WalStore* wal() { return wal_; }

  // --- pure grouping helpers (no locks, no manager state) ---
  //
  // Both operate on already-resolved location spans, so grouping a batch
  // for the run RPCs never re-enters any manager lock.

  // Group read locations by primary (first-listed) benefactor, preserving
  // input order within each run; runs are ordered by first appearance, so
  // the result is deterministic for a given input.  Locations with no
  // benefactor (unresolved/EOF) are skipped — callers handle those through
  // the per-chunk path.
  static std::vector<BenefactorRun> GroupByPrimaryBenefactor(
      std::span<const ReadLocation> locs);

  // Group write locations by benefactor for the write-side run RPC.
  // Unlike the read-side grouping, a chunk appears in the run of EVERY
  // benefactor that holds a replica (writes must reach all replicas, reads
  // only one).  Runs are ordered by first appearance and preserve input
  // order within each run, so the result is deterministic for a given
  // input.
  static std::vector<BenefactorRun> GroupByBenefactor(
      std::span<const WriteLocation> locs);

  // --- benefactor registry ---

  // Takes shared ownership is not needed: benefactors outlive the manager
  // in AggregateStore (see store.hpp); raw pointers keep wiring simple.
  int RegisterBenefactor(Benefactor* benefactor);
  Benefactor* benefactor(int id);
  size_t num_benefactors() const;
  std::vector<int> AliveBenefactors() const;
  // Client-observed failure report.
  void MarkDead(int id);
  // Heartbeat sweep: polls every registered benefactor.  The pings fork a
  // clock per benefactor and join at the max, so the round-trips overlap
  // in flight (the manager CPU still serialises the sends through the
  // per-lane service resources) instead of queueing N full RTTs
  // end-to-end.  Returns the number found alive; `alive_out`, when given,
  // receives one flag per benefactor id.
  size_t CheckLiveness(sim::VirtualClock& clock,
                       std::vector<char>* alive_out = nullptr);

  // --- incremental repair engine ---
  //
  // A repair is split into three steps so chunk data never moves while any
  // shard mutex is held:
  //   PlanRepairs        (shard mu)  snapshot survivors, reclaim dead
  //                                  replicas, reserve targets
  //   ExecuteRepairPlan  (none)      copy the chunk survivor -> targets
  //   CommitRepair       (shard mu)  re-validate, publish the new replica
  //                                  list — or undo if the chunk changed
  // RepairReplication below and the background MaintenanceService are both
  // thin drivers over these steps.

  struct RepairPlan {
    ChunkKey key;
    std::vector<int> survivors;  // alive holders, primary first
    std::vector<int> targets;    // reserved destinations
    uint64_t epoch = 0;          // repair epoch of `key` at plan time
    bool incomplete = false;     // alive capacity too low to fully heal
    // Authoritative checksum snapshot: the copy must come from a survivor
    // whose bytes verify against it — never from an unverified replica
    // while a verified one may exist.
    bool has_crc = false;
    uint32_t crc = 0;
    // Erasure-coded chunk: `survivors` is the POSITIONAL fragment map
    // (length k+m, -1 = missing), `targets[i]` is the reserved destination
    // for fragment position `target_positions[i]`, and `frag_crcs` (when
    // has_crc) snapshots the per-fragment authoritative checksums.
    bool ec = false;
    std::vector<uint32_t> target_positions;
    std::vector<uint32_t> frag_crcs;
  };
  struct RepairOutcome {
    RepairPlan plan;
    std::vector<int> written;  // targets now holding the data
    std::vector<int> failed;   // targets that died mid-copy
    // Survivors whose bytes failed checksum verification during the copy:
    // CommitRepair quarantines them (strips the replica, requeues).
    std::vector<int> corrupt_sources;
  };

  // Every distinct chunk key whose replica list names a dead benefactor or
  // is shorter than the replication factor (lost chunks excluded).
  // Shards are visited one at a time; the result is sorted by key so it
  // does not depend on the shard count or hash iteration order.
  std::vector<ChunkKey> CollectUnderReplicated() const;
  // Every distinct chunk key with a replica on benefactor `id` (sorted).
  std::vector<ChunkKey> ChunksWithReplicasOn(int id) const;
  // Build repair plans for `keys`, each under its shard's mutex: strip
  // dead replicas from the metadata immediately (readers stop trying
  // them), reclaim their space, and reserve targets on the least-loaded
  // alive benefactors (capacity-aware placement).  A chunk with no
  // surviving replica is counted in *lost, its list emptied, and no plan
  // emitted; stale keys (freed or already healthy) are skipped.
  // The clock-taking overload charges WAL appends (lost / dead-strip
  // publishes are logged); the clock-less one keeps legacy callers
  // compiling and is exactly equivalent when no WAL is attached.
  std::vector<RepairPlan> PlanRepairs(sim::VirtualClock& clock,
                                      std::span<const ChunkKey> keys,
                                      uint64_t* lost = nullptr);
  std::vector<RepairPlan> PlanRepairs(std::span<const ChunkKey> keys,
                                      uint64_t* lost = nullptr) {
    sim::VirtualClock wal_clock(0);
    return PlanRepairs(wal_clock, keys, lost);
  }
  // Copy the chunk from a surviving replica to every planned target,
  // charging `clock`; target copies fork clocks and join at the max.
  // Called WITHOUT any lock — this is the slow part.
  RepairOutcome ExecuteRepairPlan(sim::VirtualClock& clock,
                                  const RepairPlan& plan);
  // Publish the outcome under the key's shard mutex.  If the chunk was
  // rewritten or freed while the copy ran (its repair epoch moved, its
  // replica list changed, or a prepared write is still in flight — the
  // copy may miss bytes that land on a survivor only), the copied bytes
  // are stale: every target is undone and *requeue set so the caller can
  // retry.  *requeue is also set when fewer targets were published than
  // planned (no readable survivor, or a target died mid-copy) so the
  // chunk does not silently leave the repair queue while degraded.
  // Returns replicas recreated.
  uint64_t CommitRepair(sim::VirtualClock& clock,
                        const RepairOutcome& outcome,
                        bool* requeue = nullptr);
  uint64_t CommitRepair(const RepairOutcome& outcome,
                        bool* requeue = nullptr) {
    sim::VirtualClock wal_clock(0);
    return CommitRepair(wal_clock, outcome, requeue);
  }

  // Repair replication after failures: for every chunk that lost replicas
  // to dead benefactors, re-copy the data from a surviving replica onto
  // healthy benefactors until the configured replication factor is met
  // again.  Synchronous, unthrottled driver over the engine above.
  // Returns the number of replicas recreated; chunks with no surviving
  // replica are counted in *lost (and in lost_chunks()).
  StatusOr<uint64_t> RepairReplication(sim::VirtualClock& clock,
                                       uint64_t* lost = nullptr);

  // One scrub pass reconciling metadata against benefactor state, with
  // EVERY shard mutex held (ascending — a stop-the-world metadata pass, no
  // data transfers): deletes stored chunks no file references any more
  // (orphans of failed repairs or unlinks against dead benefactors), fixes
  // reservation-accounting drift, and reports under-replicated chunks for
  // re-queueing.  Holding all shards makes the drift comparison race-free:
  // reservations only move under some shard mutex.  In-flight repair
  // targets (planned, not yet committed) are exempt from both the orphan
  // sweep and the drift accounting — a concurrent repair's copy
  // legitimately stores data the replica lists do not name yet.
  struct ScrubResult {
    uint64_t orphans_deleted = 0;
    uint64_t reservation_fixes = 0;  // chunk-slots corrected
    std::vector<ChunkKey> under_replicated;
  };
  ScrubResult ScrubOnce(sim::VirtualClock& clock);

  // --- checksum verification scrub ---
  //
  // Incremental sweep verifying stored chunk contents against the
  // manager's authoritative checksums, at most `max_bytes` of chunk data
  // per call; a per-shard cursor (shards visited in index order, sorted
  // keys within each shard) makes successive calls cover the whole store.
  // Three phases so no chunk data moves while any shard mutex is held:
  // snapshot a candidate batch (one shard mutex at a time), VerifyChunk
  // each replica benefactor-locally (no locks — only the verdict crosses
  // the network), then quarantine confirmed mismatches (shard mutex,
  // re-validating that no write or repair raced the verification).
  struct VerifyResult {
    uint64_t chunks_checked = 0;   // distinct keys visited
    uint64_t bytes_checked = 0;    // chunk bytes read + checksummed
    uint64_t corrupt_found = 0;    // replicas quarantined
    uint64_t skipped = 0;          // mismatches dropped: raced a write/repair
    bool wrapped = false;          // cursor passed the end of the keyspace
    // Quarantined keys that still have a verified survivor — hand these to
    // the repair queue for re-replication.
    std::vector<ChunkKey> quarantined;
  };
  VerifyResult VerifyScrub(sim::VirtualClock& clock, uint64_t max_bytes);

  // A reader saw a checksum mismatch on (key, bid): quarantine that
  // replica (strip it from the list, drop its data and space) and, when a
  // survivor remains, queue a repair.  Never called with a shard mutex
  // held.  The clock-taking overload charges the quarantine's WAL append.
  void ReportCorrupt(sim::VirtualClock& clock, const ChunkKey& key, int bid);
  void ReportCorrupt(const ChunkKey& key, int bid, int64_t now_ns);

  // Corrupt replicas detected (read path + scrub, cumulative) and corrupt
  // chunks healed back to full replication by the repair engine.
  uint64_t corrupt_detected() const { return corrupt_detected_.value(); }
  uint64_t corrupt_repaired() const { return corrupt_repaired_.value(); }
  // Test hook: the authoritative checksum recorded for `key`, if any.
  bool LookupChecksum(const ChunkKey& key, uint32_t* crc) const;

  // Chunks that lost every replica to failures (cumulative).  An
  // erasure-coded chunk counts as lost when fewer than k fragments
  // survive — below that no reconstruction exists.
  uint64_t lost_chunks() const { return lost_chunks_.value(); }

  // --- erasure-coding accounting ---
  // Reads served by k-of-(k+m) reconstruction instead of the plain data
  // fragments (client-reported), fragments rebuilt by the repair engine,
  // and parity bytes written by clients (the redundancy overhead the
  // space/bandwidth reports attribute to EC).
  uint64_t ec_degraded_reads() const { return ec_degraded_reads_.value(); }
  uint64_t ec_fragments_repaired() const {
    return ec_fragments_repaired_.value();
  }
  uint64_t ec_parity_bytes() const { return ec_parity_bytes_.value(); }
  void NoteEcDegradedRead() { ec_degraded_reads_.Add(1); }
  void NoteEcParityBytes(uint64_t bytes) { ec_parity_bytes_.Add(bytes); }

  // --- background maintenance hooks ---
  // AggregateStore attaches its MaintenanceService here; the manager
  // forwards client-side signals to it.  Detached (nullptr), both signal
  // hooks are no-ops and the store behaves exactly as before.
  void AttachMaintenance(MaintenanceService* service);
  // A client saw a replica write fail (degraded write): hand the chunk to
  // the background repair queue.  Never called with a shard mutex held.
  void ReportDegraded(const ChunkKey& key, int64_t now_ns);
  // Cheap pacing hook invoked on client metadata round-trips: lets the
  // maintenance worker's schedule catch up to foreground virtual time.
  void MaintenanceTick(int64_t now_ns);

  // Decommission a benefactor for maintenance/upgrade (the paper's
  // "aggregation ... allows for ... easy system hardware upgrades or
  // re-configuration"): migrate every chunk it holds to the surviving
  // benefactors, rewrite the placement metadata, then retire it.  Holds
  // every shard mutex for the duration (rare, operator-driven).  Returns
  // the number of chunks migrated.
  StatusOr<uint64_t> Decommission(sim::VirtualClock& clock, int id);

  // --- namespace ---

  StatusOr<FileId> CreateFile(sim::VirtualClock& clock,
                              const std::string& name);
  StatusOr<FileId> LookupFile(sim::VirtualClock& clock,
                              const std::string& name);
  StatusOr<FileInfo> Stat(sim::VirtualClock& clock, FileId id);
  Status Unlink(sim::VirtualClock& clock, FileId id);

  // Extend the file to at least `size` bytes, allocating chunk placements
  // per the configured stripe policy over alive benefactors
  // (posix_fallocate semantics: reservation only, no data transfer).
  // `client_node` is the allocating client's node, used by the
  // locality-aware policy (-1: unknown).
  Status Fallocate(sim::VirtualClock& clock, FileId id, uint64_t size,
                   int client_node = -1);

  // --- data-plane lookups ---

  // The read-resolve fast path: file table shared locks plus one atomic
  // replica-snapshot load per chunk — no shard mutex.
  StatusOr<ReadLocation> GetReadLocation(sim::VirtualClock& clock, FileId id,
                                         uint32_t chunk_index);
  // Batched variant: locations of `count` consecutive chunks starting at
  // `first`, clamped at EOF.  Charges ONE metadata service op for the
  // whole batch — the control-plane saving behind the client's coalesced
  // miss and read-ahead paths.
  StatusOr<std::vector<ReadLocation>> GetReadLocations(
      sim::VirtualClock& clock, FileId id, uint32_t first, uint32_t count);
  // Resolve the target for writing a chunk, performing the copy-on-write
  // decision: a chunk shared with a checkpoint gets a fresh version.
  // Every successful prepare MUST be paired with one CompleteWrite of the
  // returned key once the replica transfers finish (success or failure) —
  // the open prepare fences the repair engine off the chunk.
  StatusOr<WriteLocation> PrepareWrite(sim::VirtualClock& clock, FileId id,
                                       uint32_t chunk_index);
  // Batched variant: resolve a whole flush window (any set of chunk
  // indices of one file) in ONE metadata service op, including the
  // copy-on-write version bumps — the control-plane saving behind the
  // client's batched write-back path.  Result order matches `indices`.
  // On error no write is left open; on success every returned location
  // must be completed (CompleteWrite / CompleteWrites).
  StatusOr<std::vector<WriteLocation>> PrepareWriteBatch(
      sim::VirtualClock& clock, FileId id, std::span<const uint32_t> indices);
  // The write prepared for `key` has finished moving data (or given up):
  // drops the in-flight-writer fence and moves the repair epoch, so a
  // repair copy taken while the write was in flight can never commit.
  // `crc` (when non-null) becomes the chunk's authoritative checksum —
  // callers pass it only when at least one replica holds the data.  The
  // clock-taking overload logs the checksum transition (set OR erase) to
  // the WAL before publishing it; the clock-less one keeps legacy callers
  // compiling and is identical when no WAL is attached.  For an
  // erasure-coded chunk `frag_crcs` (k+m entries, positional) carries the
  // per-fragment checksums that become authoritative alongside `crc`.
  void CompleteWrite(sim::VirtualClock& clock, const ChunkKey& key,
                     const uint32_t* crc = nullptr,
                     std::span<const uint32_t> frag_crcs = {});
  void CompleteWrite(const ChunkKey& key, const uint32_t* crc = nullptr) {
    sim::VirtualClock wal_clock(0);
    CompleteWrite(wal_clock, key, crc);
  }
  // Batch variant: the involved shard set is locked once, in ascending
  // index order, and the whole prepared window completes in that one lock
  // pass.  `crcs` (parallel to locs; may be empty) carries the flush-time
  // checksums, recorded per chunk only where `ok` (parallel; may be empty
  // = all ok) says a replica holds the data.  One batched WAL record
  // covers the whole window, appended before any in-memory mutation.
  void CompleteWrites(sim::VirtualClock& clock,
                      std::span<const WriteLocation> locs,
                      std::span<const uint32_t> crcs = {},
                      std::span<const char> ok = {});
  void CompleteWrites(std::span<const WriteLocation> locs,
                      std::span<const uint32_t> crcs = {},
                      std::span<const char> ok = {}) {
    sim::VirtualClock wal_clock(0);
    CompleteWrites(wal_clock, locs, crcs, ok);
  }

  // --- checkpoint support ---

  // Append all of `src`'s chunk refs to `dst` (incrementing refcounts) —
  // the zero-copy linking of an NVM variable into a checkpoint file.
  // Returns the chunk-aligned logical offset in `dst` where `src`'s data
  // now begins.
  StatusOr<uint64_t> LinkFileChunks(sim::VirtualClock& clock, FileId dst,
                                    FileId src);

  // Refcount of a chunk (test/diagnostic hook).
  uint32_t ChunkRefcount(const ChunkKey& key) const;

  uint64_t num_files() const;

  // --- crash consistency (store/recovery.cpp) ---

  // Serialise the whole metadata plane into the WAL's checkpoint store.
  // Takes ns_mu_ shared, every file mutex shared (FileId order) and every
  // shard mutex (ascending) for the serialisation instant: every WAL
  // append happens under one of those locks, so each record is either
  // fully reflected in the blob (seq <= covered) or entirely after it —
  // replay needs no idempotency.  No-op without a WAL.
  void Checkpoint(sim::VirtualClock& clock);

  // Cold-start recovery on a FRESH manager (no files, no chunks, no
  // client traffic yet): load the newest valid checkpoint, replay the WAL
  // records after it, then reconcile the result against the live
  // benefactor inventories — per-replica write-time {has_crc, crc}
  // metadata decides conflicts, so a chunk either comes back with bytes
  // that verify or is surfaced as lost (empty location list), never with
  // wrong bytes.  Charges the log reads and the per-benefactor inventory
  // round-trips to `clock`.  No-op without a WAL.
  RecoveryReport Recover(sim::VirtualClock& clock);

 private:
  // One chunk's single metadata home, shared (via shared_ptr) by every
  // file slot that references it — checkpoint links reference the same
  // handle, so publishing a replica list is one store here, not a scan
  // over every referencing file.  `key` is immutable: a COW creates a
  // fresh handle for the bumped version and swaps the file slot.
  //
  // `replicas` is the atomically-swapped immutable snapshot read by the
  // lock-free resolve path: STORES happen only under the owning shard's
  // mutex (PublishReplicasLocked), LOADS take no lock.  Every other field
  // is guarded by the owning shard's mutex.  The in-flight-writer fences
  // and reserved repair targets deliberately live in per-shard side maps,
  // NOT here: both must survive the chunk's last unref (a CompleteWrite
  // races an unlink; a planned repair target must stay scrub-exempt until
  // its commit), while epoch/checksum/corruption state dies with the
  // chunk.
  struct ChunkHandle {
    explicit ChunkHandle(const ChunkKey& k) : key(k) {
      // Never-null invariant: resolvers load without any lock, so even a
      // handle between construction and its first publish must carry a
      // (then empty) snapshot.
      replicas.store(std::make_shared<const std::vector<int>>(),
                     std::memory_order_relaxed);
    }
    const ChunkKey key;
    std::atomic<std::shared_ptr<const std::vector<int>>> replicas;
    uint32_t refcount = 0;       // referencing file slots
    uint64_t repair_epoch = 0;   // bumped on write prepare AND completion
    bool has_crc = false;        // authoritative checksum recorded?
    uint32_t crc = 0;
    // Erasure-coded chunk: the replica snapshot is the positional fragment
    // map (length k+m, -1 = missing) and `frag_crcs` (when has_crc) holds
    // the per-fragment authoritative checksums, parallel to it.
    bool ec = false;
    std::vector<uint32_t> frag_crcs;
    bool corrupt_pending = false;  // quarantined replica awaiting heal
    // Correlated-loss memory: benefactors whose replica of THIS chunk was
    // quarantined as corrupt or diverged during recovery.  The placement
    // engine (placement_avoid_suspected) refuses them as repair targets —
    // re-replicating onto the device that just lost the bytes would
    // re-correlate the failure.  Cleared when a completed write refreshes
    // the chunk's contents; volatile (not WAL-logged): after a restart
    // the conservative empty set only widens the target pool.
    std::vector<int> tainted;
  };

  // One slice of the chunk namespace: every key with shard_of(key) ==
  // this shard's index.  All members are guarded by `mu`.
  struct MetaShard {
    mutable std::mutex mu;
    std::unordered_map<ChunkKey, std::shared_ptr<ChunkHandle>, ChunkKeyHash>
        chunks;
    // Chunks with a prepared-but-uncompleted write.  While an entry exists
    // CommitRepair refuses to publish (requeues): the in-flight write
    // could still land bytes on a survivor that the copied targets would
    // miss.  Side map (not a handle field): the fence must survive an
    // unlink so the paired CompleteWrite still finds it.
    std::unordered_map<ChunkKey, uint32_t, ChunkKeyHash> inflight_writers;
    // Reserved targets of repair plans between PlanRepairs and
    // CommitRepair (duplicates possible when racing drivers plan the same
    // key).  The scrubber must not reap these as orphans: their chunk data
    // exists on the benefactor before the replica list names it.  Each
    // entry carries the bytes it reserved (a full chunk for a replica, one
    // fragment for an EC target) — the entry can outlive the chunk handle
    // (unlink racing a commit), so the undo cannot re-derive the amount.
    struct RepairTarget {
      int bid = -1;
      uint64_t bytes = 0;
    };
    std::unordered_map<ChunkKey, std::vector<RepairTarget>, ChunkKeyHash>
        repair_targets;
    // Resume point of the incremental verification sweep within this
    // shard (nullopt: restart from the shard's lowest key).
    std::optional<ChunkKey> verify_cursor;
  };

  struct FileMeta {
    // Guards size/chunks/stripe_cursor.  The resolve fast path holds it
    // shared; slot swaps (COW prepare) and extension hold it exclusive.
    // LinkFileChunks locks two files in FileId order.
    mutable std::shared_mutex mu;
    std::string name;  // immutable after create
    uint64_t size = 0;
    std::vector<std::shared_ptr<ChunkHandle>> chunks;
    // Next benefactor (registry index) for striping continuation.
    size_t stripe_cursor = 0;
    // Redundancy mode, fixed at the file's first Fallocate from the
    // store-wide config (journaled as a kRedundancy record when erasure):
    // a file never mixes replicated and erasure-coded chunks.
    bool ec = false;
    bool redundancy_decided = false;
  };

  size_t shard_of(const ChunkKey& key) const {
    return static_cast<size_t>(ChunkKeyHash{}(key)) % meta_shards_;
  }
  // Service lane of file- and name-addressed metadata ops.
  size_t FileLane(FileId id) const {
    return static_cast<size_t>(Mix64(id)) % meta_shards_;
  }
  size_t NameLane(const std::string& name) const {
    return static_cast<size_t>(Mix64(std::hash<std::string>{}(name))) %
           meta_shards_;
  }
  void ChargeOp(sim::VirtualClock& clock, size_t lane) {
    services_[lane]->Acquire(clock, config_.manager_op_ns);
  }
  // File table lookup; takes (and releases) ns_mu_ shared.
  std::shared_ptr<FileMeta> FindFile(FileId id) const;
  // Registry snapshot / bounds-checked lookup (reg_mu_ shared).
  std::vector<Benefactor*> SnapshotBenefactors() const;
  Benefactor* BenefactorAt(int id) const;
  // Publish a fresh immutable replica snapshot (owning shard mu held).
  static void PublishReplicasLocked(ChunkHandle& h, std::vector<int> replicas);
  // Drop one reference; frees the chunk on its benefactors at zero
  // (owning shard mu held).
  void UnrefChunkLocked(MetaShard& shard, ChunkHandle& h);
  // COW-resolve one slot of `meta` (file mu held exclusive; takes the
  // old/new shard mutexes in ascending order itself).  Rolls back partial
  // space reservations if a replica runs out of space mid-COW.  A COW
  // swap logs a kCowSwap record (under the file + shard locks) before the
  // slot moves; the in-place branch logs nothing — the chunk's identity
  // and placement are unchanged.  `suspected` (may be null) is the
  // caller's SuspectedBenefactors() snapshot, taken before any lock: with
  // placement_avoid_suspected on, a COW drops dead or suspected inherited
  // holders (keeping at least one) instead of failing the whole prepare
  // on a dead holder's reservation.
  StatusOr<WriteLocation> PrepareWriteSlot(
      sim::VirtualClock& clock, FileId id, FileMeta& meta,
      uint32_t chunk_index, const std::vector<char>* suspected = nullptr);
  // Per-benefactor suspicion flags from the heartbeat detector, via the
  // maintenance hook (hook_mu_ shared; empty when detached).  Callers
  // snapshot ONCE per operation before taking any file or shard lock and
  // only when placement_avoid_suspected is on — the knob-off store never
  // touches hook_mu_ here.
  std::vector<char> SuspectedBenefactors() const;
  // Snapshot per-benefactor placement state for the engine.  `suspected`
  // may be null (no suspicion signal); wear fractions are read only when
  // placement_wear_weight > 0.  Called with the chunk's shard mutex held,
  // like the capacity reads it replaces.
  std::vector<PlacementCandidate> BuildPlacementCandidates(
      const std::vector<Benefactor*>& bens,
      const std::vector<char>* suspected) const;
  // Bytes one member of `key`'s location list reserves on its benefactor:
  // a full chunk for a replica, one fragment for an erasure-coded chunk.
  uint64_t ChunkResBytes(bool ec) const {
    return ec ? config_.ec_frag_bytes() : config_.chunk_bytes;
  }
  // Drop a reserved (and possibly partially written) repair target of an
  // abandoned plan (shard mu held).  `bytes` is the amount the plan
  // reserved on `bid` (chunk or fragment).  If a racing repair already
  // committed `bid` into the chunk's replica list, only this plan's
  // duplicate reservation is released — the data now belongs to the
  // published list.
  void UndoRepairTargetLocked(MetaShard& shard, const ChunkKey& key, int bid,
                              uint64_t bytes);
  // Shard-mutex-held core of CompleteWrite.
  void CompleteWriteLocked(MetaShard& shard, const ChunkKey& key,
                           const uint32_t* crc = nullptr,
                           std::span<const uint32_t> frag_crcs = {});
  // True when (key, bid) is a reserved target of a repair plan whose
  // commit has not run yet (shard mu held).
  bool IsRepairTargetLocked(const MetaShard& shard, const ChunkKey& key,
                            int bid) const;
  // Strip the corrupt replica (key, bid): drop its data and space, publish
  // the shortened list, bump the repair epoch.  Returns false when bid is
  // no longer in the chunk's list (already quarantined or replaced) —
  // nothing new to learn.  Shard mu held.  The shortened list is logged
  // BEFORE the replica's data is dropped: the reverse order would leave a
  // crashed recovery believing the deleted replica still held the bytes.
  bool QuarantineReplicaLocked(sim::VirtualClock& clock, MetaShard& shard,
                               const ChunkKey& key, int bid);
  // Append `rec` to the WAL (charging `clock`) — no-op without a WAL.
  // Call sites hold the mutex that orders the mutation being logged
  // (ns_mu_, a file mu, or the owning shard mu); the WAL's own mutex is
  // innermost.
  void LogAppend(sim::VirtualClock& clock, WalRecord rec) {
    if (wal_ != nullptr) wal_->Append(clock, std::move(rec));
  }

  // --- recovery internals (store/recovery.cpp) ---

  // Serialise every file table and chunk handle into a checkpoint blob.
  // Caller holds ns_mu_ shared + every file mu shared + every shard mu.
  std::string EncodeCheckpointLocked() const;
  // Rebuild namespace/file/chunk state from a checkpoint blob (fresh
  // manager, no locks needed).  Returns false on a malformed blob (which
  // the slot CRC makes a code bug, not torn media).
  bool DecodeCheckpoint(const std::string& blob);
  // Apply one replayed WAL record (fresh manager, no locks needed).
  void ApplyWalRecord(const WalRecord& rec);
  // Post-replay reconciliation against the live benefactor inventories.
  void ReconcileWithBenefactors(sim::VirtualClock& clock,
                                RecoveryReport* report);

  net::Cluster& cluster_;
  const int manager_node_;
  const StoreConfig config_;
  const size_t meta_shards_;
  // Durable half of the metadata plane; owned by the AggregateStore (it
  // must survive KillManager).  Null = crash consistency off.
  WalStore* const wal_;
  // Per-shard metadata service lanes: the modelled manager CPU stops being
  // one serial timeline once meta_shards > 1.  Lane assignment must be
  // deterministic (file hash / key shard) so virtual-time results are
  // reproducible; with meta_shards == 1 everything lands on lane 0,
  // identical to the historic single `service_` resource.
  std::vector<std::unique_ptr<sim::Resource>> services_;

  // Benefactor registry: append-only after wiring.  Shared for the hot
  // reads (liveness, capacity), exclusive only for registration.
  mutable std::shared_mutex reg_mu_;
  std::vector<Benefactor*> benefactors_;

  // Namespace: never held across any other lock (see header comment).
  mutable std::shared_mutex ns_mu_;
  std::unordered_map<std::string, FileId> names_;
  std::unordered_map<FileId, std::shared_ptr<FileMeta>> files_;
  FileId next_file_id_ = 1;
  size_t stripe_cursor_ = 0;

  // The sharded chunk namespace.
  std::vector<MetaShard> shards_;

  // Serialises verification sweeps and guards the inter-shard cursor
  // position (which shard the next VerifyScrub call resumes at).
  mutable std::mutex verify_mu_;
  size_t verify_shard_ = 0;

  Counter lost_chunks_;
  Counter corrupt_detected_;
  Counter corrupt_repaired_;
  Counter ec_degraded_reads_;
  Counter ec_fragments_repaired_;
  Counter ec_parity_bytes_;
  // Guards the maintenance hook pointer: signal forwarding holds it
  // shared, attach/detach exclusive — so ~MaintenanceService's detach
  // waits out any client thread already inside a hook call.
  mutable std::shared_mutex hook_mu_;
  MaintenanceService* maintenance_ = nullptr;
};

}  // namespace nvm::store

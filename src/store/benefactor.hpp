// Benefactor process: contributes a node-local SSD partition to the
// aggregate store and serves chunk-granularity data-plane requests.
//
// Chunks are stored as individual buffers keyed by ChunkKey (the paper
// stores them as individual files on the benefactor's SSD).  Every data
// access charges the node's modelled SSD; space accounting enforces the
// contributed capacity; Kill()/Revive() support failure-injection tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "net/cluster.hpp"
#include "store/types.hpp"

namespace nvm::store {

class QosScheduler;

class Benefactor {
 public:
  Benefactor(int id, net::Node& node, uint64_t contributed_bytes,
             const StoreConfig& config);

  int id() const { return id_; }
  int node_id() const { return node_.id(); }
  uint64_t contributed_bytes() const { return contributed_bytes_; }
  uint64_t bytes_used() const;
  uint64_t bytes_free() const;
  size_t num_chunks() const;

  // --- control plane (invoked via the manager) ---

  // Reserve space for `count` chunks (posix_fallocate path).  No device
  // traffic: reservation only.
  Status ReserveChunks(uint64_t count);
  void ReleaseChunkReservation(uint64_t count);
  // Byte-granular reservation twin — erasure-coded fragments reserve
  // chunk_bytes/ec_k per stripe member, so the accounting unit is bytes.
  // ReserveChunks(n) is exactly ReserveBytes(n * chunk_bytes); replicated
  // arithmetic is unchanged.
  Status ReserveBytes(uint64_t bytes);
  void ReleaseBytes(uint64_t bytes);

  // Attach the store-wide QoS scheduler.  Every data-plane request below
  // carries a TenantId; before booking device or wire time the benefactor
  // asks the scheduler for an admission floor on its SSD lane and its
  // node's NIC lane (a no-op when `qos` is off or no scheduler is
  // attached).
  void AttachQos(QosScheduler* qos) { qos_ = qos; }

  // --- data plane (invoked by StoreClient after a location lookup) ---

  // Read the full chunk into `out` (out.size() == chunk_bytes).  A chunk
  // that was reserved but never written reads as zeros without touching
  // the device (the backing file is sparse); `*sparse` reports this so the
  // client can skip the wire transfer (an ENOENT-for-the-chunk-file, as in
  // the paper's store).  With config.verify_reads the stored bytes are
  // re-checksummed before serving (CPU charged at checksum_bw_gbps); a
  // mismatch fails the read with CORRUPT and serves nothing.
  Status ReadChunk(sim::VirtualClock& clock, const ChunkKey& key,
                   std::span<uint8_t> out, bool* sparse = nullptr,
                   TenantId tenant = kTenantForeground);

  // Multi-chunk streamed read — the run RPC.  One call is ONE request at
  // this benefactor (one header, one device queueing slot): each stored
  // chunk is charged to the device on `clock` (reads of a run serialise on
  // the SSD channel), but only the first pays the per-request read
  // latency.  Chunks are handed to `sink` in request order, stamped with
  // their device completion time; sparse chunks skip the device and carry
  // no data.  If the benefactor dies mid-run the whole run fails with
  // UNAVAILABLE — the caller must discard any chunks already streamed (no
  // partial runs are surfaced).
  Status ReadChunkRun(sim::VirtualClock& clock, std::span<const ChunkKey> keys,
                      const ChunkRunSink& sink,
                      TenantId tenant = kTenantForeground);

  // Write the pages marked in `dirty_pages` from the chunk image `data`
  // into the stored chunk, materialising it if absent.  Only dirty pages
  // are charged to the device — this is the write-optimisation path of
  // Table VII.  `crc` is the caller-computed CRC32C of the full image:
  // stored verbatim when the dirty set covers the whole chunk, otherwise
  // (partial write, or no crc supplied) the benefactor recomputes over the
  // merged image, charging the checksum CPU cost.  Ignored when both
  // integrity knobs are off.  `stored_crc` (when non-null) returns the CRC
  // actually stored with the chunk — the merged-image value on a partial
  // write — which is what the caller must hand the manager as the
  // authoritative checksum.
  Status WritePages(sim::VirtualClock& clock, const ChunkKey& key,
                    const Bitmap& dirty_pages, std::span<const uint8_t> data,
                    const uint32_t* crc = nullptr,
                    uint32_t* stored_crc = nullptr,
                    TenantId tenant = kTenantForeground);

  // Scrub support: re-read the stored chunk off the device, recompute its
  // CRC32C (both charged to `clock`) and compare against the manager's
  // authoritative `expected_crc`.  A never-written chunk reports
  // `*sparse` and verifies trivially; a mismatch returns CORRUPT.  The
  // chunk bytes never cross the network — verification is benefactor-
  // local against the shipped expected value.
  Status VerifyChunk(sim::VirtualClock& clock, const ChunkKey& key,
                     uint32_t expected_crc, bool* sparse = nullptr,
                     TenantId tenant = kTenantMaintenance);

  // Multi-chunk streamed write — the write-side run RPC.  One call is ONE
  // request at this benefactor (one header, one device queueing slot).
  // The client streams each item's messages via `send` (clone instructions
  // as kControl, dirty pages as kPayload; the first payload also carries
  // the run header): the NIC pipelines them in order while the device
  // serialises on `clock`, and only the first programmed chunk pays the
  // per-request write latency.  If the benefactor dies mid-run the whole
  // run fails with UNAVAILABLE and the caller must treat every item as
  // unwritten on this replica.
  Status WriteChunkRun(sim::VirtualClock& clock,
                       std::span<const ChunkWriteItem> items,
                       const ChunkRunSend& send,
                       TenantId tenant = kTenantForeground);

  // --- erasure-coded fragment plane ---
  // A fragment is stored under the chunk's plain ChunkKey (failure-domain
  // spreading guarantees at most one fragment of a stripe per benefactor)
  // as a blob of chunk_bytes/ec_k bytes.  Fragments are always written
  // whole (the client's EC write path is full-stripe), so there is no
  // dirty-page or merge machinery here.

  // Store the full fragment image.  `crc` is the caller-computed CRC32C
  // of the fragment (stored verbatim; ignored when integrity is off).
  Status WriteFragment(sim::VirtualClock& clock, const ChunkKey& key,
                       std::span<const uint8_t> data,
                       const uint32_t* crc = nullptr,
                       TenantId tenant = kTenantForeground);

  // Read the full fragment into `out` (out.size() == ec_frag_bytes).  A
  // reserved-but-never-written fragment reads as zeros without touching
  // the device; with config.verify_reads the stored bytes are
  // re-checksummed before serving and a mismatch fails with CORRUPT —
  // rot surfaces as an error, never as wrong bytes in a reconstruction.
  Status ReadFragment(sim::VirtualClock& clock, const ChunkKey& key,
                      std::span<uint8_t> out, bool* sparse = nullptr,
                      TenantId tenant = kTenantForeground);

  // Copy-on-write support: duplicate `from` under key `to` locally
  // (device read + write of one chunk, no network).
  Status CloneChunk(sim::VirtualClock& clock, const ChunkKey& from,
                    const ChunkKey& to,
                    TenantId tenant = kTenantForeground);

  // Drop the chunk (refcount reached zero at the manager).
  Status DeleteChunk(const ChunkKey& key);

  // --- liveness / failure injection ---
  // Atomic: polled by the maintenance worker's heartbeat sweeps while
  // client threads report failures.
  bool alive() const { return alive_.load(std::memory_order_acquire); }
  void Kill() { alive_.store(false, std::memory_order_release); }
  void Revive() { alive_.store(true, std::memory_order_release); }
  // Die after `n` more chunks have been read off the device — lets tests
  // crash a benefactor in the middle of a read run.  0 disarms.
  void KillAfterReads(uint64_t n) {
    kill_after_reads_.store(n, std::memory_order_relaxed);
  }
  // Die after `n` more chunks have been programmed — lets tests crash a
  // benefactor in the middle of a write run or flush.  0 disarms.
  void KillAfterWrites(uint64_t n) {
    kill_after_writes_.store(n, std::memory_order_relaxed);
  }
  // Silent-corruption injection: XOR `xor_mask` into byte `byte_offset` of
  // the stored chunk without updating its checksum — models an SSD bit
  // flip no layer observed.  No device traffic, no liveness change.
  Status CorruptChunk(const ChunkKey& key, uint64_t byte_offset,
                      uint8_t xor_mask);
  // Seeded background bit-rot model (the corruption twin of
  // KillAfterWrites): every `n` chunk programs on this benefactor flip one
  // random bit of one random stored chunk, deterministically from `seed`.
  // Recurring until disarmed with n = 0.
  void CorruptAfterWrites(uint64_t n, uint64_t seed);
  // Bits flipped by the bit-rot model so far.
  uint64_t bitrot_flips() const { return bitrot_flips_.value(); }

  sim::SsdDevice& ssd() { return node_.ssd(); }

  // Bytes actually written to / read from this benefactor's device by
  // store traffic (excludes unrelated users of the same SSD).
  uint64_t data_bytes_in() const { return data_bytes_in_.value(); }
  uint64_t data_bytes_out() const { return data_bytes_out_.value(); }
  // Read-plane requests served: every ReadChunk and every ReadChunkRun
  // counts once — the "request header + queueing slot" unit the run RPC
  // amortises across a batch.
  uint64_t read_requests() const { return read_requests_.value(); }
  // Write-plane requests served: every WritePages and every WriteChunkRun
  // counts once — the unit the write run RPC amortises across a window.
  uint64_t write_requests() const { return write_requests_.value(); }
  // Scrub verification requests served (kept out of read_requests so the
  // request-amortisation accounting of the run RPCs stays undisturbed).
  uint64_t verify_requests() const { return verify_requests_.value(); }

  // Introspection for invariant tests: the exact chunk set stored here.
  bool HasChunk(const ChunkKey& key) const;
  std::vector<ChunkKey> StoredChunkKeys() const;
  // Invariant-test hook: CRC32C recomputed over the stored bytes of `key`
  // right now (no device or CPU charge).  False when the chunk is absent.
  bool StoredContentCrc(const ChunkKey& key, uint32_t* crc) const;
  // Recovery hook: the checksum RECORDED with the chunk at write time
  // (never recomputed — a replica whose write-time crc diverges from the
  // manager's authoritative one belongs to a different write generation,
  // which is exactly what cold-start reconciliation must detect; content
  // rot against a matching recorded crc stays the scrubber's business).
  // Returns false when the chunk is absent (reserved-but-sparse).
  bool StoredChunkCrc(const ChunkKey& key, bool* has_crc, uint32_t* crc) const;

 // QoS admission for one chunk-sized transfer: estimate the device
  // service time for `ssd_bytes`, ask the scheduler for a start floor on
  // this benefactor's SSD lane and this node's NIC lane (`wire_bytes` on
  // the wire), and advance `clock` to it.  No-op when qos is off.
  //
  // Callers that ship chunk data to this benefactor MUST admit before
  // booking the wire transfer: admission is the request's entry gate, and
  // bytes sent ahead of it would occupy the NIC in front of tenants the
  // scheduler is protecting.  WritePages/WriteFragment therefore do NOT
  // re-admit internally; the read RPCs admit themselves (their payload
  // crosses the wire after the device read, behind the admission point).
  void AdmitTransfer(sim::VirtualClock& clock, TenantId tenant,
                     uint64_t ssd_bytes, bool is_write, uint64_t wire_bytes);

 private:
  struct StoredChunk {
    std::vector<uint8_t> data;
    uint64_t ssd_offset = 0;  // position in the device address space
    // Checksum recorded at write time (never recomputed on rot — that is
    // the point: verification compares stored bytes against it).
    bool has_crc = false;
    uint32_t crc = 0;
  };

  // Assign a device offset for a newly materialised chunk.
  uint64_t AllocateOffset();
  Status EnsureAlive() const;
  // Tick the KillAfterReads countdown after a data chunk left the device.
  void MaybeKillAfterRead();
  // Tick the KillAfterWrites countdown after a chunk's pages were
  // programmed.
  void MaybeKillAfterWrite();
  // Tick the bit-rot countdown after a chunk's pages were programmed,
  // flipping a random stored bit when it fires.
  void MaybeCorruptAfterWrite();
  // Record the chunk's checksum after `pages_written` pages were merged
  // into it (mutex held).  Returns true when the caller must charge the
  // checksum CPU cost (the merged image was recomputed here rather than
  // taking the client-supplied full-image crc).
  bool StoreCrcLocked(StoredChunk& chunk, size_t pages_written,
                      const uint32_t* crc);
  const int id_;
  net::Node& node_;
  const uint64_t contributed_bytes_;
  const StoreConfig config_;
  QosScheduler* qos_ = nullptr;  // store-owned; attached after construction

  mutable std::mutex mutex_;
  std::unordered_map<ChunkKey, StoredChunk, ChunkKeyHash> chunks_;
  // Space accounting is a lone atomic (CAS-bounded by the contribution):
  // reservations are taken on the manager's metadata hot paths (write
  // prepare COW, repair planning, fallocate) and read by every capacity-
  // aware placement decision and status report — none of which should
  // contend with the data-plane mutex_ below.  Byte-granular because
  // erasure fragments reserve chunk_bytes/ec_k each; replicated chunks
  // reserve whole chunk_bytes multiples exactly as before.
  std::atomic<uint64_t> reserved_bytes_{0};
  uint64_t next_offset_ = 0;
  std::vector<uint64_t> free_offsets_;
  std::atomic<bool> alive_{true};
  std::atomic<uint64_t> kill_after_reads_{0};
  std::atomic<uint64_t> kill_after_writes_{0};
  // Bit-rot model state (mutex_-guarded: firing picks a stored chunk).
  uint64_t corrupt_period_ = 0;     // 0 = disarmed
  uint64_t corrupt_countdown_ = 0;  // programs until the next flip
  uint64_t corrupt_rng_ = 0;        // deterministic splitmix64 walk
  Counter data_bytes_in_;
  Counter data_bytes_out_;
  Counter read_requests_;
  Counter write_requests_;
  Counter verify_requests_;  // scrub VerifyChunk calls served
  Counter bitrot_flips_;
};

}  // namespace nvm::store

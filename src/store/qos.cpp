#include "store/qos.hpp"

#include <algorithm>
#include <bit>

#include "sim/device.hpp"

namespace nvm::store {

namespace {

// Effective-rate floor: even a zero-share tenant losing every priority
// tie drains its queue at 2% of the lane — starvation-freedom.
constexpr double kMinEffectiveRate = 0.02;

uint64_t LaneKey(QosScheduler::Lane kind, int id) {
  return (static_cast<uint64_t>(kind) << 32) |
         static_cast<uint32_t>(id);
}

}  // namespace

void LatencyHistogram::Record(int64_t ns) {
  const uint64_t v = ns > 0 ? static_cast<uint64_t>(ns) : 0;
  counts_[static_cast<size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

int LatencyHistogram::BucketIndex(uint64_t v) {
  if (v < (1u << kSubBits)) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int sub =
      static_cast<int>((v >> (msb - kSubBits)) & ((1u << kSubBits) - 1));
  return ((msb - kSubBits + 1) << kSubBits) + sub;
}

int64_t LatencyHistogram::BucketUpperEdge(int index) {
  if (index < (1 << kSubBits)) return index;
  const int octave = index >> kSubBits;
  const int sub = index & ((1 << kSubBits) - 1);
  const int msb = octave + kSubBits - 1;
  const uint64_t lower = static_cast<uint64_t>((1 << kSubBits) + sub)
                         << (msb - kSubBits);
  return static_cast<int64_t>(lower + ((1ull << (msb - kSubBits)) - 1));
}

int64_t LatencyHistogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(n) + 0.5));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= target) return BucketUpperEdge(i);
  }
  return BucketUpperEdge(kBuckets - 1);
}

void LatencyHistogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

QosScheduler::QosScheduler(const StoreConfig& config, double nic_bw_mbps)
    : enabled_(config.qos),
      min_rate_(kMinEffectiveRate),
      burst_ns_(config.qos_burst_ms * 1'000'000),
      window_ns_(config.qos_window_ms * 1'000'000),
      nic_bw_mbps_(nic_bw_mbps),
      policies_(config.qos_tenants) {
  // Maintenance inherits the duty-cycle knob unless explicitly configured:
  // share = repair_bw_fraction at priority 0 reproduces "repair may keep
  // the devices f-busy, foreground goes first" as a tenant policy.
  const bool has_maintenance =
      std::any_of(policies_.begin(), policies_.end(),
                  [](const QosTenant& t) { return t.id == kTenantMaintenance; });
  if (!has_maintenance) {
    QosTenant m;
    m.id = kTenantMaintenance;
    m.weight = 1.0;
    m.bw_share = std::clamp(config.repair_bw_fraction, 0.0, 1.0);
    m.priority = 0;
    policies_.push_back(m);
  }
}

QosScheduler::Policy QosScheduler::PolicyFor(TenantId tenant) const {
  for (const QosTenant& t : policies_) {
    if (t.id == tenant) {
      return Policy{t.weight > 0 ? t.weight : 1.0,
                    std::clamp(t.bw_share, 0.0, 1.0), t.priority};
    }
  }
  return Policy{};
}

QosScheduler::TenantAccount& QosScheduler::Account(TenantId tenant) {
  std::lock_guard<std::mutex> lock(accounts_mu_);
  auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    auto acct = std::make_unique<TenantAccount>();
    acct->policy = PolicyFor(tenant);
    it = accounts_.emplace(tenant, std::move(acct)).first;
  }
  return *it->second;
}

QosScheduler::LaneState& QosScheduler::LaneFor(Lane kind, int id) {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  auto& slot = lanes_[LaneKey(kind, id)];
  if (!slot) slot = std::make_unique<LaneState>();
  return *slot;
}

int64_t QosScheduler::Admit(Lane kind, int id, TenantId tenant,
                            int64_t service_ns, int64_t now) {
  if (!enabled_ || service_ns <= 0) return now;
  const Policy mine = PolicyFor(tenant);
  LaneState& lane = LaneFor(kind, id);
  TenantAccount& acct = Account(tenant);
  acct.admitted.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(lane.mu);
  LaneTenant& me = lane.tenants[tenant];

  // Refill the guaranteed share forward to `now` (requests can arrive out
  // of virtual-time order across client threads; never refill backwards).
  if (now > me.refill_at_ns) {
    me.tokens_ns = std::min<double>(
        static_cast<double>(burst_ns_),
        me.tokens_ns +
            mine.share * static_cast<double>(now - me.refill_at_ns));
    me.refill_at_ns = now;
  }

  // Who else is competing for this lane right now?
  const int64_t horizon = now - window_ns_;
  double active_share = mine.share;
  double top_tier_weight = 0;
  int top_priority = mine.priority;
  bool contended = false;
  for (const auto& [other_id, other] : lane.tenants) {
    if (other_id == tenant) continue;
    if (other.active_until_ns <= horizon) continue;
    contended = true;
    const Policy p = PolicyFor(other_id);
    active_share += p.share;
    top_priority = std::max(top_priority, p.priority);
  }
  // Work conservation, stronger form: if everything already admitted on
  // this lane completes by `now`, delaying this request protects nobody —
  // the device would simply sit idle through the wait.  Pacing only makes
  // sense against a backlog.
  const bool backlogged = lane.frontier_ns > now;
  int64_t start = now;
  if (!contended || !backlogged) {
    // A lone tenant (or an idle lane) is admitted immediately and spends
    // nothing — identical to qos=off.
  } else {
    double active_weight = 0;
    for (const auto& [other_id, other] : lane.tenants) {
      if (other.active_until_ns <= horizon && other_id != tenant) continue;
      const Policy p =
          other_id == tenant ? mine : PolicyFor(other_id);
      active_weight += p.weight;
      if (p.priority == top_priority) top_tier_weight += p.weight;
    }
    // Work conservation: capacity the guaranteed shares leave idle is
    // redistributed across every active tenant by weight — a low-priority
    // tenant on a half-idle lane runs faster than its floor.  Priority
    // buys the burst privilege (below), not a monopoly on idle capacity.
    const double idle = std::max(0.0, 1.0 - active_share);
    double rate = mine.share;
    if (active_weight > 0) {
      rate += idle * mine.weight / active_weight;
    }
    rate = std::max(rate, min_rate_);
    if (mine.priority < top_priority) {
      // Bursting is a privilege of the top active tier: a lower tier
      // spending a saved-up allowance would land it as one contiguous
      // slab right in front of the latency-sensitive tenant's next
      // request — the exact tail this scheduler exists to shave.  One
      // service quantum keeps the first request prompt; the rest pace
      // out at the guaranteed rate.
      me.tokens_ns = std::min(me.tokens_ns, static_cast<double>(service_ns));
    }
    if (me.tokens_ns >= static_cast<double>(service_ns)) {
      me.tokens_ns -= static_cast<double>(service_ns);
    } else {
      const double deficit =
          static_cast<double>(service_ns) - me.tokens_ns;
      // Queue behind the tenant's own backlog: refill_at_ns doubles as
      // the backlog horizon, so a pile of same-instant requests (a
      // parallel checkpoint burst) is paced out one earn-interval apart
      // instead of all landing on the same start floor.
      const int64_t queue_from = std::max(now, me.refill_at_ns);
      start = queue_from + static_cast<int64_t>(deficit / rate);
      me.tokens_ns = 0;
      // The wait itself earned the deficit; do not also refill it.
      me.refill_at_ns = start;
      acct.delayed.fetch_add(1, std::memory_order_relaxed);
      acct.delay_ns.fetch_add(start - now, std::memory_order_relaxed);
    }
  }
  me.active_until_ns = std::max(me.active_until_ns, start + service_ns);
  lane.frontier_ns = std::max(lane.frontier_ns, start + service_ns);
  return start;
}

int64_t QosScheduler::AdmitChunk(int benefactor_lane, int node_lane,
                                 TenantId tenant, int64_t ssd_service_ns,
                                 uint64_t wire_bytes, int64_t now) {
  if (!enabled_) return now;
  Account(tenant).bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
  int64_t start =
      Admit(Lane::kSsd, benefactor_lane, tenant, ssd_service_ns, now);
  if (wire_bytes > 0) {
    const int64_t nic_service = sim::TransferNs(wire_bytes, nic_bw_mbps_, 0);
    start = Admit(Lane::kNic, node_lane, tenant, nic_service, start);
  }
  return start;
}

void QosScheduler::RecordRead(TenantId tenant, int64_t ns) {
  Account(tenant).read_lat.Record(ns);
}

void QosScheduler::RecordWrite(TenantId tenant, int64_t ns) {
  Account(tenant).write_lat.Record(ns);
}

QosStats QosScheduler::Snapshot() const {
  QosStats stats;
  std::lock_guard<std::mutex> lock(accounts_mu_);
  for (const auto& [id, acct] : accounts_) {
    QosTenantStats t;
    t.id = id;
    t.admitted = acct->admitted.load(std::memory_order_relaxed);
    t.delayed = acct->delayed.load(std::memory_order_relaxed);
    t.delay_ns = acct->delay_ns.load(std::memory_order_relaxed);
    t.bytes = acct->bytes.load(std::memory_order_relaxed);
    t.reads = acct->read_lat.count();
    t.writes = acct->write_lat.count();
    t.read_p50_ns = acct->read_lat.Percentile(0.50);
    t.read_p99_ns = acct->read_lat.Percentile(0.99);
    t.read_p999_ns = acct->read_lat.Percentile(0.999);
    t.write_p50_ns = acct->write_lat.Percentile(0.50);
    t.write_p99_ns = acct->write_lat.Percentile(0.99);
    t.write_p999_ns = acct->write_lat.Percentile(0.999);
    stats.tenants.push_back(t);
  }
  std::sort(stats.tenants.begin(), stats.tenants.end(),
            [](const QosTenantStats& a, const QosTenantStats& b) {
              return a.id < b.id;
            });
  return stats;
}

}  // namespace nvm::store

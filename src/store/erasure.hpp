// Reed-Solomon erasure codec of the aggregate store.
//
// A chunk is split into k data fragments of chunk_bytes/k bytes each and
// extended with m parity fragments computed over GF(2^8); ANY k of the
// k+m fragments reconstruct the chunk byte-exactly.  The matrix
// arithmetic is real (XOR-based RS: addition is XOR, multiplication runs
// through log/exp tables of the field), so degraded reads and fragment
// repair are testable against known-answer vectors — only the CPU cost
// is modelled, charged as bytes / ec_encode_bw_gbps on the computing
// side's virtual clock by the caller (StoreConfig::ec_encode_ns).
//
// The generator matrix is the systematic [I_k ; C] form with C an m×k
// Cauchy matrix over GF(2^8) (C[r][c] = 1 / (x_r ^ y_c) with
// x_r = k + r, y_c = c).  Every square submatrix of a Cauchy matrix is
// invertible, which makes [I_k ; C] MDS for every k + m <= 256: any k
// surviving rows form an invertible system, so any m losses are
// recoverable — not just the RAID-6 shapes a naive Vandermonde extension
// guarantees.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nvm::store {

// GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D) and
// generator alpha = 2 — the classic RS-255 field.
namespace gf256 {
uint8_t Mul(uint8_t a, uint8_t b);
uint8_t Div(uint8_t a, uint8_t b);  // b != 0
uint8_t Inv(uint8_t a);             // a != 0
uint8_t Exp(unsigned i);            // alpha^i (i reduced mod 255)
uint8_t Log(uint8_t a);             // discrete log base alpha; a != 0
}  // namespace gf256

// Encode/decode engine for one RS(k, m) geometry.  Stateless beyond the
// precomputed parity rows; safe to share across threads.
class ErasureCodec {
 public:
  ErasureCodec(uint32_t k, uint32_t m);

  uint32_t k() const { return k_; }
  uint32_t m() const { return m_; }
  uint32_t fragments() const { return k_ + m_; }

  // Parity coefficient C[row][col] (row < m, col < k) — exposed so tests
  // can cross-check the encode against an independent reference.
  uint8_t ParityCoeff(uint32_t row, uint32_t col) const;

  // Split `chunk` (size divisible by k) into k data fragments and append
  // m parity fragments.  Returns k+m fragments of chunk.size()/k bytes;
  // fragment i < k is the i-th contiguous slice of the chunk (systematic
  // code: intact data reads never touch the field arithmetic).
  std::vector<std::vector<uint8_t>> Encode(
      std::span<const uint8_t> chunk) const;

  // Encode only the parity fragments from k complete data fragments.
  std::vector<std::vector<uint8_t>> EncodeParity(
      std::span<const std::vector<uint8_t>> data_frags) const;

  // Rebuild every missing fragment in place.  `frags` has k+m slots;
  // slot i is either a fragment of equal size or empty (missing).  At
  // least k slots must be present.  Returns false when fewer than k
  // fragments survive (the chunk is lost).
  bool Reconstruct(std::vector<std::vector<uint8_t>>& frags) const;

  // Concatenate the k data fragments back into a chunk image.
  static void Assemble(std::span<const std::vector<uint8_t>> frags,
                       uint32_t k, std::span<uint8_t> out);

 private:
  uint32_t k_;
  uint32_t m_;
  // Row-major m×k parity matrix (the Cauchy block C of [I_k ; C]).
  std::vector<uint8_t> parity_;
};

}  // namespace nvm::store

#include "store/manager.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace nvm::store {

std::vector<BenefactorRun> GroupByPrimaryBenefactor(
    std::span<const ReadLocation> locs) {
  std::vector<BenefactorRun> runs;
  std::unordered_map<int, size_t> run_of;  // benefactor id -> index in runs
  for (size_t i = 0; i < locs.size(); ++i) {
    if (locs[i].benefactors.empty()) continue;
    const int primary = locs[i].benefactors.front();
    auto [it, fresh] = run_of.try_emplace(primary, runs.size());
    if (fresh) runs.push_back(BenefactorRun{primary, {}});
    runs[it->second].items.push_back(i);
  }
  return runs;
}

std::vector<BenefactorRun> GroupByBenefactor(
    std::span<const WriteLocation> locs) {
  std::vector<BenefactorRun> runs;
  std::unordered_map<int, size_t> run_of;  // benefactor id -> index in runs
  for (size_t i = 0; i < locs.size(); ++i) {
    for (int b : locs[i].benefactors) {
      auto [it, fresh] = run_of.try_emplace(b, runs.size());
      if (fresh) runs.push_back(BenefactorRun{b, {}});
      runs[it->second].items.push_back(i);
    }
  }
  return runs;
}

Manager::Manager(net::Cluster& cluster, int manager_node, StoreConfig config)
    : cluster_(cluster),
      manager_node_(manager_node),
      config_(config),
      service_("manager") {
  NVM_CHECK(config_.chunk_bytes % config_.page_bytes == 0);
  NVM_CHECK(config_.replication >= 1);
}

int Manager::RegisterBenefactor(Benefactor* benefactor) {
  std::lock_guard<std::mutex> lock(mutex_);
  benefactors_.push_back(benefactor);
  return static_cast<int>(benefactors_.size() - 1);
}

Benefactor* Manager::benefactor(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= benefactors_.size()) return nullptr;
  return benefactors_[static_cast<size_t>(id)];
}

size_t Manager::num_benefactors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return benefactors_.size();
}

std::vector<int> Manager::AliveBenefactors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> alive;
  for (size_t i = 0; i < benefactors_.size(); ++i) {
    if (benefactors_[i]->alive()) alive.push_back(static_cast<int>(i));
  }
  return alive;
}

void Manager::MarkDead(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= 0 && static_cast<size_t>(id) < benefactors_.size()) {
    benefactors_[static_cast<size_t>(id)]->Kill();
  }
}

size_t Manager::CheckLiveness(sim::VirtualClock& clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t alive = 0;
  for (auto* b : benefactors_) {
    service_.Acquire(clock, config_.manager_op_ns);
    // Heartbeat ping: a small round-trip to the benefactor's node.
    cluster_.network().Transfer(clock, manager_node_, b->node_id(),
                                config_.meta_request_bytes);
    cluster_.network().Transfer(clock, b->node_id(), manager_node_,
                                config_.meta_response_bytes);
    if (b->alive()) ++alive;
  }
  return alive;
}

StatusOr<uint64_t> Manager::RepairReplication(sim::VirtualClock& clock,
                                              uint64_t* lost) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (lost != nullptr) *lost = 0;
  // A shared chunk (checkpoint link) appears in several files: repair it
  // once and reuse the fixed replica list everywhere.
  std::unordered_map<ChunkKey, std::vector<int>, ChunkKeyHash> repaired;
  uint64_t recreated = 0;
  std::vector<uint8_t> buf(config_.chunk_bytes);
  Bitmap all_pages(config_.pages_per_chunk());
  all_pages.SetAll();

  for (auto& [fid, meta] : files_) {
    for (ChunkRef& ref : meta.chunks) {
      bool degraded = false;
      for (int bid : ref.benefactors) {
        if (!benefactors_[static_cast<size_t>(bid)]->alive()) {
          degraded = true;
          break;
        }
      }
      if (!degraded) continue;

      auto done = repaired.find(ref.key);
      if (done != repaired.end()) {
        ref.benefactors = done->second;
        continue;
      }

      // Partition into survivors and casualties.
      std::vector<int> alive_ids;
      for (int bid : ref.benefactors) {
        Benefactor* b = benefactors_[static_cast<size_t>(bid)];
        if (b->alive()) {
          alive_ids.push_back(bid);
        } else {
          // The dead benefactor's space bookkeeping is reclaimed; its data
          // is gone with it.
          b->ReleaseChunkReservation(1);
          (void)b->DeleteChunk(ref.key);
        }
      }
      if (alive_ids.empty()) {
        if (lost != nullptr) ++*lost;
        repaired[ref.key] = ref.benefactors;  // nothing we can do
        continue;
      }

      Benefactor* source = benefactors_[static_cast<size_t>(alive_ids[0])];
      while (alive_ids.size() < static_cast<size_t>(config_.replication)) {
        // Next healthy benefactor that does not already hold a replica.
        int dst = -1;
        for (size_t scan = 0; scan < benefactors_.size(); ++scan) {
          Benefactor* cand = benefactors_[scan];
          if (!cand->alive()) continue;
          if (std::find(alive_ids.begin(), alive_ids.end(),
                        static_cast<int>(scan)) != alive_ids.end()) {
            continue;
          }
          if (cand->ReserveChunks(1).ok()) {
            dst = static_cast<int>(scan);
            break;
          }
        }
        if (dst < 0) break;  // no capacity left; stay degraded

        bool sparse = false;
        NVM_RETURN_IF_ERROR(source->ReadChunk(clock, ref.key, buf, &sparse));
        if (!sparse) {
          cluster_.network().Transfer(
              clock, source->node_id(),
              benefactors_[static_cast<size_t>(dst)]->node_id(),
              config_.chunk_bytes);
          NVM_RETURN_IF_ERROR(benefactors_[static_cast<size_t>(dst)]
                                  ->WritePages(clock, ref.key, all_pages,
                                               buf));
        }
        alive_ids.push_back(dst);
        ++recreated;
      }
      ref.benefactors = alive_ids;
      repaired[ref.key] = alive_ids;
    }
  }
  return recreated;
}

StatusOr<uint64_t> Manager::Decommission(sim::VirtualClock& clock, int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= benefactors_.size()) {
    return NotFound("benefactor " + std::to_string(id));
  }
  Benefactor* leaving = benefactors_[static_cast<size_t>(id)];
  if (!leaving->alive()) {
    return FailedPrecondition("cannot drain a dead benefactor");
  }

  // Collect every (file, slot) placement that references the leaver.  A
  // shared chunk (checkpoint link) appears in several files but must
  // migrate only once; track migrated keys.
  std::unordered_map<ChunkKey, int, ChunkKeyHash> new_home;
  uint64_t migrated = 0;
  std::vector<uint8_t> buf(config_.chunk_bytes);
  Bitmap all_pages(config_.pages_per_chunk());
  all_pages.SetAll();

  for (auto& [fid, meta] : files_) {
    for (ChunkRef& ref : meta.chunks) {
      for (int& bid : ref.benefactors) {
        if (bid != id) continue;
        auto moved = new_home.find(ref.key);
        if (moved == new_home.end()) {
          // Pick a destination: the next alive benefactor with space that
          // does not already hold a replica of this chunk.
          int dst = -1;
          for (size_t scan = 1; scan < benefactors_.size(); ++scan) {
            const size_t cand = (static_cast<size_t>(id) + scan) %
                                benefactors_.size();
            Benefactor* b = benefactors_[cand];
            if (!b->alive() || static_cast<int>(cand) == id) continue;
            if (std::find(ref.benefactors.begin(), ref.benefactors.end(),
                          static_cast<int>(cand)) != ref.benefactors.end()) {
              continue;
            }
            if (b->ReserveChunks(1).ok()) {
              dst = static_cast<int>(cand);
              break;
            }
          }
          if (dst < 0) {
            return OutOfSpace("no destination for chunk " +
                              ref.key.ToString());
          }
          // Move the data benefactor-to-benefactor (read + network hop +
          // write), like the paper's re-configuration path would.
          bool sparse = false;
          NVM_RETURN_IF_ERROR(
              leaving->ReadChunk(clock, ref.key, buf, &sparse));
          if (!sparse) {
            cluster_.network().Transfer(
                clock, leaving->node_id(),
                benefactors_[static_cast<size_t>(dst)]->node_id(),
                config_.chunk_bytes);
            NVM_RETURN_IF_ERROR(
                benefactors_[static_cast<size_t>(dst)]->WritePages(
                    clock, ref.key, all_pages, buf));
          }
          (void)leaving->DeleteChunk(ref.key);
          leaving->ReleaseChunkReservation(1);
          new_home[ref.key] = dst;
          ++migrated;
          moved = new_home.find(ref.key);
        }
        bid = moved->second;
      }
    }
  }
  leaving->Kill();  // retired: no longer schedulable
  return migrated;
}

StatusOr<FileId> Manager::CreateFile(sim::VirtualClock& clock,
                                     const std::string& name) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  if (names_.contains(name)) {
    return AlreadyExists("file '" + name + "' already exists");
  }
  const FileId id = next_file_id_++;
  names_[name] = id;
  FileMeta meta;
  meta.name = name;
  meta.stripe_cursor = stripe_cursor_;
  // Stagger striping start points so many small files still spread load.
  if (!benefactors_.empty()) {
    stripe_cursor_ = (stripe_cursor_ + 1) % benefactors_.size();
  }
  files_[id] = std::move(meta);
  return id;
}

StatusOr<FileId> Manager::LookupFile(sim::VirtualClock& clock,
                                     const std::string& name) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = names_.find(name);
  if (it == names_.end()) return NotFound("no file named '" + name + "'");
  return it->second;
}

StatusOr<FileInfo> Manager::Stat(sim::VirtualClock& clock, FileId id) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) {
    return NotFound("file id " + std::to_string(id));
  }
  FileInfo info;
  info.id = id;
  info.name = it->second.name;
  info.size = it->second.size;
  info.num_chunks = it->second.chunks.size();
  return info;
}

void Manager::UnrefChunkLocked(const ChunkRef& ref) {
  auto it = refcounts_.find(ref.key);
  NVM_CHECK(it != refcounts_.end(), "unref of untracked chunk");
  if (--it->second == 0) {
    refcounts_.erase(it);
    for (int bid : ref.benefactors) {
      Benefactor* b = benefactors_[static_cast<size_t>(bid)];
      (void)b->DeleteChunk(ref.key);
      b->ReleaseChunkReservation(1);
    }
  }
}

Status Manager::Unlink(sim::VirtualClock& clock, FileId id) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  for (const ChunkRef& ref : it->second.chunks) {
    UnrefChunkLocked(ref);
  }
  names_.erase(it->second.name);
  files_.erase(it);
  return OkStatus();
}

size_t Manager::PlacementStartLocked(const FileMeta& meta,
                                     int client_node) const {
  const size_t n = benefactors_.size();
  switch (config_.stripe_policy) {
    case StripePolicy::kRoundRobin:
      return meta.stripe_cursor;
    case StripePolicy::kLocalityAware:
      // Prefer a benefactor co-located with the allocating client; fall
      // back to the round-robin cursor when none exists.
      for (size_t i = 0; i < n; ++i) {
        if (benefactors_[i]->alive() &&
            benefactors_[i]->node_id() == client_node &&
            benefactors_[i]->bytes_free() >= config_.chunk_bytes) {
          return i;
        }
      }
      return meta.stripe_cursor;
    case StripePolicy::kCapacityBalanced: {
      size_t best = meta.stripe_cursor;
      uint64_t best_free = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!benefactors_[i]->alive()) continue;
        const uint64_t free = benefactors_[i]->bytes_free();
        if (free > best_free) {
          best_free = free;
          best = i;
        }
      }
      return best;
    }
  }
  return meta.stripe_cursor;
}

Status Manager::Fallocate(sim::VirtualClock& clock, FileId id,
                          uint64_t size, int client_node) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  FileMeta& meta = it->second;

  const uint64_t want_chunks = CeilDiv(size, config_.chunk_bytes);
  const size_t n = benefactors_.size();
  if (want_chunks > meta.chunks.size() && n == 0) {
    return Unavailable("no benefactors registered");
  }
  while (meta.chunks.size() < want_chunks) {
    // First choice per the stripe policy; then scan onward, skipping dead
    // or full benefactors; replicas land on consecutive distinct ones.
    ChunkRef ref;
    ref.key.origin_file = id;
    ref.key.index = static_cast<uint32_t>(meta.chunks.size());
    ref.key.version = 0;
    const size_t start = PlacementStartLocked(meta, client_node);
    size_t placed = 0;
    for (size_t scanned = 0;
         placed < static_cast<size_t>(config_.replication) && scanned < n;
         ++scanned) {
      const size_t i = (start + scanned) % n;
      Benefactor* b = benefactors_[i];
      if (!b->alive()) continue;
      if (!b->ReserveChunks(1).ok()) continue;
      ref.benefactors.push_back(static_cast<int>(i));
      ++placed;
    }
    if (placed < static_cast<size_t>(config_.replication)) {
      // Roll back partial placement.
      for (int bid : ref.benefactors) {
        benefactors_[static_cast<size_t>(bid)]->ReleaseChunkReservation(1);
      }
      return OutOfSpace("aggregate store out of space at chunk " +
                        std::to_string(meta.chunks.size()) + " of '" +
                        meta.name + "'");
    }
    meta.stripe_cursor = (meta.stripe_cursor + 1) % n;
    refcounts_[ref.key] = 1;
    meta.chunks.push_back(std::move(ref));
  }
  meta.size = std::max(meta.size, size);
  return OkStatus();
}

StatusOr<ReadLocation> Manager::GetReadLocation(sim::VirtualClock& clock,
                                                FileId id,
                                                uint32_t chunk_index) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  if (chunk_index >= it->second.chunks.size()) {
    return OutOfRange("chunk " + std::to_string(chunk_index) +
                      " beyond EOF of '" + it->second.name + "'");
  }
  const ChunkRef& ref = it->second.chunks[chunk_index];
  return ReadLocation{ref.key, ref.benefactors};
}

StatusOr<std::vector<ReadLocation>> Manager::GetReadLocations(
    sim::VirtualClock& clock, FileId id, uint32_t first, uint32_t count) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  const auto& chunks = it->second.chunks;
  if (first >= chunks.size()) {
    return OutOfRange("chunk " + std::to_string(first) + " beyond EOF of '" +
                      it->second.name + "'");
  }
  const auto n =
      static_cast<uint32_t>(std::min<uint64_t>(count, chunks.size() - first));
  std::vector<ReadLocation> locs;
  locs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const ChunkRef& ref = chunks[first + i];
    locs.push_back(ReadLocation{ref.key, ref.benefactors});
  }
  return locs;
}

StatusOr<WriteLocation> Manager::PrepareWriteLocked(FileMeta& meta,
                                                    uint32_t chunk_index) {
  if (chunk_index >= meta.chunks.size()) {
    return OutOfRange("chunk " + std::to_string(chunk_index) +
                      " beyond EOF of '" + meta.name + "'");
  }
  ChunkRef& ref = meta.chunks[chunk_index];
  auto rc = refcounts_.find(ref.key);
  NVM_CHECK(rc != refcounts_.end());

  WriteLocation loc;
  if (rc->second == 1) {
    // Sole owner: write in place.
    loc.key = ref.key;
    loc.benefactors = ref.benefactors;
    return loc;
  }

  // Shared with a checkpoint: copy-on-write.  The live file always carries
  // the highest version for its slot, so version+1 is fresh.
  ChunkKey fresh = ref.key;
  ++fresh.version;
  NVM_CHECK(!refcounts_.contains(fresh), "COW version collision");

  // The clone stays on the same benefactors (local device copy, no
  // network); reserve space for the new version on every replica, rolling
  // back if one runs out mid-way so a failed COW leaks nothing.
  size_t reserved = 0;
  for (int bid : ref.benefactors) {
    Status s = benefactors_[static_cast<size_t>(bid)]->ReserveChunks(1);
    if (!s.ok()) {
      for (size_t r = 0; r < reserved; ++r) {
        benefactors_[static_cast<size_t>(ref.benefactors[r])]
            ->ReleaseChunkReservation(1);
      }
      return s;
    }
    ++reserved;
  }
  --rc->second;  // live file drops its reference to the shared version
  refcounts_[fresh] = 1;

  loc.needs_clone = true;
  loc.clone_from = ref.key;
  loc.key = fresh;
  loc.benefactors = ref.benefactors;
  ref.key = fresh;
  return loc;
}

StatusOr<WriteLocation> Manager::PrepareWrite(sim::VirtualClock& clock,
                                              FileId id,
                                              uint32_t chunk_index) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  return PrepareWriteLocked(it->second, chunk_index);
}

StatusOr<std::vector<WriteLocation>> Manager::PrepareWriteBatch(
    sim::VirtualClock& clock, FileId id, std::span<const uint32_t> indices) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  std::vector<WriteLocation> locs;
  locs.reserve(indices.size());
  for (uint32_t index : indices) {
    auto loc = PrepareWriteLocked(it->second, index);
    NVM_RETURN_IF_ERROR(loc.status());
    locs.push_back(*std::move(loc));
  }
  return locs;
}

StatusOr<uint64_t> Manager::LinkFileChunks(sim::VirtualClock& clock,
                                           FileId dst, FileId src) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto dst_it = files_.find(dst);
  auto src_it = files_.find(src);
  if (dst_it == files_.end()) return NotFound("dst file " + std::to_string(dst));
  if (src_it == files_.end()) return NotFound("src file " + std::to_string(src));
  // Linked chunks land at the next chunk boundary of dst.
  const uint64_t link_offset =
      dst_it->second.chunks.size() * config_.chunk_bytes;
  for (const ChunkRef& ref : src_it->second.chunks) {
    ++refcounts_[ref.key];
    dst_it->second.chunks.push_back(ref);
  }
  dst_it->second.size = link_offset + src_it->second.size;
  return link_offset;
}

uint32_t Manager::ChunkRefcount(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = refcounts_.find(key);
  return (it == refcounts_.end()) ? 0 : it->second;
}

uint64_t Manager::num_files() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

}  // namespace nvm::store

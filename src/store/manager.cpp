#include "store/manager.hpp"

#include <algorithm>
#include <tuple>
#include <unordered_set>

#include "common/checksum.hpp"
#include "common/log.hpp"
#include "store/maintenance.hpp"

namespace nvm::store {

std::vector<BenefactorRun> GroupByPrimaryBenefactor(
    std::span<const ReadLocation> locs) {
  std::vector<BenefactorRun> runs;
  std::unordered_map<int, size_t> run_of;  // benefactor id -> index in runs
  for (size_t i = 0; i < locs.size(); ++i) {
    if (locs[i].benefactors.empty()) continue;
    const int primary = locs[i].benefactors.front();
    auto [it, fresh] = run_of.try_emplace(primary, runs.size());
    if (fresh) runs.push_back(BenefactorRun{primary, {}});
    runs[it->second].items.push_back(i);
  }
  return runs;
}

std::vector<BenefactorRun> GroupByBenefactor(
    std::span<const WriteLocation> locs) {
  std::vector<BenefactorRun> runs;
  std::unordered_map<int, size_t> run_of;  // benefactor id -> index in runs
  for (size_t i = 0; i < locs.size(); ++i) {
    for (int b : locs[i].benefactors) {
      auto [it, fresh] = run_of.try_emplace(b, runs.size());
      if (fresh) runs.push_back(BenefactorRun{b, {}});
      runs[it->second].items.push_back(i);
    }
  }
  return runs;
}

Manager::Manager(net::Cluster& cluster, int manager_node, StoreConfig config)
    : cluster_(cluster),
      manager_node_(manager_node),
      config_(config),
      service_("manager") {
  NVM_CHECK(config_.chunk_bytes % config_.page_bytes == 0);
  NVM_CHECK(config_.replication >= 1);
}

int Manager::RegisterBenefactor(Benefactor* benefactor) {
  std::lock_guard<std::mutex> lock(mutex_);
  benefactors_.push_back(benefactor);
  return static_cast<int>(benefactors_.size() - 1);
}

Benefactor* Manager::benefactor(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= benefactors_.size()) return nullptr;
  return benefactors_[static_cast<size_t>(id)];
}

size_t Manager::num_benefactors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return benefactors_.size();
}

std::vector<int> Manager::AliveBenefactors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> alive;
  for (size_t i = 0; i < benefactors_.size(); ++i) {
    if (benefactors_[i]->alive()) alive.push_back(static_cast<int>(i));
  }
  return alive;
}

void Manager::MarkDead(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= 0 && static_cast<size_t>(id) < benefactors_.size()) {
    benefactors_[static_cast<size_t>(id)]->Kill();
  }
}

size_t Manager::CheckLiveness(sim::VirtualClock& clock,
                              std::vector<char>* alive_out) {
  std::vector<Benefactor*> bens;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bens = benefactors_;
  }
  if (alive_out != nullptr) alive_out->assign(bens.size(), 0);
  const int64_t start = clock.now();
  int64_t done = start;
  size_t alive = 0;
  for (size_t i = 0; i < bens.size(); ++i) {
    Benefactor* b = bens[i];
    // Each ping runs on its own forked clock: the manager CPU still
    // serialises the sends (service_ is a shared resource timeline), but
    // the round-trips overlap in flight instead of queueing end-to-end.
    sim::VirtualClock ping(start);
    service_.Acquire(ping, config_.manager_op_ns);
    cluster_.network().Transfer(ping, manager_node_, b->node_id(),
                                config_.meta_request_bytes);
    cluster_.network().Transfer(ping, b->node_id(), manager_node_,
                                config_.meta_response_bytes);
    done = std::max(done, ping.now());
    if (b->alive()) {
      ++alive;
      if (alive_out != nullptr) (*alive_out)[i] = 1;
    }
  }
  clock.AdvanceTo(done);  // the sweep completes when the last reply lands
  return alive;
}

void Manager::SetReplicasLocked(const ChunkKey& key,
                                const std::vector<int>& replicas) {
  for (auto& [fid, meta] : files_) {
    for (ChunkRef& ref : meta.chunks) {
      if (ref.key == key) ref.benefactors = replicas;
    }
  }
}

const std::vector<int>* Manager::CurrentReplicasLocked(
    const ChunkKey& key) const {
  for (const auto& [fid, meta] : files_) {
    for (const ChunkRef& ref : meta.chunks) {
      if (ref.key == key) return &ref.benefactors;
    }
  }
  return nullptr;
}

void Manager::UndoRepairTargetLocked(const ChunkKey& key, int bid) {
  if (bid < 0 || static_cast<size_t>(bid) >= benefactors_.size()) return;
  Benefactor* b = benefactors_[static_cast<size_t>(bid)];
  const std::vector<int>* current = CurrentReplicasLocked(key);
  if (current != nullptr &&
      std::find(current->begin(), current->end(), bid) != current->end()) {
    // A racing repair picked the same target and already committed it:
    // the data and one reservation belong to the published replica list.
    // Only this plan's duplicate reservation comes back.
    b->ReleaseChunkReservation(1);
    return;
  }
  (void)b->DeleteChunk(key);  // drop any partially copied data
  b->ReleaseChunkReservation(1);
}

bool Manager::QuarantineReplicaLocked(const ChunkKey& key, int bid) {
  const std::vector<int>* current = CurrentReplicasLocked(key);
  if (current == nullptr ||
      std::find(current->begin(), current->end(), bid) == current->end()) {
    return false;  // already quarantined, replaced, or freed
  }
  corrupt_detected_.Add(1);
  corrupt_pending_.insert(key);
  // The copy is untrustworthy: drop its data and space immediately so no
  // reader or repair ever consults it again.
  Benefactor* b = benefactors_[static_cast<size_t>(bid)];
  (void)b->DeleteChunk(key);
  b->ReleaseChunkReservation(1);
  std::vector<int> rest;
  rest.reserve(current->size() - 1);
  for (int id : *current) {
    if (id != bid) rest.push_back(id);
  }
  if (rest.empty()) {
    // Every replica has now failed verification: the chunk is lost, not
    // degraded (there is no verified source to repair from).
    lost_chunks_.Add(1);
  }
  SetReplicasLocked(key, rest);
  // Any repair copy in flight may have read the quarantined replica: move
  // the epoch so its commit fails and retries against the verified list.
  ++repair_epochs_[key];
  return true;
}

bool Manager::IsRepairTargetLocked(const ChunkKey& key, int bid) const {
  auto it = repair_targets_.find(key);
  return it != repair_targets_.end() &&
         std::find(it->second.begin(), it->second.end(), bid) !=
             it->second.end();
}

void Manager::CompleteWriteLocked(const ChunkKey& key, const uint32_t* crc) {
  auto it = inflight_writers_.find(key);
  NVM_CHECK(it != inflight_writers_.end(), "unmatched CompleteWrite");
  if (--it->second == 0) inflight_writers_.erase(it);
  // The write's bytes (if any landed) postdate every repair copy taken
  // while it was in flight: move the epoch so such a commit fails.
  if (refcounts_.contains(key)) {
    ++repair_epochs_[key];
    // The flush-time checksum becomes authoritative for the new contents.
    // A completion without one (raw benefactor write, failed flush) leaves
    // the contents unknown: drop any stale entry rather than let a later
    // repair stamp the old checksum onto fresh bytes.
    if (crc != nullptr) {
      checksums_[key] = *crc;
    } else {
      checksums_.erase(key);
    }
  }
}

void Manager::CompleteWrite(const ChunkKey& key, const uint32_t* crc) {
  std::lock_guard<std::mutex> lock(mutex_);
  CompleteWriteLocked(key, crc);
}

void Manager::CompleteWrites(std::span<const WriteLocation> locs,
                             std::span<const uint32_t> crcs,
                             std::span<const char> ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < locs.size(); ++i) {
    const uint32_t* crc =
        !crcs.empty() && (ok.empty() || ok[i] != 0) ? &crcs[i] : nullptr;
    CompleteWriteLocked(locs[i].key, crc);
  }
}

std::vector<ChunkKey> Manager::CollectUnderReplicated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ChunkKey> keys;
  std::unordered_set<ChunkKey, ChunkKeyHash> seen;
  for (const auto& [fid, meta] : files_) {
    for (const ChunkRef& ref : meta.chunks) {
      if (ref.benefactors.empty()) continue;  // lost: nothing to repair
      bool degraded =
          ref.benefactors.size() < static_cast<size_t>(config_.replication);
      for (int bid : ref.benefactors) {
        if (!benefactors_[static_cast<size_t>(bid)]->alive()) degraded = true;
      }
      if (degraded && seen.insert(ref.key).second) keys.push_back(ref.key);
    }
  }
  return keys;
}

std::vector<ChunkKey> Manager::ChunksWithReplicasOn(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ChunkKey> keys;
  std::unordered_set<ChunkKey, ChunkKeyHash> seen;
  for (const auto& [fid, meta] : files_) {
    for (const ChunkRef& ref : meta.chunks) {
      if (std::find(ref.benefactors.begin(), ref.benefactors.end(), id) ==
          ref.benefactors.end()) {
        continue;
      }
      if (seen.insert(ref.key).second) keys.push_back(ref.key);
    }
  }
  return keys;
}

std::vector<Manager::RepairPlan> Manager::PlanRepairs(
    std::span<const ChunkKey> keys, uint64_t* lost) {
  std::lock_guard<std::mutex> lock(mutex_);
  // One metadata pass resolves every requested key to its replica list
  // (all refs of a shared chunk carry identical lists).
  std::unordered_set<ChunkKey, ChunkKeyHash> wanted(keys.begin(), keys.end());
  std::unordered_map<ChunkKey, std::vector<int>, ChunkKeyHash> lists;
  for (const auto& [fid, meta] : files_) {
    for (const ChunkRef& ref : meta.chunks) {
      if (wanted.contains(ref.key)) lists.try_emplace(ref.key, ref.benefactors);
    }
  }

  std::vector<RepairPlan> plans;
  for (const ChunkKey& key : keys) {
    auto lit = lists.find(key);
    if (lit == lists.end()) continue;  // freed since reported, or duplicate
    const std::vector<int> recorded = std::move(lit->second);
    lists.erase(lit);  // each key is planned at most once

    std::vector<int> survivors;
    std::vector<int> dead;
    for (int bid : recorded) {
      (benefactors_[static_cast<size_t>(bid)]->alive() ? survivors : dead)
          .push_back(bid);
    }
    // The dead replicas' space bookkeeping is reclaimed; their data died
    // with the device.
    for (int bid : dead) {
      Benefactor* b = benefactors_[static_cast<size_t>(bid)];
      b->ReleaseChunkReservation(1);
      (void)b->DeleteChunk(key);
    }
    if (survivors.empty()) {
      if (!recorded.empty()) {
        // Every replica is gone: record only the truth (no survivors) so
        // readers fail fast instead of retrying dead benefactors.
        lost_chunks_.Add(1);
        if (lost != nullptr) ++*lost;
        SetReplicasLocked(key, {});
      }
      continue;
    }
    // Publish the stripped list immediately — readers stop trying dead
    // ids while the copy runs.
    if (!dead.empty()) SetReplicasLocked(key, survivors);
    if (survivors.size() >= static_cast<size_t>(config_.replication)) {
      continue;  // healthy after stripping (stale report)
    }

    RepairPlan plan;
    plan.key = key;
    plan.survivors = survivors;
    // Capacity-aware placement: least-loaded alive benefactors that do not
    // already hold a replica (ties broken by id for determinism).
    std::vector<std::pair<uint64_t, int>> cands;
    for (size_t i = 0; i < benefactors_.size(); ++i) {
      Benefactor* b = benefactors_[i];
      if (!b->alive()) continue;
      if (std::find(survivors.begin(), survivors.end(),
                    static_cast<int>(i)) != survivors.end()) {
        continue;
      }
      cands.emplace_back(b->bytes_free(), static_cast<int>(i));
    }
    std::sort(cands.begin(), cands.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    const size_t need =
        static_cast<size_t>(config_.replication) - survivors.size();
    for (const auto& [free, bid] : cands) {
      if (plan.targets.size() == need) break;
      if (benefactors_[static_cast<size_t>(bid)]->ReserveChunks(1).ok()) {
        plan.targets.push_back(bid);
      }
    }
    // Register the targets so the scrubber leaves the in-flight copies
    // alone; CommitRepair deregisters them.
    if (!plan.targets.empty()) {
      std::vector<int>& open = repair_targets_[key];
      open.insert(open.end(), plan.targets.begin(), plan.targets.end());
    }
    plan.incomplete = plan.targets.size() < need;
    auto eit = repair_epochs_.find(key);
    plan.epoch = eit == repair_epochs_.end() ? 0 : eit->second;
    // Snapshot the authoritative checksum: the copy must be verified
    // against it before any target receives the bytes.
    auto cit = checksums_.find(key);
    if (cit != checksums_.end()) {
      plan.has_crc = true;
      plan.crc = cit->second;
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

Manager::RepairOutcome Manager::ExecuteRepairPlan(sim::VirtualClock& clock,
                                                  const RepairPlan& plan) {
  RepairOutcome out;
  out.plan = plan;
  if (plan.targets.empty()) return out;
  std::vector<uint8_t> buf(config_.chunk_bytes);
  // Read from the first survivor still answering whose bytes VERIFY (one
  // may have died — or rotted — since the plan was made).  Re-replication
  // must never seed targets from an unverified replica while a verified
  // one may exist.
  bool sparse = false;
  int src = -1;
  for (int bid : plan.survivors) {
    Benefactor* b = benefactor(bid);
    if (b == nullptr) continue;
    Status s = b->ReadChunk(clock, plan.key, buf, &sparse);
    if (s.code() == ErrorCode::kCorrupt) {
      // The survivor failed its own read verification: quarantine at
      // commit, try the next one.
      out.corrupt_sources.push_back(bid);
      continue;
    }
    if (!s.ok()) continue;
    if (!sparse && plan.has_crc && !config_.verify_reads) {
      // With verify_reads off the benefactor served unchecked bytes —
      // verify here against the authoritative checksum (and charge the
      // CPU; with verify_reads on the read already did both).
      clock.Advance(config_.checksum_ns(config_.chunk_bytes));
      if (Crc32c(buf.data(), buf.size()) != plan.crc) {
        out.corrupt_sources.push_back(bid);
        continue;
      }
    }
    src = bid;
    break;
  }
  if (src < 0) {
    out.failed = plan.targets;
    return out;
  }
  Bitmap all_pages(config_.pages_per_chunk());
  all_pages.SetAll();
  // Target copies fan out in parallel: fork a clock per target, join max.
  const int64_t start = clock.now();
  int64_t done = start;
  for (int bid : plan.targets) {
    Benefactor* b = benefactor(bid);
    bool ok = b != nullptr && b->alive();
    sim::VirtualClock copy(start);
    if (ok && !sparse) {
      // Benefactor-to-benefactor move; the manager never touches the data.
      // The verified source bytes carry the authoritative checksum, so the
      // target stores it without recomputing.
      cluster_.network().Transfer(copy, benefactor(src)->node_id(),
                                  b->node_id(), config_.chunk_bytes);
      ok = b->WritePages(copy, plan.key, all_pages, buf,
                         plan.has_crc ? &plan.crc : nullptr)
               .ok();
    }
    // A sparse chunk has no bytes to move: the reservation alone makes the
    // replica (it reads back as zeros, exactly like the survivors).
    done = std::max(done, copy.now());
    (ok ? out.written : out.failed).push_back(bid);
  }
  clock.AdvanceTo(done);
  return out;
}

uint64_t Manager::CommitRepair(const RepairOutcome& outcome, bool* requeue) {
  if (requeue != nullptr) *requeue = false;
  std::lock_guard<std::mutex> lock(mutex_);
  const RepairPlan& plan = outcome.plan;
  // The targets' fate is decided here: they stop being scrub-exempt.
  auto rt = repair_targets_.find(plan.key);
  if (rt != repair_targets_.end()) {
    for (int bid : plan.targets) {
      auto pos = std::find(rt->second.begin(), rt->second.end(), bid);
      if (pos != rt->second.end()) rt->second.erase(pos);
    }
    if (rt->second.empty()) repair_targets_.erase(rt);
  }
  auto undo_all = [&] {
    for (int bid : outcome.written) UndoRepairTargetLocked(plan.key, bid);
    for (int bid : outcome.failed) UndoRepairTargetLocked(plan.key, bid);
  };
  // Freed while the copy ran?  Nothing references the chunk any more.
  if (!refcounts_.contains(plan.key)) {
    undo_all();
    return 0;
  }
  // Rewritten (epoch moved), concurrently re-placed (list changed), or a
  // prepared write still in flight (its bytes could land on a survivor
  // after our read and never reach the targets)?  The bytes we moved are
  // stale — retry from scratch.
  auto eit = repair_epochs_.find(plan.key);
  const uint64_t epoch = eit == repair_epochs_.end() ? 0 : eit->second;
  const std::vector<int>* current = CurrentReplicasLocked(plan.key);
  if (epoch != plan.epoch || current == nullptr ||
      *current != plan.survivors || inflight_writers_.contains(plan.key)) {
    undo_all();
    if (requeue != nullptr) *requeue = true;
    return 0;
  }
  // Survivors stay first: the primary keeps holding every written byte, so
  // reads served off it never observe the copy-window gap.
  std::vector<int> fresh = plan.survivors;
  uint64_t recreated = 0;
  for (int bid : outcome.written) {
    if (benefactors_[static_cast<size_t>(bid)]->alive()) {
      fresh.push_back(bid);
      ++recreated;
    } else {
      UndoRepairTargetLocked(plan.key, bid);  // died after the copy landed
    }
  }
  for (int bid : outcome.failed) UndoRepairTargetLocked(plan.key, bid);
  SetReplicasLocked(plan.key, fresh);
  // Survivors caught serving corrupt bytes during the copy are stripped
  // now, under the same commit (the epoch check above guarantees no write
  // refreshed them in between); the shortened list needs another round.
  bool stripped = false;
  for (int bid : outcome.corrupt_sources) {
    if (QuarantineReplicaLocked(plan.key, bid)) stripped = true;
  }
  if (stripped && requeue != nullptr) *requeue = true;
  // A chunk quarantined earlier counts as healed once it is back at full
  // replication with verified copies only.
  if (corrupt_pending_.contains(plan.key)) {
    const std::vector<int>* now = CurrentReplicasLocked(plan.key);
    if (now != nullptr &&
        now->size() >= static_cast<size_t>(config_.replication)) {
      corrupt_pending_.erase(plan.key);
      corrupt_repaired_.Add(1);
    }
  }
  // Short of the plan (no readable survivor, or targets died mid-copy):
  // hand the key back so the caller retries promptly instead of waiting
  // for the next heartbeat declaration or scrub pass to rediscover it.
  if (requeue != nullptr && recreated < plan.targets.size()) *requeue = true;
  return recreated;
}

StatusOr<uint64_t> Manager::RepairReplication(sim::VirtualClock& clock,
                                              uint64_t* lost) {
  if (lost != nullptr) *lost = 0;
  // Synchronous, unthrottled driver over the plan/execute/commit engine —
  // the manager mutex is never held across a data transfer.  A commit
  // that loses to a concurrent write or a mid-copy death asks for a
  // requeue; retry those keys a bounded number of rounds so a single
  // unlucky race does not leave the chunk degraded until the next sweep.
  std::vector<ChunkKey> keys = CollectUnderReplicated();
  uint64_t recreated = 0;
  for (int round = 0; round < 3 && !keys.empty(); ++round) {
    uint64_t lost_now = 0;
    std::vector<RepairPlan> plans = PlanRepairs(keys, &lost_now);
    if (lost != nullptr) *lost += lost_now;
    std::vector<ChunkKey> retry;
    for (const RepairPlan& plan : plans) {
      RepairOutcome out = ExecuteRepairPlan(clock, plan);
      bool requeue = false;
      recreated += CommitRepair(out, &requeue);
      if (requeue) retry.push_back(plan.key);
    }
    keys = std::move(retry);
  }
  return recreated;
}

Manager::ScrubResult Manager::ScrubOnce(sim::VirtualClock& clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  ScrubResult result;
  // Pass 1 — the authoritative replica map, deduped by key.  Pointers into
  // the chunk vectors stay valid: nothing below mutates file metadata.
  std::unordered_map<ChunkKey, const std::vector<int>*, ChunkKeyHash> placed;
  for (const auto& [fid, meta] : files_) {
    service_.Acquire(clock, config_.manager_op_ns);  // per-file scan cost
    for (const ChunkRef& ref : meta.chunks) {
      placed.try_emplace(ref.key, &ref.benefactors);
    }
  }
  // Pass 2 — reconcile each alive benefactor against the map.  Dead ones
  // are the repair path's business, not the scrubber's.
  for (size_t i = 0; i < benefactors_.size(); ++i) {
    Benefactor* b = benefactors_[i];
    // One metadata round-trip fetches the benefactor's stored-chunk set.
    service_.Acquire(clock, config_.manager_op_ns);
    cluster_.network().Transfer(clock, manager_node_, b->node_id(),
                                config_.meta_request_bytes);
    cluster_.network().Transfer(clock, b->node_id(), manager_node_,
                                config_.meta_response_bytes);
    if (!b->alive()) continue;
    uint64_t expected = 0;
    for (const auto& [key, list] : placed) {
      if (std::find(list->begin(), list->end(), static_cast<int>(i)) !=
          list->end()) {
        ++expected;
      }
    }
    // In-flight repair targets hold reservations (and possibly data) the
    // replica lists do not name yet; their commit will settle them.
    for (const auto& [key, bids] : repair_targets_) {
      expected += static_cast<uint64_t>(
          std::count(bids.begin(), bids.end(), static_cast<int>(i)));
    }
    for (const ChunkKey& key : b->StoredChunkKeys()) {
      auto it = placed.find(key);
      const bool reachable =
          it != placed.end() &&
          std::find(it->second->begin(), it->second->end(),
                    static_cast<int>(i)) != it->second->end();
      if (!reachable && !IsRepairTargetLocked(key, static_cast<int>(i))) {
        // Orphan: stored but absent from the replica list — the leavings
        // of an unlink against a then-dead benefactor or an abandoned
        // repair copy.  No reader ever consults it; reclaim the space.
        (void)b->DeleteChunk(key);
        ++result.orphans_deleted;
      }
    }
    // Reservation drift: reserved slots must equal the distinct chunks the
    // metadata places here (reservations only move under this mutex, so
    // the comparison is race-free).
    const uint64_t reserved = b->bytes_used() / config_.chunk_bytes;
    if (reserved > expected) {
      b->ReleaseChunkReservation(reserved - expected);
      result.reservation_fixes += reserved - expected;
    } else if (reserved < expected) {
      (void)b->ReserveChunks(expected - reserved);
      result.reservation_fixes += expected - reserved;
    }
  }
  // Pass 3 — re-find under-replicated chunks the report path missed.
  for (const auto& [key, list] : placed) {
    if (list->empty()) continue;  // lost
    bool degraded =
        list->size() < static_cast<size_t>(config_.replication);
    for (int bid : *list) {
      if (!benefactors_[static_cast<size_t>(bid)]->alive()) degraded = true;
    }
    if (degraded) result.under_replicated.push_back(key);
  }
  return result;
}

Manager::VerifyResult Manager::VerifyScrub(sim::VirtualClock& clock,
                                           uint64_t max_bytes) {
  VerifyResult result;
  if (!config_.scrub_verify || max_bytes == 0) return result;

  struct Candidate {
    ChunkKey key;
    std::vector<int> replicas;
    uint32_t crc = 0;
    uint64_t epoch = 0;
  };
  auto key_less = [](const ChunkKey& a, const ChunkKey& b) {
    return std::tie(a.origin_file, a.index, a.version) <
           std::tie(b.origin_file, b.index, b.version);
  };

  // Phase 1 (mutex) — snapshot the next cursor batch: placed chunks with a
  // recorded checksum and no write in flight, in sorted key order, until
  // the byte budget is covered (at least one chunk always makes the batch
  // so tiny budgets still progress).
  std::vector<Candidate> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    service_.Acquire(clock, config_.manager_op_ns);  // batch lookup cost
    std::unordered_map<ChunkKey, const std::vector<int>*, ChunkKeyHash> placed;
    for (const auto& [fid, meta] : files_) {
      for (const ChunkRef& ref : meta.chunks) {
        placed.try_emplace(ref.key, &ref.benefactors);
      }
    }
    std::vector<ChunkKey> keys;
    keys.reserve(placed.size());
    for (const auto& [key, list] : placed) keys.push_back(key);
    std::sort(keys.begin(), keys.end(), key_less);

    uint64_t planned = 0;
    bool stopped = false;
    for (const ChunkKey& key : keys) {
      if (verify_cursor_.has_value() && !key_less(*verify_cursor_, key)) {
        continue;  // at or before the cursor: already covered this lap
      }
      const std::vector<int>* list = placed[key];
      if (list->empty()) continue;                    // lost: nothing to read
      if (inflight_writers_.contains(key)) continue;  // bytes in flux
      auto cit = checksums_.find(key);
      if (cit == checksums_.end()) continue;  // never written: nothing to rot
      const uint64_t cost = config_.chunk_bytes * list->size();
      if (!batch.empty() && planned + cost > max_bytes) {
        stopped = true;
        break;
      }
      planned += cost;
      Candidate c;
      c.key = key;
      c.replicas = *list;
      c.crc = cit->second;
      auto eit = repair_epochs_.find(key);
      c.epoch = eit == repair_epochs_.end() ? 0 : eit->second;
      batch.push_back(std::move(c));
      verify_cursor_ = key;
    }
    if (!stopped) {
      result.wrapped = true;  // covered the tail of the keyspace
      verify_cursor_.reset();
    }
  }

  // Phase 2 (no mutex) — verify every alive replica benefactor-locally:
  // one request/verdict round-trip each; the chunk bytes never leave the
  // benefactor's node.
  uint32_t zero_crc = 0;
  if (!batch.empty()) {
    const std::vector<uint8_t> zeros(config_.chunk_bytes, 0);
    zero_crc = Crc32c(zeros.data(), zeros.size());
  }
  struct Mismatch {
    size_t cand;
    int bid;
  };
  std::vector<Mismatch> mismatches;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Candidate& c = batch[i];
    ++result.chunks_checked;
    for (int bid : c.replicas) {
      Benefactor* b = benefactor(bid);
      if (b == nullptr || !b->alive()) continue;  // repair's business
      cluster_.network().Transfer(clock, manager_node_, b->node_id(),
                                  config_.meta_request_bytes);
      bool sparse = false;
      Status s = b->VerifyChunk(clock, c.key, c.crc, &sparse);
      cluster_.network().Transfer(clock, b->node_id(), manager_node_,
                                  config_.meta_response_bytes);
      if (s.code() == ErrorCode::kCorrupt) {
        result.bytes_checked += config_.chunk_bytes;
        mismatches.push_back({i, bid});
      } else if (s.ok()) {
        if (sparse) {
          // A replica with no stored bytes reads as zeros: that is silent
          // corruption too unless the chunk really is all zeros.
          if (c.crc != zero_crc) mismatches.push_back({i, bid});
        } else {
          result.bytes_checked += config_.chunk_bytes;
        }
      }
      // Unavailable: died between phases — the heartbeat/repair path owns
      // dead replicas.
    }
  }

  // Phase 3 (mutex) — quarantine confirmed mismatches, dropping any whose
  // chunk was rewritten or repaired while the verification ran (their
  // verdicts describe bytes that no longer exist).
  if (!mismatches.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    service_.Acquire(clock, config_.manager_op_ns);
    // Our own quarantines bump the epoch by one each; account for them so
    // a chunk with several corrupt replicas sheds all of them in one pass.
    std::unordered_map<ChunkKey, uint64_t, ChunkKeyHash> own_bumps;
    for (const Mismatch& m : mismatches) {
      const Candidate& c = batch[m.cand];
      auto eit = repair_epochs_.find(c.key);
      const uint64_t epoch = eit == repair_epochs_.end() ? 0 : eit->second;
      if (epoch != c.epoch + own_bumps[c.key] ||
          inflight_writers_.contains(c.key)) {
        ++result.skipped;
        continue;
      }
      if (QuarantineReplicaLocked(c.key, m.bid)) {
        ++own_bumps[c.key];
        ++result.corrupt_found;
        const std::vector<int>* now = CurrentReplicasLocked(c.key);
        if (now != nullptr && !now->empty()) {
          result.quarantined.push_back(c.key);
        }
      } else {
        ++result.skipped;
      }
    }
  }
  return result;
}

void Manager::AttachMaintenance(MaintenanceService* service) {
  // Exclusive: detaching blocks until every hook call already holding the
  // shared lock has returned, so ~MaintenanceService cannot destroy the
  // service under a client thread mid-call.
  std::unique_lock<std::shared_mutex> lock(hook_mu_);
  maintenance_ = service;
}

void Manager::ReportDegraded(const ChunkKey& key, int64_t now_ns) {
  std::shared_lock<std::shared_mutex> lock(hook_mu_);
  if (maintenance_ != nullptr) maintenance_->ReportDegraded(key, now_ns);
}

void Manager::ReportCorrupt(const ChunkKey& key, int bid, int64_t now_ns) {
  bool degraded = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (QuarantineReplicaLocked(key, bid)) {
      const std::vector<int>* current = CurrentReplicasLocked(key);
      degraded = current != nullptr && !current->empty();
    }
  }
  // Queue a repair only when a surviving replica can seed the
  // re-replication (a fully corrupt chunk is lost, not degraded).
  if (degraded) ReportDegraded(key, now_ns);
}

bool Manager::LookupChecksum(const ChunkKey& key, uint32_t* crc) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = checksums_.find(key);
  if (it == checksums_.end()) return false;
  *crc = it->second;
  return true;
}

void Manager::MaintenanceTick(int64_t now_ns) {
  std::shared_lock<std::shared_mutex> lock(hook_mu_);
  if (maintenance_ != nullptr) maintenance_->Tick(now_ns);
}

StatusOr<uint64_t> Manager::Decommission(sim::VirtualClock& clock, int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || static_cast<size_t>(id) >= benefactors_.size()) {
    return NotFound("benefactor " + std::to_string(id));
  }
  Benefactor* leaving = benefactors_[static_cast<size_t>(id)];
  if (!leaving->alive()) {
    return FailedPrecondition("cannot drain a dead benefactor");
  }

  // Collect every (file, slot) placement that references the leaver.  A
  // shared chunk (checkpoint link) appears in several files but must
  // migrate only once; track migrated keys.
  std::unordered_map<ChunkKey, int, ChunkKeyHash> new_home;
  uint64_t migrated = 0;
  std::vector<uint8_t> buf(config_.chunk_bytes);
  Bitmap all_pages(config_.pages_per_chunk());
  all_pages.SetAll();

  for (auto& [fid, meta] : files_) {
    for (ChunkRef& ref : meta.chunks) {
      for (int& bid : ref.benefactors) {
        if (bid != id) continue;
        auto moved = new_home.find(ref.key);
        if (moved == new_home.end()) {
          // Pick a destination: the next alive benefactor with space that
          // does not already hold a replica of this chunk.
          int dst = -1;
          for (size_t scan = 1; scan < benefactors_.size(); ++scan) {
            const size_t cand = (static_cast<size_t>(id) + scan) %
                                benefactors_.size();
            Benefactor* b = benefactors_[cand];
            if (!b->alive() || static_cast<int>(cand) == id) continue;
            if (std::find(ref.benefactors.begin(), ref.benefactors.end(),
                          static_cast<int>(cand)) != ref.benefactors.end()) {
              continue;
            }
            if (b->ReserveChunks(1).ok()) {
              dst = static_cast<int>(cand);
              break;
            }
          }
          if (dst < 0) {
            return OutOfSpace("no destination for chunk " +
                              ref.key.ToString());
          }
          // Move the data benefactor-to-benefactor (read + network hop +
          // write), like the paper's re-configuration path would.
          bool sparse = false;
          NVM_RETURN_IF_ERROR(
              leaving->ReadChunk(clock, ref.key, buf, &sparse));
          if (!sparse) {
            cluster_.network().Transfer(
                clock, leaving->node_id(),
                benefactors_[static_cast<size_t>(dst)]->node_id(),
                config_.chunk_bytes);
            // The migrated bytes keep their authoritative checksum.
            auto cit = checksums_.find(ref.key);
            NVM_RETURN_IF_ERROR(
                benefactors_[static_cast<size_t>(dst)]->WritePages(
                    clock, ref.key, all_pages, buf,
                    cit != checksums_.end() ? &cit->second : nullptr));
          }
          (void)leaving->DeleteChunk(ref.key);
          leaving->ReleaseChunkReservation(1);
          new_home[ref.key] = dst;
          ++migrated;
          moved = new_home.find(ref.key);
        }
        bid = moved->second;
      }
    }
  }
  leaving->Kill();  // retired: no longer schedulable
  return migrated;
}

StatusOr<FileId> Manager::CreateFile(sim::VirtualClock& clock,
                                     const std::string& name) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  if (names_.contains(name)) {
    return AlreadyExists("file '" + name + "' already exists");
  }
  const FileId id = next_file_id_++;
  names_[name] = id;
  FileMeta meta;
  meta.name = name;
  meta.stripe_cursor = stripe_cursor_;
  // Stagger striping start points so many small files still spread load.
  if (!benefactors_.empty()) {
    stripe_cursor_ = (stripe_cursor_ + 1) % benefactors_.size();
  }
  files_[id] = std::move(meta);
  return id;
}

StatusOr<FileId> Manager::LookupFile(sim::VirtualClock& clock,
                                     const std::string& name) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = names_.find(name);
  if (it == names_.end()) return NotFound("no file named '" + name + "'");
  return it->second;
}

StatusOr<FileInfo> Manager::Stat(sim::VirtualClock& clock, FileId id) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) {
    return NotFound("file id " + std::to_string(id));
  }
  FileInfo info;
  info.id = id;
  info.name = it->second.name;
  info.size = it->second.size;
  info.num_chunks = it->second.chunks.size();
  return info;
}

void Manager::UnrefChunkLocked(const ChunkRef& ref) {
  auto it = refcounts_.find(ref.key);
  NVM_CHECK(it != refcounts_.end(), "unref of untracked chunk");
  if (--it->second == 0) {
    refcounts_.erase(it);
    repair_epochs_.erase(ref.key);
    checksums_.erase(ref.key);
    corrupt_pending_.erase(ref.key);
    for (int bid : ref.benefactors) {
      Benefactor* b = benefactors_[static_cast<size_t>(bid)];
      (void)b->DeleteChunk(ref.key);
      b->ReleaseChunkReservation(1);
    }
  }
}

Status Manager::Unlink(sim::VirtualClock& clock, FileId id) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  for (const ChunkRef& ref : it->second.chunks) {
    UnrefChunkLocked(ref);
  }
  names_.erase(it->second.name);
  files_.erase(it);
  return OkStatus();
}

size_t Manager::PlacementStartLocked(const FileMeta& meta,
                                     int client_node) const {
  const size_t n = benefactors_.size();
  switch (config_.stripe_policy) {
    case StripePolicy::kRoundRobin:
      return meta.stripe_cursor;
    case StripePolicy::kLocalityAware:
      // Prefer a benefactor co-located with the allocating client; fall
      // back to the round-robin cursor when none exists.
      for (size_t i = 0; i < n; ++i) {
        if (benefactors_[i]->alive() &&
            benefactors_[i]->node_id() == client_node &&
            benefactors_[i]->bytes_free() >= config_.chunk_bytes) {
          return i;
        }
      }
      return meta.stripe_cursor;
    case StripePolicy::kCapacityBalanced: {
      size_t best = meta.stripe_cursor;
      uint64_t best_free = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!benefactors_[i]->alive()) continue;
        const uint64_t free = benefactors_[i]->bytes_free();
        if (free > best_free) {
          best_free = free;
          best = i;
        }
      }
      return best;
    }
  }
  return meta.stripe_cursor;
}

Status Manager::Fallocate(sim::VirtualClock& clock, FileId id,
                          uint64_t size, int client_node) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  FileMeta& meta = it->second;

  const uint64_t want_chunks = CeilDiv(size, config_.chunk_bytes);
  const size_t n = benefactors_.size();
  if (want_chunks > meta.chunks.size() && n == 0) {
    return Unavailable("no benefactors registered");
  }
  while (meta.chunks.size() < want_chunks) {
    // First choice per the stripe policy; then scan onward, skipping dead
    // or full benefactors; replicas land on consecutive distinct ones.
    ChunkRef ref;
    ref.key.origin_file = id;
    ref.key.index = static_cast<uint32_t>(meta.chunks.size());
    ref.key.version = 0;
    const size_t start = PlacementStartLocked(meta, client_node);
    size_t placed = 0;
    for (size_t scanned = 0;
         placed < static_cast<size_t>(config_.replication) && scanned < n;
         ++scanned) {
      const size_t i = (start + scanned) % n;
      Benefactor* b = benefactors_[i];
      if (!b->alive()) continue;
      if (!b->ReserveChunks(1).ok()) continue;
      ref.benefactors.push_back(static_cast<int>(i));
      ++placed;
    }
    if (placed < static_cast<size_t>(config_.replication)) {
      // Roll back partial placement.
      for (int bid : ref.benefactors) {
        benefactors_[static_cast<size_t>(bid)]->ReleaseChunkReservation(1);
      }
      return OutOfSpace("aggregate store out of space at chunk " +
                        std::to_string(meta.chunks.size()) + " of '" +
                        meta.name + "'");
    }
    meta.stripe_cursor = (meta.stripe_cursor + 1) % n;
    refcounts_[ref.key] = 1;
    meta.chunks.push_back(std::move(ref));
  }
  meta.size = std::max(meta.size, size);
  return OkStatus();
}

StatusOr<ReadLocation> Manager::GetReadLocation(sim::VirtualClock& clock,
                                                FileId id,
                                                uint32_t chunk_index) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  if (chunk_index >= it->second.chunks.size()) {
    return OutOfRange("chunk " + std::to_string(chunk_index) +
                      " beyond EOF of '" + it->second.name + "'");
  }
  const ChunkRef& ref = it->second.chunks[chunk_index];
  return ReadLocation{ref.key, ref.benefactors};
}

StatusOr<std::vector<ReadLocation>> Manager::GetReadLocations(
    sim::VirtualClock& clock, FileId id, uint32_t first, uint32_t count) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  const auto& chunks = it->second.chunks;
  if (first >= chunks.size()) {
    return OutOfRange("chunk " + std::to_string(first) + " beyond EOF of '" +
                      it->second.name + "'");
  }
  const auto n =
      static_cast<uint32_t>(std::min<uint64_t>(count, chunks.size() - first));
  std::vector<ReadLocation> locs;
  locs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const ChunkRef& ref = chunks[first + i];
    locs.push_back(ReadLocation{ref.key, ref.benefactors});
  }
  return locs;
}

StatusOr<WriteLocation> Manager::PrepareWriteLocked(FileMeta& meta,
                                                    uint32_t chunk_index) {
  if (chunk_index >= meta.chunks.size()) {
    return OutOfRange("chunk " + std::to_string(chunk_index) +
                      " beyond EOF of '" + meta.name + "'");
  }
  ChunkRef& ref = meta.chunks[chunk_index];
  auto rc = refcounts_.find(ref.key);
  NVM_CHECK(rc != refcounts_.end());

  WriteLocation loc;
  if (rc->second == 1) {
    // Sole owner: write in place.  Bump the repair epoch — a repair copy
    // planned before this write would publish stale bytes, and the moved
    // epoch makes its commit fail and retry.  The writer count fences off
    // repair commits until CompleteWrite: the data lands outside the
    // mutex, so until then any repair copy may be missing it.
    ++repair_epochs_[ref.key];
    ++inflight_writers_[ref.key];
    loc.key = ref.key;
    loc.benefactors = ref.benefactors;
    return loc;
  }

  // Shared with a checkpoint: copy-on-write.  The live file always carries
  // the highest version for its slot, so version+1 is fresh.
  ChunkKey fresh = ref.key;
  ++fresh.version;
  NVM_CHECK(!refcounts_.contains(fresh), "COW version collision");

  // The clone stays on the same benefactors (local device copy, no
  // network); reserve space for the new version on every replica, rolling
  // back if one runs out mid-way so a failed COW leaks nothing.
  size_t reserved = 0;
  for (int bid : ref.benefactors) {
    Status s = benefactors_[static_cast<size_t>(bid)]->ReserveChunks(1);
    if (!s.ok()) {
      for (size_t r = 0; r < reserved; ++r) {
        benefactors_[static_cast<size_t>(ref.benefactors[r])]
            ->ReleaseChunkReservation(1);
      }
      return s;
    }
    ++reserved;
  }
  --rc->second;  // live file drops its reference to the shared version
  refcounts_[fresh] = 1;
  ++repair_epochs_[fresh];     // the COW write targets the fresh version
  ++inflight_writers_[fresh];  // fenced until the clone + write land

  loc.needs_clone = true;
  loc.clone_from = ref.key;
  loc.key = fresh;
  loc.benefactors = ref.benefactors;
  ref.key = fresh;
  return loc;
}

StatusOr<WriteLocation> Manager::PrepareWrite(sim::VirtualClock& clock,
                                              FileId id,
                                              uint32_t chunk_index) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  return PrepareWriteLocked(it->second, chunk_index);
}

StatusOr<std::vector<WriteLocation>> Manager::PrepareWriteBatch(
    sim::VirtualClock& clock, FileId id, std::span<const uint32_t> indices) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(id);
  if (it == files_.end()) return NotFound("file id " + std::to_string(id));
  std::vector<WriteLocation> locs;
  locs.reserve(indices.size());
  for (uint32_t index : indices) {
    auto loc = PrepareWriteLocked(it->second, index);
    if (!loc.ok()) {
      // The caller gets an error and will never complete the window:
      // close the writes already opened so they don't fence repairs of
      // those chunks forever.
      for (const WriteLocation& opened : locs) CompleteWriteLocked(opened.key);
      return loc.status();
    }
    locs.push_back(*std::move(loc));
  }
  return locs;
}

StatusOr<uint64_t> Manager::LinkFileChunks(sim::VirtualClock& clock,
                                           FileId dst, FileId src) {
  ChargeOp(clock);
  std::lock_guard<std::mutex> lock(mutex_);
  auto dst_it = files_.find(dst);
  auto src_it = files_.find(src);
  if (dst_it == files_.end()) return NotFound("dst file " + std::to_string(dst));
  if (src_it == files_.end()) return NotFound("src file " + std::to_string(src));
  // Linked chunks land at the next chunk boundary of dst.
  const uint64_t link_offset =
      dst_it->second.chunks.size() * config_.chunk_bytes;
  for (const ChunkRef& ref : src_it->second.chunks) {
    ++refcounts_[ref.key];
    dst_it->second.chunks.push_back(ref);
  }
  dst_it->second.size = link_offset + src_it->second.size;
  return link_offset;
}

uint32_t Manager::ChunkRefcount(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = refcounts_.find(key);
  return (it == refcounts_.end()) ? 0 : it->second;
}

uint64_t Manager::num_files() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

}  // namespace nvm::store

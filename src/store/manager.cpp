#include "store/manager.hpp"

#include <algorithm>
#include <tuple>

#include "common/checksum.hpp"
#include "common/log.hpp"
#include "store/erasure.hpp"
#include "store/maintenance.hpp"

namespace nvm::store {

namespace {

// Total order on chunk keys, used wherever results are accumulated across
// shards: sorting by key makes the output independent of the shard count
// and of hash-map iteration order.
bool KeyLess(const ChunkKey& a, const ChunkKey& b) {
  return std::tie(a.origin_file, a.index, a.version) <
         std::tie(b.origin_file, b.index, b.version);
}

}  // namespace

std::vector<BenefactorRun> Manager::GroupByPrimaryBenefactor(
    std::span<const ReadLocation> locs) {
  std::vector<BenefactorRun> runs;
  std::unordered_map<int, size_t> run_of;  // benefactor id -> index in runs
  for (size_t i = 0; i < locs.size(); ++i) {
    if (locs[i].benefactors.empty()) continue;
    // Erasure-coded chunks never join run RPCs: every read touches k
    // devices, so there is no single-benefactor run to coalesce into.
    if (locs[i].ec) continue;
    const int primary = locs[i].benefactors.front();
    auto [it, fresh] = run_of.try_emplace(primary, runs.size());
    if (fresh) runs.push_back(BenefactorRun{primary, {}});
    runs[it->second].items.push_back(i);
  }
  return runs;
}

std::vector<BenefactorRun> Manager::GroupByBenefactor(
    std::span<const WriteLocation> locs) {
  std::vector<BenefactorRun> runs;
  std::unordered_map<int, size_t> run_of;  // benefactor id -> index in runs
  for (size_t i = 0; i < locs.size(); ++i) {
    if (locs[i].ec) continue;  // EC chunks go through the per-chunk path
    for (int b : locs[i].benefactors) {
      auto [it, fresh] = run_of.try_emplace(b, runs.size());
      if (fresh) runs.push_back(BenefactorRun{b, {}});
      runs[it->second].items.push_back(i);
    }
  }
  return runs;
}

Manager::Manager(net::Cluster& cluster, int manager_node, StoreConfig config,
                 WalStore* wal)
    : cluster_(cluster),
      manager_node_(manager_node),
      config_(config),
      meta_shards_(config.meta_shards),
      wal_(wal),
      shards_(meta_shards_) {
  NVM_CHECK(config_.chunk_bytes % config_.page_bytes == 0);
  NVM_CHECK(config_.replication >= 1);
  NVM_CHECK(config_.meta_shards >= 1, "meta_shards must be at least 1");
  if (config_.ec()) {
    // Fragments must be page-aligned slices: chunk_bytes = k * frag_bytes
    // with frag_bytes a whole number of pages.
    NVM_CHECK(config_.ec_k >= 1 && config_.ec_k + config_.ec_m <= 256,
              "erasure geometry must satisfy 1 <= k and k+m <= 256");
    NVM_CHECK(
        config_.chunk_bytes % (config_.ec_k * config_.page_bytes) == 0,
        "chunk_bytes must divide into ec_k page-aligned fragments");
    NVM_CHECK(config_.ec_encode_bw_gbps > 0.0,
              "ec_encode_bw_gbps must be positive");
  }
  services_.reserve(meta_shards_);
  for (size_t i = 0; i < meta_shards_; ++i) {
    // Keep the historic resource name when unsharded so single-shard
    // virtual-time traces stay byte-identical to the pre-shard store.
    services_.push_back(std::make_unique<sim::Resource>(
        meta_shards_ == 1 ? std::string("manager")
                          : "manager[" + std::to_string(i) + "]"));
  }
}

int Manager::RegisterBenefactor(Benefactor* benefactor) {
  std::unique_lock<std::shared_mutex> lock(reg_mu_);
  benefactors_.push_back(benefactor);
  return static_cast<int>(benefactors_.size() - 1);
}

Benefactor* Manager::BenefactorAt(int id) const {
  std::shared_lock<std::shared_mutex> lock(reg_mu_);
  if (id < 0 || static_cast<size_t>(id) >= benefactors_.size()) return nullptr;
  return benefactors_[static_cast<size_t>(id)];
}

Benefactor* Manager::benefactor(int id) { return BenefactorAt(id); }

size_t Manager::num_benefactors() const {
  std::shared_lock<std::shared_mutex> lock(reg_mu_);
  return benefactors_.size();
}

std::vector<Benefactor*> Manager::SnapshotBenefactors() const {
  std::shared_lock<std::shared_mutex> lock(reg_mu_);
  return benefactors_;
}

std::vector<int> Manager::AliveBenefactors() const {
  std::shared_lock<std::shared_mutex> lock(reg_mu_);
  std::vector<int> alive;
  for (size_t i = 0; i < benefactors_.size(); ++i) {
    if (benefactors_[i]->alive()) alive.push_back(static_cast<int>(i));
  }
  return alive;
}

void Manager::MarkDead(int id) {
  // Kill() is atomic on the benefactor; the registry itself is unchanged.
  Benefactor* b = BenefactorAt(id);
  if (b != nullptr) b->Kill();
}

size_t Manager::CheckLiveness(sim::VirtualClock& clock,
                              std::vector<char>* alive_out) {
  std::vector<Benefactor*> bens = SnapshotBenefactors();
  if (alive_out != nullptr) alive_out->assign(bens.size(), 0);
  const int64_t start = clock.now();
  int64_t done = start;
  size_t alive = 0;
  for (size_t i = 0; i < bens.size(); ++i) {
    Benefactor* b = bens[i];
    // Each ping runs on its own forked clock: the manager CPU still
    // serialises the sends (the per-lane services are shared resource
    // timelines, striped over the shard lanes), but the round-trips
    // overlap in flight instead of queueing end-to-end.
    sim::VirtualClock ping(start);
    ChargeOp(ping, i % meta_shards_);
    cluster_.network().Transfer(ping, manager_node_, b->node_id(),
                                config_.meta_request_bytes);
    cluster_.network().Transfer(ping, b->node_id(), manager_node_,
                                config_.meta_response_bytes);
    done = std::max(done, ping.now());
    if (b->alive()) {
      ++alive;
      if (alive_out != nullptr) (*alive_out)[i] = 1;
    }
  }
  clock.AdvanceTo(done);  // the sweep completes when the last reply lands
  return alive;
}

std::shared_ptr<Manager::FileMeta> Manager::FindFile(FileId id) const {
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : it->second;
}

void Manager::PublishReplicasLocked(ChunkHandle& h,
                                    std::vector<int> replicas) {
  h.replicas.store(
      std::make_shared<const std::vector<int>>(std::move(replicas)),
      std::memory_order_release);
}

void Manager::UndoRepairTargetLocked(MetaShard& shard, const ChunkKey& key,
                                     int bid, uint64_t bytes) {
  Benefactor* b = BenefactorAt(bid);
  if (b == nullptr) return;
  auto it = shard.chunks.find(key);
  if (it != shard.chunks.end()) {
    auto current = it->second->replicas.load(std::memory_order_acquire);
    if (std::find(current->begin(), current->end(), bid) != current->end()) {
      // A racing repair picked the same target and already committed it:
      // the data and one reservation belong to the published replica list.
      // Only this plan's duplicate reservation comes back.
      b->ReleaseBytes(bytes);
      return;
    }
  }
  (void)b->DeleteChunk(key);  // drop any partially copied data
  b->ReleaseBytes(bytes);
}

bool Manager::QuarantineReplicaLocked(sim::VirtualClock& clock,
                                      MetaShard& shard, const ChunkKey& key,
                                      int bid) {
  auto it = shard.chunks.find(key);
  if (it == shard.chunks.end()) return false;  // freed meanwhile
  ChunkHandle& h = *it->second;
  auto current = h.replicas.load(std::memory_order_acquire);
  if (std::find(current->begin(), current->end(), bid) == current->end()) {
    return false;  // already quarantined or replaced
  }
  corrupt_detected_.Add(1);
  h.corrupt_pending = true;
  // Correlated-loss memory: this device just served wrong bytes for this
  // chunk — the placement engine must not pick it as a repair target for
  // the same chunk (placement_avoid_suspected).
  if (std::find(h.tainted.begin(), h.tainted.end(), bid) ==
      h.tainted.end()) {
    h.tainted.push_back(bid);
  }
  std::vector<int> rest;
  if (h.ec) {
    // Positional fragment map: the quarantined fragment's slot goes to -1
    // (positions are stable — a repair re-fills the hole in place).
    rest = *current;
    for (int& id : rest) {
      if (id == bid) id = -1;
    }
  } else {
    rest.reserve(current->size() - 1);
    for (int id : *current) {
      if (id != bid) rest.push_back(id);
    }
  }
  // Log the shortened list BEFORE destroying the quarantined replica's
  // data.  The reverse order is unrecoverable: a crash in between would
  // leave a durable list still naming bid, and recovery — finding no data
  // there and a quarantined (possibly wrong-byte) image gone — could pick
  // the corrupt replica's stored checksum as truth or fail chunks that
  // have a healthy survivor.
  WalRecord rec;
  rec.type = WalRecordType::kReplicas;
  rec.key = key;
  rec.replicas = rest;
  LogAppend(clock, std::move(rec));
  // The copy is untrustworthy: drop its data and space immediately so no
  // reader or repair ever consults it again.
  Benefactor* b = BenefactorAt(bid);
  (void)b->DeleteChunk(key);
  b->ReleaseBytes(ChunkResBytes(h.ec));
  if (h.ec) {
    const auto live = static_cast<size_t>(
        std::count_if(rest.begin(), rest.end(), [](int id) { return id >= 0; }));
    if (live + 1 == config_.ec_k) {
      // This quarantine dropped the stripe below k surviving fragments: no
      // reconstruction exists any more — the chunk is lost, not degraded.
      // Counted exactly once: repairs never run below k, so the live count
      // crosses k-1 at most once.
      lost_chunks_.Add(1);
    }
  } else if (rest.empty()) {
    // Every replica has now failed verification: the chunk is lost, not
    // degraded (there is no verified source to repair from).
    lost_chunks_.Add(1);
  }
  PublishReplicasLocked(h, std::move(rest));
  // Any repair copy in flight may have read the quarantined replica: move
  // the epoch so its commit fails and retries against the verified list.
  ++h.repair_epoch;
  return true;
}

bool Manager::IsRepairTargetLocked(const MetaShard& shard, const ChunkKey& key,
                                   int bid) const {
  auto it = shard.repair_targets.find(key);
  if (it == shard.repair_targets.end()) return false;
  return std::any_of(
      it->second.begin(), it->second.end(),
      [bid](const MetaShard::RepairTarget& t) { return t.bid == bid; });
}

void Manager::CompleteWriteLocked(MetaShard& shard, const ChunkKey& key,
                                  const uint32_t* crc,
                                  std::span<const uint32_t> frag_crcs) {
  auto it = shard.inflight_writers.find(key);
  NVM_CHECK(it != shard.inflight_writers.end(), "unmatched CompleteWrite");
  if (--it->second == 0) shard.inflight_writers.erase(it);
  // The write's bytes (if any landed) postdate every repair copy taken
  // while it was in flight: move the epoch so such a commit fails.
  auto cit = shard.chunks.find(key);
  if (cit != shard.chunks.end()) {
    ChunkHandle& h = *cit->second;
    ++h.repair_epoch;
    // The flush-time checksum becomes authoritative for the new contents.
    // A completion without one (raw benefactor write, failed flush) leaves
    // the contents unknown: drop any stale entry rather than let a later
    // repair stamp the old checksum onto fresh bytes.
    if (crc != nullptr) {
      h.has_crc = true;
      h.crc = *crc;
      // Per-fragment checksums travel with the full-image one (EC writes
      // always pass both; frag repair verifies fragments against these).
      h.frag_crcs.assign(frag_crcs.begin(), frag_crcs.end());
      // Fresh verified bytes landed everywhere the list names: the
      // correlated-loss memory described the overwritten contents.
      h.tainted.clear();
    } else {
      h.has_crc = false;
      h.frag_crcs.clear();
    }
  }
}

void Manager::CompleteWrite(sim::VirtualClock& clock, const ChunkKey& key,
                            const uint32_t* crc,
                            std::span<const uint32_t> frag_crcs) {
  MetaShard& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (wal_ != nullptr) {
    auto cit = shard.chunks.find(key);
    if (cit != shard.chunks.end()) {
      const ChunkHandle& h = *cit->second;
      // Log-before-publish: the erase of a stale checksum is as durable a
      // transition as a new one — without it, recovery would stamp the old
      // checksum onto bytes a failed flush left in an unknown state.
      if (crc != nullptr || h.has_crc) {
        WalRecord rec;
        rec.type = WalRecordType::kComplete;
        WalCompletion done{key, crc != nullptr, crc != nullptr ? *crc : 0};
        if (crc != nullptr) {
          done.frag_crcs.assign(frag_crcs.begin(), frag_crcs.end());
        }
        rec.completions.push_back(std::move(done));
        LogAppend(clock, std::move(rec));
      }
    }
  }
  CompleteWriteLocked(shard, key, crc, frag_crcs);
}

void Manager::CompleteWrites(sim::VirtualClock& clock,
                             std::span<const WriteLocation> locs,
                             std::span<const uint32_t> crcs,
                             std::span<const char> ok) {
  if (wal_ != nullptr) wal_->TriggerPoint(CrashPoint::kMidBatch);
  // Lock the whole involved shard set up front, in ascending index order
  // (the ChunkCache flush-window discipline), so the window completes in
  // one pass no matter how its chunks hash across shards.
  std::vector<size_t> shard_of_loc;
  shard_of_loc.reserve(locs.size());
  for (const WriteLocation& loc : locs) {
    shard_of_loc.push_back(shard_of(loc.key));
  }
  std::vector<size_t> order = shard_of_loc;
  std::sort(order.begin(), order.end());
  order.erase(std::unique(order.begin(), order.end()), order.end());
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(order.size());
  for (size_t s : order) held.emplace_back(shards_[s].mu);
  if (wal_ != nullptr) {
    // One batched record for the whole window, appended with every
    // involved shard locked and BEFORE any in-memory mutation: only the
    // durable checksum transitions (set or erase) make the record —
    // completions that change nothing durable (sparse, crc-less over
    // crc-less) are skipped, so a no-checksum window appends nothing.
    WalRecord rec;
    rec.type = WalRecordType::kComplete;
    for (size_t i = 0; i < locs.size(); ++i) {
      const uint32_t* crc =
          !crcs.empty() && (ok.empty() || ok[i] != 0) ? &crcs[i] : nullptr;
      auto cit = shards_[shard_of_loc[i]].chunks.find(locs[i].key);
      if (cit == shards_[shard_of_loc[i]].chunks.end()) continue;
      if (crc == nullptr && !cit->second->has_crc) continue;
      rec.completions.push_back(WalCompletion{
          locs[i].key, crc != nullptr, crc != nullptr ? *crc : 0});
    }
    if (!rec.completions.empty()) LogAppend(clock, std::move(rec));
  }
  for (size_t i = 0; i < locs.size(); ++i) {
    const uint32_t* crc =
        !crcs.empty() && (ok.empty() || ok[i] != 0) ? &crcs[i] : nullptr;
    CompleteWriteLocked(shards_[shard_of_loc[i]], locs[i].key, crc);
  }
}

std::vector<ChunkKey> Manager::CollectUnderReplicated() const {
  const std::vector<Benefactor*> bens = SnapshotBenefactors();
  std::vector<ChunkKey> keys;
  for (const MetaShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, h] : shard.chunks) {
      auto list = h->replicas.load(std::memory_order_acquire);
      if (list->empty()) continue;  // lost: nothing to repair
      bool degraded = false;
      if (h->ec) {
        // Positional fragment map: a hole (-1) or a dead holder degrades
        // the stripe; below k live fragments it is lost, not repairable.
        size_t live = 0;
        for (int bid : *list) {
          if (bid < 0) {
            degraded = true;
          } else if (bens[static_cast<size_t>(bid)]->alive()) {
            ++live;
          } else {
            degraded = true;
          }
        }
        if (live < config_.ec_k) continue;  // lost: nothing to repair
      } else {
        degraded = list->size() < static_cast<size_t>(config_.replication);
        for (int bid : *list) {
          if (!bens[static_cast<size_t>(bid)]->alive()) degraded = true;
        }
      }
      if (degraded) keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end(), KeyLess);
  return keys;
}

std::vector<ChunkKey> Manager::ChunksWithReplicasOn(int id) const {
  std::vector<ChunkKey> keys;
  for (const MetaShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, h] : shard.chunks) {
      auto list = h->replicas.load(std::memory_order_acquire);
      if (std::find(list->begin(), list->end(), id) != list->end()) {
        keys.push_back(key);
      }
    }
  }
  std::sort(keys.begin(), keys.end(), KeyLess);
  return keys;
}

std::vector<Manager::RepairPlan> Manager::PlanRepairs(
    sim::VirtualClock& clock, std::span<const ChunkKey> keys,
    uint64_t* lost) {
  const std::vector<Benefactor*> bens = SnapshotBenefactors();
  // Reliability signal for target placement, snapshotted once per call
  // and BEFORE any shard mutex (hook_mu_ is never taken under one).
  std::vector<char> suspected;
  if (config_.placement_avoid_suspected) suspected = SuspectedBenefactors();
  std::unordered_set<ChunkKey, ChunkKeyHash> seen;
  std::vector<RepairPlan> plans;
  for (const ChunkKey& key : keys) {
    if (!seen.insert(key).second) continue;  // each key planned at most once
    MetaShard& shard = shards_[shard_of(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto hit = shard.chunks.find(key);
    if (hit == shard.chunks.end()) continue;  // freed since reported
    ChunkHandle& h = *hit->second;
    const std::vector<int> recorded =
        *h.replicas.load(std::memory_order_acquire);

    if (h.ec) {
      // Erasure-coded stripe: positions are stable.  Dead holders become
      // holes (-1) in place — their fragment died with the device — and
      // the plan reserves one target per hole, spread over failure
      // domains distinct from every surviving fragment's node.
      const uint64_t fb = config_.ec_frag_bytes();
      std::vector<int> positions = recorded;
      std::vector<int> dead;
      size_t live = 0;
      for (int& bid : positions) {
        if (bid < 0) continue;
        if (bens[static_cast<size_t>(bid)]->alive()) {
          ++live;
          continue;
        }
        dead.push_back(bid);
        bid = -1;
      }
      if (!dead.empty()) {
        // Log the holed map (log-before-publish), then reclaim the dead
        // fragments' space bookkeeping.
        WalRecord rec;
        rec.type = WalRecordType::kReplicas;
        rec.key = key;
        rec.replicas = positions;
        LogAppend(clock, std::move(rec));
        for (int bid : dead) {
          Benefactor* b = bens[static_cast<size_t>(bid)];
          b->ReleaseBytes(fb);
          (void)b->DeleteChunk(key);
        }
        PublishReplicasLocked(h, positions);
      }
      if (live < config_.ec_k) {
        // Below k surviving fragments no reconstruction exists.  Count the
        // loss only when THIS strip crossed the threshold (repairs never
        // run below k, so the crossing happens at most once).
        if (live + dead.size() >= config_.ec_k) {
          lost_chunks_.Add(1);
          if (lost != nullptr) ++*lost;
        }
        continue;
      }
      std::vector<uint32_t> holes;
      for (size_t pos = 0; pos < positions.size(); ++pos) {
        if (positions[pos] < 0) holes.push_back(static_cast<uint32_t>(pos));
      }
      if (holes.empty()) continue;  // healthy after stripping (stale report)

      std::vector<PlacementCandidate> cands = BuildPlacementCandidates(
          bens, suspected.empty() ? nullptr : &suspected);
      // Hard failure-domain spreading: no target may share a node with a
      // surviving fragment (or another target) — a single node failure
      // must never take out two fragments of one stripe.
      std::vector<int> exclude_nodes;
      for (int bid : positions) {
        if (bid < 0) continue;
        cands[static_cast<size_t>(bid)].excluded = true;
        const int node = bens[static_cast<size_t>(bid)]->node_id();
        if (node >= 0 && std::find(exclude_nodes.begin(), exclude_nodes.end(),
                                   node) == exclude_nodes.end()) {
          exclude_nodes.push_back(node);
        }
      }
      if (config_.placement_avoid_suspected) {
        for (int bid : h.tainted) {
          if (static_cast<size_t>(bid) < cands.size()) {
            cands[static_cast<size_t>(bid)].excluded = true;
          }
        }
      }
      PlacementRequest req;
      req.order = PlacementRequest::Order::kLeastLoaded;
      req.avoid_suspected = config_.placement_avoid_suspected;
      req.exclude_suspected = config_.placement_avoid_suspected;
      req.wear_weight = config_.placement_wear_weight;
      req.exclude_nodes = &exclude_nodes;

      RepairPlan plan;
      plan.key = key;
      plan.ec = true;
      plan.survivors = positions;
      plan.epoch = h.repair_epoch;
      plan.has_crc = h.has_crc;
      plan.crc = h.crc;
      plan.frag_crcs = h.frag_crcs;
      size_t hole_i = 0;
      for (int bid : RankPlacement(cands, req)) {
        if (hole_i == holes.size()) break;
        // Targets picked earlier in this walk extend the exclusion set;
        // re-check here (RankPlacement saw only the survivors' nodes).
        const int node = bens[static_cast<size_t>(bid)]->node_id();
        if (node >= 0 && std::find(exclude_nodes.begin(), exclude_nodes.end(),
                                   node) != exclude_nodes.end()) {
          continue;
        }
        if (!bens[static_cast<size_t>(bid)]->ReserveBytes(fb).ok()) continue;
        plan.targets.push_back(bid);
        plan.target_positions.push_back(holes[hole_i++]);
        if (node >= 0) exclude_nodes.push_back(node);
      }
      if (!plan.targets.empty()) {
        std::vector<MetaShard::RepairTarget>& open =
            shard.repair_targets[key];
        for (int bid : plan.targets) open.push_back({bid, fb});
      }
      plan.incomplete = plan.targets.size() < holes.size();
      plans.push_back(std::move(plan));
      continue;
    }

    std::vector<int> survivors;
    std::vector<int> dead;
    for (int bid : recorded) {
      (bens[static_cast<size_t>(bid)]->alive() ? survivors : dead)
          .push_back(bid);
    }
    if (!dead.empty()) {
      // Log the stripped list (empty = lost) before touching any
      // benefactor state, so a crash mid-strip recovers to the truth
      // rather than a list still naming reclaimed replicas.
      WalRecord rec;
      rec.type = WalRecordType::kReplicas;
      rec.key = key;
      rec.replicas = survivors;
      LogAppend(clock, std::move(rec));
    }
    // The dead replicas' space bookkeeping is reclaimed; their data died
    // with the device.
    for (int bid : dead) {
      Benefactor* b = bens[static_cast<size_t>(bid)];
      b->ReleaseChunkReservation(1);
      (void)b->DeleteChunk(key);
    }
    if (survivors.empty()) {
      if (!recorded.empty()) {
        // Every replica is gone: record only the truth (no survivors) so
        // readers fail fast instead of retrying dead benefactors.
        lost_chunks_.Add(1);
        if (lost != nullptr) ++*lost;
        PublishReplicasLocked(h, {});
      }
      continue;
    }
    // Publish the stripped list immediately — readers stop trying dead
    // ids while the copy runs.
    if (!dead.empty()) PublishReplicasLocked(h, survivors);
    if (survivors.size() >= static_cast<size_t>(config_.replication)) {
      continue;  // healthy after stripping (stale report)
    }

    RepairPlan plan;
    plan.key = key;
    plan.survivors = survivors;
    // Target placement through the shared engine: least-loaded alive
    // benefactors that do not already hold a replica (ties broken by id
    // for determinism).  With placement_avoid_suspected on, benefactors
    // missing heartbeats are HARD-excluded (re-protection must not bet on
    // a flapping node) and so are the chunk's correlated-loss sources
    // (h.tainted — the devices that corrupted or diverged on these very
    // bytes).  The reservations race planners on other shards only
    // through the benefactors' CAS-bounded counters — a loser simply
    // plans incomplete and requeues.
    std::vector<PlacementCandidate> cands = BuildPlacementCandidates(
        bens, suspected.empty() ? nullptr : &suspected);
    for (int bid : survivors) {
      cands[static_cast<size_t>(bid)].excluded = true;
    }
    if (config_.placement_avoid_suspected) {
      for (int bid : h.tainted) {
        if (static_cast<size_t>(bid) < cands.size()) {
          cands[static_cast<size_t>(bid)].excluded = true;
        }
      }
    }
    PlacementRequest req;
    req.order = PlacementRequest::Order::kLeastLoaded;
    req.avoid_suspected = config_.placement_avoid_suspected;
    req.exclude_suspected = config_.placement_avoid_suspected;
    req.wear_weight = config_.placement_wear_weight;
    const size_t need =
        static_cast<size_t>(config_.replication) - survivors.size();
    for (int bid : RankPlacement(cands, req)) {
      if (plan.targets.size() == need) break;
      if (bens[static_cast<size_t>(bid)]->ReserveChunks(1).ok()) {
        plan.targets.push_back(bid);
      }
    }
    // Register the targets so the scrubber leaves the in-flight copies
    // alone; CommitRepair deregisters them.
    if (!plan.targets.empty()) {
      std::vector<MetaShard::RepairTarget>& open = shard.repair_targets[key];
      for (int bid : plan.targets) open.push_back({bid, config_.chunk_bytes});
    }
    plan.incomplete = plan.targets.size() < need;
    plan.epoch = h.repair_epoch;
    // Snapshot the authoritative checksum: the copy must be verified
    // against it before any target receives the bytes.
    plan.has_crc = h.has_crc;
    plan.crc = h.crc;
    plans.push_back(std::move(plan));
  }
  return plans;
}

Manager::RepairOutcome Manager::ExecuteRepairPlan(sim::VirtualClock& clock,
                                                  const RepairPlan& plan) {
  RepairOutcome out;
  out.plan = plan;
  if (plan.targets.empty()) return out;
  if (plan.ec) {
    // Fragment repair: fetch k VERIFIED surviving fragments to the
    // manager's node, decode + re-encode, then write each missing
    // fragment to its reserved target.  The stripe is never read in full
    // off one device — that is the repair-traffic saving the MTTR bench
    // measures (k fragments + the rebuilt ones vs one full replica copy).
    const uint32_t k = config_.ec_k;
    const uint32_t nf = config_.ec_fragments();
    const uint64_t fb = config_.ec_frag_bytes();
    NVM_CHECK(plan.survivors.size() == nf,
              "EC repair plan with malformed fragment map");
    std::vector<std::vector<uint8_t>> frags(nf);
    const int64_t start = clock.now();
    int64_t fetched = start;
    size_t good = 0;
    bool any_data = false;
    for (uint32_t pos = 0; pos < nf && good < k; ++pos) {
      const int bid = plan.survivors[pos];
      if (bid < 0) continue;
      Benefactor* b = BenefactorAt(bid);
      if (b == nullptr || !b->alive()) continue;
      // Fetches fork from the plan start and join at the max: the k reads
      // overlap in flight; a fallback read past a corrupt fragment simply
      // joins later.
      sim::VirtualClock fetch(start);
      std::vector<uint8_t> buf(fb);
      bool sparse = false;
      Status s = b->ReadFragment(fetch, plan.key, buf, &sparse,
                                 kTenantMaintenance);
      if (s.code() == ErrorCode::kCorrupt) {
        // The survivor failed its own read verification: quarantine at
        // commit, try the next fragment.
        out.corrupt_sources.push_back(bid);
        fetched = std::max(fetched, fetch.now());
        continue;
      }
      if (!s.ok()) continue;
      if (!sparse && plan.has_crc && plan.frag_crcs.size() == nf &&
          !config_.verify_reads) {
        // With verify_reads off the benefactor served unchecked bytes —
        // verify here against the authoritative per-fragment checksum.
        fetch.Advance(config_.checksum_ns(fb));
        if (Crc32c(buf.data(), buf.size()) != plan.frag_crcs[pos]) {
          out.corrupt_sources.push_back(bid);
          fetched = std::max(fetched, fetch.now());
          continue;
        }
      }
      if (!sparse) {
        cluster_.network().Transfer(fetch, b->node_id(), manager_node_, fb);
        any_data = true;
      }
      frags[pos] = std::move(buf);  // sparse reads back as zeros
      ++good;
      fetched = std::max(fetched, fetch.now());
    }
    clock.AdvanceTo(fetched);
    if (good < k) {
      out.failed = plan.targets;
      return out;
    }
    if (any_data) {
      // Decode + re-encode cost is modelled; the parity math is real, so
      // the rebuilt fragments are byte-exact.
      clock.Advance(config_.ec_encode_ns(config_.chunk_bytes));
      ErasureCodec codec(k, config_.ec_m);
      NVM_CHECK(codec.Reconstruct(frags),
                "k verified fragments failed to reconstruct");
    }
    const int64_t rebuilt = clock.now();
    int64_t done = rebuilt;
    for (size_t i = 0; i < plan.targets.size(); ++i) {
      const int bid = plan.targets[i];
      const uint32_t pos = plan.target_positions[i];
      Benefactor* b = BenefactorAt(bid);
      bool ok = b != nullptr && b->alive();
      sim::VirtualClock copy(rebuilt);
      if (ok && any_data) {
        b->AdmitTransfer(copy, kTenantMaintenance, fb, /*is_write=*/true, fb);
        cluster_.network().Transfer(copy, manager_node_, b->node_id(), fb);
        const uint32_t* crc = plan.has_crc && plan.frag_crcs.size() == nf
                                  ? &plan.frag_crcs[pos]
                                  : nullptr;
        ok = b->WriteFragment(copy, plan.key, frags[pos], crc,
                              kTenantMaintenance)
                 .ok();
      }
      // An all-sparse stripe has no bytes to move: the reservation alone
      // makes the fragment (it reads back as zeros, like the survivors).
      done = std::max(done, copy.now());
      (ok ? out.written : out.failed).push_back(bid);
    }
    clock.AdvanceTo(done);
    return out;
  }
  std::vector<uint8_t> buf(config_.chunk_bytes);
  // Read from the first survivor still answering whose bytes VERIFY (one
  // may have died — or rotted — since the plan was made).  Re-replication
  // must never seed targets from an unverified replica while a verified
  // one may exist.
  bool sparse = false;
  int src = -1;
  for (int bid : plan.survivors) {
    Benefactor* b = BenefactorAt(bid);
    if (b == nullptr) continue;
    Status s = b->ReadChunk(clock, plan.key, buf, &sparse,
                            kTenantMaintenance);
    if (s.code() == ErrorCode::kCorrupt) {
      // The survivor failed its own read verification: quarantine at
      // commit, try the next one.
      out.corrupt_sources.push_back(bid);
      continue;
    }
    if (!s.ok()) continue;
    if (!sparse && plan.has_crc && !config_.verify_reads) {
      // With verify_reads off the benefactor served unchecked bytes —
      // verify here against the authoritative checksum (and charge the
      // CPU; with verify_reads on the read already did both).
      clock.Advance(config_.checksum_ns(config_.chunk_bytes));
      if (Crc32c(buf.data(), buf.size()) != plan.crc) {
        out.corrupt_sources.push_back(bid);
        continue;
      }
    }
    src = bid;
    break;
  }
  if (src < 0) {
    out.failed = plan.targets;
    return out;
  }
  Bitmap all_pages(config_.pages_per_chunk());
  all_pages.SetAll();
  // Target copies fan out in parallel: fork a clock per target, join max.
  const int64_t start = clock.now();
  int64_t done = start;
  for (int bid : plan.targets) {
    Benefactor* b = BenefactorAt(bid);
    bool ok = b != nullptr && b->alive();
    sim::VirtualClock copy(start);
    if (ok && !sparse) {
      // Benefactor-to-benefactor move; the manager never touches the data.
      // The verified source bytes carry the authoritative checksum, so the
      // target stores it without recomputing.  Admit before the wire so a
      // repair storm queues behind the scheduler, not in front of it.
      b->AdmitTransfer(copy, kTenantMaintenance, config_.chunk_bytes,
                       /*is_write=*/true, config_.chunk_bytes);
      cluster_.network().Transfer(copy, BenefactorAt(src)->node_id(),
                                  b->node_id(), config_.chunk_bytes);
      ok = b->WritePages(copy, plan.key, all_pages, buf,
                         plan.has_crc ? &plan.crc : nullptr,
                         /*stored_crc=*/nullptr, kTenantMaintenance)
               .ok();
    }
    // A sparse chunk has no bytes to move: the reservation alone makes the
    // replica (it reads back as zeros, exactly like the survivors).
    done = std::max(done, copy.now());
    (ok ? out.written : out.failed).push_back(bid);
  }
  clock.AdvanceTo(done);
  return out;
}

uint64_t Manager::CommitRepair(sim::VirtualClock& clock,
                               const RepairOutcome& outcome, bool* requeue) {
  if (requeue != nullptr) *requeue = false;
  if (wal_ != nullptr) wal_->TriggerPoint(CrashPoint::kMidRepairCommit);
  const RepairPlan& plan = outcome.plan;
  const uint64_t res_bytes = ChunkResBytes(plan.ec);
  MetaShard& shard = shards_[shard_of(plan.key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  // The targets' fate is decided here: they stop being scrub-exempt.
  auto rt = shard.repair_targets.find(plan.key);
  if (rt != shard.repair_targets.end()) {
    for (int bid : plan.targets) {
      auto pos = std::find_if(
          rt->second.begin(), rt->second.end(),
          [bid](const MetaShard::RepairTarget& t) { return t.bid == bid; });
      if (pos != rt->second.end()) rt->second.erase(pos);
    }
    if (rt->second.empty()) shard.repair_targets.erase(rt);
  }
  auto undo_all = [&] {
    for (int bid : outcome.written) {
      UndoRepairTargetLocked(shard, plan.key, bid, res_bytes);
    }
    for (int bid : outcome.failed) {
      UndoRepairTargetLocked(shard, plan.key, bid, res_bytes);
    }
  };
  // Freed while the copy ran?  Nothing references the chunk any more.
  auto hit = shard.chunks.find(plan.key);
  if (hit == shard.chunks.end()) {
    undo_all();
    return 0;
  }
  ChunkHandle& h = *hit->second;
  // Rewritten (epoch moved), concurrently re-placed (list changed), or a
  // prepared write still in flight (its bytes could land on a survivor
  // after our read and never reach the targets)?  The bytes we moved are
  // stale — retry from scratch.
  const std::vector<int> current =
      *h.replicas.load(std::memory_order_acquire);
  if (h.repair_epoch != plan.epoch || current != plan.survivors ||
      shard.inflight_writers.contains(plan.key)) {
    undo_all();
    if (requeue != nullptr) *requeue = true;
    return 0;
  }
  // Survivors stay first: the primary keeps holding every written byte, so
  // reads served off it never observe the copy-window gap.  (EC: written
  // fragments slot back into their stable positions instead.)
  std::vector<int> fresh = plan.survivors;
  uint64_t recreated = 0;
  for (int bid : outcome.written) {
    Benefactor* b = BenefactorAt(bid);
    if (b != nullptr && b->alive()) {
      if (plan.ec) {
        const auto at = static_cast<size_t>(
            std::find(plan.targets.begin(), plan.targets.end(), bid) -
            plan.targets.begin());
        NVM_CHECK(at < plan.target_positions.size(),
                  "EC repair wrote an unplanned target");
        const uint32_t pos = plan.target_positions[at];
        NVM_CHECK(fresh[pos] == -1, "EC repair filling an occupied slot");
        fresh[pos] = bid;
        ec_fragments_repaired_.Add(1);
      } else {
        fresh.push_back(bid);
      }
      ++recreated;
    } else {
      // Died after the copy landed.
      UndoRepairTargetLocked(shard, plan.key, bid, res_bytes);
    }
  }
  for (int bid : outcome.failed) {
    UndoRepairTargetLocked(shard, plan.key, bid, res_bytes);
  }
  if (fresh != plan.survivors) {
    // Log the committed list before publishing it (log-before-publish).
    // An unchanged list (every target died/failed) appends nothing.
    WalRecord rec;
    rec.type = WalRecordType::kReplicas;
    rec.key = plan.key;
    rec.replicas = fresh;
    LogAppend(clock, std::move(rec));
  }
  PublishReplicasLocked(h, std::move(fresh));
  // Survivors caught serving corrupt bytes during the copy are stripped
  // now, under the same commit (the epoch check above guarantees no write
  // refreshed them in between); the shortened list needs another round.
  bool stripped = false;
  for (int bid : outcome.corrupt_sources) {
    if (QuarantineReplicaLocked(clock, shard, plan.key, bid)) stripped = true;
  }
  if (stripped && requeue != nullptr) *requeue = true;
  // A chunk quarantined earlier counts as healed once it is back at full
  // replication (EC: a hole-free fragment map) with verified copies only.
  if (h.corrupt_pending) {
    auto now = h.replicas.load(std::memory_order_acquire);
    const bool healed =
        h.ec ? std::none_of(now->begin(), now->end(),
                            [](int bid) { return bid < 0; })
             : now->size() >= static_cast<size_t>(config_.replication);
    if (healed) {
      h.corrupt_pending = false;
      corrupt_repaired_.Add(1);
    }
  }
  // Short of the plan (no readable survivor, or targets died mid-copy):
  // hand the key back so the caller retries promptly instead of waiting
  // for the next heartbeat declaration or scrub pass to rediscover it.
  if (requeue != nullptr && recreated < plan.targets.size()) *requeue = true;
  return recreated;
}

StatusOr<uint64_t> Manager::RepairReplication(sim::VirtualClock& clock,
                                              uint64_t* lost) {
  if (lost != nullptr) *lost = 0;
  // Synchronous, unthrottled driver over the plan/execute/commit engine —
  // no shard mutex is ever held across a data transfer.  A commit that
  // loses to a concurrent write or a mid-copy death asks for a requeue;
  // retry those keys a bounded number of rounds so a single unlucky race
  // does not leave the chunk degraded until the next sweep.
  std::vector<ChunkKey> keys = CollectUnderReplicated();
  uint64_t recreated = 0;
  for (int round = 0; round < 3 && !keys.empty(); ++round) {
    uint64_t lost_now = 0;
    std::vector<RepairPlan> plans = PlanRepairs(clock, keys, &lost_now);
    if (lost != nullptr) *lost += lost_now;
    std::vector<ChunkKey> retry;
    for (const RepairPlan& plan : plans) {
      RepairOutcome out = ExecuteRepairPlan(clock, plan);
      bool requeue = false;
      recreated += CommitRepair(clock, out, &requeue);
      if (requeue) retry.push_back(plan.key);
    }
    keys = std::move(retry);
  }
  return recreated;
}

Manager::ScrubResult Manager::ScrubOnce(sim::VirtualClock& clock) {
  ScrubResult result;
  // Per-file metadata scan cost, charged before any shard lock is taken
  // (the lock graph stays acyclic: ns_mu_ is never held across shard
  // acquisitions, and the charges land on the files' own lanes).
  std::vector<FileId> fids;
  {
    std::shared_lock<std::shared_mutex> lock(ns_mu_);
    fids.reserve(files_.size());
    for (const auto& [fid, meta] : files_) fids.push_back(fid);
  }
  std::sort(fids.begin(), fids.end());
  for (FileId fid : fids) ChargeOp(clock, FileLane(fid));

  // Stop-the-world metadata pass: every shard mutex held, in ascending
  // order.  Reservations only move under some shard mutex, so the drift
  // comparison below is race-free.
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(meta_shards_);
  for (MetaShard& shard : shards_) held.emplace_back(shard.mu);

  // Pass 1 — the authoritative replica map, straight from the shard chunk
  // tables (every live chunk has exactly one handle there).
  std::unordered_map<ChunkKey, const ChunkHandle*, ChunkKeyHash> placed;
  std::unordered_map<ChunkKey, std::shared_ptr<const std::vector<int>>,
                     ChunkKeyHash>
      lists;
  for (const MetaShard& shard : shards_) {
    for (const auto& [key, h] : shard.chunks) {
      placed.try_emplace(key, h.get());
      lists.try_emplace(key, h->replicas.load(std::memory_order_acquire));
    }
  }
  // Pass 2 — reconcile each alive benefactor against the map.  Dead ones
  // are the repair path's business, not the scrubber's.
  if (wal_ != nullptr) wal_->TriggerPoint(CrashPoint::kMidScrub);
  const std::vector<Benefactor*> bens = SnapshotBenefactors();
  for (size_t i = 0; i < bens.size(); ++i) {
    Benefactor* b = bens[i];
    // One metadata round-trip fetches the benefactor's stored-chunk set.
    ChargeOp(clock, i % meta_shards_);
    cluster_.network().Transfer(clock, manager_node_, b->node_id(),
                                config_.meta_request_bytes);
    cluster_.network().Transfer(clock, b->node_id(), manager_node_,
                                config_.meta_response_bytes);
    if (!b->alive()) continue;
    // Expected reservation in BYTES: a replica reserves a full chunk, an
    // erasure-coded fragment one k-th of it.
    uint64_t expected = 0;
    for (const auto& [key, list] : lists) {
      if (std::find(list->begin(), list->end(), static_cast<int>(i)) !=
          list->end()) {
        expected += ChunkResBytes(placed.at(key)->ec);
      }
    }
    // In-flight repair targets hold reservations (and possibly data) the
    // replica lists do not name yet; their commit will settle them.
    for (const MetaShard& shard : shards_) {
      for (const auto& [key, targets] : shard.repair_targets) {
        for (const MetaShard::RepairTarget& t : targets) {
          if (t.bid == static_cast<int>(i)) expected += t.bytes;
        }
      }
    }
    for (const ChunkKey& key : b->StoredChunkKeys()) {
      auto it = lists.find(key);
      const bool reachable =
          it != lists.end() &&
          std::find(it->second->begin(), it->second->end(),
                    static_cast<int>(i)) != it->second->end();
      if (!reachable &&
          !IsRepairTargetLocked(shards_[shard_of(key)], key,
                                static_cast<int>(i))) {
        // Orphan: stored but absent from the replica list — the leavings
        // of an unlink against a then-dead benefactor or an abandoned
        // repair copy.  No reader ever consults it; reclaim the space.
        (void)b->DeleteChunk(key);
        ++result.orphans_deleted;
      }
    }
    // Reservation drift: reserved bytes must equal the bytes the metadata
    // places here plus the in-flight repair targets.  Fixes are reported
    // in chunk-slot units (rounded up) for continuity with the historic
    // counter.
    const uint64_t reserved = b->bytes_used();
    if (reserved > expected) {
      b->ReleaseBytes(reserved - expected);
      result.reservation_fixes +=
          CeilDiv(reserved - expected, config_.chunk_bytes);
    } else if (reserved < expected) {
      (void)b->ReserveBytes(expected - reserved);
      result.reservation_fixes +=
          CeilDiv(expected - reserved, config_.chunk_bytes);
    }
  }
  // Pass 3 — re-find under-replicated chunks the report path missed.
  for (const auto& [key, list] : lists) {
    if (list->empty()) continue;  // lost
    bool degraded = false;
    if (placed.at(key)->ec) {
      size_t live = 0;
      for (int bid : *list) {
        if (bid < 0) {
          degraded = true;
        } else if (bens[static_cast<size_t>(bid)]->alive()) {
          ++live;
        } else {
          degraded = true;
        }
      }
      if (live < config_.ec_k) continue;  // lost: nothing to repair
    } else {
      degraded = list->size() < static_cast<size_t>(config_.replication);
      for (int bid : *list) {
        if (!bens[static_cast<size_t>(bid)]->alive()) degraded = true;
      }
    }
    if (degraded) result.under_replicated.push_back(key);
  }
  // Sorted so the requeue order does not depend on shard count or hash
  // iteration order.
  std::sort(result.under_replicated.begin(), result.under_replicated.end(),
            KeyLess);
  return result;
}

Manager::VerifyResult Manager::VerifyScrub(sim::VirtualClock& clock,
                                           uint64_t max_bytes) {
  VerifyResult result;
  if (!config_.scrub_verify || max_bytes == 0) return result;
  // One sweep at a time: verify_mu_ guards the inter-shard cursor and is
  // ordered strictly before the shard mutexes.
  std::lock_guard<std::mutex> sweep(verify_mu_);
  const size_t start_lane = verify_shard_ % meta_shards_;

  struct Candidate {
    ChunkKey key;
    std::vector<int> replicas;
    uint32_t crc = 0;
    uint64_t epoch = 0;
    bool ec = false;
    std::vector<uint32_t> frag_crcs;  // positional, EC only
  };

  // Phase 1 (shard mutexes, one at a time) — snapshot the next cursor
  // batch: placed chunks with a recorded checksum and no write in flight,
  // shards in index order and sorted keys within each shard, until the
  // byte budget is covered (at least one chunk always makes the batch so
  // tiny budgets still progress).
  std::vector<Candidate> batch;
  ChargeOp(clock, start_lane);  // batch lookup cost
  {
    uint64_t planned = 0;
    bool stopped = false;
    for (size_t s = verify_shard_; s < meta_shards_ && !stopped; ++s) {
      MetaShard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mu);
      std::vector<ChunkKey> keys;
      keys.reserve(shard.chunks.size());
      for (const auto& [key, h] : shard.chunks) keys.push_back(key);
      std::sort(keys.begin(), keys.end(), KeyLess);
      for (const ChunkKey& key : keys) {
        if (shard.verify_cursor.has_value() &&
            !KeyLess(*shard.verify_cursor, key)) {
          continue;  // at or before the cursor: already covered this lap
        }
        const ChunkHandle& h = *shard.chunks.at(key);
        auto list = h.replicas.load(std::memory_order_acquire);
        if (list->empty()) continue;  // lost: nothing to read
        if (shard.inflight_writers.contains(key)) continue;  // in flux
        if (!h.has_crc) continue;  // never written: nothing to rot
        if (h.ec && h.frag_crcs.size() != list->size()) continue;
        uint64_t cost;
        if (h.ec) {
          const auto live = static_cast<uint64_t>(std::count_if(
              list->begin(), list->end(), [](int bid) { return bid >= 0; }));
          cost = config_.ec_frag_bytes() * live;
        } else {
          cost = config_.chunk_bytes * list->size();
        }
        if (!batch.empty() && planned + cost > max_bytes) {
          stopped = true;
          break;
        }
        planned += cost;
        Candidate c;
        c.key = key;
        c.replicas = *list;
        c.crc = h.crc;
        c.epoch = h.repair_epoch;
        c.ec = h.ec;
        c.frag_crcs = h.frag_crcs;
        batch.push_back(std::move(c));
        shard.verify_cursor = key;
      }
      if (stopped) {
        verify_shard_ = s;  // resume this shard at its cursor
      } else {
        shard.verify_cursor.reset();  // shard fully covered this lap
      }
    }
    if (!stopped) {
      result.wrapped = true;  // covered the tail of the keyspace
      verify_shard_ = 0;
    }
  }

  // Phase 2 (no shard mutex) — verify every alive replica benefactor-
  // locally: one request/verdict round-trip each; the chunk bytes never
  // leave the benefactor's node.
  uint32_t zero_crc = 0;
  uint32_t zero_frag_crc = 0;
  if (!batch.empty()) {
    const std::vector<uint8_t> zeros(config_.chunk_bytes, 0);
    zero_crc = Crc32c(zeros.data(), zeros.size());
    if (config_.ec()) {
      zero_frag_crc = Crc32c(zeros.data(), config_.ec_frag_bytes());
    }
  }
  struct Mismatch {
    size_t cand;
    int bid;
  };
  std::vector<Mismatch> mismatches;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Candidate& c = batch[i];
    ++result.chunks_checked;
    for (size_t ri = 0; ri < c.replicas.size(); ++ri) {
      const int bid = c.replicas[ri];
      if (bid < 0) continue;  // EC hole: repair's business
      Benefactor* b = BenefactorAt(bid);
      if (b == nullptr || !b->alive()) continue;  // repair's business
      // Each EC fragment verifies against ITS positional checksum; a
      // replica against the full-image one.
      const uint32_t want = c.ec ? c.frag_crcs[ri] : c.crc;
      const uint32_t want_zero = c.ec ? zero_frag_crc : zero_crc;
      const uint64_t stored_bytes = ChunkResBytes(c.ec);
      cluster_.network().Transfer(clock, manager_node_, b->node_id(),
                                  config_.meta_request_bytes);
      bool sparse = false;
      Status s = b->VerifyChunk(clock, c.key, want, &sparse);
      cluster_.network().Transfer(clock, b->node_id(), manager_node_,
                                  config_.meta_response_bytes);
      if (s.code() == ErrorCode::kCorrupt) {
        result.bytes_checked += stored_bytes;
        mismatches.push_back({i, bid});
      } else if (s.ok()) {
        if (sparse) {
          // A replica with no stored bytes reads as zeros: that is silent
          // corruption too unless the chunk really is all zeros.
          if (want != want_zero) mismatches.push_back({i, bid});
        } else {
          result.bytes_checked += stored_bytes;
        }
      }
      // Unavailable: died between phases — the heartbeat/repair path owns
      // dead replicas.
    }
  }

  // Phase 3 (shard mutex per mismatch) — quarantine confirmed mismatches,
  // dropping any whose chunk was rewritten or repaired while the
  // verification ran (their verdicts describe bytes that no longer exist).
  if (!mismatches.empty()) {
    ChargeOp(clock, start_lane);
    // Our own quarantines bump the epoch by one each; account for them so
    // a chunk with several corrupt replicas sheds all of them in one pass.
    std::unordered_map<ChunkKey, uint64_t, ChunkKeyHash> own_bumps;
    for (const Mismatch& m : mismatches) {
      const Candidate& c = batch[m.cand];
      MetaShard& shard = shards_[shard_of(c.key)];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto hit = shard.chunks.find(c.key);
      const uint64_t epoch =
          hit == shard.chunks.end() ? 0 : hit->second->repair_epoch;
      if (hit == shard.chunks.end() ||
          epoch != c.epoch + own_bumps[c.key] ||
          shard.inflight_writers.contains(c.key)) {
        ++result.skipped;
        continue;
      }
      if (QuarantineReplicaLocked(clock, shard, c.key, m.bid)) {
        ++own_bumps[c.key];
        ++result.corrupt_found;
        auto now = hit->second->replicas.load(std::memory_order_acquire);
        // Requeue only when a repair can still help: a surviving replica,
        // or (EC) at least k surviving fragments to reconstruct from.
        bool repairable = !now->empty();
        if (c.ec) {
          const auto live = static_cast<size_t>(std::count_if(
              now->begin(), now->end(), [](int bid) { return bid >= 0; }));
          repairable = live >= config_.ec_k;
        }
        if (repairable) {
          result.quarantined.push_back(c.key);
        }
      } else {
        ++result.skipped;
      }
    }
  }
  return result;
}

void Manager::AttachMaintenance(MaintenanceService* service) {
  // Exclusive: detaching blocks until every hook call already holding the
  // shared lock has returned, so ~MaintenanceService cannot destroy the
  // service under a client thread mid-call.
  std::unique_lock<std::shared_mutex> lock(hook_mu_);
  maintenance_ = service;
}

void Manager::ReportDegraded(const ChunkKey& key, int64_t now_ns) {
  std::shared_lock<std::shared_mutex> lock(hook_mu_);
  if (maintenance_ != nullptr) maintenance_->ReportDegraded(key, now_ns);
}

void Manager::ReportCorrupt(sim::VirtualClock& clock, const ChunkKey& key,
                            int bid) {
  bool degraded = false;
  {
    MetaShard& shard = shards_[shard_of(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (QuarantineReplicaLocked(clock, shard, key, bid)) {
      auto it = shard.chunks.find(key);
      if (it != shard.chunks.end()) {
        auto now = it->second->replicas.load(std::memory_order_acquire);
        if (it->second->ec) {
          // Repairable only while k fragments survive to reconstruct from.
          const auto live = static_cast<size_t>(std::count_if(
              now->begin(), now->end(), [](int b) { return b >= 0; }));
          degraded = live >= config_.ec_k;
        } else {
          degraded = !now->empty();
        }
      }
    }
  }
  // Queue a repair only when a surviving replica can seed the
  // re-replication (a fully corrupt chunk is lost, not degraded).
  if (degraded) ReportDegraded(key, clock.now());
}

void Manager::ReportCorrupt(const ChunkKey& key, int bid, int64_t now_ns) {
  // Legacy entry point: same semantics on a throwaway clock pinned at
  // now_ns (identical when no WAL is attached — nothing charges it).
  sim::VirtualClock wal_clock(now_ns);
  ReportCorrupt(wal_clock, key, bid);
}

bool Manager::LookupChecksum(const ChunkKey& key, uint32_t* crc) const {
  const MetaShard& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chunks.find(key);
  if (it == shard.chunks.end() || !it->second->has_crc) return false;
  *crc = it->second->crc;
  return true;
}

void Manager::MaintenanceTick(int64_t now_ns) {
  std::shared_lock<std::shared_mutex> lock(hook_mu_);
  if (maintenance_ != nullptr) maintenance_->Tick(now_ns);
}

StatusOr<uint64_t> Manager::Decommission(sim::VirtualClock& clock, int id) {
  const std::vector<Benefactor*> bens = SnapshotBenefactors();
  if (id < 0 || static_cast<size_t>(id) >= bens.size()) {
    return NotFound("benefactor " + std::to_string(id));
  }
  Benefactor* leaving = bens[static_cast<size_t>(id)];
  if (!leaving->alive()) {
    return FailedPrecondition("cannot drain a dead benefactor");
  }

  // Rare, operator-driven: hold every shard mutex for the duration so the
  // placement rewrite is atomic against the whole metadata plane.
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(meta_shards_);
  for (MetaShard& shard : shards_) held.emplace_back(shard.mu);

  // Each chunk has exactly one handle; visit them in key order so the
  // migration sequence (and its virtual-time trace) is deterministic.
  std::vector<ChunkHandle*> handles;
  for (const MetaShard& shard : shards_) {
    for (const auto& [key, h] : shard.chunks) handles.push_back(h.get());
  }
  std::sort(handles.begin(), handles.end(),
            [](const ChunkHandle* a, const ChunkHandle* b) {
              return KeyLess(a->key, b->key);
            });

  uint64_t migrated = 0;
  std::vector<uint8_t> buf(config_.chunk_bytes);
  Bitmap all_pages(config_.pages_per_chunk());
  all_pages.SetAll();

  for (ChunkHandle* h : handles) {
    const std::vector<int> current =
        *h->replicas.load(std::memory_order_acquire);
    auto pos = std::find(current.begin(), current.end(), id);
    if (pos == current.end()) continue;
    const bool ec = h->ec;
    const uint64_t move_bytes = ChunkResBytes(ec);
    // Pick a destination: the next alive benefactor with space that does
    // not already hold a replica of this chunk — and, for an EC fragment,
    // whose node hosts no OTHER fragment of the stripe (the failure-domain
    // spread survives the migration).
    int dst = -1;
    for (size_t scan = 1; scan < bens.size(); ++scan) {
      const size_t cand = (static_cast<size_t>(id) + scan) % bens.size();
      Benefactor* b = bens[cand];
      if (!b->alive() || static_cast<int>(cand) == id) continue;
      if (std::find(current.begin(), current.end(),
                    static_cast<int>(cand)) != current.end()) {
        continue;
      }
      if (ec && b->node_id() >= 0) {
        bool colocated = false;
        for (int other : current) {
          if (other < 0 || other == id) continue;
          if (bens[static_cast<size_t>(other)]->node_id() == b->node_id()) {
            colocated = true;
            break;
          }
        }
        if (colocated) continue;
      }
      if (b->ReserveBytes(move_bytes).ok()) {
        dst = static_cast<int>(cand);
        break;
      }
    }
    if (dst < 0) {
      return OutOfSpace("no destination for chunk " + h->key.ToString());
    }
    // Move the data benefactor-to-benefactor (read + network hop + write),
    // like the paper's re-configuration path would.
    bool sparse = false;
    if (ec) {
      const size_t frag_pos = static_cast<size_t>(pos - current.begin());
      std::vector<uint8_t> frag(move_bytes);
      NVM_RETURN_IF_ERROR(leaving->ReadFragment(clock, h->key, frag,
                                                &sparse, kTenantMaintenance));
      if (!sparse) {
        bens[static_cast<size_t>(dst)]->AdmitTransfer(
            clock, kTenantMaintenance, move_bytes, /*is_write=*/true,
            move_bytes);
        cluster_.network().Transfer(clock, leaving->node_id(),
                                    bens[static_cast<size_t>(dst)]->node_id(),
                                    move_bytes);
        // The migrated fragment keeps its authoritative checksum.
        const uint32_t* crc =
            h->has_crc && h->frag_crcs.size() == current.size()
                ? &h->frag_crcs[frag_pos]
                : nullptr;
        NVM_RETURN_IF_ERROR(bens[static_cast<size_t>(dst)]->WriteFragment(
            clock, h->key, frag, crc, kTenantMaintenance));
      }
    } else {
      NVM_RETURN_IF_ERROR(leaving->ReadChunk(clock, h->key, buf, &sparse,
                                             kTenantMaintenance));
      if (!sparse) {
        bens[static_cast<size_t>(dst)]->AdmitTransfer(
            clock, kTenantMaintenance, config_.chunk_bytes,
            /*is_write=*/true, config_.chunk_bytes);
        cluster_.network().Transfer(clock, leaving->node_id(),
                                    bens[static_cast<size_t>(dst)]->node_id(),
                                    config_.chunk_bytes);
        // The migrated bytes keep their authoritative checksum.
        NVM_RETURN_IF_ERROR(bens[static_cast<size_t>(dst)]->WritePages(
            clock, h->key, all_pages, buf, h->has_crc ? &h->crc : nullptr,
            /*stored_crc=*/nullptr, kTenantMaintenance));
      }
    }
    std::vector<int> rewritten = current;
    rewritten[static_cast<size_t>(pos - current.begin())] = dst;
    // Log the rewritten placement BEFORE dropping the leaving replica's
    // copy: a crash in between then recovers to the new list (the copy on
    // dst is already in place), never to a list naming deleted data.
    WalRecord rec;
    rec.type = WalRecordType::kReplicas;
    rec.key = h->key;
    rec.replicas = rewritten;
    LogAppend(clock, std::move(rec));
    (void)leaving->DeleteChunk(h->key);
    leaving->ReleaseBytes(move_bytes);
    PublishReplicasLocked(*h, std::move(rewritten));
    ++migrated;
  }
  leaving->Kill();  // retired: no longer schedulable
  return migrated;
}

StatusOr<FileId> Manager::CreateFile(sim::VirtualClock& clock,
                                     const std::string& name) {
  ChargeOp(clock, NameLane(name));
  std::unique_lock<std::shared_mutex> lock(ns_mu_);
  if (names_.contains(name)) {
    return AlreadyExists("file '" + name + "' already exists");
  }
  const FileId id = next_file_id_++;
  // Log under ns_mu_ exclusive, before the maps change: namespace records
  // are totally ordered by the namespace lock.
  WalRecord rec;
  rec.type = WalRecordType::kCreateFile;
  rec.file_id = id;
  rec.name = name;
  LogAppend(clock, std::move(rec));
  names_[name] = id;
  auto meta = std::make_shared<FileMeta>();
  meta->name = name;
  meta->stripe_cursor = stripe_cursor_;
  // Stagger striping start points so many small files still spread load.
  const size_t n = num_benefactors();
  if (n > 0) stripe_cursor_ = (stripe_cursor_ + 1) % n;
  files_[id] = std::move(meta);
  return id;
}

StatusOr<FileId> Manager::LookupFile(sim::VirtualClock& clock,
                                     const std::string& name) {
  ChargeOp(clock, NameLane(name));
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  auto it = names_.find(name);
  if (it == names_.end()) return NotFound("no file named '" + name + "'");
  return it->second;
}

StatusOr<FileInfo> Manager::Stat(sim::VirtualClock& clock, FileId id) {
  ChargeOp(clock, FileLane(id));
  std::shared_ptr<FileMeta> meta = FindFile(id);
  if (meta == nullptr) return NotFound("file id " + std::to_string(id));
  std::shared_lock<std::shared_mutex> lock(meta->mu);
  FileInfo info;
  info.id = id;
  info.name = meta->name;
  info.size = meta->size;
  info.num_chunks = meta->chunks.size();
  return info;
}

void Manager::UnrefChunkLocked(MetaShard& shard, ChunkHandle& h) {
  NVM_CHECK(h.refcount > 0, "unref of untracked chunk");
  if (--h.refcount == 0) {
    auto list = h.replicas.load(std::memory_order_acquire);
    for (int bid : *list) {
      if (bid < 0) continue;  // EC hole: nothing stored, nothing reserved
      Benefactor* b = BenefactorAt(bid);
      (void)b->DeleteChunk(h.key);
      b->ReleaseBytes(ChunkResBytes(h.ec));
    }
    // The handle (and with it epoch/checksum/corruption state) dies here;
    // an open write fence or reserved repair target survives in the shard
    // side maps until its CompleteWrite / CommitRepair settles it.
    shard.chunks.erase(h.key);
  }
}

Status Manager::Unlink(sim::VirtualClock& clock, FileId id) {
  ChargeOp(clock, FileLane(id));
  std::shared_ptr<FileMeta> meta;
  {
    std::unique_lock<std::shared_mutex> lock(ns_mu_);
    auto it = files_.find(id);
    if (it == files_.end()) return NotFound("file id " + std::to_string(id));
    meta = it->second;
    // Log before the namespace mutation AND before any chunk data is
    // dropped below: if the crash lands on this very append, recovery
    // keeps the file but may find unreferenced data already gone — chunks
    // surface as lost, never as wrong bytes.
    WalRecord rec;
    rec.type = WalRecordType::kUnlink;
    rec.file_id = id;
    LogAppend(clock, std::move(rec));
    names_.erase(meta->name);
    files_.erase(it);
  }
  std::unique_lock<std::shared_mutex> flock(meta->mu);
  for (const std::shared_ptr<ChunkHandle>& h : meta->chunks) {
    MetaShard& shard = shards_[shard_of(h->key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    UnrefChunkLocked(shard, *h);
  }
  // Late resolvers still holding the meta see an empty file (OutOfRange),
  // never a freed chunk.
  meta->chunks.clear();
  return OkStatus();
}

std::vector<char> Manager::SuspectedBenefactors() const {
  std::shared_lock<std::shared_mutex> lock(hook_mu_);
  if (maintenance_ == nullptr) return {};
  return maintenance_->SuspectedSnapshot();
}

std::vector<PlacementCandidate> Manager::BuildPlacementCandidates(
    const std::vector<Benefactor*>& bens,
    const std::vector<char>* suspected) const {
  const bool want_wear = config_.placement_wear_weight > 0.0;
  std::vector<PlacementCandidate> cands(bens.size());
  for (size_t i = 0; i < bens.size(); ++i) {
    Benefactor* b = bens[i];
    PlacementCandidate& c = cands[i];
    c.bid = static_cast<int>(i);
    c.alive = b->alive();
    c.bytes_free = b->bytes_free();
    c.node = b->node_id();
    if (suspected != nullptr && i < suspected->size()) {
      c.suspected = (*suspected)[i] != 0;
    }
    // The wear read is gated on the knob so the knob-off store never
    // consults the device's erase accounting.
    if (want_wear) c.wear = b->ssd().wear_fraction();
  }
  return cands;
}

Status Manager::Fallocate(sim::VirtualClock& clock, FileId id,
                          uint64_t size, int client_node) {
  ChargeOp(clock, FileLane(id));
  std::shared_ptr<FileMeta> file = FindFile(id);
  if (file == nullptr) return NotFound("file id " + std::to_string(id));
  // Reliability signal for the placement engine, snapshotted before the
  // file lock (hook_mu_ is never taken under a file or shard mutex).
  std::vector<char> suspected;
  if (config_.placement_avoid_suspected) suspected = SuspectedBenefactors();
  std::unique_lock<std::shared_mutex> flock(file->mu);
  FileMeta& meta = *file;

  if (!meta.redundancy_decided) {
    // The file's redundancy mode is fixed at its first Fallocate from the
    // store-wide config: a file never mixes replicated and erasure-coded
    // chunks.  Erasure is journaled BEFORE any kExtend of the file so
    // replay rebuilds positional fragment maps, not replica lists; the
    // default (replicate) appends nothing — knob-off WAL streams stay
    // byte-identical.
    meta.redundancy_decided = true;
    meta.ec = config_.ec();
    if (meta.ec && wal_ != nullptr) {
      WalRecord rec;
      rec.type = WalRecordType::kRedundancy;
      rec.file_id = id;
      rec.mode = static_cast<uint8_t>(RedundancyMode::kErasure);
      LogAppend(clock, std::move(rec));
    }
  }

  const std::vector<Benefactor*> bens = SnapshotBenefactors();
  const uint64_t want_chunks = CeilDiv(size, config_.chunk_bytes);
  const size_t n = bens.size();
  if (want_chunks > meta.chunks.size() && n == 0) {
    return Unavailable("no benefactors registered");
  }
  // The whole extension logs as ONE kExtend record, appended while the
  // file mutex is still held (below): resolves of the new slots need that
  // mutex, so nothing observes the placements before their record exists.
  std::vector<WalPlacement> wal_placements;
  while (meta.chunks.size() < want_chunks) {
    // First choice per the stripe policy; the engine then ranks the
    // remaining alive benefactors (rotation order, suspected-last and
    // least-worn-first under the placement knobs) and the try-reserve
    // walk places replicas on consecutive distinct eligible ones.
    ChunkKey key;
    key.origin_file = id;
    key.index = static_cast<uint32_t>(meta.chunks.size());
    key.version = 0;
    // The candidate snapshot, reservations (and any rollback) and the
    // chunk insert all happen under the chunk's shard mutex: the
    // scrubber's drift reconciliation and Decommission hold every shard
    // mutex, so neither can observe a reservation without its chunk, nor
    // retire a benefactor between the alive() check and publication.
    MetaShard& shard = shards_[shard_of(key)];
    std::unique_lock<std::mutex> slock(shard.mu);
    const std::vector<PlacementCandidate> cands = BuildPlacementCandidates(
        bens, suspected.empty() ? nullptr : &suspected);
    const uint64_t member_bytes = ChunkResBytes(meta.ec);
    const size_t want_members =
        meta.ec ? config_.ec_fragments()
                : static_cast<size_t>(config_.replication);
    const size_t start =
        ChooseStripeStart(cands, config_.stripe_policy, meta.stripe_cursor,
                          client_node, member_bytes);
    PlacementRequest req;
    req.order = PlacementRequest::Order::kRotation;
    req.start = start;
    // Soft avoidance only: a suspected benefactor ranks last but stays
    // eligible — allocation must not fail just because a node flaps.
    req.avoid_suspected = config_.placement_avoid_suspected;
    req.wear_weight = config_.placement_wear_weight;
    std::vector<int> replicas;
    // Erasure stripes spread HARD over node-level failure domains: no two
    // fragments of one stripe may share a node (a node failure must cost
    // at most one fragment), enforced here even under capacity pressure —
    // a stripe that cannot spread fails, it never silently co-locates.
    std::vector<int> used_nodes;
    for (int bid : RankPlacement(cands, req)) {
      if (replicas.size() == want_members) break;
      if (meta.ec) {
        const int node = bens[static_cast<size_t>(bid)]->node_id();
        if (node >= 0 && std::find(used_nodes.begin(), used_nodes.end(),
                                   node) != used_nodes.end()) {
          continue;
        }
        if (!bens[static_cast<size_t>(bid)]->ReserveBytes(member_bytes)
                 .ok()) {
          continue;
        }
        replicas.push_back(bid);
        if (node >= 0) used_nodes.push_back(node);
      } else {
        if (!bens[static_cast<size_t>(bid)]->ReserveChunks(1).ok()) continue;
        replicas.push_back(bid);
      }
    }
    if (replicas.size() < want_members) {
      // Roll back partial placement.
      for (int bid : replicas) {
        bens[static_cast<size_t>(bid)]->ReleaseBytes(member_bytes);
      }
      // The chunks placed by EARLIER loop iterations stay (they are live
      // in the file already): log them with the unchanged logical size so
      // the durable image matches what the caller can now read.
      if (wal_ != nullptr && !wal_placements.empty()) {
        WalRecord rec;
        rec.type = WalRecordType::kExtend;
        rec.file_id = id;
        rec.size = meta.size;
        rec.placements = std::move(wal_placements);
        LogAppend(clock, std::move(rec));
      }
      // Nothing alive at all is unavailability, not exhaustion — the old
      // silent stripe-cursor fallback reported it as out-of-space.
      bool any_alive = false;
      for (const PlacementCandidate& c : cands) any_alive |= c.alive;
      if (!any_alive) {
        return Unavailable("no alive benefactor for chunk " +
                           std::to_string(meta.chunks.size()) + " of '" +
                           meta.name + "'");
      }
      if (meta.ec) {
        // The spread constraint could not be met (too few distinct alive
        // failure domains with a fragment of space): unavailability, not
        // exhaustion — adding capacity to an existing domain won't help.
        return Unavailable(
            "erasure stripe needs " + std::to_string(want_members) +
            " distinct failure domains for chunk " +
            std::to_string(meta.chunks.size()) + " of '" + meta.name + "'");
      }
      return OutOfSpace("aggregate store out of space at chunk " +
                        std::to_string(meta.chunks.size()) + " of '" +
                        meta.name + "'");
    }
    meta.stripe_cursor = (meta.stripe_cursor + 1) % n;
    auto h = std::make_shared<ChunkHandle>(key);
    h->refcount = 1;
    h->ec = meta.ec;
    if (wal_ != nullptr) {
      wal_placements.push_back(WalPlacement{
          key.index, key, replicas});
    }
    PublishReplicasLocked(*h, std::move(replicas));
    NVM_CHECK(shard.chunks.emplace(key, h).second,
              "fallocate key collision");
    slock.unlock();
    meta.chunks.push_back(std::move(h));
  }
  if (wal_ != nullptr &&
      (!wal_placements.empty() || size > meta.size)) {
    WalRecord rec;
    rec.type = WalRecordType::kExtend;
    rec.file_id = id;
    rec.size = std::max(meta.size, size);
    rec.placements = std::move(wal_placements);
    LogAppend(clock, std::move(rec));
  }
  meta.size = std::max(meta.size, size);
  return OkStatus();
}

StatusOr<ReadLocation> Manager::GetReadLocation(sim::VirtualClock& clock,
                                                FileId id,
                                                uint32_t chunk_index) {
  ChargeOp(clock, FileLane(id));
  std::shared_ptr<FileMeta> meta = FindFile(id);
  if (meta == nullptr) return NotFound("file id " + std::to_string(id));
  // The fast path: a shared file lock plus one atomic snapshot load — no
  // shard mutex.
  std::shared_lock<std::shared_mutex> lock(meta->mu);
  if (chunk_index >= meta->chunks.size()) {
    return OutOfRange("chunk " + std::to_string(chunk_index) +
                      " beyond EOF of '" + meta->name + "'");
  }
  const ChunkHandle& h = *meta->chunks[chunk_index];
  return ReadLocation{h.key, *h.replicas.load(std::memory_order_acquire),
                      h.ec};
}

StatusOr<std::vector<ReadLocation>> Manager::GetReadLocations(
    sim::VirtualClock& clock, FileId id, uint32_t first, uint32_t count) {
  ChargeOp(clock, FileLane(id));
  std::shared_ptr<FileMeta> meta = FindFile(id);
  if (meta == nullptr) return NotFound("file id " + std::to_string(id));
  std::shared_lock<std::shared_mutex> lock(meta->mu);
  const auto& chunks = meta->chunks;
  if (first >= chunks.size()) {
    return OutOfRange("chunk " + std::to_string(first) + " beyond EOF of '" +
                      meta->name + "'");
  }
  const auto n =
      static_cast<uint32_t>(std::min<uint64_t>(count, chunks.size() - first));
  std::vector<ReadLocation> locs;
  locs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const ChunkHandle& h = *chunks[first + i];
    locs.push_back(ReadLocation{
        h.key, *h.replicas.load(std::memory_order_acquire), h.ec});
  }
  return locs;
}

StatusOr<WriteLocation> Manager::PrepareWriteSlot(
    sim::VirtualClock& clock, FileId id, FileMeta& meta, uint32_t chunk_index,
    const std::vector<char>* suspected) {
  if (chunk_index >= meta.chunks.size()) {
    return OutOfRange("chunk " + std::to_string(chunk_index) +
                      " beyond EOF of '" + meta.name + "'");
  }
  std::shared_ptr<ChunkHandle>& slot = meta.chunks[chunk_index];
  // The COW outcome (version+1) may hash to a different shard than the
  // current version: lock both up front, ascending, so the refcount check
  // and the fresh-handle insert happen under one consistent lock set.
  ChunkKey fresh_key = slot->key;
  ++fresh_key.version;
  const size_t so = shard_of(slot->key);
  const size_t sf = shard_of(fresh_key);
  std::unique_lock<std::mutex> first(shards_[std::min(so, sf)].mu);
  std::unique_lock<std::mutex> second;
  if (so != sf) {
    second = std::unique_lock<std::mutex>(shards_[std::max(so, sf)].mu);
  }
  MetaShard& old_shard = shards_[so];
  MetaShard& fresh_shard = shards_[sf];
  ChunkHandle& h = *slot;

  WriteLocation loc;
  if (h.refcount == 1) {
    // Sole owner: write in place.  Bump the repair epoch — a repair copy
    // planned before this write would publish stale bytes, and the moved
    // epoch makes its commit fail and retry.  The writer count fences off
    // repair commits until CompleteWrite: the data lands outside the
    // shard mutex, so until then any repair copy may be missing it.
    ++h.repair_epoch;
    ++old_shard.inflight_writers[h.key];
    loc.key = h.key;
    loc.benefactors = *h.replicas.load(std::memory_order_acquire);
    loc.ec = h.ec;
    return loc;
  }

  // Shared with a checkpoint: copy-on-write.  The live file always carries
  // the highest version for its slot, so version+1 is fresh.
  NVM_CHECK(!fresh_shard.chunks.contains(fresh_key), "COW version collision");

  // The clone stays on the same benefactors (local device copy, no
  // network); reserve space for the new version on every replica, rolling
  // back if one runs out mid-way so a failed COW leaks nothing.
  auto replicas = h.replicas.load(std::memory_order_acquire);
  // With placement_avoid_suspected on, the fresh version drops dead or
  // suspected inherited holders, keeping at least one: a dead holder
  // would otherwise fail the whole prepare on its reservation, and a
  // suspected one would take the only fresh bytes onto a flapping node.
  // Only holders of the old version are eligible (the clone is a local
  // device copy), so the list can shrink but never gain members; the
  // shortened list is ordinary tracked under-replication the scrubber
  // re-queues for repair.  Knob off: the inherited immutable snapshot is
  // reused verbatim.
  std::shared_ptr<const std::vector<int>> fresh_list = replicas;
  if (config_.placement_avoid_suspected && !h.ec) {
    // Replicated chunks only: an EC fragment map is positional, so the
    // fresh version inherits it verbatim (a dead or suspected holder is
    // the repair engine's business — dropping it would punch a hole).
    std::vector<int> keep;
    keep.reserve(replicas->size());
    for (int bid : *replicas) {
      Benefactor* b = BenefactorAt(bid);
      if (b == nullptr || !b->alive()) continue;
      if (suspected != nullptr &&
          static_cast<size_t>(bid) < suspected->size() &&
          (*suspected)[static_cast<size_t>(bid)] != 0) {
        continue;
      }
      keep.push_back(bid);
    }
    if (!keep.empty() && keep.size() != replicas->size()) {
      fresh_list = std::make_shared<const std::vector<int>>(std::move(keep));
    }
  }
  const uint64_t member_bytes = ChunkResBytes(h.ec);
  size_t reserved = 0;
  for (int bid : *fresh_list) {
    Status s = bid < 0 ? OkStatus()  // EC hole: nothing to reserve
                       : BenefactorAt(bid)->ReserveBytes(member_bytes);
    if (!s.ok()) {
      for (size_t r = 0; r < reserved; ++r) {
        const int rb = (*fresh_list)[r];
        if (rb >= 0) BenefactorAt(rb)->ReleaseBytes(member_bytes);
      }
      return s;
    }
    ++reserved;
  }
  // Log the swap before any of it becomes visible (the reservations above
  // are benefactor-side state recovery reconciles wholesale).  After a
  // crash the durable slot points at the fresh version; if its data never
  // landed anywhere, recovery rolls the slot back to `old_key` — the
  // chunk reads old bytes or new bytes, never a mix, never zeros.
  WalRecord rec;
  rec.type = WalRecordType::kCowSwap;
  rec.file_id = id;
  rec.slot = chunk_index;
  rec.old_key = h.key;
  rec.key = fresh_key;
  rec.replicas = *fresh_list;
  LogAppend(clock, std::move(rec));
  --h.refcount;  // live file drops its reference to the shared version
  auto nh = std::make_shared<ChunkHandle>(fresh_key);
  nh->refcount = 1;
  nh->repair_epoch = 1;  // the COW write targets the fresh version
  nh->ec = h.ec;
  // The fresh version shares the (immutable) replica snapshot — or, when
  // the placement engine dropped holders, its filtered copy.
  nh->replicas.store(fresh_list, std::memory_order_release);
  fresh_shard.inflight_writers[fresh_key] = 1;  // fenced until write lands
  fresh_shard.chunks.emplace(fresh_key, nh);

  // Erasure stripes are always rewritten whole (full-stripe writes), so
  // the fresh version never merges over cloned bytes — and an uncompleted
  // stripe rolls back at recovery instead of reading a cloned base.
  loc.needs_clone = !h.ec;
  loc.clone_from = h.key;
  loc.key = fresh_key;
  loc.benefactors = *fresh_list;
  loc.ec = h.ec;
  slot = std::move(nh);
  return loc;
}

StatusOr<WriteLocation> Manager::PrepareWrite(sim::VirtualClock& clock,
                                              FileId id,
                                              uint32_t chunk_index) {
  ChargeOp(clock, FileLane(id));
  std::shared_ptr<FileMeta> meta = FindFile(id);
  if (meta == nullptr) return NotFound("file id " + std::to_string(id));
  // Suspicion snapshot before any file/shard lock (see Fallocate).
  std::vector<char> suspected;
  if (config_.placement_avoid_suspected) suspected = SuspectedBenefactors();
  std::unique_lock<std::shared_mutex> lock(meta->mu);
  return PrepareWriteSlot(clock, id, *meta, chunk_index,
                          suspected.empty() ? nullptr : &suspected);
}

StatusOr<std::vector<WriteLocation>> Manager::PrepareWriteBatch(
    sim::VirtualClock& clock, FileId id, std::span<const uint32_t> indices) {
  ChargeOp(clock, FileLane(id));
  std::shared_ptr<FileMeta> meta = FindFile(id);
  if (meta == nullptr) return NotFound("file id " + std::to_string(id));
  // Suspicion snapshot before any file/shard lock (see Fallocate); one
  // snapshot covers the whole window.
  std::vector<char> suspected;
  if (config_.placement_avoid_suspected) suspected = SuspectedBenefactors();
  std::unique_lock<std::shared_mutex> lock(meta->mu);
  std::vector<WriteLocation> locs;
  locs.reserve(indices.size());
  for (uint32_t index : indices) {
    auto loc = PrepareWriteSlot(clock, id, *meta, index,
                                suspected.empty() ? nullptr : &suspected);
    if (!loc.ok()) {
      // The caller gets an error and will never complete the window:
      // close the writes already opened so they don't fence repairs of
      // those chunks forever.  These closures log nothing — no byte
      // moved, so the durable checksum (if any) still matches the stored
      // contents; only the volatile fence and epoch need settling.
      for (const WriteLocation& opened : locs) {
        MetaShard& shard = shards_[shard_of(opened.key)];
        std::lock_guard<std::mutex> slock(shard.mu);
        CompleteWriteLocked(shard, opened.key);
      }
      return loc.status();
    }
    locs.push_back(*std::move(loc));
  }
  return locs;
}

StatusOr<uint64_t> Manager::LinkFileChunks(sim::VirtualClock& clock,
                                           FileId dst, FileId src) {
  ChargeOp(clock, FileLane(dst));
  std::shared_ptr<FileMeta> dmeta = FindFile(dst);
  std::shared_ptr<FileMeta> smeta = FindFile(src);
  if (dmeta == nullptr) return NotFound("dst file " + std::to_string(dst));
  if (smeta == nullptr) return NotFound("src file " + std::to_string(src));
  // Two files lock in FileId order (deadlock-free against a concurrent
  // link the other way); self-link takes the one lock once and snapshots
  // the chunk list up front so appending never walks a growing vector.
  std::unique_lock<std::shared_mutex> dlock;
  std::unique_lock<std::shared_mutex> slock;
  if (dmeta == smeta) {
    dlock = std::unique_lock<std::shared_mutex>(dmeta->mu);
  } else if (dst < src) {
    dlock = std::unique_lock<std::shared_mutex>(dmeta->mu);
    slock = std::unique_lock<std::shared_mutex>(smeta->mu);
  } else {
    slock = std::unique_lock<std::shared_mutex>(smeta->mu);
    dlock = std::unique_lock<std::shared_mutex>(dmeta->mu);
  }
  const std::vector<std::shared_ptr<ChunkHandle>> linked = smeta->chunks;
  const uint64_t src_size = smeta->size;
  // Linked chunks land at the next chunk boundary of dst.
  const uint64_t link_offset = dmeta->chunks.size() * config_.chunk_bytes;
  // Log under both file mutexes, before any refcount moves: replay
  // re-reads src's chunk list at the same point of the record order, so
  // it reconstructs exactly this link.
  WalRecord rec;
  rec.type = WalRecordType::kLink;
  rec.file_id = dst;
  rec.src_file = src;
  LogAppend(clock, std::move(rec));
  for (const std::shared_ptr<ChunkHandle>& h : linked) {
    MetaShard& shard = shards_[shard_of(h->key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    ++h->refcount;
    dmeta->chunks.push_back(h);
  }
  dmeta->size = link_offset + src_size;
  return link_offset;
}

uint32_t Manager::ChunkRefcount(const ChunkKey& key) const {
  const MetaShard& shard = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.chunks.find(key);
  return it == shard.chunks.end() ? 0 : it->second->refcount;
}

uint64_t Manager::num_files() const {
  std::shared_lock<std::shared_mutex> lock(ns_mu_);
  return files_.size();
}

}  // namespace nvm::store

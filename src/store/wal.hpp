// Write-ahead log + checkpoint store for the manager metadata plane.
//
// The WalStore is the manager's *durable* half: it is owned by the
// AggregateStore, outside the Manager object, so it survives a manager
// crash (AggregateStore::KillManager / RestartManager) exactly like an
// on-SSD metadata partition would.  The manager appends one framed record
// ahead of every durable metadata mutation — log-before-publish — and
// periodically serialises the whole metadata plane into a checkpoint that
// supersedes the log prefix it covers (store/recovery.cpp).
//
// Record framing (little-endian):
//
//   [u32 payload_len][u32 crc32c(payload)][payload]
//   payload = u64 seq | u8 type | type-specific body
//
// A reader stops at the first truncated or CRC-failing record (the torn
// tail): everything before it is the durable prefix, everything at or
// after it died with the crash.  Records append to fixed-size segments
// (`wal_segment_bytes`); a checkpoint covering sequence S deletes every
// segment whose records all have seq <= S (checkpoint-supersedes-log).
// Checkpoints alternate between two slots and are themselves CRC-framed,
// so a crash mid-checkpoint tears only the slot being written and
// recovery falls back to the previous checkpoint plus a longer replay.
//
// Every append, checkpoint write and recovery read charges a manager-
// local sim::SsdDevice (profile per the `wal_device` knob), so metadata
// durability has a virtual-time cost that shows up in benchmark results.
//
// Crash injection freezes the durable image mid-write — the torn tail is
// real bytes, not a flag.  The in-memory manager keeps running after the
// freeze, exactly like a machine whose log device died under it, until
// the test harness notices `crashed()` and kills/restarts the manager.
// Appends after the freeze are silent no-ops (they never reach the
// device), which is what makes the post-crash divergence between RAM and
// durable state real and testable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/device.hpp"
#include "store/types.hpp"

namespace nvm::store {

// --- little-endian wire helpers, shared with the checkpoint encoder ---
namespace wire {

inline void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}
inline void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(out, static_cast<uint8_t>(v >> (8 * i)));
}
inline void PutString(std::string& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}
inline void PutKey(std::string& out, const ChunkKey& k) {
  PutU64(out, k.origin_file);
  PutU32(out, k.index);
  PutU32(out, k.version);
}
inline void PutReplicas(std::string& out, const std::vector<int>& r) {
  PutU32(out, static_cast<uint32_t>(r.size()));
  for (int b : r) PutU32(out, static_cast<uint32_t>(b));
}

// Bounds-checked sequential reader.  Every getter degrades to zero values
// once `ok` drops; callers check `ok` at the end (record payloads are CRC
// guarded, so a failing read means a bug, not torn media).
struct Reader {
  const char* p = nullptr;
  size_t n = 0;
  bool ok = true;

  Reader(const char* data, size_t size) : p(data), n(size) {}

  uint8_t U8() {
    if (n < 1) {
      ok = false;
      return 0;
    }
    uint8_t v = static_cast<uint8_t>(*p);
    ++p;
    --n;
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(U8()) << (8 * i);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(U8()) << (8 * i);
    return v;
  }
  std::string Str() {
    const uint32_t len = U32();
    if (!ok || n < len) {
      ok = false;
      return {};
    }
    std::string s(p, len);
    p += len;
    n -= len;
    return s;
  }
  ChunkKey Key() {
    ChunkKey k;
    k.origin_file = U64();
    k.index = U32();
    k.version = U32();
    return k;
  }
  std::vector<int> Replicas() {
    const uint32_t count = U32();
    if (!ok || count > n) {  // each entry is >= 1 byte: cheap sanity bound
      ok = false;
      return {};
    }
    std::vector<int> r;
    r.reserve(count);
    for (uint32_t i = 0; i < count && ok; ++i) {
      r.push_back(static_cast<int>(U32()));
    }
    return r;
  }
};

}  // namespace wire

// One durable metadata mutation.  The record set mirrors the manager's
// publish points; everything NOT logged (reservations, repair fences and
// epochs, in-flight repair targets, verify cursors) is either volatile by
// design or rebuilt from benefactor inventories during recovery.
enum class WalRecordType : uint8_t {
  kCreateFile = 1,  // file_id, name
  kExtend = 2,      // fallocate: new size + the chunk placements it made
  kCowSwap = 3,     // COW prepare: slot moves old_key -> key (replicas)
  kComplete = 4,    // write completions: authoritative checksum updates
  kReplicas = 5,    // replica-list publish: repair commit / quarantine /
                    // dead-strip / decommission / lost (empty list)
  kUnlink = 6,      // file_id
  kLink = 7,        // checkpoint linking: file_id (dst) takes src_file's refs
  kRedundancy = 8,  // file_id, RedundancyMode decided at first Fallocate —
                    // cold-start recovery needs it to rebuild fragment maps
};

struct WalPlacement {
  uint32_t slot = 0;  // chunk index within the file
  ChunkKey key;
  std::vector<int> replicas;
};

struct WalCompletion {
  ChunkKey key;
  bool has_crc = false;  // false: the completion ERASED the authoritative crc
  uint32_t crc = 0;
  // Erasure-coded chunks: per-fragment CRC32Cs (k+m entries, positional);
  // empty for replicated chunks.  Repair and scrub verify individual
  // fragments against these, so they are journaled with the completion.
  std::vector<uint32_t> frag_crcs;
};

struct WalRecord {
  uint64_t seq = 0;  // assigned by WalStore::Append
  WalRecordType type = WalRecordType::kCreateFile;
  FileId file_id = kInvalidFileId;
  FileId src_file = kInvalidFileId;       // kLink: source file
  std::string name;                       // kCreateFile
  uint64_t size = 0;                      // kExtend: logical size after
  uint32_t slot = 0;                      // kCowSwap: file slot index
  ChunkKey key;                           // kCowSwap (fresh) / kReplicas
  ChunkKey old_key;                       // kCowSwap: replaced version
  std::vector<int> replicas;              // kCowSwap / kReplicas
  std::vector<WalPlacement> placements;   // kExtend
  std::vector<WalCompletion> completions; // kComplete
  uint8_t mode = 0;                       // kRedundancy: RedundancyMode
};

// Named crash points of the crash-schedule harness: the manager calls
// TriggerPoint at each of these; an armed WalStore freezes its durable
// image there (see CrashAtPoint).
enum class CrashPoint : uint8_t {
  kNone = 0,
  kMidBatch,         // CompleteWrites entry, before the batch record lands
  kMidCheckpoint,    // halfway through the checkpoint blob (torn slot)
  kMidRepairCommit,  // CommitRepair entry, before its publish record
  kMidScrub,         // between ScrubOnce reconciliation passes
};

class WalStore {
 public:
  explicit WalStore(const StoreConfig& config);

  // --- append path (manager side; called under metadata mutexes) ---

  // Assign the next sequence number, frame and append the record, and
  // charge the log-device write to `clock`.  After a crash trigger fired
  // the append is a silent no-op: the durable image is frozen while the
  // in-memory manager keeps going.  The WAL mutex is the INNERMOST lock
  // of the metadata plane — Append is called with shard/file/ns mutexes
  // held and never takes any of them.
  void Append(sim::VirtualClock& clock, WalRecord rec);

  // Sequence number of the last record handed out (0 before the first).
  uint64_t last_seq() const;

  // --- checkpoint ---

  // Install `blob` (already serialised manager state covering every
  // record with seq <= covered_seq) into the inactive checkpoint slot,
  // charge the device write, then drop every WAL segment the checkpoint
  // supersedes.  Armed kMidCheckpoint tears the blob halfway and freezes;
  // the previously installed checkpoint stays intact.
  void WriteCheckpoint(sim::VirtualClock& clock, std::string blob,
                       uint64_t covered_seq);

  // --- recovery read path ---

  struct Replay {
    std::string checkpoint;     // newest valid checkpoint blob (may be empty)
    bool used_checkpoint = false;
    uint64_t covered_seq = 0;   // seq the checkpoint covers (0 = none)
    std::vector<WalRecord> records;  // decoded records with seq > covered_seq
    bool torn_tail = false;     // replay stopped at a truncated/bad record
  };
  // Read both checkpoint slots and every live segment off the device
  // (charging `clock`), pick the newest valid checkpoint, and decode the
  // records after it up to the torn tail.
  Replay ReadForRecovery(sim::VirtualClock& clock);

  // Reopen after a manager restart: clear crash state, truncate the torn
  // tail (recovery already decided it is not part of the durable prefix)
  // and position the next sequence number after the last durable record.
  void Reopen();

  // --- crash-schedule fault injection ---

  // Freeze the durable image after `n` more appends.  seed != 0 draws the
  // trigger uniformly from [1, n] (deterministic splitmix64, mirroring
  // Benefactor::CorruptAfterWrites); seed == 0 uses exactly n.  The
  // triggering append itself tears mid-record.  0 disarms.
  void CrashAfterAppends(uint64_t n, uint64_t seed);
  // Freeze at the next named crash point instead.
  void CrashAtPoint(CrashPoint point);
  // Manager-side hook at each named point; freezes if `point` is armed.
  void TriggerPoint(CrashPoint point);
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // --- introspection / test hooks ---

  size_t num_segments() const;
  uint64_t wal_bytes() const;  // bytes across live segments
  uint64_t appends() const { return appends_.value(); }
  // Appends silently dropped after the freeze (the RAM/durable divergence).
  uint64_t dropped_appends() const { return dropped_.value(); }
  uint64_t checkpoints_written() const { return checkpoints_.value(); }
  // Whether the most recent Reopen() physically cut a torn log tail.
  // Reopen truncates before Recover reads, so without this memory the
  // recovery report could never surface that a suffix was discarded.
  bool last_reopen_truncated() const;
  sim::SsdDevice& device() { return *device_; }

  // Tear the log end: drop the last `n` stored bytes (models a torn
  // final sector).
  void TruncateTailBytes(uint64_t n);
  // Flip one stored byte `back` bytes from the log end (models media
  // corruption inside a record).
  void CorruptLogByte(uint64_t back, uint8_t xor_mask);

 private:
  struct Segment {
    uint64_t first_seq = 0;
    uint64_t last_seq = 0;
    std::string bytes;
  };
  struct CheckpointSlot {
    bool present = false;
    uint64_t covered_seq = 0;
    uint32_t crc = 0;       // crc32c of the full intended blob
    uint64_t len = 0;       // full intended blob length
    std::string bytes;      // possibly shorter than len after a torn write
  };

  static const sim::DeviceProfile& ProfileFor(const std::string& name);
  bool SlotValid(const CheckpointSlot& s) const;
  // Append framed bytes to the open segment, rotating first if full
  // (mu_ held).
  void AppendBytesLocked(const std::string& framed, uint64_t seq);
  void FreezeLocked();

  const StoreConfig config_;
  std::unique_ptr<sim::SsdDevice> device_;

  mutable std::mutex mu_;
  std::vector<Segment> segments_;
  CheckpointSlot slots_[2];
  int next_slot_ = 0;       // slot the next checkpoint overwrites
  uint64_t next_seq_ = 1;
  uint64_t append_offset_ = 0;  // log-structured device address cursor

  // Crash-schedule state (mu_ held).
  uint64_t crash_countdown_ = 0;  // appends until the freeze; 0 = disarmed
  CrashPoint crash_point_ = CrashPoint::kNone;
  std::atomic<bool> crashed_{false};
  bool last_reopen_truncated_ = false;  // see last_reopen_truncated()

  Counter appends_;
  Counter dropped_;
  Counter checkpoints_;
};

}  // namespace nvm::store

#include "store/erasure.hpp"

#include <cstring>

#include "common/log.hpp"

namespace nvm::store {

namespace gf256 {
namespace {

// log/exp tables of GF(2^8)/0x11D with generator 2, built once at static
// initialisation.  exp is doubled so Mul never reduces mod 255.
struct Tables {
  uint8_t exp[512];
  uint8_t log[256];
  Tables() {
    uint16_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      exp[i + 255] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    exp[510] = exp[0];
    exp[511] = exp[1];
    log[0] = 0;  // undefined; callers must not ask
  }
};
const Tables& T() {
  static const Tables t;
  return t;
}

}  // namespace

uint8_t Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = T();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t Div(uint8_t a, uint8_t b) {
  NVM_CHECK(b != 0, "gf256 division by zero");
  if (a == 0) return 0;
  const Tables& t = T();
  return t.exp[255 + t.log[a] - t.log[b]];
}

uint8_t Inv(uint8_t a) {
  NVM_CHECK(a != 0, "gf256 inverse of zero");
  const Tables& t = T();
  return t.exp[255 - t.log[a]];
}

uint8_t Exp(unsigned i) { return T().exp[i % 255]; }

uint8_t Log(uint8_t a) {
  NVM_CHECK(a != 0, "gf256 log of zero");
  return T().log[a];
}

}  // namespace gf256

namespace {

// out += coeff * src, byte-wise over GF(2^8) (addition is XOR).
void MulAcc(uint8_t coeff, std::span<const uint8_t> src,
            std::span<uint8_t> out) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (size_t i = 0; i < src.size(); ++i) out[i] ^= src[i];
    return;
  }
  // One row of the multiplication table for this coefficient — turns the
  // inner loop into a lookup + XOR (the "XOR-based RS" formulation).
  uint8_t row[256];
  for (unsigned v = 0; v < 256; ++v) {
    row[v] = gf256::Mul(coeff, static_cast<uint8_t>(v));
  }
  for (size_t i = 0; i < src.size(); ++i) out[i] ^= row[src[i]];
}

// Invert a k×k matrix over GF(2^8) in place via Gauss-Jordan with
// partial pivoting.  Returns false when singular (cannot happen for
// k rows of [I_k ; Cauchy], but the guard keeps corrupt inputs loud).
bool InvertMatrix(std::vector<uint8_t>& a, uint32_t k) {
  std::vector<uint8_t> inv(static_cast<size_t>(k) * k, 0);
  for (uint32_t i = 0; i < k; ++i) inv[i * k + i] = 1;
  for (uint32_t col = 0; col < k; ++col) {
    uint32_t pivot = col;
    while (pivot < k && a[pivot * k + col] == 0) ++pivot;
    if (pivot == k) return false;
    if (pivot != col) {
      for (uint32_t j = 0; j < k; ++j) {
        std::swap(a[pivot * k + j], a[col * k + j]);
        std::swap(inv[pivot * k + j], inv[col * k + j]);
      }
    }
    const uint8_t d = gf256::Inv(a[col * k + col]);
    for (uint32_t j = 0; j < k; ++j) {
      a[col * k + j] = gf256::Mul(a[col * k + j], d);
      inv[col * k + j] = gf256::Mul(inv[col * k + j], d);
    }
    for (uint32_t row = 0; row < k; ++row) {
      if (row == col) continue;
      const uint8_t f = a[row * k + col];
      if (f == 0) continue;
      for (uint32_t j = 0; j < k; ++j) {
        a[row * k + j] ^= gf256::Mul(f, a[col * k + j]);
        inv[row * k + j] ^= gf256::Mul(f, inv[col * k + j]);
      }
    }
  }
  a = std::move(inv);
  return true;
}

}  // namespace

ErasureCodec::ErasureCodec(uint32_t k, uint32_t m) : k_(k), m_(m) {
  NVM_CHECK(k >= 1 && m >= 1, "erasure geometry needs k >= 1, m >= 1");
  NVM_CHECK(k + m <= 256, "erasure geometry exceeds GF(2^8)");
  parity_.resize(static_cast<size_t>(m) * k);
  for (uint32_t r = 0; r < m; ++r) {
    for (uint32_t c = 0; c < k; ++c) {
      // Cauchy: x_r = k + r and y_c = c are disjoint, so x_r ^ y_c != 0.
      parity_[r * k_ + c] =
          gf256::Inv(static_cast<uint8_t>((k + r) ^ c));
    }
  }
}

uint8_t ErasureCodec::ParityCoeff(uint32_t row, uint32_t col) const {
  return parity_[row * k_ + col];
}

std::vector<std::vector<uint8_t>> ErasureCodec::Encode(
    std::span<const uint8_t> chunk) const {
  NVM_CHECK(chunk.size() % k_ == 0, "chunk not divisible into k fragments");
  const size_t frag = chunk.size() / k_;
  std::vector<std::vector<uint8_t>> frags(fragments());
  for (uint32_t i = 0; i < k_; ++i) {
    frags[i].assign(chunk.begin() + i * frag, chunk.begin() + (i + 1) * frag);
  }
  for (uint32_t r = 0; r < m_; ++r) {
    frags[k_ + r].assign(frag, 0);
    for (uint32_t c = 0; c < k_; ++c) {
      MulAcc(parity_[r * k_ + c], frags[c], frags[k_ + r]);
    }
  }
  return frags;
}

std::vector<std::vector<uint8_t>> ErasureCodec::EncodeParity(
    std::span<const std::vector<uint8_t>> data_frags) const {
  NVM_CHECK(data_frags.size() == k_, "EncodeParity needs exactly k fragments");
  const size_t frag = data_frags[0].size();
  std::vector<std::vector<uint8_t>> parity(m_);
  for (uint32_t r = 0; r < m_; ++r) {
    parity[r].assign(frag, 0);
    for (uint32_t c = 0; c < k_; ++c) {
      NVM_CHECK(data_frags[c].size() == frag, "ragged data fragments");
      MulAcc(parity_[r * k_ + c], data_frags[c], parity[r]);
    }
  }
  return parity;
}

bool ErasureCodec::Reconstruct(std::vector<std::vector<uint8_t>>& frags) const {
  NVM_CHECK(frags.size() == fragments(), "fragment vector has wrong arity");
  std::vector<uint32_t> present;
  size_t frag = 0;
  for (uint32_t i = 0; i < fragments(); ++i) {
    if (frags[i].empty()) continue;
    if (frag == 0) frag = frags[i].size();
    NVM_CHECK(frags[i].size() == frag, "ragged fragments");
    if (present.size() < k_) present.push_back(i);
  }
  if (present.size() < k_) return false;

  // Fast path: all k data fragments survive — parity recomputes directly.
  bool data_complete = true;
  for (uint32_t i = 0; i < k_; ++i) {
    if (frags[i].empty()) data_complete = false;
  }
  if (!data_complete) {
    // Solve M * data = surviving, with M the surviving rows of [I_k ; C].
    std::vector<uint8_t> mat(static_cast<size_t>(k_) * k_, 0);
    for (uint32_t i = 0; i < k_; ++i) {
      const uint32_t row = present[i];
      if (row < k_) {
        mat[i * k_ + row] = 1;
      } else {
        std::memcpy(&mat[i * k_], &parity_[(row - k_) * k_], k_);
      }
    }
    if (!InvertMatrix(mat, k_)) return false;
    for (uint32_t j = 0; j < k_; ++j) {
      if (!frags[j].empty()) continue;
      frags[j].assign(frag, 0);
      for (uint32_t i = 0; i < k_; ++i) {
        MulAcc(mat[j * k_ + i], frags[present[i]], frags[j]);
      }
    }
  }
  for (uint32_t r = 0; r < m_; ++r) {
    if (!frags[k_ + r].empty()) continue;
    frags[k_ + r].assign(frag, 0);
    for (uint32_t c = 0; c < k_; ++c) {
      MulAcc(parity_[r * k_ + c], frags[c], frags[k_ + r]);
    }
  }
  return true;
}

void ErasureCodec::Assemble(std::span<const std::vector<uint8_t>> frags,
                            uint32_t k, std::span<uint8_t> out) {
  const size_t frag = out.size() / k;
  for (uint32_t i = 0; i < k; ++i) {
    NVM_CHECK(frags[i].size() == frag, "assemble: fragment size mismatch");
    std::memcpy(out.data() + i * frag, frags[i].data(), frag);
  }
}

}  // namespace nvm::store

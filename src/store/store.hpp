// AggregateStore — convenience wiring of one manager plus a set of
// benefactors over a simulated cluster.
//
// This mirrors the paper's two deployment models:
//  * center-wide: benefactors on a dedicated partition of SSD-equipped
//    "fat" nodes (pass an explicit benefactor node list), or
//  * per-job: benefactors on (a subset of) the job's own nodes.
#pragma once

#include <memory>
#include <vector>

#include "store/client.hpp"
#include "store/maintenance.hpp"

namespace nvm::store {

struct AggregateStoreConfig {
  StoreConfig store;
  // Nodes that run a benefactor process; each must have an SSD.
  std::vector<int> benefactor_nodes;
  // SSD capacity each benefactor contributes.
  uint64_t contribution_bytes = 1_GiB;
  // Node hosting the manager process.
  int manager_node = 0;
};

class AggregateStore {
 public:
  AggregateStore(net::Cluster& cluster, AggregateStoreConfig config);

  Manager& manager() { return *manager_; }
  Benefactor& benefactor(size_t i) { return *benefactors_.at(i); }
  size_t num_benefactors() const { return benefactors_.size(); }
  const AggregateStoreConfig& config() const { return config_; }
  // The background maintenance service, or nullptr when the
  // `maintenance` knob is off.
  MaintenanceService* maintenance() { return maintenance_.get(); }
  const MaintenanceService* maintenance() const { return maintenance_.get(); }

  // A client stub bound to `node` (one per compute node, shared by the
  // node's processes, like the single FUSE mount per node in the paper).
  StoreClient& ClientForNode(int node);

 private:
  net::Cluster& cluster_;
  AggregateStoreConfig config_;
  std::unique_ptr<Manager> manager_;
  std::vector<std::unique_ptr<Benefactor>> benefactors_;
  std::vector<std::unique_ptr<StoreClient>> clients_;  // indexed by node id
  std::mutex clients_mutex_;
  // Declared last: destroyed first, so its worker joins (and detaches from
  // the manager) while manager and benefactors are still alive.
  std::unique_ptr<MaintenanceService> maintenance_;
};

}  // namespace nvm::store

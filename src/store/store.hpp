// AggregateStore — convenience wiring of one manager plus a set of
// benefactors over a simulated cluster.
//
// This mirrors the paper's two deployment models:
//  * center-wide: benefactors on a dedicated partition of SSD-equipped
//    "fat" nodes (pass an explicit benefactor node list), or
//  * per-job: benefactors on (a subset of) the job's own nodes.
#pragma once

#include <memory>
#include <vector>

#include "store/client.hpp"
#include "store/maintenance.hpp"
#include "store/qos.hpp"

namespace nvm::store {

struct AggregateStoreConfig {
  StoreConfig store;
  // Nodes that run a benefactor process; each must have an SSD.
  std::vector<int> benefactor_nodes;
  // SSD capacity each benefactor contributes.
  uint64_t contribution_bytes = 1_GiB;
  // Node hosting the manager process.
  int manager_node = 0;
};

class AggregateStore {
 public:
  AggregateStore(net::Cluster& cluster, AggregateStoreConfig config);

  Manager& manager() { return *manager_; }
  Benefactor& benefactor(size_t i) { return *benefactors_.at(i); }
  size_t num_benefactors() const { return benefactors_.size(); }
  const AggregateStoreConfig& config() const { return config_; }
  // The background maintenance service, or nullptr when the
  // `maintenance` knob is off.
  MaintenanceService* maintenance() { return maintenance_.get(); }
  const MaintenanceService* maintenance() const { return maintenance_.get(); }
  // The QoS scheduler (always constructed; a no-op unless `qos` is on).
  QosScheduler& qos() { return *qos_; }
  // The durable metadata log, or nullptr when the `wal` knob is off.
  // Owned here, NOT by the manager: it is the on-SSD state that survives
  // KillManager, exactly like a metadata partition survives a process.
  WalStore* wal() { return wal_.get(); }

  // A client stub bound to `node` (one per compute node, shared by the
  // node's processes, like the single FUSE mount per node in the paper).
  StoreClient& ClientForNode(int node);

  // --- manager crash / restart (the crash-schedule harness) ---

  // Tear down the manager process, volatile state and all: the
  // maintenance worker joins, every client stub dies (their manager
  // reference dangles), then the manager itself.  Benefactors and the
  // WAL device survive — they are other machines / durable media.
  // Call sites must drop any StoreClient references they hold first.
  void KillManager();
  // Bring up a FRESH manager over the surviving benefactors and WAL, run
  // cold-start recovery (charged to `clock`), and restart the
  // maintenance service if configured.  ClientForNode hands out stubs
  // bound to the new manager afterwards.
  RecoveryReport RestartManager(sim::VirtualClock& clock);

 private:
  net::Cluster& cluster_;
  AggregateStoreConfig config_;
  // Declared before the manager: the manager holds a raw pointer into it
  // for its whole lifetime (and it must outlive every manager incarnation).
  std::unique_ptr<WalStore> wal_;
  // Declared before benefactors/clients (they hold raw pointers into it)
  // and outside the manager: scheduler state — token buckets, per-tenant
  // histograms — lives with the devices, so it survives KillManager just
  // like the benefactor processes do.
  std::unique_ptr<QosScheduler> qos_;
  std::unique_ptr<Manager> manager_;
  std::vector<std::unique_ptr<Benefactor>> benefactors_;
  std::vector<std::unique_ptr<StoreClient>> clients_;  // indexed by node id
  std::mutex clients_mutex_;
  // Declared last: destroyed first, so its worker joins (and detaches from
  // the manager) while manager and benefactors are still alive.
  std::unique_ptr<MaintenanceService> maintenance_;
};

}  // namespace nvm::store

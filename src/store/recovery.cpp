// Crash-consistent manager metadata: checkpoint serialisation, WAL replay
// and cold-start reconciliation (Manager::Checkpoint / Manager::Recover).
//
// The correctness frame is simple because of two disciplines enforced at
// the mutation sites in manager.cpp:
//
//  * log-before-publish — every durable mutation appends its WAL record
//    under the mutex that orders the mutation, BEFORE any in-memory or
//    benefactor-side effect, so the durable history is always a prefix of
//    what the in-memory manager did;
//  * checkpoint-under-every-lock — Checkpoint serialises while holding
//    ns_mu_ (shared), every file mutex (shared, FileId order) and every
//    shard mutex (ascending), the same locks the appends happen under, so
//    every record with seq <= covered_seq is fully reflected in the blob
//    and every record after it postdates the serialisation instant.
//    Replay therefore needs no idempotency: it applies each record exactly
//    once to a state that has never seen it.
//
// What the log deliberately does NOT carry — space reservations, write
// fences, repair epochs, in-flight repair targets, scrub cursors — is
// either volatile by design or recomputed here from the benefactor
// inventories, which survive a manager crash by construction (they are
// other machines).
#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/checksum.hpp"
#include "common/log.hpp"
#include "store/manager.hpp"

namespace nvm::store {

namespace {

bool KeyLess(const ChunkKey& a, const ChunkKey& b) {
  return std::tie(a.origin_file, a.index, a.version) <
         std::tie(b.origin_file, b.index, b.version);
}

}  // namespace

// --- checkpoint write path ---

std::string Manager::EncodeCheckpointLocked() const {
  // Deterministic blob: files sorted by id, chunks sorted by key, so two
  // checkpoints of the same state are byte-identical regardless of shard
  // count or hash iteration order.
  std::string out;
  wire::PutU64(out, next_file_id_);
  wire::PutU64(out, static_cast<uint64_t>(stripe_cursor_));

  std::vector<FileId> fids;
  fids.reserve(files_.size());
  for (const auto& [fid, meta] : files_) fids.push_back(fid);
  std::sort(fids.begin(), fids.end());
  wire::PutU32(out, static_cast<uint32_t>(fids.size()));
  for (FileId fid : fids) {
    const FileMeta& meta = *files_.at(fid);
    wire::PutU64(out, fid);
    wire::PutString(out, meta.name);
    wire::PutU64(out, meta.size);
    wire::PutU64(out, static_cast<uint64_t>(meta.stripe_cursor));
    // Redundancy mode: 0 = undecided, 1 = replicate, 2 = erasure.
    wire::PutU8(out, !meta.redundancy_decided ? 0 : (meta.ec ? 2 : 1));
    wire::PutU32(out, static_cast<uint32_t>(meta.chunks.size()));
    // Slots serialise as keys only: decode re-wires them to the single
    // handle per key below (and recomputes refcounts from the wiring).
    for (const std::shared_ptr<ChunkHandle>& h : meta.chunks) {
      wire::PutKey(out, h->key);
    }
  }

  std::vector<const ChunkHandle*> handles;
  for (const MetaShard& shard : shards_) {
    for (const auto& [key, h] : shard.chunks) handles.push_back(h.get());
  }
  std::sort(handles.begin(), handles.end(),
            [](const ChunkHandle* a, const ChunkHandle* b) {
              return KeyLess(a->key, b->key);
            });
  wire::PutU32(out, static_cast<uint32_t>(handles.size()));
  for (const ChunkHandle* h : handles) {
    wire::PutKey(out, h->key);
    wire::PutU8(out, h->has_crc ? 1 : 0);
    wire::PutU32(out, h->crc);
    wire::PutU8(out, h->ec ? 1 : 0);
    wire::PutU32(out, static_cast<uint32_t>(h->frag_crcs.size()));
    for (uint32_t crc : h->frag_crcs) wire::PutU32(out, crc);
    wire::PutReplicas(out, *h->replicas.load(std::memory_order_acquire));
  }
  return out;
}

void Manager::Checkpoint(sim::VirtualClock& clock) {
  if (wal_ == nullptr) return;
  // Serialisation CPU is one metadata op on lane 0 (charged before any
  // lock, like every other op's service charge).
  ChargeOp(clock, 0);
  std::string blob;
  uint64_t covered = 0;
  {
    // The full lock set, in the global order ns -> file (FileId order) ->
    // shard (ascending).  Shared where readers suffice: resolves keep
    // running, only mutations wait out the serialisation instant.
    std::shared_lock<std::shared_mutex> ns(ns_mu_);
    std::vector<std::shared_ptr<FileMeta>> metas;
    {
      std::vector<FileId> fids;
      fids.reserve(files_.size());
      for (const auto& [fid, meta] : files_) fids.push_back(fid);
      std::sort(fids.begin(), fids.end());
      metas.reserve(fids.size());
      for (FileId fid : fids) metas.push_back(files_.at(fid));
    }
    std::vector<std::shared_lock<std::shared_mutex>> flocks;
    flocks.reserve(metas.size());
    for (const auto& meta : metas) flocks.emplace_back(meta->mu);
    std::vector<std::unique_lock<std::mutex>> slocks;
    slocks.reserve(meta_shards_);
    for (MetaShard& shard : shards_) slocks.emplace_back(shard.mu);
    // Captured with every append-ordering lock held: no record <= covered
    // is half-applied, no record > covered is reflected in the blob.
    covered = wal_->last_seq();
    blob = EncodeCheckpointLocked();
  }
  // The device write happens outside the metadata locks — only the
  // serialisation instant stops the world, not the SSD transfer.
  wal_->WriteCheckpoint(clock, std::move(blob), covered);
}

// --- checkpoint read path ---

bool Manager::DecodeCheckpoint(const std::string& blob) {
  wire::Reader r(blob.data(), blob.size());
  next_file_id_ = r.U64();
  stripe_cursor_ = static_cast<size_t>(r.U64());

  const uint32_t nfiles = r.U32();
  struct PendingFile {
    FileId id = kInvalidFileId;
    std::shared_ptr<FileMeta> meta;
    std::vector<ChunkKey> slots;
  };
  std::vector<PendingFile> pending;
  pending.reserve(nfiles);
  for (uint32_t f = 0; f < nfiles && r.ok; ++f) {
    PendingFile pf;
    pf.id = r.U64();
    pf.meta = std::make_shared<FileMeta>();
    pf.meta->name = r.Str();
    pf.meta->size = r.U64();
    pf.meta->stripe_cursor = static_cast<size_t>(r.U64());
    const uint8_t mode = r.U8();
    if (mode > 2) return false;
    pf.meta->redundancy_decided = mode != 0;
    pf.meta->ec = mode == 2;
    const uint32_t nslots = r.U32();
    if (!r.ok || nslots > r.n) return false;  // each slot is >= 1 byte
    pf.slots.reserve(nslots);
    for (uint32_t s = 0; s < nslots && r.ok; ++s) pf.slots.push_back(r.Key());
    pending.push_back(std::move(pf));
  }

  const uint32_t nchunks = r.U32();
  if (!r.ok || nchunks > r.n) return false;
  for (uint32_t c = 0; c < nchunks && r.ok; ++c) {
    const ChunkKey key = r.Key();
    const bool has_crc = r.U8() != 0;
    const uint32_t crc = r.U32();
    const bool ec = r.U8() != 0;
    const uint32_t nfrag = r.U32();
    if (!r.ok || nfrag > r.n) return false;
    std::vector<uint32_t> frag_crcs;
    frag_crcs.reserve(nfrag);
    for (uint32_t fc = 0; fc < nfrag && r.ok; ++fc) frag_crcs.push_back(r.U32());
    std::vector<int> replicas = r.Replicas();
    if (!r.ok) break;
    auto h = std::make_shared<ChunkHandle>(key);
    h->has_crc = has_crc;
    h->crc = crc;
    h->ec = ec;
    h->frag_crcs = std::move(frag_crcs);
    PublishReplicasLocked(*h, std::move(replicas));
    if (!shards_[shard_of(key)].chunks.emplace(key, std::move(h)).second) {
      return false;  // duplicate key: malformed
    }
  }
  if (!r.ok || r.n != 0) return false;

  // Wire file slots to the (single) handle per key, recomputing refcounts.
  for (PendingFile& pf : pending) {
    pf.meta->chunks.reserve(pf.slots.size());
    for (const ChunkKey& key : pf.slots) {
      MetaShard& shard = shards_[shard_of(key)];
      auto it = shard.chunks.find(key);
      if (it == shard.chunks.end()) return false;  // dangling slot
      ++it->second->refcount;
      pf.meta->chunks.push_back(it->second);
    }
    names_[pf.meta->name] = pf.id;
    files_[pf.id] = std::move(pf.meta);
  }
  return true;
}

// --- WAL replay ---

void Manager::ApplyWalRecord(const WalRecord& rec) {
  // Fresh manager, single-threaded recovery: no locks, no idempotency
  // (see the file header).  Records referencing state a torn earlier
  // record never produced cannot occur — the torn tail cuts the log at
  // the first bad record — but each case still guards its lookups so a
  // hand-corrupted log degrades to skipped records, not a crash.
  const size_t n = num_benefactors();
  switch (rec.type) {
    case WalRecordType::kCreateFile: {
      auto meta = std::make_shared<FileMeta>();
      meta->name = rec.name;
      meta->stripe_cursor = stripe_cursor_;
      if (n > 0) stripe_cursor_ = (stripe_cursor_ + 1) % n;
      names_[rec.name] = rec.file_id;
      files_[rec.file_id] = std::move(meta);
      if (rec.file_id >= next_file_id_) next_file_id_ = rec.file_id + 1;
      break;
    }
    case WalRecordType::kExtend: {
      auto fit = files_.find(rec.file_id);
      if (fit == files_.end()) break;
      FileMeta& meta = *fit->second;
      for (const WalPlacement& p : rec.placements) {
        auto h = std::make_shared<ChunkHandle>(p.key);
        h->refcount = 1;
        h->ec = meta.ec;
        PublishReplicasLocked(*h, p.replicas);
        shards_[shard_of(p.key)].chunks.emplace(p.key, h);
        meta.chunks.push_back(std::move(h));
        if (n > 0) meta.stripe_cursor = (meta.stripe_cursor + 1) % n;
      }
      meta.size = rec.size;
      break;
    }
    case WalRecordType::kCowSwap: {
      auto fit = files_.find(rec.file_id);
      if (fit == files_.end()) break;
      FileMeta& meta = *fit->second;
      if (rec.slot >= meta.chunks.size()) break;
      auto h = std::make_shared<ChunkHandle>(rec.key);
      h->refcount = 1;  // recomputed wholesale in reconciliation anyway
      h->ec = meta.ec;
      PublishReplicasLocked(*h, rec.replicas);
      shards_[shard_of(rec.key)].chunks.emplace(rec.key, h);
      meta.chunks[rec.slot] = std::move(h);
      break;
    }
    case WalRecordType::kComplete: {
      for (const WalCompletion& c : rec.completions) {
        MetaShard& shard = shards_[shard_of(c.key)];
        auto it = shard.chunks.find(c.key);
        if (it == shard.chunks.end()) continue;
        it->second->has_crc = c.has_crc;
        it->second->crc = c.crc;
        if (c.has_crc) {
          it->second->frag_crcs = c.frag_crcs;
        } else {
          it->second->frag_crcs.clear();
        }
      }
      break;
    }
    case WalRecordType::kRedundancy: {
      auto fit = files_.find(rec.file_id);
      if (fit == files_.end()) break;
      fit->second->redundancy_decided = true;
      fit->second->ec =
          rec.mode == static_cast<uint8_t>(RedundancyMode::kErasure);
      break;
    }
    case WalRecordType::kReplicas: {
      MetaShard& shard = shards_[shard_of(rec.key)];
      auto it = shard.chunks.find(rec.key);
      if (it == shard.chunks.end()) break;
      PublishReplicasLocked(*it->second, rec.replicas);
      break;
    }
    case WalRecordType::kUnlink: {
      // Metadata only: the unreferenced handles fall out of the refcount
      // recompute, and their benefactor-side data (if the crash beat the
      // live deletions) falls to the orphan sweep.
      auto fit = files_.find(rec.file_id);
      if (fit == files_.end()) break;
      names_.erase(fit->second->name);
      files_.erase(fit);
      break;
    }
    case WalRecordType::kLink: {
      auto dit = files_.find(rec.file_id);
      auto sit = files_.find(rec.src_file);
      if (dit == files_.end() || sit == files_.end()) break;
      FileMeta& dst = *dit->second;
      FileMeta& src = *sit->second;
      // Snapshot first: self-links must not walk a growing vector.
      const std::vector<std::shared_ptr<ChunkHandle>> linked = src.chunks;
      const uint64_t link_offset = dst.chunks.size() * config_.chunk_bytes;
      dst.chunks.insert(dst.chunks.end(), linked.begin(), linked.end());
      dst.size = link_offset + src.size;
      break;
    }
  }
}

// --- reconciliation against benefactor inventories ---

void Manager::ReconcileWithBenefactors(sim::VirtualClock& clock,
                                       RecoveryReport* report) {
  const std::vector<Benefactor*> bens = SnapshotBenefactors();

  // Refcounts are not logged: recompute them from the file slots (the one
  // source of truth for reachability) and drop handles nothing references
  // — those are unlink leftovers, gone on purpose, not lost data.  The
  // same walk builds the slot reverse-index the COW rollback needs.
  struct SlotRef {
    FileId file = kInvalidFileId;
    size_t slot = 0;
  };
  std::unordered_map<ChunkKey, std::vector<SlotRef>, ChunkKeyHash> slot_refs;
  for (MetaShard& shard : shards_) {
    for (auto& [key, h] : shard.chunks) h->refcount = 0;
  }
  {
    std::vector<FileId> fids;
    fids.reserve(files_.size());
    for (const auto& [fid, meta] : files_) fids.push_back(fid);
    std::sort(fids.begin(), fids.end());
    for (FileId fid : fids) {
      const FileMeta& meta = *files_.at(fid);
      for (size_t s = 0; s < meta.chunks.size(); ++s) {
        ++meta.chunks[s]->refcount;
        slot_refs[meta.chunks[s]->key].push_back(SlotRef{fid, s});
      }
    }
  }
  for (MetaShard& shard : shards_) {
    std::erase_if(shard.chunks,
                  [](const auto& kv) { return kv.second->refcount == 0; });
  }

  // One metadata round-trip per benefactor fetches its inventory (the
  // same unit of work as a scrub reconciliation sweep); liveness is
  // whatever the ping observes right now.
  std::vector<char> alive(bens.size(), 0);
  for (size_t i = 0; i < bens.size(); ++i) {
    ChargeOp(clock, i % meta_shards_);
    cluster_.network().Transfer(clock, manager_node_, bens[i]->node_id(),
                                config_.meta_request_bytes);
    cluster_.network().Transfer(clock, bens[i]->node_id(), manager_node_,
                                config_.meta_response_bytes);
    alive[i] = bens[i]->alive() ? 1 : 0;
  }

  uint32_t zero_crc = 0;
  uint32_t zero_frag_crc = 0;
  {
    const std::vector<uint8_t> zeros(config_.chunk_bytes, 0);
    zero_crc = Crc32c(zeros.data(), zeros.size());
    if (config_.ec()) {
      zero_frag_crc = Crc32c(zeros.data(), config_.ec_frag_bytes());
    }
  }

  // Per-chunk reconciliation, keys sorted so the decision sequence (and
  // its virtual-time trace) is deterministic.
  std::vector<ChunkKey> keys;
  for (const MetaShard& shard : shards_) {
    for (const auto& [key, h] : shard.chunks) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end(), KeyLess);

  auto mark_lost = [&](ChunkHandle& h) {
    PublishReplicasLocked(h, {});
    lost_chunks_.Add(1);
    ++report->chunks_lost;
  };

  // Roll a COW-pending slot back to the previous version — the chunk reads
  // its old bytes, never zeros.  A missing previous handle means the swap's
  // record survived but its predecessor's history did not (checkpointed
  // away after an unlink raced in) — then the truth is loss.
  auto rollback_cow = [&](const ChunkKey& key, ChunkHandle& h,
                          MetaShard& shard) {
    ChunkKey prev = key;
    --prev.version;
    MetaShard& pshard = shards_[shard_of(prev)];
    auto pit = pshard.chunks.find(prev);
    if (pit != pshard.chunks.end()) {
      for (const SlotRef& ref : slot_refs[key]) {
        files_.at(ref.file)->chunks[ref.slot] = pit->second;
        ++pit->second->refcount;
      }
      shard.chunks.erase(key);
      ++report->cow_rolled_back;
    } else {
      mark_lost(h);
    }
  };

  for (const ChunkKey& key : keys) {
    MetaShard& shard = shards_[shard_of(key)];
    auto hit = shard.chunks.find(key);
    if (hit == shard.chunks.end()) continue;  // erased by a COW rollback
    ChunkHandle& h = *hit->second;
    const std::vector<int> list = *h.replicas.load(std::memory_order_acquire);

    if (list.empty()) {
      // Durably lost before the crash: still lost.
      lost_chunks_.Add(1);
      ++report->chunks_lost;
      continue;
    }
    // A chunk naming a dead holder is the repair path's business, exactly
    // as it would be had the manager never crashed: reconciliation must
    // not guess about data it cannot see.  (The post-restart heartbeat or
    // scrub strips the dead replica and re-replicates from a survivor.)
    bool any_dead = false;
    for (int bid : list) {
      if (bid < 0 || static_cast<size_t>(bid) >= bens.size() ||
          alive[static_cast<size_t>(bid)] == 0) {
        any_dead = true;
      }
    }
    if (any_dead) continue;

    // Every listed holder is alive: its write-time {has_crc, crc} record
    // is visible, so conflicts are decidable now.
    struct Member {
      int bid = -1;
      bool stored = false;
      bool has_crc = false;
      uint32_t crc = 0;
    };
    std::vector<Member> members;
    members.reserve(list.size());
    bool any_data = false;
    for (int bid : list) {
      Member m;
      m.bid = bid;
      m.stored = bens[static_cast<size_t>(bid)]->StoredChunkCrc(
          key, &m.has_crc, &m.crc);
      any_data |= m.stored;
      members.push_back(m);
    }

    if (!h.has_crc && !any_data) {
      if (key.version > 0) {
        // COW-pending: the durable slot points at a fresh version whose
        // data (clone or write) never landed anywhere.
        rollback_cow(key, h, shard);
        continue;
      }
      // Never-written v0 chunk: sparse everywhere is its normal state.
      continue;
    }

    if (h.ec) {
      if (!h.has_crc) {
        // An erasure stripe commits at its completion record: unlike a
        // replica, one fragment cannot certify the full image, and the
        // fragments of a torn stripe can straddle write generations —
        // assembling them would splice bytes.  Roll the slot back to the
        // previous version; a torn v0 stripe deletes what landed and
        // reads as the zeros the uncompleted write left behind.  (With
        // the integrity knobs off a completed stripe is also crc-less —
        // then nothing is decidable and the stripe stands.)
        if (!config_.integrity()) continue;
        if (key.version > 0) {
          rollback_cow(key, h, shard);
        } else {
          for (const Member& m : members) {
            if (m.stored) {
              (void)bens[static_cast<size_t>(m.bid)]->DeleteChunk(key);
            }
          }
        }
        continue;
      }
      // Erasure stripes reconcile per fragment: every position carries its
      // own write-time checksum, so the full-image adoption logic below
      // does not apply.  A completion without positional checksums only
      // occurs with the integrity knobs off — nothing decidable then.
      if (h.frag_crcs.size() != list.size()) continue;
      // In-place rewrite completed on the benefactors, completion record
      // died with the crash: every position stores a fragment and NONE of
      // the write-time checksums matches the durable stripe (a full-stripe
      // rewrite replaces all k+m fragments).  The new generation is
      // complete — adopt it, exactly as the replicated path adopts the
      // agreed data-holder checksum; the full-image authority combines
      // from the k data fragments' checksums.  Any position still on the
      // old generation (or sparse) falls through to the per-fragment sift:
      // the durable checksums stay authoritative and the partial rewrite
      // is destroyed, never spliced.
      {
        bool all_stored_new = !members.empty();
        for (size_t pos = 0; pos < members.size(); ++pos) {
          const Member& m = members[pos];
          if (!m.stored || !m.has_crc || m.crc == h.frag_crcs[pos]) {
            all_stored_new = false;
            break;
          }
        }
        if (all_stored_new) {
          std::vector<uint32_t> fresh;
          fresh.reserve(members.size());
          for (const Member& m : members) fresh.push_back(m.crc);
          uint32_t image = 0;
          for (uint32_t c = 0; c < config_.ec_k; ++c) {
            image = Crc32cCombine(image, fresh[c], config_.ec_frag_bytes());
          }
          h.frag_crcs = std::move(fresh);
          h.crc = image;
          ++report->crc_adopted;
          continue;
        }
      }
      std::vector<int> keep = list;
      size_t live = 0;
      bool changed = false;
      for (size_t pos = 0; pos < members.size(); ++pos) {
        const Member& m = members[pos];
        bool ok;
        if (m.stored) {
          ok = m.has_crc ? m.crc == h.frag_crcs[pos] : true;
        } else {
          ok = h.frag_crcs[pos] == zero_frag_crc;  // sparse reads as zeros
        }
        if (ok) {
          ++live;
          continue;
        }
        if (m.stored) {
          // Wrong-generation fragment: destroy it and punch a hole at its
          // position so repair re-encodes it from verified survivors.
          (void)bens[static_cast<size_t>(m.bid)]->DeleteChunk(key);
          if (std::find(h.tainted.begin(), h.tainted.end(), m.bid) ==
              h.tainted.end()) {
            h.tainted.push_back(m.bid);
          }
        }
        keep[pos] = -1;
        changed = true;
        ++report->replicas_dropped;
      }
      if (live < static_cast<size_t>(config_.ec_k)) {
        mark_lost(h);  // below k survivors: not reconstructible
      } else if (changed) {
        PublishReplicasLocked(h, std::move(keep));
      }
      continue;
    }

    // Pick the authority the members must match:
    //  * the durable checksum, when at least one member still carries it
    //    (the common case);
    //  * else the checksum ALL data-holders agree on — a write that
    //    completed on the benefactors but whose completion record died
    //    with the crash ("new" wins, adopted as authoritative);
    //  * else the durable checksum alone (divergent members drop; sparse
    //    members survive only a zero-image authority);
    //  * with no checksum anywhere (integrity knobs off) nothing is
    //    decidable — keep the list as-is.
    bool have_auth = false;
    uint32_t auth = 0;
    if (h.has_crc) {
      for (const Member& m : members) {
        if (m.stored && m.has_crc && m.crc == h.crc) {
          have_auth = true;
          auth = h.crc;
          break;
        }
      }
      if (!have_auth && !any_data && h.crc == zero_crc) {
        have_auth = true;  // sparse members legitimately read as zeros
        auth = h.crc;
      }
    }
    if (!have_auth) {
      bool agreed = false;
      uint32_t agreed_crc = 0;
      for (const Member& m : members) {
        if (!m.stored || !m.has_crc) continue;
        if (!agreed) {
          agreed = true;
          agreed_crc = m.crc;
        } else if (m.crc != agreed_crc) {
          agreed = false;  // data-holders disagree: no adoptable truth
          break;
        }
      }
      if (agreed) {
        have_auth = true;
        auth = agreed_crc;
        if (!h.has_crc || h.crc != auth) {
          h.has_crc = true;
          h.crc = auth;
          ++report->crc_adopted;
        }
      }
    }
    if (!have_auth && h.has_crc) {
      have_auth = true;
      auth = h.crc;
    }
    if (!have_auth) continue;  // no checksum anywhere: nothing decidable

    std::vector<int> keep;
    keep.reserve(members.size());
    for (const Member& m : members) {
      bool ok;
      if (m.stored) {
        // A stored member without a recorded crc only occurs with the
        // integrity knobs off, where no authority can exist — under an
        // authority every stored member carries its write-time crc.
        ok = m.has_crc ? m.crc == auth : true;
      } else {
        ok = auth == zero_crc;  // sparse reads as zeros
      }
      if (ok) {
        keep.push_back(m.bid);
      } else {
        // Wrong-generation bytes: destroy them so nothing ever serves
        // them (the reservation settles in the final accounting pass).
        if (m.stored) {
          (void)bens[static_cast<size_t>(m.bid)]->DeleteChunk(key);
          // A member that diverged from the chunk's authority is a
          // correlated-loss source: the placement engine must not pick
          // it as a repair target for this very chunk
          // (placement_avoid_suspected).
          if (std::find(h.tainted.begin(), h.tainted.end(), m.bid) ==
              h.tainted.end()) {
            h.tainted.push_back(m.bid);
          }
        }
        ++report->replicas_dropped;
      }
    }
    if (keep.empty()) {
      mark_lost(h);
    } else if (keep != list) {
      PublishReplicasLocked(h, std::move(keep));
    }
  }

  // Orphan sweep: stored chunks the reconciled metadata no longer names
  // (unlink leftovers, abandoned COW clones, rolled-back fresh versions).
  for (size_t i = 0; i < bens.size(); ++i) {
    if (alive[i] == 0) continue;
    std::vector<ChunkKey> stored = bens[i]->StoredChunkKeys();
    std::sort(stored.begin(), stored.end(), KeyLess);
    for (const ChunkKey& key : stored) {
      const MetaShard& shard = shards_[shard_of(key)];
      auto it = shard.chunks.find(key);
      bool referenced = false;
      if (it != shard.chunks.end()) {
        auto l = it->second->replicas.load(std::memory_order_acquire);
        referenced = std::find(l->begin(), l->end(), static_cast<int>(i)) !=
                     l->end();
      }
      if (!referenced) {
        (void)bens[i]->DeleteChunk(key);
        ++report->orphans_deleted;
      }
    }
  }

  // Reservations are not logged: set each alive benefactor to the exact
  // byte footprint the reconciled metadata places on it — a full chunk per
  // replica, a fragment per erasure-stripe member.  (Dead benefactors keep
  // their accounting untouched, like the scrubber.)
  std::vector<uint64_t> expected(bens.size(), 0);
  for (const MetaShard& shard : shards_) {
    for (const auto& [key, h] : shard.chunks) {
      auto l = h->replicas.load(std::memory_order_acquire);
      for (int bid : *l) {
        if (bid >= 0 && static_cast<size_t>(bid) < bens.size()) {
          expected[static_cast<size_t>(bid)] += ChunkResBytes(h->ec);
        }
      }
    }
  }
  for (size_t i = 0; i < bens.size(); ++i) {
    if (alive[i] == 0) continue;
    const uint64_t reserved = bens[i]->bytes_used();
    if (reserved > expected[i]) {
      bens[i]->ReleaseBytes(reserved - expected[i]);
      ++report->reservation_fixes;
    } else if (reserved < expected[i]) {
      (void)bens[i]->ReserveBytes(expected[i] - reserved);
      ++report->reservation_fixes;
    }
  }

  report->files_recovered = files_.size();
  for (const MetaShard& shard : shards_) {
    report->chunks_recovered += shard.chunks.size();
  }
}

RecoveryReport Manager::Recover(sim::VirtualClock& clock) {
  RecoveryReport report;
  if (wal_ == nullptr) return report;
  NVM_CHECK(files_.empty() && next_file_id_ == 1,
            "Recover requires a fresh manager");

  WalStore::Replay replay = wal_->ReadForRecovery(clock);
  report.used_checkpoint = replay.used_checkpoint;
  report.checkpoint_seq = replay.covered_seq;
  // Reopen() ran first and already truncated any torn tail, so the replay
  // itself reads clean — the truncation memory is the real signal.
  report.torn_tail = replay.torn_tail || wal_->last_reopen_truncated();
  if (replay.used_checkpoint) {
    // The slot CRC already validated the bytes: a blob that fails to
    // decode is an encoder/decoder bug, not torn media.
    NVM_CHECK(DecodeCheckpoint(replay.checkpoint),
              "checkpoint blob failed to decode");
  }
  for (const WalRecord& rec : replay.records) {
    ApplyWalRecord(rec);
    ++report.records_replayed;
  }
  ReconcileWithBenefactors(clock, &report);
  return report;
}

}  // namespace nvm::store

#include "store/maintenance.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"

namespace nvm::store {

namespace {
constexpr int64_t kMsToNs = 1'000'000;
// Keys pulled from the queue per repair batch: large enough to amortise
// the plan/commit lock passes, small enough that the duty-cycle throttle
// interleaves repair with foreground traffic at chunk granularity.
constexpr size_t kRepairBatch = 8;
}  // namespace

MaintenanceService::MaintenanceService(Manager& manager)
    : manager_(manager),
      heartbeat_period_ns_(manager.config().heartbeat_period_ms * kMsToNs),
      heartbeat_misses_(manager.config().heartbeat_misses),
      bw_fraction_(manager.config().repair_bw_fraction),
      qos_on_(manager.config().qos),
      scrub_period_ns_(manager.config().scrub_period_ms * kMsToNs),
      // Checkpointing needs a WAL to write into; a wal-less manager (or a
      // zero period) disables the loop entirely.
      checkpoint_period_ns_(
          manager.wal() != nullptr
              ? manager.config().checkpoint_period_ms * kMsToNs
              : 0),
      queues_(manager.meta_shards()),
      next_heartbeat_ns_(heartbeat_period_ns_),
      next_scrub_ns_(scrub_period_ns_),
      next_checkpoint_ns_(checkpoint_period_ns_ > 0
                              ? checkpoint_period_ns_
                              : std::numeric_limits<int64_t>::max()),
      suspect_slots_(manager.num_benefactors()),
      suspect_counts_(
          std::make_unique<std::atomic<uint32_t>[]>(suspect_slots_)),
      worker_("maintenance") {
  NVM_CHECK(heartbeat_period_ns_ > 0, "heartbeat_period_ms must be positive");
  NVM_CHECK(heartbeat_misses_ >= 1, "heartbeat_misses must be >= 1");
  NVM_CHECK(bw_fraction_ > 0.0 && bw_fraction_ <= 1.0,
            "repair_bw_fraction must be in (0, 1]");
  NVM_CHECK(scrub_period_ns_ > 0, "scrub_period_ms must be positive");
  NVM_CHECK(checkpoint_period_ns_ >= 0,
            "checkpoint_period_ms must not be negative");
  next_due_.store(std::min({next_heartbeat_ns_, next_scrub_ns_,
                            next_checkpoint_ns_}),
                  std::memory_order_relaxed);
  manager_.AttachMaintenance(this);
}

MaintenanceService::~MaintenanceService() {
  // The detach takes the manager's hook lock exclusively, so it blocks
  // until every client thread already inside ReportDegraded/Tick has
  // returned — after it, no new call can reach this object.
  manager_.AttachMaintenance(nullptr);
  // worker_'s destructor runs any still-pending tasks and joins; every
  // other member outlives it (declaration order), so in-flight tasks stay
  // safe.
}

bool MaintenanceService::KickLocked() {
  if (kicked_) return false;
  kicked_ = true;
  return true;
}

bool MaintenanceService::Enqueue(const ChunkKey& key, int64_t now_ns) {
  QueueShard& q =
      queues_[static_cast<size_t>(ChunkKeyHash{}(key)) % queues_.size()];
  {
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.queued.insert(key).second) return false;  // already waiting
    q.queue.push_back(Pending{key, now_ns});
    // Bumped before the lock drops: RepairBatch decrements under this same
    // lock right after popping, so the add is ordered before any drain of
    // this entry and the unsigned counter can never transiently underflow.
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  enqueued_.Add(1);
  return true;
}

void MaintenanceService::ReportDegraded(const ChunkKey& key, int64_t now_ns) {
  reports_.Add(1);
  // The enqueue takes only the key's queue-shard lock; mu_ comes after
  // (never nested) for the schedule target and the kick token.  The
  // catch-up loop's final re-check runs under mu_ too, so the enqueue
  // above is visible to it — the kick handoff cannot lose this report.
  Enqueue(key, now_ns);
  bool post = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target_ns_ = std::max(target_ns_, now_ns);
    post = KickLocked();
  }
  if (post) worker_.Post([this](sim::VirtualClock& c) { CatchUp(c); });
}

void MaintenanceService::Tick(int64_t now_ns) {
  // Fast path: nothing due yet — one relaxed load per metadata RTT.
  if (now_ns < next_due_.load(std::memory_order_relaxed)) return;
  bool post = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target_ns_ = std::max(target_ns_, now_ns);
    post = KickLocked();
  }
  if (post) worker_.Post([this](sim::VirtualClock& c) { CatchUp(c); });
}

void MaintenanceService::RunUntil(int64_t deadline_ns) {
  bool post = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target_ns_ = std::max(target_ns_, deadline_ns);
    post = KickLocked();
  }
  if (post) worker_.Post([this](sim::VirtualClock& c) { CatchUp(c); });
  // A catch-up task re-posts itself while still marked busy whenever work
  // remains, so one Drain() observes the whole chain.
  worker_.Drain();
}

bool MaintenanceService::QueueEmpty() const {
  return queue_depth_.load(std::memory_order_relaxed) == 0;
}

std::vector<char> MaintenanceService::SuspectedSnapshot() const {
  std::vector<char> suspected(suspect_slots_, 0);
  for (size_t i = 0; i < suspect_slots_; ++i) {
    if (suspect_counts_[i].load(std::memory_order_relaxed) > 0) {
      suspected[i] = 1;
    }
  }
  return suspected;
}

void MaintenanceService::CatchUp(sim::VirtualClock& clock) {
  // Bounds how far a loop's schedule may fall behind the worker's own
  // clock.  An event whose cost exceeds its period (a 25ms scrub on a
  // 20ms cadence) accumulates replay backlog faster than it drains; with
  // unbounded replay every foreground Tick chases an ever-receding
  // schedule and the worker's virtual clock runs away exponentially.
  // Dropping only the slots beyond the window keeps moderate backlogs —
  // a repair burst's duty-cycle idle, a congested sweep — replaying at
  // exact fixed rate, which the failure-detector timing tests rely on,
  // while capping the per-catch-up work for a genuinely overrunning
  // loop (the schedule then stays within the window of the clock, so
  // each drain round is bounded instead of compounding).
  constexpr int64_t kMaxBacklogPeriods = 16;
  const auto reschedule = [&clock](int64_t& next, int64_t period) {
    next += period;
    const int64_t floor = clock.now() - kMaxBacklogPeriods * period;
    if (next < floor) next = floor;
  };
  for (;;) {
    // Queued repairs run first — a failure report outranks the schedule.
    if (queue_depth_.load(std::memory_order_relaxed) > 0) {
      RepairBatch(clock);
      continue;
    }
    int64_t target;
    {
      std::lock_guard<std::mutex> lock(mu_);
      target = target_ns_;
    }
    const int64_t due =
        std::min({next_heartbeat_ns_, next_scrub_ns_, next_checkpoint_ns_});
    if (due > target) break;  // schedule has caught up to foreground time
    clock.AdvanceTo(due);
    // Ties resolve heartbeat > scrub > checkpoint: liveness first, the
    // checkpoint last so it serialises the state the others just settled.
    if (next_heartbeat_ns_ == due) {
      HeartbeatSweep(clock);
      reschedule(next_heartbeat_ns_, heartbeat_period_ns_);
    } else if (next_scrub_ns_ == due) {
      ScrubPass(clock);
      reschedule(next_scrub_ns_, scrub_period_ns_);
    } else {
      CheckpointPass(clock);
      reschedule(next_checkpoint_ns_, checkpoint_period_ns_);
    }
  }
  next_due_.store(std::min({next_heartbeat_ns_, next_scrub_ns_,
                            next_checkpoint_ns_}),
                  std::memory_order_relaxed);
  bool again;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check under the lock: a report may have slipped in after the
    // loop's last look.  Either we run again or we hand the kick token
    // back — never both, so wakeups cannot be lost.  (A reporter bumps
    // queue_depth_ before taking mu_, so any enqueue that found the token
    // still held is visible to this load.)
    again = queue_depth_.load(std::memory_order_relaxed) > 0 ||
            std::min({next_heartbeat_ns_, next_scrub_ns_,
                      next_checkpoint_ns_}) <= target_ns_;
    if (!again) kicked_ = false;
  }
  if (again) worker_.Post([this](sim::VirtualClock& c) { CatchUp(c); });
}

void MaintenanceService::RepairBatch(sim::VirtualClock& clock) {
  // Drain round-robin across the queue shards from the worker's cursor,
  // FIFO within each shard — with one shard this is exactly the historic
  // single-FIFO pop, and with many no shard can starve the others.
  std::vector<ChunkKey> keys;
  int64_t report_floor = 0;
  for (size_t scanned = 0;
       scanned < queues_.size() && keys.size() < kRepairBatch; ++scanned) {
    QueueShard& q = queues_[(drain_cursor_ + scanned) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    while (!q.queue.empty() && keys.size() < kRepairBatch) {
      Pending p = std::move(q.queue.front());
      q.queue.pop_front();
      q.queued.erase(p.key);
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      report_floor = std::max(report_floor, p.reported_ns);
      keys.push_back(p.key);
    }
  }
  drain_cursor_ = (drain_cursor_ + 1) % queues_.size();
  if (keys.empty()) return;
  // Repair cannot begin before the failure was reported.
  clock.AdvanceTo(report_floor);
  batches_.Add(1);

  std::vector<Manager::RepairPlan> plans = manager_.PlanRepairs(clock, keys);
  const int64_t busy_start = clock.now();
  for (const Manager::RepairPlan& plan : plans) {
    if (plan.incomplete) capacity_misses_.Add(1);
    Manager::RepairOutcome out = manager_.ExecuteRepairPlan(clock, plan);
    bool requeue = false;
    recreated_.Add(manager_.CommitRepair(clock, out, &requeue));
    if (requeue) {
      // The chunk changed under the copy (or the copy fell short of the
      // plan); try again with fresh bytes.
      requeued_.Add(1);
      Enqueue(plan.key, clock.now());
    }
  }
  const int64_t busy = clock.now() - busy_start;
  repair_busy_ns_.fetch_add(busy, std::memory_order_relaxed);
  // Duty-cycle throttle: after `busy` ns of repair traffic the worker
  // idles busy*(1-f)/f ns.  The idle shows up as gaps in the device and
  // NIC timelines, which foreground requests backfill — so at f=0.1,
  // repair consumes at most ~10% of any resource over time.  With QoS on
  // the scheduler already paces maintenance per lane, so skip the idle.
  if (bw_fraction_ < 1.0 && busy > 0 && !qos_on_) {
    const auto idle = static_cast<int64_t>(
        static_cast<double>(busy) * (1.0 - bw_fraction_) / bw_fraction_);
    clock.Advance(idle);
    throttle_idle_ns_.fetch_add(idle, std::memory_order_relaxed);
  }
  if (queue_depth_.load(std::memory_order_relaxed) == 0) {
    converged_ns_.store(clock.now(), std::memory_order_relaxed);
  }
}

void MaintenanceService::HeartbeatSweep(sim::VirtualClock& clock) {
  std::vector<char> alive;
  manager_.CheckLiveness(clock, &alive);
  sweeps_.Add(1);
  if (missed_.size() < alive.size()) missed_.resize(alive.size(), 0);
  for (size_t i = 0; i < alive.size(); ++i) {
    if (alive[i]) {
      // A revived benefactor must miss the full threshold again before it
      // is re-declared — flapping cannot amplify into repair storms.
      missed_[i] = 0;
      if (i < suspect_slots_) {
        suspect_counts_[i].store(0, std::memory_order_relaxed);
      }
      continue;
    }
    ++missed_[i];
    if (i < suspect_slots_) {
      suspect_counts_[i].store(static_cast<uint32_t>(missed_[i]),
                               std::memory_order_relaxed);
    }
    if (missed_[i] == 1) suspected_.Add(1);
    if (missed_[i] == heartbeat_misses_) {
      // Suspicion confirmed: everything that held a replica there is now
      // under-replicated.
      declared_dead_.Add(1);
      std::vector<ChunkKey> degraded =
          manager_.ChunksWithReplicasOn(static_cast<int>(i));
      for (const ChunkKey& key : degraded) Enqueue(key, clock.now());
    }
  }
}

void MaintenanceService::ScrubPass(sim::VirtualClock& clock) {
  Manager::ScrubResult result = manager_.ScrubOnce(clock);
  scrub_passes_.Add(1);
  scrub_orphans_.Add(result.orphans_deleted);
  scrub_res_fixes_.Add(result.reservation_fixes);

  Manager::VerifyResult verified;
  if (manager_.config().scrub_verify) {
    // Incremental checksum verification, bounded per pass and throttled
    // like repair: the verification reads keep devices busy, so the worker
    // idles afterwards and foreground traffic backfills the gap.
    const int64_t busy_start = clock.now();
    verified =
        manager_.VerifyScrub(clock, manager_.config().scrub_verify_bytes);
    scrub_chunks_verified_.Add(verified.chunks_checked);
    scrub_bytes_verified_.Add(verified.bytes_checked);
    const int64_t busy = clock.now() - busy_start;
    if (bw_fraction_ < 1.0 && busy > 0 && !qos_on_) {
      const auto idle = static_cast<int64_t>(
          static_cast<double>(busy) * (1.0 - bw_fraction_) / bw_fraction_);
      clock.Advance(idle);
      throttle_idle_ns_.fetch_add(idle, std::memory_order_relaxed);
    }
  }

  for (const ChunkKey& key : result.under_replicated) {
    // Chunks the report path missed (e.g. a benefactor died between
    // flushes, with no write around to notice).
    if (Enqueue(key, clock.now())) scrub_requeued_.Add(1);
  }
  for (const ChunkKey& key : verified.quarantined) {
    // Quarantined bit rot with a verified survivor: re-replicate.
    if (Enqueue(key, clock.now())) scrub_requeued_.Add(1);
  }
}

void MaintenanceService::CheckpointPass(sim::VirtualClock& clock) {
  // Serialise the metadata plane into the WAL's checkpoint store.  The
  // charge (metadata op + log-device write) lands on the worker's clock:
  // metadata durability is background work with a virtual-time cost, the
  // same accounting frame as repair and scrub.
  manager_.Checkpoint(clock);
  checkpoints_.Add(1);
}

MaintenanceStats MaintenanceService::stats() const {
  MaintenanceStats s;
  s.heartbeat_sweeps = sweeps_.value();
  s.benefactors_suspected = suspected_.value();
  s.benefactors_declared_dead = declared_dead_.value();
  s.degraded_reports = reports_.value();
  s.repairs_enqueued = enqueued_.value();
  s.repair_batches = batches_.value();
  s.replicas_recreated = recreated_.value();
  s.repairs_requeued = requeued_.value();
  s.repair_capacity_misses = capacity_misses_.value();
  s.lost_chunks = manager_.lost_chunks();
  s.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  s.repair_busy_ns = repair_busy_ns_.load(std::memory_order_relaxed);
  s.throttle_idle_ns = throttle_idle_ns_.load(std::memory_order_relaxed);
  s.converged_at_ns = converged_ns_.load(std::memory_order_relaxed);
  s.scrub_passes = scrub_passes_.value();
  s.scrub_orphans_deleted = scrub_orphans_.value();
  s.scrub_reservation_fixes = scrub_res_fixes_.value();
  s.scrub_requeued = scrub_requeued_.value();
  s.checkpoints = checkpoints_.value();
  s.scrub_chunks_verified = scrub_chunks_verified_.value();
  s.scrub_bytes_verified = scrub_bytes_verified_.value();
  s.corrupt_chunks_detected = manager_.corrupt_detected();
  s.corrupt_chunks_repaired = manager_.corrupt_repaired();
  s.clock_ns = worker_.now_ns();
  return s;
}

}  // namespace nvm::store

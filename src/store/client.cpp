#include "store/client.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/log.hpp"

namespace nvm::store {

StoreClient::StoreClient(net::Cluster& cluster, Manager& manager,
                         int local_node)
    : cluster_(cluster), manager_(manager), local_node_(local_node) {}

void StoreClient::ChargeMetaRoundTrip(sim::VirtualClock& clock) {
  const StoreConfig& cfg = manager_.config();
  meta_rtts_.Add(1);
  cluster_.network().Transfer(clock, local_node_, manager_.node_id(),
                              cfg.meta_request_bytes);
  cluster_.network().Transfer(clock, manager_.node_id(), local_node_,
                              cfg.meta_response_bytes);
}

StatusOr<FileId> StoreClient::Create(sim::VirtualClock& clock,
                                     const std::string& name) {
  ChargeMetaRoundTrip(clock);
  return manager_.CreateFile(clock, name);
}

StatusOr<FileId> StoreClient::Open(sim::VirtualClock& clock,
                                   const std::string& name) {
  ChargeMetaRoundTrip(clock);
  return manager_.LookupFile(clock, name);
}

StatusOr<FileInfo> StoreClient::Stat(sim::VirtualClock& clock, FileId id) {
  ChargeMetaRoundTrip(clock);
  return manager_.Stat(clock, id);
}

Status StoreClient::Fallocate(sim::VirtualClock& clock, FileId id,
                              uint64_t size) {
  ChargeMetaRoundTrip(clock);
  return manager_.Fallocate(clock, id, size, local_node_);
}

Status StoreClient::Unlink(sim::VirtualClock& clock, FileId id) {
  ChargeMetaRoundTrip(clock);
  return manager_.Unlink(clock, id);
}

StatusOr<uint64_t> StoreClient::LinkFileChunks(sim::VirtualClock& clock,
                                               FileId dst, FileId src) {
  ChargeMetaRoundTrip(clock);
  return manager_.LinkFileChunks(clock, dst, src);
}

StatusOr<ReadLocation> StoreClient::LookupRead(sim::VirtualClock& clock,
                                               FileId id,
                                               uint32_t chunk_index,
                                               bool refresh) {
  const LocKey key{id, chunk_index};
  if (!refresh) {
    std::lock_guard<std::mutex> lock(loc_mutex_);
    auto it = loc_cache_.find(key);
    if (it != loc_cache_.end()) return it->second;
  }
  ChargeMetaRoundTrip(clock);
  NVM_ASSIGN_OR_RETURN(ReadLocation loc,
                       manager_.GetReadLocation(clock, id, chunk_index));
  std::lock_guard<std::mutex> lock(loc_mutex_);
  loc_cache_[key] = loc;
  return loc;
}

Status StoreClient::LookupReadMany(sim::VirtualClock& clock, FileId id,
                                   uint32_t first, uint32_t count) {
  if (count == 0) return OkStatus();
  bool all_cached = true;
  {
    std::lock_guard<std::mutex> lock(loc_mutex_);
    for (uint32_t i = 0; i < count; ++i) {
      if (!loc_cache_.contains(LocKey{id, first + i})) {
        all_cached = false;
        break;
      }
    }
  }
  if (all_cached) return OkStatus();
  ChargeMetaRoundTrip(clock);
  NVM_ASSIGN_OR_RETURN(std::vector<ReadLocation> locs,
                       manager_.GetReadLocations(clock, id, first, count));
  std::lock_guard<std::mutex> lock(loc_mutex_);
  for (uint32_t i = 0; i < locs.size(); ++i) {
    loc_cache_[LocKey{id, first + i}] = locs[i];
  }
  return OkStatus();
}

void StoreClient::InvalidateLocation(FileId id, uint32_t chunk_index) {
  std::lock_guard<std::mutex> lock(loc_mutex_);
  loc_cache_.erase(LocKey{id, chunk_index});
}

Status StoreClient::ReadChunk(sim::VirtualClock& clock, FileId id,
                              uint32_t chunk_index, std::span<uint8_t> out) {
  const StoreConfig& cfg = manager_.config();
  NVM_CHECK(out.size() == cfg.chunk_bytes);

  for (int attempt = 0; attempt < 2; ++attempt) {
    // Second attempt forces a fresh manager lookup (the cached location
    // may be stale after a COW or a benefactor failure).
    NVM_ASSIGN_OR_RETURN(
        ReadLocation loc,
        LookupRead(clock, id, chunk_index, /*refresh=*/attempt > 0));

    Status last = Unavailable("no replicas");
    for (int bid : loc.benefactors) {
      Benefactor* b = manager_.benefactor(bid);
      NVM_CHECK(b != nullptr);
      // Request message to the benefactor, then the chunk comes back.
      cluster_.network().Transfer(clock, local_node_, b->node_id(),
                                  cfg.meta_request_bytes);
      bool sparse = false;
      Status s = b->ReadChunk(clock, loc.key, out, &sparse);
      if (s.ok()) {
        // A hole costs only the "no such chunk" reply, not a data
        // transfer.
        cluster_.network().Transfer(
            clock, b->node_id(), local_node_,
            sparse ? cfg.meta_response_bytes : cfg.chunk_bytes);
        if (!sparse) bytes_fetched_.Add(cfg.chunk_bytes);
        return OkStatus();
      }
      last = s;
      if (s.code() == ErrorCode::kUnavailable) {
        manager_.MarkDead(bid);
        NVM_WLOG("benefactor %d unavailable reading %s; trying next replica",
                 bid, loc.key.ToString().c_str());
      }
    }
    InvalidateLocation(id, chunk_index);
    if (attempt > 0) return last;
  }
  return Unavailable("no replicas");
}

Status StoreClient::ReadRun(sim::VirtualClock& clock,
                            const BenefactorRun& run,
                            std::span<const ReadLocation> locs,
                            std::span<ChunkFetch> fetches) {
  const StoreConfig& cfg = manager_.config();
  Benefactor* b = manager_.benefactor(run.benefactor);
  NVM_CHECK(b != nullptr);
  run_rpcs_.Add(1);

  // One request header covers the whole run.
  cluster_.network().Transfer(clock, local_node_, b->node_id(),
                              cfg.meta_request_bytes);

  std::vector<ChunkKey> keys;
  keys.reserve(run.items.size());
  for (size_t idx : run.items) keys.push_back(locs[idx].key);

  // The reply is one stream: each chunk is pushed as soon as it leaves the
  // device and rides back-to-back behind its predecessor on the NICs.
  net::StreamTransfer reply(cluster_.network(), b->node_id(), local_node_);
  size_t next = 0;
  uint64_t data_bytes = 0;
  Status streamed = b->ReadChunkRun(
      clock, keys,
      [&](const ChunkRunItem& item, std::span<const uint8_t> data) -> Status {
        ChunkFetch& f = fetches[run.items[next]];
        ++next;
        if (item.sparse) {
          // A hole costs only the "no such chunk" marker in the stream.
          std::memset(f.out.data(), 0, f.out.size());
          f.ready_at = reply.Push(item.ready_at, cfg.meta_response_bytes);
        } else {
          NVM_CHECK(data.size() == f.out.size());
          std::memcpy(f.out.data(), data.data(), data.size());
          f.ready_at = reply.Push(item.ready_at, cfg.chunk_bytes);
          data_bytes += cfg.chunk_bytes;
        }
        f.status = OkStatus();
        return OkStatus();
      });
  if (!streamed.ok()) return streamed;
  bytes_fetched_.Add(data_bytes);
  return OkStatus();
}

Status StoreClient::ReadChunks(sim::VirtualClock& clock, FileId id,
                               std::span<ChunkFetch> fetches) {
  if (fetches.empty()) return OkStatus();
  const StoreConfig& cfg = manager_.config();
  uint32_t lo = fetches[0].index;
  uint32_t hi = fetches[0].index;
  for (const ChunkFetch& f : fetches) {
    lo = std::min(lo, f.index);
    hi = std::max(hi, f.index);
  }
  // One control-plane hop covers the whole span (present chunks included —
  // the extra locations just warm the cache).
  NVM_RETURN_IF_ERROR(LookupReadMany(clock, id, lo, hi - lo + 1));
  const int64_t t0 = clock.now();

  if (!cfg.batch_rpc) {
    for (ChunkFetch& f : fetches) {
      // Each transfer branches off the post-lookup time: requests to
      // distinct benefactors overlap, and shared NICs/devices serialise
      // naturally through their modelled resources.  The location cache is
      // already warm, so ReadChunk issues no further lookups unless a
      // replica fails.
      sim::VirtualClock detached(t0);
      f.status = ReadChunk(detached, id, f.index, f.out);
      f.ready_at = detached.now();
    }
    return OkStatus();
  }

  // Resolve the batch from the (just warmed) location cache.  A fetch with
  // no cached location (beyond EOF) keeps the per-chunk path so it reports
  // the usual per-chunk error.
  std::vector<ReadLocation> locs(fetches.size());
  {
    std::lock_guard<std::mutex> lock(loc_mutex_);
    for (size_t i = 0; i < fetches.size(); ++i) {
      auto it = loc_cache_.find(LocKey{id, fetches[i].index});
      if (it != loc_cache_.end()) locs[i] = it->second;
    }
  }
  for (size_t i = 0; i < fetches.size(); ++i) {
    if (!locs[i].benefactors.empty()) continue;
    sim::VirtualClock detached(t0);
    fetches[i].status = ReadChunk(detached, id, fetches[i].index,
                                  fetches[i].out);
    fetches[i].ready_at = detached.now();
  }

  // One streamed run per benefactor, each on its own clock branched at the
  // post-lookup time, so runs against distinct benefactors overlap.
  for (const BenefactorRun& run : GroupByPrimaryBenefactor(locs)) {
    sim::VirtualClock run_clock(t0);
    Status s = ReadRun(run_clock, run, locs, fetches);
    if (s.ok()) continue;
    if (s.code() == ErrorCode::kUnavailable) {
      manager_.MarkDead(run.benefactor);
      NVM_WLOG(
          "benefactor %d failed mid-run (%zu chunks); discarding the run "
          "and falling back to per-chunk reads",
          run.benefactor, run.items.size());
    }
    // The run failed as a whole: nothing it streamed counts.  Re-read every
    // chunk through the per-chunk path, which refreshes stale locations and
    // falls over to surviving replicas.
    for (size_t idx : run.items) {
      sim::VirtualClock fallback(t0);
      fetches[idx].status =
          ReadChunk(fallback, id, fetches[idx].index, fetches[idx].out);
      fetches[idx].ready_at = fallback.now();
    }
  }
  return OkStatus();
}

Status StoreClient::WriteChunkPages(sim::VirtualClock& clock, FileId id,
                                    uint32_t chunk_index,
                                    const Bitmap& dirty_pages,
                                    std::span<const uint8_t> chunk_image) {
  const StoreConfig& cfg = manager_.config();
  NVM_CHECK(chunk_image.size() == cfg.chunk_bytes);
  if (dirty_pages.None()) return OkStatus();

  ChargeMetaRoundTrip(clock);
  NVM_ASSIGN_OR_RETURN(WriteLocation loc,
                       manager_.PrepareWrite(clock, id, chunk_index));
  {
    // The write may have produced a new chunk version: refresh the read
    // cache so later fetches hit the right key.
    std::lock_guard<std::mutex> lock(loc_mutex_);
    loc_cache_[LocKey{id, chunk_index}] =
        ReadLocation{loc.key, loc.benefactors};
  }

  const uint64_t dirty_bytes = dirty_pages.PopCount() * cfg.page_bytes;
  Status result = OkStatus();
  for (int bid : loc.benefactors) {
    Benefactor* b = manager_.benefactor(bid);
    NVM_CHECK(b != nullptr);
    if (loc.needs_clone) {
      // COW: instruct the benefactor to clone locally before the write.
      cluster_.network().Transfer(clock, local_node_, b->node_id(),
                                  cfg.meta_request_bytes);
      NVM_RETURN_IF_ERROR(b->CloneChunk(clock, loc.clone_from, loc.key));
    }
    // Ship only the dirty pages.
    cluster_.network().Transfer(clock, local_node_, b->node_id(),
                                dirty_bytes + cfg.meta_request_bytes);
    Status s = b->WritePages(clock, loc.key, dirty_pages, chunk_image);
    if (!s.ok()) {
      if (s.code() == ErrorCode::kUnavailable) manager_.MarkDead(bid);
      result = s;
      continue;
    }
    cluster_.network().Transfer(clock, b->node_id(), local_node_,
                                cfg.meta_response_bytes);
    bytes_flushed_.Add(dirty_bytes);
  }
  return result;
}

void StoreClient::ResetCounters() {
  bytes_fetched_.Reset();
  bytes_flushed_.Reset();
  meta_rtts_.Reset();
  run_rpcs_.Reset();
}

}  // namespace nvm::store

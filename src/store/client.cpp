#include "store/client.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/checksum.hpp"
#include "common/log.hpp"
#include "store/erasure.hpp"
#include "store/qos.hpp"

namespace nvm::store {

StoreClient::StoreClient(net::Cluster& cluster, Manager& manager,
                         int local_node, QosScheduler* qos)
    : cluster_(cluster),
      manager_(manager),
      local_node_(local_node),
      qos_(qos) {}

void StoreClient::ChargeMetaRoundTrip(sim::VirtualClock& clock) {
  const StoreConfig& cfg = manager_.config();
  meta_rtts_.Add(1);
  cluster_.network().Transfer(clock, local_node_, manager_.node_id(),
                              cfg.meta_request_bytes);
  cluster_.network().Transfer(clock, manager_.node_id(), local_node_,
                              cfg.meta_response_bytes);
  // Every manager contact also paces the background maintenance worker:
  // its heartbeat/scrub schedule follows foreground virtual time.
  manager_.MaintenanceTick(clock.now());
}

StatusOr<FileId> StoreClient::Create(sim::VirtualClock& clock,
                                     const std::string& name) {
  ChargeMetaRoundTrip(clock);
  return manager_.CreateFile(clock, name);
}

StatusOr<FileId> StoreClient::Open(sim::VirtualClock& clock,
                                   const std::string& name) {
  ChargeMetaRoundTrip(clock);
  return manager_.LookupFile(clock, name);
}

StatusOr<FileInfo> StoreClient::Stat(sim::VirtualClock& clock, FileId id) {
  ChargeMetaRoundTrip(clock);
  return manager_.Stat(clock, id);
}

Status StoreClient::Fallocate(sim::VirtualClock& clock, FileId id,
                              uint64_t size) {
  ChargeMetaRoundTrip(clock);
  return manager_.Fallocate(clock, id, size, local_node_);
}

Status StoreClient::Unlink(sim::VirtualClock& clock, FileId id) {
  ChargeMetaRoundTrip(clock);
  return manager_.Unlink(clock, id);
}

StatusOr<uint64_t> StoreClient::LinkFileChunks(sim::VirtualClock& clock,
                                               FileId dst, FileId src) {
  ChargeMetaRoundTrip(clock);
  return manager_.LinkFileChunks(clock, dst, src);
}

StatusOr<ReadLocation> StoreClient::LookupRead(sim::VirtualClock& clock,
                                               FileId id,
                                               uint32_t chunk_index,
                                               bool refresh) {
  const LocKey key{id, chunk_index};
  if (!refresh) {
    std::lock_guard<std::mutex> lock(loc_mutex_);
    auto it = loc_cache_.find(key);
    if (it != loc_cache_.end()) return it->second;
  }
  ChargeMetaRoundTrip(clock);
  NVM_ASSIGN_OR_RETURN(ReadLocation loc,
                       manager_.GetReadLocation(clock, id, chunk_index));
  std::lock_guard<std::mutex> lock(loc_mutex_);
  loc_cache_[key] = loc;
  return loc;
}

Status StoreClient::LookupReadMany(sim::VirtualClock& clock, FileId id,
                                   uint32_t first, uint32_t count) {
  if (count == 0) return OkStatus();
  bool all_cached = true;
  {
    std::lock_guard<std::mutex> lock(loc_mutex_);
    for (uint32_t i = 0; i < count; ++i) {
      if (!loc_cache_.contains(LocKey{id, first + i})) {
        all_cached = false;
        break;
      }
    }
  }
  if (all_cached) return OkStatus();
  ChargeMetaRoundTrip(clock);
  NVM_ASSIGN_OR_RETURN(std::vector<ReadLocation> locs,
                       manager_.GetReadLocations(clock, id, first, count));
  std::lock_guard<std::mutex> lock(loc_mutex_);
  for (uint32_t i = 0; i < locs.size(); ++i) {
    loc_cache_[LocKey{id, first + i}] = locs[i];
  }
  return OkStatus();
}

void StoreClient::InvalidateLocation(FileId id, uint32_t chunk_index) {
  std::lock_guard<std::mutex> lock(loc_mutex_);
  loc_cache_.erase(LocKey{id, chunk_index});
}

Status StoreClient::ReadChunk(sim::VirtualClock& clock, FileId id,
                              uint32_t chunk_index, std::span<uint8_t> out) {
  const int64_t t0 = clock.now();
  Status s = ReadChunkInner(clock, id, chunk_index, out);
  if (s.ok() && qos_ != nullptr) qos_->RecordRead(tenant_, clock.now() - t0);
  return s;
}

Status StoreClient::ReadChunkInner(sim::VirtualClock& clock, FileId id,
                                   uint32_t chunk_index,
                                   std::span<uint8_t> out) {
  const StoreConfig& cfg = manager_.config();
  NVM_CHECK(out.size() == cfg.chunk_bytes);

  for (int attempt = 0; attempt < 2; ++attempt) {
    // Second attempt forces a fresh manager lookup (the cached location
    // may be stale after a COW or a benefactor failure).
    NVM_ASSIGN_OR_RETURN(
        ReadLocation loc,
        LookupRead(clock, id, chunk_index, /*refresh=*/attempt > 0));

    if (loc.ec) {
      Status s = ReadStripe(clock, id, chunk_index, loc, out);
      if (s.ok()) return s;
      // Below k readable fragments on this resolution: quarantines and
      // MarkDeads already went to the manager, so a fresh lookup may see
      // a repaired stripe.
      InvalidateLocation(id, chunk_index);
      if (attempt > 0) return s;
      continue;
    }

    Status last = Unavailable("no replicas");
    for (int bid : loc.benefactors) {
      Benefactor* b = manager_.benefactor(bid);
      NVM_CHECK(b != nullptr);
      // Request message to the benefactor, then the chunk comes back.
      cluster_.network().Transfer(clock, local_node_, b->node_id(),
                                  cfg.meta_request_bytes);
      bool sparse = false;
      Status s = b->ReadChunk(clock, loc.key, out, &sparse, tenant_);
      if (s.ok()) {
        // A hole costs only the "no such chunk" reply, not a data
        // transfer.
        cluster_.network().Transfer(
            clock, b->node_id(), local_node_,
            sparse ? cfg.meta_response_bytes : cfg.chunk_bytes);
        if (!sparse) bytes_fetched_.Add(cfg.chunk_bytes);
        return OkStatus();
      }
      last = s;
      if (s.code() == ErrorCode::kUnavailable) {
        manager_.MarkDead(bid);
        NVM_WLOG("benefactor %d unavailable reading %s; trying next replica",
                 bid, loc.key.ToString().c_str());
      } else if (s.code() == ErrorCode::kCorrupt) {
        // The replica failed its checksum: treat it like a dead copy.
        // ReportCorrupt quarantines it at the manager (strips the replica,
        // queues a repair from a verified survivor); the cached location
        // now names a stripped replica, so drop it before the next read
        // resolves afresh.
        corrupt_failovers_.Add(1);
        manager_.ReportCorrupt(clock, loc.key, bid);
        InvalidateLocation(id, chunk_index);
        NVM_WLOG("benefactor %d served corrupt %s; trying next replica",
                 bid, loc.key.ToString().c_str());
      }
    }
    InvalidateLocation(id, chunk_index);
    if (attempt > 0) return last;
  }
  return Unavailable("no replicas");
}

Status StoreClient::ReadStripe(sim::VirtualClock& clock, FileId id,
                               uint32_t chunk_index, const ReadLocation& loc,
                               std::span<uint8_t> out) {
  const StoreConfig& cfg = manager_.config();
  const size_t k = cfg.ec_k;
  const size_t nf = cfg.ec_fragments();
  const uint64_t fb = cfg.ec_frag_bytes();
  if (loc.benefactors.size() != nf) {
    return Unavailable("erasure stripe lost");  // durably below k survivors
  }

  // Live positions in preference order: data fragments first (the
  // systematic fast path), parity fills in for holes and failures.
  std::vector<size_t> candidates;
  candidates.reserve(nf);
  for (size_t pos = 0; pos < nf; ++pos) {
    if (loc.benefactors[pos] >= 0) candidates.push_back(pos);
  }

  std::vector<std::vector<uint8_t>> frags(nf);
  size_t good = 0;
  size_t next = 0;
  bool saw_corrupt = false;
  Status last = Unavailable("fewer than k fragments readable");
  // Each round issues the (k - good) outstanding fetches in parallel —
  // clocks forked at the round start, joined at the max — and failures
  // discovered at the join pull the next candidates in a follow-up round.
  int64_t round_start = clock.now();
  while (good < k && next < candidates.size()) {
    int64_t join = round_start;
    const size_t want = std::min(candidates.size(), next + (k - good));
    const size_t begin = next;
    next = want;
    for (size_t c = begin; c < want; ++c) {
      const size_t pos = candidates[c];
      const int bid = loc.benefactors[pos];
      Benefactor* b = manager_.benefactor(bid);
      NVM_CHECK(b != nullptr);
      sim::VirtualClock frag_clock(round_start);
      cluster_.network().Transfer(frag_clock, local_node_, b->node_id(),
                                  cfg.meta_request_bytes);
      std::vector<uint8_t> buf(fb);
      bool sparse = false;
      Status s = b->ReadFragment(frag_clock, loc.key, buf, &sparse, tenant_);
      if (s.ok()) {
        // A hole costs only the "no such fragment" reply (it reads as
        // zeros — a never-written region of the stripe).
        cluster_.network().Transfer(
            frag_clock, b->node_id(), local_node_,
            sparse ? cfg.meta_response_bytes : fb);
        if (!sparse) bytes_fetched_.Add(fb);
        frags[pos] = std::move(buf);
        ++good;
      } else {
        last = s;
        if (s.code() == ErrorCode::kUnavailable) {
          manager_.MarkDead(bid);
          NVM_WLOG(
              "benefactor %d unavailable reading fragment %zu of %s; "
              "falling over to parity",
              bid, pos, loc.key.ToString().c_str());
        } else if (s.code() == ErrorCode::kCorrupt) {
          // The fragment failed its checksum: rot surfaces as CORRUPT,
          // never as wrong bytes in the assembled chunk.  Quarantine it
          // and reconstruct from the survivors.
          saw_corrupt = true;
          corrupt_failovers_.Add(1);
          manager_.ReportCorrupt(frag_clock, loc.key, bid);
          NVM_WLOG("benefactor %d served corrupt fragment %zu of %s; "
                   "falling over to parity",
                   bid, pos, loc.key.ToString().c_str());
        }
      }
      join = std::max(join, frag_clock.now());
    }
    clock.AdvanceTo(join);
    round_start = join;
  }
  if (saw_corrupt) {
    // The quarantine punched a hole this cached location still names.
    InvalidateLocation(id, chunk_index);
  }
  if (good < k) return last;

  bool data_complete = true;
  for (size_t pos = 0; pos < k; ++pos) {
    if (frags[pos].empty()) data_complete = false;
  }
  if (!data_complete) {
    // Degraded read: any k of the k+m fragments reconstruct the chunk.
    // The matrix solve is charged as one chunk through the encode engine.
    ec_degraded_reads_.Add(1);
    manager_.NoteEcDegradedRead();
    clock.Advance(cfg.ec_encode_ns(cfg.chunk_bytes));
    ErasureCodec codec(cfg.ec_k, cfg.ec_m);
    NVM_CHECK(codec.Reconstruct(frags),
              "k fragments must reconstruct the stripe");
  }
  ErasureCodec::Assemble(frags, cfg.ec_k, out);
  return OkStatus();
}

Status StoreClient::ReadRun(sim::VirtualClock& clock,
                            const BenefactorRun& run,
                            std::span<const ReadLocation> locs,
                            std::span<ChunkFetch> fetches) {
  const StoreConfig& cfg = manager_.config();
  Benefactor* b = manager_.benefactor(run.benefactor);
  NVM_CHECK(b != nullptr);
  run_rpcs_.Add(1);

  // One request header covers the whole run.
  cluster_.network().Transfer(clock, local_node_, b->node_id(),
                              cfg.meta_request_bytes);

  std::vector<ChunkKey> keys;
  keys.reserve(run.items.size());
  for (size_t idx : run.items) keys.push_back(locs[idx].key);

  // The reply is one stream: each chunk is pushed as soon as it leaves the
  // device and rides back-to-back behind its predecessor on the NICs.
  net::StreamTransfer reply(cluster_.network(), b->node_id(), local_node_);
  size_t next = 0;
  uint64_t data_bytes = 0;
  Status streamed = b->ReadChunkRun(
      clock, keys,
      [&](const ChunkRunItem& item, std::span<const uint8_t> data) -> Status {
        ChunkFetch& f = fetches[run.items[next]];
        ++next;
        if (item.sparse) {
          // A hole costs only the "no such chunk" marker in the stream.
          std::memset(f.out.data(), 0, f.out.size());
          f.ready_at = reply.Push(item.ready_at, cfg.meta_response_bytes);
        } else {
          NVM_CHECK(data.size() == f.out.size());
          std::memcpy(f.out.data(), data.data(), data.size());
          f.ready_at = reply.Push(item.ready_at, cfg.chunk_bytes);
          data_bytes += cfg.chunk_bytes;
        }
        f.status = OkStatus();
        return OkStatus();
      },
      tenant_);
  if (!streamed.ok()) return streamed;
  bytes_fetched_.Add(data_bytes);
  return OkStatus();
}

Status StoreClient::ReadChunks(sim::VirtualClock& clock, FileId id,
                               std::span<ChunkFetch> fetches) {
  const int64_t t_entry = clock.now();
  Status s = ReadChunksInner(clock, id, fetches);
  if (s.ok() && qos_ != nullptr) {
    for (const ChunkFetch& f : fetches) {
      if (f.status.ok()) qos_->RecordRead(tenant_, f.ready_at - t_entry);
    }
  }
  return s;
}

Status StoreClient::ReadChunksInner(sim::VirtualClock& clock, FileId id,
                                    std::span<ChunkFetch> fetches) {
  if (fetches.empty()) return OkStatus();
  const StoreConfig& cfg = manager_.config();
  uint32_t lo = fetches[0].index;
  uint32_t hi = fetches[0].index;
  for (const ChunkFetch& f : fetches) {
    lo = std::min(lo, f.index);
    hi = std::max(hi, f.index);
  }
  // One control-plane hop covers the whole span (present chunks included —
  // the extra locations just warm the cache).
  NVM_RETURN_IF_ERROR(LookupReadMany(clock, id, lo, hi - lo + 1));
  const int64_t t0 = clock.now();

  // Erasure stripes scatter a chunk across k+m benefactors, so there is no
  // primary holder to stream a run from: every chunk takes the per-chunk
  // stripe path on its own detached clock.
  if (!cfg.batch_rpc || cfg.ec()) {
    for (ChunkFetch& f : fetches) {
      // Each transfer branches off the post-lookup time: requests to
      // distinct benefactors overlap, and shared NICs/devices serialise
      // naturally through their modelled resources.  The location cache is
      // already warm, so ReadChunk issues no further lookups unless a
      // replica fails.
      sim::VirtualClock detached(t0);
      f.status = ReadChunkInner(detached, id, f.index, f.out);
      f.ready_at = detached.now();
    }
    return OkStatus();
  }

  // Resolve the batch from the (just warmed) location cache.  A fetch with
  // no cached location (beyond EOF) keeps the per-chunk path so it reports
  // the usual per-chunk error.
  std::vector<ReadLocation> locs(fetches.size());
  {
    std::lock_guard<std::mutex> lock(loc_mutex_);
    for (size_t i = 0; i < fetches.size(); ++i) {
      auto it = loc_cache_.find(LocKey{id, fetches[i].index});
      if (it != loc_cache_.end()) locs[i] = it->second;
    }
  }
  for (size_t i = 0; i < fetches.size(); ++i) {
    if (!locs[i].benefactors.empty()) continue;
    sim::VirtualClock detached(t0);
    fetches[i].status = ReadChunkInner(detached, id, fetches[i].index,
                                       fetches[i].out);
    fetches[i].ready_at = detached.now();
  }

  // One streamed run per benefactor, each on its own clock branched at the
  // post-lookup time, so runs against distinct benefactors overlap.
  for (const BenefactorRun& run : Manager::GroupByPrimaryBenefactor(locs)) {
    sim::VirtualClock run_clock(t0);
    Status s = ReadRun(run_clock, run, locs, fetches);
    if (s.ok()) continue;
    if (s.code() == ErrorCode::kUnavailable) {
      manager_.MarkDead(run.benefactor);
      NVM_WLOG(
          "benefactor %d failed mid-run (%zu chunks); discarding the run "
          "and falling back to per-chunk reads",
          run.benefactor, run.items.size());
    }
    // The run failed as a whole: nothing it streamed counts.  Re-read every
    // chunk through the per-chunk path, which refreshes stale locations and
    // falls over to surviving replicas.
    for (size_t idx : run.items) {
      sim::VirtualClock fallback(t0);
      fetches[idx].status =
          ReadChunkInner(fallback, id, fetches[idx].index, fetches[idx].out);
      fetches[idx].ready_at = fallback.now();
    }
  }
  return OkStatus();
}

Status StoreClient::WriteReplica(sim::VirtualClock& clock,
                                 const WriteLocation& loc, int bid,
                                 const Bitmap& dirty_pages,
                                 std::span<const uint8_t> chunk_image,
                                 const uint32_t* crc, uint32_t* stored_crc) {
  const StoreConfig& cfg = manager_.config();
  Benefactor* b = manager_.benefactor(bid);
  NVM_CHECK(b != nullptr);
  if (loc.needs_clone) {
    // COW: instruct the benefactor to clone locally before the write.
    cluster_.network().Transfer(clock, local_node_, b->node_id(),
                                cfg.meta_request_bytes);
    NVM_RETURN_IF_ERROR(
        b->CloneChunk(clock, loc.clone_from, loc.key, tenant_));
  }
  // Ship only the dirty pages — admission first: the scheduler gates the
  // request before its bytes occupy the benefactor's NIC.
  const uint64_t dirty_bytes = dirty_pages.PopCount() * cfg.page_bytes;
  b->AdmitTransfer(clock, tenant_, dirty_bytes, /*is_write=*/true,
                   dirty_bytes + cfg.meta_request_bytes);
  cluster_.network().Transfer(clock, local_node_, b->node_id(),
                              dirty_bytes + cfg.meta_request_bytes);
  NVM_RETURN_IF_ERROR(b->WritePages(clock, loc.key, dirty_pages,
                                    chunk_image, crc, stored_crc, tenant_));
  cluster_.network().Transfer(clock, b->node_id(), local_node_,
                              cfg.meta_response_bytes);
  return OkStatus();
}

Status StoreClient::WriteChunkPages(sim::VirtualClock& clock, FileId id,
                                    uint32_t chunk_index,
                                    const Bitmap& dirty_pages,
                                    std::span<const uint8_t> chunk_image) {
  const int64_t t0 = clock.now();
  Status s =
      WriteChunkPagesInner(clock, id, chunk_index, dirty_pages, chunk_image);
  if (s.ok() && qos_ != nullptr) qos_->RecordWrite(tenant_, clock.now() - t0);
  return s;
}

Status StoreClient::WriteChunkPagesInner(sim::VirtualClock& clock, FileId id,
                                         uint32_t chunk_index,
                                         const Bitmap& dirty_pages,
                                         std::span<const uint8_t> chunk_image) {
  const StoreConfig& cfg = manager_.config();
  NVM_CHECK(chunk_image.size() == cfg.chunk_bytes);
  if (dirty_pages.None()) return OkStatus();
  if (cfg.ec()) {
    // Every file of an erasure-mode store stripes: writes go full-stripe.
    return WriteStripe(clock, id, chunk_index, dirty_pages, chunk_image);
  }

  // Flush-time checksum: computed once over the full image and charged to
  // the writer before the metadata round-trip (the batched path charges at
  // the same spot, so a batch of one stays time-identical to this path).
  uint32_t crc = 0;
  const bool with_crc = cfg.integrity();
  if (with_crc) {
    crc = Crc32c(chunk_image.data(), chunk_image.size());
    clock.Advance(cfg.checksum_ns(cfg.chunk_bytes));
  }
  ChargeMetaRoundTrip(clock);
  NVM_ASSIGN_OR_RETURN(WriteLocation loc,
                       manager_.PrepareWrite(clock, id, chunk_index));

  // Each replica is written on its own clock forked at the post-prepare
  // time: the transfers and device programs overlap, and the caller pays
  // max(replica times), not their sum.
  const uint64_t dirty_bytes = dirty_pages.PopCount() * cfg.page_bytes;
  const int64_t t0 = clock.now();
  int64_t done = t0;
  size_t ok_replicas = 0;
  bool corrupt_replica = false;
  // On a partial-dirty write the replicas merge the shipped pages over
  // their stored base, so the stored image — and with it the checksum the
  // manager may record — can differ from the client's in-memory image
  // (whose clean pages may never have been faulted in).  The authority is
  // the CRC the first successful replica actually stored.
  uint32_t authority = crc;
  Status last = Unavailable("no replicas");
  for (int bid : loc.benefactors) {
    sim::VirtualClock replica_clock(t0);
    uint32_t replica_stored = crc;
    Status s = WriteReplica(replica_clock, loc, bid, dirty_pages, chunk_image,
                            with_crc ? &crc : nullptr,
                            with_crc ? &replica_stored : nullptr);
    if (s.ok()) {
      if (ok_replicas == 0) authority = replica_stored;
      ++ok_replicas;
      bytes_flushed_.Add(dirty_bytes);
      done = std::max(done, replica_clock.now());
    } else {
      if (s.code() == ErrorCode::kUnavailable) {
        manager_.MarkDead(bid);
        NVM_WLOG("benefactor %d unavailable writing %s; continuing with "
                 "surviving replicas",
                 bid, loc.key.ToString().c_str());
      } else if (s.code() == ErrorCode::kCorrupt) {
        // The replica's base image failed the pre-merge verification — the
        // write never landed there.  Quarantine it; repair rebuilds it from
        // a replica that did take the write.
        corrupt_replica = true;
        manager_.ReportCorrupt(replica_clock, loc.key, bid);
        NVM_WLOG("benefactor %d rejected merge into corrupt %s; replica "
                 "quarantined",
                 bid, loc.key.ToString().c_str());
      }
      last = s;
    }
  }
  clock.AdvanceTo(done);
  // Close the prepared write (success or not): lifts the repair fence and
  // moves the epoch past anything a concurrent repair copied.  The
  // authoritative checksum is recorded only once a replica holds the data.
  manager_.CompleteWrite(clock, loc.key,
                         with_crc && ok_replicas > 0 ? &authority : nullptr);

  if (ok_replicas == 0) {
    // Nothing holds the (possibly fresh) version: make sure later reads
    // re-resolve instead of finding a location that has no data.
    InvalidateLocation(id, chunk_index);
    return last;
  }
  if (ok_replicas < loc.benefactors.size()) {
    degraded_writes_.Add(1);
    // Hand the chunk to the background repair queue (no-op when the
    // maintenance service is off).
    manager_.ReportDegraded(loc.key, clock.now());
  }
  if (corrupt_replica) {
    // The quarantine stripped (and deleted) a replica this location still
    // names: force the next read through a fresh manager lookup rather
    // than let it hit the deleted copy and see sparse zeros.
    InvalidateLocation(id, chunk_index);
  } else {
    // At least one replica holds the data: NOW the read cache may point at
    // the new chunk version.
    std::lock_guard<std::mutex> lock(loc_mutex_);
    loc_cache_[LocKey{id, chunk_index}] =
        ReadLocation{loc.key, loc.benefactors};
  }
  return OkStatus();
}

Status StoreClient::WriteStripe(sim::VirtualClock& clock, FileId id,
                                uint32_t chunk_index, const Bitmap& dirty_pages,
                                std::span<const uint8_t> chunk_image) {
  const StoreConfig& cfg = manager_.config();
  const size_t k = cfg.ec_k;
  const size_t nf = cfg.ec_fragments();
  const uint64_t fb = cfg.ec_frag_bytes();

  // Full-stripe discipline: fragments are rewritten whole, so a partial-
  // dirty flush first reads the chunk's current bytes (degraded-capable)
  // and overlays the dirty pages — the classic erasure read-modify-write
  // penalty, paid serially on the writer's clock.
  std::vector<uint8_t> merged;
  std::span<const uint8_t> full = chunk_image;
  if (dirty_pages.PopCount() < cfg.pages_per_chunk()) {
    merged.resize(cfg.chunk_bytes);
    NVM_RETURN_IF_ERROR(ReadChunkInner(clock, id, chunk_index, merged));
    dirty_pages.ForEachSet([&](size_t p) {
      std::memcpy(merged.data() + p * cfg.page_bytes,
                  chunk_image.data() + p * cfg.page_bytes, cfg.page_bytes);
    });
    full = merged;
  }

  // Encode k data + m parity fragments (the matrix math is real; the CPU
  // cost is one chunk through the encode engine) and checksum the full
  // image plus each fragment — the positional checksums are what degraded
  // reads and repair verify survivors against.
  ErasureCodec codec(cfg.ec_k, cfg.ec_m);
  std::vector<std::vector<uint8_t>> frags = codec.Encode(full);
  clock.Advance(cfg.ec_encode_ns(cfg.chunk_bytes));
  const bool with_crc = cfg.integrity();
  uint32_t crc = 0;
  std::vector<uint32_t> frag_crcs;
  if (with_crc) {
    crc = Crc32c(full.data(), full.size());
    frag_crcs.reserve(nf);
    for (const std::vector<uint8_t>& f : frags) {
      frag_crcs.push_back(Crc32c(f.data(), f.size()));
    }
    clock.Advance(cfg.checksum_ns(cfg.chunk_bytes) +
                  cfg.checksum_ns(nf * fb));
  }

  ChargeMetaRoundTrip(clock);
  NVM_ASSIGN_OR_RETURN(WriteLocation loc,
                       manager_.PrepareWrite(clock, id, chunk_index));
  NVM_CHECK(loc.ec, "erasure-mode store prepared a replicate write");
  NVM_CHECK(loc.benefactors.size() == nf);

  // Each live fragment is written on its own clock forked at the post-
  // prepare time; the writer joins at the max, so a stripe write costs
  // max(fragment times), not their sum.
  const int64_t t0 = clock.now();
  int64_t done = t0;
  size_t good = 0;
  uint64_t parity_bytes = 0;
  Status last = Unavailable("no fragments written");
  for (size_t pos = 0; pos < nf; ++pos) {
    const int bid = loc.benefactors[pos];
    if (bid < 0) continue;  // hole: already the repair queue's business
    Benefactor* b = manager_.benefactor(bid);
    NVM_CHECK(b != nullptr);
    sim::VirtualClock frag_clock(t0);
    b->AdmitTransfer(frag_clock, tenant_, fb, /*is_write=*/true,
                     fb + cfg.meta_request_bytes);
    cluster_.network().Transfer(frag_clock, local_node_, b->node_id(),
                                fb + cfg.meta_request_bytes);
    Status s = b->WriteFragment(frag_clock, loc.key, frags[pos],
                                with_crc ? &frag_crcs[pos] : nullptr,
                                tenant_);
    if (s.ok()) {
      cluster_.network().Transfer(frag_clock, b->node_id(), local_node_,
                                  cfg.meta_response_bytes);
      ++good;
      bytes_flushed_.Add(fb);
      if (pos >= k) parity_bytes += fb;
      done = std::max(done, frag_clock.now());
    } else {
      last = s;
      if (s.code() == ErrorCode::kUnavailable) {
        manager_.MarkDead(bid);
        NVM_WLOG("benefactor %d unavailable writing fragment %zu of %s; "
                 "continuing with surviving fragments",
                 bid, pos, loc.key.ToString().c_str());
      }
    }
  }
  clock.AdvanceTo(done);

  // A stripe that reached at least k fragments is reconstructible: commit
  // its checksums.  Below k the write failed — the completion records no
  // checksum, so recovery rolls the uncommitted stripe back rather than
  // ever assembling mixed-generation fragments.
  const bool committed = good >= k;
  manager_.CompleteWrite(
      clock, loc.key, with_crc && committed ? &crc : nullptr,
      with_crc && committed ? std::span<const uint32_t>(frag_crcs)
                            : std::span<const uint32_t>());
  if (!committed) {
    InvalidateLocation(id, chunk_index);
    return last;
  }
  manager_.NoteEcParityBytes(parity_bytes);
  if (good < nf) {
    degraded_writes_.Add(1);
    manager_.ReportDegraded(loc.key, clock.now());
  }
  {
    std::lock_guard<std::mutex> lock(loc_mutex_);
    loc_cache_[LocKey{id, chunk_index}] =
        ReadLocation{loc.key, loc.benefactors, /*ec=*/true};
  }
  return OkStatus();
}

Status StoreClient::WriteRun(sim::VirtualClock& clock,
                             const BenefactorRun& run,
                             std::span<const WriteLocation> locs,
                             std::span<const ChunkWrite> writes,
                             std::span<const size_t> active,
                             std::span<const uint32_t> crcs,
                             std::span<uint32_t> stored_crcs) {
  const StoreConfig& cfg = manager_.config();
  Benefactor* b = manager_.benefactor(run.benefactor);
  NVM_CHECK(b != nullptr);
  write_run_rpcs_.Add(1);

  std::vector<ChunkWriteItem> items;
  items.reserve(run.items.size());
  for (size_t j : run.items) {
    const ChunkWrite& w = writes[active[j]];
    ChunkWriteItem item;
    item.key = locs[j].key;
    item.dirty = w.dirty;
    item.data = w.image;
    item.needs_clone = locs[j].needs_clone;
    item.clone_from = locs[j].clone_from;
    if (!crcs.empty()) {
      item.has_crc = true;
      item.crc = crcs[j];
      item.stored_crc = stored_crcs.empty() ? nullptr : &stored_crcs[j];
    }
    items.push_back(item);
  }

  // The request is one stream: the first payload also carries the run
  // header (which is what makes a run of one byte-identical to the legacy
  // single-chunk write message); clone instructions ride as their own
  // control messages, exactly as in the per-chunk path.
  net::StreamTransfer stream(cluster_.network(), local_node_, b->node_id());
  bool header_sent = false;
  const ChunkRunSend send = [&](RunMsg kind, int64_t earliest,
                                uint64_t bytes) -> int64_t {
    if (kind == RunMsg::kPayload && !header_sent) {
      header_sent = true;
      bytes += cfg.meta_request_bytes;
    }
    return stream.Push(earliest, bytes);
  };
  NVM_RETURN_IF_ERROR(b->WriteChunkRun(clock, items, send, tenant_));
  // One response acknowledges the whole run.
  cluster_.network().Transfer(clock, b->node_id(), local_node_,
                              cfg.meta_response_bytes);
  return OkStatus();
}

Status StoreClient::WriteChunks(sim::VirtualClock& clock, FileId id,
                                std::span<ChunkWrite> writes) {
  const int64_t t_entry = clock.now();
  Status s = WriteChunksInner(clock, id, writes);
  if (s.ok() && qos_ != nullptr) {
    for (const ChunkWrite& w : writes) {
      if (w.status.ok() && w.dirty != nullptr && !w.dirty->None()) {
        qos_->RecordWrite(tenant_, w.ready_at - t_entry);
      }
    }
  }
  return s;
}

Status StoreClient::WriteChunksInner(sim::VirtualClock& clock, FileId id,
                                     std::span<ChunkWrite> writes) {
  if (writes.empty()) return OkStatus();
  const StoreConfig& cfg = manager_.config();

  // Clean entries are done before they start (mirrors WriteChunkPages).
  std::vector<size_t> active;
  active.reserve(writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    NVM_CHECK(writes[i].dirty != nullptr);
    NVM_CHECK(writes[i].image.size() == cfg.chunk_bytes);
    writes[i].status = OkStatus();
    writes[i].ready_at = clock.now();
    if (!writes[i].dirty->None()) active.push_back(i);
  }
  if (active.empty()) return OkStatus();

  // Erasure-mode writes are full-stripe fan-outs with no per-benefactor
  // run to stream: each chunk goes through the stripe path serially.
  if (!cfg.batch_write_rpc || cfg.ec()) {
    // Per-chunk path: one PrepareWrite round-trip and one write request
    // per chunk, serialised on the caller's clock.
    for (size_t i : active) {
      ChunkWrite& w = writes[i];
      w.status = WriteChunkPagesInner(clock, id, w.index, *w.dirty, w.image);
      w.ready_at = clock.now();
    }
    return OkStatus();
  }

  // Flush-time checksums for the whole window, charged before the batched
  // metadata round-trip (mirrors WriteChunkPages, so a batch of one stays
  // time-identical to the legacy path).
  const bool with_crc = cfg.integrity();
  std::vector<uint32_t> crcs(with_crc ? active.size() : 0, 0);
  if (with_crc) {
    for (size_t j = 0; j < active.size(); ++j) {
      crcs[j] = Crc32c(writes[active[j]].image.data(), cfg.chunk_bytes);
    }
    clock.Advance(cfg.checksum_ns(active.size() * cfg.chunk_bytes));
  }

  // One metadata round-trip COW-resolves the whole window.
  ChargeMetaRoundTrip(clock);
  std::vector<uint32_t> indices;
  indices.reserve(active.size());
  for (size_t i : active) indices.push_back(writes[i].index);
  auto prepared = manager_.PrepareWriteBatch(clock, id, indices);
  if (!prepared.ok()) {
    for (size_t i : active) writes[i].status = prepared.status();
    return prepared.status();
  }
  const std::vector<WriteLocation>& locs = *prepared;  // parallel to active
  const int64_t t0 = clock.now();

  // Per-item replica outcomes across all runs.
  std::vector<size_t> ok_replicas(active.size(), 0);
  std::vector<char> corrupt_replica(active.size(), 0);
  std::vector<Status> last_err(active.size(), OkStatus());
  std::vector<int64_t> done(active.size(), t0);
  // Authoritative checksums to record at CompleteWrites: seeded with the
  // client's full-image values, overwritten per item by the CRC the first
  // successful replica actually stored (a partial-dirty merge can
  // legitimately differ from the client image when clean pages were never
  // faulted in).
  std::vector<uint32_t> authority(crcs.begin(), crcs.end());

  // One streamed run per benefactor — every replica holder gets its own
  // run — each on a clock forked at the post-prepare time, so runs (and
  // with them the replicas of each chunk) overlap.
  for (const BenefactorRun& run : Manager::GroupByBenefactor(locs)) {
    sim::VirtualClock run_clock(t0);
    std::vector<uint32_t> run_stored(crcs.begin(), crcs.end());
    Status s = WriteRun(run_clock, run, locs, writes, active, crcs,
                        run_stored);
    if (s.ok()) {
      for (size_t j : run.items) {
        if (ok_replicas[j] == 0) authority[j] = run_stored[j];
        ++ok_replicas[j];
        bytes_flushed_.Add(writes[active[j]].dirty->PopCount() *
                           cfg.page_bytes);
        done[j] = std::max(done[j], run_clock.now());
      }
      continue;
    }
    if (s.code() == ErrorCode::kUnavailable) {
      manager_.MarkDead(run.benefactor);
      NVM_WLOG(
          "benefactor %d failed mid write run (%zu chunks); discarding the "
          "run and retrying per chunk",
          run.benefactor, run.items.size());
    }
    // The run failed as a whole: nothing it streamed counts.  Retry every
    // item per chunk against the same benefactor (its other replicas are
    // covered by their own runs); a dead benefactor fails fast here.
    for (size_t j : run.items) {
      const ChunkWrite& w = writes[active[j]];
      sim::VirtualClock fallback(t0);
      uint32_t replica_stored = with_crc ? crcs[j] : 0;
      Status rs = WriteReplica(fallback, locs[j], run.benefactor, *w.dirty,
                               w.image, with_crc ? &crcs[j] : nullptr,
                               with_crc ? &replica_stored : nullptr);
      if (rs.ok()) {
        if (ok_replicas[j] == 0) authority[j] = replica_stored;
        ++ok_replicas[j];
        bytes_flushed_.Add(w.dirty->PopCount() * cfg.page_bytes);
        done[j] = std::max(done[j], fallback.now());
      } else {
        if (rs.code() == ErrorCode::kUnavailable) {
          manager_.MarkDead(run.benefactor);
        } else if (rs.code() == ErrorCode::kCorrupt) {
          // Rotted base image refused the merge: quarantine this replica
          // (repair rebuilds it from one that took the write).
          corrupt_replica[j] = true;
          manager_.ReportCorrupt(fallback, locs[j].key, run.benefactor);
        }
        last_err[j] = rs;
      }
    }
  }

  // Every replica attempt is over: close the prepared window in one lock
  // pass (lifts the repair fences, moves the epochs) before reporting any
  // degraded chunks to the repair queue.  Checksums are recorded only for
  // chunks that reached at least one replica.
  std::vector<char> wrote(active.size(), 0);
  for (size_t j = 0; j < active.size(); ++j) {
    wrote[j] = ok_replicas[j] > 0 ? 1 : 0;
  }
  manager_.CompleteWrites(clock, locs, authority, wrote);

  // Per-chunk verdicts, location-cache updates, and the caller's join.
  int64_t joined = t0;
  for (size_t j = 0; j < active.size(); ++j) {
    ChunkWrite& w = writes[active[j]];
    const WriteLocation& loc = locs[j];
    if (ok_replicas[j] == 0) {
      w.status = last_err[j].ok() ? Unavailable("no replicas") : last_err[j];
      InvalidateLocation(id, w.index);
    } else {
      if (ok_replicas[j] < loc.benefactors.size()) {
        degraded_writes_.Add(1);
        // Degraded at the time this chunk's surviving writes completed.
        manager_.ReportDegraded(loc.key, done[j]);
      }
      if (corrupt_replica[j]) {
        // A quarantined (deleted) replica is still in this list: force the
        // next read through a fresh lookup instead of sparse zeros.
        InvalidateLocation(id, w.index);
      } else {
        std::lock_guard<std::mutex> lock(loc_mutex_);
        loc_cache_[LocKey{id, w.index}] =
            ReadLocation{loc.key, loc.benefactors};
      }
    }
    w.ready_at = done[j];
    joined = std::max(joined, done[j]);
  }
  clock.AdvanceTo(joined);
  return OkStatus();
}

void StoreClient::ResetCounters() {
  bytes_fetched_.Reset();
  bytes_flushed_.Reset();
  meta_rtts_.Reset();
  run_rpcs_.Reset();
  write_run_rpcs_.Reset();
  degraded_writes_.Reset();
  corrupt_failovers_.Reset();
  ec_degraded_reads_.Reset();
}

}  // namespace nvm::store

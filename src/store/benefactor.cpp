#include "store/benefactor.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "common/checksum.hpp"
#include "store/qos.hpp"

namespace nvm::store {

Benefactor::Benefactor(int id, net::Node& node, uint64_t contributed_bytes,
                       const StoreConfig& config)
    : id_(id),
      node_(node),
      contributed_bytes_(contributed_bytes),
      config_(config) {
  NVM_CHECK(node.has_ssd(), "benefactor requires an SSD on node %d",
            node.id());
}

uint64_t Benefactor::bytes_used() const {
  return reserved_bytes_.load(std::memory_order_relaxed);
}

uint64_t Benefactor::bytes_free() const {
  return contributed_bytes_ - bytes_used();
}

size_t Benefactor::num_chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return chunks_.size();
}

Status Benefactor::EnsureAlive() const {
  if (!alive_) {
    return Unavailable("benefactor " + std::to_string(id_) + " is down");
  }
  return OkStatus();
}

void Benefactor::AdmitTransfer(sim::VirtualClock& clock, TenantId tenant,
                               uint64_t ssd_bytes, bool is_write,
                               uint64_t wire_bytes) {
  if (qos_ == nullptr || !qos_->enabled()) return;
  const sim::DeviceProfile& p = node_.ssd().profile();
  const int64_t service = sim::TransferNs(
      ssd_bytes, is_write ? p.write_bw_mbps : p.read_bw_mbps,
      is_write ? p.write_latency_ns : p.read_latency_ns);
  const int64_t start = qos_->AdmitChunk(id_, node_.id(), tenant, service,
                                         wire_bytes, clock.now());
  if (start > clock.now()) clock.AdvanceTo(start);
}

Status Benefactor::ReserveChunks(uint64_t count) {
  return ReserveBytes(count * config_.chunk_bytes);
}

void Benefactor::ReleaseChunkReservation(uint64_t count) {
  ReleaseBytes(count * config_.chunk_bytes);
}

Status Benefactor::ReserveBytes(uint64_t bytes) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  // CAS loop bounded by the contribution: concurrent reservers (write
  // preparers, repair planners on different metadata shards) race here
  // instead of on a mutex, and a loser of the capacity check fails cleanly.
  uint64_t cur = reserved_bytes_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur + bytes > contributed_bytes_) {
      return OutOfSpace("benefactor " + std::to_string(id_) +
                        ": reservation exceeds contribution of " +
                        FormatBytes(contributed_bytes_));
    }
    if (reserved_bytes_.compare_exchange_weak(cur, cur + bytes,
                                              std::memory_order_relaxed)) {
      return OkStatus();
    }
  }
}

void Benefactor::ReleaseBytes(uint64_t bytes) {
  const uint64_t prev =
      reserved_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  NVM_CHECK(prev >= bytes);
}

uint64_t Benefactor::AllocateOffset() {
  if (!free_offsets_.empty()) {
    const uint64_t off = free_offsets_.back();
    free_offsets_.pop_back();
    return off;
  }
  const uint64_t off = next_offset_;
  next_offset_ += config_.chunk_bytes;
  return off;
}

void Benefactor::MaybeKillAfterRead() {
  uint64_t n = kill_after_reads_.load(std::memory_order_relaxed);
  while (n > 0 &&
         !kill_after_reads_.compare_exchange_weak(n, n - 1,
                                                  std::memory_order_relaxed)) {
  }
  if (n == 1) alive_ = false;
}

void Benefactor::MaybeKillAfterWrite() {
  uint64_t n = kill_after_writes_.load(std::memory_order_relaxed);
  while (n > 0 &&
         !kill_after_writes_.compare_exchange_weak(
             n, n - 1, std::memory_order_relaxed)) {
  }
  if (n == 1) alive_ = false;
}

void Benefactor::CorruptAfterWrites(uint64_t n, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  corrupt_period_ = n;
  corrupt_countdown_ = n;
  corrupt_rng_ = seed;
}

void Benefactor::MaybeCorruptAfterWrite() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (corrupt_period_ == 0) return;
  if (--corrupt_countdown_ > 0) return;
  corrupt_countdown_ = corrupt_period_;
  if (chunks_.empty()) return;
  // Deterministic victim pick: walk the rng over the sorted key set so a
  // given seed flips the same bits regardless of hash-map iteration order.
  std::vector<ChunkKey> keys;
  keys.reserve(chunks_.size());
  for (const auto& [key, chunk] : chunks_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [](const ChunkKey& a, const ChunkKey& b) {
    return std::tie(a.origin_file, a.index, a.version) <
           std::tie(b.origin_file, b.index, b.version);
  });
  auto next = [this] {
    corrupt_rng_ = Mix64(corrupt_rng_ + 0x9e3779b97f4a7c15ULL);
    return corrupt_rng_;
  };
  StoredChunk& victim = chunks_[keys[next() % keys.size()]];
  const uint64_t byte = next() % victim.data.size();
  victim.data[byte] ^= static_cast<uint8_t>(1u << (next() % 8));
  bitrot_flips_.Add(1);
}

Status Benefactor::CorruptChunk(const ChunkKey& key, uint64_t byte_offset,
                                uint8_t xor_mask) {
  if (xor_mask == 0) {
    return InvalidArgument("CorruptChunk: empty mask");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chunks_.find(key);
  if (it == chunks_.end()) {
    return NotFound("no stored chunk " + key.ToString() + " to corrupt");
  }
  if (byte_offset >= it->second.data.size()) {
    return InvalidArgument("CorruptChunk: offset past stored blob");
  }
  it->second.data[byte_offset] ^= xor_mask;
  bitrot_flips_.Add(1);
  return OkStatus();
}

Status Benefactor::ReadChunk(sim::VirtualClock& clock, const ChunkKey& key,
                             std::span<uint8_t> out, bool* sparse,
                             TenantId tenant) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  read_requests_.Add(1);
  NVM_CHECK(out.size() == config_.chunk_bytes);
  if (sparse != nullptr) *sparse = false;
  uint64_t offset = 0;
  bool has_crc = false;
  uint32_t crc = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      // Reserved-but-never-written chunk: sparse read, all zeros, no
      // device access.
      std::memset(out.data(), 0, out.size());
      if (sparse != nullptr) *sparse = true;
      return OkStatus();
    }
    std::memcpy(out.data(), it->second.data.data(), config_.chunk_bytes);
    offset = it->second.ssd_offset;
    has_crc = it->second.has_crc;
    crc = it->second.crc;
  }
  AdmitTransfer(clock, tenant, config_.chunk_bytes, /*is_write=*/false,
                config_.chunk_bytes);
  node_.ssd().ChargeRead(clock, offset, config_.chunk_bytes);
  data_bytes_out_.Add(config_.chunk_bytes);
  // Verify before serving: bit rot must never reach a reader.
  if (config_.verify_reads && has_crc) {
    clock.Advance(config_.checksum_ns(config_.chunk_bytes));
    if (Crc32c(out.data(), config_.chunk_bytes) != crc) {
      return Corrupt("benefactor " + std::to_string(id_) +
                     ": checksum mismatch on " + key.ToString());
    }
  }
  MaybeKillAfterRead();
  return OkStatus();
}

Status Benefactor::ReadChunkRun(sim::VirtualClock& clock,
                                std::span<const ChunkKey> keys,
                                const ChunkRunSink& sink, TenantId tenant) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  read_requests_.Add(1);
  std::vector<uint8_t> buf;
  bool first_data_chunk = true;
  // The checksum engine pipelines with the device stream: chunk i is
  // verified while chunk i+1 streams off the device, so only the tail
  // verification extends the run (`clock` tracks the device timeline,
  // `verify_done_ns` the engine).
  int64_t verify_done_ns = clock.now();
  bool verified_any = false;
  for (const ChunkKey& key : keys) {
    // A crash between chunks takes down the rest of the run: the caller
    // sees one UNAVAILABLE for the whole run and must discard whatever it
    // already received.
    NVM_RETURN_IF_ERROR(EnsureAlive());
    ChunkRunItem item;
    item.key = key;
    uint64_t offset = 0;
    bool stored = false;
    bool has_crc = false;
    uint32_t crc = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = chunks_.find(key);
      if (it != chunks_.end()) {
        stored = true;
        buf.resize(config_.chunk_bytes);
        std::memcpy(buf.data(), it->second.data.data(), config_.chunk_bytes);
        offset = it->second.ssd_offset;
        has_crc = it->second.has_crc;
        crc = it->second.crc;
      }
    }
    if (!stored) {
      // Sparse chunk: the stream carries only the "no such chunk" marker,
      // no device access (the backing file has a hole here).
      item.sparse = true;
      item.ready_at = clock.now();
      NVM_RETURN_IF_ERROR(sink(item, {}));
      continue;
    }
    // The run occupies one device queueing slot: the first stored chunk
    // pays the per-request read latency, the rest stream at bandwidth.
    // QoS admits chunk-by-chunk, so a throttled tenant's long run leaves
    // gaps other tenants backfill instead of one multi-millisecond hog.
    AdmitTransfer(clock, tenant, config_.chunk_bytes, /*is_write=*/false,
                  config_.chunk_bytes);
    node_.ssd().ChargeRunRead(clock, offset, config_.chunk_bytes,
                              first_data_chunk);
    first_data_chunk = false;
    data_bytes_out_.Add(config_.chunk_bytes);
    // Verify before the chunk enters the reply stream; a mismatch aborts
    // the whole run (like a mid-run death, but with CORRUPT) and the
    // caller falls back to per-chunk reads with replica failover.
    if (config_.verify_reads && has_crc) {
      verify_done_ns = std::max(verify_done_ns, clock.now()) +
                       config_.checksum_ns(config_.chunk_bytes);
      verified_any = true;
      if (Crc32c(buf.data(), buf.size()) != crc) {
        return Corrupt("benefactor " + std::to_string(id_) +
                       ": checksum mismatch on " + key.ToString() +
                       " mid-run");
      }
      item.ready_at = verify_done_ns;
    } else {
      item.ready_at = clock.now();
    }
    NVM_RETURN_IF_ERROR(sink(item, buf));
    MaybeKillAfterRead();
  }
  // The run itself is not complete until the last chunk clears the engine.
  if (verified_any && verify_done_ns > clock.now()) {
    clock.Advance(verify_done_ns - clock.now());
  }
  return OkStatus();
}

bool Benefactor::StoreCrcLocked(StoredChunk& chunk, size_t pages_written,
                                const uint32_t* crc) {
  if (!config_.integrity() || pages_written == 0) return false;
  if (crc != nullptr && pages_written == config_.pages_per_chunk()) {
    // Full-image write: the client already computed (and paid for) the
    // checksum of exactly these bytes — store it verbatim.
    chunk.crc = *crc;
    chunk.has_crc = true;
    return false;
  }
  // Partial-dirty write (or no client crc): the stored image is a merge of
  // old and new pages, so the checksum must cover the merged result.  The
  // caller charges the checksum CPU cost.
  chunk.crc = Crc32c(chunk.data.data(), chunk.data.size());
  chunk.has_crc = true;
  return true;
}

Status Benefactor::VerifyChunk(sim::VirtualClock& clock, const ChunkKey& key,
                               uint32_t expected_crc, bool* sparse,
                               TenantId tenant) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  verify_requests_.Add(1);
  if (sparse != nullptr) *sparse = false;
  std::vector<uint8_t> buf;
  uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      // Reserved-but-never-written: nothing stored, nothing to rot.
      if (sparse != nullptr) *sparse = true;
      return OkStatus();
    }
    buf = it->second.data;
    offset = it->second.ssd_offset;
  }
  // The verification read hits the device like any other read, but the
  // bytes never leave the node: only the verdict crosses the network.
  // Charged for the stored blob's actual size — a full chunk for
  // replicated data, one fragment for erasure-coded data.
  AdmitTransfer(clock, tenant, buf.size(), /*is_write=*/false,
                /*wire_bytes=*/0);
  node_.ssd().ChargeRead(clock, offset, buf.size());
  clock.Advance(config_.checksum_ns(buf.size()));
  if (Crc32c(buf.data(), buf.size()) != expected_crc) {
    return Corrupt("benefactor " + std::to_string(id_) +
                   ": scrub checksum mismatch on " + key.ToString());
  }
  return OkStatus();
}

Status Benefactor::WritePages(sim::VirtualClock& clock, const ChunkKey& key,
                              const Bitmap& dirty_pages,
                              std::span<const uint8_t> data,
                              const uint32_t* crc, uint32_t* stored_crc,
                              TenantId /*tenant*/) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  write_requests_.Add(1);
  NVM_CHECK(data.size() == config_.chunk_bytes);
  NVM_CHECK(dirty_pages.size() == config_.pages_per_chunk());

  uint64_t offset = 0;
  size_t pages_written = 0;
  bool charge_crc = false;
  bool pre_verified = false;
  bool pre_corrupt = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      StoredChunk chunk;
      chunk.data.assign(config_.chunk_bytes, 0);
      chunk.ssd_offset = AllocateOffset();
      it = chunks_.emplace(key, std::move(chunk)).first;
    } else if (config_.integrity() && it->second.has_crc &&
               dirty_pages.PopCount() > 0 &&
               dirty_pages.PopCount() < config_.pages_per_chunk()) {
      // Partial-dirty merge onto an existing image: verify the base first.
      // Recomputing the merged checksum over unverified clean pages would
      // launder bit rot into a fresh, matching checksum — the one state no
      // scrub could ever catch.
      pre_verified = true;
      pre_corrupt = Crc32c(it->second.data.data(), it->second.data.size()) !=
                    it->second.crc;
    }
    if (!pre_corrupt) {
      offset = it->second.ssd_offset;
      dirty_pages.ForEachSet([&](size_t page) {
        const uint64_t off = page * config_.page_bytes;
        std::memcpy(it->second.data.data() + off, data.data() + off,
                    config_.page_bytes);
        ++pages_written;
      });
      charge_crc = StoreCrcLocked(it->second, pages_written, crc);
      if (stored_crc != nullptr && it->second.has_crc) {
        *stored_crc = it->second.crc;
      }
    }
  }
  if (pre_verified) clock.Advance(config_.checksum_ns(config_.chunk_bytes));
  if (pre_corrupt) {
    return Corrupt("benefactor " + std::to_string(id_) +
                   ": pre-image checksum mismatch merging into " +
                   key.ToString());
  }
  // Charge the device only for the dirty pages.  Pages within one chunk are
  // contiguous enough that we charge them as one request per dirty run; a
  // single combined request keeps the model simple and matches the paper's
  // "send only the dirty pages" accounting.
  if (pages_written > 0) {
    if (charge_crc) clock.Advance(config_.checksum_ns(config_.chunk_bytes));
    const uint64_t bytes = pages_written * config_.page_bytes;
    // No admission here: the caller admitted BEFORE shipping the dirty
    // pages over the wire (see AdmitTransfer's contract in the header).
    node_.ssd().ChargeWrite(clock, offset, bytes);
    data_bytes_in_.Add(bytes);
    MaybeKillAfterWrite();
    MaybeCorruptAfterWrite();
  }
  return OkStatus();
}

Status Benefactor::WriteChunkRun(sim::VirtualClock& clock,
                                 std::span<const ChunkWriteItem> items,
                                 const ChunkRunSend& send, TenantId tenant) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  write_requests_.Add(1);
  const int64_t t0 = clock.now();
  bool first_data_chunk = true;
  for (const ChunkWriteItem& item : items) {
    // A crash between chunks takes down the rest of the run: the caller
    // sees one UNAVAILABLE for the whole run and must treat every item as
    // unwritten on this replica.
    NVM_RETURN_IF_ERROR(EnsureAlive());
    NVM_CHECK(item.dirty != nullptr);
    NVM_CHECK(item.data.size() == config_.chunk_bytes);
    NVM_CHECK(item.dirty->size() == config_.pages_per_chunk());

    if (item.needs_clone) {
      // The clone instruction is its own control message (exactly as in
      // the per-chunk path); the local copy must complete before the
      // dirty pages can land on the fresh version.
      const int64_t instr_at =
          send(RunMsg::kControl, t0, config_.meta_request_bytes);
      clock.AdvanceTo(instr_at);
      NVM_RETURN_IF_ERROR(
          CloneChunk(clock, item.clone_from, item.key, tenant));
    }

    const uint64_t dirty_bytes = item.dirty->PopCount() * config_.page_bytes;
    // Dirty pages stream from the run's start (the client has them all in
    // hand at t0); a post-clone payload can only start once the clone has
    // been instructed and applied.
    const int64_t arrive = send(RunMsg::kPayload,
                                item.needs_clone ? clock.now() : t0,
                                dirty_bytes);
    clock.AdvanceTo(arrive);

    uint64_t offset = 0;
    size_t pages_written = 0;
    bool charge_crc = false;
    bool pre_verified = false;
    bool pre_corrupt = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = chunks_.find(item.key);
      if (it == chunks_.end()) {
        StoredChunk chunk;
        chunk.data.assign(config_.chunk_bytes, 0);
        chunk.ssd_offset = AllocateOffset();
        it = chunks_.emplace(item.key, std::move(chunk)).first;
      } else if (config_.integrity() && it->second.has_crc &&
                 item.dirty->PopCount() > 0 &&
                 item.dirty->PopCount() < config_.pages_per_chunk()) {
        // Same base-image verification as the per-chunk path: a merge must
        // never launder rotted clean pages into a fresh checksum.
        pre_verified = true;
        pre_corrupt =
            Crc32c(it->second.data.data(), it->second.data.size()) !=
            it->second.crc;
      }
      if (!pre_corrupt) {
        offset = it->second.ssd_offset;
        item.dirty->ForEachSet([&](size_t page) {
          const uint64_t off = page * config_.page_bytes;
          std::memcpy(it->second.data.data() + off, item.data.data() + off,
                      config_.page_bytes);
          ++pages_written;
        });
        charge_crc = StoreCrcLocked(it->second, pages_written,
                                    item.has_crc ? &item.crc : nullptr);
        if (item.stored_crc != nullptr && it->second.has_crc) {
          *item.stored_crc = it->second.crc;
        }
      }
    }
    if (pre_verified) clock.Advance(config_.checksum_ns(config_.chunk_bytes));
    if (pre_corrupt) {
      // The whole run aborts (the stream protocol has no per-item status);
      // the caller falls back to per-chunk writes, where the corrupt
      // replica is reported and the healthy ones still land.
      return Corrupt("benefactor " + std::to_string(id_) +
                     ": pre-image checksum mismatch merging into " +
                     item.key.ToString() + " mid-run");
    }
    if (pages_written > 0) {
      if (charge_crc) clock.Advance(config_.checksum_ns(config_.chunk_bytes));
      // The run occupies one device queueing slot: the first programmed
      // chunk pays the per-request write latency, the rest stream at
      // bandwidth.  QoS admits chunk-by-chunk so a throttled writer's run
      // yields the device between chunks.
      AdmitTransfer(clock, tenant, pages_written * config_.page_bytes,
                    /*is_write=*/true, /*wire_bytes=*/0);
      node_.ssd().ChargeRunWrite(clock, offset,
                                 pages_written * config_.page_bytes,
                                 first_data_chunk);
      first_data_chunk = false;
      data_bytes_in_.Add(pages_written * config_.page_bytes);
      MaybeKillAfterWrite();
      MaybeCorruptAfterWrite();
    }
  }
  return OkStatus();
}

Status Benefactor::WriteFragment(sim::VirtualClock& clock, const ChunkKey& key,
                                 std::span<const uint8_t> data,
                                 const uint32_t* crc, TenantId /*tenant*/) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  write_requests_.Add(1);
  NVM_CHECK(data.size() > 0 && data.size() <= config_.chunk_bytes);
  uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      StoredChunk chunk;
      chunk.ssd_offset = AllocateOffset();
      it = chunks_.emplace(key, std::move(chunk)).first;
    } else {
      NVM_CHECK(it->second.data.size() == data.size(),
                "fragment size changed under %s", key.ToString().c_str());
    }
    it->second.data.assign(data.begin(), data.end());
    offset = it->second.ssd_offset;
    if (config_.integrity() && crc != nullptr) {
      it->second.crc = *crc;
      it->second.has_crc = true;
    }
  }
  // No admission here: the caller admitted before shipping the fragment.
  node_.ssd().ChargeWrite(clock, offset, data.size());
  data_bytes_in_.Add(data.size());
  MaybeKillAfterWrite();
  MaybeCorruptAfterWrite();
  return OkStatus();
}

Status Benefactor::ReadFragment(sim::VirtualClock& clock, const ChunkKey& key,
                                std::span<uint8_t> out, bool* sparse,
                                TenantId tenant) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  read_requests_.Add(1);
  if (sparse != nullptr) *sparse = false;
  uint64_t offset = 0;
  bool has_crc = false;
  uint32_t crc = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      // Reserved-but-never-written fragment: sparse read, all zeros, no
      // device access.
      std::memset(out.data(), 0, out.size());
      if (sparse != nullptr) *sparse = true;
      return OkStatus();
    }
    NVM_CHECK(it->second.data.size() == out.size(),
              "fragment size mismatch on %s", key.ToString().c_str());
    std::memcpy(out.data(), it->second.data.data(), out.size());
    offset = it->second.ssd_offset;
    has_crc = it->second.has_crc;
    crc = it->second.crc;
  }
  AdmitTransfer(clock, tenant, out.size(), /*is_write=*/false, out.size());
  node_.ssd().ChargeRead(clock, offset, out.size());
  data_bytes_out_.Add(out.size());
  // Verify before serving: a rotted fragment must surface as CORRUPT, not
  // poison a reconstruction with wrong bytes.
  if (config_.verify_reads && has_crc) {
    clock.Advance(config_.checksum_ns(out.size()));
    if (Crc32c(out.data(), out.size()) != crc) {
      return Corrupt("benefactor " + std::to_string(id_) +
                     ": fragment checksum mismatch on " + key.ToString());
    }
  }
  MaybeKillAfterRead();
  return OkStatus();
}

Status Benefactor::CloneChunk(sim::VirtualClock& clock, const ChunkKey& from,
                              const ChunkKey& to, TenantId tenant) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  uint64_t src_offset = 0;
  uint64_t dst_offset = 0;
  bool materialised = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(from);
    if (it != chunks_.end()) {
      StoredChunk clone;
      clone.data = it->second.data;
      clone.ssd_offset = AllocateOffset();
      // The clone inherits the source's checksum: a local copy of bytes
      // whose crc is already known needs no recompute (any rot in the
      // source propagates and is caught by the clone's verification).
      clone.has_crc = it->second.has_crc;
      clone.crc = it->second.crc;
      src_offset = it->second.ssd_offset;
      dst_offset = clone.ssd_offset;
      chunks_.emplace(to, std::move(clone));
      materialised = true;
    }
    // Cloning a sparse (never-written) chunk needs no data movement: the
    // clone is sparse too.
  }
  if (materialised) {
    AdmitTransfer(clock, tenant, config_.chunk_bytes, /*is_write=*/false,
                  /*wire_bytes=*/0);
    node_.ssd().ChargeRead(clock, src_offset, config_.chunk_bytes);
    AdmitTransfer(clock, tenant, config_.chunk_bytes, /*is_write=*/true,
                  /*wire_bytes=*/0);
    node_.ssd().ChargeWrite(clock, dst_offset, config_.chunk_bytes);
  }
  return OkStatus();
}

bool Benefactor::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return chunks_.contains(key);
}

std::vector<ChunkKey> Benefactor::StoredChunkKeys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ChunkKey> keys;
  keys.reserve(chunks_.size());
  for (const auto& [key, chunk] : chunks_) keys.push_back(key);
  return keys;
}

bool Benefactor::StoredContentCrc(const ChunkKey& key, uint32_t* crc) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chunks_.find(key);
  if (it == chunks_.end()) return false;
  *crc = Crc32c(it->second.data.data(), it->second.data.size());
  return true;
}

bool Benefactor::StoredChunkCrc(const ChunkKey& key, bool* has_crc,
                                uint32_t* crc) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chunks_.find(key);
  if (it == chunks_.end()) return false;
  *has_crc = it->second.has_crc;
  *crc = it->second.crc;
  return true;
}

Status Benefactor::DeleteChunk(const ChunkKey& key) {
  // Deletion is allowed even on a dead benefactor: the manager is cleaning
  // up its metadata and the data is already unreachable.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    free_offsets_.push_back(it->second.ssd_offset);
    chunks_.erase(it);
  }
  return OkStatus();
}

}  // namespace nvm::store

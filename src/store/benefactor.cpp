#include "store/benefactor.hpp"

#include <algorithm>
#include <cstring>

namespace nvm::store {

Benefactor::Benefactor(int id, net::Node& node, uint64_t contributed_bytes,
                       const StoreConfig& config)
    : id_(id),
      node_(node),
      contributed_bytes_(contributed_bytes),
      config_(config) {
  NVM_CHECK(node.has_ssd(), "benefactor requires an SSD on node %d",
            node.id());
}

uint64_t Benefactor::bytes_used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_chunks_ * config_.chunk_bytes;
}

uint64_t Benefactor::bytes_free() const {
  return contributed_bytes_ - bytes_used();
}

size_t Benefactor::num_chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return chunks_.size();
}

Status Benefactor::EnsureAlive() const {
  if (!alive_) {
    return Unavailable("benefactor " + std::to_string(id_) + " is down");
  }
  return OkStatus();
}

Status Benefactor::ReserveChunks(uint64_t count) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t want = (reserved_chunks_ + count) * config_.chunk_bytes;
  if (want > contributed_bytes_) {
    return OutOfSpace("benefactor " + std::to_string(id_) +
                      ": reservation exceeds contribution of " +
                      FormatBytes(contributed_bytes_));
  }
  reserved_chunks_ += count;
  return OkStatus();
}

void Benefactor::ReleaseChunkReservation(uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  NVM_CHECK(reserved_chunks_ >= count);
  reserved_chunks_ -= count;
}

uint64_t Benefactor::AllocateOffset() {
  if (!free_offsets_.empty()) {
    const uint64_t off = free_offsets_.back();
    free_offsets_.pop_back();
    return off;
  }
  const uint64_t off = next_offset_;
  next_offset_ += config_.chunk_bytes;
  return off;
}

void Benefactor::MaybeKillAfterRead() {
  uint64_t n = kill_after_reads_.load(std::memory_order_relaxed);
  while (n > 0 &&
         !kill_after_reads_.compare_exchange_weak(n, n - 1,
                                                  std::memory_order_relaxed)) {
  }
  if (n == 1) alive_ = false;
}

void Benefactor::MaybeKillAfterWrite() {
  uint64_t n = kill_after_writes_.load(std::memory_order_relaxed);
  while (n > 0 &&
         !kill_after_writes_.compare_exchange_weak(
             n, n - 1, std::memory_order_relaxed)) {
  }
  if (n == 1) alive_ = false;
}

Status Benefactor::ReadChunk(sim::VirtualClock& clock, const ChunkKey& key,
                             std::span<uint8_t> out, bool* sparse) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  read_requests_.Add(1);
  NVM_CHECK(out.size() == config_.chunk_bytes);
  if (sparse != nullptr) *sparse = false;
  uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      // Reserved-but-never-written chunk: sparse read, all zeros, no
      // device access.
      std::memset(out.data(), 0, out.size());
      if (sparse != nullptr) *sparse = true;
      return OkStatus();
    }
    std::memcpy(out.data(), it->second.data.data(), config_.chunk_bytes);
    offset = it->second.ssd_offset;
  }
  node_.ssd().ChargeRead(clock, offset, config_.chunk_bytes);
  data_bytes_out_.Add(config_.chunk_bytes);
  MaybeKillAfterRead();
  return OkStatus();
}

Status Benefactor::ReadChunkRun(sim::VirtualClock& clock,
                                std::span<const ChunkKey> keys,
                                const ChunkRunSink& sink) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  read_requests_.Add(1);
  std::vector<uint8_t> buf;
  bool first_data_chunk = true;
  for (const ChunkKey& key : keys) {
    // A crash between chunks takes down the rest of the run: the caller
    // sees one UNAVAILABLE for the whole run and must discard whatever it
    // already received.
    NVM_RETURN_IF_ERROR(EnsureAlive());
    ChunkRunItem item;
    item.key = key;
    uint64_t offset = 0;
    bool stored = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = chunks_.find(key);
      if (it != chunks_.end()) {
        stored = true;
        buf.resize(config_.chunk_bytes);
        std::memcpy(buf.data(), it->second.data.data(), config_.chunk_bytes);
        offset = it->second.ssd_offset;
      }
    }
    if (!stored) {
      // Sparse chunk: the stream carries only the "no such chunk" marker,
      // no device access (the backing file has a hole here).
      item.sparse = true;
      item.ready_at = clock.now();
      NVM_RETURN_IF_ERROR(sink(item, {}));
      continue;
    }
    // The run occupies one device queueing slot: the first stored chunk
    // pays the per-request read latency, the rest stream at bandwidth.
    node_.ssd().ChargeRunRead(clock, offset, config_.chunk_bytes,
                              first_data_chunk);
    first_data_chunk = false;
    data_bytes_out_.Add(config_.chunk_bytes);
    item.ready_at = clock.now();
    NVM_RETURN_IF_ERROR(sink(item, buf));
    MaybeKillAfterRead();
  }
  return OkStatus();
}

Status Benefactor::WritePages(sim::VirtualClock& clock, const ChunkKey& key,
                              const Bitmap& dirty_pages,
                              std::span<const uint8_t> data) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  write_requests_.Add(1);
  NVM_CHECK(data.size() == config_.chunk_bytes);
  NVM_CHECK(dirty_pages.size() == config_.pages_per_chunk());

  uint64_t offset = 0;
  size_t pages_written = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      StoredChunk chunk;
      chunk.data.assign(config_.chunk_bytes, 0);
      chunk.ssd_offset = AllocateOffset();
      it = chunks_.emplace(key, std::move(chunk)).first;
    }
    offset = it->second.ssd_offset;
    dirty_pages.ForEachSet([&](size_t page) {
      const uint64_t off = page * config_.page_bytes;
      std::memcpy(it->second.data.data() + off, data.data() + off,
                  config_.page_bytes);
      ++pages_written;
    });
  }
  // Charge the device only for the dirty pages.  Pages within one chunk are
  // contiguous enough that we charge them as one request per dirty run; a
  // single combined request keeps the model simple and matches the paper's
  // "send only the dirty pages" accounting.
  if (pages_written > 0) {
    const uint64_t bytes = pages_written * config_.page_bytes;
    node_.ssd().ChargeWrite(clock, offset, bytes);
    data_bytes_in_.Add(bytes);
    MaybeKillAfterWrite();
  }
  return OkStatus();
}

Status Benefactor::WriteChunkRun(sim::VirtualClock& clock,
                                 std::span<const ChunkWriteItem> items,
                                 const ChunkRunSend& send) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  write_requests_.Add(1);
  const int64_t t0 = clock.now();
  bool first_data_chunk = true;
  for (const ChunkWriteItem& item : items) {
    // A crash between chunks takes down the rest of the run: the caller
    // sees one UNAVAILABLE for the whole run and must treat every item as
    // unwritten on this replica.
    NVM_RETURN_IF_ERROR(EnsureAlive());
    NVM_CHECK(item.dirty != nullptr);
    NVM_CHECK(item.data.size() == config_.chunk_bytes);
    NVM_CHECK(item.dirty->size() == config_.pages_per_chunk());

    if (item.needs_clone) {
      // The clone instruction is its own control message (exactly as in
      // the per-chunk path); the local copy must complete before the
      // dirty pages can land on the fresh version.
      const int64_t instr_at =
          send(RunMsg::kControl, t0, config_.meta_request_bytes);
      clock.AdvanceTo(instr_at);
      NVM_RETURN_IF_ERROR(CloneChunk(clock, item.clone_from, item.key));
    }

    const uint64_t dirty_bytes = item.dirty->PopCount() * config_.page_bytes;
    // Dirty pages stream from the run's start (the client has them all in
    // hand at t0); a post-clone payload can only start once the clone has
    // been instructed and applied.
    const int64_t arrive = send(RunMsg::kPayload,
                                item.needs_clone ? clock.now() : t0,
                                dirty_bytes);
    clock.AdvanceTo(arrive);

    uint64_t offset = 0;
    size_t pages_written = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = chunks_.find(item.key);
      if (it == chunks_.end()) {
        StoredChunk chunk;
        chunk.data.assign(config_.chunk_bytes, 0);
        chunk.ssd_offset = AllocateOffset();
        it = chunks_.emplace(item.key, std::move(chunk)).first;
      }
      offset = it->second.ssd_offset;
      item.dirty->ForEachSet([&](size_t page) {
        const uint64_t off = page * config_.page_bytes;
        std::memcpy(it->second.data.data() + off, item.data.data() + off,
                    config_.page_bytes);
        ++pages_written;
      });
    }
    if (pages_written > 0) {
      // The run occupies one device queueing slot: the first programmed
      // chunk pays the per-request write latency, the rest stream at
      // bandwidth.
      node_.ssd().ChargeRunWrite(clock, offset,
                                 pages_written * config_.page_bytes,
                                 first_data_chunk);
      first_data_chunk = false;
      data_bytes_in_.Add(pages_written * config_.page_bytes);
      MaybeKillAfterWrite();
    }
  }
  return OkStatus();
}

Status Benefactor::CloneChunk(sim::VirtualClock& clock, const ChunkKey& from,
                              const ChunkKey& to) {
  NVM_RETURN_IF_ERROR(EnsureAlive());
  uint64_t src_offset = 0;
  uint64_t dst_offset = 0;
  bool materialised = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(from);
    if (it != chunks_.end()) {
      StoredChunk clone;
      clone.data = it->second.data;
      clone.ssd_offset = AllocateOffset();
      src_offset = it->second.ssd_offset;
      dst_offset = clone.ssd_offset;
      chunks_.emplace(to, std::move(clone));
      materialised = true;
    }
    // Cloning a sparse (never-written) chunk needs no data movement: the
    // clone is sparse too.
  }
  if (materialised) {
    node_.ssd().ChargeRead(clock, src_offset, config_.chunk_bytes);
    node_.ssd().ChargeWrite(clock, dst_offset, config_.chunk_bytes);
  }
  return OkStatus();
}

bool Benefactor::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return chunks_.contains(key);
}

std::vector<ChunkKey> Benefactor::StoredChunkKeys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ChunkKey> keys;
  keys.reserve(chunks_.size());
  for (const auto& [key, chunk] : chunks_) keys.push_back(key);
  return keys;
}

Status Benefactor::DeleteChunk(const ChunkKey& key) {
  // Deletion is allowed even on a dead benefactor: the manager is cleaning
  // up its metadata and the data is already unreachable.
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    free_offsets_.push_back(it->second.ssd_offset);
    chunks_.erase(it);
  }
  return OkStatus();
}

}  // namespace nvm::store

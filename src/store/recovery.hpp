// Cold-start recovery report for the manager metadata plane.
//
// Manager::Recover (store/recovery.cpp) rebuilds the namespace, file
// tables and chunk shards from the newest valid checkpoint plus a WAL
// replay, then reconciles the result against the live benefactor
// inventories: per-replica write-time `{has_crc, crc}` metadata decides
// conflicts, so a chunk either comes back with bytes that verify or is
// surfaced as lost — never with wrong bytes.  This struct is what the
// restart path hands back to callers (and what the crash-schedule tests
// assert on).
#pragma once

#include <cstdint>

namespace nvm::store {

struct RecoveryReport {
  // --- what the durable image contained ---
  bool used_checkpoint = false;   // a valid checkpoint slot was found
  uint64_t checkpoint_seq = 0;    // WAL seq the checkpoint covered
  uint64_t records_replayed = 0;  // WAL records applied after the checkpoint
  bool torn_tail = false;         // replay stopped at a torn/corrupt record

  // --- what came back ---
  uint64_t files_recovered = 0;
  uint64_t chunks_recovered = 0;  // live chunk handles after reconciliation

  // --- reconciliation actions ---
  // Replicas dropped because their stored bytes diverged from the
  // authoritative (or adopted) checksum.
  uint64_t replicas_dropped = 0;
  // Chunks whose authoritative checksum was adopted from agreeing replica
  // inventories (a write that completed on the benefactors but whose
  // completion record died with the crash).
  uint64_t crc_adopted = 0;
  // COW slots rolled back to their previous version because the fresh
  // version's data never landed anywhere.
  uint64_t cow_rolled_back = 0;
  // Chunks with no recoverable replica anywhere: published as empty
  // location lists (reads fail; they never serve wrong bytes).
  uint64_t chunks_lost = 0;
  // Benefactor-side cleanup: stored chunks nothing references any more.
  uint64_t orphans_deleted = 0;
  // Benefactors whose reservation count had to be corrected.
  uint64_t reservation_fixes = 0;
};

}  // namespace nvm::store

// Background maintenance service of the aggregate store.
//
// The paper's store must survive benefactor loss without operator action:
// "the available memory capacity is reduced" on a failure, but the data a
// failed benefactor held has to be re-protected from the surviving
// replicas.  This service runs manager-side on its own virtual-time worker
// thread (sim::VirtualWorker) and cooperates three loops:
//
//   failure detector  periodic heartbeat sweeps; a benefactor is only
//                     *declared* dead after `heartbeat_misses` consecutive
//                     missed heartbeats (suspicion threshold), which
//                     rides out transient stalls without spurious repair
//   incremental repair clients report degraded ChunkKeys as their writes
//                     observe failures; a dedup'd queue drains chunk by
//                     chunk through the manager's plan/execute/commit
//                     engine, throttled to `repair_bw_fraction` of the
//                     worker's virtual time (duty cycle) so repair traffic
//                     cannot starve foreground I/O
//   scrubber          a slow periodic Manager::ScrubOnce pass reconciling
//                     chunk maps against benefactor state, reclaiming
//                     orphans and re-queueing missed under-replicated
//                     chunks; with scrub_verify it also runs an incremental
//                     Manager::VerifyScrub sweep re-checksumming stored
//                     chunk contents (scrub_verify_bytes per pass, same
//                     duty-cycle throttle as repair) and queueing
//                     quarantined bit rot for re-replication
//   checkpointer      with the wal knob on and checkpoint_period_ms > 0, a
//                     periodic Manager::Checkpoint serialises the metadata
//                     plane into the WAL's checkpoint store, bounding the
//                     log length a cold-start recovery must replay
//
// Locking discipline: all engine state (schedule, miss counters) is
// touched only from worker tasks; the cross-thread state is the repair
// queue — sharded by ChunkKey hash exactly like the manager's metadata
// plane, so reporters on different shards never contend — and the
// schedule target, guarded by one small mutex.  A queue-shard lock is
// never held while taking mu_ (or any manager lock), and chunk data moves
// only in Manager::ExecuteRepairPlan, never under any metadata mutex.
//
// The service has no thread of time of its own — virtual time only moves
// when something drives it.  Foreground metadata round-trips call Tick()
// (cheap check against the next due time); tests and benchmarks call
// RunUntil() to advance the schedule to a virtual deadline and drain the
// repair queue deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "sim/worker.hpp"
#include "store/manager.hpp"

namespace nvm::store {

// Point-in-time snapshot assembled by MaintenanceService::stats() from the
// service's relaxed atomic counters (and the manager's Counter totals), so
// any thread — the report path in particular — can read it without taking
// the worker's locks.  Fields are plain values: the snapshot is coherent
// enough for reporting, not a linearisable view.
struct MaintenanceStats {
  // Failure detector.
  uint64_t heartbeat_sweeps = 0;
  uint64_t benefactors_suspected = 0;      // first missed heartbeat
  uint64_t benefactors_declared_dead = 0;  // suspicion confirmed
  // Repair.
  uint64_t degraded_reports = 0;   // client ReportDegraded calls
  uint64_t repairs_enqueued = 0;   // distinct keys accepted into the queue
  uint64_t repair_batches = 0;
  uint64_t replicas_recreated = 0;
  uint64_t repairs_requeued = 0;   // retries: lost races or mid-copy deaths
  uint64_t repair_capacity_misses = 0;  // plans short of the target count
  uint64_t lost_chunks = 0;        // no surviving replica (manager total)
  uint64_t queue_depth = 0;        // keys waiting right now
  int64_t repair_busy_ns = 0;      // virtual time spent moving chunk data
  int64_t throttle_idle_ns = 0;    // virtual time idled by the duty cycle
  int64_t converged_at_ns = -1;    // virtual time the queue last drained
  // Scrubber.
  uint64_t scrub_passes = 0;
  uint64_t scrub_orphans_deleted = 0;
  uint64_t scrub_reservation_fixes = 0;
  uint64_t scrub_requeued = 0;
  // Checkpointer (wal knob + checkpoint_period_ms > 0).
  uint64_t checkpoints = 0;
  // Checksum verification (scrub_verify).
  uint64_t scrub_chunks_verified = 0;  // distinct keys visited by the sweep
  uint64_t scrub_bytes_verified = 0;   // chunk bytes read + checksummed
  uint64_t corrupt_chunks_detected = 0;  // replicas quarantined (read+scrub)
  uint64_t corrupt_chunks_repaired = 0;  // healed back to full replication
  // Worker clock position.
  int64_t clock_ns = 0;
};

class MaintenanceService {
 public:
  // Reads every knob from manager.config(); attaches itself to the
  // manager so client-side ReportDegraded/Tick signals reach it.
  explicit MaintenanceService(Manager& manager);
  ~MaintenanceService();  // detaches, then drains and joins the worker

  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  // A client observed a replica write fail at virtual `now_ns`: queue the
  // chunk for re-replication (dedup'd) and wake the worker.  Any thread.
  void ReportDegraded(const ChunkKey& key, int64_t now_ns);

  // Pacing hook from foreground traffic: if the schedule has work due at
  // or before `now_ns`, post a catch-up task.  Cheap when idle (one
  // relaxed load).  Any thread.
  void Tick(int64_t now_ns);

  // Deterministic driver: advance the heartbeat/scrub schedule to
  // `deadline_ns`, drain the repair queue, and block until the worker is
  // idle.  On return every repair enqueued before the call has been
  // committed (or died as lost/requeued-and-retried).
  void RunUntil(int64_t deadline_ns);

  bool QueueEmpty() const;
  MaintenanceStats stats() const;
  int64_t now_ns() const { return worker_.now_ns(); }

  // Per-benefactor suspicion flags for the placement engine: one entry
  // per benefactor registered when the service started, set while the
  // heartbeat detector counts >= 1 consecutive missed heartbeat (the
  // suspected-but-not-yet-declared-dead window; a clean sweep clears it).
  // Lock-free snapshot of the mirrored atomic counters — callable from
  // any thread, including under the manager's hook lock.
  std::vector<char> SuspectedSnapshot() const;

 private:
  struct Pending {
    ChunkKey key;
    int64_t reported_ns = 0;
  };

  // One slice of the repair queue: the keys whose manager metadata shard
  // this is (same splitmix64 partition), FIFO within the shard, dedup'd by
  // `queued`.  Reporters on different shards take different locks.
  struct QueueShard {
    mutable std::mutex mu;
    std::deque<Pending> queue;
    std::unordered_set<ChunkKey, ChunkKeyHash> queued;  // dedup of queue
  };

  // Post a catch-up task unless one is already pending (mu_ held).
  bool KickLocked();
  // Accept `key` into its queue shard unless already waiting.  Takes (and
  // releases) only that shard's lock.  Any thread.
  bool Enqueue(const ChunkKey& key, int64_t now_ns);

  // Worker-side loops (run only on the worker thread).
  void CatchUp(sim::VirtualClock& clock);
  void RepairBatch(sim::VirtualClock& clock);
  void HeartbeatSweep(sim::VirtualClock& clock);
  void ScrubPass(sim::VirtualClock& clock);
  void CheckpointPass(sim::VirtualClock& clock);

  Manager& manager_;
  const int64_t heartbeat_period_ns_;
  const int heartbeat_misses_;
  const double bw_fraction_;
  // When the QoS scheduler arbitrates maintenance as a tenant, the local
  // duty-cycle throttle is redundant (and would double-penalise repair).
  const bool qos_on_;
  const int64_t scrub_period_ns_;
  // 0 when disabled (no WAL attached, or checkpoint_period_ms == 0).
  const int64_t checkpoint_period_ns_;

  // Cross-thread state: the sharded repair queue (one shard per manager
  // metadata shard) plus the schedule target under mu_.
  std::vector<QueueShard> queues_;
  // Total keys waiting across all shards, maintained by Enqueue and the
  // batch drain: QueueEmpty(), stats(), and the catch-up loop read one
  // relaxed load instead of sweeping every shard lock.
  std::atomic<uint64_t> queue_depth_{0};
  mutable std::mutex mu_;
  int64_t target_ns_ = 0;  // virtual time the schedule must reach
  bool kicked_ = false;    // a catch-up task is posted or running

  // Fast-path gate for Tick(): the earliest virtual time anything is due.
  std::atomic<int64_t> next_due_{0};

  // Worker-only state (touched solely from tasks, no locking needed).
  int64_t next_heartbeat_ns_;
  int64_t next_scrub_ns_;
  int64_t next_checkpoint_ns_;  // INT64_MAX when disabled
  std::vector<int> missed_;  // consecutive missed heartbeats, by id
  size_t drain_cursor_ = 0;  // queue shard the next repair batch starts at

  // Cross-thread mirror of missed_ for SuspectedSnapshot(): sized at
  // construction (benefactors register before the service in both
  // AggregateStore wiring paths; one registered later is simply never
  // suspected), written only by the heartbeat sweep.
  const size_t suspect_slots_;
  std::unique_ptr<std::atomic<uint32_t>[]> suspect_counts_;

  // Stats (atomic so stats() works from any thread).
  Counter sweeps_;
  Counter suspected_;
  Counter declared_dead_;
  Counter reports_;
  Counter enqueued_;
  Counter batches_;
  Counter recreated_;
  Counter requeued_;
  Counter capacity_misses_;
  Counter scrub_passes_;
  Counter scrub_orphans_;
  Counter scrub_res_fixes_;
  Counter scrub_requeued_;
  Counter checkpoints_;
  Counter scrub_chunks_verified_;
  Counter scrub_bytes_verified_;
  std::atomic<int64_t> repair_busy_ns_{0};
  std::atomic<int64_t> throttle_idle_ns_{0};
  std::atomic<int64_t> converged_ns_{-1};

  // Declared last: its destructor joins the thread while everything above
  // is still alive for in-flight tasks.
  sim::VirtualWorker worker_;
};

}  // namespace nvm::store

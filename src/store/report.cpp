#include "store/report.hpp"

#include <cstdio>

#include "common/units.hpp"

namespace nvm::store {

std::string StatusReport(AggregateStore& store,
                         std::span<const MountCacheStats> mounts) {
  std::string out;
  char line[256];

  uint64_t total_contrib = 0;
  uint64_t total_used = 0;
  size_t alive = 0;
  std::snprintf(line, sizeof(line),
                "%-4s %-6s %-6s %-10s %-10s %-12s %-12s %-8s\n", "id",
                "node", "state", "used", "free", "data-in", "data-out",
                "wear");
  out += line;
  for (size_t i = 0; i < store.num_benefactors(); ++i) {
    Benefactor& b = store.benefactor(i);
    total_contrib += b.contributed_bytes();
    total_used += b.bytes_used();
    if (b.alive()) ++alive;
    std::snprintf(line, sizeof(line),
                  "%-4d %-6d %-6s %-10s %-10s %-12s %-12s %-7.4f%%\n",
                  b.id(), b.node_id(), b.alive() ? "up" : "DOWN",
                  FormatBytes(b.bytes_used()).c_str(),
                  FormatBytes(b.bytes_free()).c_str(),
                  FormatBytes(b.data_bytes_in()).c_str(),
                  FormatBytes(b.data_bytes_out()).c_str(),
                  100.0 * b.ssd().wear_fraction());
    out += line;
  }
  std::snprintf(
      line, sizeof(line),
      "aggregate: %zu/%zu benefactors up, %s used of %s (%.1f%%), "
      "%llu files\n",
      alive, store.num_benefactors(), FormatBytes(total_used).c_str(),
      FormatBytes(total_contrib).c_str(),
      total_contrib > 0
          ? 100.0 * static_cast<double>(total_used) /
                static_cast<double>(total_contrib)
          : 0.0,
      static_cast<unsigned long long>(store.manager().num_files()));
  out += line;
  if (store.manager().lost_chunks() > 0) {
    std::snprintf(line, sizeof(line), "LOST CHUNKS: %llu (no surviving replica)\n",
                  static_cast<unsigned long long>(store.manager().lost_chunks()));
    out += line;
  }
  if (store.manager().config().ec()) {
    const Manager& mgr = store.manager();
    std::snprintf(
        line, sizeof(line),
        "ec: RS(%u,%u), %llu degraded reads, %llu fragments repaired, "
        "%s parity written\n",
        mgr.config().ec_k, mgr.config().ec_m,
        static_cast<unsigned long long>(mgr.ec_degraded_reads()),
        static_cast<unsigned long long>(mgr.ec_fragments_repaired()),
        FormatBytes(mgr.ec_parity_bytes()).c_str());
    out += line;
  }
  if (store.manager().corrupt_detected() > 0) {
    std::snprintf(
        line, sizeof(line),
        "CORRUPT replicas detected: %llu (%llu chunks healed)\n",
        static_cast<unsigned long long>(store.manager().corrupt_detected()),
        static_cast<unsigned long long>(store.manager().corrupt_repaired()));
    out += line;
  }

  if (const MaintenanceService* m = store.maintenance()) {
    const MaintenanceStats s = m->stats();
    std::snprintf(line, sizeof(line),
                  "maintenance: clock %.3f ms, %llu sweeps, %llu suspected, "
                  "%llu declared dead\n",
                  static_cast<double>(s.clock_ns) / 1e6,
                  static_cast<unsigned long long>(s.heartbeat_sweeps),
                  static_cast<unsigned long long>(s.benefactors_suspected),
                  static_cast<unsigned long long>(s.benefactors_declared_dead));
    out += line;
    std::snprintf(
        line, sizeof(line),
        "  repair: %llu reports, %llu enqueued, %llu queued now, "
        "%llu batches, %llu replicas recreated, %llu requeued, "
        "%llu capacity misses\n",
        static_cast<unsigned long long>(s.degraded_reports),
        static_cast<unsigned long long>(s.repairs_enqueued),
        static_cast<unsigned long long>(s.queue_depth),
        static_cast<unsigned long long>(s.repair_batches),
        static_cast<unsigned long long>(s.replicas_recreated),
        static_cast<unsigned long long>(s.repairs_requeued),
        static_cast<unsigned long long>(s.repair_capacity_misses));
    out += line;
    std::snprintf(line, sizeof(line),
                  "  repair time: %.3f ms busy, %.3f ms throttled idle, "
                  "converged at %.3f ms\n",
                  static_cast<double>(s.repair_busy_ns) / 1e6,
                  static_cast<double>(s.throttle_idle_ns) / 1e6,
                  static_cast<double>(s.converged_at_ns) / 1e6);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  scrub: %llu passes, %llu orphans deleted, "
                  "%llu reservation fixes, %llu requeued\n",
                  static_cast<unsigned long long>(s.scrub_passes),
                  static_cast<unsigned long long>(s.scrub_orphans_deleted),
                  static_cast<unsigned long long>(s.scrub_reservation_fixes),
                  static_cast<unsigned long long>(s.scrub_requeued));
    out += line;
    std::snprintf(
        line, sizeof(line),
        "  verify: %llu chunks (%s) checksummed, %llu corrupt detected, "
        "%llu healed\n",
        static_cast<unsigned long long>(s.scrub_chunks_verified),
        FormatBytes(s.scrub_bytes_verified).c_str(),
        static_cast<unsigned long long>(s.corrupt_chunks_detected),
        static_cast<unsigned long long>(s.corrupt_chunks_repaired));
    out += line;
  }

  {
    const QosStats qs = store.qos().Snapshot();
    if (!qs.tenants.empty()) {
      std::snprintf(line, sizeof(line), "qos: %s, %zu tenants\n",
                    store.config().store.qos ? "on" : "off (accounting only)",
                    qs.tenants.size());
      out += line;
      for (const QosTenantStats& t : qs.tenants) {
        std::snprintf(
            line, sizeof(line),
            "  tenant %u: %llu reads p50/p99/p999 %.1f/%.1f/%.1f us, "
            "%llu writes p50/p99/p999 %.1f/%.1f/%.1f us\n",
            t.id, static_cast<unsigned long long>(t.reads),
            static_cast<double>(t.read_p50_ns) / 1e3,
            static_cast<double>(t.read_p99_ns) / 1e3,
            static_cast<double>(t.read_p999_ns) / 1e3,
            static_cast<unsigned long long>(t.writes),
            static_cast<double>(t.write_p50_ns) / 1e3,
            static_cast<double>(t.write_p99_ns) / 1e3,
            static_cast<double>(t.write_p999_ns) / 1e3);
        out += line;
        if (t.admitted > 0) {
          std::snprintf(
              line, sizeof(line),
              "    admissions %llu (%llu delayed, %.3f ms total delay), "
              "%s on the wire\n",
              static_cast<unsigned long long>(t.admitted),
              static_cast<unsigned long long>(t.delayed),
              static_cast<double>(t.delay_ns) / 1e6,
              FormatBytes(t.bytes).c_str());
          out += line;
        }
      }
    }
  }

  if (!mounts.empty()) {
    std::snprintf(line, sizeof(line),
                  "%-6s %-10s %-10s %-10s %-10s %-10s %-10s %-10s %-10s\n",
                  "node", "resident", "hits", "fetched", "prefetch",
                  "evicted", "drop-dirty", "flush-bat", "degraded");
    out += line;
    for (const MountCacheStats& m : mounts) {
      std::snprintf(line, sizeof(line),
                    "%-6d %-10llu %-10llu %-10llu %-10llu %-10llu %-10llu "
                    "%-10llu %-10llu\n",
                    m.node, static_cast<unsigned long long>(m.resident_chunks),
                    static_cast<unsigned long long>(m.hit_chunks),
                    static_cast<unsigned long long>(m.fetched_chunks),
                    static_cast<unsigned long long>(m.prefetched_chunks),
                    static_cast<unsigned long long>(m.evictions),
                    static_cast<unsigned long long>(m.dropped_dirty),
                    static_cast<unsigned long long>(m.flush_batches),
                    static_cast<unsigned long long>(m.degraded_writes));
      out += line;
    }
  }
  return out;
}

}  // namespace nvm::store

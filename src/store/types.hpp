// Shared vocabulary types for the aggregate NVM store.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bitmap.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"
#include "common/units.hpp"

namespace nvm::store {

using FileId = uint64_t;
constexpr FileId kInvalidFileId = 0;

// Identity of one immutable chunk version.  Copy-on-write bumps `version`;
// checkpoint linking shares (file, index, version) triples across files via
// refcounting in the manager.
struct ChunkKey {
  FileId origin_file = kInvalidFileId;  // file that first created the chunk
  uint32_t index = 0;                   // chunk index within the origin file
  uint32_t version = 0;

  bool operator==(const ChunkKey&) const = default;
  std::string ToString() const {
    return "chunk(" + std::to_string(origin_file) + "," +
           std::to_string(index) + ",v" + std::to_string(version) + ")";
  }
};

struct ChunkKeyHash {
  size_t operator()(const ChunkKey& k) const {
    return static_cast<size_t>(HashTriple64(k.origin_file, k.index, k.version));
  }
};

// Where the replicas of one chunk live.
struct ChunkRef {
  ChunkKey key;
  std::vector<int> benefactors;  // benefactor ids, primary first
};

// Reply header for one chunk inside a multi-chunk read run
// (Benefactor::ReadChunkRun).  `ready_at` is the virtual time the chunk
// left the device — the earliest instant its wire transfer can start.
struct ChunkRunItem {
  ChunkKey key;
  bool sparse = false;   // reserved-but-never-written: reads as zeros
  int64_t ready_at = 0;  // device completion time on the run's clock
};

// Receives the chunks of a run in request order.  `data` is the full chunk
// image, or empty when the item is sparse (the reply then carries only the
// "no such chunk" marker).  A non-OK return aborts the rest of the run.
using ChunkRunSink =
    std::function<Status(const ChunkRunItem&, std::span<const uint8_t>)>;

// One chunk inside a multi-chunk write run (Benefactor::WriteChunkRun).
// `data` is the full chunk image; `dirty` selects the pages to program.
// When `needs_clone` is set the benefactor must copy `clone_from` into
// `key` before applying the dirty pages (COW of a shared version).
struct ChunkWriteItem {
  ChunkKey key;
  const Bitmap* dirty = nullptr;
  std::span<const uint8_t> data;
  bool needs_clone = false;
  ChunkKey clone_from;
  // Client-computed CRC32C of the full chunk image (valid when `has_crc`);
  // the benefactor stores it with the chunk — or recomputes over the
  // merged image when the dirty set covers only part of the chunk.
  bool has_crc = false;
  uint32_t crc = 0;
  // Out (rides the run's ack): the CRC the benefactor actually stored.
  // For a partial-dirty merge this covers the MERGED image, which can
  // legitimately differ from `crc` when the client's clean pages were
  // never faulted in — the merged value is the only one the manager may
  // record as authoritative.
  uint32_t* stored_crc = nullptr;
};

// Wire-message kinds inside a write run.  kControl carries run/clone
// bookkeeping (charged like a metadata request); kPayload carries dirty
// page data — the first payload of a run also carries the run's request
// header, which is what makes a run of one byte-identical to the legacy
// single-chunk write message.
enum class RunMsg : uint8_t { kControl, kPayload };

// Sends one client→benefactor message of a write run and returns its
// arrival time on the benefactor.  `earliest_ns` is the send floor (the
// NIC pipelines messages in order from there).
using ChunkRunSend = std::function<int64_t(RunMsg, int64_t, uint64_t)>;

// Identity of one bandwidth principal sharing the store.  Every data-plane
// request carries a TenantId; the QoS scheduler (store/qos.hpp) arbitrates
// SSD and NIC admission between tenants.  Maintenance traffic (repair,
// scrub, decommission data movement) is just another tenant.
using TenantId = uint32_t;
constexpr TenantId kTenantForeground = 0;   // default for untagged clients
constexpr TenantId kTenantMaintenance = 1;  // repair/scrub/decommission

// Per-tenant QoS policy (StoreConfig::qos_tenants).  Tenants not listed
// get {weight 1, bw_share 0, priority 1}.
struct QosTenant {
  TenantId id = kTenantForeground;
  // Relative share of otherwise-idle bandwidth among same-priority tenants
  // competing at the same instant (work-conserving redistribution).
  double weight = 1.0;
  // Guaranteed fraction of each resource's bandwidth, refilled into the
  // tenant's token bucket; 0 means the tenant runs purely on idle
  // bandwidth (it is still starvation-proof via the scheduler's floor).
  double bw_share = 0.0;
  // Higher priority tenants split idle bandwidth first; lower tiers fall
  // back to their guaranteed share while a higher tier is waiting.
  int priority = 1;
};

// Chunk placement policy (paper §III-A: "we need to optimize the NVM
// store by taking into account the locality of the NVM, data access
// patterns, etc.").
enum class StripePolicy : uint8_t {
  kRoundRobin,        // the paper's striping: spread for parallel bandwidth
  kLocalityAware,     // prefer a benefactor on the allocating client's node
  kCapacityBalanced,  // always the emptiest alive benefactor
};

// How a file's chunks are protected against benefactor loss.  The mode is
// decided per file at Fallocate time from StoreConfig::redundancy and
// journaled through the WAL, so a store can mix replicated and
// erasure-coded files across a config change.
enum class RedundancyMode : uint8_t {
  kReplicate = 0,  // `replication` full copies per chunk
  kErasure = 1,    // RS(ec_k, ec_m) fragments, chunk_bytes/ec_k each
};

struct StoreConfig {
  uint64_t chunk_bytes = 256_KiB;  // paper default stripe unit
  uint64_t page_bytes = 4_KiB;     // OS page / flash page
  int replication = 1;             // replicas per chunk (1 = paper setup)
  StripePolicy stripe_policy = StripePolicy::kRoundRobin;
  // Modelled control-plane costs.
  int64_t manager_op_ns = 3'000;       // metadata service time per op
  uint64_t meta_request_bytes = 64;    // modelled RPC request size
  uint64_t meta_response_bytes = 128;  // modelled RPC response size
  // Metadata shards of the manager.  The chunk namespace is partitioned by
  // splitmix64 hash of ChunkKey into this many independent shards, each
  // owning its slice of the location/checksum maps, write fences, repair
  // epochs and repair queue behind its own mutex — and each with its own
  // modelled metadata service lane, so clients working on different files
  // stop serialising on one manager timeline.  1 (the default) keeps the
  // manager fully serialised and is behaviorally identical to the
  // pre-shard store; raise it (16 is a good production setting) for
  // many-client metadata scaling (bench_meta_ops sweeps 1/4/16).
  size_t meta_shards = 1;
  // Batched benefactor-side reads: StoreClient::ReadChunks groups a batch
  // by primary benefactor and issues one streamed ReadChunkRun per group —
  // one request header and one device queueing slot per run instead of per
  // chunk.  Off reverts to per-chunk requests.
  bool batch_rpc = true;
  // Batched benefactor-side writes: StoreClient::WriteChunks resolves a
  // whole flush window in one metadata RTT (Manager::PrepareWriteBatch),
  // groups the prepared chunks by benefactor and streams one WriteChunkRun
  // per benefactor — one request header and one device queueing slot per
  // run.  Off reverts to per-chunk WriteChunkPages calls.
  bool batch_write_rpc = true;

  // --- background maintenance service (store/maintenance.hpp) ---
  // Master switch: when on, the AggregateStore runs a manager-side service
  // on its own virtual-time worker thread with three loops — a heartbeat
  // failure detector, an incremental repair queue fed by client degraded-
  // write reports, and a slow metadata scrubber.  Off (default) keeps the
  // store exactly as before: degraded chunks stay under-replicated until
  // Manager::RepairReplication is invoked manually.
  bool maintenance = false;
  // Failure detector: sweep period and the number of consecutive missed
  // heartbeats before a benefactor is *declared* dead (suspicion
  // threshold; a transient stall shorter than misses*period never
  // triggers repair).
  int64_t heartbeat_period_ms = 50;
  int heartbeat_misses = 3;
  // Fraction of the maintenance worker's virtual time the repair loop may
  // keep devices busy (duty cycle).  After each repair batch the worker
  // idles busy*(1-f)/f ns, leaving timeline gaps foreground traffic
  // backfills — repair cannot starve reads/writes.  1.0 = no throttle.
  double repair_bw_fraction = 0.5;
  // Scrubber: period of the slow scan reconciling manager chunk maps
  // against benefactor stored-chunk sets and reservation accounting.
  int64_t scrub_period_ms = 500;

  // --- end-to-end chunk integrity (common/checksum.hpp) ---
  // Benefactors verify a chunk's CRC32C before serving it; a mismatch
  // fails the read with CORRUPT and the client fails over to another
  // replica, quarantining the bad copy for repair.
  bool verify_reads = true;
  // The scrubber additionally verifies stored chunk contents against the
  // manager's authoritative checksums, `scrub_verify_bytes` per pass, and
  // quarantines silent bit rot no reader has touched yet.
  bool scrub_verify = true;
  // Per-pass byte budget of the scrub verification sweep (a round-robin
  // cursor covers the whole store incrementally across passes).
  uint64_t scrub_verify_bytes = 8_MiB;
  // Modelled CPU throughput of the software CRC32C, in GB/s: every
  // checksummed byte charges 1/bw ns to the computing side's clock, so
  // integrity is never free in virtual-time results.
  double checksum_bw_gbps = 4.0;

  // --- crash-consistent manager metadata (store/wal.hpp, recovery.hpp) ---
  // Master switch: when on, the AggregateStore owns a write-ahead log +
  // checkpoint store on a manager-local SSD and the manager appends one
  // durable record ahead of every metadata mutation (log-before-publish).
  // A killed manager then restarts via Manager::Recover: checkpoint +
  // WAL replay, reconciled against the live benefactor inventories.  Off
  // (default) keeps the store byte- and virtual-time-identical to the
  // WAL-less implementation — nothing is logged, charged, or recoverable.
  bool wal = false;
  // Period of the maintenance-loop checkpoint that supersedes the log
  // prefix it covers (0 disables periodic checkpoints; manual
  // Manager::Checkpoint still works).  Requires wal and maintenance.
  int64_t checkpoint_period_ms = 1000;
  // WAL segment size: records append to fixed-size segments so superseded
  // history is dropped segment-at-a-time.
  uint64_t wal_segment_bytes = 64_KiB;
  // Device profile of the manager-local log/checkpoint SSD:
  // "x25e" | "fusionio" | "ocz" | "dram" (Table I profiles).
  std::string wal_device = "x25e";
  bool wal_device_wear_leveling = true;

  // --- placement engine (store/placement.hpp) ---
  // Every placement decision (Fallocate striping, COW write targets,
  // repair re-replication) flows through one shared engine that filters
  // and ranks candidate benefactors.  These knobs feed it reliability and
  // endurance signals; with BOTH at their defaults the engine reproduces
  // the capacity-only placement exactly — byte- and virtual-time-
  // identical to the pre-engine store (no suspicion snapshot is taken, no
  // wear fraction is read).
  //
  // placement_avoid_suspected: consult the maintenance service's
  // heartbeat detector.  Benefactors with >= 1 consecutive missed
  // heartbeat (suspected but not yet declared dead) rank LAST for
  // striping and COW targets (soft avoidance — they are still used when
  // nothing else has space) and are fully ineligible as repair targets
  // (hard exclusion — re-protection must not bet on a flapping node).
  // The same knob turns on correlated-loss exclusion: a benefactor whose
  // replica of a chunk was quarantined as corrupt, or that produced a
  // divergent replica during recovery, is not an eligible repair target
  // for that chunk until a completed write refreshes its bytes.
  bool placement_avoid_suspected = false;
  // placement_wear_weight: bias placement away from benefactors whose
  // SSD has consumed more of its rated erase endurance.  Candidates are
  // ranked by floor(wear_fraction * weight * 16) — 0 disables the bias
  // entirely; larger weights split the wear spectrum into finer bands
  // that override capacity/rotation order sooner.
  double placement_wear_weight = 0.0;

  // --- erasure-coded redundancy (store/erasure.hpp) ---
  // Redundancy mode for files allocated from now on.  kErasure stripes
  // every chunk into ec_k data + ec_m parity fragments of
  // chunk_bytes/ec_k bytes each (RS over GF(2^8)), placed on k+m distinct
  // benefactors (hard failure-domain spreading).  Any k surviving
  // fragments reconstruct the chunk byte-exactly: reads degrade through
  // parity instead of failing, and repair re-encodes lost fragments from
  // k verified survivors.  Space and write-bandwidth overhead is
  // (k+m)/k× (1.5× at the 4+2 default) versus replication's `replication`×.
  // With ec_m = 0 (default) or redundancy = kReplicate the erasure paths
  // are dormant and the store is byte- and virtual-time-identical to the
  // replication-only implementation.
  RedundancyMode redundancy = RedundancyMode::kReplicate;
  uint32_t ec_k = 4;  // data fragments per stripe
  uint32_t ec_m = 0;  // parity fragments per stripe (0 = EC off)
  // Modelled CPU throughput of the RS encode/decode matrix arithmetic, in
  // GB/s: every encoded or reconstructed byte charges 1/bw ns to the
  // computing side's clock.
  double ec_encode_bw_gbps = 2.0;

  // --- multi-tenant QoS (store/qos.hpp) ---
  // Master switch: when on, every chunk-sized SSD/NIC charge passes
  // through a per-benefactor-lane token-bucket + weighted-priority
  // scheduler before it may book device time.  Contended tenants are
  // admission-delayed to their configured share; the delay leaves
  // virtual-time gaps on the devices that waiting tenants backfill, so
  // the scheduler is work-conserving (an uncontended tenant is admitted
  // immediately and pays nothing).  Off (default) admits everything
  // immediately — byte- and virtual-time-identical to the QoS-less
  // store.  Per-tenant latency histograms are recorded either way.
  bool qos = false;
  // Per-tenant {weight, bw_share, priority}; unlisted tenants default to
  // {1.0, 0.0, 1}.  When no entry names kTenantMaintenance, maintenance
  // traffic inherits repair_bw_fraction as its bw_share at priority 0 —
  // the old duty-cycle throttle expressed as a tenant.
  std::vector<QosTenant> qos_tenants;
  // Token-bucket burst ceiling: a tenant may accumulate at most this many
  // milliseconds of unused device time before further refill is capped.
  int64_t qos_burst_ms = 2;
  // Contention window: a lane counts a tenant as actively competing if it
  // touched the lane within this many milliseconds of virtual time.
  int64_t qos_window_ms = 8;

  // True when newly allocated files are erasure-coded.
  bool ec() const { return redundancy == RedundancyMode::kErasure && ec_m > 0; }
  uint32_t ec_fragments() const { return ec_k + ec_m; }
  uint64_t ec_frag_bytes() const { return chunk_bytes / ec_k; }
  int64_t ec_encode_ns(uint64_t bytes) const {
    // 1 GB/s == 1 byte/ns, so bytes / GBps is already ns.
    return static_cast<int64_t>(static_cast<double>(bytes) /
                                ec_encode_bw_gbps);
  }

  // True when any placement-engine signal beyond capacity is active.
  bool placement_aware() const {
    return placement_avoid_suspected || placement_wear_weight > 0.0;
  }

  // With both integrity knobs off no checksum is computed, stored, or
  // charged anywhere — byte- and virtual-time-identical to the pre-
  // integrity store.
  bool integrity() const { return verify_reads || scrub_verify; }
  int64_t checksum_ns(uint64_t bytes) const {
    // 1 GB/s == 1 byte/ns, so bytes / GBps is already ns.
    return static_cast<int64_t>(static_cast<double>(bytes) /
                                checksum_bw_gbps);
  }

  uint64_t pages_per_chunk() const { return chunk_bytes / page_bytes; }
};

struct FileInfo {
  FileId id = kInvalidFileId;
  std::string name;
  uint64_t size = 0;            // logical size (posix_fallocate extent)
  uint64_t num_chunks = 0;
};

}  // namespace nvm::store

// Client-side stub for the aggregate NVM store.
//
// One StoreClient lives on each compute node (inside the fuselite mount).
// Control-plane calls go to the manager (charging the metadata round-trip
// on the modelled network); data-plane transfers go directly to the owning
// benefactor — the paper's two-step "ask the manager, then fetch from the
// benefactor" protocol.  Failed benefactors are reported back to the
// manager and reads fall over to surviving replicas.
#pragma once

#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "common/bitmap.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"
#include "store/manager.hpp"

namespace nvm::store {

class QosScheduler;

class StoreClient {
 public:
  // `qos` (may be null) is the store-wide scheduler: the client stamps its
  // TenantId on every benefactor request and records per-tenant read/write
  // latencies against it.
  StoreClient(net::Cluster& cluster, Manager& manager, int local_node,
              QosScheduler* qos = nullptr);

  int local_node() const { return local_node_; }
  const StoreConfig& config() const { return manager_.config(); }

  // The tenant this client's traffic is accounted (and admission-
  // scheduled) as.  Defaults to kTenantForeground; one client serves one
  // tenant at a time (a mount is a tenant's view of the store).
  void SetTenant(TenantId tenant) { tenant_ = tenant; }
  TenantId tenant() const { return tenant_; }

  // All operations charge modelled time to the explicit `clock` — callers
  // that issue background transfers (read-ahead) pass a detached clock so
  // the foreground process does not pay for the prefetch.

  // --- control plane ---
  StatusOr<FileId> Create(sim::VirtualClock& clock, const std::string& name);
  StatusOr<FileId> Open(sim::VirtualClock& clock, const std::string& name);
  StatusOr<FileInfo> Stat(sim::VirtualClock& clock, FileId id);
  Status Fallocate(sim::VirtualClock& clock, FileId id, uint64_t size);
  Status Unlink(sim::VirtualClock& clock, FileId id);
  StatusOr<uint64_t> LinkFileChunks(sim::VirtualClock& clock, FileId dst,
                                    FileId src);

  // --- data plane ---

  // Fetch a full chunk into `out` (sized chunk_bytes).
  Status ReadChunk(sim::VirtualClock& clock, FileId id, uint32_t chunk_index,
                   std::span<uint8_t> out);

  // One element of a batched read.
  struct ChunkFetch {
    uint32_t index = 0;
    std::span<uint8_t> out;  // destination, sized chunk_bytes
    Status status;           // per-chunk outcome
    int64_t ready_at = 0;    // virtual completion time of the transfer
  };

  // Batched fetch of several chunks of one file.  The locations of the
  // whole index span are resolved with at most one metadata round-trip
  // (LookupReadMany).  With config().batch_rpc the resolved chunks are
  // grouped by primary benefactor and each group is fetched with ONE
  // streamed Benefactor::ReadChunkRun — one request header and one device
  // queueing slot per benefactor, chunks riding back-to-back on the wire
  // (net::StreamTransfer).  Each run uses its own detached clock branched
  // at the post-lookup time, so runs against distinct benefactors overlap.
  // A run that fails (benefactor death mid-stream) is discarded whole and
  // every chunk of it is re-read through the per-chunk replica-failover
  // path.  With batch_rpc off, every chunk goes through the per-chunk path
  // on its own detached clock (a run of one is arithmetically identical,
  // so traffic tables do not depend on the knob).  `clock` itself advances
  // only past the metadata lookup; callers consume the per-chunk
  // `ready_at` completion times.  Returns non-OK only if the batched
  // lookup fails outright; per-chunk failures (EOF, dead replicas) land in
  // fetches[i].status.
  Status ReadChunks(sim::VirtualClock& clock, FileId id,
                    std::span<ChunkFetch> fetches);

  // Resolve read locations for `count` consecutive chunks starting at
  // `first` with at most one metadata round-trip (none when all are
  // already location-cached).  The resolved range is clamped at EOF.
  Status LookupReadMany(sim::VirtualClock& clock, FileId id, uint32_t first,
                        uint32_t count);

  // Flush the dirty pages of a cached chunk image back to the store.
  // Performs the manager's copy-on-write protocol when the chunk is shared
  // with a checkpoint.  Replicas are written on clocks forked at the
  // post-prepare time and the caller joins at the max, so a replicated
  // write costs max(replica times), not their sum.  A write that reached
  // at least one replica is a (possibly degraded) success; only total
  // failure returns an error, and the location cache is updated only
  // after a replica holds the data.
  Status WriteChunkPages(sim::VirtualClock& clock, FileId id,
                         uint32_t chunk_index, const Bitmap& dirty_pages,
                         std::span<const uint8_t> chunk_image);

  // One element of a batched write-back.
  struct ChunkWrite {
    uint32_t index = 0;
    const Bitmap* dirty = nullptr;       // pages to flush (may be all-set)
    std::span<const uint8_t> image;      // full chunk image, sized chunk_bytes
    Status status;                       // per-chunk outcome
    int64_t ready_at = 0;                // virtual completion time
  };

  // Batched write-back of several dirty chunks of one file — the write-side
  // mirror of ReadChunks.  With config().batch_write_rpc the whole window
  // is COW-resolved in ONE metadata round-trip (Manager::PrepareWriteBatch),
  // grouped by benefactor (every replica holder gets the chunk) and flushed
  // with ONE streamed Benefactor::WriteChunkRun per benefactor — one
  // request header and one device queueing slot per run, dirty pages riding
  // back-to-back on the wire.  Runs use clocks forked at the post-prepare
  // time so runs against distinct benefactors — and replicas of the same
  // chunk — overlap; the caller joins at the max.  A run that fails
  // (benefactor death mid-stream) is discarded whole and every item is
  // retried per chunk against that benefactor; a chunk that reached ≥1
  // replica is a (degraded) success.  With the knob off every chunk goes
  // through WriteChunkPages serially (a run of one is arithmetically
  // identical, so traffic tables do not depend on the knob).  Returns
  // non-OK only if the batched prepare fails outright; per-chunk outcomes
  // land in writes[i].status.
  Status WriteChunks(sim::VirtualClock& clock, FileId id,
                     std::span<ChunkWrite> writes);

  // Data-plane traffic observed by this client (the "to SSD" column of the
  // paper's traffic tables).
  uint64_t bytes_fetched() const { return bytes_fetched_.value(); }
  uint64_t bytes_flushed() const { return bytes_flushed_.value(); }
  // Metadata round-trips this client issued to the manager (control-plane
  // cost; the batched read path exists to keep this flat).
  uint64_t meta_round_trips() const { return meta_rtts_.value(); }
  // Benefactor read-run RPCs issued (batch_rpc path only).
  uint64_t run_rpcs() const { return run_rpcs_.value(); }
  // Benefactor write-run RPCs issued (batch_write_rpc path only).
  uint64_t write_run_rpcs() const { return write_run_rpcs_.value(); }
  // Writes that succeeded on ≥1 but not all replicas (failed benefactors
  // were MarkDead'd; re-replication is the manager's repair job).
  uint64_t degraded_writes() const { return degraded_writes_.value(); }
  // Reads that hit a checksum-mismatch (CORRUPT) reply and fell over to
  // another replica; the bad copy was reported for quarantine + repair.
  uint64_t corrupt_failovers() const { return corrupt_failovers_.value(); }
  // Erasure-coded reads that could not be served from the k data fragments
  // alone and reconstructed the chunk from a k-subset including parity.
  uint64_t ec_degraded_reads() const { return ec_degraded_reads_.value(); }
  void ResetCounters();

 private:
  struct LocKey {
    FileId file;
    uint32_t index;
    bool operator==(const LocKey&) const = default;
  };
  struct LocKeyHash {
    size_t operator()(const LocKey& k) const {
      return static_cast<size_t>(HashPair64(k.file, k.index));
    }
  };

  // Charge the metadata round-trip to the manager node.
  void ChargeMetaRoundTrip(sim::VirtualClock& clock);
  // Un-instrumented bodies of the public data-plane calls.  The public
  // wrappers record per-tenant end-to-end latency; internal re-entries
  // (batch fallbacks, the EC read-modify-write) call these directly so a
  // single logical operation is recorded exactly once.
  Status ReadChunkInner(sim::VirtualClock& clock, FileId id,
                        uint32_t chunk_index, std::span<uint8_t> out);
  Status ReadChunksInner(sim::VirtualClock& clock, FileId id,
                         std::span<ChunkFetch> fetches);
  Status WriteChunkPagesInner(sim::VirtualClock& clock, FileId id,
                              uint32_t chunk_index, const Bitmap& dirty_pages,
                              std::span<const uint8_t> chunk_image);
  Status WriteChunksInner(sim::VirtualClock& clock, FileId id,
                          std::span<ChunkWrite> writes);
  // Chunk locations are immutable until a COW bumps the version, so the
  // client caches read locations after the first manager lookup (the
  // paper's FUSE client keeps the same mapping state).  A failed read
  // falls back to a fresh lookup.
  StatusOr<ReadLocation> LookupRead(sim::VirtualClock& clock, FileId id,
                                    uint32_t chunk_index, bool refresh);
  void InvalidateLocation(FileId id, uint32_t chunk_index);
  // One streamed ReadChunkRun against run.benefactor, filling the fetches
  // named by run.items.  All-or-nothing: on failure the caller must
  // re-read every item of the run per chunk (partially streamed chunks
  // are superseded) — no fetched-bytes traffic is committed for a failed
  // run.
  Status ReadRun(sim::VirtualClock& clock, const BenefactorRun& run,
                 std::span<const ReadLocation> locs,
                 std::span<ChunkFetch> fetches);
  // The legacy per-replica write wire sequence (clone instruction, dirty
  // pages + header, device program, response) against one benefactor on
  // the given clock.  Does not touch counters or the location cache.
  // `crc` is the flush-time CRC32C of the full chunk image (nullptr when
  // integrity is off); `stored_crc` (when non-null) returns the CRC the
  // replica actually stored — the merged-image value on a partial write —
  // which is what CompleteWrite must record as authoritative.
  Status WriteReplica(sim::VirtualClock& clock, const WriteLocation& loc,
                      int bid, const Bitmap& dirty_pages,
                      std::span<const uint8_t> chunk_image,
                      const uint32_t* crc, uint32_t* stored_crc = nullptr);
  // One streamed WriteChunkRun against run.benefactor covering the items
  // named by run.items (indices into locs/active).  All-or-nothing: on
  // failure the caller retries every item per chunk — nothing a failed
  // run streamed counts.  `crcs` (parallel to locs/active) carries the
  // flush-time checksums; empty when integrity is off.  `stored_crcs`
  // (parallel to locs/active; empty when integrity is off) receives, for
  // each item the run covers, the CRC this replica actually stored.
  Status WriteRun(sim::VirtualClock& clock, const BenefactorRun& run,
                  std::span<const WriteLocation> locs,
                  std::span<const ChunkWrite> writes,
                  std::span<const size_t> active,
                  std::span<const uint32_t> crcs,
                  std::span<uint32_t> stored_crcs);
  // One read attempt against a resolved erasure stripe: the k data
  // fragments are fetched in parallel (clocks forked at the issue time,
  // caller joins at the max); any failure or hole falls over to parity
  // fragments and reconstructs — a degraded read.  Fails only when fewer
  // than k fragments of the stripe are readable.
  Status ReadStripe(sim::VirtualClock& clock, FileId id, uint32_t chunk_index,
                    const ReadLocation& loc, std::span<uint8_t> out);
  // The erasure-coded write path: always full-stripe.  A partial-dirty
  // flush first reads the chunk's current bytes (degraded-capable) and
  // overlays the dirty pages — the classic EC read-modify-write penalty —
  // then encodes k+m fragments and writes each on a forked clock.  A
  // stripe that reached at least k fragments is a (possibly degraded)
  // success; below k the write failed and the completion records no
  // checksum (recovery rolls the uncommitted stripe back).
  Status WriteStripe(sim::VirtualClock& clock, FileId id, uint32_t chunk_index,
                     const Bitmap& dirty_pages,
                     std::span<const uint8_t> chunk_image);

  net::Cluster& cluster_;
  Manager& manager_;
  const int local_node_;
  QosScheduler* qos_ = nullptr;
  TenantId tenant_ = kTenantForeground;
  Counter bytes_fetched_;
  Counter bytes_flushed_;
  Counter meta_rtts_;
  Counter run_rpcs_;
  Counter write_run_rpcs_;
  Counter degraded_writes_;
  Counter corrupt_failovers_;
  Counter ec_degraded_reads_;
  std::mutex loc_mutex_;
  std::unordered_map<LocKey, ReadLocation, LocKeyHash> loc_cache_;
};

}  // namespace nvm::store

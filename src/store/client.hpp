// Client-side stub for the aggregate NVM store.
//
// One StoreClient lives on each compute node (inside the fuselite mount).
// Control-plane calls go to the manager (charging the metadata round-trip
// on the modelled network); data-plane transfers go directly to the owning
// benefactor — the paper's two-step "ask the manager, then fetch from the
// benefactor" protocol.  Failed benefactors are reported back to the
// manager and reads fall over to surviving replicas.
#pragma once

#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "store/manager.hpp"

namespace nvm::store {

class StoreClient {
 public:
  StoreClient(net::Cluster& cluster, Manager& manager, int local_node);

  int local_node() const { return local_node_; }
  const StoreConfig& config() const { return manager_.config(); }

  // All operations charge modelled time to the explicit `clock` — callers
  // that issue background transfers (read-ahead) pass a detached clock so
  // the foreground process does not pay for the prefetch.

  // --- control plane ---
  StatusOr<FileId> Create(sim::VirtualClock& clock, const std::string& name);
  StatusOr<FileId> Open(sim::VirtualClock& clock, const std::string& name);
  StatusOr<FileInfo> Stat(sim::VirtualClock& clock, FileId id);
  Status Fallocate(sim::VirtualClock& clock, FileId id, uint64_t size);
  Status Unlink(sim::VirtualClock& clock, FileId id);
  StatusOr<uint64_t> LinkFileChunks(sim::VirtualClock& clock, FileId dst,
                                    FileId src);

  // --- data plane ---

  // Fetch a full chunk into `out` (sized chunk_bytes).
  Status ReadChunk(sim::VirtualClock& clock, FileId id, uint32_t chunk_index,
                   std::span<uint8_t> out);

  // Flush the dirty pages of a cached chunk image back to the store.
  // Performs the manager's copy-on-write protocol when the chunk is shared
  // with a checkpoint.
  Status WriteChunkPages(sim::VirtualClock& clock, FileId id,
                         uint32_t chunk_index, const Bitmap& dirty_pages,
                         std::span<const uint8_t> chunk_image);

  // Data-plane traffic observed by this client (the "to SSD" column of the
  // paper's traffic tables).
  uint64_t bytes_fetched() const { return bytes_fetched_.value(); }
  uint64_t bytes_flushed() const { return bytes_flushed_.value(); }
  void ResetCounters();

 private:
  struct LocKey {
    FileId file;
    uint32_t index;
    bool operator==(const LocKey&) const = default;
  };
  struct LocKeyHash {
    size_t operator()(const LocKey& k) const {
      return std::hash<uint64_t>()(k.file * 0x9e3779b97f4a7c15ULL ^ k.index);
    }
  };

  // Charge the metadata round-trip to the manager node.
  void ChargeMetaRoundTrip(sim::VirtualClock& clock);
  // Chunk locations are immutable until a COW bumps the version, so the
  // client caches read locations after the first manager lookup (the
  // paper's FUSE client keeps the same mapping state).  A failed read
  // falls back to a fresh lookup.
  StatusOr<ReadLocation> LookupRead(sim::VirtualClock& clock, FileId id,
                                    uint32_t chunk_index, bool refresh);
  void InvalidateLocation(FileId id, uint32_t chunk_index);

  net::Cluster& cluster_;
  Manager& manager_;
  const int local_node_;
  Counter bytes_fetched_;
  Counter bytes_flushed_;
  std::mutex loc_mutex_;
  std::unordered_map<LocKey, ReadLocation, LocKeyHash> loc_cache_;
};

}  // namespace nvm::store

// Shared placement engine of the aggregate store.
//
// Every placement decision the manager makes — Fallocate striping,
// PrepareWrite/PrepareWriteBatch copy-on-write targets, and PlanRepairs
// re-replication targets — flows through this one engine, so the
// eligibility filter and the reliability/endurance ranking are identical
// everywhere (the paper's benefactor model assumes placement can steer
// around unreliable and worn-out contributors).
//
// The engine is pure: the caller snapshots per-benefactor state into
// PlacementCandidate records under whatever lock covers its decision
// (Fallocate and PlanRepairs hold the chunk's shard mutex), and the
// engine only filters and orders.  Reservation (Benefactor::ReserveChunks)
// stays with the caller and remains the authoritative capacity check —
// the ranking never pre-empts a try-reserve, so racing placements behave
// exactly as before the engine existed.
//
// Ranking is a stable sort by (suspect penalty, wear band) over a base
// order the caller picks:
//   kRotation     registry order starting at `start` — striping
//   kLeastLoaded  (bytes_free desc, id asc) — repair re-replication
// With every knob at its default the score keys are all equal and the
// stable sort returns the base order unchanged — the knob-off engine is
// byte-identical to the historic capacity-only placement.
#pragma once

#include <cstdint>
#include <vector>

#include "store/types.hpp"

namespace nvm::store {

// One benefactor's placement-relevant state, snapshotted by the caller.
// `bid` is the registry index; fields default to the least eligible
// state so an unfilled record never wins a slot.
struct PlacementCandidate {
  int bid = -1;
  bool alive = false;
  // Heartbeat detector state: >= 1 consecutive missed heartbeat and not
  // yet recovered (suspected-but-not-declared-dead window).  False when
  // the caller has no suspicion snapshot (knob off, no maintenance).
  bool suspected = false;
  // Correlated-loss exclusion for the specific chunk being placed: this
  // benefactor already holds a replica, served a corrupt copy of it, or
  // produced a divergent copy during recovery.
  bool excluded = false;
  uint64_t bytes_free = 0;
  // SsdDevice::wear_fraction() in [0, 1]; 0 when the caller does not
  // read wear (wear_weight == 0).
  double wear = 0.0;
  // Cluster node hosting the benefactor (locality-aware striping).
  int node = -1;
};

// What the caller wants ranked.
struct PlacementRequest {
  enum class Order : uint8_t {
    kRotation,     // registry order from `start` (striping)
    kLeastLoaded,  // bytes_free desc, id asc (repair targets)
  };
  Order order = Order::kRotation;
  size_t start = 0;  // rotation origin (registry index); kRotation only
  // Soft avoidance: suspected candidates rank after unsuspected ones but
  // stay eligible (striping/COW must not fail just because a node flaps).
  bool avoid_suspected = false;
  // Hard exclusion: suspected candidates are dropped entirely (repair
  // targets — re-protection must not land on a flapping node).
  bool exclude_suspected = false;
  // Wear bias: candidates rank by floor(wear * weight * 16) ascending
  // before the base order.  0 disables (no wear is even read).
  double wear_weight = 0.0;
  // Per-call failure-domain anti-affinity: candidates whose `node`
  // appears in this set are ineligible for THIS request.  Erasure-coded
  // stripes use it to demand k+m distinct failure domains (no two
  // fragments of one stripe behind the same node), and fragment repair
  // uses it to keep replacement fragments off the survivors' nodes.
  // Candidates with an unknown node (node < 0) are never excluded this
  // way.  nullptr (the default) disables the filter — knob-off ranking
  // is unchanged.
  const std::vector<int>* exclude_nodes = nullptr;
};

// Ranked benefactor ids: every candidate that is alive, not
// chunk-excluded and (under hard exclusion) not suspected, ordered by
// (suspect penalty, wear band, base order).  The caller walks the list
// attempting ReserveChunks until it has placed enough replicas.
std::vector<int> RankPlacement(const std::vector<PlacementCandidate>& cands,
                               const PlacementRequest& req);

// First-choice registry index for the next stripe of a file, per the
// stripe policy, over the unified eligibility filter
// (alive && bytes_free >= chunk_bytes) — every policy applies the SAME
// filter, fixing the historic kCapacityBalanced hole that picked an
// argmax-free benefactor too full to hold even one chunk.  Falls back to
// `cursor` when no candidate is eligible; the caller's reserve scan then
// finds nothing and fails cleanly.
size_t ChooseStripeStart(const std::vector<PlacementCandidate>& cands,
                         StripePolicy policy, size_t cursor, int client_node,
                         uint64_t chunk_bytes);

}  // namespace nvm::store

#include "workloads/psort.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <queue>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "minimpi/comm.hpp"

namespace nvm::workloads {
namespace {

using Elem = uint64_t;
constexpr uint64_t kElemBytes = sizeof(Elem);
constexpr uint64_t kIoBufElems = 8192;     // 64 KiB streaming buffers
constexpr uint64_t kSortWindowElems = 32768;  // 256 KiB out-of-core windows

double Log2(uint64_t n) { return n > 1 ? std::log2(static_cast<double>(n)) : 1.0; }

// A process's local list: the first `dram_elems` entries in a host vector,
// the remainder in an NVMalloc region — the paper's hybrid placement.
struct LocalList {
  std::vector<Elem> dram;
  NvmRegion* region = nullptr;  // may be null (pure-DRAM mode)
  uint64_t region_elems = 0;
  uint64_t dram_reserved_bytes = 0;  // portion charged to the node budget

  uint64_t size() const { return dram.size() + region_elems; }

  Elem Get(uint64_t i) const {
    if (i < dram.size()) return dram[i];
    Elem v;
    NVM_CHECK(region
                  ->Read((i - dram.size()) * kElemBytes,
                         {reinterpret_cast<uint8_t*>(&v), kElemBytes})
                  .ok());
    return v;
  }
};

// Sequential buffered reader over a LocalList range [begin, end).
class ListReader {
 public:
  ListReader(const LocalList& list, uint64_t begin, uint64_t end)
      : list_(list), pos_(begin), end_(end) {}

  bool Done() const { return pos_ >= end_; }
  uint64_t remaining() const { return end_ - pos_; }

  Elem Next() {
    if (buf_pos_ >= buf_.size()) Refill();
    ++pos_;
    return buf_[buf_pos_++];
  }

 private:
  void Refill() {
    const uint64_t n = std::min<uint64_t>(kIoBufElems, end_ - pos_);
    buf_.resize(n);
    buf_pos_ = 0;
    uint64_t i = pos_;
    uint64_t filled = 0;
    // DRAM prefix.
    if (i < list_.dram.size()) {
      const uint64_t take = std::min<uint64_t>(n, list_.dram.size() - i);
      std::memcpy(buf_.data(), list_.dram.data() + i, take * kElemBytes);
      filled = take;
      i += take;
    }
    if (filled < n) {
      const uint64_t off = (i - list_.dram.size()) * kElemBytes;
      NVM_CHECK(list_.region != nullptr);
      NVM_CHECK(list_.region
                    ->Read(off, {reinterpret_cast<uint8_t*>(
                                     buf_.data() + filled),
                                 (n - filled) * kElemBytes})
                    .ok());
    }
  }

  const LocalList& list_;
  uint64_t pos_;
  uint64_t end_;
  std::vector<Elem> buf_;
  size_t buf_pos_ = 0;
};

// Sequential buffered writer into a LocalList.
class ListWriter {
 public:
  explicit ListWriter(LocalList& list) : list_(list) {}
  ~ListWriter() { Flush(); }

  void Push(Elem v) {
    buf_.push_back(v);
    if (buf_.size() == kIoBufElems) Flush();
  }

  void Flush() {
    if (buf_.empty()) return;
    uint64_t i = pos_;
    uint64_t taken = 0;
    if (i < list_.dram.size()) {
      const uint64_t take =
          std::min<uint64_t>(buf_.size(), list_.dram.size() - i);
      std::memcpy(list_.dram.data() + i, buf_.data(), take * kElemBytes);
      taken = take;
      i += take;
    }
    if (taken < buf_.size()) {
      NVM_CHECK(list_.region != nullptr);
      const uint64_t off = (i - list_.dram.size()) * kElemBytes;
      NVM_CHECK(list_.region
                    ->Write(off, {reinterpret_cast<const uint8_t*>(
                                      buf_.data() + taken),
                                  (buf_.size() - taken) * kElemBytes})
                    .ok());
    }
    pos_ += buf_.size();
    buf_.clear();
  }

 private:
  LocalList& list_;
  uint64_t pos_ = 0;
  std::vector<Elem> buf_;
};

struct SortContext {
  Testbed* testbed;
  const PsortOptions* options;
  minimpi::Comm* comm;
};

// Local out-of-core sort of `list` in place (logically): sorts the DRAM
// part with std::sort, the NVM part window-by-window, then multiway-merges
// everything into `out`.  Charges n·log n compute (scaled).
void LocalSort(SortContext& ctx, net::ProcessEnv& env, LocalList& list,
               LocalList& out) {
  auto& clock = *env.clock;
  const auto& cpu = env.cluster->cpu();
  const double scale = ctx.options->compute_scale;

  std::sort(list.dram.begin(), list.dram.end());
  cpu.ChargeOps(clock, static_cast<uint64_t>(
                           static_cast<double>(list.dram.size()) *
                           Log2(list.dram.size()) * scale));

  // Sort NVM windows in place.
  std::vector<Elem> window;
  uint64_t num_runs = list.dram.empty() ? 0 : 1;
  for (uint64_t w = 0; w < list.region_elems; w += kSortWindowElems) {
    const uint64_t n = std::min(kSortWindowElems, list.region_elems - w);
    window.resize(n);
    NVM_CHECK(list.region
                  ->Read(w * kElemBytes,
                         {reinterpret_cast<uint8_t*>(window.data()),
                          n * kElemBytes})
                  .ok());
    std::sort(window.begin(), window.end());
    cpu.ChargeOps(clock,
                  static_cast<uint64_t>(static_cast<double>(n) * Log2(n) *
                                        scale));
    NVM_CHECK(list.region
                  ->Write(w * kElemBytes,
                          {reinterpret_cast<const uint8_t*>(window.data()),
                           n * kElemBytes})
                  .ok());
    ++num_runs;
  }

  // Multiway merge of the DRAM run plus every window run (all sequential
  // streams — the access pattern NVMalloc's chunk cache likes).
  std::vector<std::unique_ptr<ListReader>> runs;
  if (!list.dram.empty()) {
    runs.push_back(std::make_unique<ListReader>(list, 0, list.dram.size()));
  }
  for (uint64_t w = 0; w < list.region_elems; w += kSortWindowElems) {
    const uint64_t n = std::min(kSortWindowElems, list.region_elems - w);
    runs.push_back(std::make_unique<ListReader>(
        list, list.dram.size() + w, list.dram.size() + w + n));
  }
  using HeapEntry = std::pair<Elem, size_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r]->Done()) heap.emplace(runs[r]->Next(), r);
  }
  ListWriter writer(out);
  while (!heap.empty()) {
    auto [v, r] = heap.top();
    heap.pop();
    writer.Push(v);
    if (!runs[r]->Done()) heap.emplace(runs[r]->Next(), r);
  }
  writer.Flush();
  cpu.ChargeOps(clock, static_cast<uint64_t>(
                           static_cast<double>(list.size()) *
                           Log2(std::max<uint64_t>(2, runs.size())) * scale));
}

// One distributed sample-sort pass over `local` (already loaded, unsorted).
// On return, `local` holds this rank's globally ordered range.  Allocations
// for the merged output reuse the same DRAM/NVM split; superseded storage
// is released promptly so the node's DRAM budget is honoured.
void SampleSortPass(SortContext& ctx, net::ProcessEnv& env,
                    minimpi::RankHandle& mpi, LocalList& local,
                    const std::function<LocalList(uint64_t)>& alloc,
                    const std::function<void(LocalList&)>& release) {
  auto& clock = *env.clock;
  const auto& cpu = env.cluster->cpu();
  const int P = mpi.size();
  const double scale = ctx.options->compute_scale;

  // Phase 1: local out-of-core sort.
  LocalList sorted = alloc(local.size());
  LocalSort(ctx, env, local, sorted);
  std::swap(local, sorted);
  release(sorted);  // the pre-sort storage

  // Phase 2: splitter selection from P local samples per rank.
  std::vector<Elem> samples(static_cast<size_t>(P));
  for (int s = 0; s < P; ++s) {
    const uint64_t idx =
        local.size() > 0
            ? (static_cast<uint64_t>(s) * local.size()) / static_cast<uint64_t>(P)
            : 0;
    samples[static_cast<size_t>(s)] =
        local.size() > 0 ? local.Get(idx) : 0;
  }
  std::vector<Elem> all_samples(static_cast<size_t>(P) * samples.size());
  mpi.Allgather({reinterpret_cast<const uint8_t*>(samples.data()),
                 samples.size() * kElemBytes},
                {reinterpret_cast<uint8_t*>(all_samples.data()),
                 all_samples.size() * kElemBytes});
  std::sort(all_samples.begin(), all_samples.end());
  std::vector<Elem> splitters(static_cast<size_t>(P - 1));
  for (int s = 1; s < P; ++s) {
    splitters[static_cast<size_t>(s - 1)] =
        all_samples[static_cast<size_t>(s) * samples.size()];
  }

  // Phase 3: bucket boundaries via one sequential scan.
  std::vector<uint64_t> bounds(static_cast<size_t>(P + 1), local.size());
  bounds[0] = 0;
  {
    ListReader scan(local, 0, local.size());
    size_t bucket = 0;
    for (uint64_t i = 0; i < local.size(); ++i) {
      const Elem v = scan.Next();
      while (bucket < splitters.size() && v >= splitters[bucket]) {
        bounds[++bucket] = i;
      }
    }
    while (bucket < splitters.size()) bounds[++bucket] = local.size();
    cpu.ChargeOps(clock, local.size());
  }

  // Phase 4: all-to-all exchange of contiguous ranges.
  constexpr int kSizeTag = 0x51;
  constexpr int kDataTag = 0x52;
  for (int dst = 0; dst < P; ++dst) {
    if (dst == mpi.rank()) continue;
    const uint64_t b = bounds[static_cast<size_t>(dst)];
    const uint64_t e = bounds[static_cast<size_t>(dst) + 1];
    mpi.SendVal<uint64_t>(dst, e - b, kSizeTag);
    if (e > b) {
      std::vector<Elem> buf;
      buf.reserve(e - b);
      ListReader r(local, b, e);
      while (!r.Done()) buf.push_back(r.Next());
      mpi.Send(dst,
               {reinterpret_cast<const uint8_t*>(buf.data()),
                buf.size() * kElemBytes},
               kDataTag);
    }
  }
  std::vector<std::vector<Elem>> received(static_cast<size_t>(P));
  {
    // Own bucket.
    const uint64_t b = bounds[static_cast<size_t>(mpi.rank())];
    const uint64_t e = bounds[static_cast<size_t>(mpi.rank()) + 1];
    auto& own = received[static_cast<size_t>(mpi.rank())];
    own.reserve(e - b);
    ListReader r(local, b, e);
    while (!r.Done()) own.push_back(r.Next());
  }
  uint64_t total = received[static_cast<size_t>(mpi.rank())].size();
  for (int src = 0; src < P; ++src) {
    if (src == mpi.rank()) continue;
    const auto count = mpi.RecvVal<uint64_t>(src, kSizeTag);
    auto& buf = received[static_cast<size_t>(src)];
    buf.resize(count);
    if (count > 0) {
      mpi.Recv(src,
               {reinterpret_cast<uint8_t*>(buf.data()), count * kElemBytes},
               kDataTag);
    }
    total += count;
  }

  // Phase 5: multiway merge of the P sorted runs into the final storage.
  LocalList merged = alloc(total);
  {
    using HeapEntry = std::pair<Elem, size_t>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap;
    std::vector<size_t> cursor(static_cast<size_t>(P), 0);
    for (size_t r = 0; r < received.size(); ++r) {
      if (!received[r].empty()) heap.emplace(received[r][0], r);
    }
    ListWriter writer(merged);
    while (!heap.empty()) {
      auto [v, r] = heap.top();
      heap.pop();
      writer.Push(v);
      if (++cursor[r] < received[r].size()) {
        heap.emplace(received[r][cursor[r]], r);
      }
    }
    writer.Flush();
    cpu.ChargeOps(clock,
                  static_cast<uint64_t>(static_cast<double>(total) *
                                        Log2(static_cast<uint64_t>(P)) *
                                        scale));
  }
  std::swap(local, merged);
  release(merged);  // the pre-exchange storage
}

}  // namespace

TestbedOptions PsortTestbedOptions(size_t benefactors, bool remote) {
  TestbedOptions o;
  o.dram_per_node = SortScaledBytes(8_GiB);  // 8 MiB per node
  o.page_pool_bytes = 2_MiB;
  o.benefactors = std::max<size_t>(1, benefactors);
  o.remote_benefactors = remote;
  return o;
}

PsortResult RunPsort(Testbed& testbed, const PsortOptions& options) {
  PsortResult result;
  const uint64_t total_elems = options.list_bytes / kElemBytes;
  const size_t nprocs = options.procs_per_node * options.nodes;
  result.elements = total_elems;
  result.passes =
      options.mode == PsortOptions::Mode::kDramTwoPass ? 2 : 1;

  // Seed the PFS input file (uncharged: the data pre-exists).
  uint64_t input_checksum = 0;
  {
    auto& file = testbed.PfsHostFile("sort_input");
    file.resize(options.list_bytes);
    auto* elems = reinterpret_cast<Elem*>(file.data());
    Xoshiro256 rng(options.seed);
    for (uint64_t i = 0; i < total_elems; ++i) {
      elems[i] = rng.Next();
      input_checksum += elems[i];
    }
  }

  const std::vector<int> placement =
      testbed.Placement(options.procs_per_node, options.nodes);
  minimpi::Comm comm(testbed.cluster(), placement);
  SortContext ctx{&testbed, &options, &comm};

  std::atomic<bool> verified{true};
  std::atomic<uint64_t> out_checksum{0};
  std::atomic<uint64_t> out_count{0};

  const int64_t makespan = testbed.cluster().RunProcesses(
      placement, [&](net::ProcessEnv& env) {
    auto mpi = comm.rank_handle(env.rank);
    auto& clock = *env.clock;
    auto& runtime = testbed.runtime(env.node_id);
    const int P = static_cast<int>(nprocs);

    // Storage allocator for this rank: DRAM-first split per the mode.
    // release() must be called on storage that leaves scope so the DRAM
    // budget and NVM space are returned promptly.
    uint64_t dram_reserved = 0;
    auto alloc = [&](uint64_t elems) -> LocalList {
      LocalList list;
      uint64_t dram_elems = elems;
      if (options.mode == PsortOptions::Mode::kHybridNvm) {
        dram_elems = static_cast<uint64_t>(
            static_cast<double>(elems) * options.dram_fraction);
      }
      // Out-of-core spill: when the node's DRAM budget is exhausted (e.g.
      // while the pre-sort and post-sort copies briefly coexist), a
      // hybrid allocation falls back to the NVM store entirely — exactly
      // what an out-of-core sort does with its scratch space.  The
      // DRAM-only mode has nowhere to spill: its transient double-buffer
      // is tolerated unreserved, like the paper's (in-place) quicksort
      // working memory — the budget still forces its two-pass structure.
      uint64_t reserved_now = 0;
      if (env.node().ReserveDram(dram_elems * kElemBytes).ok()) {
        reserved_now = dram_elems * kElemBytes;
      } else if (options.mode == PsortOptions::Mode::kHybridNvm) {
        dram_elems = 0;
      }
      const uint64_t region_elems = elems - dram_elems;
      dram_reserved += reserved_now;
      list.dram_reserved_bytes = reserved_now;
      list.dram.resize(dram_elems);
      list.region_elems = region_elems;
      if (region_elems > 0) {
        auto r = runtime.SsdMalloc(region_elems * kElemBytes);
        NVM_CHECK(r.ok(), "%s", r.status().ToString().c_str());
        list.region = *r;
      }
      return list;
    };
    std::function<void(LocalList&)> release = [&](LocalList& list) {
      const uint64_t bytes = list.dram_reserved_bytes;
      if (bytes > 0) {
        env.node().ReleaseDram(bytes);
        NVM_CHECK(dram_reserved >= bytes);
        dram_reserved -= bytes;
        list.dram_reserved_bytes = 0;
      }
      if (list.region != nullptr) {
        NVM_CHECK(runtime.SsdFree(list.region).ok());
        list.region = nullptr;
      }
      list.dram.clear();
      list.dram.shrink_to_fit();
      list.region_elems = 0;
    };

    auto load_from_pfs = [&](const std::string& name, uint64_t begin,
                             uint64_t count) -> LocalList {
      LocalList list = alloc(count);
      std::vector<Elem> buf;
      uint64_t done = 0;
      ListWriter writer(list);
      while (done < count) {
        const uint64_t n = std::min<uint64_t>(kIoBufElems, count - done);
        buf.resize(n);
        NVM_CHECK(testbed
                      .PfsReadFile(clock, name, (begin + done) * kElemBytes,
                                   {reinterpret_cast<uint8_t*>(buf.data()),
                                    n * kElemBytes})
                      .ok());
        for (Elem v : buf) writer.Push(v);
        done += n;
      }
      writer.Flush();
      return list;
    };

    auto verify_and_account = [&](LocalList& local) {
      // Local sortedness + cross-rank boundary order + global checksum.
      ListReader r(local, 0, local.size());
      Elem prev = 0;
      Elem first = 0;
      Elem last = 0;
      uint64_t sum = 0;
      bool sorted = true;
      for (uint64_t i = 0; i < local.size(); ++i) {
        const Elem v = r.Next();
        if (i == 0) {
          first = v;
        } else if (v < prev) {
          sorted = false;
        }
        sum += v;
        prev = v;
        last = v;
      }
      if (!sorted) verified.store(false);
      constexpr int kEdgeTag = 0x3e;
      if (mpi.rank() + 1 < P) mpi.SendVal<Elem>(mpi.rank() + 1, last, kEdgeTag);
      if (mpi.rank() > 0) {
        const Elem prev_max = mpi.RecvVal<Elem>(mpi.rank() - 1, kEdgeTag);
        if (local.size() > 0 && prev_max > first) verified.store(false);
      }
      out_checksum.fetch_add(sum);
      out_count.fetch_add(local.size());
    };

    if (options.mode == PsortOptions::Mode::kHybridNvm) {
      auto [e0, e1] = minimpi::Comm::BlockRange(total_elems, P, env.rank);
      LocalList local = load_from_pfs("sort_input", e0, e1 - e0);
      SampleSortPass(ctx, env, mpi, local, alloc, release);
      env.Barrier();
      verify_and_account(local);
      release(local);
    } else {
      // Two-pass external sort: each half sorted independently through the
      // PFS, then a final global merge by the master.
      for (int half = 0; half < 2; ++half) {
        const uint64_t h0 = half == 0 ? 0 : total_elems / 2;
        const uint64_t h1 = half == 0 ? total_elems / 2 : total_elems;
        auto [e0, e1] =
            minimpi::Comm::BlockRange(h1 - h0, P, env.rank);
        LocalList local = load_from_pfs("sort_input", h0 + e0, e1 - e0);
        SampleSortPass(ctx, env, mpi, local, alloc, release);

        // Compute my write offset within the sorted half (prefix sum of
        // per-rank counts) and stream it out to the PFS.
        std::vector<uint64_t> counts(static_cast<size_t>(P));
        const uint64_t mine = local.size();
        mpi.Allgather({reinterpret_cast<const uint8_t*>(&mine), 8},
                      {reinterpret_cast<uint8_t*>(counts.data()),
                       counts.size() * 8});
        uint64_t offset = 0;
        for (int r = 0; r < mpi.rank(); ++r) {
          offset += counts[static_cast<size_t>(r)];
        }
        const std::string half_name = "sort_half" + std::to_string(half);
        ListReader reader(local, 0, local.size());
        std::vector<Elem> buf;
        uint64_t done = 0;
        while (done < local.size()) {
          const uint64_t n =
              std::min<uint64_t>(kIoBufElems, local.size() - done);
          buf.resize(n);
          for (uint64_t i = 0; i < n; ++i) buf[i] = reader.Next();
          NVM_CHECK(testbed
                        .PfsWriteFile(clock, half_name,
                                      (offset + done) * kElemBytes,
                                      {reinterpret_cast<const uint8_t*>(
                                           buf.data()),
                                       n * kElemBytes})
                        .ok());
          done += n;
        }
        // Release this pass's storage before the next one.
        release(local);
        env.Barrier();
      }

      // Final merge of the two sorted halves (master-streamed, the
      // "significant data exchange between passes" of the paper).
      if (env.rank == 0) {
        const uint64_t n0 = total_elems / 2;
        const uint64_t n1 = total_elems - n0;
        std::vector<Elem> buf_a(kIoBufElems);
        std::vector<Elem> buf_b(kIoBufElems);
        std::vector<Elem> out;
        out.reserve(kIoBufElems);
        uint64_t ia = 0, ib = 0, la = 0, lb = 0, fa = 0, fb = 0, wo = 0;
        auto refill = [&](const char* name, std::vector<Elem>& buf,
                          uint64_t& idx, uint64_t& len, uint64_t& fetched,
                          uint64_t total) {
          if (idx < len || fetched >= total) return;
          const uint64_t n = std::min<uint64_t>(kIoBufElems, total - fetched);
          NVM_CHECK(testbed
                        .PfsReadFile(clock, name, fetched * kElemBytes,
                                     {reinterpret_cast<uint8_t*>(buf.data()),
                                      n * kElemBytes})
                        .ok());
          fetched += n;
          len = n;
          idx = 0;
        };
        auto flush_out = [&] {
          if (out.empty()) return;
          NVM_CHECK(testbed
                        .PfsWriteFile(clock, "sort_output", wo * kElemBytes,
                                      {reinterpret_cast<const uint8_t*>(
                                           out.data()),
                                       out.size() * kElemBytes})
                        .ok());
          wo += out.size();
          out.clear();
        };
        while (fa < n0 || fb < n1 || ia < la || ib < lb) {
          refill("sort_half0", buf_a, ia, la, fa, n0);
          refill("sort_half1", buf_b, ib, lb, fb, n1);
          const bool a_live = ia < la;
          const bool b_live = ib < lb;
          if (!a_live && !b_live) break;
          Elem v;
          if (a_live && (!b_live || buf_a[ia] <= buf_b[ib])) {
            v = buf_a[ia++];
          } else {
            v = buf_b[ib++];
          }
          out.push_back(v);
          if (out.size() == kIoBufElems) flush_out();
        }
        flush_out();
        env.cluster->cpu().ChargeOps(
            clock, static_cast<uint64_t>(static_cast<double>(total_elems) *
                                         options.compute_scale));
      }
      env.Barrier();
    }

    NVM_CHECK(dram_reserved == 0, "leaked sort DRAM reservation");
  });

  result.seconds = static_cast<double>(makespan) / 1e9;

  if (options.mode == PsortOptions::Mode::kHybridNvm) {
    result.verified = verified.load() && out_count.load() == total_elems &&
                      out_checksum.load() == input_checksum;
  } else {
    // Check the final PFS output host-side.
    auto& out = testbed.PfsHostFile("sort_output");
    const auto* elems = reinterpret_cast<const Elem*>(out.data());
    const uint64_t n = out.size() / kElemBytes;
    bool ok = n == total_elems;
    uint64_t sum = 0;
    for (uint64_t i = 0; ok && i < n; ++i) {
      if (i > 0 && elems[i] < elems[i - 1]) ok = false;
      sum += elems[i];
    }
    result.verified = ok && sum == input_checksum;
  }
  return result;
}

}  // namespace nvm::workloads

#include "workloads/testbed.hpp"

#include <cstring>

#include "common/log.hpp"
#include "sim/device.hpp"

namespace nvm::workloads {

Testbed::Testbed(TestbedOptions options) : options_(options) {
  net::ClusterConfig cc;
  // Compute nodes plus an equal pool of spare nodes for remote benefactors.
  cc.num_nodes = options_.compute_nodes * 2;
  cc.cores_per_node = options_.cores_per_node;
  cc.dram_bytes_per_node = options_.dram_per_node;
  cc.ssd_profile = options_.ssd_profile;
  cc.all_nodes_have_ssd = true;
  cluster_ = std::make_unique<net::Cluster>(cc);

  store::AggregateStoreConfig sc;
  sc.store = options_.store;
  sc.contribution_bytes = options_.contribution_bytes;
  const int base =
      options_.remote_benefactors ? static_cast<int>(options_.compute_nodes)
                                  : 0;
  for (size_t i = 0; i < options_.benefactors; ++i) {
    sc.benefactor_nodes.push_back(base + static_cast<int>(i));
  }
  // The manager runs alongside the first benefactor (a "fat node" role).
  sc.manager_node = sc.benefactor_nodes.front();
  store_ = std::make_unique<store::AggregateStore>(*cluster_, sc);

  NvmallocConfig nc;
  nc.fuse = options_.fuse;
  nc.page_pool_bytes = options_.page_pool_bytes;
  nc.page_fault_ns = options_.page_fault_ns;
  runtimes_.reserve(cc.num_nodes);
  for (size_t n = 0; n < cc.num_nodes; ++n) {
    runtimes_.push_back(std::make_unique<NvmallocRuntime>(
        *store_, static_cast<int>(n), nc));
  }
}

void Testbed::PfsRead(sim::VirtualClock& clock, uint64_t bytes) {
  pfs_bytes_.Add(bytes);
  pfs_.Acquire(clock, sim::TransferNs(bytes, options_.pfs.bw_mbps,
                                      options_.pfs.latency_ns));
}

void Testbed::PfsWrite(sim::VirtualClock& clock, uint64_t bytes) {
  pfs_bytes_.Add(bytes);
  pfs_.Acquire(clock, sim::TransferNs(bytes, options_.pfs.bw_mbps,
                                      options_.pfs.latency_ns));
}

Status Testbed::PfsWriteFile(sim::VirtualClock& clock,
                             const std::string& name, uint64_t offset,
                             std::span<const uint8_t> data) {
  PfsWrite(clock, data.size());
  std::lock_guard<std::mutex> lock(pfs_mutex_);
  auto& file = pfs_files_[name];
  if (file.size() < offset + data.size()) file.resize(offset + data.size());
  std::memcpy(file.data() + offset, data.data(), data.size());
  return OkStatus();
}

Status Testbed::PfsReadFile(sim::VirtualClock& clock,
                            const std::string& name, uint64_t offset,
                            std::span<uint8_t> out) {
  PfsRead(clock, out.size());
  std::lock_guard<std::mutex> lock(pfs_mutex_);
  auto it = pfs_files_.find(name);
  if (it == pfs_files_.end()) return NotFound("PFS file '" + name + "'");
  if (offset + out.size() > it->second.size()) {
    return OutOfRange("PFS read past EOF of '" + name + "'");
  }
  std::memcpy(out.data(), it->second.data() + offset, out.size());
  return OkStatus();
}

std::vector<uint8_t>& Testbed::PfsHostFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(pfs_mutex_);
  return pfs_files_[name];
}

std::string ConfigLabel(bool on_nvm, bool remote, size_t x, size_t y,
                        size_t z) {
  std::string label;
  if (!on_nvm) {
    label = "DRAM(";
  } else {
    label = remote ? "R-SSD(" : "L-SSD(";
  }
  label += std::to_string(x) + ":" + std::to_string(y) + ":" +
           std::to_string(on_nvm ? z : 0) + ")";
  return label;
}

}  // namespace nvm::workloads

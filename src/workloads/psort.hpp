// Parallel out-of-core sorting (paper §IV-B-3, Table VI).
//
// The paper sorts a 200 GB list on a machine with 128 GB of aggregate
// DRAM, comparing
//   DRAM(8:16:0)  — data does not fit: two-pass external sort with the
//                   PFS holding interim sorted runs, plus a final merge,
//   L/R-SSD(x:y:z) — hybrid DRAM + NVMalloc: part of every process's block
//                   lives in DRAM, the rest in an ssdmalloc'd region, and
//                   the whole list sorts in a single pass.
//
// Both modes use the same distributed sample-sort skeleton (local sort →
// splitter selection → all-to-all exchange → local multiway merge); the
// hybrid mode's local phase is itself out-of-core: the NVM-resident part
// is sorted window-by-window and merged with sequential streams — the
// NVM-friendly access pattern the paper advocates.
//
// Scale: 1 GiB paper : 1 MiB here (node DRAM 8 GiB -> 8 MiB, list
// 200 GB -> 200 MiB), preserving the paper's 1.5625 list : DRAM ratio.
#pragma once

#include "workloads/testbed.hpp"

namespace nvm::workloads {

inline constexpr uint64_t kSortDataScale = 1024;
inline constexpr uint64_t SortScaledBytes(uint64_t paper_bytes) {
  return paper_bytes / kSortDataScale;
}

TestbedOptions PsortTestbedOptions(size_t benefactors, bool remote);

struct PsortOptions {
  enum class Mode { kDramTwoPass, kHybridNvm };

  uint64_t list_bytes = SortScaledBytes(200_GiB);  // 200 MiB of uint64
  size_t procs_per_node = 8;
  size_t nodes = 16;
  Mode mode = Mode::kHybridNvm;
  // Fraction of each process's block held in DRAM (hybrid mode):
  // L-SSD(8:16:16) = 100/200 GB -> 0.5; R-SSD(8:8:8) = 50/200 -> 0.25.
  double dram_fraction = 0.5;
  // n·log n correction for the scaled-down element count.
  double compute_scale = 1.4;
  uint64_t seed = 42;
};

struct PsortResult {
  double seconds = 0;
  int passes = 1;
  bool verified = false;
  uint64_t elements = 0;
};

PsortResult RunPsort(Testbed& testbed, const PsortOptions& options);

}  // namespace nvm::workloads

// STREAM (McCalpin) vector kernels — COPY / SCALE / ADD / TRIAD — with any
// subset of the three arrays placed on the aggregate NVM store via
// NVMalloc (paper §IV-B-1, Fig. 2 and Table III).
//
// Every array's bytes are streamed through the node's modelled DRAM (a
// page that is mapped in is read from memory like any other); arrays on
// NVM additionally pay page-fault + chunk-fetch costs through the full
// NVMalloc stack.  This is the paper's worst case: no reuse, no compute to
// hide latency behind.
#pragma once

#include <array>
#include <string>

#include "workloads/testbed.hpp"

namespace nvm::workloads {

enum class StreamKernel : int { kCopy = 0, kScale, kAdd, kTriad };
inline constexpr std::array<const char*, 4> kStreamKernelNames = {
    "COPY", "SCALE", "ADD", "TRIAD"};

struct StreamOptions {
  uint64_t array_bytes = ScaledBytes(2_GiB);  // 16 MiB per array
  int iterations = 10;                        // paper: TIMES = 10
  size_t threads = 8;                         // one node, 8 cores
  bool a_on_nvm = false;
  bool b_on_nvm = false;
  bool c_on_nvm = false;
  // Which kernels to run (all four by default).
  std::array<bool, 4> run_kernel = {true, true, true, true};
};

struct StreamResult {
  // Sustained modelled bandwidth per kernel, MB/s (0 if not run).
  std::array<double, 4> mbps = {};
  std::array<int64_t, 4> duration_ns = {};
  bool verified = false;  // TRIAD output spot-checked
};

// Human label for an array-placement combination ("None", "A", "B&C"...).
std::string PlacementLabel(const StreamOptions& opts);

StreamResult RunStream(Testbed& testbed, const StreamOptions& options);

}  // namespace nvm::workloads

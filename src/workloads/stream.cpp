#include "workloads/stream.hpp"

#include <atomic>
#include <cmath>

#include "common/log.hpp"
#include "minimpi/comm.hpp"

namespace nvm::workloads {
namespace {

constexpr double kScalar = 3.0;
constexpr uint64_t kBlockElems = 512;  // one 4 KiB page of doubles

// Standard McCalpin STREAM kernels over arrays a, b, c (note that every
// kernel involves array c — this is why the paper's Table III, with c on
// the SSD, sees similar bandwidth on all four):
//   COPY:  c = a;  SCALE: b = q*c;  ADD: c = a + b;  TRIAD: a = b + q*c.
struct KernelSpec {
  int dst;
  int src1;
  int src2;  // -1 when unused
};
constexpr KernelSpec kKernels[4] = {
    /*COPY*/ {2, 0, -1},
    /*SCALE*/ {1, 2, -1},
    /*ADD*/ {2, 0, 1},
    /*TRIAD*/ {0, 1, 2},
};

// A pinned view of one block of a STREAM array: for a DRAM array, a bare
// pointer; for an NVM array, a pin guard keeping the pages resident until
// the block has been processed.
struct BlockRef {
  double* ptr = nullptr;
  PinnedSpan guard;
};

// One of the three STREAM arrays: either a slice of host DRAM (charged on
// the node's memory channel) or an NVMalloc region.
class StreamArray {
 public:
  StreamArray(bool on_nvm, std::vector<double>* dram, NvmRegion* region)
      : on_nvm_(on_nvm), dram_(dram), region_(region) {}

  // Pin `count` elements at `index`; fault costs are charged for NVM
  // arrays, nothing for DRAM (its stream traffic is charged by the kernel).
  BlockRef Pin(size_t index, size_t count, bool for_write) {
    BlockRef ref;
    if (!on_nvm_) {
      ref.ptr = dram_->data() + index;
      return ref;
    }
    auto p = region_->Pin(index * sizeof(double), count * sizeof(double),
                          for_write);
    NVM_CHECK(p.ok(), "stream pin failed: %s", p.status().ToString().c_str());
    ref.guard = std::move(*p);
    ref.ptr = reinterpret_cast<double*>(ref.guard.data());
    return ref;
  }

 private:
  bool on_nvm_;
  std::vector<double>* dram_;
  NvmRegion* region_;
};

void RunKernelBlock(StreamKernel kernel, double* dst, const double* s1,
                    const double* s2, uint64_t n) {
  switch (kernel) {
    case StreamKernel::kCopy:
      for (uint64_t i = 0; i < n; ++i) dst[i] = s1[i];
      break;
    case StreamKernel::kScale:
      for (uint64_t i = 0; i < n; ++i) dst[i] = kScalar * s1[i];
      break;
    case StreamKernel::kAdd:
      for (uint64_t i = 0; i < n; ++i) dst[i] = s1[i] + s2[i];
      break;
    case StreamKernel::kTriad:
      for (uint64_t i = 0; i < n; ++i) dst[i] = s1[i] + kScalar * s2[i];
      break;
  }
}

}  // namespace

std::string PlacementLabel(const StreamOptions& opts) {
  std::string label;
  if (opts.a_on_nvm) label += "A";
  if (opts.b_on_nvm) label += label.empty() ? "B" : "&B";
  if (opts.c_on_nvm) label += label.empty() ? "C" : "&C";
  return label.empty() ? "None" : label;
}

StreamResult RunStream(Testbed& testbed, const StreamOptions& options) {
  const uint64_t n = options.array_bytes / sizeof(double);
  const size_t threads = options.threads;
  constexpr int kNode = 0;

  // DRAM-resident arrays live in plain host vectors; their footprint is
  // reserved against the node budget the way the paper mlock()s memory.
  const bool on_nvm[3] = {options.a_on_nvm, options.b_on_nvm,
                          options.c_on_nvm};
  std::vector<double> dram_arrays[3];
  NvmRegion* nvm_regions[3] = {nullptr, nullptr, nullptr};
  uint64_t dram_reserved = 0;
  auto& node = testbed.cluster().node(kNode);
  auto& runtime = testbed.runtime(kNode);
  static const char* kNames[3] = {"stream_a", "stream_b", "stream_c"};
  for (int i = 0; i < 3; ++i) {
    if (on_nvm[i]) {
      auto r = runtime.SsdMalloc(options.array_bytes,
                                 {.shared = true, .shared_name = kNames[i]});
      NVM_CHECK(r.ok(), "ssdmalloc failed: %s",
                r.status().ToString().c_str());
      nvm_regions[i] = *r;
    } else {
      NVM_CHECK(node.ReserveDram(options.array_bytes).ok(),
                "STREAM DRAM arrays exceed the node budget");
      dram_reserved += options.array_bytes;
      dram_arrays[i].assign(n, 0.0);
    }
  }

  // Scalar shadow of the element value each array holds after all enabled
  // kernels ran (all elements evolve identically; each kernel is
  // idempotent across its iterations), for exact verification.
  double expect[3] = {1.0, 2.0, 0.0};
  for (int k = 0; k < 4; ++k) {
    if (!options.run_kernel[static_cast<size_t>(k)]) continue;
    const KernelSpec spec = kKernels[k];
    const double s1 = expect[spec.src1];
    const double s2 = spec.src2 >= 0 ? expect[spec.src2] : 0.0;
    switch (static_cast<StreamKernel>(k)) {
      case StreamKernel::kCopy: expect[spec.dst] = s1; break;
      case StreamKernel::kScale: expect[spec.dst] = kScalar * s1; break;
      case StreamKernel::kAdd: expect[spec.dst] = s1 + s2; break;
      case StreamKernel::kTriad: expect[spec.dst] = s1 + kScalar * s2; break;
    }
  }

  StreamResult result;
  std::array<std::atomic<int64_t>, 4> kernel_ns;
  for (auto& t : kernel_ns) t.store(0);
  std::atomic<bool> verify_ok{true};

  const std::vector<int> placement(threads, kNode);
  testbed.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
    StreamArray arrays[3] = {
        StreamArray(on_nvm[0], &dram_arrays[0], nvm_regions[0]),
        StreamArray(on_nvm[1], &dram_arrays[1], nvm_regions[1]),
        StreamArray(on_nvm[2], &dram_arrays[2], nvm_regions[2]),
    };
    auto [begin, end] = minimpi::Comm::BlockRange(
        n, static_cast<int>(env.nprocs), env.rank);
    auto& dram = env.node().dram();
    const auto& cpu = env.cluster->cpu();

    // Initialise this rank's slice (outside the timed phase).
    for (uint64_t i = begin; i < end; i += kBlockElems) {
      const uint64_t len = std::min(kBlockElems, end - i);
      BlockRef pa = arrays[0].Pin(i, len, true);
      BlockRef pb = arrays[1].Pin(i, len, true);
      BlockRef pc = arrays[2].Pin(i, len, true);
      for (uint64_t j = 0; j < len; ++j) {
        pa.ptr[j] = 1.0;
        pb.ptr[j] = 2.0;
        pc.ptr[j] = 0.0;
      }
    }
    env.Barrier();

    for (int k = 0; k < 4; ++k) {
      if (!options.run_kernel[static_cast<size_t>(k)]) continue;
      const KernelSpec spec = kKernels[k];
      const int arrays_touched = spec.src2 >= 0 ? 3 : 2;
      const int64_t t0 = env.clock->now();
      for (int iter = 0; iter < options.iterations; ++iter) {
        for (uint64_t i = begin; i < end; i += kBlockElems) {
          const uint64_t len = std::min(kBlockElems, end - i);
          BlockRef s1 = arrays[spec.src1].Pin(i, len, false);
          BlockRef s2 = spec.src2 >= 0
                            ? arrays[spec.src2].Pin(i, len, false)
                            : BlockRef{};
          BlockRef d = arrays[spec.dst].Pin(i, len, true);
          RunKernelBlock(static_cast<StreamKernel>(k), d.ptr, s1.ptr,
                         s2.ptr, len);
          // Streamed bytes hit the node memory channel for every array
          // (mapped-in NVM pages are DRAM pages too).
          dram.ChargeRead(*env.clock, static_cast<uint64_t>(
                                          arrays_touched - 1) *
                                          len * sizeof(double));
          dram.ChargeWrite(*env.clock, len * sizeof(double));
          cpu.ChargeFlops(*env.clock, 2 * len);
        }
      }
      env.Barrier();
      const int64_t dt = env.clock->now() - t0;
      int64_t prev = kernel_ns[static_cast<size_t>(k)].load();
      while (prev < dt && !kernel_ns[static_cast<size_t>(k)]
                               .compare_exchange_weak(prev, dt)) {
      }
    }

    // Verify every array against the scalar shadow on this rank's slice.
    for (int a = 0; a < 3; ++a) {
      for (uint64_t i = begin; i < end;
           i += (end - begin > 64) ? 977 : 1) {
        BlockRef p = arrays[a].Pin(i, 1, false);
        if (*p.ptr != expect[a]) verify_ok.store(false);
      }
    }
  });

  for (int k = 0; k < 4; ++k) {
    if (!options.run_kernel[static_cast<size_t>(k)]) continue;
    const int64_t dt = kernel_ns[static_cast<size_t>(k)].load();
    const int arrays = (k >= 2) ? 3 : 2;
    const uint64_t bytes = static_cast<uint64_t>(arrays) *
                           options.array_bytes *
                           static_cast<uint64_t>(options.iterations);
    result.duration_ns[static_cast<size_t>(k)] = dt;
    result.mbps[static_cast<size_t>(k)] = ToMBps(bytes, dt);
  }
  result.verified = verify_ok.load();

  for (auto* region : nvm_regions) {
    if (region != nullptr) NVM_CHECK(runtime.SsdFree(region).ok());
  }
  node.ReleaseDram(dram_reserved);
  return result;
}

}  // namespace nvm::workloads

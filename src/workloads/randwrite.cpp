#include "workloads/randwrite.hpp"

#include <atomic>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace nvm::workloads {

RandWriteResult RunRandWrite(Testbed& testbed,
                             const RandWriteOptions& options) {
  RandWriteResult result;
  constexpr int kNode = 0;
  auto& runtime = testbed.runtime(kNode);
  runtime.mount().cache().ResetTraffic();
  runtime.mount().client().ResetCounters();

  std::atomic<bool> verified{true};
  const std::vector<int> placement = {kNode};
  const int64_t makespan = testbed.cluster().RunProcesses(
      placement, [&](net::ProcessEnv& env) {
        auto r = runtime.SsdMalloc(options.region_bytes);
        NVM_CHECK(r.ok(), "%s", r.status().ToString().c_str());
        NvmRegion* region = *r;

        // Host shadow of the expected contents for verification.
        std::vector<uint8_t> shadow(options.region_bytes, 0);
        Xoshiro256 rng(options.seed);
        for (uint64_t w = 0; w < options.num_writes; ++w) {
          const uint64_t offset = rng.NextBelow(options.region_bytes);
          const uint8_t value = static_cast<uint8_t>(rng.Next());
          const Status write_status = region->Write(offset, {&value, 1});
          NVM_CHECK(write_status.ok(), "%s",
                    write_status.ToString().c_str());
          shadow[offset] = value;
        }
        NVM_CHECK(region->Sync().ok());

        // Spot-check 4096 random offsets against the shadow.
        Xoshiro256 check(options.seed ^ 0xABCD);
        for (int s = 0; s < 4096; ++s) {
          const uint64_t offset = check.NextBelow(options.region_bytes);
          uint8_t got = 0;
          NVM_CHECK(region->Read(offset, {&got, 1}).ok());
          if (got != shadow[offset]) verified.store(false);
        }
        NVM_CHECK(runtime.SsdFree(region).ok());
        (void)env;
      });

  const auto& traffic = runtime.mount().cache().traffic();
  result.bytes_to_fuse = traffic.app_bytes_written;
  result.bytes_to_ssd = runtime.mount().client().bytes_flushed();
  result.seconds = static_cast<double>(makespan) / 1e9;
  result.verified = verified.load();
  return result;
}

}  // namespace nvm::workloads

// Dense MPI matrix multiplication C = A × B with loop tiling — the paper's
// main out-of-core kernel (§IV-B-2, Figs. 3-6, Tables IV & V).
//
// Structure follows the paper exactly:
//  (i)   master reads A from the PFS and scatters row blocks,
//  (ii)  master reads B from the PFS,
//  (iii) B is broadcast (to every rank in individual-mmap mode; to one
//        writer rank per node in shared-mmap mode),
//  (iv)  every rank computes its C rows with loop tiling, reading B either
//        from DRAM (replicated) or from an NVMalloc region,
//  (v)   master gathers C and writes it to the PFS.
//
// Scale: MM uses a deeper data scale than the rest of the suite
// (1 GiB paper : 2 MiB here, factor 512) because its real arithmetic grows
// as n^3; `compute_scale` = sqrt(512) ≈ 22.6 re-inflates the charged
// compute time so the paper-scale compute : I/O ratio is preserved
// (DESIGN.md §6).  A is the identity matrix, so C must equal B exactly —
// full-strength verification at zero extra flops.
#pragma once

#include <cmath>

#include "workloads/testbed.hpp"

namespace nvm::workloads {

// MM-specific data scale (1 GiB : 2 MiB).
inline constexpr uint64_t kMmDataScale = 512;
inline constexpr uint64_t MmScaledBytes(uint64_t paper_bytes) {
  return paper_bytes / kMmDataScale;
}

struct MatmulOptions {
  uint64_t matrix_bytes = MmScaledBytes(2_GiB);  // 4 MiB => n = 724
  size_t procs_per_node = 8;  // x of the paper's (x:y:z)
  size_t nodes = 16;          // y
  bool b_on_nvm = true;       // false = DRAM-replicated B (paper "DRAM")
  bool shared_mmap = true;    // -S vs -I variants (Fig. 4)
  bool column_major = false;  // access order for B (Fig. 5, Table V)
  size_t tile = 64;           // loop-tiling factor (Table V sweep)
  // Compute-time correction: (a) the scaled-down problem does n_p/n_s
  // times less arithmetic per byte of I/O than the paper's (factor
  // sqrt(kMmDataScale) ~ 22.6), and (b) the paper's naive tiled kernel
  // ran at ~0.9 Gflop/s/core while CpuModel charges the 2.4 GHz core's
  // superscalar peak (9.6 Gflop/s) — a ~10.7x code-efficiency factor.
  double compute_scale = 242.0;
};

// Recommended testbed options for an MM run with z benefactors.  Node DRAM
// is scaled at the MM data scale (8 GiB -> 16 MiB) so that 8 DRAM-
// replicated copies of B genuinely do not fit — the paper's premise.
TestbedOptions MatmulTestbedOptions(size_t benefactors, bool remote);

struct MatmulResult {
  bool feasible = true;  // false: B copies exceed the DRAM budget
  bool verified = false;
  // Virtual seconds per stage, in the paper's Fig. 3 stacking order.
  double input_split_a_s = 0;
  double input_b_s = 0;
  double broadcast_b_s = 0;
  double compute_s = 0;
  double collect_output_c_s = 0;
  double total_s = 0;
  // Table IV traffic accounting for matrix B during the compute stage.
  uint64_t app_b_bytes = 0;   // element accesses to B
  uint64_t fuse_b_bytes = 0;  // page traffic requested from fuselite
  uint64_t ssd_b_bytes = 0;   // chunk traffic fetched from the store
};

MatmulResult RunMatmul(Testbed& testbed, const MatmulOptions& options);

}  // namespace nvm::workloads

// Checkpointing study (paper §III-E / §IV-B-5): measure ssdcheckpoint()'s
// chunk-linking against a naive full-copy baseline across several
// timesteps, including the copy-on-write traffic that keeps earlier
// checkpoints intact while the application keeps writing.
#pragma once

#include <vector>

#include "workloads/testbed.hpp"

namespace nvm::workloads {

struct CkptOptions {
  uint64_t dram_bytes = ScaledBytes(1_GiB);  // 8 MiB of DRAM state
  uint64_t nvm_bytes = ScaledBytes(4_GiB);   // 32 MiB NVM variable
  double dirty_fraction = 0.10;  // pages modified between timesteps
  int timesteps = 3;
  bool link_nvm = true;  // false = naive copy baseline
  uint64_t seed = 11;
};

struct CkptTimestep {
  double seconds = 0;
  uint64_t dram_bytes_copied = 0;
  uint64_t nvm_bytes_linked = 0;
  uint64_t nvm_bytes_copied = 0;
  uint64_t ssd_bytes_written = 0;  // actual device write volume
};

struct CkptResult {
  std::vector<CkptTimestep> steps;
  bool restart_verified = false;
  // An earlier checkpoint must survive later writes (COW correctness).
  bool old_checkpoint_intact = false;
};

CkptResult RunCheckpointStudy(Testbed& testbed, const CkptOptions& options);

}  // namespace nvm::workloads

// The scaled HAL testbed — the paper's 16-node / 128-core evaluation
// cluster reduced by a uniform data-scale factor.
//
// Scaling rule (DESIGN.md §6): data volumes shrink by `kDataScale` (default
// 1 GiB paper : 8 MiB here, factor 128); device bandwidths and latencies
// are NOT scaled, so every volume-driven time shrinks uniformly and the
// paper's ratios are preserved.  Compute, whose paper-scale cost grows
// faster than data (O(n^3) vs O(n^2) for MM), is charged with a
// per-workload `compute_scale` correction so the compute : I/O ratio of
// the paper-scale problem is retained (see matmul.hpp).
//
// Node layout: nodes [0, compute_nodes) run application processes; nodes
// [compute_nodes, 2*compute_nodes) are spare "fat" nodes used as *remote*
// benefactors for the paper's R-SSD configurations.  Every node carries an
// Intel X25-E model SSD, but only the nodes listed in the store config
// contribute space.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/cluster.hpp"
#include "sim/device.hpp"
#include "nvmalloc/runtime.hpp"
#include "sim/resource.hpp"
#include "store/store.hpp"

namespace nvm::workloads {

// Paper-to-simulation data scale: 1 GiB of paper data = 8 MiB here.
inline constexpr uint64_t kDataScale = 128;

inline constexpr uint64_t ScaledBytes(uint64_t paper_bytes) {
  return paper_bytes / kDataScale;
}

struct PfsProfile {
  double bw_mbps = 200.0;        // aggregate parallel-file-system bandwidth
  int64_t latency_ns = 1'000'000;  // per-request
};

struct TestbedOptions {
  size_t compute_nodes = 16;
  size_t cores_per_node = 8;
  uint64_t dram_per_node = ScaledBytes(8_GiB);  // 64 MiB

  // SSD model installed on every node (Table I; the HAL cluster's X25-E
  // by default — swap for the PCIe profiles in ablations).
  sim::DeviceProfile ssd_profile = sim::IntelX25E();

  // Benefactor deployment: z benefactors, local (on compute nodes 0..z-1)
  // or remote (on spare nodes).  The paper's (x:y:z) notation.
  size_t benefactors = 16;
  bool remote_benefactors = false;
  uint64_t contribution_bytes = ScaledBytes(24_GiB);  // per benefactor

  store::StoreConfig store;          // chunk/page/replication knobs
  fuselite::FuseliteConfig fuse;     // cache size, readahead, writeback
  uint64_t page_pool_bytes = 4_MiB;  // mapped-page budget per node
  int64_t page_fault_ns = 4'000;
  PfsProfile pfs;

  TestbedOptions() {
    store.chunk_bytes = 64_KiB;  // scaled stripe unit (paper: 256 KiB)
    store.page_bytes = 4_KiB;
    // The FUSE cache is scaled less aggressively than the data (2 MiB =
    // 32 chunks): what matters qualitatively is slots-per-concurrent-
    // stream (the paper had 256 slots for 8 process streams); a cache
    // scaled at the full data ratio would hold only 8 chunks and thrash
    // in ways the paper's never could.  It remains far smaller than any
    // workload's dataset.
    fuse.cache_bytes = 2_MiB;
  }
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {});

  net::Cluster& cluster() { return *cluster_; }
  store::AggregateStore& store() { return *store_; }
  NvmallocRuntime& runtime(int node) {
    return *runtimes_.at(static_cast<size_t>(node));
  }
  const TestbedOptions& options() const { return options_; }

  // Compute-process placement for an (x:y) job: x procs on each of the
  // first y compute nodes.
  std::vector<int> Placement(size_t procs_per_node, size_t nodes) const {
    return cluster_->BlockPlacement(procs_per_node, nodes);
  }

  // Parallel file system, shared by every node.  The volume-only calls
  // charge time for synthetic data; the file calls also store/retrieve
  // real bytes (interim data of the two-pass sort, Table VI).
  void PfsRead(sim::VirtualClock& clock, uint64_t bytes);
  void PfsWrite(sim::VirtualClock& clock, uint64_t bytes);
  Status PfsWriteFile(sim::VirtualClock& clock, const std::string& name,
                      uint64_t offset, std::span<const uint8_t> data);
  Status PfsReadFile(sim::VirtualClock& clock, const std::string& name,
                     uint64_t offset, std::span<uint8_t> out);
  // Uncharged host-side access for test drivers (seed inputs, verify
  // outputs without perturbing the modelled clock).
  std::vector<uint8_t>& PfsHostFile(const std::string& name);
  uint64_t pfs_bytes() const { return pfs_bytes_.value(); }

 private:
  TestbedOptions options_;
  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<store::AggregateStore> store_;
  std::vector<std::unique_ptr<NvmallocRuntime>> runtimes_;
  sim::Resource pfs_{"pfs"};
  Counter pfs_bytes_;
  std::mutex pfs_mutex_;
  std::unordered_map<std::string, std::vector<uint8_t>> pfs_files_;
};

// Pretty config label in the paper's style: "L-SSD(8:16:16)".
std::string ConfigLabel(bool on_nvm, bool remote, size_t x, size_t y,
                        size_t z);

}  // namespace nvm::workloads

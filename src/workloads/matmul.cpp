#include "workloads/matmul.hpp"

#include <atomic>
#include <cstring>

#include "common/log.hpp"
#include "minimpi/comm.hpp"

namespace nvm::workloads {
namespace {

// B is seeded with a closed-form value per element; with A = identity the
// product C must reproduce it bit-exactly.
double BValue(uint64_t k, uint64_t j) {
  return 0.5 + static_cast<double>(k) * 1e-4 + static_cast<double>(j) * 1e-7;
}

// Binomial-tree broadcast among an explicit rank subset (used for the
// shared-mmap mode, where only one writer per node receives B).
void SubsetBcast(minimpi::RankHandle& mpi, const std::vector<int>& members,
                 int my_index, std::span<uint8_t> data) {
  const int m = static_cast<int>(members.size());
  constexpr int kTag = 0x5bb;
  int mask = 1;
  while (mask < m) {
    if ((my_index & mask) != 0) {
      mpi.Recv(members[static_cast<size_t>(my_index - mask)], data, kTag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    const int child = my_index + mask;
    if (child < m) mpi.Send(members[static_cast<size_t>(child)], data, kTag);
    mask >>= 1;
  }
}

}  // namespace

TestbedOptions MatmulTestbedOptions(size_t benefactors, bool remote) {
  TestbedOptions o;
  // MM data scale (512): 8 GiB/node -> 16 MiB, page cache share -> 2 MiB.
  o.dram_per_node = MmScaledBytes(8_GiB);
  o.page_pool_bytes = 2_MiB;
  o.benefactors = std::max<size_t>(1, benefactors);
  o.remote_benefactors = remote;
  return o;
}

MatmulResult RunMatmul(Testbed& testbed, const MatmulOptions& options) {
  MatmulResult result;
  const uint64_t n = static_cast<uint64_t>(
      std::sqrt(static_cast<double>(options.matrix_bytes / sizeof(double))));
  const size_t nprocs = options.procs_per_node * options.nodes;
  const uint64_t matrix_bytes = n * n * sizeof(double);

  // Feasibility (the paper's DRAM-only premise): every rank needs a full
  // replica of B plus its A and C slices inside the node budget.
  if (!options.b_on_nvm) {
    const uint64_t slices =
        2 * CeilDiv(n, nprocs) * n * sizeof(double) + 1_MiB;
    const uint64_t per_node =
        options.procs_per_node * (matrix_bytes + slices);
    if (per_node > testbed.options().dram_per_node) {
      result.feasible = false;
      return result;
    }
  }

  const std::vector<int> placement =
      testbed.Placement(options.procs_per_node, options.nodes);
  minimpi::Comm comm(testbed.cluster(), placement);

  // Shared-mmap writers: the lowest rank on each node.
  std::vector<int> writers;
  for (size_t r = 0; r < nprocs; ++r) {
    if (r % options.procs_per_node == 0) writers.push_back(static_cast<int>(r));
  }

  std::atomic<uint64_t> app_b_bytes{0};
  std::atomic<bool> verified{true};
  std::array<std::atomic<int64_t>, 6> stage_end{};
  for (auto& s : stage_end) s.store(0);

  testbed.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
    auto mpi = comm.rank_handle(env.rank);
    auto& clock = *env.clock;
    const auto& cpu = env.cluster->cpu();
    const int rank = env.rank;
    const bool master = rank == 0;
    auto [r0, r1] = minimpi::Comm::BlockRange(n, static_cast<int>(nprocs),
                                              rank);
    const uint64_t my_rows = r1 - r0;

    std::vector<double> a_local(my_rows * n, 0.0);
    std::vector<double> c_local(my_rows * n, 0.0);

    auto mark = [&](size_t stage) {
      env.Barrier();
      if (master) stage_end[stage].store(clock.now());
    };
    mark(0);  // synced start

    // ---- Stage (i): Input & Split A ----
    constexpr int kTagA = 0x0a, kTagC = 0x0c;
    if (master) {
      testbed.PfsRead(clock, matrix_bytes);
      for (size_t dst = 1; dst < nprocs; ++dst) {
        auto [d0, d1] = minimpi::Comm::BlockRange(
            n, static_cast<int>(nprocs), static_cast<int>(dst));
        std::vector<double> slice((d1 - d0) * n, 0.0);
        for (uint64_t i = d0; i < d1; ++i) slice[(i - d0) * n + i] = 1.0;
        mpi.Send(static_cast<int>(dst),
                 {reinterpret_cast<const uint8_t*>(slice.data()),
                  slice.size() * sizeof(double)},
                 kTagA);
      }
      for (uint64_t i = r0; i < r1; ++i) a_local[(i - r0) * n + i] = 1.0;
    } else {
      mpi.Recv(0,
               {reinterpret_cast<uint8_t*>(a_local.data()),
                a_local.size() * sizeof(double)},
               kTagA);
    }
    mark(1);

    // ---- Stage (ii): Input B ----
    std::vector<double> b_stage;  // master's staging copy of B
    if (master) {
      testbed.PfsRead(clock, matrix_bytes);
      b_stage.resize(n * n);
      for (uint64_t k = 0; k < n; ++k) {
        for (uint64_t j = 0; j < n; ++j) b_stage[k * n + j] = BValue(k, j);
      }
    }
    mark(2);

    // ---- Stage (iii): Broadcast B & place it ----
    std::vector<double> b_dram;     // DRAM-replicated copy
    NvmRegion* b_region = nullptr;  // NVM placement
    uint64_t dram_reserved = 0;

    if (!options.b_on_nvm) {
      NVM_CHECK(env.node().ReserveDram(matrix_bytes).ok(),
                "DRAM feasibility pre-check missed an overcommit");
      dram_reserved = matrix_bytes;
      b_dram = master ? b_stage : std::vector<double>(n * n);
      mpi.Bcast({reinterpret_cast<uint8_t*>(b_dram.data()),
                 b_dram.size() * sizeof(double)},
                0);
    } else if (options.shared_mmap) {
      auto r = testbed.runtime(env.node_id)
                   .SsdMalloc(matrix_bytes, {.shared = true,
                                             .shared_name = "mm_b"});
      NVM_CHECK(r.ok(), "%s", r.status().ToString().c_str());
      b_region = *r;
      const bool writer = rank % static_cast<int>(options.procs_per_node) == 0;
      if (writer) {
        int my_index = -1;
        for (size_t w = 0; w < writers.size(); ++w) {
          if (writers[w] == rank) my_index = static_cast<int>(w);
        }
        std::vector<double> buf = master ? b_stage
                                         : std::vector<double>(n * n);
        SubsetBcast(mpi, writers, my_index,
                    {reinterpret_cast<uint8_t*>(buf.data()),
                     buf.size() * sizeof(double)});
        NVM_CHECK(b_region
                      ->Write(0, {reinterpret_cast<const uint8_t*>(buf.data()),
                                  buf.size() * sizeof(double)})
                      .ok());
      }
    } else {
      // Individual mmap files: everyone receives B and writes its own copy.
      auto r = testbed.runtime(env.node_id).SsdMalloc(matrix_bytes);
      NVM_CHECK(r.ok(), "%s", r.status().ToString().c_str());
      b_region = *r;
      std::vector<double> buf = master ? b_stage : std::vector<double>(n * n);
      mpi.Bcast({reinterpret_cast<uint8_t*>(buf.data()),
                 buf.size() * sizeof(double)},
                0);
      NVM_CHECK(b_region
                    ->Write(0, {reinterpret_cast<const uint8_t*>(buf.data()),
                                buf.size() * sizeof(double)})
                    .ok());
    }
    b_stage.clear();
    b_stage.shrink_to_fit();
    mark(3);

    // Reset B traffic counters so Table IV sees the compute stage only.
    if (master) {
      for (size_t node = 0; node < options.nodes; ++node) {
        auto& rt = testbed.runtime(static_cast<int>(node));
        rt.mount().cache().ResetTraffic();
        rt.mount().client().ResetCounters();
      }
    }
    env.Barrier();

    // ---- Stage (iv): tiled compute ----
    const size_t T = options.tile;
    NvmArray<double> b_array(b_region);
    std::vector<const double*> b_rows(T);
    std::vector<PinnedArray<const double>> b_guards(T);
    uint64_t my_b_accesses = 0;

    auto compute_tile = [&](uint64_t i0, uint64_t k0, uint64_t j0) {
      const uint64_t ti = std::min<uint64_t>(T, r1 - r0 - i0);
      const uint64_t tk = std::min<uint64_t>(T, n - k0);
      const uint64_t tj = std::min<uint64_t>(T, n - j0);
      // Fault in the B tile: one pin per row segment, charging exactly the
      // pages/chunks the paged accesses of this tile would touch.
      for (uint64_t k = 0; k < tk; ++k) {
        if (options.b_on_nvm) {
          auto p = b_array.PinRead((k0 + k) * n + j0, tj);
          NVM_CHECK(p.ok(), "%s", p.status().ToString().c_str());
          b_guards[k] = std::move(*p);
          b_rows[k] = b_guards[k].data();
        } else {
          b_rows[k] = &b_dram[(k0 + k) * n + j0];
        }
      }
      for (uint64_t i = 0; i < ti; ++i) {
        const double* a_row = &a_local[(i0 + i) * n + k0];
        double* c_row = &c_local[(i0 + i) * n + j0];
        for (uint64_t k = 0; k < tk; ++k) {
          const double a = a_row[k];
          const double* b_row = b_rows[k];
          for (uint64_t j = 0; j < tj; ++j) c_row[j] += a * b_row[j];
        }
      }
      const uint64_t flops = 2 * ti * tk * tj;
      cpu.ChargeFlops(clock, static_cast<uint64_t>(
                                 static_cast<double>(flops) *
                                 options.compute_scale));
      my_b_accesses += ti * tk * tj * sizeof(double);
      for (uint64_t k = 0; k < tk; ++k) b_guards[k].Release();
    };

    // env.Pace() per strip keeps the host threads' real progress aligned
    // with their (virtually simultaneous) clocks, preserving the shared-B
    // cache reuse that genuinely parallel processes get (no virtual-time
    // effect; every rank executes the same strip count).
    for (uint64_t i0 = 0; i0 < my_rows; i0 += T) {
      if (!options.column_major) {
        // Row-major sweep of B: k strips outer, j inner (sequential).
        for (uint64_t k0 = 0; k0 < n; k0 += T) {
          for (uint64_t j0 = 0; j0 < n; j0 += T) compute_tile(i0, k0, j0);
          env.Pace();
        }
      } else {
        // Column-major sweep: j strips outer, k inner (stride-n over B).
        for (uint64_t j0 = 0; j0 < n; j0 += T) {
          for (uint64_t k0 = 0; k0 < n; k0 += T) compute_tile(i0, k0, j0);
          env.Pace();
        }
      }
    }
    app_b_bytes.fetch_add(my_b_accesses);
    mark(4);

    // Collect Table IV counters before anything else touches the caches.
    if (master) {
      uint64_t fuse = 0;
      uint64_t ssd = 0;
      for (size_t node = 0; node < options.nodes; ++node) {
        auto& rt = testbed.runtime(static_cast<int>(node));
        fuse += rt.mount().cache().traffic().app_bytes_read;
        ssd += rt.mount().client().bytes_fetched();
      }
      result.fuse_b_bytes = fuse;
      result.ssd_b_bytes = ssd;
    }
    env.Barrier();

    // ---- Stage (v): Collect & Output C ----
    if (master) {
      std::vector<double> c_full(n * n);
      std::memcpy(c_full.data(), c_local.data(),
                  c_local.size() * sizeof(double));
      for (size_t src = 1; src < nprocs; ++src) {
        auto [s0, s1] = minimpi::Comm::BlockRange(
            n, static_cast<int>(nprocs), static_cast<int>(src));
        mpi.Recv(static_cast<int>(src),
                 {reinterpret_cast<uint8_t*>(&c_full[s0 * n]),
                  (s1 - s0) * n * sizeof(double)},
                 kTagC);
      }
      testbed.PfsWrite(clock, matrix_bytes);
      // A = I  =>  C must equal B, bit-exactly.
      for (uint64_t s = 0; s < 4096; ++s) {
        const uint64_t i = (s * 2654435761u) % n;
        const uint64_t j = (s * 40503u) % n;
        if (c_full[i * n + j] != BValue(i, j)) verified.store(false);
      }
    } else {
      mpi.Send(0,
               {reinterpret_cast<const uint8_t*>(c_local.data()),
                c_local.size() * sizeof(double)},
               kTagC);
    }
    mark(5);

    // Cleanup.
    if (b_region != nullptr) {
      NVM_CHECK(testbed.runtime(env.node_id).SsdFree(b_region).ok());
    }
    if (dram_reserved > 0) env.node().ReleaseDram(dram_reserved);
  });

  auto stage_s = [&](size_t i) {
    return static_cast<double>(stage_end[i].load() -
                               stage_end[i - 1].load()) /
           1e9;
  };
  result.input_split_a_s = stage_s(1);
  result.input_b_s = stage_s(2);
  result.broadcast_b_s = stage_s(3);
  result.compute_s = stage_s(4);
  result.collect_output_c_s = stage_s(5);
  result.total_s =
      static_cast<double>(stage_end[5].load() - stage_end[0].load()) / 1e9;
  result.app_b_bytes = app_b_bytes.load();
  result.verified = verified.load();
  return result;
}

}  // namespace nvm::workloads

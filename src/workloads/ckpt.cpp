#include "workloads/ckpt.hpp"

#include <cstring>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace nvm::workloads {

CkptResult RunCheckpointStudy(Testbed& testbed, const CkptOptions& options) {
  CkptResult result;
  constexpr int kNode = 0;
  auto& runtime = testbed.runtime(kNode);

  const std::vector<int> placement = {kNode};
  testbed.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
    auto& clock = *env.clock;
    Xoshiro256 rng(options.seed);

    // Application state: a DRAM buffer plus one NVM variable.
    std::vector<uint8_t> dram_state(options.dram_bytes);
    for (auto& b : dram_state) b = static_cast<uint8_t>(rng.Next());
    auto r = runtime.SsdMalloc(options.nvm_bytes);
    NVM_CHECK(r.ok(), "%s", r.status().ToString().c_str());
    NvmRegion* nvm_var = *r;
    std::vector<uint8_t> nvm_shadow(options.nvm_bytes);
    for (auto& b : nvm_shadow) b = static_cast<uint8_t>(rng.Next());
    NVM_CHECK(nvm_var->Write(0, nvm_shadow).ok());

    std::vector<uint8_t> first_ckpt_nvm_image;  // state at timestep 0
    std::vector<uint8_t> last_dram;
    std::vector<uint8_t> last_nvm;

    const uint64_t pages = options.nvm_bytes / NvmRegion::kPageBytes;
    const auto dirty_pages = static_cast<uint64_t>(
        static_cast<double>(pages) * options.dirty_fraction);

    for (int t = 0; t < options.timesteps; ++t) {
      // "Compute phase": dirty a fraction of the NVM variable and all of
      // the DRAM state.
      if (t > 0) {
        for (auto& b : dram_state) b = static_cast<uint8_t>(b * 31 + 7);
        // Dirty a contiguous slab of pages, rotating through the variable
        // across timesteps (an advancing wavefront, the common pattern in
        // iterative simulations).
        const uint64_t start_page =
            (static_cast<uint64_t>(t - 1) * dirty_pages) % pages;
        for (uint64_t d = 0; d < dirty_pages; ++d) {
          const uint64_t page = (start_page + d) % pages;
          const uint64_t off = page * NvmRegion::kPageBytes;
          for (uint64_t i = 0; i < NvmRegion::kPageBytes; ++i) {
            nvm_shadow[off + i] = static_cast<uint8_t>(rng.Next());
          }
          NVM_CHECK(nvm_var->Write(off, {nvm_shadow.data() + off,
                                         NvmRegion::kPageBytes})
                        .ok());
        }
      }
      if (t == 0) first_ckpt_nvm_image = nvm_shadow;

      CheckpointSpec spec;
      spec.dram.push_back({dram_state.data(), dram_state.size()});
      spec.nvm.push_back(nvm_var);
      spec.link_nvm = options.link_nvm;

      const uint64_t ssd_before = testbed.cluster().TotalSsdBytesWritten();
      auto info =
          runtime.SsdCheckpoint(spec, "/ckpt/t" + std::to_string(t));
      NVM_CHECK(info.ok(), "%s", info.status().ToString().c_str());

      CkptTimestep step;
      step.seconds = static_cast<double>(info->duration_ns) / 1e9;
      step.dram_bytes_copied = info->dram_bytes_copied;
      step.nvm_bytes_linked = info->nvm_bytes_linked;
      step.nvm_bytes_copied = info->nvm_bytes_copied;
      step.ssd_bytes_written =
          testbed.cluster().TotalSsdBytesWritten() - ssd_before;
      result.steps.push_back(step);
    }
    last_dram = dram_state;
    last_nvm = nvm_shadow;

    // --- Restart from the last checkpoint into fresh state ---
    {
      std::vector<uint8_t> rec_dram(options.dram_bytes, 0);
      auto fresh = runtime.SsdMalloc(options.nvm_bytes);
      NVM_CHECK(fresh.ok());
      RestoreSpec restore;
      restore.dram.push_back({rec_dram.data(), rec_dram.size()});
      restore.nvm.push_back(*fresh);
      Status s = runtime.SsdRestart(
          "/ckpt/t" + std::to_string(options.timesteps - 1), restore);
      NVM_CHECK(s.ok(), "%s", s.ToString().c_str());
      bool ok = rec_dram == last_dram;
      std::vector<uint8_t> rec_nvm(options.nvm_bytes);
      NVM_CHECK((*fresh)->Read(0, rec_nvm).ok());
      ok = ok && rec_nvm == last_nvm;
      result.restart_verified = ok;
      NVM_CHECK(runtime.SsdFree(*fresh).ok());
    }

    // --- COW correctness: checkpoint t0's NVM image must be unchanged
    // even though the variable was rewritten afterwards ---
    if (options.link_nvm && options.timesteps > 1) {
      auto file = runtime.mount().Open("/ckpt/t0");
      NVM_CHECK(file.ok());
      const uint64_t chunk = runtime.mount().client().config().chunk_bytes;
      // Layout: header chunk, then the DRAM segment (chunk-aligned), then
      // the linked NVM variable.
      const uint64_t nvm_off =
          chunk + RoundUp(options.dram_bytes, chunk);
      std::vector<uint8_t> t0_nvm(options.nvm_bytes);
      NVM_CHECK(file->Read(nvm_off, t0_nvm).ok());
      result.old_checkpoint_intact = (t0_nvm == first_ckpt_nvm_image);
    } else {
      result.old_checkpoint_intact = true;
    }

    NVM_CHECK(runtime.SsdFree(nvm_var).ok());
    (void)clock;
  });
  return result;
}

}  // namespace nvm::workloads

// Random-write synthetic application (paper §IV-B-4, Table VII): byte-
// granularity writes to random addresses inside an NVM-resident variable,
// the extreme case for NVMalloc's dirty-page write-back optimisation.
//
// With the optimisation on, a chunk eviction ships only its dirty 4 KB
// pages to the benefactor; with it off, the whole chunk travels.  The
// toggle lives in the testbed's fuselite config (dirty_page_writeback).
#pragma once

#include "workloads/testbed.hpp"

namespace nvm::workloads {

struct RandWriteOptions {
  uint64_t region_bytes = ScaledBytes(2_GiB);  // 16 MiB
  uint64_t num_writes = 131072;                // paper: 128 K byte-writes
  uint64_t seed = 7;
};

struct RandWriteResult {
  uint64_t bytes_to_fuse = 0;  // page traffic handed to the FUSE layer
  uint64_t bytes_to_ssd = 0;   // data shipped to benefactor SSDs
  double seconds = 0;
  bool verified = false;
};

RandWriteResult RunRandWrite(Testbed& testbed,
                             const RandWriteOptions& options);

}  // namespace nvm::workloads

#include "net/network.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "sim/device.hpp"

namespace nvm::net {

Network::Network(size_t num_nodes, NetworkProfile profile)
    : profile_(profile) {
  nics_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    nics_.push_back(
        std::make_unique<sim::Resource>("nic" + std::to_string(i)));
  }
}

void Network::Transfer(sim::VirtualClock& clock, int src_node, int dst_node,
                       uint64_t bytes) {
  NVM_CHECK(src_node >= 0 && static_cast<size_t>(src_node) < nics_.size());
  NVM_CHECK(dst_node >= 0 && static_cast<size_t>(dst_node) < nics_.size());
  bytes_transferred_.Add(bytes);

  if (src_node == dst_node) {
    clock.Advance(sim::TransferNs(bytes, profile_.loopback_bw_mbps,
                                  profile_.loopback_latency_ns));
    return;
  }

  remote_bytes_.Add(bytes);
  const int64_t duration =
      sim::TransferNs(bytes, profile_.nic_bw_mbps, 0);
  // The message occupies the sender NIC first; the receiver NIC is reserved
  // from the instant the sender starts pushing bytes (cut-through), so an
  // uncontended transfer costs one duration + wire latency, not two.
  const int64_t send_start = nics_[static_cast<size_t>(src_node)]->Schedule(
      clock.now(), duration);
  const int64_t recv_start = nics_[static_cast<size_t>(dst_node)]->Schedule(
      send_start, duration);
  clock.AdvanceTo(recv_start + duration + profile_.wire_latency_ns);
}

StreamTransfer::StreamTransfer(Network& network, int src_node, int dst_node)
    : network_(network), src_node_(src_node), dst_node_(dst_node) {
  NVM_CHECK(src_node >= 0 &&
            static_cast<size_t>(src_node) < network.nics_.size());
  NVM_CHECK(dst_node >= 0 &&
            static_cast<size_t>(dst_node) < network.nics_.size());
}

int64_t StreamTransfer::Push(int64_t earliest_ns, uint64_t bytes) {
  const NetworkProfile& p = network_.profile_;
  network_.bytes_transferred_.Add(bytes);

  if (src_node_ == dst_node_) {
    // Loopback stream: a memory copy per message, back to back; the fixed
    // latency (the syscall/VFS hop) is paid once per stream.
    const int64_t latency = messages_ == 0 ? p.loopback_latency_ns : 0;
    const int64_t start = std::max(earliest_ns, send_floor_);
    last_arrival_ =
        start + sim::TransferNs(bytes, p.loopback_bw_mbps, latency);
    send_floor_ = last_arrival_;
    ++messages_;
    return last_arrival_;
  }

  network_.remote_bytes_.Add(bytes);
  const int64_t duration = sim::TransferNs(bytes, p.nic_bw_mbps, 0);
  // Same cut-through shape as Transfer(), with in-order floors: a message
  // cannot start sending before its predecessor left the sender NIC, nor
  // start arriving before its predecessor cleared the receiver NIC.
  const int64_t send_start =
      network_.nics_[static_cast<size_t>(src_node_)]->Schedule(
          std::max(earliest_ns, send_floor_), duration);
  const int64_t recv_start =
      network_.nics_[static_cast<size_t>(dst_node_)]->Schedule(
          std::max(send_start, recv_floor_), duration);
  send_floor_ = send_start + duration;
  recv_floor_ = recv_start + duration;
  ++messages_;
  last_arrival_ = recv_start + duration + p.wire_latency_ns;
  return last_arrival_;
}

void Network::ResetStats() {
  bytes_transferred_.Reset();
  remote_bytes_.Reset();
  for (auto& nic : nics_) nic->Reset();
}

}  // namespace nvm::net

#include "net/network.hpp"

#include "common/log.hpp"
#include "sim/device.hpp"

namespace nvm::net {

Network::Network(size_t num_nodes, NetworkProfile profile)
    : profile_(profile) {
  nics_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    nics_.push_back(
        std::make_unique<sim::Resource>("nic" + std::to_string(i)));
  }
}

void Network::Transfer(sim::VirtualClock& clock, int src_node, int dst_node,
                       uint64_t bytes) {
  NVM_CHECK(src_node >= 0 && static_cast<size_t>(src_node) < nics_.size());
  NVM_CHECK(dst_node >= 0 && static_cast<size_t>(dst_node) < nics_.size());
  bytes_transferred_.Add(bytes);

  if (src_node == dst_node) {
    clock.Advance(sim::TransferNs(bytes, profile_.loopback_bw_mbps,
                                  profile_.loopback_latency_ns));
    return;
  }

  remote_bytes_.Add(bytes);
  const int64_t duration =
      sim::TransferNs(bytes, profile_.nic_bw_mbps, 0);
  // The message occupies the sender NIC first; the receiver NIC is reserved
  // from the instant the sender starts pushing bytes (cut-through), so an
  // uncontended transfer costs one duration + wire latency, not two.
  const int64_t send_start = nics_[static_cast<size_t>(src_node)]->Schedule(
      clock.now(), duration);
  const int64_t recv_start = nics_[static_cast<size_t>(dst_node)]->Schedule(
      send_start, duration);
  clock.AdvanceTo(recv_start + duration + profile_.wire_latency_ns);
}

void Network::ResetStats() {
  bytes_transferred_.Reset();
  remote_bytes_.Reset();
  for (auto& nic : nics_) nic->Reset();
}

}  // namespace nvm::net

#include "net/cluster.hpp"

#include <algorithm>
#include <thread>

namespace nvm::net {

Node::Node(int id, const ClusterConfig& config, bool has_ssd)
    : id_(id),
      dram_budget_(config.dram_bytes_per_node),
      dram_(("dram" + std::to_string(id)), sim::Ddr3_1600()) {
  if (has_ssd) {
    ssd_ = std::make_unique<sim::SsdDevice>("ssd" + std::to_string(id),
                                            config.ssd_profile);
  }
}

Status Node::ReserveDram(uint64_t bytes) {
  uint64_t used = dram_used_.load(std::memory_order_relaxed);
  while (true) {
    if (used + bytes > dram_budget_) {
      return OutOfSpace("node " + std::to_string(id_) + ": DRAM budget " +
                        FormatBytes(dram_budget_) + " exceeded (used " +
                        FormatBytes(used) + ", requested " +
                        FormatBytes(bytes) + ")");
    }
    if (dram_used_.compare_exchange_weak(used, used + bytes,
                                         std::memory_order_relaxed)) {
      return OkStatus();
    }
  }
}

void Node::ReleaseDram(uint64_t bytes) {
  NVM_CHECK(dram_used_.load(std::memory_order_relaxed) >= bytes);
  dram_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

Node& ProcessEnv::node() { return cluster->node(node_id); }

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), network_(config_.num_nodes, config_.network) {
  nodes_.reserve(config_.num_nodes);
  for (size_t i = 0; i < config_.num_nodes; ++i) {
    const bool has_ssd =
        config_.all_nodes_have_ssd ||
        std::find(config_.ssd_nodes.begin(), config_.ssd_nodes.end(),
                  static_cast<int>(i)) != config_.ssd_nodes.end();
    nodes_.push_back(
        std::make_unique<Node>(static_cast<int>(i), config_, has_ssd));
  }
}

std::vector<int> Cluster::BlockPlacement(size_t procs_per_node,
                                         size_t num_nodes) const {
  NVM_CHECK(num_nodes <= nodes_.size());
  std::vector<int> placement;
  placement.reserve(procs_per_node * num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    for (size_t p = 0; p < procs_per_node; ++p) {
      placement.push_back(static_cast<int>(n));
    }
  }
  return placement;
}

int64_t Cluster::RunProcesses(const std::vector<int>& placement,
                              const std::function<void(ProcessEnv&)>& body) {
  const size_t nprocs = placement.size();
  NVM_CHECK(nprocs > 0);
  sim::VirtualBarrier barrier(nprocs);
  sim::RealPacer pacer(nprocs);
  std::vector<sim::ExecutionContext> contexts(nprocs);
  std::vector<std::thread> threads;
  threads.reserve(nprocs);

  for (size_t rank = 0; rank < nprocs; ++rank) {
    contexts[rank].node_id = placement[rank];
    contexts[rank].rank = static_cast<int>(rank);
    contexts[rank].name = "proc" + std::to_string(rank);
    threads.emplace_back([&, rank] {
      sim::SetCurrentContext(&contexts[rank]);
      ProcessEnv env;
      env.cluster = this;
      env.rank = static_cast<int>(rank);
      env.node_id = placement[rank];
      env.nprocs = nprocs;
      env.clock = &contexts[rank].clock;
      env.barrier = &barrier;
      env.pacer = &pacer;
      body(env);
      sim::SetCurrentContext(nullptr);
    });
  }
  for (auto& t : threads) t.join();

  int64_t makespan = 0;
  for (const auto& ctx : contexts) {
    makespan = std::max(makespan, ctx.clock.now());
  }
  return makespan;
}

uint64_t Cluster::TotalSsdBytesRead() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node->has_ssd()) total += node->ssd().host_bytes_read();
  }
  return total;
}

uint64_t Cluster::TotalSsdBytesWritten() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    if (node->has_ssd()) total += node->ssd().host_bytes_written();
  }
  return total;
}

void Cluster::ResetStats() {
  network_.ResetStats();
  for (auto& node : nodes_) {
    if (node->has_ssd()) node->ssd().ResetStats();
    node->dram().channel().Reset();
  }
}

}  // namespace nvm::net

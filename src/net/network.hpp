// Modelled interconnect between simulated nodes.
//
// Each node owns one NIC, modelled as a sim::Resource.  A transfer from A to
// B reserves matching intervals on both NICs and adds the one-way wire
// latency, so both endpoint bottlenecks and fan-in contention (many clients
// hammering one benefactor) emerge naturally.  Defaults model the HAL
// cluster's bonded dual gigabit Ethernet.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/resource.hpp"

namespace nvm::net {

struct NetworkProfile {
  // Bonded dual GigE: ~2 Gbit/s raw; ~230 MB/s effective after framing/TCP.
  double nic_bw_mbps = 230.0;
  int64_t wire_latency_ns = 60'000;   // one-way, kernel stack included
  // Same-node (loopback) transfers bypass the NIC at memory-copy speed.
  double loopback_bw_mbps = 3000.0;
  int64_t loopback_latency_ns = 5'000;
};

class StreamTransfer;

class Network {
 public:
  Network(size_t num_nodes, NetworkProfile profile = {});

  // Charge a `bytes`-sized message from src to dst to `clock`.
  void Transfer(sim::VirtualClock& clock, int src_node, int dst_node,
                uint64_t bytes);

  const NetworkProfile& profile() const { return profile_; }
  size_t num_nodes() const { return nics_.size(); }

  uint64_t bytes_transferred() const { return bytes_transferred_.value(); }
  uint64_t remote_bytes() const { return remote_bytes_.value(); }
  sim::Resource& nic(int node) { return *nics_.at(static_cast<size_t>(node)); }

  void ResetStats();

 private:
  friend class StreamTransfer;

  NetworkProfile profile_;
  std::vector<std::unique_ptr<sim::Resource>> nics_;
  Counter bytes_transferred_;  // includes loopback
  Counter remote_bytes_;       // NIC-crossing only
};

// A streamed multi-message transfer: the messages of one logical reply
// (e.g. the chunks of a benefactor read run) ride back-to-back from one
// fixed sender to one fixed receiver.  The first message costs exactly
// what Transfer() charges; every later message is pipelined behind its
// predecessor on both NICs (in-order delivery), so it adds only its own
// serialisation time beyond the previous message — the marginal network
// charging that lets a run amortise per-request overheads.
class StreamTransfer {
 public:
  StreamTransfer(Network& network, int src_node, int dst_node);

  // Append a message whose payload becomes available to send at
  // `earliest_ns`; returns the virtual time it has fully arrived at the
  // receiver.  Arrival times are monotone across pushes.
  int64_t Push(int64_t earliest_ns, uint64_t bytes);

  uint64_t messages() const { return messages_; }
  int64_t last_arrival() const { return last_arrival_; }

 private:
  Network& network_;
  const int src_node_;
  const int dst_node_;
  uint64_t messages_ = 0;
  int64_t send_floor_ = 0;  // in-order: a message sends after its predecessor
  int64_t recv_floor_ = 0;
  int64_t last_arrival_ = 0;
};

}  // namespace nvm::net

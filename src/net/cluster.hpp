// The simulated cluster: nodes with DRAM (and optionally an SSD), wired
// together by a modelled network, hosting "processes" that are real OS
// threads carrying per-process virtual clocks.
//
// This substitutes for the paper's 16-node / 128-core HAL testbed: the
// process body performs real computation on real data while all device and
// network costs are charged to virtual time (see sim/clock.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "net/network.hpp"
#include "sim/device.hpp"
#include "sim/sync.hpp"

namespace nvm::net {

struct ClusterConfig {
  size_t num_nodes = 16;
  size_t cores_per_node = 8;
  // Scaled-down per-node DRAM budget (paper: 8 GiB; default scale 1/128).
  uint64_t dram_bytes_per_node = 64_MiB;
  // SSD model for benefactor nodes.  Nodes listed in `ssd_nodes` get a
  // device; an empty list equips every node (the paper's L-SSD setups).
  sim::DeviceProfile ssd_profile = sim::IntelX25E();
  std::vector<int> ssd_nodes;
  bool all_nodes_have_ssd = true;
  NetworkProfile network;
  sim::CpuModel cpu;
};

class Node {
 public:
  Node(int id, const ClusterConfig& config, bool has_ssd);

  int id() const { return id_; }
  sim::DramDevice& dram() { return dram_; }
  bool has_ssd() const { return ssd_ != nullptr; }
  sim::SsdDevice& ssd() {
    NVM_CHECK(ssd_ != nullptr, "node %d has no SSD", id_);
    return *ssd_;
  }

  uint64_t dram_budget() const { return dram_budget_; }
  uint64_t dram_used() const {
    return dram_used_.load(std::memory_order_relaxed);
  }

  // Reserve/release node DRAM; mirrors the paper's mlock()-based fencing of
  // per-node memory.  Fails with OUT_OF_SPACE when the budget is exceeded.
  Status ReserveDram(uint64_t bytes);
  void ReleaseDram(uint64_t bytes);

 private:
  int id_;
  uint64_t dram_budget_;
  std::atomic<uint64_t> dram_used_{0};
  sim::DramDevice dram_;
  std::unique_ptr<sim::SsdDevice> ssd_;
};

class Cluster;

// Handed to every process body.
struct ProcessEnv {
  Cluster* cluster = nullptr;
  int rank = 0;
  int node_id = 0;
  size_t nprocs = 0;
  sim::VirtualClock* clock = nullptr;
  sim::VirtualBarrier* barrier = nullptr;  // spans all ranks of this run
  sim::RealPacer* pacer = nullptr;         // real-time-only rendezvous

  Node& node();
  // Convenience: barrier across all processes of the run, syncing clocks.
  void Barrier() { barrier->Arrive(*clock); }
  // Align host-thread progress without touching virtual time (see
  // sim::RealPacer).
  void Pace() { pacer->Arrive(); }
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  size_t num_nodes() const { return nodes_.size(); }
  Node& node(int id) { return *nodes_.at(static_cast<size_t>(id)); }
  Network& network() { return network_; }
  const sim::CpuModel& cpu() const { return config_.cpu; }

  // Round-robin placement of `procs_per_node * num_nodes` ranks over the
  // first `num_nodes` nodes, densely: ranks [0, p) on node 0, etc. —
  // matching the paper's (x:y:z) notation where x = procs/node, y = nodes.
  std::vector<int> BlockPlacement(size_t procs_per_node,
                                  size_t num_nodes) const;

  // Run one process per entry of `placement` (placement[rank] = node id).
  // Returns the maximum final virtual clock across processes — the job
  // makespan in modelled ns.
  int64_t RunProcesses(const std::vector<int>& placement,
                       const std::function<void(ProcessEnv&)>& body);

  // Total SSD bytes read+written across all nodes (for traffic tables).
  uint64_t TotalSsdBytesRead() const;
  uint64_t TotalSsdBytesWritten() const;

  void ResetStats();

 private:
  ClusterConfig config_;
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace nvm::net

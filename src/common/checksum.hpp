// CRC32C (Castagnoli) — the per-chunk integrity checksum of the store.
//
// Software slice-by-8: eight compile-time tables let the hot loop fold one
// 64-bit word per iteration instead of one byte, with no dependence on
// SSE4.2/ARMv8 CRC instructions (the store must verify chunks on any
// benefactor node).  The polynomial is the Castagnoli one (0x11EDC6F41,
// reflected 0x82f63b78) — better error-detection properties for storage
// payloads than CRC32/zlib and the same check values as iSCSI/ext4.
//
// Convention: Crc32c(data, n) with no seed checksums one whole buffer;
// passing a previous result as `seed` continues it, so
//   Crc32c(b, nb, Crc32c(a, na)) == Crc32c(ab, na + nb)
// (the pre/post inversion is internal, as in zlib's crc32()).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace nvm {

namespace detail {

inline constexpr uint32_t kCrc32cPoly = 0x82f63b78u;  // reflected Castagnoli

constexpr std::array<std::array<uint32_t, 256>, 8> BuildCrc32cTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  // t[0]: the classic byte-at-a-time table.
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kCrc32cPoly : 0u);
    }
    t[0][i] = crc;
  }
  // t[k]: byte i advanced through k additional zero bytes — what lets the
  // slice-by-8 loop fold eight input bytes with eight independent lookups.
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = t[0][i];
    for (size_t k = 1; k < 8; ++k) {
      crc = t[0][crc & 0xffu] ^ (crc >> 8);
      t[k][i] = crc;
    }
  }
  return t;
}

inline constexpr auto kCrc32cTables = BuildCrc32cTables();

}  // namespace detail

// CRC32C of [data, data + n).  Chain partial buffers via `seed` (see above).
inline uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0) {
  const auto& t = detail::kCrc32cTables;
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  if constexpr (std::endian::native == std::endian::little) {
    // Head: reach 8-byte alignment so the word loads below are aligned.
    while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
      crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
      --n;
    }
    // Body: one 64-bit word per iteration, eight table lookups.
    while (n >= 8) {
      uint64_t word;
      std::memcpy(&word, p, sizeof(word));
      word ^= crc;
      crc = t[7][word & 0xffu] ^ t[6][(word >> 8) & 0xffu] ^
            t[5][(word >> 16) & 0xffu] ^ t[4][(word >> 24) & 0xffu] ^
            t[3][(word >> 32) & 0xffu] ^ t[2][(word >> 40) & 0xffu] ^
            t[1][(word >> 48) & 0xffu] ^ t[0][(word >> 56) & 0xffu];
      p += 8;
      n -= 8;
    }
  }
  // Tail (and the whole buffer on big-endian hosts): byte at a time.
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

namespace detail {

// One step of GF(2) linear algebra over the reflected-CRC state space:
// mat is a 32x32 bit-matrix (column per input bit), vec a CRC register.
inline uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if ((vec & 1u) != 0) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

inline void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = Gf2MatrixTimes(mat, mat[n]);
}

}  // namespace detail

// CRC32C of a concatenation from the parts' checksums alone:
//   Crc32cCombine(Crc32c(a, na), Crc32c(b, nb), nb) == Crc32c(ab, na + nb)
// Advancing crc_a through len_b zero bytes is multiplication by the
// shift-matrix raised to the 8*len_b power, built here by repeated
// squaring (the zlib crc32_combine construction, with the Castagnoli
// polynomial).  O(log len_b), no access to the underlying bytes — what
// lets a full-image checksum be derived from per-fragment ones.
inline uint32_t Crc32cCombine(uint32_t crc_a, uint32_t crc_b,
                              uint64_t len_b) {
  if (len_b == 0) return crc_a;
  uint32_t even[32];  // shift-matrix ^ (2n)
  uint32_t odd[32];   // shift-matrix ^ (2n+1)
  // odd := the one-bit shift operator for the reflected polynomial.
  odd[0] = detail::kCrc32cPoly;
  for (int n = 1; n < 32; ++n) odd[n] = 1u << (n - 1);
  // Square twice: one zero BYTE per application of `odd`.
  detail::Gf2MatrixSquare(even, odd);
  detail::Gf2MatrixSquare(odd, even);
  uint32_t crc = crc_a;
  uint64_t len = len_b;
  do {
    detail::Gf2MatrixSquare(even, odd);
    if ((len & 1u) != 0) crc = detail::Gf2MatrixTimes(even, crc);
    len >>= 1;
    if (len == 0) break;
    detail::Gf2MatrixSquare(odd, even);
    if ((len & 1u) != 0) crc = detail::Gf2MatrixTimes(odd, crc);
    len >>= 1;
  } while (len != 0);
  return crc ^ crc_b;
}

}  // namespace nvm

#include "common/thread_pool.hpp"

#include <atomic>

namespace nvm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  const size_t workers = std::min(n, threads_.size());
  for (size_t w = 0; w < workers; ++w) {
    Submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace nvm

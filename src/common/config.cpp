#include "common/config.hpp"

#include "common/units.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

namespace nvm {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Status ParseToken(Config& config, const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    return InvalidArgument("expected key=value, got '" + token + "'");
  }
  config.Set(Trim(token.substr(0, eq)), Trim(token.substr(eq + 1)));
  return OkStatus();
}

}  // namespace

StatusOr<Config> Config::FromArgs(const std::vector<std::string>& args) {
  Config config;
  for (const auto& arg : args) {
    NVM_RETURN_IF_ERROR(ParseToken(config, arg));
  }
  return config;
}

StatusOr<Config> Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFound("cannot open config file '" + path + "'");
  Config config;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    NVM_RETURN_IF_ERROR(ParseToken(config, line));
  }
  return config;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

uint64_t Config::GetBytes(const std::string& key, uint64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double base = std::strtod(it->second.c_str(), &end);
  uint64_t mult = 1;
  if (end != nullptr && *end != '\0') {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K': mult = 1_KiB; break;
      case 'M': mult = 1_MiB; break;
      case 'G': mult = 1_GiB; break;
      default: return fallback;
    }
  }
  return static_cast<uint64_t>(base * static_cast<double>(mult));
}

}  // namespace nvm

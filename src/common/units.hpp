// Byte-size and time-unit helpers used throughout the codebase.
#pragma once

#include <cstdint>
#include <string>

namespace nvm {

// Binary byte-size literals: 4_KiB, 256_KiB, 64_MiB, 2_GiB...
constexpr uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

// Time literals expressed in nanoseconds of *virtual* time (see sim/clock).
constexpr int64_t operator""_ns(unsigned long long v) { return static_cast<int64_t>(v); }
constexpr int64_t operator""_us(unsigned long long v) { return static_cast<int64_t>(v) * 1000; }
constexpr int64_t operator""_ms(unsigned long long v) { return static_cast<int64_t>(v) * 1000000; }
constexpr int64_t operator""_s(unsigned long long v) { return static_cast<int64_t>(v) * 1000000000; }

// "4.0 KiB", "256.0 KiB", "1.5 GiB" — human-readable byte counts.
std::string FormatBytes(uint64_t bytes);

// "12.5 us", "3.2 ms", "1.8 s" — human-readable durations from nanoseconds.
std::string FormatDuration(int64_t ns);

// Bandwidth "X MB/s" given bytes moved over a duration in virtual ns.
std::string FormatBandwidth(uint64_t bytes, int64_t ns);

// bytes / seconds, in MB/s (decimal MB, matching device datasheets).
double ToMBps(uint64_t bytes, int64_t ns);

// Integer ceiling division, used for chunk/page counts everywhere.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Round `a` up to a multiple of `b`.
constexpr uint64_t RoundUp(uint64_t a, uint64_t b) { return CeilDiv(a, b) * b; }

}  // namespace nvm

// Running statistics and log-scale latency histograms for instrumentation.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace nvm {

// Welford running mean/variance plus min/max.  Not thread-safe; guard
// externally or keep one per thread and Merge().
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Lock-free log2-bucketed histogram for latency-like values (ns).  Each
// bucket b counts values in [2^b, 2^(b+1)).  Percentiles are approximate
// (bucket midpoint), which is plenty for performance reporting.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value_ns);
  uint64_t count() const;
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  double mean() const;
  // Approximate p-th percentile (p in [0,100]).
  uint64_t Percentile(double p) const;
  std::string Summary() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> total_{0};  // sum of recorded values
};

// A named monotonically increasing counter (bytes moved, ops served...).
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace nvm

// Minimal leveled logger.  Thread-safe, printf-style free functions plus a
// stream-less NVM_LOG macro that captures file:line.  Default level is
// kWarn so tests and benches stay quiet; set NVM_LOG_LEVEL=debug|info|...
// in the environment or call set_log_level() to see more.
#pragma once

#include <cstdarg>
#include <cstdint>

namespace nvm {

enum class LogLevel : uint8_t { kDebug = 0, kInfo, kWarn, kError, kOff };

void set_log_level(LogLevel level);
LogLevel log_level();

// Core sink; prefer the NVM_LOG macro below.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));

#define NVM_LOG(level, ...)                                              \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::nvm::log_level())) {                          \
      ::nvm::LogMessage(level, __FILE__, __LINE__, __VA_ARGS__);         \
    }                                                                    \
  } while (0)

#define NVM_DLOG(...) NVM_LOG(::nvm::LogLevel::kDebug, __VA_ARGS__)
#define NVM_ILOG(...) NVM_LOG(::nvm::LogLevel::kInfo, __VA_ARGS__)
#define NVM_WLOG(...) NVM_LOG(::nvm::LogLevel::kWarn, __VA_ARGS__)
#define NVM_ELOG(...) NVM_LOG(::nvm::LogLevel::kError, __VA_ARGS__)

// Fatal invariant check: always on (release too), prints and aborts.
#define NVM_CHECK(cond, ...)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::nvm::LogMessage(::nvm::LogLevel::kError, __FILE__, __LINE__,     \
                        "CHECK failed: %s", #cond);                      \
      ::nvm::detail::CheckFailure(__VA_ARGS__);                          \
    }                                                                    \
  } while (0)

namespace detail {
[[noreturn]] void CheckFailure(const char* fmt = nullptr, ...);
}  // namespace detail

}  // namespace nvm

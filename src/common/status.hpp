// Lightweight error-handling vocabulary for the NVMalloc codebase.
//
// The library is exception-free on hot paths: fallible operations return
// Status or StatusOr<T>.  Status carries an error code plus a human-readable
// message; StatusOr<T> is a tagged union of a value and a Status.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace nvm {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfSpace,
  kUnavailable,     // component down (e.g. dead benefactor)
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kIoError,
  kCorrupt,         // stored data failed checksum verification (bit rot)
};

std::string_view error_code_name(ErrorCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>" — for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status OutOfSpace(std::string msg) {
  return {ErrorCode::kOutOfSpace, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status IoError(std::string msg) {
  return {ErrorCode::kIoError, std::move(msg)};
}
inline Status Corrupt(std::string msg) {
  return {ErrorCode::kCorrupt, std::move(msg)};
}

// Value-or-error result.  Accessing value() on an error aborts in debug
// builds; call ok() first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : repr_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : repr_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(repr_).ok() &&
           "StatusOr must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(repr_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> repr_;
};

// Early-return plumbing.  NVM_RETURN_IF_ERROR propagates a bad Status;
// NVM_ASSIGN_OR_RETURN unwraps a StatusOr into a new variable.
#define NVM_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::nvm::Status nvm_status_ = (expr);            \
    if (!nvm_status_.ok()) return nvm_status_;     \
  } while (0)

#define NVM_CONCAT_INNER(a, b) a##b
#define NVM_CONCAT(a, b) NVM_CONCAT_INNER(a, b)

#define NVM_ASSIGN_OR_RETURN(decl, expr)                       \
  auto NVM_CONCAT(nvm_sor_, __LINE__) = (expr);                \
  if (!NVM_CONCAT(nvm_sor_, __LINE__).ok())                    \
    return NVM_CONCAT(nvm_sor_, __LINE__).status();            \
  decl = std::move(NVM_CONCAT(nvm_sor_, __LINE__)).value()

}  // namespace nvm

// Deterministic pseudo-random number generation.
//
// Simulations and tests must be reproducible run-to-run, so we use our own
// small generators (SplitMix64 for seeding, Xoshiro256** for streams) rather
// than std::mt19937 whose distributions are not bit-stable across library
// implementations.
#pragma once

#include <cstdint>

namespace nvm {

// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256** — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation (biased by < 2^-64,
    // immaterial for simulation workloads).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace nvm

#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace nvm {
namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("NVM_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{LevelFromEnv()};
std::mutex g_sink_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  // Strip directories for compact output.
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;

  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line, body);
}

namespace detail {

[[noreturn]] void CheckFailure(const char* fmt, ...) {
  if (fmt != nullptr) {
    char body[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(body, sizeof(body), fmt, args);
    va_end(args);
    std::fprintf(stderr, "[E] %s\n", body);
  }
  std::abort();
}

}  // namespace detail
}  // namespace nvm

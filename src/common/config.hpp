// Minimal key=value configuration parsing for the CLI tools.
//
// Accepts "key=value" tokens (command-line args or file lines; '#' starts
// a comment).  Typed getters with defaults; byte sizes accept K/M/G
// suffixes (binary).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace nvm {

class Config {
 public:
  Config() = default;

  // Parse "key=value" tokens; unknown formats are rejected.
  static StatusOr<Config> FromArgs(const std::vector<std::string>& args);
  // Parse a file of "key=value" lines ('#' comments, blank lines ok).
  static StatusOr<Config> FromFile(const std::string& path);

  bool Has(const std::string& key) const { return values_.contains(key); }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  double GetDouble(const std::string& key, double fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;
  // "64K", "2M", "1G" (binary multiples) or plain byte counts.
  uint64_t GetBytes(const std::string& key, uint64_t fallback = 0) const;

  void Set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace nvm

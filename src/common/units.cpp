#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace nvm {

std::string FormatBytes(uint64_t bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB",
                                                         "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  size_t i = 0;
  while (v >= 1024.0 && i + 1 < kSuffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[48];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kSuffix[i]);
  }
  return buf;
}

std::string FormatDuration(int64_t ns) {
  char buf[48];
  double v = static_cast<double>(ns);
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  } else if (ns < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1f us", v / 1e3);
  } else if (ns < 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / 1e9);
  }
  return buf;
}

double ToMBps(uint64_t bytes, int64_t ns) {
  if (ns <= 0) return 0.0;
  return (static_cast<double>(bytes) / 1e6) /
         (static_cast<double>(ns) / 1e9);
}

std::string FormatBandwidth(uint64_t bytes, int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f MB/s", ToMBps(bytes, ns));
  return buf;
}

}  // namespace nvm

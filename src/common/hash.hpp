// 64-bit mixing helpers shared by the hash functors of the store, cache
// and client layers.
//
// The folklore multiply-then-XOR pattern (`k.file * GOLDEN ^ k.index`)
// leaves the low bits of the second operand essentially unmixed, so the
// contiguous chunk indices of one file cluster into the same hash-table
// buckets — and, worse, into the same lock shards once the cache is
// sharded by the low bits.  The splitmix64 finalizer below passes every
// input bit through two full-width multiplies, giving avalanche behaviour
// good enough for power-of-two bucket/shard masking.
#pragma once

#include <cstdint>

namespace nvm {

// splitmix64 finalizer (Steele, Lea & Flood; same constants as the
// reference implementation).  Bijective on uint64_t.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Hash of an (id, index)-style pair.  The golden-ratio multiply spreads
// `a` before the indices are folded in, and the finalizer mixes the
// combined word so both high and low output bits are usable as masks.
constexpr uint64_t HashPair64(uint64_t a, uint64_t b) {
  return Mix64(a * 0x9e3779b97f4a7c15ULL + b + 0x9e3779b97f4a7c15ULL);
}

// Three-word variant for (file, index, version)-style keys.
constexpr uint64_t HashTriple64(uint64_t a, uint64_t b, uint64_t c) {
  return Mix64(HashPair64(a, b) + c);
}

}  // namespace nvm

#include "common/stats.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace nvm {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t n = count_ + other.count_;
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = n;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void LatencyHistogram::Record(uint64_t value_ns) {
  const int bucket =
      (value_ns == 0) ? 0 : (63 - std::countl_zero(value_ns));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(value_ns, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

double LatencyHistogram::mean() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total()) / static_cast<double>(n);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  const auto target = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Midpoint of [2^b, 2^(b+1)).
      const uint64_t lo = (b == 0) ? 0 : (1ULL << b);
      const uint64_t hi = (b >= 63) ? lo : (1ULL << (b + 1));
      return lo + (hi - lo) / 2;
    }
  }
  return 1ULL << (kBuckets - 1);
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.0fns p50=%lluns p99=%lluns",
                static_cast<unsigned long long>(count()), mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(99)));
  return buf;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace nvm

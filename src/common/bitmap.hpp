// Fixed-capacity dynamic bitset used for page dirty/valid tracking in the
// chunk cache.  std::vector<bool> is avoided deliberately: we need popcount,
// find-first-set iteration, and word-level access for fast scans.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hpp"

namespace nvm {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t size() const { return bits_; }

  void Set(size_t i) {
    NVM_CHECK(i < bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void Clear(size_t i) {
    NVM_CHECK(i < bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(size_t i) const {
    NVM_CHECK(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    TrimTail();
  }

  void ClearAll() {
    for (auto& w : words_) w = 0;
  }

  size_t PopCount() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  bool Any() const {
    for (uint64_t w : words_)
      if (w != 0) return true;
    return false;
  }

  bool None() const { return !Any(); }

  // First set bit at or after `from`, or size() if none.
  size_t FindNextSet(size_t from) const {
    if (from >= bits_) return bits_;
    size_t word = from >> 6;
    uint64_t w = words_[word] & (~0ULL << (from & 63));
    while (true) {
      if (w != 0) {
        const size_t bit = (word << 6) +
                           static_cast<size_t>(std::countr_zero(w));
        return bit < bits_ ? bit : bits_;
      }
      if (++word >= words_.size()) return bits_;
      w = words_[word];
    }
  }

  // Invoke fn(index) for every set bit, in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t i = FindNextSet(0); i < bits_; i = FindNextSet(i + 1)) {
      fn(i);
    }
  }

 private:
  void TrimTail() {
    const size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1ULL << tail) - 1;
    }
  }

  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace nvm

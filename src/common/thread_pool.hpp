// Simple fixed-size thread pool with a ParallelFor helper.
//
// The simulated cluster gives each "process" its own dedicated thread (see
// net/cluster); this pool is for auxiliary fan-out such as test drivers and
// workload initialisation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nvm {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Block until every submitted task has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_cv_;   // signalled when work arrives / stop
  std::condition_variable idle_cv_;   // signalled when the pool drains
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace nvm

#include "sim/worker.hpp"

#include <utility>

namespace nvm::sim {

VirtualWorker::VirtualWorker(std::string name) : name_(std::move(name)) {
  thread_ = std::thread([this] { Loop(); });
}

VirtualWorker::~VirtualWorker() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  thread_.join();
}

void VirtualWorker::Post(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void VirtualWorker::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

void VirtualWorker::Loop() {
  ExecutionContext ctx;
  ctx.name = name_;
  SetCurrentContext(&ctx);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    task_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stop requested and nothing pending
    Task task = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    task(clock_);
    now_snapshot_.store(clock_.now(), std::memory_order_release);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
  SetCurrentContext(nullptr);
}

}  // namespace nvm::sim

// Storage / memory device models.
//
// DeviceProfile carries exactly the characteristics from Table I of the
// paper (October 2011 market data); SsdDevice and DramDevice turn a profile
// into a timed resource.  SsdDevice additionally models the flash traits the
// paper's design optimises for: page-granularity programming (4 KB), erase
// blocks (256 KB), and a per-block wear counter so benchmarks can report
// write volume and wear alongside time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/resource.hpp"

namespace nvm::sim {

enum class MediaType : uint8_t { kSlcFlash, kMlcFlash, kDram };
enum class InterfaceType : uint8_t { kSata, kPcie, kDimm };

struct DeviceProfile {
  std::string name;
  MediaType media;
  InterfaceType interface;
  double read_bw_mbps;    // decimal MB/s, as in the datasheet
  double write_bw_mbps;
  int64_t read_latency_ns;   // per-request fixed cost
  int64_t write_latency_ns;
  uint64_t capacity_bytes;
  double cost_usd;
  // Flash endurance: program/erase cycles per block before wear-out.
  // (SLC ~100k, MLC ~10k; 0 for DRAM.)
  uint64_t pe_cycles;
};

// The four devices of Table I.
const DeviceProfile& IntelX25E();        // SLC SATA   250/170 MB/s, 75 us
const DeviceProfile& FusionIoDriveDuo(); // MLC PCIe   1500/1000 MB/s, <30 us
const DeviceProfile& OczRevoDrive();     // MLC PCIe   540/480 MB/s
const DeviceProfile& Ddr3_1600();        // DIMM       12800 MB/s, 10-14 ns
// All Table I rows, in paper order, for reporting.
const std::vector<const DeviceProfile*>& TableIDevices();

// Service time for moving `bytes` at `bw_mbps` plus the fixed latency.
int64_t TransferNs(uint64_t bytes, double bw_mbps, int64_t latency_ns);

// A flash device: a timed channel plus wear accounting.
class SsdDevice {
 public:
  static constexpr uint64_t kPageBytes = 4_KiB;
  static constexpr uint64_t kEraseBlockBytes = 256_KiB;

  // `wear_leveling`: model a log-structured FTL that spreads erases
  // evenly over every block it has ever touched (how real SSDs extend
  // life); false models a naive in-place FTL where hot blocks wear out
  // first.
  SsdDevice(std::string name, const DeviceProfile& profile,
            bool wear_leveling = true);

  // Charge a read/write of `bytes` at device offset `offset` to `clock`.
  // Writes are rounded up to whole flash pages (the device cannot program
  // less than a page) and bump the erase counter of each touched block.
  void ChargeRead(VirtualClock& clock, uint64_t offset, uint64_t bytes);
  void ChargeWrite(VirtualClock& clock, uint64_t offset, uint64_t bytes);

  // Charge one chunk of a streamed multi-chunk read (a read run): the run
  // occupies a single command/queueing slot, so only its first chunk pays
  // the per-request fixed latency; later chunks stream at bandwidth.  With
  // `first_in_run` true this is exactly ChargeRead.
  void ChargeRunRead(VirtualClock& clock, uint64_t offset, uint64_t bytes,
                     bool first_in_run);

  // Write-side counterpart: one chunk of a streamed multi-chunk write run.
  // Page rounding and wear accounting are identical to ChargeWrite; only
  // the first chunk of the run pays the per-request write latency.  With
  // `first_in_run` true this is exactly ChargeWrite.
  void ChargeRunWrite(VirtualClock& clock, uint64_t offset, uint64_t bytes,
                      bool first_in_run);

  const DeviceProfile& profile() const { return profile_; }
  Resource& channel() { return channel_; }

  uint64_t host_bytes_written() const { return host_bytes_written_.value(); }
  uint64_t device_bytes_programmed() const {
    return device_bytes_programmed_.value();
  }
  uint64_t host_bytes_read() const { return host_bytes_read_.value(); }
  // device programmed / host written — page-granularity amplification.
  double write_amplification() const;
  // Highest per-block erase count: with wear levelling, total erases
  // spread over the touched footprint; without, the hottest block's own
  // count.
  uint64_t max_block_erases() const;
  // Fraction of rated endurance consumed by the most-worn block, in [0,1].
  double wear_fraction() const;
  bool wear_leveling() const { return wear_leveling_; }

  void ResetStats();

 private:
  void ChargeWriteInternal(VirtualClock& clock, uint64_t offset,
                           uint64_t bytes, int64_t latency_ns);

  DeviceProfile profile_;
  Resource channel_;
  const bool wear_leveling_;
  Counter host_bytes_written_;
  Counter host_bytes_read_;
  Counter device_bytes_programmed_;
  std::mutex wear_mutex_;
  std::unordered_map<uint64_t, uint64_t> block_program_bytes_;
  std::unordered_map<uint64_t, uint64_t> block_erases_;
  uint64_t total_erases_ = 0;
};

// Node-local DRAM as a timed resource (for modelling memory bandwidth in
// STREAM-style kernels).
class DramDevice {
 public:
  DramDevice(std::string name, const DeviceProfile& profile);

  void ChargeRead(VirtualClock& clock, uint64_t bytes);
  void ChargeWrite(VirtualClock& clock, uint64_t bytes);

  const DeviceProfile& profile() const { return profile_; }
  Resource& channel() { return channel_; }

 private:
  DeviceProfile profile_;
  Resource channel_;
};

// Per-core compute model: charges virtual time for arithmetic work so that
// compute phases and I/O phases share one time base.  Each simulated core is
// independent (no shared resource), matching the paper's dedicated cores.
class CpuModel {
 public:
  // Defaults match the HAL cluster: 2.4 GHz cores; flops_per_cycle covers
  // SSE-era superscalar throughput for dense kernels.
  explicit CpuModel(double ghz = 2.4, double flops_per_cycle = 4.0)
      : ns_per_flop_(1.0 / (ghz * flops_per_cycle)) {}

  void ChargeFlops(VirtualClock& clock, uint64_t flops) const {
    clock.Advance(static_cast<int64_t>(static_cast<double>(flops) *
                                       ns_per_flop_));
  }

  // Branchy/integer work (sort comparisons etc.): one op ~ one flop here.
  void ChargeOps(VirtualClock& clock, uint64_t ops) const {
    ChargeFlops(clock, ops);
  }

  double ns_per_flop() const { return ns_per_flop_; }

 private:
  double ns_per_flop_;
};

}  // namespace nvm::sim

// A background service thread that lives in virtual time.
//
// Foreground "processes" of the simulated cluster own their clocks and run
// to completion; a VirtualWorker models a long-lived *service* (write-back
// daemon, maintenance engine) that is driven by posted work instead.  The
// worker owns its own VirtualClock: each task runs on the worker's OS
// thread, charges modelled time to that clock, and never stalls a
// foreground clock.  Tasks execute strictly in post order, so service
// state touched only from tasks needs no further locking.  Drain() blocks
// the caller until the queue is empty — the deterministic rendezvous tests
// use to assert "the service has caught up to virtual time T".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "sim/clock.hpp"

namespace nvm::sim {

class VirtualWorker {
 public:
  // A unit of service work; receives the worker's clock to charge against.
  using Task = std::function<void(VirtualClock&)>;

  explicit VirtualWorker(std::string name);
  ~VirtualWorker();  // stops the thread; pending tasks still run first

  VirtualWorker(const VirtualWorker&) = delete;
  VirtualWorker& operator=(const VirtualWorker&) = delete;

  // Enqueue a task.  Tasks run FIFO on the worker thread.
  void Post(Task task);

  // Block until every task posted so far has finished.
  void Drain();

  // The worker clock's position, readable from any thread (updated after
  // every task).  Tasks themselves use the VirtualClock& they are handed.
  int64_t now_ns() const {
    return now_snapshot_.load(std::memory_order_acquire);
  }

  const std::string& name() const { return name_; }
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  const std::string name_;
  VirtualClock clock_;  // touched only by the worker thread
  std::atomic<int64_t> now_snapshot_{0};
  std::atomic<uint64_t> tasks_run_{0};

  std::mutex mutex_;
  std::condition_variable task_cv_;  // work arrived / stop requested
  std::condition_variable idle_cv_;  // queue fully drained
  std::deque<Task> queue_;
  bool busy_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace nvm::sim

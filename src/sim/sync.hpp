// Virtual-time synchronisation primitives.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "sim/clock.hpp"

namespace nvm::sim {

// Reusable barrier that also synchronises virtual clocks: every participant
// leaves with its clock advanced to the maximum clock among arrivals (plus a
// fixed cost modelling the barrier's own communication).  This is how
// collective phases keep the per-process clocks coherent.
class VirtualBarrier {
 public:
  explicit VirtualBarrier(size_t parties, int64_t barrier_cost_ns = 20'000)
      : parties_(parties), barrier_cost_ns_(barrier_cost_ns) {}

  VirtualBarrier(const VirtualBarrier&) = delete;
  VirtualBarrier& operator=(const VirtualBarrier&) = delete;

  // Block until all parties arrive; clocks leave synchronised.
  void Arrive(VirtualClock& clock) {
    std::unique_lock<std::mutex> lock(mutex_);
    max_clock_ = std::max(max_clock_, clock.now());
    const uint64_t my_generation = generation_;
    if (++arrived_ == parties_) {
      release_clock_ = max_clock_ + barrier_cost_ns_;
      max_clock_ = 0;
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
    clock.AdvanceTo(release_clock_);
  }

  size_t parties() const { return parties_; }

 private:
  const size_t parties_;
  const int64_t barrier_cost_ns_;
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t arrived_ = 0;
  uint64_t generation_ = 0;
  int64_t max_clock_ = 0;
  int64_t release_clock_ = 0;
};

// Real-time-only rendezvous: aligns the *host threads'* progress without
// touching virtual clocks.  On a host with fewer cores than simulated
// processes, run-to-completion scheduling would let one process race far
// ahead in real time, destroying shared-cache reuse that virtually-
// simultaneous processes would enjoy.  Workloads place one of these at
// natural phase boundaries (e.g. per tile strip) to keep real
// interleaving consistent with virtual simultaneity.
class RealPacer {
 public:
  explicit RealPacer(size_t parties) : parties_(parties) {}

  void Arrive() {
    std::unique_lock<std::mutex> lock(mutex_);
    const uint64_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
  }

 private:
  const size_t parties_;
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace nvm::sim

#include "sim/device.hpp"

#include <algorithm>
#include <cmath>

namespace nvm::sim {

const DeviceProfile& IntelX25E() {
  static const DeviceProfile p{
      .name = "Intel X25-E",
      .media = MediaType::kSlcFlash,
      .interface = InterfaceType::kSata,
      .read_bw_mbps = 250.0,
      .write_bw_mbps = 170.0,
      .read_latency_ns = 75'000,
      .write_latency_ns = 85'000,
      .capacity_bytes = 32_GiB,
      .cost_usd = 589.0,
      .pe_cycles = 100'000,
  };
  return p;
}

const DeviceProfile& FusionIoDriveDuo() {
  static const DeviceProfile p{
      .name = "Fusion IO ioDrive Duo",
      .media = MediaType::kMlcFlash,
      .interface = InterfaceType::kPcie,
      .read_bw_mbps = 1500.0,
      .write_bw_mbps = 1000.0,
      .read_latency_ns = 30'000,
      .write_latency_ns = 30'000,
      .capacity_bytes = 640_GiB,
      .cost_usd = 15'378.0,
      .pe_cycles = 10'000,
  };
  return p;
}

const DeviceProfile& OczRevoDrive() {
  static const DeviceProfile p{
      .name = "OCZ RevoDrive",
      .media = MediaType::kMlcFlash,
      .interface = InterfaceType::kPcie,
      .read_bw_mbps = 540.0,
      .write_bw_mbps = 480.0,
      // Latency not published in Table I; modelled between the SATA and
      // high-end PCIe parts.
      .read_latency_ns = 50'000,
      .write_latency_ns = 50'000,
      .capacity_bytes = 240_GiB,
      .cost_usd = 531.0,
      .pe_cycles = 10'000,
  };
  return p;
}

const DeviceProfile& Ddr3_1600() {
  static const DeviceProfile p{
      .name = "Memory (DDR3-1600)",
      .media = MediaType::kDram,
      .interface = InterfaceType::kDimm,
      .read_bw_mbps = 12'800.0,
      .write_bw_mbps = 12'800.0,
      .read_latency_ns = 12,
      .write_latency_ns = 12,
      .capacity_bytes = 16_GiB,
      .cost_usd = 150.0,
      .pe_cycles = 0,
  };
  return p;
}

const std::vector<const DeviceProfile*>& TableIDevices() {
  static const std::vector<const DeviceProfile*> all = {
      &IntelX25E(), &FusionIoDriveDuo(), &OczRevoDrive(), &Ddr3_1600()};
  return all;
}

int64_t TransferNs(uint64_t bytes, double bw_mbps, int64_t latency_ns) {
  const double ns =
      static_cast<double>(bytes) / (bw_mbps * 1e6) * 1e9;
  return latency_ns + static_cast<int64_t>(std::llround(ns));
}

SsdDevice::SsdDevice(std::string name, const DeviceProfile& profile,
                     bool wear_leveling)
    : profile_(profile),
      channel_(std::move(name)),
      wear_leveling_(wear_leveling) {}

void SsdDevice::ChargeRead(VirtualClock& clock, uint64_t offset,
                           uint64_t bytes) {
  (void)offset;
  host_bytes_read_.Add(bytes);
  channel_.Acquire(clock, TransferNs(bytes, profile_.read_bw_mbps,
                                     profile_.read_latency_ns));
}

void SsdDevice::ChargeRunRead(VirtualClock& clock, uint64_t offset,
                              uint64_t bytes, bool first_in_run) {
  (void)offset;
  host_bytes_read_.Add(bytes);
  channel_.Acquire(
      clock, TransferNs(bytes, profile_.read_bw_mbps,
                        first_in_run ? profile_.read_latency_ns : 0));
}

void SsdDevice::ChargeWrite(VirtualClock& clock, uint64_t offset,
                            uint64_t bytes) {
  ChargeWriteInternal(clock, offset, bytes, profile_.write_latency_ns);
}

void SsdDevice::ChargeRunWrite(VirtualClock& clock, uint64_t offset,
                               uint64_t bytes, bool first_in_run) {
  ChargeWriteInternal(clock, offset, bytes,
                      first_in_run ? profile_.write_latency_ns : 0);
}

void SsdDevice::ChargeWriteInternal(VirtualClock& clock, uint64_t offset,
                                    uint64_t bytes, int64_t latency_ns) {
  if (bytes == 0) return;
  host_bytes_written_.Add(bytes);
  // Flash programs whole pages: the device touches every page the byte
  // range overlaps, which is where small-write amplification comes from.
  const uint64_t first_page = offset / kPageBytes;
  const uint64_t last_page = (offset + bytes - 1) / kPageBytes;
  const uint64_t programmed = (last_page - first_page + 1) * kPageBytes;
  device_bytes_programmed_.Add(programmed);

  {
    std::lock_guard<std::mutex> lock(wear_mutex_);
    // Wear: a block is erased every time its capacity worth of pages has
    // been programmed into it (simplified log-structured FTL).
    const uint64_t first_block = offset / kEraseBlockBytes;
    const uint64_t last_block = (offset + bytes - 1) / kEraseBlockBytes;
    for (uint64_t b = first_block; b <= last_block; ++b) {
      const uint64_t block_lo = b * kEraseBlockBytes;
      const uint64_t block_hi = block_lo + kEraseBlockBytes;
      const uint64_t lo = std::max(offset, block_lo);
      const uint64_t hi = std::min(offset + bytes, block_hi);
      const uint64_t pages =
          (hi - 1) / kPageBytes - lo / kPageBytes + 1;
      uint64_t& acc = block_program_bytes_[b];
      acc += pages * kPageBytes;
      while (acc >= kEraseBlockBytes) {
        acc -= kEraseBlockBytes;
        ++block_erases_[b];
        ++total_erases_;
      }
    }
  }

  channel_.Acquire(clock, TransferNs(programmed, profile_.write_bw_mbps,
                                     latency_ns));
}

double SsdDevice::write_amplification() const {
  const uint64_t host = host_bytes_written_.value();
  if (host == 0) return 1.0;
  return static_cast<double>(device_bytes_programmed_.value()) /
         static_cast<double>(host);
}

uint64_t SsdDevice::max_block_erases() const {
  std::lock_guard<std::mutex> lock(
      const_cast<std::mutex&>(wear_mutex_));
  if (wear_leveling_) {
    // The FTL remaps hot logical blocks over its whole touched footprint:
    // every physical block carries an equal share of the erases.
    const size_t footprint = block_program_bytes_.size();
    if (footprint == 0) return 0;
    return CeilDiv(total_erases_, footprint);
  }
  uint64_t max_erases = 0;
  for (const auto& [block, erases] : block_erases_) {
    max_erases = std::max(max_erases, erases);
  }
  return max_erases;
}

double SsdDevice::wear_fraction() const {
  if (profile_.pe_cycles == 0) return 0.0;
  return static_cast<double>(max_block_erases()) /
         static_cast<double>(profile_.pe_cycles);
}

void SsdDevice::ResetStats() {
  host_bytes_written_.Reset();
  host_bytes_read_.Reset();
  device_bytes_programmed_.Reset();
  channel_.Reset();
  std::lock_guard<std::mutex> lock(wear_mutex_);
  block_program_bytes_.clear();
  block_erases_.clear();
  total_erases_ = 0;
}

DramDevice::DramDevice(std::string name, const DeviceProfile& profile)
    : profile_(profile), channel_(std::move(name)) {}

void DramDevice::ChargeRead(VirtualClock& clock, uint64_t bytes) {
  channel_.Acquire(clock, TransferNs(bytes, profile_.read_bw_mbps,
                                     profile_.read_latency_ns));
}

void DramDevice::ChargeWrite(VirtualClock& clock, uint64_t bytes) {
  channel_.Acquire(clock, TransferNs(bytes, profile_.write_bw_mbps,
                                     profile_.write_latency_ns));
}

}  // namespace nvm::sim

#include "sim/clock.hpp"

namespace nvm::sim {
namespace {

thread_local ExecutionContext t_default_context;
thread_local ExecutionContext* t_context = nullptr;

}  // namespace

ExecutionContext& CurrentContext() {
  return (t_context != nullptr) ? *t_context : t_default_context;
}

void SetCurrentContext(ExecutionContext* ctx) { t_context = ctx; }

VirtualClock& CurrentClock() { return CurrentContext().clock; }

}  // namespace nvm::sim

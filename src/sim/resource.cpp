#include "sim/resource.hpp"

#include "common/log.hpp"

namespace nvm::sim {

int64_t Resource::Schedule(int64_t earliest_start_ns, int64_t duration_ns) {
  NVM_CHECK(duration_ns >= 0);
  std::lock_guard<std::mutex> lock(mutex_);
  ++num_requests_;
  busy_ns_ += duration_ns;
  if (duration_ns == 0) return earliest_start_ns;

  // Find the earliest gap of length >= duration starting at or after
  // earliest_start_ns.  Walk intervals that end after the candidate start.
  int64_t start = earliest_start_ns;
  auto it = intervals_.upper_bound(start);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) start = prev->second;  // inside prev interval
  }
  while (it != intervals_.end() && it->first < start + duration_ns) {
    // Gap before *it is too small (or negative); jump past it.
    start = it->second;
    ++it;
  }
  const int64_t end = start + duration_ns;
  queue_delay_ns_ += start - earliest_start_ns;

  // Insert [start, end), coalescing with touching neighbours to keep the
  // interval map compact under streaming workloads.
  int64_t new_start = start;
  int64_t new_end = end;
  auto lo = intervals_.lower_bound(new_start);
  if (lo != intervals_.begin()) {
    auto prev = std::prev(lo);
    if (prev->second >= new_start) {
      new_start = prev->first;
      new_end = std::max(new_end, prev->second);
      lo = prev;
    }
  }
  while (lo != intervals_.end() && lo->first <= new_end) {
    new_end = std::max(new_end, lo->second);
    lo = intervals_.erase(lo);
  }
  intervals_[new_start] = new_end;
  return start;
}

int64_t Resource::Acquire(VirtualClock& clock, int64_t duration_ns) {
  const int64_t arrival = clock.now();
  const int64_t start = Schedule(arrival, duration_ns);
  clock.AdvanceTo(start + duration_ns);
  return start - arrival;
}

int64_t Resource::busy_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_ns_;
}

int64_t Resource::queue_delay_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_delay_ns_;
}

uint64_t Resource::num_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_requests_;
}

void Resource::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  intervals_.clear();
  busy_ns_ = 0;
  queue_delay_ns_ = 0;
  num_requests_ = 0;
}

}  // namespace nvm::sim

// Virtual time.
//
// The entire performance model runs on virtual clocks: every simulated
// "process" (an OS thread inside the in-process cluster) owns a
// VirtualClock, and every timed operation — SSD access, network transfer,
// compute phase — *charges* modelled nanoseconds to the calling process's
// clock instead of sleeping.  Shared hardware (an SSD, a NIC) is modelled by
// sim::Resource, which maintains a timeline of busy intervals so that
// contention and queueing emerge exactly as in a discrete-event simulation,
// while data movement itself really happens (bytes are memcpy'd), keeping
// functional behaviour honest.
//
// This is the substitution that lets a single-core container reproduce the
// performance *shapes* of the paper's 128-core cluster: ratios between
// DRAM, local SSD, and remote SSD timings come from the device models, not
// from physical concurrency.
#pragma once

#include <cstdint>
#include <string>

namespace nvm::sim {

class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(int64_t start_ns) : now_ns_(start_ns) {}

  int64_t now() const { return now_ns_; }

  // Advance by a non-negative duration.
  void Advance(int64_t ns) {
    if (ns > 0) now_ns_ += ns;
  }

  // Move forward to `t` if `t` is in the future; never moves backwards.
  void AdvanceTo(int64_t t) {
    if (t > now_ns_) now_ns_ = t;
  }

  void Reset(int64_t t = 0) { now_ns_ = t; }

 private:
  int64_t now_ns_ = 0;
};

// Per-thread execution context.  The simulated cluster installs one for
// each process thread; test code and main() get a lazily created default so
// the library works outside a cluster too.
struct ExecutionContext {
  VirtualClock clock;
  int node_id = 0;   // which simulated node this process runs on
  int rank = 0;      // global process rank (for minimpi)
  std::string name = "main";
};

// Context of the calling thread (never null; default-constructed on first
// use for threads outside a cluster).
ExecutionContext& CurrentContext();

// Install/remove an externally owned context for the calling thread.
// Passing nullptr reverts to the thread's default context.
void SetCurrentContext(ExecutionContext* ctx);

// Shorthand for CurrentContext().clock.
VirtualClock& CurrentClock();

}  // namespace nvm::sim

// A serially-serviced hardware resource (SSD channel, NIC, bus).
//
// Each timed operation reserves an interval on the resource's timeline.  A
// request arriving at virtual time `t` is scheduled into the earliest gap of
// sufficient length starting at or after `t` (backfilling).  Gap-filling
// rather than plain FIFO matters because real threads on a small host reach
// the resource in arbitrary real-time order: a process whose virtual clock
// lags must still be able to use virtual-time gaps that chronologically
// "earlier" requests left behind, otherwise run-to-completion scheduling
// would fabricate contention that the modelled machine never had.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/stats.hpp"
#include "sim/clock.hpp"

namespace nvm::sim {

class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  // Reserve `duration_ns` of exclusive service starting no earlier than
  // `earliest_start_ns`.  Returns the actual start time; the operation
  // completes at start + duration.
  int64_t Schedule(int64_t earliest_start_ns, int64_t duration_ns);

  // Schedule and advance `clock` to the completion time.  Returns the
  // queueing delay experienced (start - earliest_start).
  int64_t Acquire(VirtualClock& clock, int64_t duration_ns);

  const std::string& name() const { return name_; }

  // Total virtual ns of service delivered (device busy time).
  int64_t busy_ns() const;
  // Total queueing delay suffered by all requests.
  int64_t queue_delay_ns() const;
  uint64_t num_requests() const;

  // Drop all reservations and statistics (between benchmark phases).
  void Reset();

 private:
  std::string name_;
  mutable std::mutex mutex_;
  // start -> end of each busy interval; adjacent intervals are coalesced so
  // the map stays small for streaming access patterns.
  std::map<int64_t, int64_t> intervals_;
  int64_t busy_ns_ = 0;
  int64_t queue_delay_ns_ = 0;
  uint64_t num_requests_ = 0;
};

}  // namespace nvm::sim

#include "minimpi/comm.hpp"

#include <cstring>

#include "common/log.hpp"
#include "sim/clock.hpp"

namespace nvm::minimpi {

Comm::Comm(net::Cluster& cluster, std::vector<int> placement)
    : cluster_(cluster),
      placement_(std::move(placement)),
      barrier_(placement_.size()) {
  NVM_CHECK(!placement_.empty());
}

std::pair<uint64_t, uint64_t> Comm::BlockRange(uint64_t n, int size,
                                               int rank) {
  const uint64_t base = n / static_cast<uint64_t>(size);
  const uint64_t extra = n % static_cast<uint64_t>(size);
  const auto r = static_cast<uint64_t>(rank);
  const uint64_t begin = r * base + std::min(r, extra);
  const uint64_t end = begin + base + (r < extra ? 1 : 0);
  return {begin, end};
}

void Comm::Send(sim::VirtualClock& clock, int src, int dst, int tag,
                std::span<const uint8_t> data) {
  // The transfer occupies the NICs starting at the sender's current time;
  // the sender's clock advances through it (blocking send semantics).
  cluster_.network().Transfer(clock, node_of(src), node_of(dst),
                              data.size());
  Message msg;
  msg.data.assign(data.begin(), data.end());
  msg.arrival_ns = clock.now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mailboxes_[MailboxKey{dst, src, tag}].push_back(std::move(msg));
  }
  cv_.notify_all();
}

void Comm::Recv(sim::VirtualClock& clock, int dst, int src, int tag,
                std::span<uint8_t> out) {
  Message msg;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto& queue = mailboxes_[MailboxKey{dst, src, tag}];
    cv_.wait(lock, [&] { return !queue.empty(); });
    msg = std::move(queue.front());
    queue.pop_front();
  }
  NVM_CHECK(msg.data.size() == out.size(),
            "Recv size mismatch: posted %zu, message %zu", out.size(),
            msg.data.size());
  // Zero-byte messages carry no payload; an empty span's data() may be
  // null, which memcpy must not see even for n=0.
  if (!out.empty()) std::memcpy(out.data(), msg.data.data(), out.size());
  // The receiver cannot complete before the last byte arrives.
  clock.AdvanceTo(msg.arrival_ns);
}

int RankHandle::size() const { return comm_->size(); }

void RankHandle::Send(int dst, std::span<const uint8_t> data, int tag) {
  comm_->Send(sim::CurrentClock(), rank_, dst, tag, data);
}

void RankHandle::Recv(int src, std::span<uint8_t> out, int tag) {
  comm_->Recv(sim::CurrentClock(), rank_, src, tag, out);
}

void RankHandle::Barrier() {
  comm_->barrier_.Arrive(sim::CurrentClock());
}

void RankHandle::Bcast(std::span<uint8_t> data, int root) {
  const int n = size();
  if (n == 1) return;
  // Binomial tree rooted at `root`: rank r's virtual id is (r - root) mod n.
  const int vid = (rank_ - root + n) % n;
  constexpr int kBcastTag = 0x6bc;

  // Receive from the parent: the parent differs in the lowest set bit.
  int mask = 1;
  while (mask < n) {
    if ((vid & mask) != 0) {
      const int parent = ((vid - mask) + root) % n;
      Recv(parent, data, kBcastTag);
      break;
    }
    mask <<= 1;
  }
  // Forward to children vid + m for every m below our lowest set bit.
  mask >>= 1;
  while (mask > 0) {
    const int child_vid = vid + mask;
    if (child_vid < n) {
      Send((child_vid + root) % n, data, kBcastTag);
    }
    mask >>= 1;
  }
}

void RankHandle::Scatter(std::span<const uint8_t> send,
                         std::span<uint8_t> recv, int root) {
  const int n = size();
  constexpr int kScatterTag = 0x5ca;
  if (rank_ == root) {
    NVM_CHECK(send.size() == recv.size() * static_cast<size_t>(n));
    for (int dst = 0; dst < n; ++dst) {
      auto block = send.subspan(static_cast<size_t>(dst) * recv.size(),
                                recv.size());
      if (dst == rank_) {
        std::memcpy(recv.data(), block.data(), block.size());
      } else {
        Send(dst, block, kScatterTag);
      }
    }
  } else {
    Recv(root, recv, kScatterTag);
  }
}

void RankHandle::Gather(std::span<const uint8_t> send,
                        std::span<uint8_t> recv, int root) {
  const int n = size();
  constexpr int kGatherTag = 0x9a7;
  if (rank_ == root) {
    NVM_CHECK(recv.size() == send.size() * static_cast<size_t>(n));
    std::memcpy(recv.data() + static_cast<size_t>(rank_) * send.size(),
                send.data(), send.size());
    for (int src = 0; src < n; ++src) {
      if (src == rank_) continue;
      Recv(src,
           recv.subspan(static_cast<size_t>(src) * send.size(), send.size()),
           kGatherTag);
    }
  } else {
    Send(root, send, kGatherTag);
  }
}

void RankHandle::Allgather(std::span<const uint8_t> send,
                           std::span<uint8_t> recv) {
  NVM_CHECK(recv.size() == send.size() * static_cast<size_t>(size()));
  Gather(send, recv, 0);
  Bcast(recv, 0);
}

void RankHandle::Alltoallv(std::span<const uint8_t> send,
                           std::span<const uint64_t> send_counts,
                           std::vector<uint8_t>* recv,
                           std::vector<uint64_t>* recv_counts) {
  const int n = size();
  NVM_CHECK(send_counts.size() == static_cast<size_t>(n));
  constexpr int kSizeTag = 0xa2a;
  constexpr int kDataTag = 0xa2b;

  // Post all sends first (sends are buffered, so no rendezvous deadlock),
  // then drain receives in source-rank order.
  uint64_t offset = 0;
  uint64_t my_offset = 0;
  for (int dst = 0; dst < n; ++dst) {
    const uint64_t count = send_counts[static_cast<size_t>(dst)];
    if (dst == rank_) {
      my_offset = offset;
    } else {
      SendVal<uint64_t>(dst, count, kSizeTag);
      if (count > 0) Send(dst, send.subspan(offset, count), kDataTag);
    }
    offset += count;
  }
  NVM_CHECK(offset == send.size(), "send_counts do not cover the buffer");

  recv_counts->assign(static_cast<size_t>(n), 0);
  recv->clear();
  for (int src = 0; src < n; ++src) {
    uint64_t count;
    if (src == rank_) {
      count = send_counts[static_cast<size_t>(rank_)];
      recv->insert(recv->end(), send.begin() + static_cast<long>(my_offset),
                   send.begin() + static_cast<long>(my_offset + count));
    } else {
      count = RecvVal<uint64_t>(src, kSizeTag);
      const size_t at = recv->size();
      recv->resize(at + count);
      if (count > 0) {
        Recv(src, {recv->data() + at, count}, kDataTag);
      }
    }
    (*recv_counts)[static_cast<size_t>(src)] = count;
  }
}

}  // namespace nvm::minimpi

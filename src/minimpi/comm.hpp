// minimpi — the message-passing subset the paper's kernels need (MPI-style
// pt2pt plus Bcast/Scatter/Gather/Allgather/Allreduce/Barrier), running
// over the simulated cluster.
//
// Data really moves between per-rank mailboxes (memcpy through a queue);
// time is charged on the modelled network, so same-node ranks communicate
// at loopback speed and cross-node traffic contends on NICs.  Broadcast
// uses a binomial tree, matching real MPI implementations closely enough
// for the paper's Broadcast-B stage.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "net/cluster.hpp"
#include "sim/sync.hpp"

namespace nvm::minimpi {

class Comm;

// Per-rank endpoint; bind one per process via Comm::rank_handle().
class RankHandle {
 public:
  RankHandle() = default;

  int rank() const { return rank_; }
  int size() const;

  // --- point to point (blocking, tagged) ---
  void Send(int dst, std::span<const uint8_t> data, int tag = 0);
  void Recv(int src, std::span<uint8_t> out, int tag = 0);

  template <typename T>
  void SendVal(int dst, const T& v, int tag = 0) {
    Send(dst, {reinterpret_cast<const uint8_t*>(&v), sizeof(T)}, tag);
  }
  template <typename T>
  T RecvVal(int src, int tag = 0) {
    T v;
    Recv(src, {reinterpret_cast<uint8_t*>(&v), sizeof(T)}, tag);
    return v;
  }

  // --- collectives (all ranks must participate) ---
  void Barrier();
  // Binomial-tree broadcast of `data` from `root`.
  void Bcast(std::span<uint8_t> data, int root);
  // Root scatters equally sized blocks of `send`; everyone receives into
  // `recv` (recv.size() == send.size() / size()).
  void Scatter(std::span<const uint8_t> send, std::span<uint8_t> recv,
               int root);
  // Inverse of Scatter.
  void Gather(std::span<const uint8_t> send, std::span<uint8_t> recv,
              int root);
  void Allgather(std::span<const uint8_t> send, std::span<uint8_t> recv);

  // Variable-size all-to-all (the sample-sort exchange): rank r's block
  // for rank d is send[offset(d) .. offset(d)+send_counts[d]) where
  // offset is the prefix sum of send_counts.  On return, *recv holds the
  // incoming blocks concatenated in source-rank order and *recv_counts
  // their sizes.
  void Alltoallv(std::span<const uint8_t> send,
                 std::span<const uint64_t> send_counts,
                 std::vector<uint8_t>* recv,
                 std::vector<uint64_t>* recv_counts);

  // Elementwise reduction of a T vector across ranks, result everywhere.
  template <typename T, typename Op>
  void Allreduce(std::span<T> values, Op op);

  template <typename T>
  T AllreduceSum(T value) {
    Allreduce(std::span<T>(&value, 1), [](T a, T b) { return a + b; });
    return value;
  }

 private:
  friend class Comm;
  RankHandle(Comm* comm, int rank) : comm_(comm), rank_(rank) {}
  Comm* comm_ = nullptr;
  int rank_ = 0;
};

class Comm {
 public:
  // placement[rank] = node id; must match the cluster run's placement.
  Comm(net::Cluster& cluster, std::vector<int> placement);

  int size() const { return static_cast<int>(placement_.size()); }
  int node_of(int rank) const {
    return placement_.at(static_cast<size_t>(rank));
  }
  net::Cluster& cluster() { return cluster_; }

  RankHandle rank_handle(int rank) { return RankHandle(this, rank); }

  // Block distribution helper: the half-open element range owned by
  // `rank` when `n` elements are divided over `size` ranks.
  static std::pair<uint64_t, uint64_t> BlockRange(uint64_t n, int size,
                                                  int rank);

 private:
  friend class RankHandle;

  struct Message {
    std::vector<uint8_t> data;
    int64_t arrival_ns;  // virtual time the last byte lands
  };
  struct MailboxKey {
    int dst;
    int src;
    int tag;
    auto operator<=>(const MailboxKey&) const = default;
  };

  void Send(sim::VirtualClock& clock, int src, int dst, int tag,
            std::span<const uint8_t> data);
  void Recv(sim::VirtualClock& clock, int dst, int src, int tag,
            std::span<uint8_t> out);

  net::Cluster& cluster_;
  std::vector<int> placement_;
  sim::VirtualBarrier barrier_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<MailboxKey, std::deque<Message>> mailboxes_;
};

template <typename T, typename Op>
void RankHandle::Allreduce(std::span<T> values, Op op) {
  // Gather-to-0 + reduce + broadcast: simple and adequate at these scales.
  const int n = size();
  if (n == 1) return;
  const size_t bytes = values.size() * sizeof(T);
  if (rank_ == 0) {
    std::vector<T> incoming(values.size());
    for (int src = 1; src < n; ++src) {
      Recv(src, {reinterpret_cast<uint8_t*>(incoming.data()), bytes},
           /*tag=*/0x7ed);
      for (size_t i = 0; i < values.size(); ++i) {
        values[i] = op(values[i], incoming[i]);
      }
    }
  } else {
    Send(0, {reinterpret_cast<const uint8_t*>(values.data()), bytes},
         /*tag=*/0x7ed);
  }
  Bcast({reinterpret_cast<uint8_t*>(values.data()), bytes}, 0);
}

}  // namespace nvm::minimpi

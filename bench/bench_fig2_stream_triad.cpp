// Figure 2 — STREAM TRIAD bandwidth with various placements of the A, B,
// C arrays on the NVM store, normalised to the DRAM-only run (=100).
//
// Paper: DRAM-only is ~62x faster than local-SSD placements and ~115x
// faster than remote-SSD placements; the exact factor varies little with
// which subset of arrays is on the SSD.
#include <cmath>

#include "bench_util.hpp"
#include "workloads/stream.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

struct Placement {
  const char* label;
  bool a, b, c;
};

constexpr Placement kPlacements[] = {
    {"A", true, false, false},   {"B", false, true, false},
    {"C", false, false, true},   {"A&B", true, true, false},
    {"B&C", false, true, true},  {"A&C", true, false, true},
};

StreamOptions BaseOptions() {
  StreamOptions o;
  o.array_bytes = ScaledBytes(2_GiB);  // 16 MiB (paper: 2 GiB/array)
  o.iterations = 10;                   // paper: 10
  o.threads = 8;                       // one 8-core node
  o.run_kernel = {false, false, false, true};  // TRIAD only
  return o;
}

TestbedOptions Bed(bool remote) {
  TestbedOptions to;
  to.benefactors = 16;
  to.remote_benefactors = remote;
  return to;
}

double RunTriad(bool remote, bool a, bool b, bool c) {
  Testbed tb(Bed(remote));
  auto o = BaseOptions();
  o.a_on_nvm = a;
  o.b_on_nvm = b;
  o.c_on_nvm = c;
  auto r = RunStream(tb, o);
  NVM_CHECK(r.verified, "TRIAD output verification failed");
  return r.mbps[static_cast<int>(StreamKernel::kTriad)];
}

}  // namespace

int main() {
  Title("Figure 2",
        "STREAM TRIAD bandwidth, normalised to DRAM-only = 100 "
        "(A[i] = B[i] + 3*C[i], 8 threads, 10 iterations)");
  Note("arrays scaled 2 GiB -> %s each (DESIGN.md scaling rule)",
       FormatBytes(ScaledBytes(2_GiB)).c_str());

  const double dram = RunTriad(false, false, false, false);

  Table t({"Arrays on SSD", "Local-SSD (norm.)", "Remote-SSD (norm.)",
           "Local MB/s", "Remote MB/s"});
  t.AddRow({"None", "100.00", "100.00", Fmt("%.0f", dram),
            Fmt("%.0f", dram)});
  JsonReport json("fig2_stream_triad");
  json.Add("dram_mbps", dram);
  double log_local = 0;
  double log_remote = 0;
  double min_local_gap = 1e30;
  int count = 0;
  for (const auto& p : kPlacements) {
    const double local = RunTriad(false, p.a, p.b, p.c);
    const double remote = RunTriad(true, p.a, p.b, p.c);
    t.AddRow({p.label, Fmt("%.2f", 100.0 * local / dram),
              Fmt("%.2f", 100.0 * remote / dram), Fmt("%.0f", local),
              Fmt("%.0f", remote)});
    std::string slug = p.label;
    for (auto& ch : slug) {
      if (ch == '&') ch = '_';
    }
    json.Add("local_" + slug + "_mbps", local);
    json.Add("remote_" + slug + "_mbps", remote);
    log_local += std::log(dram / local);
    log_remote += std::log(dram / remote);
    min_local_gap = std::min(min_local_gap, dram / local);
    ++count;
  }
  t.Print();
  const double gm_local = std::exp(log_local / count);
  const double gm_remote = std::exp(log_remote / count);

  Note("paper: DRAM-only beats local SSD by ~62x and remote SSD by ~115x");
  Note("measured geometric-mean gaps: local %.0fx, remote %.0fx "
       "(per-placement spread is wider here than in the paper: our model "
       "separates the read and write costs of each array)",
       gm_local, gm_remote);
  Shape(gm_local > 15 && gm_local < 150,
        "local-SSD STREAM slower than DRAM by tens of x (paper: 62x)");
  Shape(min_local_gap > 5,
        "every placement is many times slower than DRAM");

  // The remote-vs-local gap is probed with a single deterministic stream
  // (read-ahead off): at 8 threads both placements saturate on shared
  // queues and host-scheduling noise can mask the locality term.
  auto probe = [&](bool remote) {
    TestbedOptions to = Bed(remote);
    to.benefactors = 1;
    to.fuse.readahead = false;
    Testbed tb(to);
    auto o = BaseOptions();
    o.threads = 1;
    o.iterations = 3;
    o.c_on_nvm = true;
    auto r = RunStream(tb, o);
    NVM_CHECK(r.verified);
    return r.mbps[static_cast<int>(StreamKernel::kTriad)];
  };
  const double probe_local = probe(false);
  const double probe_remote = probe(true);
  Note("single-stream locality probe: local %.0f MB/s vs remote %.0f MB/s",
       probe_local, probe_remote);
  Shape(probe_remote < probe_local,
        "remote-SSD slower than local-SSD (paper: 115x vs 62x)");

  json.Add("gm_local_gap", gm_local);
  json.Add("gm_remote_gap", gm_remote);
  json.Add("probe_local_mbps", probe_local);
  json.Add("probe_remote_mbps", probe_remote);
  json.Print();
  return 0;
}

// Multi-tenant tail latency: does the QoS scheduler protect a
// latency-sensitive reader from an antagonist pile-up?
//
// Three tenants share one 4-benefactor store while the background
// maintenance service runs a real repair storm underneath them:
//   - tenant 0, "reader"    — the protected tenant: an open-loop 64 KiB
//     reader issuing one chunk read every 2 ms (a latency-sensitive
//     service), high priority + half the guaranteed bandwidth;
//   - tenant 2, "ckpt"      — a checkpoint-burst writer: every 100 ms it
//     dumps a burst of dirty chunks at once (the whole burst hits the
//     device queues together, exactly how app checkpoints behave);
//   - tenant 3, "chase"     — a Metall-style pointer chaser: dependent
//     random chunk reads (the next index comes out of the bytes just
//     read), closed loop with a small think time;
//   - tenant 1, maintenance — mid-run a benefactor is killed, so the
//     heartbeat detector triggers a repair storm over its replicas while
//     the periodic scrub keeps sweeping.
//
// Three phases measure the reader's read p99 from the store's own
// per-tenant histograms: unloaded baseline, the full antagonist mix with
// qos=off, and the same mix with qos=on.  SHAPE gates pin the claim: the
// mix degrades the unprotected reader's p99 by >= 5x, QoS holds it to
// <= 2x of baseline, and — because admission is work-conserving — both
// mixed runs move the same tenant bytes at aggregate throughput equal
// within 10%.
//
// `--quick` shrinks the run for CI smoke; every SHAPE check still
// executes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

using namespace nvm;
using namespace nvm::bench;

namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 4;
constexpr int64_t kMs = 1'000'000;

// Tenant ids (0 is store::kTenantForeground, 1 the maintenance tenant).
constexpr store::TenantId kReader = 0;
constexpr store::TenantId kCkpt = 2;
constexpr store::TenantId kChase = 3;

constexpr int64_t kReadPeriod = 2 * kMs;
constexpr int64_t kBurstPeriod = 100 * kMs;
constexpr int64_t kChaseThink = 1 * kMs;
constexpr uint32_t kReaderChunks = 64;
constexpr uint32_t kChaseChunks = 128;

// Scaled by --quick.
int g_reads = 2000;        // reader ops (x 2 ms = virtual duration)
int g_burst_chunks = 64;   // parallel writers per checkpoint burst
int g_chase_reads = 1200;  // pointer-chase ops

struct PhaseResult {
  int64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;  // reader read latency
  double aggregate_gbps = 0;  // tenant bytes / makespan (maintenance excl.)
  uint64_t tenant_bytes = 0;
  uint64_t repaired = 0;
};

PhaseResult RunPhase(bool antagonists, bool qos_on) {
  net::ClusterConfig cc;
  // Clients: reader on 0, four checkpoint writer nodes on 5..8 (one NIC
  // cannot saturate four SSDs; a real app checkpoint arrives from many
  // nodes at once), pointer chaser on 9.
  cc.num_nodes = kBenefactors + 6;
  net::Cluster cluster(cc);
  store::AggregateStoreConfig sc;
  sc.store.chunk_bytes = kChunk;
  sc.store.replication = 2;
  sc.store.maintenance = true;
  sc.store.heartbeat_period_ms = 5;
  sc.store.heartbeat_misses = 3;
  sc.store.scrub_period_ms = 250;
  sc.store.repair_bw_fraction = 0.5;  // the qos=off repair throttle
  sc.store.qos = qos_on;
  // The reader touches each individual device only every ~8 ms (one read
  // per 2 ms spread over 4 benefactors), and a checkpoint burst's paced
  // admissions run up to one burst-drain (~70 ms) ahead of the reader's
  // issue times; the contention window must cover both or a burst write
  // admitted "between" two reader visits sees an idle lane and books it
  // solid.  The reader is a long-lived registered service here, so a
  // generous window is the honest model.
  sc.store.qos_window_ms = 100;
  // A 2 ms token burst per lane lets ~4 checkpoint writes land back-to-
  // back on every device before pacing kicks in — a solid slab right at
  // the burst front, which is exactly the tail this scheduler exists to
  // shave.  Keep the allowance under one device write.
  sc.store.qos_burst_ms = 1;
  // Antagonist shares sum well below 1: what the guarantees leave idle is
  // the slack that drains a burst-front pile before the next reader read.
  sc.store.qos_tenants = {
      {kReader, /*weight=*/4.0, /*bw_share=*/0.5, /*priority=*/2},
      {store::kTenantMaintenance, 1.0, 0.12, 0},
      {kCkpt, 1.0, 0.15, 1},
      {kChase, 1.0, 0.08, 1},
  };
  for (int b = 0; b < kBenefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
  sc.contribution_bytes = 256_MiB;
  sc.manager_node = 1;
  store::AggregateStore store(cluster, sc);
  sim::CurrentClock().Reset();
  store::MaintenanceService& ms = *store.maintenance();

  store::StoreClient& reader = store.ClientForNode(0);
  store::StoreClient* ckpt[4];
  for (int n = 0; n < 4; ++n) {
    ckpt[n] = &store.ClientForNode(5 + n);
    ckpt[n]->SetTenant(kCkpt);
  }
  store::StoreClient& chase = store.ClientForNode(9);
  reader.SetTenant(kReader);
  chase.SetTenant(kChase);

  // Setup: each tenant populates its own file (setup writes land in the
  // write histograms, which the gates don't read).
  sim::VirtualClock setup(0);
  Bitmap all(kChunk / sc.store.page_bytes);
  all.SetAll();
  Xoshiro256 rng(97);
  std::vector<uint8_t> buf(kChunk);

  auto fill = [&](store::StoreClient& c, const std::string& name,
                  uint32_t chunks) {
    auto id = c.Create(setup, name);
    NVM_CHECK(id.ok());
    NVM_CHECK(c.Fallocate(setup, *id, chunks * kChunk).ok());
    for (uint32_t i = 0; i < chunks; ++i) {
      for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
      NVM_CHECK(c.WriteChunkPages(setup, *id, i, all, buf).ok());
    }
    return *id;
  };
  const store::FileId reader_file = fill(reader, "/hot", kReaderChunks);
  const store::FileId ckpt_file =
      fill(*ckpt[0], "/ckpt", static_cast<uint32_t>(g_burst_chunks));
  const store::FileId chase_file = fill(chase, "/graph", kChaseChunks);
  ms.RunUntil(setup.now() + 10 * kMs);

  // The measured run starts on a common origin after setup.
  const int64_t t0 = ms.now_ns();
  sim::VirtualClock reader_clock(t0), ckpt_clock(t0), chase_clock(t0);
  const int64_t kill_at = t0 + (static_cast<int64_t>(g_reads) / 4) * kReadPeriod;
  bool killed = !antagonists || std::getenv("NVM_QOS_NO_KILL") != nullptr;

  int reads_done = 0;
  int bursts_done = 0;
  const int bursts_total =
      (antagonists && std::getenv("NVM_QOS_NO_CKPT") == nullptr)
          ? static_cast<int>((static_cast<int64_t>(g_reads) * kReadPeriod) /
                             kBurstPeriod)
          : 0;
  int chase_done = 0;
  const int chase_total =
      (antagonists && std::getenv("NVM_QOS_NO_CHASE") == nullptr)
          ? g_chase_reads
          : 0;
  uint32_t chase_pos = 0;
  uint64_t tenant_bytes = 0;

  std::vector<uint8_t> rbuf(kChunk);
  while (reads_done < g_reads || bursts_done < bursts_total ||
         chase_done < chase_total) {
    // Next event per tenant, in virtual time.
    const int64_t t_read = reads_done < g_reads
                               ? t0 + static_cast<int64_t>(reads_done) *
                                          kReadPeriod
                               : INT64_MAX;
    const int64_t t_burst =
        bursts_done < bursts_total
            ? std::max(ckpt_clock.now(),
                       t0 + static_cast<int64_t>(bursts_done) * kBurstPeriod)
            : INT64_MAX;
    const int64_t t_chase =
        chase_done < chase_total ? chase_clock.now() : INT64_MAX;
    int64_t t_next = std::min({t_read, t_burst, t_chase});
    if (!killed && kill_at <= t_next) {
      // The victim stops answering; the heartbeat detector finds out and
      // floods the repair queue with its replicas.
      store.benefactor(kBenefactors - 1).Kill();
      killed = true;
      t_next = kill_at;
    }
    // Maintenance (heartbeats, scrub, the repair storm) catches up first,
    // interleaved with the tenants in virtual time.
    ms.RunUntil(t_next);

    if (t_next == t_read) {
      reader_clock.AdvanceTo(t_read);  // open loop: fixed issue grid
      NVM_CHECK(reader
                    .ReadChunk(reader_clock, reader_file,
                               static_cast<uint32_t>(
                                   reads_done % static_cast<int>(kReaderChunks)),
                               rbuf)
                    .ok());
      if (std::getenv("NVM_QOS_DEBUG") != nullptr &&
          reader_clock.now() - t_read > 4 * kMs) {
        std::fprintf(stderr, "  [slow qos=%d] t=%.1f ms read lat %.2f ms\n",
                     qos_on ? 1 : 0,
                     (double)(t_read - t0) / kMs,
                     (double)(reader_clock.now() - t_read) / kMs);
      }
      tenant_bytes += kChunk;
      ++reads_done;
    } else if (t_next == t_burst) {
      // The whole burst hits the queues at once: every chunk is written
      // by its own "rank" (a parallel clock starting at the burst
      // instant), the way application checkpoints actually arrive.  With
      // qos=off the pile books a contiguous slab of device time; with
      // qos=on per-chunk admission paces it out, leaving gaps the reader
      // backfills.
      int64_t burst_end = t_burst;
      for (int i = 0; i < g_burst_chunks; ++i) {
        for (size_t b = 0; b < 512; ++b) {
          buf[b] = static_cast<uint8_t>(rng.Next());
        }
        sim::VirtualClock rank_clock(t_burst);
        NVM_CHECK(ckpt[i % 4]
                      ->WriteChunkPages(rank_clock, ckpt_file,
                                        static_cast<uint32_t>(i), all, buf)
                      .ok());
        if (std::getenv("NVM_QOS_DEBUG") != nullptr && bursts_done == 0 &&
            antagonists && qos_on) {
          std::fprintf(stderr, "  [rank %02d] done at t=%.2f ms\n", i,
                       (double)(rank_clock.now() - t0) / kMs);
        }
        burst_end = std::max(burst_end, rank_clock.now());
        tenant_bytes += kChunk;
      }
      ckpt_clock.AdvanceTo(burst_end);
      ++bursts_done;
    } else {
      // Pointer chase: the next index depends on the bytes just read.
      NVM_CHECK(chase.ReadChunk(chase_clock, chase_file, chase_pos, rbuf).ok());
      uint32_t next = 0;
      std::memcpy(&next, rbuf.data(), sizeof(next));
      chase_pos = next % kChaseChunks;
      chase_clock.Advance(kChaseThink);
      tenant_bytes += kChunk;
      ++chase_done;
    }
  }
  const int64_t makespan =
      std::max({reader_clock.now(), ckpt_clock.now(), chase_clock.now()}) - t0;
  if (std::getenv("NVM_QOS_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "  [clocks qos=%d] reader %.1f ckpt %.1f chase %.1f ms\n",
                 qos_on ? 1 : 0, (double)(reader_clock.now() - t0) / kMs,
                 (double)(ckpt_clock.now() - t0) / kMs,
                 (double)(chase_clock.now() - t0) / kMs);
  }
  // Drain the repair storm (not part of tenant throughput).
  ms.RunUntil(ms.now_ns() + 200 * kMs);

  PhaseResult r;
  const store::QosStats qs = store.qos().Snapshot();
  if (std::getenv("NVM_QOS_DEBUG") != nullptr) {
    for (const auto& t : qs.tenants) {
      std::fprintf(stderr,
                   "  [debug] tenant %u: admitted %llu delayed %llu "
                   "delay %.1f ms reads %llu writes %llu rp99 %.0f us\n",
                   t.id, (unsigned long long)t.admitted,
                   (unsigned long long)t.delayed,
                   (double)t.delay_ns / 1e6, (unsigned long long)t.reads,
                   (unsigned long long)t.writes, (double)t.read_p99_ns / 1e3);
    }
  }
  for (const auto& t : qs.tenants) {
    if (t.id == kReader) {
      r.p50_ns = t.read_p50_ns;
      r.p99_ns = t.read_p99_ns;
      r.p999_ns = t.read_p999_ns;
    }
  }
  r.tenant_bytes = tenant_bytes;
  r.aggregate_gbps = static_cast<double>(tenant_bytes) /
                     (static_cast<double>(makespan) / 1e9) / 1e9;
  r.repaired = ms.stats().replicas_recreated;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (quick) {
    g_reads = 400;
    g_burst_chunks = 48;
    g_chase_reads = 300;
  }

  Title("QoS tail latency — antagonist mix vs a protected reader",
        Fmt("open-loop 64 KiB reader vs checkpoint bursts + pointer chaser "
            "+ repair storm + scrub over %d benefactors; %d reads",
            kBenefactors, g_reads));

  const PhaseResult base = RunPhase(/*antagonists=*/false, /*qos_on=*/false);
  const PhaseResult off = RunPhase(/*antagonists=*/true, /*qos_on=*/false);
  const PhaseResult on = RunPhase(/*antagonists=*/true, /*qos_on=*/true);

  auto us = [](int64_t ns) { return static_cast<double>(ns) / 1e3; };
  Table t({"phase", "read p50 (us)", "p99 (us)", "p999 (us)",
           "aggregate (GB/s)", "repaired"});
  t.AddRow({"reader alone", Fmt("%.0f", us(base.p50_ns)),
            Fmt("%.0f", us(base.p99_ns)), Fmt("%.0f", us(base.p999_ns)),
            Fmt("%.3f", base.aggregate_gbps), "0"});
  t.AddRow({"mix, qos=off", Fmt("%.0f", us(off.p50_ns)),
            Fmt("%.0f", us(off.p99_ns)), Fmt("%.0f", us(off.p999_ns)),
            Fmt("%.3f", off.aggregate_gbps),
            Fmt("%llu", static_cast<unsigned long long>(off.repaired))});
  t.AddRow({"mix, qos=on", Fmt("%.0f", us(on.p50_ns)),
            Fmt("%.0f", us(on.p99_ns)), Fmt("%.0f", us(on.p999_ns)),
            Fmt("%.3f", on.aggregate_gbps),
            Fmt("%llu", static_cast<unsigned long long>(on.repaired))});
  t.Print();

  const double off_ratio =
      static_cast<double>(off.p99_ns) / static_cast<double>(base.p99_ns);
  const double on_ratio =
      static_cast<double>(on.p99_ns) / static_cast<double>(base.p99_ns);
  const double thr_delta =
      std::abs(on.aggregate_gbps - off.aggregate_gbps) / off.aggregate_gbps;
  Note("same tenant demand both mixed runs: %llu MiB",
       static_cast<unsigned long long>(off.tenant_bytes >> 20));

  bool ok = true;
  ok &= Shape(off_ratio >= 5.0,
              "unprotected reader p99 degrades >= 5x under the mix "
              "(%.1fx: %.0f -> %.0f us)",
              off_ratio, us(base.p99_ns), us(off.p99_ns));
  ok &= Shape(on_ratio <= 2.0,
              "QoS holds the protected reader p99 to <= 2x baseline "
              "(%.2fx: %.0f -> %.0f us)",
              on_ratio, us(base.p99_ns), us(on.p99_ns));
  ok &= Shape(off.tenant_bytes == on.tenant_bytes && thr_delta <= 0.10,
              "work-conserving: same tenant bytes at aggregate throughput "
              "within 10%% (%.3f vs %.3f GB/s, %.1f%%)",
              off.aggregate_gbps, on.aggregate_gbps, 100.0 * thr_delta);
  ok &= Shape(off.repaired > 0 && on.repaired > 0,
              "the repair storm really ran in both mixed phases "
              "(%llu / %llu replicas recreated)",
              static_cast<unsigned long long>(off.repaired),
              static_cast<unsigned long long>(on.repaired));

  JsonReport json("qos_tail");
  json.Add("quick", quick);
  json.Add("base_p99_us", us(base.p99_ns));
  json.Add("off_p99_us", us(off.p99_ns));
  json.Add("on_p99_us", us(on.p99_ns));
  json.Add("off_p999_us", us(off.p999_ns));
  json.Add("on_p999_us", us(on.p999_ns));
  json.Add("off_ratio", off_ratio);
  json.Add("on_ratio", on_ratio);
  json.Add("off_aggregate_gbps", off.aggregate_gbps);
  json.Add("on_aggregate_gbps", on.aggregate_gbps);
  json.Add("thr_delta_frac", thr_delta);
  json.Add("shape_ok", ok);
  json.Print();
  return ok ? 0 : 1;
}

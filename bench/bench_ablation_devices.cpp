// Device ablation — what if the cluster had PCIe flash instead of SATA?
//
// The paper's introduction argues that PCIe devices (FusionIO ioDrive Duo,
// OCZ RevoDrive) narrow the DRAM gap: "interfaces such as PCIe offer much
// lower latency", while remaining "at least 8.53 times lower than DRAM
// rates".  This bench swaps the benefactor SSD model (Table I profiles)
// under the STREAM TRIAD and MM workloads and quantifies how much of the
// NVMalloc overhead each device class removes.
#include <cmath>

#include "bench_util.hpp"
#include "workloads/matmul.hpp"
#include "workloads/stream.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

// TRIAD with C on the SSD.  `striped`: 16 benefactors behind the NIC
// (network-bound); otherwise one node-local benefactor (device-bound).
double TriadWith(const sim::DeviceProfile& profile, bool striped) {
  TestbedOptions to;
  to.benefactors = striped ? 16 : 1;
  to.ssd_profile = profile;
  Testbed tb(to);
  StreamOptions o;
  o.array_bytes = ScaledBytes(2_GiB);
  o.iterations = 5;
  o.threads = 1;  // deterministic, single stream
  o.c_on_nvm = true;
  o.run_kernel = {false, false, false, true};
  auto r = RunStream(tb, o);
  NVM_CHECK(r.verified);
  return r.mbps[static_cast<int>(StreamKernel::kTriad)];
}

double MmTotalWith(const sim::DeviceProfile& profile) {
  TestbedOptions to = MatmulTestbedOptions(16, false);
  to.ssd_profile = profile;
  Testbed tb(to);
  MatmulOptions o;
  auto r = RunMatmul(tb, o);
  NVM_CHECK(r.verified);
  return r.total_s;
}

}  // namespace

int main() {
  Title("Device ablation",
        "Table I device classes under STREAM TRIAD (B&C on SSD) and MM "
        "L-SSD(8:16:16)");

  struct Row {
    const char* name;
    const sim::DeviceProfile& profile;
  } devices[] = {
      {"Intel X25-E (SLC SATA)", sim::IntelX25E()},
      {"OCZ RevoDrive (MLC PCIe)", sim::OczRevoDrive()},
      {"ioDrive Duo (MLC PCIe)", sim::FusionIoDriveDuo()},
  };

  Table t({"Benefactor device", "TRIAD local MB/s", "TRIAD striped MB/s",
           "MM total (s)", "$ per benefactor"});
  double local_sata = 0, local_fusion = 0;
  double striped_sata = 0, striped_fusion = 0;
  double mm_sata = 0, mm_fusion = 0;
  for (const auto& d : devices) {
    const double local = TriadWith(d.profile, false);
    const double striped = TriadWith(d.profile, true);
    const double mm = MmTotalWith(d.profile);
    if (&d.profile == &sim::IntelX25E()) {
      local_sata = local;
      striped_sata = striped;
      mm_sata = mm;
    }
    if (&d.profile == &sim::FusionIoDriveDuo()) {
      local_fusion = local;
      striped_fusion = striped;
      mm_fusion = mm;
    }
    t.AddRow({d.name, Fmt("%.0f", local), Fmt("%.0f", striped),
              Fmt("%.2f", mm), Fmt("$%.0f", d.profile.cost_usd)});
  }
  t.Print();

  Note("node-local access: PCIe flash lifts the device-bound stream "
       "%.1fx over SATA; striped access gains only %.1fx — the bonded-"
       "GigE hop now dominates the path, so upgrading the flash without "
       "the network buys much less for remote access",
       local_fusion / local_sata, striped_fusion / striped_sata);
  Note("compute-bound MM moves only %.0f%% — the paper's thesis that the "
       "cache hierarchy already hides SATA latency where it matters",
       100.0 * (mm_sata - mm_fusion) / mm_sata);
  Shape(local_fusion > 2.0 * local_sata,
        "PCIe flash strongly accelerates device-bound local streaming");
  Shape(striped_fusion / striped_sata < 0.75 * local_fusion / local_sata,
        "the network hop damps the device upgrade for striped access");
  Shape(std::abs(mm_sata - mm_fusion) / mm_sata < 0.5,
        "compute-bound MM gains far less: caches already hide the SATA "
        "latency (paper SIV-B-2)");
  return 0;
}

// Micro-benchmarks (google-benchmark): real wall-clock cost of the
// simulation substrate's hot paths — these bound how fast the bench suite
// and any larger experiments can run.
#include <benchmark/benchmark.h>

#include "common/bitmap.hpp"
#include "common/rng.hpp"
#include "fuselite/mount.hpp"
#include "nvmalloc/runtime.hpp"
#include "sim/resource.hpp"

namespace {

using namespace nvm;

void BM_ResourceSchedule(benchmark::State& state) {
  sim::Resource r("dev");
  int64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Schedule(t, 1000));
    t += 500;
  }
}
BENCHMARK(BM_ResourceSchedule);

void BM_XoshiroNext(benchmark::State& state) {
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_XoshiroNext);

void BM_BitmapForEachSet(benchmark::State& state) {
  Bitmap bm(4096);
  for (size_t i = 0; i < 4096; i += 7) bm.Set(i);
  for (auto _ : state) {
    size_t sum = 0;
    bm.ForEachSet([&](size_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitmapForEachSet);

struct CacheFixtureState {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;
  std::unique_ptr<NvmallocRuntime> runtime;
  NvmRegion* region = nullptr;

  CacheFixtureState() {
    net::ClusterConfig cc;
    cc.num_nodes = 2;
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.benefactor_nodes = {1};
    sc.contribution_bytes = 256_MiB;
    sc.manager_node = 1;
    sc.store.chunk_bytes = 64_KiB;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    runtime = std::make_unique<NvmallocRuntime>(*store, 0);
    auto r = runtime->SsdMalloc(8_MiB);
    NVM_CHECK(r.ok());
    region = *r;
  }
};

void BM_CacheHitRead(benchmark::State& state) {
  CacheFixtureState fx;
  std::vector<uint8_t> buf(4_KiB);
  NVM_CHECK(fx.runtime->mount().cache().Read(sim::CurrentClock(),
                                             fx.region->file_id(), 0, buf)
                .ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.runtime->mount().cache().Read(
        sim::CurrentClock(), fx.region->file_id(), 0, buf));
  }
}
BENCHMARK(BM_CacheHitRead);

void BM_RegionResidentPin(benchmark::State& state) {
  CacheFixtureState fx;
  (void)fx.region->Pin(0, 4_KiB, false);
  for (auto _ : state) {
    auto p = fx.region->Pin(0, 4_KiB, false);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_RegionResidentPin);

void BM_RegionColdFaultCycle(benchmark::State& state) {
  CacheFixtureState fx;
  uint64_t off = 0;
  std::vector<uint8_t> buf(4_KiB, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.region->Write(off, buf));
    off = (off + 4_KiB) % 8_MiB;
  }
}
BENCHMARK(BM_RegionColdFaultCycle);

}  // namespace

BENCHMARK_MAIN();

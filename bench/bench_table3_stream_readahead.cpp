// Table III — STREAM bandwidth with array C on the local SSD, with and
// without NVMalloc.
//
// Paper: accesses *through NVMalloc* are faster than raw mmap on a local
// SSD file system, because NVMalloc adds a FUSE-level cache with 256 KB
// chunked read-ahead, beating the kernel's smaller read-ahead window.
// We model "w/o NVMalloc" as kernel mmap with a 128 KiB read window
// (scaled: half our chunk) and no asynchronous read-ahead overlap.
#include "bench_util.hpp"
#include "workloads/stream.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

StreamOptions BaseOptions() {
  StreamOptions o;
  o.array_bytes = ScaledBytes(2_GiB);
  o.iterations = 10;
  o.threads = 8;
  o.c_on_nvm = true;  // array C on the local SSD
  return o;
}

StreamResult RunMode(bool with_nvmalloc) {
  TestbedOptions to;
  to.benefactors = 1;  // node-local SSD only
  if (!with_nvmalloc) {
    // Kernel-mmap stand-in: half-size fetch granularity, synchronous.
    to.store.chunk_bytes = 32_KiB;
    to.fuse.readahead = false;
  }
  Testbed tb(to);
  auto r = RunStream(tb, BaseOptions());
  NVM_CHECK(r.verified);
  return r;
}

}  // namespace

int main() {
  Title("Table III",
        "STREAM bandwidth (MB/s), array C on local SSD, w/ vs w/o NVMalloc");
  auto with = RunMode(true);
  auto without = RunMode(false);

  Table t({"STREAM Kernel", "COPY", "SCALE", "ADD", "TRIAD"});
  auto row = [&](const char* label, const StreamResult& r) {
    t.AddRow({label, Fmt("%.1f", r.mbps[0]), Fmt("%.1f", r.mbps[1]),
              Fmt("%.1f", r.mbps[2]), Fmt("%.1f", r.mbps[3])});
  };
  row("w/ NVMalloc", with);
  row("w/o NVMalloc", without);
  t.Print();

  Note("paper (MB/s): w/ NVMalloc 211/187/198/189; w/o 153/137/149/147 "
       "(~1.3x advantage for NVMalloc)");
  bool all_faster = true;
  for (int k = 0; k < 4; ++k) {
    if (with.mbps[static_cast<size_t>(k)] <=
        without.mbps[static_cast<size_t>(k)]) {
      all_faster = false;
    }
  }
  Shape(all_faster,
        "NVMalloc's chunked caching+read-ahead beats raw SSD mmap on "
        "every kernel");
  Shape(with.mbps[3] / without.mbps[3] > 1.05 &&
            with.mbps[3] / without.mbps[3] < 2.5,
        "advantage is a modest factor (paper: ~1.3x), not orders of "
        "magnitude");

  JsonReport json("table3_stream_readahead");
  const char* kernels[] = {"copy", "scale", "add", "triad"};
  for (size_t k = 0; k < 4; ++k) {
    json.Add(std::string("with_nvmalloc_") + kernels[k] + "_mbps",
             with.mbps[k]);
    json.Add(std::string("without_nvmalloc_") + kernels[k] + "_mbps",
             without.mbps[k]);
  }
  json.Add("triad_advantage", with.mbps[3] / without.mbps[3]);
  json.Print();
  return 0;
}

// Table III — STREAM bandwidth with array C on the local SSD, with and
// without NVMalloc.
//
// Paper: accesses *through NVMalloc* are faster than raw mmap on a local
// SSD file system, because NVMalloc adds a FUSE-level cache with 256 KB
// chunked read-ahead, beating the kernel's smaller read-ahead window.
// We model "w/o NVMalloc" as kernel mmap with a 128 KiB read window
// (scaled: half our chunk) and no asynchronous read-ahead overlap.
#include <atomic>

#include "bench_util.hpp"
#include "store/store.hpp"
#include "workloads/stream.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

StreamOptions BaseOptions() {
  StreamOptions o;
  o.array_bytes = ScaledBytes(2_GiB);
  o.iterations = 10;
  o.threads = 8;
  o.c_on_nvm = true;  // array C on the local SSD
  return o;
}

StreamResult RunMode(bool with_nvmalloc) {
  TestbedOptions to;
  to.benefactors = 1;  // node-local SSD only
  if (!with_nvmalloc) {
    // Kernel-mmap stand-in: half-size fetch granularity, synchronous.
    to.store.chunk_bytes = 32_KiB;
    to.fuse.readahead = false;
  }
  Testbed tb(to);
  auto r = RunStream(tb, BaseOptions());
  NVM_CHECK(r.verified);
  return r;
}

// Aggregate read bandwidth vs stripe width, batch_rpc on/off: W clients
// each batch-read their own 64-chunk file striped over W benefactors,
// straight through StoreClient::ReadChunks (no fuselite cache in the way).
// With batch_rpc on, each 32-chunk batch costs one run per benefactor
// instead of one request per chunk, amortising the per-request SSD
// latency that bounds the legacy path.
double AggregateReadMbps(size_t width, bool batch_rpc) {
  constexpr uint64_t kChunkB = 64_KiB;
  constexpr uint32_t kChunksPerFile = 64;
  constexpr uint32_t kBatch = 32;

  net::ClusterConfig cc;
  cc.num_nodes = 2 * width;  // clients 0..W-1, benefactors W..2W-1
  net::Cluster cluster(cc);
  store::AggregateStoreConfig sc;
  sc.store.chunk_bytes = kChunkB;
  sc.store.batch_rpc = batch_rpc;
  for (size_t b = 0; b < width; ++b) {
    sc.benefactor_nodes.push_back(static_cast<int>(width + b));
  }
  sc.contribution_bytes = 64_MiB;
  sc.manager_node = static_cast<int>(width);
  store::AggregateStore store(cluster, sc);

  std::vector<store::FileId> ids(width);
  for (size_t n = 0; n < width; ++n) {
    sim::VirtualClock setup(0);
    auto& c = store.ClientForNode(static_cast<int>(n));
    auto id = c.Create(setup, "/f" + std::to_string(n));
    NVM_CHECK(id.ok());
    NVM_CHECK(c.Fallocate(setup, *id, kChunksPerFile * kChunkB).ok());
    Bitmap all(kChunkB / c.config().page_bytes);
    all.SetAll();
    std::vector<uint8_t> img(kChunkB, static_cast<uint8_t>(n + 1));
    for (uint32_t i = 0; i < kChunksPerFile; ++i) {
      NVM_CHECK(c.WriteChunkPages(setup, *id, i, all, img).ok());
    }
    ids[n] = *id;
  }

  // Measure in clean timeline territory, past all setup history on the
  // shared NIC/SSD resources.
  constexpr int64_t kEpoch = 4'000'000'000'000;
  std::atomic<int64_t> done{kEpoch};
  auto placement = cluster.BlockPlacement(1, width);
  cluster.RunProcesses(placement, [&](net::ProcessEnv& env) {
    env.clock->AdvanceTo(kEpoch);
    auto& c = store.ClientForNode(env.node_id);
    int64_t last = kEpoch;
    for (uint32_t first = 0; first < kChunksPerFile; first += kBatch) {
      std::vector<std::vector<uint8_t>> bufs(kBatch,
                                             std::vector<uint8_t>(kChunkB));
      std::vector<store::StoreClient::ChunkFetch> fetches(kBatch);
      for (uint32_t j = 0; j < kBatch; ++j) {
        fetches[j].index = first + j;
        fetches[j].out = bufs[j];
      }
      NVM_CHECK(c.ReadChunks(*env.clock, ids[static_cast<size_t>(env.rank)],
                             fetches)
                    .ok());
      for (const auto& f : fetches) {
        NVM_CHECK(f.status.ok());
        last = std::max(last, f.ready_at);
      }
      env.clock->AdvanceTo(last);
    }
    int64_t prev = done.load();
    while (prev < last && !done.compare_exchange_weak(prev, last)) {
    }
  });

  const double seconds = static_cast<double>(done.load() - kEpoch) * 1e-9;
  const double total_bytes =
      static_cast<double>(width) * kChunksPerFile * kChunkB;
  return total_bytes / 1e6 / seconds;
}

}  // namespace

int main() {
  Title("Table III",
        "STREAM bandwidth (MB/s), array C on local SSD, w/ vs w/o NVMalloc");
  auto with = RunMode(true);
  auto without = RunMode(false);

  Table t({"STREAM Kernel", "COPY", "SCALE", "ADD", "TRIAD"});
  auto row = [&](const char* label, const StreamResult& r) {
    t.AddRow({label, Fmt("%.1f", r.mbps[0]), Fmt("%.1f", r.mbps[1]),
              Fmt("%.1f", r.mbps[2]), Fmt("%.1f", r.mbps[3])});
  };
  row("w/ NVMalloc", with);
  row("w/o NVMalloc", without);
  t.Print();

  Note("paper (MB/s): w/ NVMalloc 211/187/198/189; w/o 153/137/149/147 "
       "(~1.3x advantage for NVMalloc)");
  bool all_faster = true;
  for (int k = 0; k < 4; ++k) {
    if (with.mbps[static_cast<size_t>(k)] <=
        without.mbps[static_cast<size_t>(k)]) {
      all_faster = false;
    }
  }
  Shape(all_faster,
        "NVMalloc's chunked caching+read-ahead beats raw SSD mmap on "
        "every kernel");
  Shape(with.mbps[3] / without.mbps[3] > 1.05 &&
            with.mbps[3] / without.mbps[3] < 2.5,
        "advantage is a modest factor (paper: ~1.3x), not orders of "
        "magnitude");

  JsonReport json("table3_stream_readahead");
  const char* kernels[] = {"copy", "scale", "add", "triad"};
  for (size_t k = 0; k < 4; ++k) {
    json.Add(std::string("with_nvmalloc_") + kernels[k] + "_mbps",
             with.mbps[k]);
    json.Add(std::string("without_nvmalloc_") + kernels[k] + "_mbps",
             without.mbps[k]);
  }
  json.Add("triad_advantage", with.mbps[3] / without.mbps[3]);

  // Companion sweep: the benefactor-side run RPC's effect on aggregate
  // striped read bandwidth.
  Table sweep({"Stripe width", "batch_rpc=off MB/s", "batch_rpc=on MB/s",
               "speedup"});
  bool wide_improved = true;
  for (size_t w : {1u, 4u, 8u, 16u}) {
    const double off = AggregateReadMbps(w, false);
    const double on = AggregateReadMbps(w, true);
    sweep.AddRow({Fmt("%zu", w), Fmt("%.1f", off), Fmt("%.1f", on),
                  Fmt("%.2fx", on / off)});
    json.Add("stripe" + std::to_string(w) + "_batchrpc_off_mbps", off);
    json.Add("stripe" + std::to_string(w) + "_batchrpc_on_mbps", on);
    if (w >= 4 && on <= off) wide_improved = false;
  }
  sweep.Print();
  Shape(wide_improved,
        "one run per benefactor lifts aggregate read bandwidth at stripe "
        "widths >= 4 (per-request SSD latency amortised)");

  json.Print();
  return 0;
}

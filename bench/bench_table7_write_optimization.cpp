// Table VII — NVMalloc's dirty-page write-back optimisation under a
// random-write synthetic workload (128 K byte-granularity writes to
// random addresses of an SSD-resident variable).
//
// Paper: with the optimisation, 467 MB to FUSE / 504 MB to SSD; without,
// 471 MB to FUSE but 19.3 GB to SSD (whole 256 KB chunks shipped per
// eviction) — a ~38x write-volume reduction, which also saves flash wear.
#include "bench_util.hpp"
#include "workloads/randwrite.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

RandWriteResult RunMode(bool optimised, uint64_t* wear_writes) {
  TestbedOptions to;
  to.fuse.dirty_page_writeback = optimised;
  Testbed tb(to);
  RandWriteOptions o;  // 16 MiB region (2 GiB-class), 131072 writes
  auto r = RunRandWrite(tb, o);
  *wear_writes = tb.cluster().TotalSsdBytesWritten();
  return r;
}

}  // namespace

int main() {
  Title("Table VII",
        "random byte-writes (131072 into a 2 GiB-class region): data "
        "written to FUSE vs SSD, w/ and w/o dirty-page write-back");

  uint64_t wear_with = 0;
  uint64_t wear_without = 0;
  auto with = RunMode(true, &wear_with);
  auto without = RunMode(false, &wear_without);
  NVM_CHECK(with.verified && without.verified);

  auto mb = [](uint64_t b) {
    return Fmt("%.1f MB", static_cast<double>(b) / 1e6);
  };
  Table t({"NVMalloc write optimization", "Data Written to FUSE",
           "Data Written to SSD"});
  t.AddRow({"w/ Optimization", mb(with.bytes_to_fuse),
            mb(with.bytes_to_ssd)});
  t.AddRow({"w/o Optimization", mb(without.bytes_to_fuse),
            mb(without.bytes_to_ssd)});
  t.Print();

  const double reduction = static_cast<double>(without.bytes_to_ssd) /
                           static_cast<double>(with.bytes_to_ssd);
  Note("paper: 467/504 MB optimised vs 471 MB/19.3 GB raw (38x); "
       "measured SSD-write reduction %.1fx (chunk:page = %d:1 here vs "
       "64:1 in the paper)",
       reduction, 16);
  Note("device-level write volume (wear proxy): %s optimised vs %s raw",
       FormatBytes(wear_with).c_str(), FormatBytes(wear_without).c_str());
  Shape(reduction > 4.0,
        "dirty-page write-back cuts SSD write volume by a large factor");
  const double fuse_ratio = static_cast<double>(without.bytes_to_fuse) /
                            static_cast<double>(with.bytes_to_fuse);
  Shape(fuse_ratio > 0.8 && fuse_ratio < 1.25,
        "FUSE-level traffic is essentially unchanged (paper: 467 vs 471 "
        "MB)");
  Shape(wear_without > 2 * wear_with,
        "the optimisation also reduces flash wear (device write volume)");
  return 0;
}

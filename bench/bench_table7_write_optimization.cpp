// Table VII — NVMalloc's dirty-page write-back optimisation under a
// random-write synthetic workload (128 K byte-granularity writes to
// random addresses of an SSD-resident variable).
//
// Paper: with the optimisation, 467 MB to FUSE / 504 MB to SSD; without,
// 471 MB to FUSE but 19.3 GB to SSD (whole 256 KB chunks shipped per
// eviction) — a ~38x write-volume reduction, which also saves flash wear.
//
// This bench also compares the batched write-back run RPC
// (batch_write_rpc) against per-chunk write RPCs: identical bytes on the
// wire and SSD, fewer request headers and SSD queueing slots.
#include "bench_util.hpp"
#include "workloads/randwrite.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

struct ModeStats {
  RandWriteResult result;
  uint64_t wear_writes = 0;
  uint64_t write_requests = 0;
  uint64_t flush_batches = 0;
};

ModeStats RunMode(bool optimised, bool batch_write_rpc) {
  TestbedOptions to;
  to.fuse.dirty_page_writeback = optimised;
  to.store.batch_write_rpc = batch_write_rpc;
  Testbed tb(to);
  RandWriteOptions o;  // 16 MiB region (2 GiB-class), 131072 writes
  ModeStats s;
  s.result = RunRandWrite(tb, o);
  s.wear_writes = tb.cluster().TotalSsdBytesWritten();
  for (size_t b = 0; b < tb.store().num_benefactors(); ++b) {
    s.write_requests += tb.store().benefactor(b).write_requests();
  }
  for (size_t n = 0; n < to.compute_nodes; ++n) {
    s.flush_batches += tb.runtime(static_cast<int>(n))
                           .mount()
                           .cache()
                           .traffic()
                           .flush_batches.load();
  }
  return s;
}

}  // namespace

int main() {
  Title("Table VII",
        "random byte-writes (131072 into a 2 GiB-class region): data "
        "written to FUSE vs SSD, w/ and w/o dirty-page write-back");

  auto with = RunMode(true, true);
  auto without = RunMode(false, true);
  auto with_unbatched = RunMode(true, false);
  NVM_CHECK(with.result.verified && without.result.verified &&
            with_unbatched.result.verified);

  auto mb = [](uint64_t b) {
    return Fmt("%.1f MB", static_cast<double>(b) / 1e6);
  };
  Table t({"NVMalloc write optimization", "Data Written to FUSE",
           "Data Written to SSD", "Write RPCs"});
  auto count = [](uint64_t v) {
    return Fmt("%llu", static_cast<unsigned long long>(v));
  };
  t.AddRow({"w/ Optimization", mb(with.result.bytes_to_fuse),
            mb(with.result.bytes_to_ssd), count(with.write_requests)});
  t.AddRow({"w/o Optimization", mb(without.result.bytes_to_fuse),
            mb(without.result.bytes_to_ssd), count(without.write_requests)});
  t.AddRow({"w/ Opt, per-chunk RPC", mb(with_unbatched.result.bytes_to_fuse),
            mb(with_unbatched.result.bytes_to_ssd),
            count(with_unbatched.write_requests)});
  t.Print();

  const double reduction = static_cast<double>(without.result.bytes_to_ssd) /
                           static_cast<double>(with.result.bytes_to_ssd);
  Note("paper: 467/504 MB optimised vs 471 MB/19.3 GB raw (38x); "
       "measured SSD-write reduction %.1fx (chunk:page = %d:1 here vs "
       "64:1 in the paper)",
       reduction, 16);
  Note("device-level write volume (wear proxy): %s optimised vs %s raw",
       FormatBytes(with.wear_writes).c_str(),
       FormatBytes(without.wear_writes).c_str());
  Note("batched write-back: %llu write requests over %llu multi-chunk "
       "runs vs %llu per-chunk requests for identical SSD bytes",
       static_cast<unsigned long long>(with.write_requests),
       static_cast<unsigned long long>(with.flush_batches),
       static_cast<unsigned long long>(with_unbatched.write_requests));
  Shape(reduction > 4.0,
        "dirty-page write-back cuts SSD write volume by a large factor");
  const double fuse_ratio =
      static_cast<double>(without.result.bytes_to_fuse) /
      static_cast<double>(with.result.bytes_to_fuse);
  Shape(fuse_ratio > 0.8 && fuse_ratio < 1.25,
        "FUSE-level traffic is essentially unchanged (paper: 467 vs 471 "
        "MB)");
  Shape(without.wear_writes > 2 * with.wear_writes,
        "the optimisation also reduces flash wear (device write volume)");
  Shape(with.write_requests <= with_unbatched.write_requests &&
            with.result.bytes_to_ssd == with_unbatched.result.bytes_to_ssd,
        "batching write-back runs never increases request count and "
        "leaves SSD write volume unchanged");

  JsonReport j("table7_write_optimization");
  j.Add("fuse_bytes_opt", with.result.bytes_to_fuse);
  j.Add("ssd_bytes_opt", with.result.bytes_to_ssd);
  j.Add("fuse_bytes_raw", without.result.bytes_to_fuse);
  j.Add("ssd_bytes_raw", without.result.bytes_to_ssd);
  j.Add("ssd_write_reduction", reduction);
  j.Add("wear_bytes_opt", with.wear_writes);
  j.Add("wear_bytes_raw", without.wear_writes);
  j.Add("write_rpcs_batched", with.write_requests);
  j.Add("write_rpcs_unbatched", with_unbatched.write_requests);
  j.Add("flush_batches", with.flush_batches);
  j.Add("seconds_batched", with.result.seconds);
  j.Add("seconds_unbatched", with_unbatched.result.seconds);
  j.Print();
  return 0;
}

// Table IV — data exchanged between application, FUSE and SSD store for
// matrix B during the compute phase, row- versus column-major access
// (L-SSD(8:16:16)).
//
// Paper (GB): row-major 34.33 app / 2.69 FUSE / 2.27 SSD;
//             column-major 34.33 app / 60.15 FUSE / 470.13 SSD.
// The shape: with good locality the cache hierarchy collapses tens of GB
// of application accesses into ~one pass over B; with column-major access
// the SSD traffic *explodes past the application traffic* itself.
#include "bench_mm_common.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

int main() {
  Title("Table IV",
        "B-matrix traffic during MM compute, L-SSD(8:16:16), row vs "
        "column major");

  const MmConfig config{8, 16, 16, false};
  MatmulOptions base;

  auto row = RunMmConfig(config, base);
  auto col_opts = base;
  col_opts.column_major = true;
  auto col = RunMmConfig(config, col_opts);
  NVM_CHECK(row.verified && col.verified);

  auto gb = [](uint64_t bytes) {
    return Fmt("%.3f", static_cast<double>(bytes) / 1e9);
  };
  Table t({"Access Pattern of B", "Aggregated Accesses to B (GB)",
           "Request to FUSE (GB)", "Request to SSD (GB)"});
  t.AddRow({"Row-major", gb(row.app_b_bytes), gb(row.fuse_b_bytes),
            gb(row.ssd_b_bytes)});
  t.AddRow({"Column-major", gb(col.app_b_bytes), gb(col.fuse_b_bytes),
            gb(col.ssd_b_bytes)});
  t.Print();

  Note("paper (GB): row 34.33/2.69/2.27; col 34.33/60.15/470.13 — "
       "volumes here are scaled down ~512x, the ratios are the result");
  Shape(row.app_b_bytes == col.app_b_bytes,
        "application-level access volume is identical for both orders");
  Shape(row.app_b_bytes > 5 * row.fuse_b_bytes,
        "row-major: caching collapses app accesses (paper: 34.3 -> 2.7 GB)");
  Shape(row.ssd_b_bytes <= row.fuse_b_bytes * 2,
        "row-major: SSD traffic is about one pass over B");
  Shape(col.ssd_b_bytes > 5 * row.ssd_b_bytes,
        "column-major: SSD traffic explodes (paper: 207x row-major)");
  Shape(col.fuse_b_bytes > row.fuse_b_bytes,
        "column-major also inflates page traffic to FUSE");
  return 0;
}

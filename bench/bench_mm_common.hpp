// Shared helpers for the matrix-multiplication benchmarks (Figs. 3-6,
// Tables IV-V): the paper's (x:y:z) configuration notation and a runner
// that assembles the matching testbed.
#pragma once

#include "bench_util.hpp"
#include "workloads/matmul.hpp"

namespace nvm::bench {

struct MmConfig {
  size_t x;        // processes per node
  size_t y;        // compute nodes
  size_t z;        // SSD benefactors (0 = DRAM-only)
  bool remote;     // benefactors on non-compute nodes
};

inline std::string MmLabel(const MmConfig& c) {
  return workloads::ConfigLabel(c.z > 0, c.remote, c.x, c.y, c.z);
}

inline workloads::MatmulResult RunMmConfig(
    const MmConfig& c, workloads::MatmulOptions options) {
  workloads::TestbedOptions to =
      workloads::MatmulTestbedOptions(c.z, c.remote);
  options.b_on_nvm = c.z > 0;
  options.procs_per_node = c.x;
  options.nodes = c.y;
  workloads::Testbed tb(to);
  return workloads::RunMatmul(tb, options);
}

inline void AddMmRow(Table& t, const MmConfig& c,
                     const workloads::MatmulResult& r) {
  if (!r.feasible) {
    t.AddRow({MmLabel(c), "-", "-", "-", "-", "-", "infeasible (DRAM)"});
    return;
  }
  t.AddRow({MmLabel(c), Fmt("%.2f", r.input_split_a_s),
            Fmt("%.2f", r.input_b_s), Fmt("%.2f", r.broadcast_b_s),
            Fmt("%.2f", r.compute_s), Fmt("%.2f", r.collect_output_c_s),
            Fmt("%.2f%s", r.total_s, r.verified ? "" : " (UNVERIFIED!)")});
}

inline std::vector<std::string> MmHeaders() {
  return {"Config",      "Input&Split-A", "Input-B", "Broadcast-B",
          "Computing",   "Collect&Out-C", "Total (s)"};
}

}  // namespace nvm::bench

// Table I — device characteristics.
//
// Prints the modelled device profiles (they ARE the paper's Table I
// numbers) plus the derived quantities the paper's argument rests on:
// the DRAM : SSD bandwidth gap and the $/GB ordering.
#include "bench_util.hpp"
#include "sim/device.hpp"

using namespace nvm;
using namespace nvm::bench;

int main() {
  Title("Table I", "device characteristics (October 2011 market data)");
  Table t({"Device", "Type", "Interface", "Read", "Write", "Latency",
           "Cap.", "Cost", "$/GB"});
  for (const auto* p : sim::TableIDevices()) {
    const char* media = p->media == sim::MediaType::kSlcFlash   ? "SLC"
                        : p->media == sim::MediaType::kMlcFlash ? "MLC"
                                                                : "SDRAM";
    const char* iface = p->interface == sim::InterfaceType::kSata   ? "SATA"
                        : p->interface == sim::InterfaceType::kPcie ? "PCIe"
                                                                    : "DIMM";
    t.AddRow({p->name, media, iface,
              Fmt("%.0f MB/s", p->read_bw_mbps),
              Fmt("%.0f MB/s", p->write_bw_mbps),
              FormatDuration(p->read_latency_ns),
              FormatBytes(p->capacity_bytes), Fmt("$%.0f", p->cost_usd),
              Fmt("$%.2f", p->cost_usd /
                               (static_cast<double>(p->capacity_bytes) /
                                1e9))});
  }
  t.Print();

  const double dram_bw = sim::Ddr3_1600().read_bw_mbps;
  const double x25e_bw = sim::IntelX25E().read_bw_mbps;
  const double fusion_bw = sim::FusionIoDriveDuo().read_bw_mbps;
  Note("DRAM : X25-E read-bandwidth gap = %.1fx (paper: \"at least a "
       "factor of 40\")",
       dram_bw / x25e_bw);
  Note("DRAM : ioDrive Duo gap = %.2fx (paper: \"at least 8.53 times "
       "lower than DRAM rates\")",
       dram_bw / fusion_bw);
  Shape(dram_bw / x25e_bw >= 40.0, "DRAM/X25-E bandwidth gap >= 40x");
  Shape(dram_bw / fusion_bw >= 8.0, "DRAM/ioDrive gap ~ 8.5x");
  return 0;
}

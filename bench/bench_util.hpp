// Shared output helpers for the reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints the measured (modelled) values in the paper's own row/series
// layout, alongside the value the paper reports where one exists, and
// finishes with a SHAPE line stating whether the qualitative claim holds.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace nvm::bench {

inline void Title(const std::string& id, const std::string& caption) {
  std::printf("\n=== %s — %s ===\n", id.c_str(), caption.c_str());
}

inline void Note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  note: ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("  %s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, ...) {
  char buf[256];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// Record a qualitative-shape check, printed as the bench's verdict.
inline bool Shape(bool holds, const char* fmt, ...) {
  char buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::printf("  SHAPE %s: %s\n", holds ? "OK " : "DEV", buf);
  return holds;
}

}  // namespace nvm::bench

// Shared output helpers for the reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints the measured (modelled) values in the paper's own row/series
// layout, alongside the value the paper reports where one exists, and
// finishes with a SHAPE line stating whether the qualitative claim holds.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace nvm::bench {

inline void Title(const std::string& id, const std::string& caption) {
  std::printf("\n=== %s — %s ===\n", id.c_str(), caption.c_str());
}

inline void Note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  note: ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("  %s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, ...) {
  char buf[256];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

// Machine-readable companion to the human tables: collects flat
// key/value metrics and emits them as one `BENCH_JSON {...}` line so
// driver scripts can diff runs without scraping the formatted output.
class JsonReport {
 public:
  explicit JsonReport(const std::string& bench) { Add("bench", bench); }

  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
  }
  void Add(const std::string& key, double value) {
    fields_.emplace_back(key, Fmt2("%.4f", value));
  }
  void Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }

  void Print() const {
    std::printf("BENCH_JSON {");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::printf("%s\"%s\": %s", i ? ", " : "", fields_[i].first.c_str(),
                  fields_[i].second.c_str());
    }
    std::printf("}\n");
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  static std::string Fmt2(const char* fmt, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Record a qualitative-shape check, printed as the bench's verdict.
inline bool Shape(bool holds, const char* fmt, ...) {
  char buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::printf("  SHAPE %s: %s\n", holds ? "OK " : "DEV", buf);
  return holds;
}

}  // namespace nvm::bench

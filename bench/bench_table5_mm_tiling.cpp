// Table V — MM computing time vs loop-tile size, L-SSD(8:16:16).
//
// Paper (seconds, 2 GiB/matrix): tiles 16/32/64/128 give
//   row-major:    318 / 338 / 339 / 318  (flat — inherently sequential)
//   column-major: 1360 / 1088 / 808 / 684 (larger tiles help locality).
// Our tile sweep is scaled alongside the matrix (DESIGN.md): tiles
// 8/16/32/64 play the role of the paper's 16..128.
#include "bench_mm_common.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

int main() {
  Title("Table V",
        "MM computing time (s) vs tile size, L-SSD(8:16:16)");

  const MmConfig config{8, 16, 16, false};
  const size_t tiles[] = {8, 16, 32, 64};

  Table t({"Tile Size", "Row-major (s)", "Column-major (s)"});
  std::vector<double> row_s;
  std::vector<double> col_s;
  for (size_t tile : tiles) {
    MatmulOptions o;
    o.tile = tile;
    auto rr = RunMmConfig(config, o);
    o.column_major = true;
    auto rc = RunMmConfig(config, o);
    NVM_CHECK(rr.verified && rc.verified);
    row_s.push_back(rr.compute_s);
    col_s.push_back(rc.compute_s);
    t.AddRow({Fmt("%zu", tile), Fmt("%.2f", rr.compute_s),
              Fmt("%.2f", rc.compute_s)});
  }
  t.Print();

  Note("paper: column-major improves steadily with bigger tiles "
       "(1360 -> 684 s); row-major is flat (318..339 s)");
  Shape(col_s.front() > 1.5 * col_s.back(),
        "column-major compute time falls substantially with tile size");
  bool monotone = true;
  for (size_t i = 1; i < col_s.size(); ++i) {
    if (col_s[i] > col_s[i - 1] * 1.05) monotone = false;
  }
  Shape(monotone, "column-major improvement is (near-)monotone in tile");
  const double row_spread =
      *std::max_element(row_s.begin(), row_s.end()) /
      *std::min_element(row_s.begin(), row_s.end());
  Shape(row_spread < 1.35,
        "row-major is insensitive to tile size (inherent sequentiality)");
  return 0;
}

// Figure 3 — MM runtime (row-major, shared mmap file for B) across the
// paper's DRAM / local-SSD / remote-SSD configurations, broken into the
// five execution stages.
//
// Paper headline numbers on 2 GiB/matrix:
//   * L-SSD(2:16:16) is within ~2.2% of DRAM(2:16:0),
//   * L-SSD(8:16:16) improves on DRAM(2:16:0) by 53.75% (all cores used),
//   * remote SSDs cost only ~1.4% over local (R-SSD(8:8:8) vs L-SSD(8:8:8)),
//   * R-SSD(8:8:8) still beats DRAM-only by 34.73%,
//   * shrinking z (8:8:4 ... 8:8:1) barely moves anything except a slight
//     broadcast increase; R-SSD(8:8:1) still wins by 32.47%.
#include "bench_mm_common.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

int main() {
  Title("Figure 3",
        "MM runtime (row-major; shared mmap file for B; 2 GiB-class "
        "matrices scaled to 4 MiB)");

  MatmulOptions base;  // defaults: 4 MiB matrices, shared, row-major, T=64

  const MmConfig configs[] = {
      {2, 16, 0, false}, {2, 16, 16, false}, {8, 16, 16, false},
      {8, 8, 8, false},  {8, 8, 8, true},    {8, 8, 4, true},
      {8, 8, 2, true},   {8, 8, 1, true},
  };

  Table t(MmHeaders());
  std::vector<MatmulResult> results;
  for (const auto& c : configs) {
    results.push_back(RunMmConfig(c, base));
    AddMmRow(t, configs[results.size() - 1], results.back());
  }
  t.Print();

  const auto& dram = results[0];      // DRAM(2:16:0)
  const auto& l2 = results[1];        // L-SSD(2:16:16)
  const auto& l8 = results[2];        // L-SSD(8:16:16)
  const auto& l888 = results[3];      // L-SSD(8:8:8)
  const auto& r888 = results[4];      // R-SSD(8:8:8)
  const auto& r881 = results[7];      // R-SSD(8:8:1)
  for (const auto& r : results) NVM_CHECK(!r.feasible || r.verified);

  Note("paper: L-SSD(2:16:16) ~2.19%% slower than DRAM; measured %.2f%%",
       100.0 * (l2.total_s - dram.total_s) / dram.total_s);
  Note("paper: L-SSD(8:16:16) 53.75%% faster than DRAM; measured %.2f%%",
       100.0 * (dram.total_s - l8.total_s) / dram.total_s);
  Note("paper: remote overhead (R- vs L-SSD(8:8:8)) ~1.42%%; measured "
       "%.2f%%",
       100.0 * (r888.total_s - l888.total_s) / l888.total_s);
  Note("paper: R-SSD(8:8:1) 32.47%% faster than DRAM on half the nodes; "
       "measured %.2f%%",
       100.0 * (dram.total_s - r881.total_s) / dram.total_s);

  Shape(std::abs(l2.total_s - dram.total_s) / dram.total_s < 0.15,
        "2-proc NVMalloc run is close to DRAM-only (paper: +2.19%%)");
  Shape(l8.total_s < 0.7 * dram.total_s,
        "8-proc NVMalloc run wins big over DRAM-only (paper: -53.75%%)");
  Shape((r888.total_s - l888.total_s) / l888.total_s < 0.15,
        "remote SSDs cost little over local (paper: +1.42%%)");
  Shape(r881.total_s < dram.total_s,
        "even one SSD per 8 nodes beats DRAM-only on half the machine");
  Shape(results[5].total_s < 1.25 * r888.total_s &&
            results[6].total_s < 1.25 * r888.total_s &&
            r881.total_s < 1.3 * r888.total_s,
        "shrinking the benefactor count has only a mild effect");
  return 0;
}

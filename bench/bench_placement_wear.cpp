// Wear-aware placement vs device endurance spread — the operational
// story for the `placement_wear_weight` knob.
//
// A store whose benefactor SSDs start life unevenly worn (replaced
// drives, reprovisioned nodes) keeps wearing them unevenly under the
// default rotation: every device absorbs the same share of new writes,
// so the initial wear gap never closes and the most-worn drive is always
// the first to die.  Wear-aware placement folds each device's wear
// fraction into the candidate ranking (quantised into bands so the bias
// has hysteresis), steering churn toward fresher devices until the fleet
// evens out.
//
// The sweep runs the same write-heavy churn (create, stripe, write,
// unlink) at several wear weights over a fleet pre-aged to a 36-point
// wear spread and reports:
//
//   * max wear spread: max - min device wear fraction after the churn —
//     weight 0 must preserve the initial gap, higher weights must close
//     it monotonically,
//   * bandwidth cost: the churn's elapsed virtual time — steering
//     concentrates load on fewer devices, so the win must stay cheap
//     (bounded ratio to the weight-0 baseline).
//
// `--quick` shrinks the churn rounds for CI smoke runs; every SHAPE
// check still executes.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/clock.hpp"
#include "sim/device.hpp"
#include "store/store.hpp"

using namespace nvm;
using namespace nvm::bench;

namespace {

// One chunk == one erase block, so a chunk write is exactly one erase
// charge and wear attribution per placement decision is clean.
constexpr uint64_t kChunk = sim::SsdDevice::kEraseBlockBytes;
constexpr int kBenefactors = 4;
constexpr uint32_t kFileChunks = 16;  // 4 MiB per churn round

// A deliberately small, low-endurance drive: churn on the order of a
// gigabyte moves the wear needle by tens of points, so the sweep finishes
// in seconds instead of simulating petabytes.
constexpr uint64_t kSsdCapacity = 32_MiB;
constexpr uint64_t kPeCycles = 25;

// Initial wear injected before the churn, in erase passes over the whole
// device (each pass is 1/kPeCycles of rated life).  Every device gets at
// least one pass so its wear-levelling footprint is the whole drive —
// otherwise a fresh device's wear concentrates on the few churn blocks
// and the fractions stop being comparable across devices.
const int kAgePasses[kBenefactors] = {10, 5, 1, 1};  // .40 / .20 / .04 / .04

std::vector<double> g_weight_sweep = {0.0, 0.5, 2.0};
int g_rounds = 192;

struct Result {
  double weight = 0;
  double spread = 0;      // max - min wear fraction after the churn
  int64_t elapsed_ns = 0; // virtual time of the whole churn
  std::vector<double> wear;  // per-benefactor final wear fraction
};

std::vector<uint8_t> Pattern(uint64_t tag) {
  std::vector<uint8_t> v(kChunk);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint8_t>(tag * 131 + i * 7);
  }
  return v;
}

Result Run(double weight) {
  net::ClusterConfig cc;
  cc.num_nodes = kBenefactors + 1;
  cc.ssd_profile.capacity_bytes = kSsdCapacity;
  cc.ssd_profile.pe_cycles = kPeCycles;
  store::AggregateStoreConfig sc;
  sc.store.chunk_bytes = kChunk;
  sc.store.replication = 1;
  sc.store.placement_wear_weight = weight;
  for (int b = 0; b < kBenefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
  sc.contribution_bytes = 24_MiB;
  sc.manager_node = 1;
  net::Cluster cluster(cc);
  store::AggregateStore store(cluster, sc);

  // Pre-age: whole-device erase passes on a throwaway clock.  The aging
  // busies the drives' channel timelines, so the churn clock starts past
  // the aging horizon — every run begins with idle channels and the
  // elapsed-time comparison across weights stays fair.
  sim::VirtualClock aging(0);
  for (int b = 0; b < kBenefactors; ++b) {
    sim::SsdDevice& ssd = store.benefactor(b).ssd();
    for (int pass = 0; pass < kAgePasses[b]; ++pass) {
      ssd.ChargeWrite(aging, 0, kSsdCapacity);
    }
  }

  sim::VirtualClock clock(aging.now());
  store::StoreClient& c = store.ClientForNode(0);
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();

  const int64_t t0 = clock.now();
  for (int round = 0; round < g_rounds; ++round) {
    auto id = c.Create(clock, "/bench/churn" + std::to_string(round));
    NVM_CHECK(id.ok());
    NVM_CHECK(c.Fallocate(clock, *id, kFileChunks * kChunk).ok());
    for (uint32_t s = 0; s < kFileChunks; ++s) {
      NVM_CHECK(c.WriteChunkPages(clock, *id, s, all, Pattern(round + s)).ok());
    }
    if (round + 1 == g_rounds) {
      // Last round proves the steered placement still serves the bytes.
      std::vector<uint8_t> buf(kChunk);
      for (uint32_t s = 0; s < kFileChunks; ++s) {
        NVM_CHECK(c.ReadChunk(clock, *id, s, buf).ok());
        const std::vector<uint8_t> want = Pattern(round + s);
        NVM_CHECK(std::memcmp(buf.data(), want.data(), kChunk) == 0);
      }
    }
    NVM_CHECK(c.Unlink(clock, *id).ok());
  }

  Result r;
  r.weight = weight;
  r.elapsed_ns = clock.now() - t0;
  double lo = 1.0, hi = 0.0;
  for (int b = 0; b < kBenefactors; ++b) {
    const double w = store.benefactor(b).ssd().wear_fraction();
    r.wear.push_back(w);
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  r.spread = hi - lo;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (quick) g_rounds = 64;

  Title("Wear-aware placement vs device endurance spread",
        Fmt("%d benefactors pre-aged to a 36-point wear gap, %d rounds of "
            "create/stripe/write/unlink churn (%u x %llu KiB chunks), "
            "replication 1",
            kBenefactors, g_rounds, kFileChunks,
            (unsigned long long)(kChunk / 1024)));

  std::vector<Result> results;
  for (double w : g_weight_sweep) results.push_back(Run(w));

  Table t({"wear weight", "wear b0", "wear b1", "wear b2", "wear b3",
           "max spread", "churn (virt ms)"});
  for (const Result& r : results) {
    t.AddRow({Fmt("%.1f", r.weight), Fmt("%.3f", r.wear[0]),
              Fmt("%.3f", r.wear[1]), Fmt("%.3f", r.wear[2]),
              Fmt("%.3f", r.wear[3]), Fmt("%.3f", r.spread),
              Fmt("%.2f", r.elapsed_ns / 1e6)});
  }
  t.Print();
  Note("weight 0 gives every device an equal share, so the pre-aged gap "
       "survives the churn untouched; positive weights starve the worn "
       "drives until the fleet converges band by band.");

  const Result& base = results[0];
  const Result& mid = results[1];
  const Result& high = results[2];
  bool ok = true;
  ok &= Shape(mid.spread < base.spread * 0.8,
              "wear-aware placement closes the wear gap (%.3f < %.3f)",
              mid.spread, base.spread);
  // Coarser bands steer just as hard once the gap is wide; allow a tie
  // within one fine band but never a regression.
  ok &= Shape(high.spread <= mid.spread + 0.02,
              "a heavier weight never widens the gap (%.3f <= %.3f + 0.02)",
              high.spread, mid.spread);
  ok &= Shape(high.elapsed_ns < base.elapsed_ns * 3 / 2,
              "steering stays cheap: churn time within 1.5x of baseline "
              "(%.2f vs %.2f virt ms)",
              high.elapsed_ns / 1e6, base.elapsed_ns / 1e6);

  JsonReport json("placement_wear");
  json.Add("quick", quick);
  json.Add("rounds", static_cast<double>(g_rounds));
  for (const Result& r : results) {
    const std::string tag = "w" + Fmt("%.1f", r.weight);
    json.Add(tag + "_spread", r.spread);
    json.Add(tag + "_elapsed_ns", static_cast<double>(r.elapsed_ns));
    for (int b = 0; b < kBenefactors; ++b) {
      json.Add(tag + "_wear_b" + std::to_string(b), r.wear[b]);
    }
  }
  json.Add("shape_ok", ok);
  json.Print();
  return ok ? 0 : 1;
}

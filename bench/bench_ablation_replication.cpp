// Replication ablation — an extension beyond the paper's replication-free
// store: what does chunk replication cost, and what does it buy?
//
// The paper notes SSDs have "higher reliability due to the lack of
// mechanical moving parts" and runs unreplicated; this ablation quantifies
// the trade its store design leaves open: r=2 doubles write traffic and
// store footprint but lets reads (and whole applications) survive a
// benefactor loss.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "nvmalloc/runtime.hpp"
#include "workloads/testbed.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

struct RunResult {
  double write_s = 0;
  double read_s = 0;
  uint64_t store_bytes = 0;     // footprint after the writes
  uint64_t device_writes = 0;   // total SSD write volume (wear)
  bool survives_failure = false;
};

RunResult RunWith(int replication) {
  TestbedOptions to;
  to.benefactors = 8;
  to.compute_nodes = 8;
  to.store.replication = replication;
  Testbed tb(to);
  NvmallocRuntime& nvm = tb.runtime(0);
  auto& clock = sim::CurrentClock();

  constexpr uint64_t kBytes = 8_MiB;
  auto r = nvm.SsdMalloc(kBytes);
  NVM_CHECK(r.ok());
  std::vector<uint8_t> data(kBytes);
  Xoshiro256 rng(9);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());

  RunResult result;
  int64_t t0 = clock.now();
  NVM_CHECK((*r)->Write(0, data).ok());
  NVM_CHECK((*r)->Sync().ok());
  result.write_s = static_cast<double>(clock.now() - t0) / 1e9;

  result.device_writes = tb.cluster().TotalSsdBytesWritten();
  for (size_t b = 0; b < tb.store().num_benefactors(); ++b) {
    result.store_bytes += tb.store().benefactor(b).bytes_used();
  }

  // Cold read pass.
  (*r)->Invalidate();
  NVM_CHECK(nvm.mount().cache().Drop(clock, (*r)->file_id()).ok());
  std::vector<uint8_t> got(kBytes);
  t0 = clock.now();
  NVM_CHECK((*r)->Read(0, got).ok());
  result.read_s = static_cast<double>(clock.now() - t0) / 1e9;
  NVM_CHECK(got == data, "read-back mismatch");

  // Kill a benefactor; is the variable still fully readable?
  tb.store().benefactor(3).Kill();
  (*r)->Invalidate();
  NVM_CHECK(nvm.mount().cache().Drop(clock, (*r)->file_id()).ok());
  result.survives_failure = (*r)->Read(0, got).ok() && got == data;
  return result;
}

}  // namespace

int main() {
  Title("Replication ablation",
        "writing + cold-reading an 8 MiB variable over 8 benefactors, "
        "then losing one");

  Table t({"Replication", "Write+sync (s)", "Cold read (s)",
           "Store footprint", "Device writes", "Survives 1 loss"});
  RunResult res[3];
  for (int r = 1; r <= 3; ++r) {
    res[r - 1] = RunWith(r);
    t.AddRow({Fmt("r=%d", r), Fmt("%.3f", res[r - 1].write_s),
              Fmt("%.3f", res[r - 1].read_s),
              FormatBytes(res[r - 1].store_bytes),
              FormatBytes(res[r - 1].device_writes),
              res[r - 1].survives_failure ? "yes" : "no"});
  }
  t.Print();

  Note("replication multiplies the write volume, footprint and flash "
       "wear almost exactly by r, leaves cold reads unchanged (primary-"
       "first), and converts a benefactor loss from fatal to invisible");
  Shape(!res[0].survives_failure && res[1].survives_failure &&
            res[2].survives_failure,
        "r>=2 survives a benefactor loss; r=1 (the paper's setup) does not");
  Shape(res[1].store_bytes == 2 * res[0].store_bytes &&
            res[2].store_bytes == 3 * res[0].store_bytes,
        "footprint scales exactly with r");
  Shape(res[1].device_writes > 1.8 * res[0].device_writes,
        "flash wear scales with r (the lifetime cost of availability)");
  Shape(res[1].read_s < 1.5 * res[0].read_s,
        "read path is unaffected by replication");
  return 0;
}

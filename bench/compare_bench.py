#!/usr/bin/env python3
"""Compare a merged bench.json against the committed baseline.

    python3 bench/compare_bench.py bench/baseline.json bench.json [--threshold 0.15]

The simulator runs in virtual time, so most per-bench metrics are
near-exact fingerprints of behaviour, not noisy wall-clock samples:
drift is a real change.  This gate allows small drift (refactors that
legitimately shave a few service charges) and fails the build when any
numeric metric moves more than the threshold (default 15%) in either
direction — a speedup you didn't expect deserves the same scrutiny as a
slowdown.

One class of metric is exempt: benches that race real threads against
the virtual clocks (the threaded metadata-plane sweep, the QoS mix with
a live maintenance service) report tail percentiles and per-second
rates that depend on OS thread scheduling and legitimately wobble more
than the threshold between identical runs.  Keys matching
VOLATILE_PATTERNS are skipped here — each of those metrics is bounded
by its bench's own SHAPE thresholds instead, and `shape_ok` flipping
still fails this gate exactly.

When a change legitimately moves a metric (a new optimisation, a new
cost charged), re-baseline deliberately: regenerate with the smoke
commands from ci.yml plus merge_bench.py, eyeball the diff, and commit
the new bench/baseline.json in the same PR as the change that moved it.

Benches present in the run but absent from the baseline are reported and
tolerated (new benches land before their first baseline); benches in the
baseline but missing from the run fail — the suite must not silently
shrink.  Boolean fields must match exactly ("shape_ok" flipping is never
drift).
"""

import argparse
import json
import re
import sys

# Thread-scheduling-dependent metrics: bounded by SHAPE gates in the
# bench binaries, not by baseline drift.
VOLATILE_PATTERNS = [
    re.compile(r"_p(50|99|999)_us$"),
    re.compile(r"_per_s$"),
    re.compile(r"^speedup_"),
    re.compile(r"_ratio$"),
    re.compile(r"_delta_frac$"),
]


def volatile(key):
    return any(p.search(key) for p in VOLATILE_PATTERNS)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def compare(baseline, current, threshold):
    failures = []
    notes = []
    for bench, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(bench)
        if cur_metrics is None:
            failures.append(f"{bench}: missing from this run")
            continue
        for key, base_val in sorted(base_metrics.items()):
            if volatile(key):
                continue
            cur_val = cur_metrics.get(key)
            if cur_val is None:
                failures.append(f"{bench}.{key}: metric disappeared")
                continue
            if isinstance(base_val, bool) or isinstance(cur_val, bool):
                if bool(base_val) != bool(cur_val):
                    failures.append(
                        f"{bench}.{key}: {base_val} -> {cur_val}")
                continue
            if not isinstance(base_val, (int, float)) or not isinstance(
                    cur_val, (int, float)):
                if base_val != cur_val:
                    failures.append(
                        f"{bench}.{key}: {base_val!r} -> {cur_val!r}")
                continue
            if base_val == 0:
                if cur_val != 0:
                    failures.append(
                        f"{bench}.{key}: baseline 0 -> {cur_val}")
                continue
            rel = (cur_val - base_val) / abs(base_val)
            if abs(rel) > threshold:
                failures.append(
                    f"{bench}.{key}: {base_val} -> {cur_val} "
                    f"({rel:+.1%}, limit ±{threshold:.0%})")
    for bench in sorted(set(current) - set(baseline)):
        notes.append(f"{bench}: new bench, no baseline yet — consider "
                     "re-baselining")
    return failures, notes


def main():
    ap = argparse.ArgumentParser(
        description="fail on >threshold drift vs the committed baseline")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max relative drift per metric (default 0.15)")
    args = ap.parse_args()

    failures, notes = compare(load(args.baseline), load(args.current),
                              args.threshold)
    for n in notes:
        print(f"compare_bench: note: {n}")
    if failures:
        for f in failures:
            print(f"compare_bench: FAIL {f}")
        print(f"compare_bench: {len(failures)} metric(s) drifted beyond "
              f"±{args.threshold:.0%}; see bench/compare_bench.py for the "
              "re-baselining procedure")
        return 1
    print("compare_bench: all metrics within "
          f"±{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Metadata-plane throughput vs manager sharding — the headline for the
// sharded metadata plane (meta_shards) and the lock-free resolve path.
//
// After the run RPCs collapsed the data plane to one request and one
// device queueing slot per batch, the manager's single metadata timeline
// became the scalability wall for many-client workloads: every resolve,
// prepare, and completion queued on one modelled service resource (and one
// mutex).  Sharding the chunk namespace gives each shard its own service
// lane and its own locks, and the resolve fast path reads an atomically-
// swapped replica snapshot without any shard lock at all.
//
// This bench measures the two hot metadata loops under N concurrent
// client threads (real threads, each with its own virtual clock, talking
// straight to the manager — no data-plane traffic dilutes the numbers):
//
//   resolves     batched GetReadLocations over the thread's own files:
//                chunk locations resolved per virtual second
//   write cycles PrepareWriteBatch + CompleteWrites of a flush window:
//                prepare/complete cycles per virtual second
//
// sweeping meta_shards x threads over {1, 4, 16}.  With one shard every
// thread queues on the same lane, so aggregate throughput is flat no
// matter how many clients pile on; with 16 shards the lanes serve
// different files independently and throughput scales with the client
// count.  SHAPE: at 16 threads, 16 shards must beat 1 shard by >= 2x on
// both loops (the observed win is close to the full lane count).
//
// `--quick` shrinks the op counts for CI smoke runs; every SHAPE check
// still executes.
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

using namespace nvm;
using namespace nvm::bench;

namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 4;
constexpr size_t kFilesPerThread = 4;   // smooths file->lane hash collisions
constexpr uint32_t kChunksPerFile = 32;
constexpr uint32_t kPrepareWindow = 16;  // flush-window size per cycle

uint64_t g_resolve_rounds = 2'000;  // GetReadLocations calls per thread
uint64_t g_cycle_rounds = 1'000;    // prepare+complete cycles per thread

struct Rig {
  net::Cluster cluster;
  store::AggregateStore store;
  // files[t] holds thread t's private file set.
  std::vector<std::vector<store::FileId>> files;
  int64_t setup_end_ns = 0;

  Rig(size_t meta_shards, size_t threads)
      : cluster(MakeClusterConfig()), store(cluster, Finish(meta_shards)) {
    sim::CurrentClock().Reset();
    store::Manager& m = store.manager();
    sim::VirtualClock clock(0);
    files.resize(threads);
    for (size_t t = 0; t < threads; ++t) {
      for (size_t f = 0; f < kFilesPerThread; ++f) {
        auto id = m.CreateFile(clock, "/meta/t" + std::to_string(t) + "/f" +
                                          std::to_string(f));
        NVM_CHECK(id.ok());
        NVM_CHECK(m.Fallocate(clock, *id, kChunksPerFile * kChunk).ok());
        files[t].push_back(*id);
      }
    }
    setup_end_ns = clock.now();
  }

  static net::ClusterConfig MakeClusterConfig() {
    net::ClusterConfig cc;
    cc.num_nodes = kBenefactors + 1;
    return cc;
  }
  static store::AggregateStoreConfig Finish(size_t meta_shards) {
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.meta_shards = meta_shards;
    for (int b = 0; b < kBenefactors; ++b) {
      sc.benefactor_nodes.push_back(b + 1);
    }
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    return sc;
  }
};

struct Throughput {
  double resolves_per_s = 0;  // chunk locations resolved / virtual second
  double cycles_per_s = 0;    // prepare+complete windows / virtual second
};

// Resolve loop for one thread: `g_resolve_rounds` batched
// GetReadLocations calls over the thread's own files, starting at
// virtual `t0`.  Returns chunk locations resolved and the virtual end.
void HammerResolves(store::Manager& m, const std::vector<store::FileId>& mine,
                    int64_t t0, uint64_t* resolved, int64_t* end_ns) {
  sim::VirtualClock clock(t0);
  uint64_t ops = 0;
  for (uint64_t r = 0; r < g_resolve_rounds; ++r) {
    const store::FileId id = mine[r % mine.size()];
    auto locs = m.GetReadLocations(clock, id, 0, kChunksPerFile);
    NVM_CHECK(locs.ok());
    ops += locs->size();
  }
  *resolved = ops;
  *end_ns = clock.now();
}

// Write-cycle loop for one thread: `g_cycle_rounds` flush-window
// PrepareWriteBatch + CompleteWrites cycles starting at virtual `t0`.
void HammerCycles(store::Manager& m, const std::vector<store::FileId>& mine,
                  int64_t t0, uint64_t* cycled, int64_t* end_ns) {
  sim::VirtualClock clock(t0);
  std::vector<uint32_t> window(kPrepareWindow);
  for (uint32_t i = 0; i < kPrepareWindow; ++i) window[i] = i;
  uint64_t cycles = 0;
  for (uint64_t r = 0; r < g_cycle_rounds; ++r) {
    const store::FileId id = mine[r % mine.size()];
    auto locs = m.PrepareWriteBatch(clock, id, window);
    NVM_CHECK(locs.ok());
    m.CompleteWrites(*locs);
    ++cycles;
  }
  *cycled = cycles;
  *end_ns = clock.now();
}

// Launch one thread per file set, all starting at virtual `t0`, and
// return total ops over the makespan (common start to last virtual
// finish).  The common start matters: a clock can never acquire service
// time before its own now(), so no thread's ops can land before t0 and
// the denominator is honest.  `*phase_end` gets the makespan endpoint.
template <typename Loop>
double Span(Loop loop, size_t threads, int64_t t0, int64_t* phase_end) {
  std::vector<uint64_t> ops(threads, 0);
  std::vector<int64_t> end(threads, t0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] { loop(t, t0, &ops[t], &end[t]); });
  }
  for (std::thread& w : workers) w.join();
  uint64_t total = 0;
  int64_t done = t0;
  for (size_t t = 0; t < threads; ++t) {
    total += ops[t];
    done = std::max(done, end[t]);
  }
  *phase_end = done;
  return static_cast<double>(total) /
         (static_cast<double>(done - t0) / 1e9);
}

Throughput Run(size_t meta_shards, size_t threads) {
  Rig rig(meta_shards, threads);
  store::Manager& m = rig.store.manager();

  Throughput out;
  int64_t resolves_done = 0;
  out.resolves_per_s = Span(
      [&](size_t t, int64_t t0, uint64_t* ops, int64_t* end) {
        HammerResolves(m, rig.files[t], t0, ops, end);
      },
      threads, rig.setup_end_ns, &resolves_done);
  int64_t cycles_done = 0;
  out.cycles_per_s = Span(
      [&](size_t t, int64_t t0, uint64_t* ops, int64_t* end) {
        HammerCycles(m, rig.files[t], t0, ops, end);
      },
      threads, resolves_done, &cycles_done);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (quick) {
    g_resolve_rounds = 400;
    g_cycle_rounds = 200;
  }

  Title("Manager metadata throughput vs meta_shards",
        Fmt("%zu files x %u chunks per thread; batched resolves and "
            "%u-chunk prepare/complete windows, manager_op_ns=3000",
            kFilesPerThread, kChunksPerFile, kPrepareWindow));

  const size_t sweep[] = {1, 4, 16};
  // results[s][t]
  Throughput results[3][3];
  for (size_t s = 0; s < 3; ++s) {
    for (size_t t = 0; t < 3; ++t) {
      results[s][t] = Run(sweep[s], sweep[t]);
    }
  }

  Table rt({"meta_shards", "1 thread (Mres/s)", "4 threads (Mres/s)",
            "16 threads (Mres/s)"});
  for (size_t s = 0; s < 3; ++s) {
    rt.AddRow({Fmt("%zu", sweep[s]),
               Fmt("%.2f", results[s][0].resolves_per_s / 1e6),
               Fmt("%.2f", results[s][1].resolves_per_s / 1e6),
               Fmt("%.2f", results[s][2].resolves_per_s / 1e6)});
  }
  rt.Print();

  Table ct({"meta_shards", "1 thread (kcyc/s)", "4 threads (kcyc/s)",
            "16 threads (kcyc/s)"});
  for (size_t s = 0; s < 3; ++s) {
    ct.AddRow({Fmt("%zu", sweep[s]),
               Fmt("%.1f", results[s][0].cycles_per_s / 1e3),
               Fmt("%.1f", results[s][1].cycles_per_s / 1e3),
               Fmt("%.1f", results[s][2].cycles_per_s / 1e3)});
  }
  ct.Print();
  Note("resolves ride the lock-free snapshot path (one service-lane "
       "charge per batch, no shard mutex); cycles pay the prepare's "
       "ascending-order shard locking on top.");

  const double r1 = results[0][2].resolves_per_s;   // shards=1, 16 threads
  const double r16 = results[2][2].resolves_per_s;  // shards=16, 16 threads
  const double c1 = results[0][2].cycles_per_s;
  const double c16 = results[2][2].cycles_per_s;
  bool ok = true;
  ok &= Shape(r16 >= 2.0 * r1,
              "16 shards resolve >= 2x faster than 1 shard at 16 threads "
              "(%.2f vs %.2f Mres/s)",
              r16 / 1e6, r1 / 1e6);
  ok &= Shape(c16 >= 2.0 * c1,
              "16 shards cycle >= 2x faster than 1 shard at 16 threads "
              "(%.1f vs %.1f kcyc/s)",
              c16 / 1e3, c1 / 1e3);
  ok &= Shape(results[0][2].resolves_per_s <=
                  1.25 * results[0][0].resolves_per_s,
              "one shard is a wall: 16 threads buy <= 25%% over 1 thread "
              "(%.2f vs %.2f Mres/s)",
              results[0][2].resolves_per_s / 1e6,
              results[0][0].resolves_per_s / 1e6);

  JsonReport json("meta_ops");
  json.Add("quick", quick);
  for (size_t s = 0; s < 3; ++s) {
    for (size_t t = 0; t < 3; ++t) {
      const std::string tag =
          "s" + std::to_string(sweep[s]) + "_t" + std::to_string(sweep[t]);
      json.Add(tag + "_resolves_per_s", results[s][t].resolves_per_s);
      json.Add(tag + "_cycles_per_s", results[s][t].cycles_per_s);
    }
  }
  json.Add("speedup_resolves_16t", r16 / r1);
  json.Add("speedup_cycles_16t", c16 / c1);
  json.Add("shape_ok", ok);
  json.Print();
  return ok ? 0 : 1;
}

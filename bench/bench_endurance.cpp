// Flash endurance projection — the paper's §III-A design goal "Optimizing
// NVM performance and lifetime: ... NVM devices such as SSDs have limited
// write cycles.  Our design needs to optimize the total write volume on
// these devices."
//
// Runs the checkpoint-every-timestep workload at paper-equivalent write
// rates and projects device lifetime (from the SSD model's per-block
// erase accounting) for: naive full-copy checkpoints, linked/incremental
// checkpoints, and linked checkpoints without the dirty-page write-back
// optimisation.
#include "bench_util.hpp"
#include "workloads/ckpt.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

struct Endurance {
  uint64_t device_writes = 0;  // bytes programmed per checkpoint cycle
  double wear = 0;             // max block-wear fraction consumed
};

Endurance RunMode(bool link_nvm, bool page_writeback) {
  TestbedOptions to;
  to.fuse.dirty_page_writeback = page_writeback;
  Testbed tb(to);
  CkptOptions o;
  o.dram_bytes = ScaledBytes(1_GiB);
  o.nvm_bytes = ScaledBytes(4_GiB);
  o.timesteps = 6;
  o.link_nvm = link_nvm;
  auto r = RunCheckpointStudy(tb, o);
  NVM_CHECK(r.restart_verified);

  Endurance e;
  // Steady-state cost: average the post-first timesteps.
  for (size_t s = 1; s < r.steps.size(); ++s) {
    e.device_writes += r.steps[s].ssd_bytes_written;
  }
  e.device_writes /= (r.steps.size() - 1);
  for (size_t b = 0; b < tb.store().num_benefactors(); ++b) {
    e.wear = std::max(e.wear, tb.store().benefactor(b).ssd().wear_fraction());
  }
  return e;
}

}  // namespace

int main() {
  Title("Endurance projection",
        "SSD write volume and wear per checkpoint cycle (1 GiB-class DRAM "
        "+ 4 GiB-class NVM variable, 10% dirtied per step)");

  const Endurance linked = RunMode(true, true);
  const Endurance copied = RunMode(false, true);
  const Endurance chunk_wb = RunMode(true, false);

  Table t({"Checkpoint mode", "SSD writes / step", "vs linked"});
  t.AddRow({"linked + dirty-page writeback (NVMalloc)",
            FormatBytes(linked.device_writes), "1.0x"});
  t.AddRow({"linked, whole-chunk writeback",
            FormatBytes(chunk_wb.device_writes),
            Fmt("%.1fx", static_cast<double>(chunk_wb.device_writes) /
                             static_cast<double>(linked.device_writes))});
  t.AddRow({"naive full copy", FormatBytes(copied.device_writes),
            Fmt("%.1fx", static_cast<double>(copied.device_writes) /
                             static_cast<double>(linked.device_writes))});
  t.Print();

  // Lifetime projection at a paper-like checkpoint cadence (hourly), for
  // the paper-scale volumes (unscale by the data ratio).
  const double paper_writes_per_ckpt =
      static_cast<double>(linked.device_writes) * kDataScale;
  const double naive_writes_per_ckpt =
      static_cast<double>(copied.device_writes) * kDataScale;
  // X25-E: 32 GB, 100k P/E cycles => ~3.2 PB per device; 16 devices.
  const double budget_bytes = 16.0 * 32e9 * 100'000.0;
  const double years_linked =
      budget_bytes / (paper_writes_per_ckpt * 24 * 365);
  const double years_naive =
      budget_bytes / (naive_writes_per_ckpt * 24 * 365);
  Note("at one checkpoint per hour, paper-scale volumes: linked "
       "checkpoints spend the 16-SSD erase budget in ~%.0f years vs "
       "~%.0f years for naive copies (%.1fx lifetime extension)",
       years_linked, years_naive, years_linked / years_naive);

  Shape(copied.device_writes > 2 * linked.device_writes,
        "chunk linking + COW substantially reduces per-checkpoint wear");
  Shape(chunk_wb.device_writes > linked.device_writes,
        "dirty-page writeback further reduces wear vs whole-chunk flushes");
  Shape(years_linked > years_naive,
        "the paper's design extends device lifetime");
  return 0;
}

// Flash endurance projection — the paper's §III-A design goal "Optimizing
// NVM performance and lifetime: ... NVM devices such as SSDs have limited
// write cycles.  Our design needs to optimize the total write volume on
// these devices."
//
// Runs the checkpoint-every-timestep workload at paper-equivalent write
// rates and projects device lifetime (from the SSD model's per-block
// erase accounting) for: naive full-copy checkpoints, linked/incremental
// checkpoints, and linked checkpoints without the dirty-page write-back
// optimisation.  Two follow-on studies ride on the same workload:
//  - metadata endurance: the manager's WAL device wear per checkpoint
//    cycle, next to the data devices it journals for;
//  - redundancy write amplification: device write volume per checkpoint
//    under r=1, r=2 and RS(4,2), i.e. what each durability policy costs
//    in erase budget.
#include "bench_util.hpp"
#include "store/wal.hpp"
#include "workloads/ckpt.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

struct Endurance {
  uint64_t device_writes = 0;  // bytes programmed per checkpoint cycle
  double wear = 0;             // max block-wear fraction consumed
  uint64_t wal_writes = 0;     // WAL-device bytes per checkpoint cycle
  double wal_wear = 0;         // WAL-device block-wear fraction consumed
};

struct ModeOptions {
  bool link_nvm = true;
  bool page_writeback = true;
  bool wal = false;
  int replication = 1;
  bool ec = false;  // RS(4,2) striping instead of replication
};

Endurance RunMode(const ModeOptions& m) {
  TestbedOptions to;
  to.fuse.dirty_page_writeback = m.page_writeback;
  to.store.wal = m.wal;
  to.store.replication = m.replication;
  if (m.ec) {
    to.store.redundancy = store::RedundancyMode::kErasure;
    to.store.ec_k = 4;
    to.store.ec_m = 2;
  }
  Testbed tb(to);
  CkptOptions o;
  o.dram_bytes = ScaledBytes(1_GiB);
  o.nvm_bytes = ScaledBytes(4_GiB);
  o.timesteps = 6;
  o.link_nvm = m.link_nvm;
  const uint64_t wal_before =
      m.wal ? tb.store().wal()->device().host_bytes_written() : 0;
  auto r = RunCheckpointStudy(tb, o);
  NVM_CHECK(r.restart_verified);

  Endurance e;
  // Steady-state cost: average the post-first timesteps.
  for (size_t s = 1; s < r.steps.size(); ++s) {
    e.device_writes += r.steps[s].ssd_bytes_written;
    if (std::getenv("NVM_ENDUR_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "  [step %zu r=%d ec=%d] dram %llu linked %llu copied "
                   "%llu ssd %llu\n",
                   s, m.replication, m.ec ? 1 : 0,
                   (unsigned long long)r.steps[s].dram_bytes_copied,
                   (unsigned long long)r.steps[s].nvm_bytes_linked,
                   (unsigned long long)r.steps[s].nvm_bytes_copied,
                   (unsigned long long)r.steps[s].ssd_bytes_written);
    }
  }
  e.device_writes /= (r.steps.size() - 1);
  for (size_t b = 0; b < tb.store().num_benefactors(); ++b) {
    e.wear = std::max(e.wear, tb.store().benefactor(b).ssd().wear_fraction());
  }
  if (m.wal) {
    // The WAL journals every step, setup included; a per-cycle average
    // over the whole run is the honest steady-state figure.
    e.wal_writes =
        (tb.store().wal()->device().host_bytes_written() - wal_before) /
        static_cast<uint64_t>(o.timesteps);
    e.wal_wear = tb.store().wal()->device().wear_fraction();
  }
  return e;
}

}  // namespace

int main() {
  Title("Endurance projection",
        "SSD write volume and wear per checkpoint cycle (1 GiB-class DRAM "
        "+ 4 GiB-class NVM variable, 10% dirtied per step)");

  const Endurance linked = RunMode({});
  const Endurance copied = RunMode({.link_nvm = false});
  const Endurance chunk_wb = RunMode({.page_writeback = false});

  Table t({"Checkpoint mode", "SSD writes / step", "vs linked"});
  t.AddRow({"linked + dirty-page writeback (NVMalloc)",
            FormatBytes(linked.device_writes), "1.0x"});
  t.AddRow({"linked, whole-chunk writeback",
            FormatBytes(chunk_wb.device_writes),
            Fmt("%.1fx", static_cast<double>(chunk_wb.device_writes) /
                             static_cast<double>(linked.device_writes))});
  t.AddRow({"naive full copy", FormatBytes(copied.device_writes),
            Fmt("%.1fx", static_cast<double>(copied.device_writes) /
                             static_cast<double>(linked.device_writes))});
  t.Print();

  // --- metadata endurance: the WAL device next to the data devices ---
  const Endurance waled = RunMode({.wal = true});
  Table w({"Device (wal=on run)", "writes / step", "wear consumed"});
  w.AddRow({"data SSDs (max benefactor)", FormatBytes(waled.device_writes),
            Fmt("%.2e", waled.wear)});
  w.AddRow({"manager WAL device", FormatBytes(waled.wal_writes),
            Fmt("%.2e", waled.wal_wear)});
  w.Print();

  // --- redundancy write amplification: what durability costs in erases ---
  const Endurance r2 = RunMode({.replication = 2});
  const Endurance ec = RunMode({.ec = true});
  const double r2_amp = static_cast<double>(r2.device_writes) /
                        static_cast<double>(linked.device_writes);
  const double ec_amp = static_cast<double>(ec.device_writes) /
                        static_cast<double>(linked.device_writes);
  Table rt({"Redundancy mode", "SSD writes / step", "write amp vs r=1"});
  rt.AddRow({"r=1 (paper setup)", FormatBytes(linked.device_writes), "1.0x"});
  rt.AddRow({"r=2 replicas", FormatBytes(r2.device_writes),
             Fmt("%.1fx", r2_amp)});
  rt.AddRow({"RS(4,2) stripes", FormatBytes(ec.device_writes),
             Fmt("%.1fx", ec_amp)});
  rt.Print();
  Note("RS(4,2) carries 1.5x raw redundancy, and the checkpoint image "
       "pays exactly that; the dirty-chunk COW path lands cheaper than "
       "1.5x because a stripe is re-encoded client-side and programmed "
       "once where replication's partial-dirty merge programs the full "
       "chunk per flush — the blended amp sits between 1x and 1.5x, "
       "well under replication-2's uniform 2x for twice the loss "
       "tolerance");

  // Lifetime projection at a paper-like checkpoint cadence (hourly), for
  // the paper-scale volumes (unscale by the data ratio).
  const double paper_writes_per_ckpt =
      static_cast<double>(linked.device_writes) * kDataScale;
  const double naive_writes_per_ckpt =
      static_cast<double>(copied.device_writes) * kDataScale;
  // X25-E: 32 GB, 100k P/E cycles => ~3.2 PB per device; 16 devices.
  const double budget_bytes = 16.0 * 32e9 * 100'000.0;
  const double years_linked =
      budget_bytes / (paper_writes_per_ckpt * 24 * 365);
  const double years_naive =
      budget_bytes / (naive_writes_per_ckpt * 24 * 365);
  Note("at one checkpoint per hour, paper-scale volumes: linked "
       "checkpoints spend the 16-SSD erase budget in ~%.0f years vs "
       "~%.0f years for naive copies (%.1fx lifetime extension)",
       years_linked, years_naive, years_linked / years_naive);

  Shape(copied.device_writes > 2 * linked.device_writes,
        "chunk linking + COW substantially reduces per-checkpoint wear");
  Shape(chunk_wb.device_writes > linked.device_writes,
        "dirty-page writeback further reduces wear vs whole-chunk flushes");
  Shape(years_linked > years_naive,
        "the paper's design extends device lifetime");
  Shape(waled.wal_writes > 0 && waled.wal_writes < waled.device_writes,
        "metadata journaling costs real WAL-device wear, but less than "
        "the data it journals for");
  Shape(r2_amp > 1.6 && r2_amp < 2.5,
        "r=2 roughly doubles device write volume");
  Shape(ec_amp > 1.0 && ec_amp < r2_amp,
        "RS(4,2) spends more erase budget than bare r=1 but beats r=2 "
        "while surviving double loss");

  JsonReport j("endurance");
  j.Add("linked_bytes_per_step", static_cast<double>(linked.device_writes));
  j.Add("chunk_wb_bytes_per_step",
        static_cast<double>(chunk_wb.device_writes));
  j.Add("naive_bytes_per_step", static_cast<double>(copied.device_writes));
  j.Add("wal_bytes_per_step", static_cast<double>(waled.wal_writes));
  j.Add("wal_wear_fraction", waled.wal_wear);
  j.Add("r2_write_amp", r2_amp);
  j.Add("ec42_write_amp", ec_amp);
  j.Add("years_linked", years_linked);
  j.Add("years_naive", years_naive);
  j.Print();
  return 0;
}

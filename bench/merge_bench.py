#!/usr/bin/env python3
"""Merge BENCH_JSON lines from bench logs into one bench.json document.

Every bench binary prints a single machine-readable line

    BENCH_JSON {"bench": "<name>", "metric": value, ...}

next to its human-readable tables.  CI runs the smoke benches, tees their
stdout to log files, and calls this script to fold all the BENCH_JSON
lines into one JSON object keyed by bench name:

    python3 bench/merge_bench.py bench.json log1 [log2 ...]

The merged document is the run's perf fingerprint — upload it as an
artifact and diff it against bench/baseline.json with compare_bench.py.
A bench that appears twice (e.g. --quick and full in one log) keeps the
last line, matching "the most recent run wins".
"""

import json
import sys

PREFIX = "BENCH_JSON "


def merge(paths):
    merged = {}
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            for line in f:
                line = line.strip()
                if not line.startswith(PREFIX):
                    continue
                record = json.loads(line[len(PREFIX):])
                name = record.pop("bench", None)
                if name is None:
                    raise ValueError(f"{path}: BENCH_JSON line without 'bench'")
                merged[name] = record
    return merged


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    out_path, logs = argv[1], argv[2:]
    merged = merge(logs)
    if not merged:
        print("merge_bench: no BENCH_JSON lines found", file=sys.stderr)
        return 1
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"merge_bench: wrote {len(merged)} bench record(s) to {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Ablation — the design choices DESIGN.md calls out, swept individually
// on a fixed STREAM TRIAD workload (array C on local SSD):
//   * FUSE cache size (the paper fixes 64 MB; what does the knob buy?),
//   * read-ahead on/off,
//   * chunk size (the paper's 256 KB default, scaled to 64 KiB here).
#include "bench_util.hpp"
#include "workloads/stream.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

double Triad(TestbedOptions to) {
  Testbed tb(to);
  StreamOptions o;
  o.array_bytes = ScaledBytes(2_GiB);
  o.iterations = 5;
  // Single stream: the ablation isolates fuselite knobs; with several
  // host threads, scheduler-drift noise would mask the knob effects.
  o.threads = 1;
  o.c_on_nvm = true;
  o.run_kernel = {false, false, false, true};
  auto r = RunStream(tb, o);
  NVM_CHECK(r.verified);
  return r.mbps[static_cast<int>(StreamKernel::kTriad)];
}

}  // namespace

int main() {
  Title("Ablation", "fuselite design knobs on STREAM TRIAD (C on SSD)");

  {
    Table t({"FUSE cache", "TRIAD MB/s"});
    for (uint64_t cache : {128_KiB, 256_KiB, 512_KiB, 1_MiB, 2_MiB}) {
      TestbedOptions to;
      to.fuse.cache_bytes = cache;
      t.AddRow({FormatBytes(cache), Fmt("%.1f", Triad(to))});
    }
    t.Print();
    Note("a streaming kernel reuses nothing: cache size buys little "
         "beyond staging room (the paper picked 64 MB for exactly this "
         "reason — big enough to bridge granularity, no more)");
  }

  {
    Table t({"Read-ahead", "TRIAD MB/s"});
    TestbedOptions on;
    TestbedOptions off;
    off.fuse.readahead = false;
    const double bw_on = Triad(on);
    const double bw_off = Triad(off);
    t.AddRow({"on", Fmt("%.1f", bw_on)});
    t.AddRow({"off", Fmt("%.1f", bw_off)});
    t.Print();
    Shape(bw_on >= bw_off * 0.98,
          "read-ahead never hurts a sequential stream");
  }

  {
    Table t({"Chunk size", "TRIAD MB/s"});
    double bw_small = 0;
    double bw_large = 0;
    for (uint64_t chunk : {16_KiB, 32_KiB, 64_KiB, 128_KiB}) {
      TestbedOptions to;
      to.store.chunk_bytes = chunk;
      const double bw = Triad(to);
      if (chunk == 16_KiB) bw_small = bw;
      if (chunk == 128_KiB) bw_large = bw;
      t.AddRow({FormatBytes(chunk), Fmt("%.1f", bw)});
    }
    t.Print();
    Note("larger chunks amortise the SSD's 75 us request latency — the "
         "reason the paper picked 256 KB stripes");
    Shape(bw_large > bw_small,
          "bigger chunks win on streaming reads (latency amortisation)");
  }
  return 0;
}

// Cold-start recovery cost vs WAL length and checkpoint cadence — the
// operational story for the crash-consistent metadata plane.
//
// A manager restart replays the durable log over the newest valid
// checkpoint and then reconciles against the benefactor inventories.
// Replay work is proportional to the records written since the covering
// checkpoint, so two knobs govern restart latency:
//
//   * how much history the log holds (series A: writes since boot with
//     checkpointing off — recovery virtual time must grow with the log),
//   * how often the maintenance loop checkpoints (series B: same write
//     count, checkpoint every K writes — a tighter cadence must shrink
//     both the records replayed and the recovery time).
//
// Every restart also proves itself: the recovered store must serve the
// exact bytes of the last completed write to every chunk.
//
// `--quick` shrinks the write counts for CI smoke runs; every SHAPE
// check still executes.
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

using namespace nvm;
using namespace nvm::bench;

namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 4;
constexpr uint32_t kFileChunks = 8;  // writes rotate over these slots

std::vector<uint64_t> g_wal_sweep = {64, 512, 2048};  // series A write counts
// Series B: a write count that is NOT a multiple of either cadence, so the
// crash always lands mid-interval and each cadence leaves a real log tail.
uint64_t g_ckpt_writes = 4000;
std::vector<uint64_t> g_ckpt_sweep = {0, 512, 64};  // 0 = never checkpoint

struct Rig {
  net::Cluster cluster;
  store::AggregateStore store;

  Rig() : cluster(MakeClusterConfig()), store(cluster, MakeStoreConfig()) {}

  static net::ClusterConfig MakeClusterConfig() {
    net::ClusterConfig cc;
    cc.num_nodes = kBenefactors + 1;
    return cc;
  }
  static store::AggregateStoreConfig MakeStoreConfig() {
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = 2;
    sc.store.wal = true;
    for (int b = 0; b < kBenefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    return sc;
  }
};

std::vector<uint8_t> Pattern(uint64_t tag) {
  std::vector<uint8_t> v(kChunk);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint8_t>(tag * 131 + i * 7);
  }
  return v;
}

struct Point {
  uint64_t writes = 0;
  uint64_t ckpt_every = 0;    // 0 = never
  uint64_t wal_records = 0;   // records replayed at recovery
  int64_t recovery_ns = 0;    // virtual time KillManager -> recovered
  int64_t per_record_ns = 0;  // recovery_ns / max(1, wal_records)
  double wal_wear = 0;        // log-device wear fraction at crash time
  uint64_t wal_bytes = 0;     // log-device host bytes written at crash time
};

// Boot a store, run `writes` in-place chunk writes (checkpointing every
// `ckpt_every` of them; 0 = never), cold-restart the manager, and
// measure the restart's virtual-time cost.  The recovered store must
// serve the last completed image of every chunk.
Point Run(uint64_t writes, uint64_t ckpt_every) {
  Rig rig;
  sim::VirtualClock clock(0);
  store::StoreClient& c = rig.store.ClientForNode(0);
  auto id = c.Create(clock, "/bench/recovery");
  NVM_CHECK(id.ok());
  NVM_CHECK(c.Fallocate(clock, *id, kFileChunks * kChunk).ok());

  std::vector<uint64_t> last_tag(kFileChunks, 0);
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  for (uint64_t w = 0; w < writes; ++w) {
    const uint32_t slot = static_cast<uint32_t>(w % kFileChunks);
    const std::vector<uint8_t> bytes = Pattern(w + 1);
    NVM_CHECK(c.WriteChunkPages(clock, *id, slot, all, bytes).ok());
    last_tag[slot] = w + 1;
    if (ckpt_every > 0 && (w + 1) % ckpt_every == 0) {
      rig.store.manager().Checkpoint(clock);
    }
  }

  // Snapshot the log device's wear before the crash: every append and
  // every checkpoint image landed on it, so cadence shows up here as the
  // endurance price of faster restarts.
  const double wal_wear = rig.store.wal()->device().wear_fraction();
  const uint64_t wal_bytes = rig.store.wal()->device().host_bytes_written();

  rig.store.KillManager();
  const int64_t t0 = clock.now();
  const store::RecoveryReport report = rig.store.RestartManager(clock);
  const int64_t t1 = clock.now();
  NVM_CHECK(report.chunks_lost == 0);

  // Readback proof: every chunk serves its last completed image.
  std::vector<uint8_t> buf(kChunk);
  store::StoreClient& c2 = rig.store.ClientForNode(0);
  for (uint32_t s = 0; s < kFileChunks; ++s) {
    if (last_tag[s] == 0) continue;
    NVM_CHECK(c2.ReadChunk(clock, *id, s, buf).ok());
    const std::vector<uint8_t> want = Pattern(last_tag[s]);
    NVM_CHECK(std::memcmp(buf.data(), want.data(), kChunk) == 0);
  }

  Point p;
  p.writes = writes;
  p.ckpt_every = ckpt_every;
  p.wal_records = report.records_replayed;
  p.recovery_ns = t1 - t0;
  p.per_record_ns = p.recovery_ns /
                    static_cast<int64_t>(std::max<uint64_t>(1, p.wal_records));
  p.wal_wear = wal_wear;
  p.wal_bytes = wal_bytes;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (quick) {
    g_wal_sweep = {32, 128, 512};
    g_ckpt_writes = 1000;
  }

  Title("Manager cold-start recovery vs WAL length / checkpoint cadence",
        Fmt("%d benefactors, replication 2, %u-chunk file, in-place "
            "overwrites (one completion record each)",
            kBenefactors, kFileChunks));

  // Series A: checkpointing off, recovery replays the whole history.
  std::vector<Point> series_a;
  for (uint64_t w : g_wal_sweep) series_a.push_back(Run(w, 0));

  Table at(
      {"writes", "replayed records", "recovery (virt us)", "per record (ns)"});
  for (const Point& p : series_a) {
    at.AddRow({Fmt("%llu", (unsigned long long)p.writes),
               Fmt("%llu", (unsigned long long)p.wal_records),
               Fmt("%.1f", p.recovery_ns / 1e3),
               Fmt("%lld", (long long)p.per_record_ns)});
  }
  at.Print();

  // Series B: same write count, tightening checkpoint cadence.
  std::vector<Point> series_b;
  for (uint64_t k : g_ckpt_sweep) series_b.push_back(Run(g_ckpt_writes, k));

  Table bt({"ckpt every", "replayed records", "recovery (virt us)",
            "WAL dev KiB written", "WAL dev wear"});
  for (const Point& p : series_b) {
    bt.AddRow(
        {p.ckpt_every == 0 ? std::string("never")
                           : Fmt("%llu", (unsigned long long)p.ckpt_every),
         Fmt("%llu", (unsigned long long)p.wal_records),
         Fmt("%.1f", p.recovery_ns / 1e3),
         Fmt("%llu", (unsigned long long)(p.wal_bytes / 1024)),
         Fmt("%.4f%%", p.wal_wear * 100)});
  }
  bt.Print();
  Note("recovery = checkpoint decode + WAL replay + one inventory "
       "round-trip per benefactor; the round-trips are the flat floor "
       "every point pays.");

  bool ok = true;
  ok &= Shape(series_a.back().wal_records > series_a.front().wal_records,
              "longer histories leave longer logs (%llu vs %llu records)",
              (unsigned long long)series_a.back().wal_records,
              (unsigned long long)series_a.front().wal_records);
  ok &= Shape(series_a.back().recovery_ns > series_a.front().recovery_ns,
              "recovery time grows with WAL length (%.1f vs %.1f virt us)",
              series_a.back().recovery_ns / 1e3,
              series_a.front().recovery_ns / 1e3);
  ok &= Shape(series_b[2].wal_records < series_b[1].wal_records &&
                  series_b[1].wal_records < series_b[0].wal_records,
              "tighter checkpoint cadence replays fewer records "
              "(%llu < %llu < %llu)",
              (unsigned long long)series_b[2].wal_records,
              (unsigned long long)series_b[1].wal_records,
              (unsigned long long)series_b[0].wal_records);
  ok &= Shape(series_b[2].recovery_ns < series_b[0].recovery_ns,
              "checkpointing shrinks recovery time (%.1f vs %.1f virt us)",
              series_b[2].recovery_ns / 1e3, series_b[0].recovery_ns / 1e3);
  // The flip side of fast restarts: each checkpoint writes a full
  // metadata image to the log device, so tighter cadence must push more
  // bytes through it over the same write history.  Bytes are the strict
  // gate; the wear fraction is the same signal after erase-count
  // quantisation, so it only has to be monotone, not strict.
  ok &= Shape(series_b[2].wal_bytes > series_b[1].wal_bytes &&
                  series_b[1].wal_bytes > series_b[0].wal_bytes,
              "tighter checkpoint cadence writes the log device harder "
              "(%llu > %llu > %llu KiB)",
              (unsigned long long)(series_b[2].wal_bytes / 1024),
              (unsigned long long)(series_b[1].wal_bytes / 1024),
              (unsigned long long)(series_b[0].wal_bytes / 1024));
  ok &= Shape(series_b[2].wal_wear >= series_b[1].wal_wear &&
                  series_b[1].wal_wear >= series_b[0].wal_wear,
              "log-device wear tracks the cadence (%.4f%% >= %.4f%% >= "
              "%.4f%%)",
              series_b[2].wal_wear * 100, series_b[1].wal_wear * 100,
              series_b[0].wal_wear * 100);

  JsonReport json("recovery");
  json.Add("quick", quick);
  for (const Point& p : series_a) {
    const std::string tag = "wal_w" + std::to_string(p.writes);
    json.Add(tag + "_records", static_cast<double>(p.wal_records));
    json.Add(tag + "_recovery_ns", static_cast<double>(p.recovery_ns));
  }
  for (const Point& p : series_b) {
    const std::string tag =
        "ckpt_k" + (p.ckpt_every == 0 ? std::string("never")
                                      : std::to_string(p.ckpt_every));
    json.Add(tag + "_records", static_cast<double>(p.wal_records));
    json.Add(tag + "_recovery_ns", static_cast<double>(p.recovery_ns));
    json.Add(tag + "_wal_wear", p.wal_wear);
    json.Add(tag + "_wal_bytes", static_cast<double>(p.wal_bytes));
  }
  json.Add("shape_ok", ok);
  json.Print();
  return ok ? 0 : 1;
}

// Repair MTTR vs foreground interference — an extension beyond the paper.
//
// The paper's store runs replication-free and repair-free; our maintenance
// service adds background re-replication governed by a repair_bw_fraction
// duty-cycle knob.  This bench quantifies the trade that knob controls: a
// benefactor holding ~1/4 of a replicated dataset dies, and we measure
//   (a) MTTR — virtual time from the death to the service's convergence
//       (detection via missed heartbeats + queued re-replication), and
//   (b) foreground interference — the bandwidth a STREAM-style cold read
//       of the same dataset achieves while repair traffic occupies the
//       surviving devices (the repair is scheduled first, then the read
//       runs from the same virtual start; sim::Resource's gap backfilling
//       lets the foreground soak up whatever the throttle left idle).
// Aggressive repair (f=1.0) minimises MTTR but steals device time;
// f=0.1 cedes ~90% of it back to the foreground at the cost of a longer
// window of reduced redundancy.
#include <algorithm>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

using namespace nvm;
using namespace nvm::bench;

namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr uint32_t kChunks = 256;  // 16 MiB dataset, r=2
constexpr int kBenefactors = 4;
constexpr int64_t kMs = 1'000'000;

struct RunResult {
  double mttr_ms = 0;        // death -> converged (detection + repair)
  double busy_ms = 0;        // repair transfer time
  double idle_ms = 0;        // throttle-injected idle
  double fg_gbps = 0;        // foreground cold-read bandwidth
  uint64_t recreated = 0;
};

RunResult RunWith(double fraction, bool kill) {
  net::ClusterConfig cc;
  cc.num_nodes = kBenefactors + 1;
  net::Cluster cluster(cc);
  store::AggregateStoreConfig sc;
  sc.store.chunk_bytes = kChunk;
  sc.store.replication = 2;
  sc.store.maintenance = true;
  sc.store.heartbeat_period_ms = 1;
  sc.store.heartbeat_misses = 3;
  sc.store.repair_bw_fraction = fraction;
  sc.store.scrub_period_ms = 1'000'000;  // out of the measurement window
  for (int b = 0; b < kBenefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
  sc.contribution_bytes = 256_MiB;
  sc.manager_node = 1;
  store::AggregateStore store(cluster, sc);
  sim::CurrentClock().Reset();
  store::StoreClient& client = store.ClientForNode(0);
  store::MaintenanceService& ms = *store.maintenance();

  // Populate the dataset.
  sim::VirtualClock clock(0);
  auto id = client.Create(clock, "/mttr");
  NVM_CHECK(id.ok());
  NVM_CHECK(client.Fallocate(clock, *id, kChunks * kChunk).ok());
  std::vector<uint8_t> data(kChunks * kChunk);
  Xoshiro256 rng(17);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  Bitmap all(kChunk / client.config().page_bytes);
  all.SetAll();
  for (uint32_t i = 0; i < kChunks; ++i) {
    NVM_CHECK(client.WriteChunkPages(clock, *id, i, all,
                                     {data.data() + i * kChunk, kChunk})
                  .ok());
  }

  // The common virtual "present": the moment the benefactor dies (or, in
  // the baseline, the moment the foreground read starts).
  const int64_t t0 = std::max(clock.now(), ms.now_ns());

  RunResult r;
  if (kill) {
    store.benefactor(1).Kill();
    // Let the service detect, queue, and drain; repair traffic lands on
    // the surviving device/NIC timelines starting a few heartbeats in.
    ms.RunUntil(t0 + 2'000 * kMs);
    const store::MaintenanceStats s = ms.stats();
    NVM_CHECK(ms.QueueEmpty());
    NVM_CHECK(s.converged_at_ns >= t0);
    r.mttr_ms = static_cast<double>(s.converged_at_ns - t0) / 1e6;
    r.busy_ms = static_cast<double>(s.repair_busy_ns) / 1e6;
    r.idle_ms = static_cast<double>(s.throttle_idle_ns) / 1e6;
    r.recreated = s.replicas_recreated;
  }

  // Foreground STREAM-style cold read, launched from the same virtual t0
  // the repair started at: its requests contend with whatever device/NIC
  // time the repair already claimed, and backfill the throttle's gaps.
  sim::VirtualClock fg(t0);
  std::vector<uint8_t> buf(kChunk);
  for (uint32_t i = 0; i < kChunks; ++i) {
    NVM_CHECK(client.ReadChunk(fg, *id, i, buf).ok());
    NVM_CHECK(std::memcmp(buf.data(), data.data() + i * kChunk, kChunk) == 0,
              "read-back mismatch");
  }
  const double secs = static_cast<double>(fg.now() - t0) / 1e9;
  r.fg_gbps = static_cast<double>(kChunks) * static_cast<double>(kChunk) /
              secs / 1e9;
  return r;
}

}  // namespace

int main() {
  Title("Repair MTTR vs foreground interference",
        "16 MiB dataset, r=2 over 4 benefactors; one dies; background "
        "repair at varying repair_bw_fraction");

  const RunResult baseline = RunWith(0.5, /*kill=*/false);
  const double fractions[] = {0.1, 0.5, 1.0};
  std::vector<RunResult> results;
  for (double f : fractions) results.push_back(RunWith(f, /*kill=*/true));

  Table t({"repair_bw_fraction", "MTTR (ms)", "Repair busy (ms)",
           "Throttle idle (ms)", "Replicas recreated", "Foreground (GB/s)",
           "vs baseline"});
  t.AddRow({"no failure", "-", "-", "-", "-", Fmt("%.2f", baseline.fg_gbps),
            "100.0%"});
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    t.AddRow({Fmt("%.1f", fractions[i]), Fmt("%.2f", r.mttr_ms),
              Fmt("%.2f", r.busy_ms), Fmt("%.2f", r.idle_ms),
              Fmt("%llu", static_cast<unsigned long long>(r.recreated)),
              Fmt("%.2f", r.fg_gbps),
              Fmt("%.1f%%", 100.0 * r.fg_gbps / baseline.fg_gbps)});
  }
  t.Print();
  Note("MTTR includes ~3 ms of heartbeat detection (1 ms period, "
       "3 misses) before the first repair batch runs.");

  bool ok = true;
  ok &= Shape(results[0].mttr_ms >= results[1].mttr_ms &&
                  results[1].mttr_ms >= results[2].mttr_ms,
              "MTTR falls as the repair fraction rises (%.2f >= %.2f >= "
              "%.2f ms)",
              results[0].mttr_ms, results[1].mttr_ms, results[2].mttr_ms);
  ok &= Shape(results[0].fg_gbps >= results[2].fg_gbps,
              "throttled repair (f=0.1) leaves the foreground more "
              "bandwidth than aggressive repair (f=1.0): %.2f vs %.2f GB/s",
              results[0].fg_gbps, results[2].fg_gbps);
  ok &= Shape(results[0].fg_gbps >= 0.8 * baseline.fg_gbps,
              "f=0.1 keeps the foreground within 20%% of the no-failure "
              "baseline (%.2f vs %.2f GB/s)",
              results[0].fg_gbps, baseline.fg_gbps);
  ok &= Shape(results[0].recreated == results[2].recreated,
              "every fraction recreates the same replica set (%llu)",
              static_cast<unsigned long long>(results[0].recreated));

  JsonReport json("repair_mttr");
  json.Add("baseline_fg_gbps", baseline.fg_gbps);
  const char* tags[] = {"f0.1", "f0.5", "f1.0"};
  for (size_t i = 0; i < results.size(); ++i) {
    json.Add(std::string(tags[i]) + "_mttr_ms", results[i].mttr_ms);
    json.Add(std::string(tags[i]) + "_busy_ms", results[i].busy_ms);
    json.Add(std::string(tags[i]) + "_idle_ms", results[i].idle_ms);
    json.Add(std::string(tags[i]) + "_fg_gbps", results[i].fg_gbps);
    json.Add(std::string(tags[i]) + "_recreated", results[i].recreated);
  }
  json.Add("shape_ok", ok);
  json.Print();
  return ok ? 0 : 1;
}

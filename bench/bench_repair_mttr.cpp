// Repair MTTR vs foreground interference — an extension beyond the paper.
//
// The paper's store runs replication-free and repair-free; our maintenance
// service adds background re-replication governed by a repair_bw_fraction
// duty-cycle knob.  This bench quantifies the trade that knob controls: a
// benefactor holding ~1/4 of a replicated dataset dies, and we measure
//   (a) MTTR — virtual time from the death to the service's convergence
//       (detection via missed heartbeats + queued re-replication), and
//   (b) foreground interference — the bandwidth a STREAM-style cold read
//       of the same dataset achieves while repair traffic occupies the
//       surviving devices (the repair is scheduled first, then the read
//       runs from the same virtual start; sim::Resource's gap backfilling
//       lets the foreground soak up whatever the throttle left idle).
// Aggressive repair (f=1.0) minimises MTTR but steals device time;
// f=0.1 cedes ~90% of it back to the foreground at the cost of a longer
// window of reduced redundancy.
//
// A second experiment measures corruption MTTR: one replica silently rots
// (a single flipped bit — no reader touches it, no failure is reported)
// and only the scrub's incremental checksum verification can find it.  We
// sweep scrub_verify_bytes and measure the virtual time from the flip to
// detection (quarantine) and to the healed, fully-replicated state.  The
// budget bounds how much of the store each scrub pass re-checksums, so a
// larger budget finds silent rot in fewer passes.
//
// `--quick` shrinks the dataset for CI smoke runs; every SHAPE check
// still executes.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

using namespace nvm;
using namespace nvm::bench;

namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 4;
constexpr int64_t kMs = 1'000'000;

uint32_t g_chunks = 256;  // 16 MiB dataset, r=2 (64 with --quick)

struct Rig {
  net::Cluster cluster;
  store::AggregateStore store;
  store::FileId id = 0;
  std::vector<uint8_t> data;

  explicit Rig(const store::AggregateStoreConfig& sc_in,
               int benefactors = kBenefactors)
      : cluster(MakeClusterConfig(benefactors)),
        store(cluster, Finish(sc_in, benefactors)) {
    sim::CurrentClock().Reset();
    store::StoreClient& client = store.ClientForNode(0);
    sim::VirtualClock clock(0);
    auto created = client.Create(clock, "/mttr");
    NVM_CHECK(created.ok());
    id = *created;
    NVM_CHECK(client.Fallocate(clock, id, g_chunks * kChunk).ok());
    data.resize(g_chunks * kChunk);
    Xoshiro256 rng(17);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
    Bitmap all(kChunk / client.config().page_bytes);
    all.SetAll();
    for (uint32_t i = 0; i < g_chunks; ++i) {
      NVM_CHECK(client.WriteChunkPages(clock, id, i, all,
                                       {data.data() + i * kChunk, kChunk})
                    .ok());
    }
    populate_end_ns = clock.now();
  }

  int64_t populate_end_ns = 0;

  static net::ClusterConfig MakeClusterConfig(int benefactors) {
    net::ClusterConfig cc;
    cc.num_nodes = benefactors + 1;
    return cc;
  }
  static store::AggregateStoreConfig Finish(store::AggregateStoreConfig sc,
                                            int benefactors) {
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = 2;
    sc.store.maintenance = true;
    for (int b = 0; b < benefactors; ++b) {
      sc.benefactor_nodes.push_back(b + 1);
    }
    sc.contribution_bytes = 256_MiB;
    sc.manager_node = 1;
    return sc;
  }

  // Full STREAM-style cold read from virtual `t0`; checks every byte and
  // returns the achieved bandwidth.
  double ColdRead(int64_t t0) {
    store::StoreClient& client = store.ClientForNode(0);
    sim::VirtualClock fg(t0);
    std::vector<uint8_t> buf(kChunk);
    for (uint32_t i = 0; i < g_chunks; ++i) {
      NVM_CHECK(client.ReadChunk(fg, id, i, buf).ok());
      NVM_CHECK(
          std::memcmp(buf.data(), data.data() + i * kChunk, kChunk) == 0,
          "read-back mismatch");
    }
    const double secs = static_cast<double>(fg.now() - t0) / 1e9;
    return static_cast<double>(g_chunks) * static_cast<double>(kChunk) /
           secs / 1e9;
  }
};

struct RunResult {
  double mttr_ms = 0;        // death -> converged (detection + repair)
  double busy_ms = 0;        // repair transfer time
  double idle_ms = 0;        // throttle-injected idle
  double fg_gbps = 0;        // foreground cold-read bandwidth
  uint64_t recreated = 0;
};

RunResult RunWith(double fraction, bool kill) {
  store::AggregateStoreConfig sc;
  sc.store.heartbeat_period_ms = 1;
  sc.store.heartbeat_misses = 3;
  sc.store.repair_bw_fraction = fraction;
  sc.store.scrub_period_ms = 1'000'000;  // out of the measurement window
  Rig rig(sc);
  store::MaintenanceService& ms = *rig.store.maintenance();

  // The common virtual "present": the moment the benefactor dies (or, in
  // the baseline, the moment the foreground read starts).
  const int64_t t0 = std::max(rig.populate_end_ns, ms.now_ns());

  RunResult r;
  if (kill) {
    rig.store.benefactor(1).Kill();
    // Let the service detect, queue, and drain; repair traffic lands on
    // the surviving device/NIC timelines starting a few heartbeats in.
    ms.RunUntil(t0 + 2'000 * kMs);
    const store::MaintenanceStats s = ms.stats();
    NVM_CHECK(ms.QueueEmpty());
    NVM_CHECK(s.converged_at_ns >= t0);
    r.mttr_ms = static_cast<double>(s.converged_at_ns - t0) / 1e6;
    r.busy_ms = static_cast<double>(s.repair_busy_ns) / 1e6;
    r.idle_ms = static_cast<double>(s.throttle_idle_ns) / 1e6;
    r.recreated = s.replicas_recreated;
  }

  // Foreground STREAM-style cold read, launched from the same virtual t0
  // the repair started at: its requests contend with whatever device/NIC
  // time the repair already claimed, and backfill the throttle's gaps.
  r.fg_gbps = rig.ColdRead(t0);
  return r;
}

struct CorruptResult {
  double detect_ms = -1;  // flip -> replica quarantined
  double heal_ms = -1;    // flip -> back at full replication, queue empty
  uint64_t scrub_passes = 0;
};

// Silent single-bit rot on one replica; only scrub verification (budget
// `verify_bytes` per pass) can find it.  The scrub period is long enough
// that population finishes before the first pass, so every budget starts
// its sweep from the same cursor position and detection latency depends
// only on how many passes the budget needs to reach the rotten key.
CorruptResult RunCorrupt(uint64_t verify_bytes) {
  // Long enough that populating even the full dataset (~335 ms of virtual
  // time) finishes before the first pass.
  constexpr int64_t kScrubPeriodMs = 400;
  store::AggregateStoreConfig sc;
  sc.store.heartbeat_period_ms = 1;
  sc.store.heartbeat_misses = 3;
  sc.store.repair_bw_fraction = 0.5;
  sc.store.scrub_period_ms = kScrubPeriodMs;
  sc.store.scrub_verify = true;
  sc.store.scrub_verify_bytes = verify_bytes;
  Rig rig(sc);
  store::Manager& m = rig.store.manager();
  store::MaintenanceService& ms = *rig.store.maintenance();

  const int64_t t0 = std::max(rig.populate_end_ns, ms.now_ns());
  NVM_CHECK(t0 < kScrubPeriodMs * kMs,
            "population outlived the first scrub period; raise the period");

  // Flip one bit in the middle of the keyspace — no reader sees it, no
  // failure is reported, the manager still believes the chunk is healthy.
  sim::VirtualClock mc(t0);
  auto loc = m.GetReadLocation(mc, rig.id, g_chunks / 2);
  NVM_CHECK(loc.ok());
  NVM_CHECK(rig.store.benefactor(static_cast<size_t>(loc->benefactors[0]))
                .CorruptChunk(loc->key, /*byte_offset=*/4097, /*xor_mask=*/0x40)
                .ok());

  CorruptResult r;
  const int64_t step = 100 * kMs;  // detection resolution: 100 ms
  for (int64_t k = 1; k <= 400; ++k) {
    ms.RunUntil(t0 + k * step);
    if (r.detect_ms < 0 && m.corrupt_detected() > 0) {
      r.detect_ms = static_cast<double>(k * step) / 1e6;
    }
    if (r.detect_ms >= 0 && m.corrupt_repaired() > 0 && ms.QueueEmpty()) {
      r.heal_ms = static_cast<double>(k * step) / 1e6;
      break;
    }
  }
  NVM_CHECK(r.detect_ms >= 0, "scrub never detected the flipped bit");
  NVM_CHECK(r.heal_ms >= 0, "quarantined replica was never re-replicated");
  r.scrub_passes = ms.stats().scrub_passes;

  // Zero wrong bytes: after healing, every replica serves the original
  // data (the cold read fails over and re-verifies on the way).
  rig.ColdRead(ms.now_ns());
  return r;
}

// --- Repair traffic: re-replication vs fragment re-encode. -------------
//
// One benefactor dies and the service heals the store.  Replication reads
// the lost chunk once from its survivor and writes one copy: 2 device
// bytes moved per lost byte.  RS(4,2) must read k=4 verified fragments to
// re-encode ONE missing fragment and writes that fragment: k+1 = 5 device
// bytes per lost byte — erasure coding trades steady-state space for
// repair amplification, and this experiment pins both constants.
struct TrafficResult {
  double mttr_ms = 0;
  uint64_t lost_bytes = 0;     // payload the dead benefactor held
  uint64_t traffic_bytes = 0;  // device data moved during the repair
  uint64_t repaired = 0;       // members recreated (replicas or fragments)
  double per_lost = 0;         // traffic_bytes / lost_bytes
};

TrafficResult RunRepairTraffic(bool ec) {
  store::AggregateStoreConfig sc;
  sc.store.heartbeat_period_ms = 1;
  sc.store.heartbeat_misses = 3;
  sc.store.repair_bw_fraction = 0.5;
  sc.store.scrub_period_ms = 1'000'000;  // out of the measurement window
  int benefactors = kBenefactors;
  if (ec) {
    sc.store.redundancy = store::RedundancyMode::kErasure;
    sc.store.ec_k = 4;
    sc.store.ec_m = 2;
    benefactors = 8;  // six failure domains per stripe + repair spares
  }
  Rig rig(sc, benefactors);
  store::MaintenanceService& ms = *rig.store.maintenance();
  const int64_t t0 = std::max(rig.populate_end_ns, ms.now_ns());

  auto device_traffic = [&]() {
    uint64_t sum = 0;
    for (int b = 0; b < benefactors; ++b) {
      const store::Benefactor& ben =
          rig.store.benefactor(static_cast<size_t>(b));
      sum += ben.data_bytes_in() + ben.data_bytes_out();
    }
    return sum;
  };

  TrafficResult r;
  r.lost_bytes = rig.store.benefactor(1).bytes_used();
  const uint64_t before = device_traffic();
  rig.store.benefactor(1).Kill();
  ms.RunUntil(t0 + 2'000 * kMs);
  NVM_CHECK(ms.QueueEmpty());
  const store::MaintenanceStats s = ms.stats();
  NVM_CHECK(s.converged_at_ns >= t0);
  r.mttr_ms = static_cast<double>(s.converged_at_ns - t0) / 1e6;
  r.traffic_bytes = device_traffic() - before;
  r.repaired = ec ? rig.store.manager().ec_fragments_repaired()
                  : s.replicas_recreated;
  r.per_lost = static_cast<double>(r.traffic_bytes) /
               static_cast<double>(r.lost_bytes);
  // Byte-exactness after the heal (reads fail over past the dead holder).
  rig.ColdRead(ms.now_ns());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (quick) g_chunks = 64;  // 4 MiB dataset for CI smoke runs

  Title("Repair MTTR vs foreground interference",
        Fmt("%u MiB dataset, r=2 over 4 benefactors; one dies; background "
            "repair at varying repair_bw_fraction",
            static_cast<unsigned>(g_chunks * kChunk >> 20)));

  const RunResult baseline = RunWith(0.5, /*kill=*/false);
  const double fractions[] = {0.1, 0.5, 1.0};
  std::vector<RunResult> results;
  for (double f : fractions) results.push_back(RunWith(f, /*kill=*/true));

  Table t({"repair_bw_fraction", "MTTR (ms)", "Repair busy (ms)",
           "Throttle idle (ms)", "Replicas recreated", "Foreground (GB/s)",
           "vs baseline"});
  t.AddRow({"no failure", "-", "-", "-", "-", Fmt("%.2f", baseline.fg_gbps),
            "100.0%"});
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    t.AddRow({Fmt("%.1f", fractions[i]), Fmt("%.2f", r.mttr_ms),
              Fmt("%.2f", r.busy_ms), Fmt("%.2f", r.idle_ms),
              Fmt("%llu", static_cast<unsigned long long>(r.recreated)),
              Fmt("%.2f", r.fg_gbps),
              Fmt("%.1f%%", 100.0 * r.fg_gbps / baseline.fg_gbps)});
  }
  t.Print();
  Note("MTTR includes ~3 ms of heartbeat detection (1 ms period, "
       "3 misses) before the first repair batch runs.");

  bool ok = true;
  ok &= Shape(results[0].mttr_ms >= results[1].mttr_ms &&
                  results[1].mttr_ms >= results[2].mttr_ms,
              "MTTR falls as the repair fraction rises (%.2f >= %.2f >= "
              "%.2f ms)",
              results[0].mttr_ms, results[1].mttr_ms, results[2].mttr_ms);
  ok &= Shape(results[0].fg_gbps >= results[2].fg_gbps,
              "throttled repair (f=0.1) leaves the foreground more "
              "bandwidth than aggressive repair (f=1.0): %.2f vs %.2f GB/s",
              results[0].fg_gbps, results[2].fg_gbps);
  ok &= Shape(results[0].fg_gbps >= 0.8 * baseline.fg_gbps,
              "f=0.1 keeps the foreground within 20%% of the no-failure "
              "baseline (%.2f vs %.2f GB/s)",
              results[0].fg_gbps, baseline.fg_gbps);
  ok &= Shape(results[0].recreated == results[2].recreated,
              "every fraction recreates the same replica set (%llu)",
              static_cast<unsigned long long>(results[0].recreated));

  // --- Corruption MTTR: silent bit rot vs the scrub verification budget.
  const uint64_t total = static_cast<uint64_t>(g_chunks) * kChunk;
  const uint64_t budgets[] = {total / 64, total / 16, total / 4};
  std::vector<CorruptResult> rot;
  for (uint64_t b : budgets) rot.push_back(RunCorrupt(b));

  Table ct({"scrub_verify_bytes", "Detect (ms)", "Heal (ms)",
            "Scrub passes"});
  for (size_t i = 0; i < rot.size(); ++i) {
    ct.AddRow({Fmt("%llu KiB", static_cast<unsigned long long>(
                                   budgets[i] >> 10)),
               Fmt("%.0f", rot[i].detect_ms), Fmt("%.0f", rot[i].heal_ms),
               Fmt("%llu",
                   static_cast<unsigned long long>(rot[i].scrub_passes))});
  }
  ct.Print();
  Note("one flipped bit on one replica; detection = quarantine by the "
       "checksum scrub (400 ms pass period), heal = full replication "
       "restored.");

  ok &= Shape(rot[0].detect_ms >= rot[1].detect_ms &&
                  rot[1].detect_ms >= rot[2].detect_ms,
              "a larger verification budget finds silent rot sooner "
              "(%.0f >= %.0f >= %.0f ms)",
              rot[0].detect_ms, rot[1].detect_ms, rot[2].detect_ms);
  for (const CorruptResult& r : rot) {
    ok &= Shape(r.heal_ms >= r.detect_ms,
                "healing completes after detection (%.0f >= %.0f ms)",
                r.heal_ms, r.detect_ms);
  }

  // --- Repair traffic: replication vs RS(4,2) fragment re-encode.
  const TrafficResult t_repl = RunRepairTraffic(/*ec=*/false);
  const TrafficResult t_ec = RunRepairTraffic(/*ec=*/true);
  Table et({"mode", "MTTR (ms)", "Lost (MiB)", "Repair traffic (MiB)",
            "Members recreated", "Bytes moved / lost byte"});
  et.AddRow({"replication r=2", Fmt("%.2f", t_repl.mttr_ms),
             Fmt("%.2f", static_cast<double>(t_repl.lost_bytes) / 1048576.0),
             Fmt("%.2f", static_cast<double>(t_repl.traffic_bytes) / 1048576.0),
             Fmt("%llu", static_cast<unsigned long long>(t_repl.repaired)),
             Fmt("%.2f", t_repl.per_lost)});
  et.AddRow({"RS(4,2)", Fmt("%.2f", t_ec.mttr_ms),
             Fmt("%.2f", static_cast<double>(t_ec.lost_bytes) / 1048576.0),
             Fmt("%.2f", static_cast<double>(t_ec.traffic_bytes) / 1048576.0),
             Fmt("%llu", static_cast<unsigned long long>(t_ec.repaired)),
             Fmt("%.2f", t_ec.per_lost)});
  et.Print();
  Note("replication repairs a lost chunk with one read + one write "
       "(2 bytes/byte); RS(4,2) re-encodes a lost fragment from k=4 "
       "verified survivors (k reads + 1 write = 5 bytes/byte).");

  ok &= Shape(t_repl.per_lost >= 1.7 && t_repl.per_lost <= 2.3,
              "replicated repair moves ~2 device bytes per lost byte "
              "(%.2f)",
              t_repl.per_lost);
  ok &= Shape(t_ec.per_lost >= 4.2 && t_ec.per_lost <= 5.8,
              "RS(4,2) repair moves ~k+1 = 5 device bytes per lost byte "
              "(%.2f)",
              t_ec.per_lost);
  ok &= Shape(t_ec.mttr_ms > 0 && t_ec.repaired > 0,
              "the service re-encoded every missing fragment (%llu) in "
              "%.2f ms",
              static_cast<unsigned long long>(t_ec.repaired), t_ec.mttr_ms);

  JsonReport json("repair_mttr");
  json.Add("quick", quick);
  json.Add("baseline_fg_gbps", baseline.fg_gbps);
  const char* tags[] = {"f0.1", "f0.5", "f1.0"};
  for (size_t i = 0; i < results.size(); ++i) {
    json.Add(std::string(tags[i]) + "_mttr_ms", results[i].mttr_ms);
    json.Add(std::string(tags[i]) + "_busy_ms", results[i].busy_ms);
    json.Add(std::string(tags[i]) + "_idle_ms", results[i].idle_ms);
    json.Add(std::string(tags[i]) + "_fg_gbps", results[i].fg_gbps);
    json.Add(std::string(tags[i]) + "_recreated", results[i].recreated);
  }
  const char* ctags[] = {"vb_small", "vb_mid", "vb_large"};
  for (size_t i = 0; i < rot.size(); ++i) {
    json.Add(std::string(ctags[i]) + "_budget_bytes", budgets[i]);
    json.Add(std::string(ctags[i]) + "_detect_ms", rot[i].detect_ms);
    json.Add(std::string(ctags[i]) + "_heal_ms", rot[i].heal_ms);
  }
  json.Add("repl_repair_traffic_per_lost", t_repl.per_lost);
  json.Add("ec_repair_traffic_per_lost", t_ec.per_lost);
  json.Add("repl_repair_mttr_ms", t_repl.mttr_ms);
  json.Add("ec_repair_mttr_ms", t_ec.mttr_ms);
  json.Add("ec_fragments_repaired", t_ec.repaired);
  json.Add("shape_ok", ok);
  json.Print();
  return ok ? 0 : 1;
}

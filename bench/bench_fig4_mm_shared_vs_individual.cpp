// Figure 4 — MM with a shared mmap file for matrix B (one per node, "-S")
// versus per-process individual files ("-I").
//
// Paper: individual files are up to ~18% slower (extra broadcast volume
// plus no cross-process cache sharing), with the gap largest in the
// 8-procs-per-node configurations; individual mode still beats DRAM-only.
#include "bench_mm_common.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

int main() {
  Title("Figure 4",
        "MM: shared (-S) vs individual (-I) mmap files for matrix B "
        "(row-major)");

  const MmConfig configs[] = {
      {2, 16, 16, false},
      {8, 16, 16, false},
      {8, 8, 8, false},
      {8, 8, 8, true},
  };

  MatmulOptions base;
  Table t({"Config", "Shared total (s)", "Individual total (s)",
           "I/S ratio"});
  double max_ratio = 0;
  double ratio_8x = 0;
  std::vector<double> shared_totals;
  for (const auto& c : configs) {
    auto opts_s = base;
    opts_s.shared_mmap = true;
    auto rs = RunMmConfig(c, opts_s);
    auto opts_i = base;
    opts_i.shared_mmap = false;
    auto ri = RunMmConfig(c, opts_i);
    NVM_CHECK(rs.verified && ri.verified);
    const double ratio = ri.total_s / rs.total_s;
    max_ratio = std::max(max_ratio, ratio);
    if (c.x == 8) ratio_8x = std::max(ratio_8x, ratio);
    shared_totals.push_back(rs.total_s);
    t.AddRow({MmLabel(c), Fmt("%.2f", rs.total_s), Fmt("%.2f", ri.total_s),
              Fmt("%.3f", ratio)});
  }
  t.Print();

  Note("paper: individual mode up to 18%% slower; measured max ratio "
       "%.3f — our gap is larger because the per-chunk request latency "
       "does not scale down with the data (EXPERIMENTS.md), so the 8x "
       "fetch traffic of individual mode is hidden less effectively",
       max_ratio);
  Shape(max_ratio > 1.0, "individual mmap files are slower than shared");
  Shape(max_ratio < 12.0,
        "the individual mode is slower by a bounded factor, not broken");
  Shape(ratio_8x >= max_ratio - 1e-9,
        "the gap peaks when all 8 cores contend (paper: '(8:y:z) cases')");
  return 0;
}

// §IV-B-5 — checkpointing DRAM + NVM variables (the paper's §III-E
// design; the evaluation text is truncated in the available source, so
// this bench quantifies the mechanism's promised properties):
//   * ssdcheckpoint() links NVM chunks instead of copying them,
//   * copy-on-write isolates earlier checkpoints from later writes,
//   * incremental checkpoints pay only for chunks touched since the
//     previous one, reducing both time and flash wear.
#include "bench_util.hpp"
#include "workloads/ckpt.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

int main() {
  Title("Checkpointing (paper SIII-E / SIV-B-5)",
        "ssdcheckpoint(): linked + COW vs naive full copy; 1 GiB-class "
        "DRAM state + 4 GiB-class NVM variable, 10% dirtied per step");

  CkptOptions linked_opts;  // defaults: 8 MiB DRAM, 32 MiB NVM, 3 steps
  Testbed tb1;
  auto linked = RunCheckpointStudy(tb1, linked_opts);

  auto copy_opts = linked_opts;
  copy_opts.link_nvm = false;
  Testbed tb2;
  auto copied = RunCheckpointStudy(tb2, copy_opts);

  NVM_CHECK(linked.restart_verified && copied.restart_verified,
            "restart verification failed");
  NVM_CHECK(linked.old_checkpoint_intact,
            "COW failed to protect the old checkpoint");

  Table t({"Timestep", "Linked time (s)", "Linked SSD writes",
           "Copied time (s)", "Copied SSD writes"});
  for (size_t s = 0; s < linked.steps.size(); ++s) {
    t.AddRow({Fmt("t%zu", s), Fmt("%.3f", linked.steps[s].seconds),
              FormatBytes(linked.steps[s].ssd_bytes_written),
              Fmt("%.3f", copied.steps[s].seconds),
              FormatBytes(copied.steps[s].ssd_bytes_written)});
  }
  t.Print();

  const auto& inc = linked.steps[1];
  const auto& full = copied.steps[1];
  Note("restart from the last checkpoint: verified bit-exact");
  Note("checkpoint t0 re-read after later writes: intact (COW)");
  Note("incremental step writes %s vs naive %s",
       FormatBytes(inc.ssd_bytes_written).c_str(),
       FormatBytes(full.ssd_bytes_written).c_str());
  Shape(linked.steps[0].seconds < copied.steps[0].seconds,
        "even the first checkpoint is faster with linking (no NVM copy)");
  Shape(inc.ssd_bytes_written < full.ssd_bytes_written / 2,
        "incremental checkpoints write a fraction of the naive volume");
  Shape(inc.seconds < full.seconds,
        "incremental checkpoints are faster than full copies");
  return 0;
}

// Redundancy overhead: replication-2 vs RS(4,2) under a STREAM write.
//
// The paper's store keeps one copy of everything; our redundancy layer
// offers two ways to survive a benefactor loss, and this bench pins the
// cost constants that separate them.  A STREAM-style sequential writer
// pushes the same logical dataset through both modes over the same
// 8-benefactor cluster and we measure
//   (a) write amplification — device bytes ingested per logical byte
//       (replication writes every chunk twice: 2.0x; RS(4,2) writes
//       4 data + 2 parity fragments of chunk/4 bytes each: 1.5x),
//   (b) space overhead — device bytes held per logical byte at rest
//       (same constants: the store keeps what it wrote), and
//   (c) the achieved write bandwidth in virtual time, where erasure
//       coding's smaller device footprint is partly offset by fanning
//       each chunk out as six sub-chunk fragment writes.
// Both datasets are read back byte-exact afterwards so the overhead
// numbers describe stores that actually work.
//
// `--quick` shrinks the dataset for CI smoke runs; every SHAPE check
// still executes.
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

using namespace nvm;
using namespace nvm::bench;

namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 8;

uint32_t g_chunks = 512;  // 32 MiB logical dataset (128 with --quick)

struct ModeResult {
  double write_gbps = 0;  // logical bytes / virtual write time
  double write_amp = 0;   // device bytes ingested / logical bytes
  double space_amp = 0;   // device bytes at rest / logical bytes
};

ModeResult RunMode(bool ec) {
  store::AggregateStoreConfig sc;
  sc.store.chunk_bytes = kChunk;
  sc.store.replication = 2;
  if (ec) {
    sc.store.redundancy = store::RedundancyMode::kErasure;
    sc.store.ec_k = 4;
    sc.store.ec_m = 2;
  }
  for (int b = 0; b < kBenefactors; ++b) {
    sc.benefactor_nodes.push_back(b + 1);
  }
  sc.contribution_bytes = 256_MiB;
  sc.manager_node = 1;
  net::ClusterConfig cc;
  cc.num_nodes = kBenefactors + 1;
  net::Cluster cluster(cc);
  store::AggregateStore store(cluster, sc);
  sim::CurrentClock().Reset();

  store::StoreClient& client = store.ClientForNode(0);
  sim::VirtualClock clock(0);
  auto created = client.Create(clock, ec ? "/ec" : "/repl");
  NVM_CHECK(created.ok());
  const store::FileId id = *created;
  const uint64_t logical = static_cast<uint64_t>(g_chunks) * kChunk;
  NVM_CHECK(client.Fallocate(clock, id, logical).ok());

  std::vector<uint8_t> data(logical);
  Xoshiro256 rng(23);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());

  // STREAM write: every chunk, sequentially, full pages.
  Bitmap all(kChunk / client.config().page_bytes);
  all.SetAll();
  const int64_t w0 = clock.now();
  for (uint32_t i = 0; i < g_chunks; ++i) {
    NVM_CHECK(client.WriteChunkPages(clock, id, i, all,
                                     {data.data() + i * kChunk, kChunk})
                  .ok());
  }
  const double write_secs = static_cast<double>(clock.now() - w0) / 1e9;

  uint64_t ingested = 0;
  uint64_t at_rest = 0;
  for (int b = 0; b < kBenefactors; ++b) {
    const store::Benefactor& ben = store.benefactor(static_cast<size_t>(b));
    ingested += ben.data_bytes_in();
    at_rest += ben.bytes_used();
  }

  // Byte-exact read-back: the cheaper mode still has to return the data.
  std::vector<uint8_t> buf(kChunk);
  for (uint32_t i = 0; i < g_chunks; ++i) {
    NVM_CHECK(client.ReadChunk(clock, id, i, buf).ok());
    NVM_CHECK(std::memcmp(buf.data(), data.data() + i * kChunk, kChunk) == 0,
              "read-back mismatch");
  }

  ModeResult r;
  r.write_gbps = static_cast<double>(logical) / write_secs / 1e9;
  r.write_amp =
      static_cast<double>(ingested) / static_cast<double>(logical);
  r.space_amp =
      static_cast<double>(at_rest) / static_cast<double>(logical);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  if (quick) g_chunks = 128;  // 8 MiB logical dataset for CI smoke runs

  Title("Redundancy overhead — replication-2 vs RS(4,2)",
        Fmt("%u MiB STREAM write over %d benefactors; device bytes per "
            "logical byte, in flight and at rest",
            static_cast<unsigned>(
                (static_cast<uint64_t>(g_chunks) * kChunk) >> 20),
            kBenefactors));

  const ModeResult repl = RunMode(/*ec=*/false);
  const ModeResult ec = RunMode(/*ec=*/true);

  Table t({"mode", "Write (GB/s)", "Write amplification", "Space overhead",
           "Survives"});
  t.AddRow({"replication r=2", Fmt("%.2f", repl.write_gbps),
            Fmt("%.3fx", repl.write_amp), Fmt("%.3fx", repl.space_amp),
            "any 1 loss"});
  t.AddRow({"RS(4,2)", Fmt("%.2f", ec.write_gbps), Fmt("%.3fx", ec.write_amp),
            Fmt("%.3fx", ec.space_amp), "any 2 losses"});
  t.Print();
  Note("RS(4,2) stores (k+m)/k = 1.5 device bytes per logical byte yet "
       "tolerates two losses; replication pays 2.0x for one.");

  bool ok = true;
  ok &= Shape(repl.write_amp >= 1.9 && repl.write_amp <= 2.1,
              "replication-2 ingests ~2 device bytes per logical byte "
              "(%.3f)",
              repl.write_amp);
  ok &= Shape(ec.write_amp >= 1.4 && ec.write_amp <= 1.6,
              "RS(4,2) ingests ~(k+m)/k = 1.5 device bytes per logical "
              "byte (%.3f)",
              ec.write_amp);
  ok &= Shape(ec.write_amp < repl.write_amp,
              "erasure coding writes less than replication (%.3f < %.3f)",
              ec.write_amp, repl.write_amp);
  ok &= Shape(repl.space_amp >= 1.9 && repl.space_amp <= 2.1,
              "replication-2 holds ~2x the logical bytes at rest (%.3f)",
              repl.space_amp);
  ok &= Shape(ec.space_amp >= 1.4 && ec.space_amp <= 1.6,
              "RS(4,2) holds ~1.5x the logical bytes at rest (%.3f)",
              ec.space_amp);

  JsonReport json("ec_overhead");
  json.Add("quick", quick);
  json.Add("repl_write_gbps", repl.write_gbps);
  json.Add("repl_write_amp", repl.write_amp);
  json.Add("repl_space_amp", repl.space_amp);
  json.Add("ec_write_gbps", ec.write_gbps);
  json.Add("ec_write_amp", ec.write_amp);
  json.Add("ec_space_amp", ec.space_amp);
  json.Add("shape_ok", ok);
  json.Print();
  return ok ? 0 : 1;
}

// Checkpoint drain — the claim the paper builds its checkpoint design on
// (from the authors' prior work, restated in §III-E): "checkpointing to
// such an intermediate device and draining to PFS in the background is an
// extremely viable alternative and can help alleviate the I/O bottleneck."
//
// A timestep loop checkpoints a DRAM+NVM state either (a) directly to the
// PFS — the application blocks for the whole PFS write — or (b) to the
// aggregate NVM store via ssdcheckpoint(), with a background drainer
// pushing the restart file to the PFS.  We compare the application-visible
// checkpoint stall.
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "nvmalloc/runtime.hpp"
#include "workloads/testbed.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

constexpr uint64_t kDramBytes = ScaledBytes(1_GiB);  // 8 MiB
constexpr uint64_t kNvmBytes = ScaledBytes(4_GiB);   // 32 MiB
constexpr int kSteps = 4;

struct LoopResult {
  double visible_stall_s = 0;   // application-blocking checkpoint time
  double background_s = 0;      // drain completion (virtual), max over steps
};

// Direct-to-PFS baseline: every checkpoint streams DRAM + NVM content to
// the PFS synchronously.
LoopResult DirectToPfs(Testbed& tb) {
  NvmallocRuntime& nvm = tb.runtime(0);
  auto& clock = sim::CurrentClock();
  auto region = nvm.SsdMalloc(kNvmBytes);
  NVM_CHECK(region.ok());
  std::vector<uint8_t> dram(kDramBytes, 1);
  std::vector<uint8_t> chunk(64_KiB);
  NVM_CHECK((*region)->Write(0, std::vector<uint8_t>(kNvmBytes, 2)).ok());

  LoopResult r;
  for (int t = 0; t < kSteps; ++t) {
    const int64_t t0 = clock.now();
    tb.PfsWrite(clock, kDramBytes);
    // The NVM variable must be read back from the store and shipped too.
    for (uint64_t pos = 0; pos < kNvmBytes; pos += chunk.size()) {
      NVM_CHECK(
          nvm.mount().cache().Read(clock, (*region)->file_id(), pos, chunk)
              .ok());
      tb.PfsWrite(clock, chunk.size());
    }
    r.visible_stall_s +=
        static_cast<double>(clock.now() - t0) / 1e9;
  }
  NVM_CHECK(nvm.SsdFree(*region).ok());
  return r;
}

// NVMalloc path: ssdcheckpoint to the aggregate store (fast, chunk-linked)
// plus a background drain of the restart file to the PFS.
LoopResult ViaNvmStore(Testbed& tb) {
  NvmallocRuntime& nvm = tb.runtime(0);
  auto& clock = sim::CurrentClock();
  auto region = nvm.SsdMalloc(kNvmBytes);
  NVM_CHECK(region.ok());
  std::vector<uint8_t> dram(kDramBytes, 1);
  NVM_CHECK((*region)->Write(0, std::vector<uint8_t>(kNvmBytes, 2)).ok());

  LoopResult r;
  for (int t = 0; t < kSteps; ++t) {
    CheckpointSpec spec;
    spec.dram.push_back({dram.data(), dram.size()});
    spec.nvm.push_back(*region);
    const std::string name = "/ckpt/drain_t" + std::to_string(t);

    const int64_t t0 = clock.now();
    auto info = nvm.SsdCheckpoint(spec, name);
    NVM_CHECK(info.ok());
    r.visible_stall_s += static_cast<double>(clock.now() - t0) / 1e9;

    // Background drainer ships the restart file to the PFS.
    auto drained = nvm.DrainCheckpoint(
        name, [&](sim::VirtualClock& bg, uint64_t /*offset*/,
                  std::span<const uint8_t> data) {
          tb.PfsWrite(bg, data.size());
          return OkStatus();
        });
    NVM_CHECK(drained.ok());
    r.background_s = std::max(
        r.background_s, static_cast<double>(drained->background_ns) / 1e9);
  }
  NVM_CHECK(nvm.SsdFree(*region).ok());
  return r;
}

}  // namespace

int main() {
  Title("Checkpoint drain",
        "application-visible checkpoint stall: direct-to-PFS vs "
        "ssdcheckpoint + background drain (1 GiB-class DRAM + 4 GiB-class "
        "NVM state, 4 timesteps)");

  Testbed tb_direct;
  auto direct = DirectToPfs(tb_direct);
  Testbed tb_nvm;
  auto nvm = ViaNvmStore(tb_nvm);

  Table t({"Strategy", "App-visible stall (s)", "Notes"});
  t.AddRow({"direct to PFS", Fmt("%.3f", direct.visible_stall_s),
            "application blocks for the full PFS write"});
  t.AddRow({"NVM store + background drain", Fmt("%.3f", nvm.visible_stall_s),
            Fmt("drain completes at t=%.3fs in the background",
                nvm.background_s)});
  t.Print();

  Note("NVMalloc hides %.0f%% of the checkpoint stall behind the "
       "intermediate store (paper: the aggregate store 'can help "
       "alleviate the I/O bottleneck')",
       100.0 * (1.0 - nvm.visible_stall_s / direct.visible_stall_s));
  Shape(nvm.visible_stall_s < 0.5 * direct.visible_stall_s,
        "the intermediate NVM store removes most of the visible stall");
  Shape(nvm.background_s > 0,
        "the drain really happens (in background virtual time)");
  return 0;
}

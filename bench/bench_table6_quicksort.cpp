// Table VI — parallel sorting of a 200 GB-class list.
//
// Paper (seconds): DRAM(8:16:0) two-pass 18611; L-SSD(8:16:16) single
// pass 1848 (10x speedup); R-SSD(8:8:8) 4235 (slower than L — half the
// nodes, double the per-node work — but still beats two-pass DRAM).
#include "bench_util.hpp"
#include "workloads/psort.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

namespace {

PsortResult RunConfig(PsortOptions::Mode mode, size_t x, size_t y,
                      size_t z, bool remote, double dram_fraction) {
  TestbedOptions to = PsortTestbedOptions(z, remote);
  Testbed tb(to);
  PsortOptions o;
  o.mode = mode;
  o.procs_per_node = x;
  o.nodes = y;
  o.dram_fraction = dram_fraction;
  return RunPsort(tb, o);
}

}  // namespace

int main() {
  Title("Table VI",
        "parallel quicksort of a 200 GB-class list (scaled to 200 MiB; "
        "aggregate DRAM 128 MiB)");

  // DRAM(8:16:0): two passes through the PFS.
  auto dram = RunConfig(PsortOptions::Mode::kDramTwoPass, 8, 16, 1, false,
                        1.0);
  // L-SSD(8:16:16): 100 GB-class in DRAM + 100 on 16 local SSDs.
  auto local = RunConfig(PsortOptions::Mode::kHybridNvm, 8, 16, 16, false,
                         0.5);
  // R-SSD(8:8:8): 50 GB-class in DRAM + 150 on 8 remote SSDs.
  auto remote = RunConfig(PsortOptions::Mode::kHybridNvm, 8, 8, 8, true,
                          0.25);
  NVM_CHECK(dram.verified && local.verified && remote.verified,
            "sort verification failed: dram=%d local=%d remote=%d",
            dram.verified, local.verified, remote.verified);

  Table t({"Quicksort", "DRAM(8:16:0)", "L-SSD(8:16:16)", "R-SSD(8:8:8)"});
  t.AddRow({"Time (s)", Fmt("%.2f", dram.seconds),
            Fmt("%.2f", local.seconds), Fmt("%.2f", remote.seconds)});
  t.AddRow({"Pass (#)", Fmt("%d", dram.passes), Fmt("%d", local.passes),
            Fmt("%d", remote.passes)});
  t.Print();

  Note("paper (s): 18611 / 1848 / 4235 — L-SSD gives ~10x over the "
       "two-pass DRAM run; measured speedup %.1fx",
       dram.seconds / local.seconds);
  Shape(local.seconds < dram.seconds / 2,
        "single-pass hybrid sort beats the two-pass DRAM sort by a large "
        "factor (paper: 10x)");
  Shape(remote.seconds > local.seconds,
        "R-SSD(8:8:8) is slower than L-SSD(8:16:16): half the nodes, "
        "double the workload");
  Shape(remote.seconds < dram.seconds,
        "even the remote-SSD configuration beats the two-pass DRAM run");
  return 0;
}

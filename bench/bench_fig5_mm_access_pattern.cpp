// Figure 5 — MM computing time with row-major versus column-major access
// to the NVM-resident matrix B.
//
// Paper: column-major is much slower everywhere; its penalty explodes as
// SSD resources shrink (local -> remote -> fewer benefactors) while the
// row-major times stay flat — a sub-optimal access pattern destroys the
// cache hierarchy's ability to hide SSD latency.
#include "bench_mm_common.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

int main() {
  Title("Figure 5",
        "MM computing time (s): row-major vs column-major access to B");

  const MmConfig configs[] = {
      {2, 16, 0, false},  {2, 16, 16, false}, {8, 16, 16, false},
      {8, 8, 8, false},   {8, 8, 8, true},    {8, 8, 4, true},
      {8, 8, 2, true},    {8, 8, 1, true},
  };

  MatmulOptions base;
  Table t({"Config", "Access-B-in-Row (s)", "Access-B-in-Column (s)",
           "Col/Row"});
  std::vector<double> row_times;
  std::vector<double> col_times;
  for (const auto& c : configs) {
    auto o_row = base;
    o_row.column_major = false;
    auto rr = RunMmConfig(c, o_row);
    auto o_col = base;
    o_col.column_major = true;
    auto rc = RunMmConfig(c, o_col);
    if (!rr.feasible) {
      t.AddRow({MmLabel(c), "-", "-", "infeasible"});
      continue;
    }
    NVM_CHECK(rr.verified && rc.verified);
    row_times.push_back(rr.compute_s);
    col_times.push_back(rc.compute_s);
    t.AddRow({MmLabel(c), Fmt("%.2f", rr.compute_s),
              Fmt("%.2f", rc.compute_s),
              Fmt("%.2f", rc.compute_s / rr.compute_s)});
  }
  t.Print();

  // Shape checks: row-major stability is judged across SSD resources at a
  // fixed process count — the (8:8:z) series — because row-major times
  // legitimately differ with the number of processes (as in the paper).
  const size_t tail = row_times.size();
  double row_spread = *std::max_element(row_times.begin() + 3,
                                        row_times.begin() + tail) /
                      *std::min_element(row_times.begin() + 3,
                                        row_times.begin() + tail);
  const double col_first = col_times[1];   // L-SSD(2:16:16)... first NVM
  const double col_last = col_times.back();  // R-SSD(8:8:1)
  Note("paper: column-major much slower; degrades further as SSD "
       "resources shrink, while row-major stays stable");
  Shape(col_times[2] > 1.5 * row_times[2],
        "column-major compute is much slower than row-major on NVM");
  Shape(row_spread < 1.7,
        "row-major compute is stable as SSD resources shrink (8:8:z)");
  Shape(col_last > col_first,
        "column-major degrades as benefactors shrink/move remote");
  return 0;
}

// Figure 6 — MM with 8 GiB-class matrices (problem larger than node
// DRAM), shared mmap file, row-major.
//
// Paper: with 8 GiB per matrix on 8 GiB/node machines, NVMalloc runs the
// job in all four configurations; the computation grows by ~9x from the
// 2 GiB case (not the naive 16x — longer rows tile better), and remote /
// fewer benefactors again cost little.
#include "bench_mm_common.hpp"

using namespace nvm;
using namespace nvm::bench;
using namespace nvm::workloads;

int main() {
  Title("Figure 6",
        "MM with 8 GiB-class matrices (scaled to 16 MiB; node DRAM "
        "16 MiB -> problem exceeds memory), shared mmap, row-major");

  const MmConfig configs[] = {
      {8, 16, 16, false},
      {8, 8, 8, false},
      {8, 8, 8, true},
      {8, 8, 4, true},
  };

  MatmulOptions big;
  big.matrix_bytes = MmScaledBytes(8_GiB);  // 16 MiB => n = 1448

  Table t(MmHeaders());
  std::vector<MatmulResult> results;
  for (const auto& c : configs) {
    results.push_back(RunMmConfig(c, big));
    NVM_CHECK(results.back().verified);
    AddMmRow(t, c, results.back());
  }
  t.Print();

  // Compare compute growth against the 2 GiB-class run of Fig. 3.
  MatmulOptions small;  // default 4 MiB
  auto base = RunMmConfig({8, 16, 16, false}, small);
  const double growth = results[0].compute_s / base.compute_s;
  Note("compute growth 2 GiB -> 8 GiB class: %.1fx (paper: ~9x, naive "
       "scaling would be 16x; longer rows tile better)",
       growth);
  Shape(growth > 4.0 && growth < 16.0,
        "compute grows sub-naively with problem size (paper: 9x < 16x)");
  Shape(results[2].total_s < 1.2 * results[1].total_s,
        "remote SSDs stay cheap at the large size");
  Shape(results[3].total_s < 1.3 * results[2].total_s,
        "halving benefactors stays cheap at the large size");
  const uint64_t total_matrix_bytes = 3 * big.matrix_bytes;
  Note("3 matrices of %s vs %s DRAM/node: NVMalloc runs a problem larger "
       "than physical memory",
       FormatBytes(big.matrix_bytes).c_str(),
       FormatBytes(MmScaledBytes(8_GiB)).c_str());
  (void)total_matrix_bytes;
  return 0;
}

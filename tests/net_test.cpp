// Unit tests for the simulated cluster: network transfers (loopback vs
// NIC, fan-in contention), node DRAM budgets, placements, and process
// execution with virtual clocks.
#include <gtest/gtest.h>

#include "net/cluster.hpp"
#include "net/network.hpp"
#include "sim/clock.hpp"

namespace nvm::net {
namespace {

NetworkProfile TestProfile() {
  NetworkProfile p;
  p.nic_bw_mbps = 100.0;  // 100 MB/s for easy arithmetic
  p.wire_latency_ns = 10'000;
  p.loopback_bw_mbps = 1000.0;
  p.loopback_latency_ns = 1'000;
  return p;
}

TEST(NetworkTest, LoopbackIsCheap) {
  Network net(2, TestProfile());
  sim::VirtualClock c;
  net.Transfer(c, 0, 0, 1'000'000);  // 1 MB at 1000 MB/s = 1 ms
  EXPECT_NEAR(static_cast<double>(c.now()), 1e6 + 1e3, 1e3);
  EXPECT_EQ(net.remote_bytes(), 0u);
  EXPECT_EQ(net.bytes_transferred(), 1'000'000u);
}

TEST(NetworkTest, RemoteTransferChargesNicAndLatency) {
  Network net(2, TestProfile());
  sim::VirtualClock c;
  net.Transfer(c, 0, 1, 1'000'000);  // 1 MB at 100 MB/s = 10 ms + latency
  EXPECT_NEAR(static_cast<double>(c.now()), 1e7 + 1e4, 1e4);
  EXPECT_EQ(net.remote_bytes(), 1'000'000u);
}

TEST(NetworkTest, FanInContendsOnReceiverNic) {
  Network net(3, TestProfile());
  sim::VirtualClock a;
  sim::VirtualClock b;
  net.Transfer(a, 0, 2, 1'000'000);
  net.Transfer(b, 1, 2, 1'000'000);  // queues behind the first at node 2
  EXPECT_NEAR(static_cast<double>(b.now()), 2e7 + 1e4, 1e5);
}

TEST(NetworkTest, DistinctPathsDontContend) {
  Network net(4, TestProfile());
  sim::VirtualClock a;
  sim::VirtualClock b;
  net.Transfer(a, 0, 1, 1'000'000);
  net.Transfer(b, 2, 3, 1'000'000);
  EXPECT_NEAR(static_cast<double>(a.now()),
              static_cast<double>(b.now()), 1e3);
}

TEST(NetworkTest, ResetStats) {
  Network net(2, TestProfile());
  sim::VirtualClock c;
  net.Transfer(c, 0, 1, 1000);
  net.ResetStats();
  EXPECT_EQ(net.bytes_transferred(), 0u);
  EXPECT_EQ(net.remote_bytes(), 0u);
}

ClusterConfig SmallCluster() {
  ClusterConfig cc;
  cc.num_nodes = 4;
  cc.cores_per_node = 2;
  cc.dram_bytes_per_node = 1_MiB;
  return cc;
}

TEST(NodeTest, DramBudgetEnforced) {
  Cluster cluster(SmallCluster());
  Node& node = cluster.node(0);
  EXPECT_TRUE(node.ReserveDram(512_KiB).ok());
  EXPECT_TRUE(node.ReserveDram(512_KiB).ok());
  EXPECT_EQ(node.dram_used(), 1_MiB);
  EXPECT_EQ(node.ReserveDram(1).code(), ErrorCode::kOutOfSpace);
  node.ReleaseDram(512_KiB);
  EXPECT_TRUE(node.ReserveDram(100).ok());
  node.ReleaseDram(node.dram_used());
}

TEST(NodeTest, AllNodesHaveSsdByDefault) {
  Cluster cluster(SmallCluster());
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_TRUE(cluster.node(static_cast<int>(n)).has_ssd());
  }
}

TEST(NodeTest, SelectiveSsdPlacement) {
  ClusterConfig cc = SmallCluster();
  cc.all_nodes_have_ssd = false;
  cc.ssd_nodes = {1, 3};
  Cluster cluster(cc);
  EXPECT_FALSE(cluster.node(0).has_ssd());
  EXPECT_TRUE(cluster.node(1).has_ssd());
  EXPECT_FALSE(cluster.node(2).has_ssd());
  EXPECT_TRUE(cluster.node(3).has_ssd());
}

TEST(ClusterTest, BlockPlacement) {
  Cluster cluster(SmallCluster());
  const auto p = cluster.BlockPlacement(2, 3);
  EXPECT_EQ(p, (std::vector<int>{0, 0, 1, 1, 2, 2}));
}

TEST(ClusterTest, RunProcessesReturnsMakespan) {
  Cluster cluster(SmallCluster());
  const auto placement = cluster.BlockPlacement(2, 2);
  const int64_t makespan =
      cluster.RunProcesses(placement, [](ProcessEnv& env) {
        env.clock->Advance(1000 * (env.rank + 1));
      });
  EXPECT_EQ(makespan, 4000);
}

TEST(ClusterTest, ProcessEnvWiring) {
  Cluster cluster(SmallCluster());
  const auto placement = cluster.BlockPlacement(2, 2);
  std::atomic<int> checks{0};
  cluster.RunProcesses(placement, [&](ProcessEnv& env) {
    EXPECT_EQ(env.nprocs, 4u);
    EXPECT_EQ(env.node_id, env.rank / 2);
    EXPECT_EQ(env.node().id(), env.node_id);
    // The thread-local context must match the env.
    EXPECT_EQ(&sim::CurrentClock(), env.clock);
    EXPECT_EQ(sim::CurrentContext().rank, env.rank);
    checks.fetch_add(1);
  });
  EXPECT_EQ(checks.load(), 4);
}

TEST(ClusterTest, BarrierSyncsAllProcesses) {
  Cluster cluster(SmallCluster());
  const auto placement = cluster.BlockPlacement(2, 2);
  std::array<std::atomic<int64_t>, 4> after{};
  cluster.RunProcesses(placement, [&](ProcessEnv& env) {
    env.clock->Advance(env.rank * 500);
    env.Barrier();
    after[static_cast<size_t>(env.rank)].store(env.clock->now());
  });
  for (const auto& a : after) EXPECT_EQ(a.load(), after[0].load());
  EXPECT_GE(after[0].load(), 1500);
}

TEST(ClusterTest, SsdByteTotals) {
  Cluster cluster(SmallCluster());
  sim::VirtualClock c;
  cluster.node(0).ssd().ChargeWrite(c, 0, 4_KiB);
  cluster.node(1).ssd().ChargeRead(c, 0, 8_KiB);
  EXPECT_EQ(cluster.TotalSsdBytesWritten(), 4_KiB);
  EXPECT_EQ(cluster.TotalSsdBytesRead(), 8_KiB);
  cluster.ResetStats();
  EXPECT_EQ(cluster.TotalSsdBytesWritten(), 0u);
}

}  // namespace
}  // namespace nvm::net

// Unit tests for the common utility layer: status propagation, byte/time
// formatting, RNG determinism, statistics, bitmaps, and the thread pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/bitmap.hpp"
#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace nvm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllErrorCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kIoError); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgument("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(v.value_or(-1), -1);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

Status Chain(int x, int* out) {
  NVM_ASSIGN_OR_RETURN(int h, Half(x));
  NVM_ASSIGN_OR_RETURN(int q, Half(h));
  *out = q;
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(Chain(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(Chain(6, &out).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(Chain(7, &out).code(), ErrorCode::kInvalidArgument);
}

TEST(UnitsTest, Literals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
  EXPECT_EQ(3_us, 3000);
  EXPECT_EQ(2_ms, 2000000);
  EXPECT_EQ(1_s, 1000000000);
}

TEST(UnitsTest, CeilDivAndRoundUp) {
  EXPECT_EQ(CeilDiv(10, 4), 3u);
  EXPECT_EQ(CeilDiv(8, 4), 2u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(RoundUp(10, 4), 12u);
  EXPECT_EQ(RoundUp(8, 4), 8u);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(4_KiB), "4.0 KiB");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3_MiB), "3.0 MiB");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(1500), "1.5 us");
  EXPECT_EQ(FormatDuration(2500000), "2.50 ms");
  EXPECT_EQ(FormatDuration(3100000000LL), "3.100 s");
}

TEST(UnitsTest, Bandwidth) {
  // 1 MB in 1 ms = 1000 MB/s.
  EXPECT_NEAR(ToMBps(1000000, 1000000), 1000.0, 1e-9);
  EXPECT_EQ(ToMBps(123, 0), 0.0);
}

TEST(RngTest, Deterministic) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t r = rng.NextInRange(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Xoshiro256 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Xoshiro256 rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 100;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(LatencyHistogramTest, CountsAndPercentiles) {
  LatencyHistogram h;
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1.0);
  // p50 of values 1..1000 lands in the [512,1024) bucket's midpoint zone.
  EXPECT_GT(h.Percentile(99), h.Percentile(10));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(BitmapTest, SetClearTest) {
  Bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_TRUE(bm.None());
  bm.Set(0);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.PopCount(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_EQ(bm.PopCount(), 2u);
}

TEST(BitmapTest, FindNextSet) {
  Bitmap bm(200);
  bm.Set(3);
  bm.Set(70);
  bm.Set(199);
  EXPECT_EQ(bm.FindNextSet(0), 3u);
  EXPECT_EQ(bm.FindNextSet(4), 70u);
  EXPECT_EQ(bm.FindNextSet(71), 199u);
  EXPECT_EQ(bm.FindNextSet(200), 200u);
}

TEST(BitmapTest, SetAllRespectsTail) {
  Bitmap bm(67);
  bm.SetAll();
  EXPECT_EQ(bm.PopCount(), 67u);
  bm.ClearAll();
  EXPECT_TRUE(bm.None());
}

TEST(BitmapTest, ForEachSetAscending) {
  Bitmap bm(500);
  std::vector<size_t> want = {1, 63, 64, 128, 499};
  for (size_t i : want) bm.Set(i);
  std::vector<size_t> got;
  bm.ForEachSet([&](size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(CounterTest, AddAndReset) {
  Counter c;
  c.Add(5);
  c.Add(7);
  EXPECT_EQ(c.value(), 12u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

// Bit-at-a-time CRC32C reference (poly 0x82f63b78, reflected, zlib-style
// pre/post inversion) to pin the slice-by-8 tables down.
uint32_t Crc32cReference(const void* data, size_t n, uint32_t seed = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

TEST(Crc32cTest, KnownAnswerVectors) {
  // The classic check value plus the RFC 3720 appendix B.4 test patterns.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> buf(32, 0x00);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x8A9136AAu);
  buf.assign(32, 0xFF);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x62A8AB43u);
  for (size_t i = 0; i < 32; ++i) buf[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c("x", 0), 0u);
}

TEST(Crc32cTest, SeedChainsAcrossSplits) {
  // CRC of a buffer equals the CRC of its pieces chained through the seed,
  // for every split point — the property the run paths rely on.
  Xoshiro256 rng(99);
  std::vector<uint8_t> buf(253);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  const uint32_t whole = Crc32c(buf.data(), buf.size());
  for (size_t split = 0; split <= buf.size(); split += 13) {
    const uint32_t head = Crc32c(buf.data(), split);
    EXPECT_EQ(Crc32c(buf.data() + split, buf.size() - split, head), whole)
        << "split at " << split;
  }
}

TEST(Crc32cTest, MatchesBitwiseReferenceOnRandomBuffers) {
  Xoshiro256 rng(7);
  for (size_t len : {1u, 2u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 4096u}) {
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(Crc32c(buf.data(), len), Crc32cReference(buf.data(), len))
        << "len " << len;
  }
}

TEST(Crc32cTest, CombineMatchesWholeBufferAtEverySplit) {
  // Crc32cCombine(crc(a), crc(b), |b|) == crc(ab) with no access to the
  // bytes — the identity that lets a full-image checksum be derived from
  // per-fragment ones.  Checked at every split (both halves empty too)
  // and chained across many pieces.
  Xoshiro256 rng(41);
  std::vector<uint8_t> buf(509);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
  const uint32_t whole = Crc32c(buf.data(), buf.size());
  for (size_t split = 0; split <= buf.size(); split += 7) {
    const uint32_t head = Crc32c(buf.data(), split);
    const uint32_t tail = Crc32c(buf.data() + split, buf.size() - split);
    EXPECT_EQ(Crc32cCombine(head, tail, buf.size() - split), whole)
        << "split at " << split;
  }
  EXPECT_EQ(Crc32cCombine(whole, Crc32c(nullptr, 0), 0), whole);
  // Fragment-chain shape: k equal pieces folded left to right.
  const size_t frag = 64;
  std::vector<uint8_t> chunk(4 * frag);
  for (auto& b : chunk) b = static_cast<uint8_t>(rng.Next());
  uint32_t image = 0;
  for (size_t f = 0; f < 4; ++f) {
    image = Crc32cCombine(image, Crc32c(chunk.data() + f * frag, frag), frag);
  }
  EXPECT_EQ(image, Crc32c(chunk.data(), chunk.size()));
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::vector<uint8_t> buf(4096, 0xA5);
  const uint32_t clean = Crc32c(buf.data(), buf.size());
  for (size_t byte : {0u, 1u, 2048u, 4095u}) {
    for (uint8_t mask : {0x01, 0x80}) {
      buf[byte] ^= mask;
      EXPECT_NE(Crc32c(buf.data(), buf.size()), clean)
          << "flip at " << byte << " mask " << int(mask);
      buf[byte] ^= mask;
    }
  }
}

}  // namespace
}  // namespace nvm

// End-to-end application-lifecycle tests across the whole stack: a
// multi-node iterative application allocates NVM state, computes,
// checkpoints, suffers a failure, restarts from the checkpoint on fresh
// resources, and completes with bit-exact results — the full story the
// paper tells in §III.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "minimpi/comm.hpp"
#include "nvmalloc/runtime.hpp"
#include "workloads/testbed.hpp"

namespace nvm {
namespace {

// A toy iterative stencil: each rank owns a slice of a field that lives
// on the NVM store; each step adds its left neighbour's edge value.
class StencilApp {
 public:
  static constexpr uint64_t kSliceDoubles = 8192;  // 64 KiB per rank

  StencilApp(workloads::Testbed& tb, minimpi::Comm& comm) : tb_(tb),
                                                            comm_(comm) {}

  // Run `steps` iterations from the given starting state; returns the
  // final checksum (identical across ranks after an allreduce).
  double Run(net::ProcessEnv& env, int first_step, int steps,
             const std::string& restart_from) {
    auto mpi = comm_.rank_handle(env.rank);
    auto& runtime = tb_.runtime(env.node_id);
    auto region = runtime.SsdMalloc(kSliceDoubles * sizeof(double));
    NVM_CHECK(region.ok());
    NvmArray<double> field(*region);

    int64_t step_counter = first_step;
    if (restart_from.empty()) {
      for (size_t i = 0; i < kSliceDoubles; i += 512) {
        auto span = field.PinWrite(i, 512);
        NVM_CHECK(span.ok());
        for (size_t j = 0; j < 512; ++j) {
          (*span)[j] = static_cast<double>(env.rank);
        }
      }
    } else {
      RestoreSpec restore;
      restore.dram.push_back({&step_counter, sizeof(step_counter)});
      restore.nvm.push_back(*region);
      NVM_CHECK(runtime
                    .SsdRestart(restart_from + std::to_string(env.rank),
                                restore)
                    .ok());
    }

    for (int s = static_cast<int>(step_counter); s < first_step + steps;
         ++s) {
      // Exchange edges: send my last element right, receive from left.
      const double my_edge = *field.Get(kSliceDoubles - 1);
      double left_edge = 0;
      const int n = mpi.size();
      if (env.rank + 1 < n) mpi.SendVal(env.rank + 1, my_edge, 5);
      if (env.rank > 0) left_edge = mpi.RecvVal<double>(env.rank - 1, 5);
      for (size_t i = 0; i < kSliceDoubles; i += 512) {
        auto span = field.PinWrite(i, 512);
        NVM_CHECK(span.ok());
        for (size_t j = 0; j < 512; ++j) {
          (*span)[j] = (*span)[j] * 0.5 + left_edge;
        }
      }
      step_counter = s + 1;

      // Checkpoint every other step.
      if (s % 2 == 1) {
        CheckpointSpec spec;
        spec.dram.push_back({&step_counter, sizeof(step_counter)});
        spec.nvm.push_back(*region);
        const std::string name = "/ckpt/stencil_s" + std::to_string(s) +
                                 "_r" + std::to_string(env.rank);
        NVM_CHECK(runtime.SsdCheckpoint(spec, name).ok());
      }
      mpi.Barrier();
    }

    double sum = 0;
    for (size_t i = 0; i < kSliceDoubles; i += 512) {
      auto span = field.PinRead(i, 512);
      NVM_CHECK(span.ok());
      for (size_t j = 0; j < 512; ++j) sum += (*span)[j];
    }
    NVM_CHECK(runtime.SsdFree(*region).ok());
    return mpi.AllreduceSum(sum);
  }

 private:
  workloads::Testbed& tb_;
  minimpi::Comm& comm_;
};

TEST(LifecycleTest, CheckpointRestartMatchesUninterruptedRun) {
  workloads::TestbedOptions to;
  to.compute_nodes = 4;
  to.benefactors = 4;

  // Reference: 6 uninterrupted steps.
  double reference = 0;
  {
    workloads::Testbed tb(to);
    auto placement = tb.Placement(2, 4);
    minimpi::Comm comm(tb.cluster(), placement);
    StencilApp app(tb, comm);
    std::atomic<double> result{0};
    tb.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
      const double sum = app.Run(env, 0, 6, "");
      if (env.rank == 0) result.store(sum);
    });
    reference = result.load();
  }

  // Interrupted: 4 steps (checkpointing at s=3), "crash", then a new run
  // restarts from /ckpt/stencil_s3 and finishes steps 4-5.
  double recovered = 0;
  {
    workloads::Testbed tb(to);
    auto placement = tb.Placement(2, 4);
    minimpi::Comm comm1(tb.cluster(), placement);
    StencilApp app1(tb, comm1);
    tb.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
      (void)app1.Run(env, 0, 4, "");
    });
    // The first job is gone (all its regions freed); only the restart
    // files survive on the aggregate store.  The re-run places ranks on
    // other nodes to prove checkpoints are location-independent.
    std::vector<int> placement2 = {3, 3, 2, 2, 1, 1, 0, 0};
    minimpi::Comm comm2(tb.cluster(), placement2);
    StencilApp app2(tb, comm2);
    std::atomic<double> result{0};
    tb.cluster().RunProcesses(placement2, [&](net::ProcessEnv& env) {
      const double sum = app2.Run(env, 4, 2, "/ckpt/stencil_s3_r");
      if (env.rank == 0) result.store(sum);
    });
    recovered = result.load();
  }

  EXPECT_DOUBLE_EQ(recovered, reference);
}

TEST(LifecycleTest, RestartAfterBenefactorLossWithReplication) {
  workloads::TestbedOptions to;
  to.compute_nodes = 4;
  to.benefactors = 4;
  to.store.replication = 2;
  workloads::Testbed tb(to);
  auto placement = tb.Placement(2, 4);

  minimpi::Comm comm1(tb.cluster(), placement);
  StencilApp app1(tb, comm1);
  tb.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
    (void)app1.Run(env, 0, 4, "");
  });

  // A benefactor dies between the crash and the restart; replication
  // keeps every restart file readable.
  tb.store().benefactor(1).Kill();

  minimpi::Comm comm2(tb.cluster(), placement);
  StencilApp app2(tb, comm2);
  std::atomic<bool> ok{true};
  tb.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
    const double sum = app2.Run(env, 4, 2, "/ckpt/stencil_s3_r");
    if (sum == 0) ok.store(false);
  });
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace nvm

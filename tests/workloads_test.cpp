// Integration tests across the whole stack: the paper's workloads at
// reduced size, verifying correctness and the performance *relationships*
// the paper reports (DRAM >> SSD for STREAM, remote < local, shared beats
// individual mmap, row beats column major, write optimisation shrinks
// traffic, single-pass hybrid sort beats two-pass).
#include <gtest/gtest.h>

#include "workloads/ckpt.hpp"
#include "workloads/matmul.hpp"
#include "workloads/psort.hpp"
#include "workloads/randwrite.hpp"
#include "workloads/stream.hpp"
#include "workloads/testbed.hpp"

namespace nvm::workloads {
namespace {

// ---------- STREAM ----------

StreamOptions QuickStream() {
  StreamOptions o;
  o.array_bytes = 2_MiB;
  o.iterations = 2;
  o.threads = 4;
  return o;
}

TEST(StreamTest, DramOnlyApproachesMemoryBandwidth) {
  Testbed tb;
  auto r = RunStream(tb, QuickStream());
  EXPECT_TRUE(r.verified);
  // 3 arrays over a 12.8 GB/s channel: thousands of MB/s.
  EXPECT_GT(r.mbps[static_cast<int>(StreamKernel::kTriad)], 3000.0);
}

TEST(StreamTest, NvmArraysAreMuchSlower) {
  Testbed tb;
  auto base = QuickStream();
  auto dram = RunStream(tb, base);

  auto opts = base;
  opts.b_on_nvm = true;
  opts.c_on_nvm = true;
  // Arrays must dwarf the page pool and FUSE cache, as in the paper.
  TestbedOptions small;
  small.page_pool_bytes = 256_KiB;
  small.fuse.cache_bytes = 128_KiB;
  Testbed tb2(small);
  auto nvm = RunStream(tb2, opts);
  EXPECT_TRUE(nvm.verified);
  const int triad = static_cast<int>(StreamKernel::kTriad);
  // Paper Fig. 2: a factor of tens.
  EXPECT_GT(dram.mbps[triad], 10.0 * nvm.mbps[triad]);
}

TEST(StreamTest, RemoteSsdSlowerThanLocal) {
  auto opts = QuickStream();
  opts.c_on_nvm = true;
  // One thread: with several threads the single SSD's service time
  // dominates both placements equally and the locality difference
  // drowns in queueing.
  opts.threads = 1;
  TestbedOptions local;
  local.benefactors = 1;
  local.page_pool_bytes = 256_KiB;
  local.fuse.cache_bytes = 128_KiB;
  // Compare the unpipelined fetch path: with read-ahead on, the prefetch
  // pipeline overlaps the network hop with the SSD and the two placements
  // converge to the SSD's service rate (which is correct, but hides the
  // locality difference this test is about).
  local.fuse.readahead = false;
  Testbed tb_local(local);
  auto l = RunStream(tb_local, opts);

  TestbedOptions remote = local;
  remote.remote_benefactors = true;
  Testbed tb_remote(remote);
  auto r = RunStream(tb_remote, opts);

  const int triad = static_cast<int>(StreamKernel::kTriad);
  EXPECT_TRUE(l.verified);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(l.mbps[triad], r.mbps[triad]);
}

TEST(StreamTest, PlacementLabels) {
  StreamOptions o;
  EXPECT_EQ(PlacementLabel(o), "None");
  o.a_on_nvm = true;
  EXPECT_EQ(PlacementLabel(o), "A");
  o.c_on_nvm = true;
  EXPECT_EQ(PlacementLabel(o), "A&C");
  o.a_on_nvm = false;
  o.b_on_nvm = true;
  EXPECT_EQ(PlacementLabel(o), "B&C");
}

// ---------- Matrix multiplication ----------

MatmulOptions QuickMm() {
  MatmulOptions o;
  o.matrix_bytes = 512_KiB;  // n = 256
  o.procs_per_node = 2;
  o.nodes = 4;
  o.tile = 16;
  return o;
}

// Quick-test testbed: pool and cache well below B so the out-of-core
// behaviour (the paper's regime) actually engages.
TestbedOptions QuickMmTestbed(size_t benefactors, bool remote) {
  TestbedOptions to = MatmulTestbedOptions(benefactors, remote);
  to.compute_nodes = 4;
  to.page_pool_bytes = 128_KiB;
  to.fuse.cache_bytes = 128_KiB;
  return to;
}

TEST(MatmulTest, NvmSharedVerifies) {
  Testbed tb(QuickMmTestbed(4, false));
  auto r = RunMatmul(tb, QuickMm());
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.compute_s, 0.0);
  EXPECT_GT(r.total_s, r.compute_s);
  EXPECT_GT(r.app_b_bytes, 0u);
  EXPECT_GT(r.ssd_b_bytes, 0u);
}

TEST(MatmulTest, DramModeVerifiesWhenItFits) {
  TestbedOptions to = MatmulTestbedOptions(1, false);
  to.compute_nodes = 4;
  to.dram_per_node = 64_MiB;  // roomy: DRAM mode fits
  Testbed tb(to);
  auto o = QuickMm();
  o.b_on_nvm = false;
  auto r = RunMatmul(tb, o);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.ssd_b_bytes, 0u);
}

TEST(MatmulTest, DramModeInfeasibleUnderPaperBudget) {
  TestbedOptions to = MatmulTestbedOptions(1, false);
  to.compute_nodes = 4;
  to.dram_per_node = 1_MiB;  // 2 procs x 512 KiB B replicas cannot fit
  Testbed tb(to);
  auto o = QuickMm();
  o.b_on_nvm = false;
  auto r = RunMatmul(tb, o);
  EXPECT_FALSE(r.feasible);
}

TEST(MatmulTest, IndividualMmapSlowerThanShared) {
  auto o = QuickMm();
  const TestbedOptions to = QuickMmTestbed(4, false);

  Testbed tb_s(to);
  o.shared_mmap = true;
  auto shared = RunMatmul(tb_s, o);

  Testbed tb_i(to);
  o.shared_mmap = false;
  auto individual = RunMatmul(tb_i, o);

  ASSERT_TRUE(shared.verified);
  ASSERT_TRUE(individual.verified);
  EXPECT_LT(shared.total_s, individual.total_s);
}

TEST(MatmulTest, ColumnMajorSlowerAndFetchesMore) {
  auto o = QuickMm();
  o.matrix_bytes = 1_MiB;  // enough rows for the stride to matter
  const TestbedOptions to = QuickMmTestbed(4, false);

  Testbed tb_row(to);
  auto row = RunMatmul(tb_row, o);

  Testbed tb_col(to);
  o.column_major = true;
  auto col = RunMatmul(tb_col, o);

  ASSERT_TRUE(row.verified);
  ASSERT_TRUE(col.verified);
  EXPECT_GT(col.compute_s, row.compute_s);
  EXPECT_GT(col.ssd_b_bytes, 2 * row.ssd_b_bytes);
}

TEST(MatmulTest, TrafficShrinksThroughTheStack) {
  Testbed tb(QuickMmTestbed(4, false));
  auto r = RunMatmul(tb, QuickMm());
  ASSERT_TRUE(r.verified);
  // App element accesses >> page traffic to FUSE >= chunk traffic reuse.
  EXPECT_GT(r.app_b_bytes, r.fuse_b_bytes);
  EXPECT_GT(r.fuse_b_bytes, 0u);
}

// ---------- Parallel sort ----------

PsortOptions QuickSort(PsortOptions::Mode mode) {
  PsortOptions o;
  o.list_bytes = 4_MiB;
  o.procs_per_node = 2;
  o.nodes = 4;
  o.mode = mode;
  return o;
}

TEST(PsortTest, HybridSortsCorrectly) {
  TestbedOptions to = PsortTestbedOptions(4, false);
  to.compute_nodes = 4;
  Testbed tb(to);
  auto r = RunPsort(tb, QuickSort(PsortOptions::Mode::kHybridNvm));
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.passes, 1);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(PsortTest, TwoPassSortsCorrectly) {
  TestbedOptions to = PsortTestbedOptions(4, false);
  to.compute_nodes = 4;
  Testbed tb(to);
  auto r = RunPsort(tb, QuickSort(PsortOptions::Mode::kDramTwoPass));
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.passes, 2);
}

TEST(PsortTest, HybridFasterThanTwoPass) {
  TestbedOptions to = PsortTestbedOptions(4, false);
  to.compute_nodes = 4;
  Testbed tb1(to);
  auto hybrid = RunPsort(tb1, QuickSort(PsortOptions::Mode::kHybridNvm));
  Testbed tb2(to);
  auto two_pass = RunPsort(tb2, QuickSort(PsortOptions::Mode::kDramTwoPass));
  ASSERT_TRUE(hybrid.verified);
  ASSERT_TRUE(two_pass.verified);
  EXPECT_LT(hybrid.seconds, two_pass.seconds);
}

TEST(PsortTest, DifferentSeedsStillSort) {
  TestbedOptions to = PsortTestbedOptions(4, false);
  to.compute_nodes = 4;
  for (uint64_t seed : {1ULL, 99ULL}) {
    Testbed tb(to);
    auto o = QuickSort(PsortOptions::Mode::kHybridNvm);
    o.seed = seed;
    auto r = RunPsort(tb, o);
    EXPECT_TRUE(r.verified) << "seed " << seed;
  }
}

TEST(PsortTest, OddSizesAndSingleProc) {
  TestbedOptions to = PsortTestbedOptions(2, false);
  to.compute_nodes = 2;
  // Element count not divisible by the rank count; one rank per node.
  Testbed tb(to);
  auto o = QuickSort(PsortOptions::Mode::kHybridNvm);
  o.list_bytes = 1_MiB + 8 * 137;  // 131209 elements... odd on purpose
  o.procs_per_node = 1;
  o.nodes = 2;
  auto r = RunPsort(tb, o);
  EXPECT_TRUE(r.verified);

  // Truly serial (one rank).
  Testbed tb2(to);
  o.nodes = 1;
  auto r2 = RunPsort(tb2, o);
  EXPECT_TRUE(r2.verified);
}

TEST(MatmulTest, RaggedSizesVerify) {
  // n not divisible by the tile or the rank count.
  Testbed tb(QuickMmTestbed(4, false));
  MatmulOptions o;
  o.matrix_bytes = 300 * 300 * sizeof(double);
  o.procs_per_node = 2;
  o.nodes = 4;  // 8 ranks over 300 rows
  o.tile = 32;  // 300 % 32 != 0
  auto r = RunMatmul(tb, o);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.verified);
}

TEST(StreamTest, AllFourKernelsVerifyOnNvm) {
  TestbedOptions small;
  small.page_pool_bytes = 256_KiB;
  small.fuse.cache_bytes = 256_KiB;
  Testbed tb(small);
  auto o = QuickStream();
  o.a_on_nvm = o.b_on_nvm = o.c_on_nvm = true;  // everything out-of-core
  auto r = RunStream(tb, o);
  EXPECT_TRUE(r.verified);
  for (int k = 0; k < 4; ++k) EXPECT_GT(r.mbps[static_cast<size_t>(k)], 0);
}

// ---------- Random-write synthetic ----------

TEST(RandWriteTest, OptimizationShrinksSsdTraffic) {
  RandWriteOptions o;
  o.region_bytes = 2_MiB;
  o.num_writes = 16384;

  TestbedOptions with_opt;
  with_opt.fuse.dirty_page_writeback = true;
  with_opt.page_pool_bytes = 256_KiB;
  with_opt.fuse.cache_bytes = 128_KiB;
  Testbed tb1(with_opt);
  auto opt = RunRandWrite(tb1, o);

  TestbedOptions without_opt = with_opt;
  without_opt.fuse.dirty_page_writeback = false;
  Testbed tb2(without_opt);
  auto raw = RunRandWrite(tb2, o);

  EXPECT_TRUE(opt.verified);
  EXPECT_TRUE(raw.verified);
  // Paper Table VII: orders of magnitude more SSD traffic without the
  // dirty-page optimisation; FUSE traffic roughly unchanged.
  EXPECT_GT(raw.bytes_to_ssd, 4 * opt.bytes_to_ssd);
  EXPECT_NEAR(static_cast<double>(raw.bytes_to_fuse),
              static_cast<double>(opt.bytes_to_fuse),
              0.25 * static_cast<double>(opt.bytes_to_fuse));
}

// ---------- Checkpoint study ----------

TEST(CkptTest, LinkedCheckpointingWorksAndIsIncremental) {
  Testbed tb;
  CkptOptions o;
  o.dram_bytes = 1_MiB;
  o.nvm_bytes = 4_MiB;
  o.timesteps = 3;
  auto r = RunCheckpointStudy(tb, o);
  ASSERT_EQ(r.steps.size(), 3u);
  EXPECT_TRUE(r.restart_verified);
  EXPECT_TRUE(r.old_checkpoint_intact);
  // Every step links (not copies) the NVM variable.
  for (const auto& s : r.steps) {
    EXPECT_EQ(s.nvm_bytes_copied, 0u);
    EXPECT_EQ(s.nvm_bytes_linked, o.nvm_bytes);
  }
  // Later steps write far less than a full NVM copy (incremental).
  EXPECT_LT(r.steps[1].ssd_bytes_written, o.nvm_bytes);
}

TEST(CkptTest, NaiveCopyBaselineWritesEverything) {
  Testbed tb;
  CkptOptions o;
  o.dram_bytes = 512_KiB;
  o.nvm_bytes = 2_MiB;
  o.timesteps = 2;
  o.link_nvm = false;
  auto r = RunCheckpointStudy(tb, o);
  EXPECT_TRUE(r.restart_verified);
  for (const auto& s : r.steps) {
    EXPECT_EQ(s.nvm_bytes_copied, o.nvm_bytes);
    EXPECT_GE(s.ssd_bytes_written, o.nvm_bytes);
  }
}

TEST(CkptTest, LinkedCheaperThanCopied) {
  CkptOptions o;
  o.dram_bytes = 512_KiB;
  o.nvm_bytes = 4_MiB;
  o.timesteps = 2;

  Testbed tb1;
  auto linked = RunCheckpointStudy(tb1, o);
  o.link_nvm = false;
  Testbed tb2;
  auto copied = RunCheckpointStudy(tb2, o);

  ASSERT_TRUE(linked.restart_verified);
  ASSERT_TRUE(copied.restart_verified);
  EXPECT_LT(linked.steps[1].seconds, copied.steps[1].seconds);
  EXPECT_LT(linked.steps[1].ssd_bytes_written,
            copied.steps[1].ssd_bytes_written);
}

}  // namespace
}  // namespace nvm::workloads
